package foces_test

import (
	"math/rand"
	"testing"

	"foces"
	"foces/internal/churn"
	"foces/internal/core"
	"foces/internal/topo"
)

func newLinearSystem(t *testing.T) *foces.System {
	t.Helper()
	top, err := topo.Linear(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRebuildBaselineFastPath checks the rule-set-hash no-op: rebuilds
// with an unchanged rule set keep the existing baseline objects, and
// any out-of-band controller mutation invalidates the hash.
func TestRebuildBaselineFastPath(t *testing.T) {
	sys := newLinearSystem(t)
	before := sys.FCM()
	if err := sys.RebuildBaseline(); err != nil {
		t.Fatal(err)
	}
	if sys.FCM() != before {
		t.Fatal("RebuildBaseline regenerated an unchanged baseline")
	}
	// Mutate the controller behind the system's back: the hash must
	// catch it and force a real rebuild.
	ctrl := sys.Controller()
	victim := ctrl.Rules()[0]
	if _, err := ctrl.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.RebuildBaseline(); err != nil {
		t.Fatal(err)
	}
	if sys.FCM() == before {
		t.Fatal("RebuildBaseline skipped a changed rule set")
	}
	if got := sys.FCM().RuleSpace(); got != ctrl.RuleSpace() {
		t.Fatalf("rebuilt FCM rule space %d, controller %d", got, ctrl.RuleSpace())
	}
}

// TestSystemLiveUpdates drives randomized live mutations through the
// System wrappers and checks that (a) verdicts match a cold-built
// baseline, and (b) the patched data plane produces clean counters
// against the incrementally maintained FCM.
func TestSystemLiveUpdates(t *testing.T) {
	sys := newLinearSystem(t)
	rng := rand.New(rand.NewSource(7))
	ctrl := sys.Controller()

	for round := 0; round < 6; round++ {
		live := ctrl.Rules()
		var u foces.ChurnUpdate
		var err error
		switch op := rng.Intn(3); {
		case op == 0 || len(live) < 4:
			sw := sys.Topology().Switches()[rng.Intn(len(sys.Topology().Switches()))].ID
			h := sys.Topology().Hosts()[rng.Intn(len(sys.Topology().Hosts()))]
			match, merr := sys.Layout().MatchExact(sys.Layout().Wildcard(), "src_ip", h.IP)
			if merr != nil {
				t.Fatal(merr)
			}
			_, u, err = sys.AddRule(sw, 200+round, match, foces.Action{Type: foces.ActionDrop})
		case op == 1:
			u, err = sys.RemoveRule(live[rng.Intn(len(live))].ID)
		default:
			v := live[rng.Intn(len(live))]
			u, err = sys.ModifyRule(v.ID, v.Priority+1, v.Match, v.Action)
		}
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if u.Epoch != uint64(round+1) || sys.Epoch() != u.Epoch {
			t.Fatalf("round %d: epoch %d (system %d)", round, u.Epoch, sys.Epoch())
		}

		// Simulated counters from the patched data plane must be
		// consistent with the incrementally maintained baseline.
		y, err := sys.ObserveCounters(rand.New(rand.NewSource(int64(round))), 500)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Detect(y, foces.DetectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Anomalous {
			t.Fatalf("round %d: clean traffic flagged by full detection (index %g)", round, res.Index)
		}
		out, err := sys.DetectSliced(y, foces.DetectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Anomalous {
			t.Fatalf("round %d: clean traffic flagged by sliced detection: %v", round, out.Suspects)
		}

		// Verdicts must match a baseline cold-built from the same rules.
		cold, err := churn.NewManager(sys.Topology(), sys.Layout(), ctrl.Rules(), ctrl.RuleSpace(), core.Options{}, churn.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cout, err := cold.DetectSliced(y)
		if err != nil {
			t.Fatal(err)
		}
		if cout.Anomalous != out.Anomalous {
			t.Fatalf("round %d: sliced verdict diverged from cold baseline", round)
		}
	}
	st := sys.ChurnStats()
	if st.Updates != 6 || len(sys.ChurnLog()) != 6 {
		t.Fatalf("churn stats %+v, log %d", st, len(sys.ChurnLog()))
	}
	// A fresh RebuildBaseline now is a no-op: ApplyUpdate kept the hash
	// current.
	before := sys.FCM()
	if err := sys.RebuildBaseline(); err != nil {
		t.Fatal(err)
	}
	if sys.FCM() != before {
		t.Fatal("baseline hash stale after live updates")
	}
}

// TestSystemDetectReconciled exercises the System-level straddling
// window path end to end.
func TestSystemDetectReconciled(t *testing.T) {
	sys := newLinearSystem(t)
	rng := rand.New(rand.NewSource(3))
	// Snapshot a clean window under epoch 0.
	yOld, err := sys.ObserveCounters(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	from := sys.Epoch()
	// Remove a traffic-carrying rule mid-"window".
	var victim foces.Rule
	for _, fl := range sys.FCM().Flows {
		if len(fl.RuleIDs) >= 3 {
			victim = sys.FCM().Rules[fl.RuleIDs[0]]
			break
		}
	}
	if victim.Switch < 0 {
		t.Fatal("no multi-hop flow")
	}
	if _, err := sys.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	// Also add a rule mid-window, so the rule space grows past the old
	// window's length: DetectReconciled must zero-pad yOld rather than
	// reject it (the new row is masked, so the padding never matters).
	if _, _, err := sys.AddRule(victim.Switch, victim.Priority+1, victim.Match, foces.Action{Type: foces.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	if len(yOld) >= len(sys.FCM().Rules) {
		t.Fatalf("rule space did not grow past the old window: %d vs %d rules", len(yOld), len(sys.FCM().Rules))
	}
	masked := sys.AffectedSince(from)
	if len(masked) == 0 {
		t.Fatal("no affected rows recorded")
	}
	// The old window's counters include traffic matched under the old
	// generation on exactly the affected rows; reconciled detection
	// masks them and stays clean, where plain sliced detection may not.
	rec, err := sys.DetectReconciled(yOld, from)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Anomalous {
		t.Fatalf("reconciled detection flagged a straddling window: %v", rec.Suspects)
	}
}
