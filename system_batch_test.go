package foces_test

import (
	"math/rand"
	"reflect"
	"testing"

	"foces"
)

// TestRunBatchMatchesRun pins RunBatch to per-window Run: every report
// field except Timings must be identical, in input order.
func TestRunBatchMatchesRun(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(29))
	var obs []foces.Observation
	var want []foces.Report
	for w := 0; w < 4; w++ {
		y, err := sys.ObserveCounters(rng, 1000)
		if err != nil {
			t.Fatal(err)
		}
		mode := foces.ModeAuto
		if w == 2 {
			mode = foces.ModeFull
		}
		o := foces.Observation{Vector: y, RunOptions: foces.RunOptions{Mode: mode}}
		obs = append(obs, o)
		rep, err := sys.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rep)
	}
	got, err := sys.RunBatch(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("RunBatch returned %d reports for %d windows", len(got), len(obs))
	}
	for i := range got {
		g, w := got[i], want[i]
		g.Timings, w.Timings = foces.RunTimings{}, foces.RunTimings{}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("window %d: batch report diverged from Run:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestRunBatchMixedPaths feeds RunBatch windows that cannot take the
// batched solve (sliced-only mode, missing switches) alongside
// batchable ones: everything must come back in order and match Run.
func TestRunBatchMixedPaths(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(31))
	y1, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	obs := []foces.Observation{
		{Vector: y1},
		{Vector: y2, RunOptions: foces.RunOptions{Mode: foces.ModeSliced}},
		{Vector: y1, RunOptions: foces.RunOptions{Mode: foces.ModeFull}},
	}
	got, err := sys.RunBatch(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		w, err := sys.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		g := got[i]
		g.Timings, w.Timings = foces.RunTimings{}, foces.RunTimings{}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("window %d: mixed batch report diverged", i)
		}
	}
	if _, err := sys.RunBatch([]foces.Observation{{}}); err == nil {
		t.Fatal("observation without counters accepted")
	}
	if reps, err := sys.RunBatch(nil); err != nil || reps != nil {
		t.Fatalf("empty batch: %v, %v", reps, err)
	}
}

// TestRunBatchRecordsRuns checks batched windows land in the
// recent-verdict ring in input order.
func TestRunBatchRecordsRuns(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	reg := foces.NewTelemetryRegistry()
	sys.EnableTelemetry(reg)
	rng := rand.New(rand.NewSource(37))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	before := len(sys.RecentRuns())
	if _, err := sys.RunBatch([]foces.Observation{{Vector: y}, {Vector: y}, {Vector: y}}); err != nil {
		t.Fatal(err)
	}
	events := sys.RecentRuns()
	if len(events) != before+3 {
		t.Fatalf("recent ring grew by %d, want 3", len(events)-before)
	}
	for _, ev := range events[before:] {
		if ev.Path != foces.PathClean {
			t.Fatalf("batched run recorded path %q", ev.Path)
		}
	}
}
