# Developer / CI entry points. `make ci` is the gate: formatting, vet,
# build, the full test suite under the race detector, and a one-shot
# run of the detection benchmarks so they cannot rot.

GO ?= go

.PHONY: ci fmt vet build test bench-smoke bench

ci: fmt vet build test bench-smoke

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Compile-and-run-once smoke over every Detect* benchmark, including
# the cold-vs-prepared and sequential-vs-parallel engine comparisons.
bench-smoke:
	$(GO) test -run '^$$' -bench Detect -benchtime 1x .

# Full benchmark sweep (slow; not part of ci).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
