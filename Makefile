# Developer / CI entry points. `make ci` is the gate: formatting, vet,
# build, the full test suite under the race detector, and a one-shot
# run of the detection benchmarks so they cannot rot.

GO ?= go

.PHONY: ci fmt vet build test test-faults test-churn bench-smoke bench

ci: fmt vet build test test-faults test-churn bench-smoke

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The collection-plane fault machinery (deadlines, retries, quarantine,
# counter-reset detection) is concurrency-heavy and timing-sensitive:
# run its packages twice under the race detector to shake out
# scheduling-dependent bugs a single pass can miss.
test-faults:
	$(GO) test -race -count=2 -timeout 120s ./internal/collector/ ./internal/openflow/

# The rule-churn subsystem mutates the baseline (epoch log, incremental
# FCM, rank-one factor updates) while detection may be running: run its
# package and the matrix factor-update machinery twice under the race
# detector.
test-churn:
	$(GO) test -race -count=2 -timeout 120s ./internal/churn/ ./internal/matrix/

# Compile-and-run-once smoke over every Detect* benchmark, including
# the cold-vs-prepared and sequential-vs-parallel engine comparisons.
bench-smoke:
	$(GO) test -run '^$$' -bench Detect -benchtime 1x .

# Full benchmark sweep (slow; not part of ci).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
