# Developer / CI entry points. `make ci` is the gate: formatting, vet,
# build, the full test suite under the race detector, and a one-shot
# run of the detection benchmarks so they cannot rot.

GO ?= go

.PHONY: ci fmt vet vet-metrics build test test-faults test-churn test-telemetry test-kernels test-stream test-sparse test-cluster test-probe test-alloc bench-kernels bench-stream bench-sparse bench-cluster bench-localize bench-alloc bench-smoke bench pprof-stream

ci: fmt vet vet-metrics build test test-faults test-churn test-telemetry test-kernels test-stream test-sparse test-cluster test-probe test-alloc bench-kernels bench-stream bench-sparse bench-cluster bench-localize bench-alloc bench-smoke

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The collection-plane fault machinery (deadlines, retries, quarantine,
# counter-reset detection) is concurrency-heavy and timing-sensitive:
# run its packages twice under the race detector to shake out
# scheduling-dependent bugs a single pass can miss.
test-faults:
	$(GO) test -race -count=2 -timeout 120s ./internal/collector/ ./internal/openflow/

# The rule-churn subsystem mutates the baseline (epoch log, incremental
# FCM, rank-one factor updates) while detection may be running: run its
# package and the matrix factor-update machinery twice under the race
# detector.
test-churn:
	$(GO) test -race -count=2 -timeout 120s ./internal/churn/ ./internal/matrix/

# The telemetry core is lock-free on the hot path and scraped
# concurrently with detection: run it and the packages that record into
# it twice under the race detector.
test-telemetry:
	$(GO) test -race -count=2 -timeout 120s ./internal/telemetry/ ./cmd/focesd/

# The parallel kernel layer (blocked Cholesky, parallel Gram, the
# persistent sliced-detect worker pool, batched solves) is exercised by
# determinism-sensitive tests: run them twice under the race detector.
test-kernels:
	$(GO) test -race -count=2 -timeout 180s -run 'Kernel' ./internal/matrix/ ./internal/core/

# The streaming ingestion pipeline (window assembler, adaptive sampler,
# System.Serve, the focesd pump) is push-driven and channel-heavy: run
# its tests twice under the race detector, including the
# polled-vs-streamed equivalence gates.
test-stream:
	$(GO) test -race -count=2 -timeout 180s -run 'Assembler|Sampler|Serve|Stream|PollSnapshots|PollCancelled' ./internal/collector/ ./cmd/focesd/ .

# The sparse direct solver (AMD ordering, symbolic analysis, supernodal
# factorization, sparse rank-one update/downdate) and the hardened
# dense factor-maintenance path share poison/fallback semantics with
# the churn manager: run their regression, property and fuzz-seed tests
# twice under the race detector.
test-sparse:
	$(GO) test -race -count=2 -timeout 180s -run 'Sparse|Update|Downdate|Column|AMD|SymGram|Symbolic|PreparedLS|RankOneRepair' ./internal/matrix/ ./internal/churn/ ./internal/experiment/

# The sharded multi-node detection cluster is membership-churn-heavy
# (node join mid-epoch, node death mid-window with shard requeue,
# coordinator restart, total-capacity fallback): run its package, the
# shared framing layer and the replica-replay machinery twice under the
# race detector.
test-cluster:
	$(GO) test -race -count=2 -timeout 180s ./internal/cluster/ ./internal/wire/ ./internal/churn/

# The active-probe localization subsystem shares the baseline read lock
# with concurrent detection and the wrapper surface must stay
# byte-equivalent to Run: run the probe package, the localization glue,
# the report serialization golden tests and the wrapper equivalence
# suite twice under the race detector.
test-probe:
	$(GO) test -race -count=2 -timeout 180s ./internal/probe/
	$(GO) test -race -count=2 -timeout 180s -run 'Localiz|ReportMarshal|RunEvent|StreamReportShares|ByteEqual|DrawAttack' . ./internal/experiment/

# Allocation regression tests: AllocsPerRun budgets on the streaming
# hot path (Serve allocs/window, wire frame round trip) plus the pooled
# window release contract. Run WITHOUT -race — the race detector's
# instrumentation inflates MemStats allocation counts, so the budget
# tests carry a !race build tag and would silently vanish under it. The
# release-contract tests additionally ride along under `make
# test-faults` with -race.
test-alloc:
	$(GO) test -timeout 180s -run 'Alloc|WindowRelease|DoubleRelease|FrameRoundTrip' . ./internal/wire/ ./internal/collector/

# Bench gate for the zero-allocation steady state: the alloc experiment
# must keep pooled-path verdicts byte-identical to the polled map-era
# path under attack/silence/churn/reset events, hold steady-state
# allocations within the per-window budget, and stay within 3x of the
# archived streaming p99 latency (results/alloc.json).
bench-alloc:
	$(GO) run ./cmd/focesbench -exp alloc -check
	@test -f results/alloc.json || { echo "bench-alloc: results/alloc.json missing"; exit 1; }

# Archive a heap profile of the warm streaming pipeline and print the
# top allocation sites (results/stream_heap.pprof). Not part of ci.
pprof-stream:
	$(GO) test -run '^$$' -bench ServeSteadyState -benchtime 200x -memprofile results/stream_heap.pprof .
	$(GO) tool pprof -top -nodecount 15 results/stream_heap.pprof

# Bench gate for active-probe localization: every (topology, policy,
# anomaly class) arm must stay within the probe budget
# ceil(log2(|suspect rules|)) + 2 and name the attacked rule in the
# top-3 culprits for >= 90% of detected runs (results/localize.json).
bench-localize:
	$(GO) run ./cmd/focesbench -exp localize -check
	@test -f results/localize.json || { echo "bench-localize: results/localize.json missing"; exit 1; }

# Bench gate for the detection cluster: the cluster experiment must keep
# every distributed report byte-identical to the single-process path
# (including across a node killed mid-window), ship at least one
# incremental delta and one post-refactor snapshot, finish every
# distributed window within the collection interval, and — on hosts with
# GOMAXPROCS >= 4 — beat one node by >= 2x throughput
# (results/cluster.json).
bench-cluster:
	$(GO) run ./cmd/focesbench -exp cluster -check
	@test -f results/cluster.json || { echo "bench-cluster: results/cluster.json missing"; exit 1; }

# Bench gate for the sparse solver: the sparse experiment must show the
# dense Gram exceeding the memory budget while the sparse path stays
# within it, keep sparse and dense verdicts identical with residual
# deltas <= 1e-12 on every evaluation topology, and not regress the
# sparse prepare past 1.25x the archived run (results/sparse.json).
bench-sparse:
	$(GO) run ./cmd/focesbench -exp sparse -check
	@test -f results/sparse.json || { echo "bench-sparse: results/sparse.json missing"; exit 1; }

# Bench gate for streaming ingestion: the stream experiment must keep
# the streamed verdicts byte-identical to the polled path, sustain the
# ingest-rate floor with bounded queues, and stay within 3x of the
# archived p99 ingest-to-verdict latency (results/stream.json).
bench-stream:
	$(GO) run ./cmd/focesbench -exp stream -check
	@test -f results/stream.json || { echo "bench-stream: results/stream.json missing"; exit 1; }

# Bench smoke for the kernel layer: run the kernels experiment on a
# small fabric with -check (fails if the parallel kernels regress past
# serial x1.25 or any equivalence check trips) and require the
# kernels.json trajectory to land.
bench-kernels:
	$(GO) run ./cmd/focesbench -exp kernels -topo fattree4 -runs 3 -check
	@test -f results/kernels.json || { echo "bench-kernels: results/kernels.json missing"; exit 1; }

# Metric-hygiene lint: the telemetry hot path must not format strings
# (fmt is banned from the package outright), and every metric name
# minted in metrics.go must be documented in README.md's catalogue.
vet-metrics:
	@if grep -n 'fmt\.' internal/telemetry/*.go | grep -v _test.go; then \
		echo "vet-metrics: fmt usage in internal/telemetry (hot paths must not format)"; exit 1; \
	fi
	@missing=0; \
	for name in $$(grep -oE '"foces_[a-z_]+"' internal/telemetry/metrics.go | tr -d '"' | sort -u); do \
		if ! grep -q "$$name" README.md; then \
			echo "vet-metrics: $$name not documented in README.md"; missing=1; \
		fi; \
	done; \
	if [ "$$missing" -ne 0 ]; then exit 1; fi

# Compile-and-run-once smoke over every Detect* benchmark, including
# the cold-vs-prepared and sequential-vs-parallel engine comparisons.
bench-smoke:
	$(GO) test -run '^$$' -bench Detect -benchtime 1x .

# Full benchmark sweep (slow; not part of ci).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
