package foces_test

import (
	"fmt"
	"math/rand"

	"foces"
)

// ExampleNewSystem shows the basic detect-localize-repair loop on a
// fat-tree data center.
func ExampleNewSystem() {
	top, err := foces.FatTree(4)
	if err != nil {
		panic(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))

	y, _ := sys.ObserveCounters(rng, 1000)
	res, _ := sys.Detect(y, foces.DetectOptions{})
	fmt.Println("clean anomalous:", res.Anomalous)

	atk, _ := sys.InjectRandomAttack(rng, foces.AttackPortSwap)
	y, _ = sys.ObserveCounters(rng, 1000)
	res, _ = sys.Detect(y, foces.DetectOptions{})
	fmt.Println("attacked anomalous:", res.Anomalous)

	_ = atk.Revert(sys.Network())
	// Output:
	// clean anomalous: false
	// attacked anomalous: true
}

// ExampleDetect reproduces the paper's Fig. 2 worked example: the
// observed counters leave a residual of 3 at rule r4, which no flow
// volume assignment can explain.
func ExampleDetect() {
	b := foces.NewTopologyBuilder("fig2")
	ids := make([]foces.SwitchID, 6)
	for i := range ids {
		ids[i] = b.AddSwitch(fmt.Sprintf("S%d", i), "")
	}
	b.Connect(ids[0], ids[1])
	b.Connect(ids[1], ids[2])
	b.Connect(ids[2], ids[5])
	b.Connect(ids[1], ids[3])
	b.Connect(ids[3], ids[4])
	b.Connect(ids[4], ids[5])
	top, err := b.Build()
	if err != nil {
		panic(err)
	}
	layout := foces.FiveTuple()
	rules := make([]foces.Rule, 6)
	for i := range rules {
		rules[i] = foces.Rule{
			ID: i, Switch: ids[i], Match: layout.Wildcard(),
			Action: foces.Action{Type: foces.ActionOutput},
		}
	}
	f, err := foces.FCMFromHistories(top, rules, [][]int{
		{0, 1, 2, 5}, // flow a
		{2, 5},       // flow b
		{4, 5},       // flow c
	})
	if err != nil {
		panic(err)
	}
	res, err := foces.Detect(f, []float64{3, 3, 4, 3, 8, 12}, foces.DetectOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("X̂ = (%.0f, %.0f, %.0f), anomalous = %v\n",
		res.XHat[0], res.XHat[1], res.XHat[2], res.Anomalous)
	// Output:
	// X̂ = (3, 1, 8), anomalous = true
}
