package foces_test

import (
	"math/rand"
	"testing"

	"foces"
)

// TestRandomFabricsEndToEnd is the repository's randomized end-to-end
// property test: for a spread of random regular fabrics, the whole
// pipeline must hold — intent verifies, the FCM's expected counters
// match simulation exactly (lossless), every injected port swap is
// either detected or provably masked per Theorem 1, and repair
// restores quiet.
func TestRandomFabricsEndToEnd(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		top, err := foces.Jellyfish(12, 3, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := foces.NewSystem(top, foces.PairExact)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := foces.VerifyIntent(top, sys.Layout(), sys.Controller().Rules())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: intent broken: %s", seed, rep)
		}
		rng := rand.New(rand.NewSource(seed))

		// Expected counters must equal simulation (H·X₀ = Y in a
		// lossless network) for EVERY rule.
		y, err := sys.ObserveCounters(rng, 777)
		if err != nil {
			t.Fatal(err)
		}
		volumes := make(map[foces.Pair]uint64)
		for _, src := range top.Hosts() {
			for _, dst := range top.Hosts() {
				if src.ID != dst.ID {
					volumes[foces.Pair{Src: src.ID, Dst: dst.ID}] = 777
				}
			}
		}
		want, err := sys.FCM().ExpectedCounters(volumes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("seed %d: rule %d counter %v != expected %v", seed, i, y[i], want[i])
			}
		}

		// Three random attacks, each applied alone.
		for trial := 0; trial < 3; trial++ {
			atk, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap)
			if err != nil {
				t.Fatal(err)
			}
			y, err := sys.ObserveCounters(rng, 777)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Detect(y, foces.DetectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Anomalous {
				// Either the detector is broken or the deviation is one
				// of the provably masked ones. Check which.
				masked, merr := allDeviationsMasked(sys, atk)
				if merr != nil {
					t.Fatal(merr)
				}
				if !masked {
					t.Fatalf("seed %d trial %d: detectable attack missed (AI=%v, %+v)",
						seed, trial, res.Index, atk)
				}
			}
			if err := atk.Revert(sys.Network()); err != nil {
				t.Fatal(err)
			}
			y, err = sys.ObserveCounters(rng, 777)
			if err != nil {
				t.Fatal(err)
			}
			res, err = sys.Detect(y, foces.DetectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Anomalous {
				t.Fatalf("seed %d trial %d: repaired fabric still flagged", seed, trial)
			}
		}
	}
}

// allDeviationsMasked reports whether every flow through the attacked
// rule deviates onto a history inside span(H) — the only way a port
// swap can legally evade detection (Theorem 1).
func allDeviationsMasked(sys *foces.System, atk foces.Attack) (bool, error) {
	f := sys.FCM()
	victim := f.Rules[atk.RuleID]
	_ = victim
	for _, fl := range f.Flows {
		onPath := false
		for _, rid := range fl.RuleIDs {
			if rid == atk.RuleID {
				onPath = true
			}
		}
		if !onPath {
			continue
		}
		// Truncate at the victim: with pair-exact rules the deviated
		// packets miss everywhere else, so h' is the prefix up to and
		// including the victim.
		var hPrime []int
		for _, rid := range fl.RuleIDs {
			hPrime = append(hPrime, rid)
			if rid == atk.RuleID {
				break
			}
		}
		d, err := sys.AnalyzeDetectability(hPrime)
		if err != nil {
			return false, err
		}
		if d.Algebraic {
			return false, nil
		}
	}
	return true, nil
}

func TestFacadeCoverageAndHarden(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.DestAggregate)
	before, err := foces.AnalyzeCoverage(sys.FCM())
	if err != nil {
		t.Fatal(err)
	}
	if before.Total == 0 || before.DetectableFraction() <= 0 {
		t.Fatalf("coverage report empty: %+v", before)
	}
	hardened, b, after, err := foces.Harden(sys.FCM())
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Undetectable) > len(b.Undetectable) {
		t.Fatal("hardening made things worse")
	}
	if hardened.NumRules() < sys.FCM().NumRules() {
		t.Fatal("hardened FCM lost rules")
	}
}

func TestFacadeGenerateFCM(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	f, err := foces.GenerateFCM(sys.Topology(), sys.Layout(), sys.Controller().Rules())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFlows() != 240 {
		t.Fatalf("flows = %d", f.NumFlows())
	}
}

func TestNewSystemWithPairs(t *testing.T) {
	top, err := foces.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	pairs := [][2]foces.HostID{
		{hosts[0].ID, hosts[5].ID},
		{hosts[5].ID, hosts[0].ID},
		{hosts[1].ID, hosts[9].ID},
	}
	sys, err := foces.NewSystemWithPairs(top, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if sys.FCM().NumFlows() != 3 {
		t.Fatalf("flows = %d, want 3", sys.FCM().NumFlows())
	}
	rng := rand.New(rand.NewSource(1))
	tm := foces.TrafficMatrix{
		{Src: hosts[0].ID, Dst: hosts[5].ID}: 100,
		{Src: hosts[5].ID, Dst: hosts[0].ID}: 100,
		{Src: hosts[1].ID, Dst: hosts[9].ID}: 100,
	}
	y, err := sys.ObserveCountersFor(rng, tm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil || res.Anomalous {
		t.Fatalf("pairs system detection: %+v %v", res, err)
	}
}
