// Waypoint bypass: the intro's motivating scenario. A security policy
// requires traffic from a branch-office host to traverse a firewall
// switch on its way to a server. A compromised upstream switch
// rewrites its forwarding rule so packets skip the firewall — the
// compromised switch keeps reporting its original rules and its own
// counters stay plausible, but the firewall's counter no longer fits
// the network-wide flow-counter equation system and FOCES flags the
// deviation immediately.
//
// Run with:
//
//	go run ./examples/waypointbypass
package main

import (
	"fmt"
	"log"
	"math/rand"

	"foces"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Topology: branch -> edge -> {firewall | shortcut} -> core -> server.
	//
	//   edge ──── firewall ──── core
	//    │                       │
	//    └─────── shortcut ──────┘
	//
	// The intended path to the server pins traffic through the firewall
	// (the edge-shortcut-core detour has equal length, so we steer the
	// policy by building the firewall path shorter: edge->firewall->core
	// vs edge->shortcut->bad->core).
	b := foces.NewTopologyBuilder("waypoint")
	edge := b.AddSwitch("edge", "edge")
	firewall := b.AddSwitch("firewall", "waypoint")
	shortcut := b.AddSwitch("shortcut", "")
	bad := b.AddSwitch("backdoor", "")
	core := b.AddSwitch("core", "core")
	b.Connect(edge, firewall)
	b.Connect(firewall, core)
	b.Connect(edge, shortcut)
	b.Connect(shortcut, bad)
	b.Connect(bad, core)
	branch := b.AddHost("branch", ip(10, 1, 0, 1), edge)
	server := b.AddHost("server", ip(10, 2, 0, 1), core)
	aux := b.AddHost("aux", ip(10, 3, 0, 1), shortcut)
	top, err := b.Build()
	if err != nil {
		return err
	}

	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		return err
	}
	fmt.Println(sys)

	// The policy path for branch->server runs through the firewall.
	path, err := top.ECMPHostPath(branch, server)
	if err != nil {
		return err
	}
	fmt.Print("intended path: ")
	printPath(top, path)
	onFirewall := false
	for _, sw := range path {
		if sw == firewall {
			onFirewall = true
		}
	}
	if !onFirewall {
		return fmt.Errorf("setup error: policy path misses the firewall")
	}

	rng := rand.New(rand.NewSource(7))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		return err
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("policy honoured: anomaly index = %.2f\n", res.Index)

	// The adversary controls the edge switch: it rewrites the
	// branch->server rule to use the shortcut port, bypassing the
	// firewall. Find that rule in the edge switch's table.
	tbl, err := sys.Network().Table(edge)
	if err != nil {
		return err
	}
	var victim foces.Rule
	found := false
	for _, r := range tbl.Dump() {
		src, sok, _ := sys.Layout().SpaceField(r.Match, "src_ip")
		dst, dok, _ := sys.Layout().SpaceField(r.Match, "dst_ip")
		if sok && dok && src == ip(10, 1, 0, 1) && dst == ip(10, 2, 0, 1) {
			victim, found = r, true
		}
	}
	if !found {
		return fmt.Errorf("no branch->server rule on the edge switch")
	}
	port, err := top.PortToward(edge, shortcut)
	if err != nil {
		return err
	}
	bypass := foces.Attack{
		Switch:    edge,
		RuleID:    victim.ID,
		Kind:      foces.AttackPortSwap,
		NewAction: foces.Action{Type: victim.Action.Type, Port: port},
	}
	if err := bypass.Apply(sys.Network()); err != nil {
		return err
	}
	fmt.Printf("\ncompromise: edge rule %d now forwards via the shortcut, skipping the firewall\n", victim.ID)

	y, err = sys.ObserveCounters(rng, 1000)
	if err != nil {
		return err
	}
	res, err = sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("FOCES verdict: anomalous = %v (firewall's counter no longer matches the equation system)\n", res.Anomalous)
	sliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("suspect switches: %v\n", sliced.Suspects)
	_ = aux
	return nil
}

func printPath(top *foces.Topology, path []foces.SwitchID) {
	for i, id := range path {
		s, err := top.Switch(id)
		if err != nil {
			continue
		}
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(s.Name)
	}
	fmt.Println()
}

func ip(a, b, c, d byte) uint64 {
	return uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
}
