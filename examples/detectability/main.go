// Detectability analysis: the paper's Fig. 2 and Fig. 3 worked
// examples, end to end. The same six-switch network and the same
// deviation (flow a rerouted from the upper to the lower path) is
// detectable in the Fig. 2 configuration but provably masked in the
// Fig. 3 configuration — the difference is a single extra rule match
// by flow c that lets the adversary's counters be "explained" by a
// different flow-volume assignment (Theorem 1), equivalently a loop in
// a Rule Bipartite Graph (Theorem 2).
//
// Run with:
//
//	go run ./examples/detectability
package main

import (
	"fmt"
	"log"

	"foces"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top, rules, err := paperNetwork()
	if err != nil {
		return err
	}

	// Flow histories (0-indexed rule IDs; rule i lives on switch Si):
	//   flow a: S0,S1,S2,S5   flow b: S2,S5
	//   flow c (Fig 2): S4,S5      flow c (Fig 3): S3,S4,S5
	// The anomaly: flow a deviates at S1 onto the lower path S3,S4,S5.
	hPrime := []int{0, 1, 3, 4, 5}

	fig2, err := foces.FCMFromHistories(top, rules, [][]int{
		{0, 1, 2, 5}, {2, 5}, {4, 5},
	})
	if err != nil {
		return err
	}
	fig3, err := foces.FCMFromHistories(top, rules, [][]int{
		{0, 1, 2, 5}, {2, 5}, {3, 4, 5},
	})
	if err != nil {
		return err
	}

	// Fig 2: with volumes (a,b,c) = (3,4,5) the observed counters are
	// Y' = (3,3,4,3,8,12); the best least-squares explanation leaves a
	// residual of 3 at rule r4 — detected.
	res, err := foces.Detect(fig2, []float64{3, 3, 4, 3, 8, 12}, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("Fig 2 counters (3,3,4,3,8,12): X̂=%v Δ=%v anomalous=%v\n", res.XHat, res.Delta, res.Anomalous)

	// Fig 3: the same deviation yields Y' = (3,3,4,8,8,12), which HAS
	// an exact explanation X̂ = (3,1,8) — FOCES is structurally blind.
	res, err = foces.Detect(fig3, []float64{3, 3, 4, 8, 8, 12}, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("Fig 3 counters (3,3,4,8,8,12): X̂=%v Δ=%v anomalous=%v\n", res.XHat, res.Delta, res.Anomalous)

	// The detectability analysis predicts both outcomes ahead of time.
	d2, err := foces.AnalyzeDetectability(fig2, hPrime)
	if err != nil {
		return err
	}
	d3, err := foces.AnalyzeDetectability(fig3, hPrime)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("Fig 2 deviation: algebraically detectable = %v\n", d2.Algebraic)
	fmt.Printf("Fig 3 deviation: algebraically detectable = %v, RBG loop at switch %d\n",
		d3.Algebraic, d3.LoopSwitch)
	fmt.Println()
	fmt.Println("Takeaway: rule placement decides what FOCES can see. The paper's")
	fmt.Println("future-work direction — installing rules so that no RBG loop exists —")
	fmt.Println("can be explored directly with AnalyzeDetectability.")
	return nil
}

// paperNetwork builds the six-switch topology of Figs 2/3 with one
// wildcard rule per switch.
func paperNetwork() (*foces.Topology, []foces.Rule, error) {
	b := foces.NewTopologyBuilder("paper-example")
	ids := make([]foces.SwitchID, 6)
	for i := range ids {
		ids[i] = b.AddSwitch(fmt.Sprintf("S%d", i), "")
	}
	b.Connect(ids[0], ids[1])
	b.Connect(ids[1], ids[2])
	b.Connect(ids[2], ids[5])
	b.Connect(ids[1], ids[3])
	b.Connect(ids[3], ids[4])
	b.Connect(ids[4], ids[5])
	top, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	layout := foces.FiveTuple()
	rules := make([]foces.Rule, 6)
	for i := range rules {
		rules[i] = foces.Rule{
			ID:     i,
			Switch: ids[i],
			Match:  layout.Wildcard(),
			Action: foces.Action{Type: foces.ActionOutput, Port: 0},
		}
	}
	return top, rules, nil
}
