// Slicing at scale: on a FatTree(8) fabric, sweep the number of flows
// and compare baseline (whole-network) detection time against the
// sliced per-switch detector — the paper's Fig. 12 shape. Slicing also
// localizes the compromised region.
//
// Run with:
//
//	go run ./examples/slicing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"foces"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top, err := foces.FatTree(8)
	if err != nil {
		return err
	}
	fmt.Printf("FatTree(8): %d switches, %d hosts\n\n", top.NumSwitches(), top.NumHosts())
	fmt.Printf("%8s %8s %12s %12s %8s\n", "flows", "rules", "baseline", "sliced", "speedup")

	for _, flows := range []int{240, 480, 960, 1920} {
		pairs, err := firstPairs(top, flows)
		if err != nil {
			return err
		}
		sys, err := foces.NewSystemWithPairs(top, pairs)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(flows)))
		tm := make(foces.TrafficMatrix, len(pairs))
		for _, p := range pairs {
			tm[foces.FlowKey{Src: p[0], Dst: p[1]}] = 500
		}
		// Compromise one switch so both detectors have something to find.
		if _, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
			return err
		}
		y, err := sys.ObserveCountersFor(rng, tm)
		if err != nil {
			return err
		}

		start := time.Now()
		base, err := sys.Detect(y, foces.DetectOptions{})
		if err != nil {
			return err
		}
		baseTime := time.Since(start)

		start = time.Now()
		sliced, err := sys.DetectSliced(y, foces.DetectOptions{})
		if err != nil {
			return err
		}
		slicedTime := time.Since(start)

		if !base.Anomalous || !sliced.Anomalous {
			return fmt.Errorf("%d flows: attack missed (base=%v sliced=%v)", flows, base.Anomalous, sliced.Anomalous)
		}
		fmt.Printf("%8d %8d %12v %12v %7.1fx   suspects=%v\n",
			sys.FCM().NumFlows(), sys.FCM().NumRules(),
			baseTime.Round(time.Microsecond), slicedTime.Round(time.Microsecond),
			float64(baseTime)/float64(slicedTime), truncate(sliced.Suspects, 3))
	}
	fmt.Println("\nThe baseline solve grows ~cubically with the flow count; slicing")
	fmt.Println("solves many small per-switch systems instead and pulls ahead past")
	fmt.Println("the crossover — the Fig. 12 behaviour.")
	return nil
}

// firstPairs deterministically enumerates the first k ordered host
// pairs.
func firstPairs(top *foces.Topology, k int) ([][2]foces.HostID, error) {
	var pairs [][2]foces.HostID
	for _, src := range top.Hosts() {
		for _, dst := range top.Hosts() {
			if src.ID == dst.ID {
				continue
			}
			pairs = append(pairs, [2]foces.HostID{src.ID, dst.ID})
			if len(pairs) == k {
				return pairs, nil
			}
		}
	}
	return nil, fmt.Errorf("topology has fewer than %d pairs", k)
}

func truncate(ids []foces.SwitchID, n int) []foces.SwitchID {
	if len(ids) <= n {
		return ids
	}
	return ids[:n]
}
