// Harden: close FOCES' structural blind spots. With aggregated rules,
// some deviations are provably masked — the observed counters admit an
// alternative flow-volume explanation (the paper's Fig 3). This example
// measures the blind spot of a fat-tree with destination-based rules,
// installs canary rules that break each masking dependence, and shows
// the blind spot closing — the paper's second future-work direction
// ("install rules which meet the detection conditions of FOCES").
//
// Run with:
//
//	go run ./examples/harden
package main

import (
	"fmt"
	"log"

	"foces"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top, err := foces.FatTree(4)
	if err != nil {
		return err
	}
	sys, err := foces.NewSystem(top, foces.DestAggregate)
	if err != nil {
		return err
	}
	fmt.Println(sys)

	before, err := foces.AnalyzeCoverage(sys.FCM())
	if err != nil {
		return err
	}
	fmt.Printf("\nbefore hardening: %d single-rule deviations possible\n", before.Total)
	fmt.Printf("  detectable:   %d (%.1f%%)\n", before.Detectable, before.DetectableFraction()*100)
	fmt.Printf("  masked:       %d  <- an adversary could reroute these flows invisibly\n", len(before.Undetectable))
	if len(before.Undetectable) > 0 {
		d := before.Undetectable[0]
		fmt.Printf("  example: rule %d rerouted to port %d masks flow %d (deviated path uses rules %v)\n",
			d.RuleID, d.NewPort, d.FlowID, d.HPrime)
	}

	hardened, _, after, err := foces.Harden(sys.FCM())
	if err != nil {
		return err
	}
	fmt.Printf("\nafter hardening: %d canary rules added (%d -> %d rules)\n",
		hardened.NumRules()-sys.FCM().NumRules(), sys.FCM().NumRules(), hardened.NumRules())
	fmt.Printf("  masked deviations: %d -> %d\n", len(before.Undetectable), len(after.Undetectable))

	// The canaries change nothing about forwarding — the hardened
	// intent still verifies.
	rep, err := foces.VerifyIntent(top, sys.Layout(), hardened.Rules)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", rep)
	fmt.Println("\nCanary rules forward exactly like the rules beneath them; their")
	fmt.Println("only job is to give deviated packets a counter no honest flow can")
	fmt.Println("explain — every masked deviation becomes a Fig 2-style detection.")
	return nil
}
