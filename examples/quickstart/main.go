// Quickstart: build a small SDN, observe clean counters, compromise a
// switch, and watch FOCES flag the forwarding anomaly.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"foces"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 4-ary fat-tree data center: 20 switches, 16 hosts, and one flow
	// between every host pair (240 flows).
	top, err := foces.FatTree(4)
	if err != nil {
		return err
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		return err
	}
	fmt.Println(sys)

	rng := rand.New(rand.NewSource(1))

	// 1. A clean collection interval: the counters fit the flow-counter
	// equation system, so the anomaly index stays near zero.
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		return err
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("clean network:   anomaly index = %.2f, anomalous = %v\n", res.Index, res.Anomalous)

	// 2. Compromise a random switch: one forwarding rule silently sends
	// packets out of the wrong port. The switch keeps reporting its
	// original rules and plausible counters — but the rest of the
	// network's counters no longer fit the equation system.
	atk, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap)
	if err != nil {
		return err
	}
	fmt.Printf("injected attack: switch %d rewrites rule %d to %v\n", atk.Switch, atk.RuleID, atk.NewAction)

	y, err = sys.ObserveCounters(rng, 1000)
	if err != nil {
		return err
	}
	res, err = sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("under attack:    anomaly index = %s, anomalous = %v\n", fmtIndex(res.Index), res.Anomalous)

	// 3. Sliced detection localizes the problem to suspect switches.
	sliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("localization:    suspect switches = %v\n", sliced.Suspects)

	// 4. Repair the rule; the network goes quiet again.
	if err := atk.Revert(sys.Network()); err != nil {
		return err
	}
	y, err = sys.ObserveCounters(rng, 1000)
	if err != nil {
		return err
	}
	res, err = sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("after repair:    anomaly index = %.2f, anomalous = %v\n", res.Index, res.Anomalous)
	return nil
}

func fmtIndex(v float64) string {
	if v > 1e308 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
