package foces_test

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"foces"
	"foces/internal/telemetry"
)

// The Run parity suite pins the unified entry point to the legacy
// Detect* methods: every deprecated wrapper delegates through Run, and
// every path Run dispatches must reproduce the engine outcome the
// corresponding legacy call produced.

func sameResult(t *testing.T, name string, a, b foces.Result) {
	t.Helper()
	if a.Anomalous != b.Anomalous || a.Index != b.Index || a.ErrMax != b.ErrMax || a.ErrMed != b.ErrMed {
		t.Fatalf("%s diverged: (%v, %v) vs (%v, %v)", name, a.Anomalous, a.Index, b.Anomalous, b.Index)
	}
	if !reflect.DeepEqual(a.Delta, b.Delta) {
		t.Fatalf("%s delta diverged", name)
	}
}

func sameSliced(t *testing.T, name string, a, b foces.SlicedOutcome) {
	t.Helper()
	if a.Anomalous != b.Anomalous || !reflect.DeepEqual(a.Suspects, b.Suspects) {
		t.Fatalf("%s diverged: suspects %v vs %v", name, a.Suspects, b.Suspects)
	}
	if len(a.PerSwitch) != len(b.PerSwitch) {
		t.Fatalf("%s per-switch count diverged: %d vs %d", name, len(a.PerSwitch), len(b.PerSwitch))
	}
	for i := range a.PerSwitch {
		if a.PerSwitch[i].Switch != b.PerSwitch[i].Switch || a.PerSwitch[i].Result.Index != b.PerSwitch[i].Result.Index {
			t.Fatalf("%s slice %d diverged", name, i)
		}
	}
}

func TestRunCleanParity(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(11))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(foces.Observation{Vector: y})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Path != foces.PathClean || rep.Full == nil || rep.Sliced == nil || rep.Partial != nil {
		t.Fatalf("clean dispatch wrong: path=%q full=%v sliced=%v", rep.Path, rep.Full != nil, rep.Sliced != nil)
	}
	legacyFull, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legacySliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "clean full", *rep.Full, legacyFull)
	sameSliced(t, "clean sliced", *rep.Sliced, legacySliced)
	if rep.Index != legacyFull.Index {
		t.Fatalf("Report.Index %v != full index %v", rep.Index, legacyFull.Index)
	}
	if rep.SlicedIndex != legacySliced.MaxIndex() {
		t.Fatalf("Report.SlicedIndex %v != sliced max %v", rep.SlicedIndex, legacySliced.MaxIndex())
	}
	if rep.Timings.Total <= 0 || rep.Timings.Total < rep.Timings.Full || rep.Timings.Total < rep.Timings.Sliced {
		t.Fatalf("implausible timings: %+v", rep.Timings)
	}
}

func TestRunMissingParity(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(12))
	if _, err := sys.ObserveCounters(rng, 1000); err != nil {
		t.Fatal(err)
	}
	counters := sys.Network().CollectCounters()
	missing := []foces.SwitchID{sys.Slices()[0].Switch}
	rep, err := sys.Run(foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Missing: missing}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Path != foces.PathMissing || rep.Partial == nil || rep.Sliced == nil || rep.Full != nil {
		t.Fatalf("missing dispatch wrong: path=%q", rep.Path)
	}
	legacyPartial, err := sys.DetectWithMissing(counters, missing, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legacySliced, err := sys.DetectSlicedWithMissing(counters, missing, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "missing full", rep.Partial.Result, legacyPartial.Result)
	if !reflect.DeepEqual(rep.Partial.MissingRules, legacyPartial.MissingRules) {
		t.Fatal("missing rule rows diverged")
	}
	sameSliced(t, "missing sliced", *rep.Sliced, legacySliced)
	if rep.Index != legacyPartial.Result.Index {
		t.Fatalf("Report.Index %v != partial index %v", rep.Index, legacyPartial.Result.Index)
	}
}

func TestRunReconciledParity(t *testing.T) {
	sys := newLinearSystem(t)
	rng := rand.New(rand.NewSource(13))
	yOld, err := sys.ObserveCounters(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	from := sys.Epoch()
	var victim foces.Rule
	for _, fl := range sys.FCM().Flows {
		if len(fl.RuleIDs) >= 3 {
			victim = sys.FCM().Rules[fl.RuleIDs[0]]
			break
		}
	}
	if _, err := sys.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.AddRule(victim.Switch, victim.Priority+1, victim.Match, foces.Action{Type: foces.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(foces.Observation{Vector: yOld, RunOptions: foces.RunOptions{Epoch: from}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Path != foces.PathReconciled || rep.Sliced == nil || rep.Full == nil {
		t.Fatalf("reconciled dispatch wrong: path=%q", rep.Path)
	}
	if rep.EpochLag != sys.Epoch()-from {
		t.Fatalf("EpochLag = %d, want %d", rep.EpochLag, sys.Epoch()-from)
	}
	if !reflect.DeepEqual(rep.MaskedRows, sys.AffectedSince(from)) {
		t.Fatal("MaskedRows diverged from AffectedSince")
	}
	legacy, err := sys.DetectReconciled(yOld, from)
	if err != nil {
		t.Fatal(err)
	}
	sameSliced(t, "reconciled sliced", *rep.Sliced, legacy)
	if rep.Anomalous {
		t.Fatalf("reconciled window flagged: %v", rep.Suspects)
	}
}

func TestRunModeSelection(t *testing.T) {
	sys := newLinearSystem(t)
	rng := rand.New(rand.NewSource(14))
	y, err := sys.ObserveCounters(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Mode: foces.ModeFull}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Full == nil || full.Sliced != nil || full.Timings.Sliced != 0 {
		t.Fatal("ModeFull ran the sliced engine")
	}
	sliced, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Mode: foces.ModeSliced}})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Sliced == nil || sliced.Full != nil || sliced.Timings.Full != 0 {
		t.Fatal("ModeSliced ran the full engine")
	}
	for m, want := range map[foces.Mode]string{foces.ModeAuto: "auto", foces.ModeFull: "full", foces.ModeSliced: "sliced"} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestRunValidation(t *testing.T) {
	sys := newLinearSystem(t)
	rng := rand.New(rand.NewSource(15))
	y, err := sys.ObserveCounters(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		obs  foces.Observation
		want string
	}{
		{"no counters", foces.Observation{}, "no counters"},
		{"both sources", foces.Observation{Vector: y, Counters: map[int]uint64{}}, "both"},
		{"future epoch", foces.Observation{Vector: y, RunOptions: foces.RunOptions{Epoch: sys.Epoch() + 1}}, "ahead"},
		{"missing needs counters", foces.Observation{Vector: y, RunOptions: foces.RunOptions{Missing: []foces.SwitchID{0}}}, "Counters"},
		{"stale vector", foces.Observation{Vector: y[:len(y)-1]}, "entries"},
		{"out-of-space counter", foces.Observation{Counters: map[int]uint64{sys.FCM().NumRules(): 1}}, "rule space"},
	}
	for _, tc := range cases {
		if _, err := sys.Run(tc.obs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRunTelemetry checks that EnableTelemetry arms both the system
// metric families and the recent-verdict ring, and that Run feeds them.
func TestRunTelemetry(t *testing.T) {
	sys := newLinearSystem(t)
	reg := telemetry.New()
	sys.EnableTelemetry(reg)
	if got := sys.RecentRuns(); len(got) != 0 {
		t.Fatalf("ring pre-populated: %d events", len(got))
	}
	rng := rand.New(rand.NewSource(16))
	y, err := sys.ObserveCounters(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.Run(foces.Observation{Vector: y}); err != nil {
			t.Fatal(err)
		}
	}
	events := sys.RecentRuns()
	if len(events) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Path != foces.PathClean || ev.ElapsedNS <= 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		if math.IsInf(ev.Index, 0) || math.IsInf(ev.SlicedIndex, 0) {
			t.Fatalf("event carries non-encodable index: %+v", ev)
		}
	}
	fams := reg.Gather()
	seen := map[string]bool{}
	for _, f := range fams {
		seen[f.Name] = true
	}
	for _, want := range []string{
		"foces_system_run_seconds",
		"foces_system_runs_total",
		"foces_detector_detect_seconds",
		"foces_churn_epoch",
	} {
		if !seen[want] {
			t.Fatalf("family %s not registered", want)
		}
	}
	var runs uint64
	for _, f := range fams {
		if f.Name != "foces_system_runs_total" {
			continue
		}
		for _, s := range f.Samples {
			runs += uint64(s.Value)
		}
	}
	if runs != 3 {
		t.Fatalf("foces_system_runs_total = %d, want 3", runs)
	}
}
