package foces

import (
	"fmt"
	"io"
	"math/rand"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/persist"
)

// LoadBaseline restores a baseline written by System.SaveBaseline and
// regenerates its FCM.
func LoadBaseline(r io.Reader) (*FCM, *Topology, *HeaderLayout, []Rule, error) {
	return persist.Load(r)
}

// System bundles the full FOCES pipeline over one network: topology,
// controller-installed rules, simulated data plane, flow-counter
// matrix and per-switch slices. It is the high-level entry point for
// applications; the underlying pieces remain accessible for anything
// bespoke.
type System struct {
	topology *Topology
	layout   *HeaderLayout
	control  *Controller
	network  *Network
	fcm      *FCM
	slices   []Slice
	detector *Detector
	sliced   *SlicedDetector
}

// NewSystem computes and installs rules for the topology under the
// given policy mode, generates the FCM from controller intent, and
// prepares slices and detection engines (factorizations are computed
// here, once; each detection period then costs only triangular solves).
func NewSystem(t *Topology, mode PolicyMode) (*System, error) {
	layout := header.FiveTuple()
	ctrl, network, err := controller.Bootstrap(t, layout, mode)
	if err != nil {
		return nil, fmt.Errorf("foces: bootstrap: %w", err)
	}
	s := &System{topology: t, layout: layout, control: ctrl, network: network}
	if err := s.rebuildBaseline(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewSystemWithPairs is NewSystem restricted to an explicit set of
// (src, dst) host pairs under the PairExact policy — the knob behind
// flow-count scaling studies (Fig. 12).
func NewSystemWithPairs(t *Topology, pairs [][2]HostID) (*System, error) {
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, PairExact)
	if err != nil {
		return nil, err
	}
	if err := ctrl.ComputeRulesForPairs(pairs); err != nil {
		return nil, err
	}
	network := dataplane.NewNetwork(t, layout)
	if err := ctrl.Install(network); err != nil {
		return nil, err
	}
	s := &System{topology: t, layout: layout, control: ctrl, network: network}
	if err := s.rebuildBaseline(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildBaseline regenerates everything derived from the controller's
// current rule set: FCM, slices and the prepared detection engines.
func (s *System) rebuildBaseline() error {
	f, err := fcm.Generate(s.topology, s.layout, s.control.Rules())
	if err != nil {
		return fmt.Errorf("foces: fcm: %w", err)
	}
	slices, err := core.BuildSlices(f)
	if err != nil {
		return fmt.Errorf("foces: slices: %w", err)
	}
	detector, err := core.NewDetector(f.H, core.Options{})
	if err != nil {
		return fmt.Errorf("foces: detector: %w", err)
	}
	sliced, err := core.NewSlicedDetector(slices, f.NumRules(), core.Options{})
	if err != nil {
		return fmt.Errorf("foces: sliced detector: %w", err)
	}
	s.fcm = f
	s.slices = slices
	s.detector = detector
	s.sliced = sliced
	return nil
}

// RebuildBaseline invalidates and regenerates the detection baseline —
// FCM, slices and the prepared engines — from the controller's current
// rules. Call it after any rule change (recomputed policies, reactive
// installs, repairs): detection against a stale baseline checks the
// wrong intent and will flag honest switches.
func (s *System) RebuildBaseline() error {
	return s.rebuildBaseline()
}

// ObserveCountersFor simulates one collection interval restricted to
// the given traffic matrix.
func (s *System) ObserveCountersFor(rng *rand.Rand, tm TrafficMatrix) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, tm); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// Topology returns the system's topology.
func (s *System) Topology() *Topology { return s.topology }

// Layout returns the header layout used for matches.
func (s *System) Layout() *HeaderLayout { return s.layout }

// Controller returns the control plane.
func (s *System) Controller() *Controller { return s.control }

// Network returns the simulated data plane.
func (s *System) Network() *Network { return s.network }

// FCM returns the flow-counter matrix.
func (s *System) FCM() *FCM { return s.fcm }

// Slices returns the per-switch sub-FCMs.
func (s *System) Slices() []Slice { return s.slices }

// ObserveCounters simulates one collection interval of uniform traffic
// and returns the counter vector Y' (indexed by rule ID). Counters are
// reset first, so each call is an independent window.
func (s *System) ObserveCounters(rng *rand.Rand, packetsPerFlow uint64) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, dataplane.UniformTraffic(s.topology, packetsPerFlow)); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// CounterVector converts a rule-ID keyed counter snapshot (e.g. from a
// live collector) into the ordered vector Y'.
func (s *System) CounterVector(counters map[int]uint64) []float64 {
	return s.fcm.CounterVector(counters)
}

// Detect runs Algorithm 1 on the counter vector via the prepared
// engine: the FCM factorization computed at NewSystem (or the last
// RebuildBaseline) is reused, so a steady-state period costs only
// triangular solves. opts applies per call without re-factoring.
func (s *System) Detect(y []float64, opts DetectOptions) (Result, error) {
	return s.detector.DetectWithOptions(y, opts)
}

// DetectSliced runs Algorithm 2 with per-switch localization via the
// prepared sliced engine, fanning slices out over a GOMAXPROCS-bounded
// worker pool. The outcome is identical to a sequential run.
func (s *System) DetectSliced(y []float64, opts DetectOptions) (SlicedOutcome, error) {
	return s.sliced.DetectWithOptions(y, opts)
}

// DetectWithMissing runs Algorithm 1 restricted to reachable switches:
// the rule rows of missing (unreachable, quarantined or
// counter-reset) switches are dropped and consistency is checked on
// everything still observable. This is the degraded path behind a
// fault-tolerant collector's PollResult.Missing; it re-factors per
// call, so use Detect whenever the missing set is empty.
func (s *System) DetectWithMissing(counters map[int]uint64, missing []SwitchID, opts DetectOptions) (PartialResult, error) {
	return core.DetectWithMissing(s.fcm, counters, missing, opts)
}

// DetectSlicedWithMissing runs Algorithm 2 restricted to reachable
// switches: missing switches' slices are skipped and surviving slices
// drop rows hosted on missing switches. Re-factors per call — the
// degraded counterpart of DetectSliced.
func (s *System) DetectSlicedWithMissing(counters map[int]uint64, missing []SwitchID, opts DetectOptions) (SlicedOutcome, error) {
	return core.DetectSlicedWithMissing(s.fcm, s.slices, counters, missing, opts)
}

// Detector returns the prepared baseline detection engine.
func (s *System) Detector() *Detector { return s.detector }

// SlicedDetector returns the prepared sliced detection engine.
func (s *System) SlicedDetector() *SlicedDetector { return s.sliced }

// InjectRandomAttack draws, applies and returns a random attack of the
// given kind (for experiments and drills). Revert with
// Attack.Revert(sys.Network()).
func (s *System) InjectRandomAttack(rng *rand.Rand, kind AttackKind) (Attack, error) {
	atk, err := dataplane.RandomAttack(rng, s.network, kind)
	if err != nil {
		return Attack{}, err
	}
	if err := atk.Apply(s.network); err != nil {
		return Attack{}, err
	}
	return atk, nil
}

// AnalyzeDetectability evaluates a hypothetical anomaly against this
// system's FCM.
func (s *System) AnalyzeDetectability(hPrime []int) (Detectability, error) {
	return core.AnalyzeDetectability(s.fcm, hPrime)
}

// SaveBaseline writes the system's detection baseline (topology,
// header layout, rules) as a self-contained JSON document that
// LoadBaseline can restore — e.g. to cache FCM generation across
// restarts or ship a baseline to an offline analyzer.
func (s *System) SaveBaseline(w io.Writer) error {
	return persist.Save(w, s.topology, s.layout, s.control.Rules())
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("foces.System(%s, %v, %d flows, %d rules, %d slices)",
		s.topology.Name(), s.control.Mode(), s.fcm.NumFlows(), s.fcm.NumRules(), len(s.slices))
}
