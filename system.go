package foces

import (
	"fmt"
	"io"
	"math/rand"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/persist"
)

// LoadBaseline restores a baseline written by System.SaveBaseline and
// regenerates its FCM.
func LoadBaseline(r io.Reader) (*FCM, *Topology, *HeaderLayout, []Rule, error) {
	return persist.Load(r)
}

// System bundles the full FOCES pipeline over one network: topology,
// controller-installed rules, simulated data plane, flow-counter
// matrix and per-switch slices. It is the high-level entry point for
// applications; the underlying pieces remain accessible for anything
// bespoke.
type System struct {
	topology *Topology
	layout   *HeaderLayout
	control  *Controller
	network  *Network
	fcm      *FCM
	slices   []Slice
}

// NewSystem computes and installs rules for the topology under the
// given policy mode, generates the FCM from controller intent, and
// prepares slices.
func NewSystem(t *Topology, mode PolicyMode) (*System, error) {
	layout := header.FiveTuple()
	ctrl, network, err := controller.Bootstrap(t, layout, mode)
	if err != nil {
		return nil, fmt.Errorf("foces: bootstrap: %w", err)
	}
	f, err := fcm.Generate(t, layout, ctrl.Rules())
	if err != nil {
		return nil, fmt.Errorf("foces: fcm: %w", err)
	}
	slices, err := core.BuildSlices(f)
	if err != nil {
		return nil, fmt.Errorf("foces: slices: %w", err)
	}
	return &System{
		topology: t,
		layout:   layout,
		control:  ctrl,
		network:  network,
		fcm:      f,
		slices:   slices,
	}, nil
}

// NewSystemWithPairs is NewSystem restricted to an explicit set of
// (src, dst) host pairs under the PairExact policy — the knob behind
// flow-count scaling studies (Fig. 12).
func NewSystemWithPairs(t *Topology, pairs [][2]HostID) (*System, error) {
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, PairExact)
	if err != nil {
		return nil, err
	}
	if err := ctrl.ComputeRulesForPairs(pairs); err != nil {
		return nil, err
	}
	network := dataplane.NewNetwork(t, layout)
	if err := ctrl.Install(network); err != nil {
		return nil, err
	}
	f, err := fcm.Generate(t, layout, ctrl.Rules())
	if err != nil {
		return nil, err
	}
	slices, err := core.BuildSlices(f)
	if err != nil {
		return nil, err
	}
	return &System{topology: t, layout: layout, control: ctrl, network: network, fcm: f, slices: slices}, nil
}

// ObserveCountersFor simulates one collection interval restricted to
// the given traffic matrix.
func (s *System) ObserveCountersFor(rng *rand.Rand, tm TrafficMatrix) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, tm); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// Topology returns the system's topology.
func (s *System) Topology() *Topology { return s.topology }

// Layout returns the header layout used for matches.
func (s *System) Layout() *HeaderLayout { return s.layout }

// Controller returns the control plane.
func (s *System) Controller() *Controller { return s.control }

// Network returns the simulated data plane.
func (s *System) Network() *Network { return s.network }

// FCM returns the flow-counter matrix.
func (s *System) FCM() *FCM { return s.fcm }

// Slices returns the per-switch sub-FCMs.
func (s *System) Slices() []Slice { return s.slices }

// ObserveCounters simulates one collection interval of uniform traffic
// and returns the counter vector Y' (indexed by rule ID). Counters are
// reset first, so each call is an independent window.
func (s *System) ObserveCounters(rng *rand.Rand, packetsPerFlow uint64) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, dataplane.UniformTraffic(s.topology, packetsPerFlow)); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// CounterVector converts a rule-ID keyed counter snapshot (e.g. from a
// live collector) into the ordered vector Y'.
func (s *System) CounterVector(counters map[int]uint64) []float64 {
	return s.fcm.CounterVector(counters)
}

// Detect runs Algorithm 1 on the counter vector.
func (s *System) Detect(y []float64, opts DetectOptions) (Result, error) {
	return core.Detect(s.fcm.H, y, opts)
}

// DetectSliced runs Algorithm 2 with per-switch localization.
func (s *System) DetectSliced(y []float64, opts DetectOptions) (SlicedOutcome, error) {
	return core.DetectSliced(s.slices, y, opts)
}

// InjectRandomAttack draws, applies and returns a random attack of the
// given kind (for experiments and drills). Revert with
// Attack.Revert(sys.Network()).
func (s *System) InjectRandomAttack(rng *rand.Rand, kind AttackKind) (Attack, error) {
	atk, err := dataplane.RandomAttack(rng, s.network, kind)
	if err != nil {
		return Attack{}, err
	}
	if err := atk.Apply(s.network); err != nil {
		return Attack{}, err
	}
	return atk, nil
}

// AnalyzeDetectability evaluates a hypothetical anomaly against this
// system's FCM.
func (s *System) AnalyzeDetectability(hPrime []int) (Detectability, error) {
	return core.AnalyzeDetectability(s.fcm, hPrime)
}

// SaveBaseline writes the system's detection baseline (topology,
// header layout, rules) as a self-contained JSON document that
// LoadBaseline can restore — e.g. to cache FCM generation across
// restarts or ship a baseline to an offline analyzer.
func (s *System) SaveBaseline(w io.Writer) error {
	return persist.Save(w, s.topology, s.layout, s.control.Rules())
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("foces.System(%s, %v, %d flows, %d rules, %d slices)",
		s.topology.Name(), s.control.Mode(), s.fcm.NumFlows(), s.fcm.NumRules(), len(s.slices))
}
