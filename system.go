package foces

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"

	"foces/internal/churn"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/header"
	"foces/internal/persist"
	"foces/internal/telemetry"
)

// LoadBaseline restores a baseline written by System.SaveBaseline and
// regenerates its FCM.
func LoadBaseline(r io.Reader) (*FCM, *Topology, *HeaderLayout, []Rule, error) {
	return persist.Load(r)
}

// System bundles the full FOCES pipeline over one network: topology,
// controller-installed rules, simulated data plane, flow-counter
// matrix and per-switch slices. It is the high-level entry point for
// applications; the underlying pieces remain accessible for anything
// bespoke.
type System struct {
	topology *Topology
	layout   *HeaderLayout
	control  *Controller
	network  *Network
	fcm      *FCM
	slices   []Slice
	detector *Detector
	sliced   *SlicedDetector

	// churnMgr owns the epoch-versioned baseline; fcm/slices/sliced are
	// views of its current generation. ruleHash fingerprints the
	// controller rule set the baseline was built from, backing the
	// RebuildBaseline no-op fast path.
	churnMgr  *churn.Manager
	ruleHash  uint64
	hashValid bool

	// baselineMu serializes baseline swaps (ObserveUpdate /
	// RebuildBaseline) against in-flight detections: Serve consumes
	// windows on its own goroutine, so a churn feed can land while
	// Run/RunBatch are mid-window. Detections share a read lock —
	// concurrent Runs against one baseline stay parallel.
	baselineMu sync.RWMutex

	// opts are the detection options fixed at construction — baked into
	// the prepared engines and inherited by Run observations that leave
	// Options zero.
	opts DetectOptions

	// Telemetry wiring (nil until EnableTelemetry): metric sets the
	// engines record into, the label-resolved system-level recorder,
	// and the recent-verdict ring behind RecentRuns.
	detTel   *telemetry.DetectionMetrics
	churnTel *telemetry.ChurnMetrics
	sysRec   *sysRecorder
	probeRec *probeRecorder
	events   *telemetry.Ring[RunEvent]
	wirings  map[*telemetry.Registry]*telWiring

	// Hot-path recycling: counter vectors built from Observation.Counters
	// and RunBatch's per-call scratch go back on these free lists instead
	// of the garbage collector. Mutex-guarded slices rather than
	// sync.Pool because Put of a slice value would re-box it (one
	// allocation per release — the thing being avoided).
	scratchMu sync.Mutex
	vecFree   [][]float64
	batchFree []*batchScratch
}

// NewSystem computes and installs rules for the topology under the
// given policy mode, generates the FCM from controller intent, and
// prepares slices and detection engines (factorizations are computed
// here, once; each detection period then costs only triangular solves).
func NewSystem(t *Topology, mode PolicyMode) (*System, error) {
	layout := header.FiveTuple()
	ctrl, network, err := controller.Bootstrap(t, layout, mode)
	if err != nil {
		return nil, fmt.Errorf("foces: bootstrap: %w", err)
	}
	s := &System{topology: t, layout: layout, control: ctrl, network: network}
	if err := s.rebuildBaseline(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewSystemFromParts assembles a System around an already-bootstrapped
// control and data plane — for applications (like the focesd monitor)
// that build their topology, controller and network by hand — and bakes
// opts into the prepared engines, so every Run inherits them without
// per-call plumbing. The controller's rules must already be installed
// on the network; no installation is performed here.
func NewSystemFromParts(t *Topology, layout *HeaderLayout, ctrl *Controller, network *Network, opts DetectOptions) (*System, error) {
	if t == nil || layout == nil || ctrl == nil || network == nil {
		return nil, fmt.Errorf("foces: NewSystemFromParts: nil part")
	}
	s := &System{topology: t, layout: layout, control: ctrl, network: network, opts: opts}
	if err := s.rebuildBaseline(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewSystemWithPairs is NewSystem restricted to an explicit set of
// (src, dst) host pairs under the PairExact policy — the knob behind
// flow-count scaling studies (Fig. 12).
func NewSystemWithPairs(t *Topology, pairs [][2]HostID) (*System, error) {
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, PairExact)
	if err != nil {
		return nil, err
	}
	if err := ctrl.ComputeRulesForPairs(pairs); err != nil {
		return nil, err
	}
	network := dataplane.NewNetwork(t, layout)
	if err := ctrl.Install(network); err != nil {
		return nil, err
	}
	s := &System{topology: t, layout: layout, control: ctrl, network: network}
	if err := s.rebuildBaseline(); err != nil {
		return nil, err
	}
	return s, nil
}

// ruleSetHash fingerprints a rule set (plus its ID space) with FNV-1a
// over every field that influences the FCM. Hash equality ⇒ identical
// baseline, so RebuildBaseline can skip regeneration.
func ruleSetHash(rules []Rule, space int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(space))
	for _, r := range rules {
		word(uint64(r.ID))
		word(uint64(r.Switch))
		word(uint64(r.Priority))
		word(uint64(r.Action.Type))
		word(uint64(r.Action.Port))
		if b, err := r.Match.MarshalBinary(); err == nil {
			h.Write(b)
		}
	}
	return h.Sum64()
}

// rebuildBaseline regenerates everything derived from the controller's
// current rule set: the churn manager (FCM, slices, prepared sliced
// engine) and the full-matrix engine.
func (s *System) rebuildBaseline() error {
	mgr, err := churn.NewManager(s.topology, s.layout, s.control.Rules(), s.control.RuleSpace(), s.opts, churn.Config{})
	if err != nil {
		return fmt.Errorf("foces: baseline: %w", err)
	}
	if s.detTel != nil || s.churnTel != nil {
		mgr.SetTelemetry(s.detTel, s.churnTel)
	}
	detector, err := mgr.Full()
	if err != nil {
		return fmt.Errorf("foces: detector: %w", err)
	}
	s.churnMgr = mgr
	s.fcm = mgr.FCM()
	s.slices = mgr.Slices()
	s.detector = detector
	s.sliced = mgr.Sliced()
	s.ruleHash = ruleSetHash(s.control.Rules(), s.control.RuleSpace())
	s.hashValid = true
	return nil
}

// RebuildBaseline invalidates and regenerates the detection baseline —
// FCM, slices and the prepared engines — from the controller's current
// rules. Call it after any rule change (recomputed policies, reactive
// installs, repairs): detection against a stale baseline checks the
// wrong intent and will flag honest switches.
//
// When the installed rule set is unchanged since the last build
// (fingerprinted by hash), the call is a no-op — callers may invoke it
// defensively on every cycle without paying regeneration. Prefer
// ApplyUpdate for incremental changes: it re-traces only affected
// sources instead of rebuilding from scratch.
func (s *System) RebuildBaseline() error {
	s.baselineMu.Lock()
	defer s.baselineMu.Unlock()
	if s.hashValid && s.fcm != nil &&
		ruleSetHash(s.control.Rules(), s.control.RuleSpace()) == s.ruleHash {
		return nil
	}
	return s.rebuildBaseline()
}

// ObserveCountersFor simulates one collection interval restricted to
// the given traffic matrix.
func (s *System) ObserveCountersFor(rng *rand.Rand, tm TrafficMatrix) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, tm); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// Topology returns the system's topology.
func (s *System) Topology() *Topology { return s.topology }

// Layout returns the header layout used for matches.
func (s *System) Layout() *HeaderLayout { return s.layout }

// Controller returns the control plane.
func (s *System) Controller() *Controller { return s.control }

// Network returns the simulated data plane.
func (s *System) Network() *Network { return s.network }

// FCM returns the flow-counter matrix.
func (s *System) FCM() *FCM { return s.fcm }

// Slices returns the per-switch sub-FCMs.
func (s *System) Slices() []Slice { return s.slices }

// ObserveCounters simulates one collection interval of uniform traffic
// and returns the counter vector Y' (indexed by rule ID). Counters are
// reset first, so each call is an independent window.
func (s *System) ObserveCounters(rng *rand.Rand, packetsPerFlow uint64) ([]float64, error) {
	s.network.ResetCounters()
	if _, err := s.network.Run(rng, dataplane.UniformTraffic(s.topology, packetsPerFlow)); err != nil {
		return nil, err
	}
	return s.fcm.CounterVector(s.network.CollectCounters()), nil
}

// CounterVector converts a rule-ID keyed counter snapshot (e.g. from a
// live collector) into the ordered vector Y'. A counter whose rule ID
// falls outside the baseline's rule space is an error: it means the
// snapshot and the baseline disagree about the installed rule set
// (typically a stale baseline — rebuild or reconcile first), and
// silently dropping the sample would hide exactly the inconsistency
// FOCES exists to detect.
func (s *System) CounterVector(counters map[int]uint64) ([]float64, error) {
	space := s.fcm.NumRules()
	for id := range counters {
		if id < 0 || id >= space {
			return nil, fmt.Errorf("foces: counter for rule %d outside the baseline's %d-rule space (snapshot from a different rule generation?)", id, space)
		}
	}
	return s.fcm.CounterVector(counters), nil
}

// fullDetector returns the Algorithm 1 engine for the current epoch.
// After ApplyUpdate the engine is stale and rebuilt lazily here (the
// churn manager caches it per epoch), keeping the update path itself
// free of the O(n³) global factorization. The manager's cache is the
// only store — writing a System field here would race with the
// concurrent detections sharing baselineMu's read side.
func (s *System) fullDetector() (*Detector, error) {
	if s.churnMgr == nil {
		return s.detector, nil
	}
	return s.churnMgr.Full()
}

// Detect runs Algorithm 1 on the counter vector via the prepared
// engine.
//
// Deprecated: use Run with an Observation in ModeFull; Run dispatches
// every detection path through one entry point and returns a unified
// Report. Detect remains as a thin wrapper.
func (s *System) Detect(y []float64, opts DetectOptions) (Result, error) {
	rep, err := s.Run(Observation{Vector: y, RunOptions: RunOptions{Epoch: s.Epoch(), Mode: ModeFull, Options: opts}})
	if err != nil {
		return Result{}, err
	}
	return *rep.Full, nil
}

// DetectSliced runs Algorithm 2 with per-switch localization via the
// prepared sliced engine.
//
// Deprecated: use Run with an Observation in ModeSliced. DetectSliced
// remains as a thin wrapper.
func (s *System) DetectSliced(y []float64, opts DetectOptions) (SlicedOutcome, error) {
	rep, err := s.Run(Observation{Vector: y, RunOptions: RunOptions{Epoch: s.Epoch(), Mode: ModeSliced, Options: opts}})
	if err != nil {
		return SlicedOutcome{}, err
	}
	return *rep.Sliced, nil
}

// DetectWithMissing runs Algorithm 1 restricted to reachable switches:
// the rule rows of missing (unreachable, quarantined or counter-reset)
// switches are dropped and consistency is checked on everything still
// observable.
//
// Deprecated: use Run with Observation.Missing set (non-nil).
// DetectWithMissing remains as a thin wrapper.
func (s *System) DetectWithMissing(counters map[int]uint64, missing []SwitchID, opts DetectOptions) (PartialResult, error) {
	if missing == nil {
		missing = []SwitchID{} // non-nil selects Run's partial path
	}
	rep, err := s.Run(Observation{Counters: counters, RunOptions: RunOptions{Missing: missing, Epoch: s.Epoch(), Mode: ModeFull, Options: opts}})
	if err != nil {
		return PartialResult{}, err
	}
	return *rep.Partial, nil
}

// DetectSlicedWithMissing runs Algorithm 2 restricted to reachable
// switches: missing switches' slices are skipped and surviving slices
// drop rows hosted on missing switches.
//
// Deprecated: use Run with Observation.Missing set (non-nil) in
// ModeSliced. DetectSlicedWithMissing remains as a thin wrapper.
func (s *System) DetectSlicedWithMissing(counters map[int]uint64, missing []SwitchID, opts DetectOptions) (SlicedOutcome, error) {
	if missing == nil {
		missing = []SwitchID{}
	}
	rep, err := s.Run(Observation{Counters: counters, RunOptions: RunOptions{Missing: missing, Epoch: s.Epoch(), Mode: ModeSliced, Options: opts}})
	if err != nil {
		return SlicedOutcome{}, err
	}
	return *rep.Sliced, nil
}

// Detector returns the prepared baseline detection engine (rebuilt
// lazily if rule updates made it stale).
func (s *System) Detector() *Detector {
	if d, err := s.fullDetector(); err == nil {
		return d
	}
	return s.detector
}

// SlicedDetector returns the prepared sliced detection engine.
func (s *System) SlicedDetector() *SlicedDetector { return s.sliced }

// ApplyUpdate incrementally folds a batch of rule changes — already
// applied to the controller — into the detection baseline, advancing
// the churn epoch: the data-plane tables are patched, only sources
// whose forwarding touched the changed switches are re-traced, and
// per-switch engines are reused or rank-one-repaired where the slice
// structure permits. The full-matrix engine goes stale and is rebuilt
// lazily on the next Detect. Prefer the AddRule/RemoveRule/ModifyRule
// wrappers, which drive the controller and this method together.
func (s *System) ApplyUpdate(events []RuleChange) (ChurnUpdate, error) {
	for _, e := range events {
		tbl, err := s.network.Table(e.Rule.Switch)
		if err != nil {
			return ChurnUpdate{}, fmt.Errorf("foces: apply update: %w", err)
		}
		switch e.Op {
		case controller.RuleRemoved:
			if err := tbl.Remove(e.Rule.ID); err != nil {
				return ChurnUpdate{}, fmt.Errorf("foces: apply update: %w", err)
			}
		case controller.RuleModified:
			if err := tbl.Remove(e.Rule.ID); err != nil {
				return ChurnUpdate{}, fmt.Errorf("foces: apply update: %w", err)
			}
			if err := tbl.Install(e.Rule); err != nil {
				return ChurnUpdate{}, fmt.Errorf("foces: apply update: %w", err)
			}
		case controller.RuleAdded:
			if err := tbl.Install(e.Rule); err != nil {
				return ChurnUpdate{}, fmt.Errorf("foces: apply update: %w", err)
			}
		}
	}
	return s.ObserveUpdate(events)
}

// ObserveUpdate folds a batch of rule changes into the detection
// baseline without touching the data plane — for monitors whose rule
// changes reach the switches through their own control channel (e.g.
// focesd's flow-mod clients) and only need the baseline to follow.
// ApplyUpdate is ObserveUpdate plus the table patching.
func (s *System) ObserveUpdate(events []RuleChange) (ChurnUpdate, error) {
	s.baselineMu.Lock()
	defer s.baselineMu.Unlock()
	u, err := s.churnMgr.Apply(events)
	if err != nil {
		return ChurnUpdate{}, err
	}
	s.fcm = s.churnMgr.FCM()
	s.slices = s.churnMgr.Slices()
	s.sliced = s.churnMgr.Sliced()
	s.ruleHash = ruleSetHash(s.control.Rules(), s.control.RuleSpace())
	s.hashValid = true
	return u, nil
}

// AddRule installs a rule live: the controller allocates a fresh
// never-reused ID, the data plane installs it, and the baseline is
// updated incrementally.
func (s *System) AddRule(sw SwitchID, priority int, match HeaderSpace, act Action) (Rule, ChurnUpdate, error) {
	r, err := s.control.AddRule(sw, priority, match, act)
	if err != nil {
		return Rule{}, ChurnUpdate{}, err
	}
	u, err := s.ApplyUpdate([]RuleChange{{Op: controller.RuleAdded, Rule: r}})
	return r, u, err
}

// RemoveRule removes a rule live; its ID is retired permanently and its
// FCM row becomes a placeholder.
func (s *System) RemoveRule(id int) (ChurnUpdate, error) {
	r, err := s.control.RemoveRule(id)
	if err != nil {
		return ChurnUpdate{}, err
	}
	return s.ApplyUpdate([]RuleChange{{Op: controller.RuleRemoved, Rule: r}})
}

// ModifyRule rewrites a live rule in place (same switch, same ID) and
// updates the baseline incrementally.
func (s *System) ModifyRule(id, priority int, match HeaderSpace, act Action) (ChurnUpdate, error) {
	prev, ok := s.control.Rule(id)
	if !ok {
		return ChurnUpdate{}, fmt.Errorf("foces: modify rule: unknown rule %d", id)
	}
	r, err := s.control.ModifyRule(id, priority, match, act)
	if err != nil {
		return ChurnUpdate{}, err
	}
	return s.ApplyUpdate([]RuleChange{{Op: controller.RuleModified, Rule: r, Prev: prev}})
}

// Epoch reports the baseline's churn epoch (0 until the first update
// after the last full rebuild).
func (s *System) Epoch() uint64 { return s.churnMgr.Epoch() }

// ChurnStats returns cumulative incremental-maintenance statistics.
func (s *System) ChurnStats() ChurnStats { return s.churnMgr.Stats() }

// ChurnLog returns the epoch log, oldest first.
func (s *System) ChurnLog() []ChurnUpdate { return s.churnMgr.Updates() }

// ChurnManager exposes the epoch-versioned baseline owner, which
// carries the per-slice replication state (churn.ReplicaStates) a
// cluster coordinator ships to detector nodes.
func (s *System) ChurnManager() *churn.Manager { return s.churnMgr }

// AffectedSince returns the rule rows changed by updates applied after
// epoch `since` — the rows a counter window with a baseline snapshot
// from that epoch must mask.
func (s *System) AffectedSince(since uint64) []int { return s.churnMgr.AffectedSince(since) }

// DetectReconciled runs sliced detection on a counter window whose
// baseline snapshot was taken at epoch `from`: rule rows changed by the
// updates the window straddles are masked out of the equation system,
// so mid-window rule churn is reconciled instead of read as a
// forwarding anomaly.
//
// Deprecated: use Run with Observation.Epoch set to the window's
// snapshot epoch. DetectReconciled remains as a thin wrapper.
func (s *System) DetectReconciled(y []float64, from uint64) (SlicedOutcome, error) {
	// A pre-churn window is legitimately short of newly added rules;
	// Run's clean path (from == current epoch) rejects short vectors, so
	// pad here to preserve the legacy contract on both paths.
	if space := s.fcm.NumRules(); len(y) < space {
		padded := make([]float64, space)
		copy(padded, y)
		y = padded
	}
	rep, err := s.Run(Observation{Vector: y, RunOptions: RunOptions{Epoch: from, Mode: ModeSliced}})
	if err != nil {
		return SlicedOutcome{}, err
	}
	return *rep.Sliced, nil
}

// InjectRandomAttack draws, applies and returns a random attack of the
// given kind (for experiments and drills). Revert with
// Attack.Revert(sys.Network()).
func (s *System) InjectRandomAttack(rng *rand.Rand, kind AttackKind) (Attack, error) {
	atk, err := dataplane.RandomAttack(rng, s.network, kind)
	if err != nil {
		return Attack{}, err
	}
	if err := atk.Apply(s.network); err != nil {
		return Attack{}, err
	}
	return atk, nil
}

// AnalyzeDetectability evaluates a hypothetical anomaly against this
// system's FCM.
func (s *System) AnalyzeDetectability(hPrime []int) (Detectability, error) {
	return core.AnalyzeDetectability(s.fcm, hPrime)
}

// SaveBaseline writes the system's detection baseline (topology,
// header layout, rules) as a self-contained JSON document that
// LoadBaseline can restore — e.g. to cache FCM generation across
// restarts or ship a baseline to an offline analyzer.
func (s *System) SaveBaseline(w io.Writer) error {
	return persist.Save(w, s.topology, s.layout, s.control.Rules())
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("foces.System(%s, %v, %d flows, %d rules, %d slices)",
		s.topology.Name(), s.control.Mode(), s.fcm.NumFlows(), s.fcm.NumRules(), len(s.slices))
}
