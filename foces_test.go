package foces_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"foces"
)

func newSystem(t testing.TB, name string, mode foces.PolicyMode) *foces.System {
	t.Helper()
	top, err := foces.TopologyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, mode)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemCleanDetection(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(1))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("clean network flagged: AI=%v", res.Index)
	}
	sliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Anomalous {
		t.Fatal("clean network flagged by slicing")
	}
}

func TestSystemDetectsInjectedAttack(t *testing.T) {
	sys := newSystem(t, "bcube14", foces.PairExact)
	rng := rand.New(rand.NewSource(2))
	atk, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("attack missed: AI=%v", res.Index)
	}
	sliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sliced.Anomalous || len(sliced.Suspects) == 0 {
		t.Fatal("sliced detection must flag and localize")
	}
	// After repair the network must go quiet again.
	if err := atk.Revert(sys.Network()); err != nil {
		t.Fatal(err)
	}
	y, err = sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err = sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatal("repaired network still flagged")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.DestAggregate)
	if sys.Topology().NumSwitches() != 20 {
		t.Fatal("topology accessor wrong")
	}
	if sys.FCM().NumRules() == 0 || len(sys.Slices()) == 0 {
		t.Fatal("fcm/slices missing")
	}
	if sys.Controller().Mode() != foces.DestAggregate {
		t.Fatal("controller accessor wrong")
	}
	if sys.Network().RuleCount() != sys.Controller().NumRules() {
		t.Fatal("network rules mismatch")
	}
	if sys.Layout().Width() == 0 {
		t.Fatal("layout missing")
	}
	if !strings.Contains(sys.String(), "FatTree(4)") {
		t.Fatalf("String() = %q", sys.String())
	}
}

func TestSystemCounterVector(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	y, err := sys.CounterVector(map[int]uint64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 9 || len(y) != sys.FCM().NumRules() {
		t.Fatal("counter vector wrong")
	}
	if _, err := sys.CounterVector(map[int]uint64{sys.FCM().NumRules(): 1}); err == nil {
		t.Fatal("out-of-range rule ID silently accepted")
	}
	if _, err := sys.CounterVector(map[int]uint64{-1: 1}); err == nil {
		t.Fatal("negative rule ID silently accepted")
	}
}

func TestPackageLevelHelpers(t *testing.T) {
	top, err := foces.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	slices, err := foces.BuildSlices(sys.FCM())
	if err != nil || len(slices) == 0 {
		t.Fatalf("BuildSlices: %d, %v", len(slices), err)
	}
	rng := rand.New(rand.NewSource(3))
	y, err := sys.ObserveCounters(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := foces.Detect(sys.FCM(), y, foces.DetectOptions{})
	if err != nil || res.Anomalous {
		t.Fatalf("Detect: %+v, %v", res, err)
	}
	out, err := foces.DetectSliced(slices, y, foces.DetectOptions{})
	if err != nil || out.Anomalous {
		t.Fatalf("DetectSliced: %+v, %v", out, err)
	}
	if _, err := foces.BCube(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := foces.DCell(4); err != nil {
		t.Fatal(err)
	}
	if _, err := foces.Stanford(); err != nil {
		t.Fatal(err)
	}
	tm := foces.UniformTraffic(top, 10)
	if len(tm) != 240 {
		t.Fatalf("traffic matrix = %d entries", len(tm))
	}
	if foces.DefaultThreshold != 4.5 {
		t.Fatal("default threshold must be 4.5")
	}
}

func TestSystemDetectability(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	// A deviation onto a single foreign rule is (almost surely)
	// detectable.
	d, err := sys.AnalyzeDetectability([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0's own full history IS rule set of flow 0 only if len==1;
	// just assert the call works and verdicts are coherent.
	if !d.Algebraic && d.RBGLoopFree {
		t.Fatal("incoherent detectability verdict")
	}
}

func TestCustomTopologyViaBuilder(t *testing.T) {
	b := foces.NewTopologyBuilder("custom")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	b.Connect(s0, s1)
	b.AddHost("h0", ipv4(10, 0, 0, 1), s0)
	b.AddHost("h1", ipv4(10, 0, 0, 2), s1)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	y, err := sys.ObserveCounters(rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil || res.Anomalous {
		t.Fatalf("custom topology detection: %+v %v", res, err)
	}
	if math.IsNaN(res.Index) {
		t.Fatal("NaN index")
	}
}

func ipv4(a, b, c, d byte) uint64 {
	return uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
}

func TestVerifyIntent(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rep, err := foces.VerifyIntent(sys.Topology(), sys.Layout(), sys.Controller().Rules())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean intent failed verification: %s", rep)
	}
}

func TestJellyfishEndToEnd(t *testing.T) {
	top, err := foces.Jellyfish(16, 4, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := foces.VerifyIntent(top, sys.Layout(), sys.Controller().Rules())
	if err != nil || !rep.OK() {
		t.Fatalf("jellyfish intent: %v %v", rep, err)
	}
	rng := rand.New(rand.NewSource(1))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil || res.Anomalous {
		t.Fatalf("clean jellyfish flagged: %+v %v", res, err)
	}
	if _, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
		t.Fatal(err)
	}
	y, err = sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err = sys.Detect(y, foces.DetectOptions{})
	if err != nil || !res.Anomalous {
		t.Fatalf("jellyfish attack missed: %+v %v", res, err)
	}
}

func TestSystemPreparedEnginesMatchFreeFunctions(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	if sys.Detector() == nil || sys.SlicedDetector() == nil {
		t.Fatal("NewSystem must prepare both engines")
	}
	rng := rand.New(rand.NewSource(7))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sys.Detect(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := foces.Detect(sys.FCM(), y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Index != free.Index || engine.Anomalous != free.Anomalous {
		t.Fatalf("engine result (%v, %v) != free result (%v, %v)",
			engine.Index, engine.Anomalous, free.Index, free.Anomalous)
	}
	engineSliced, err := sys.DetectSliced(y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	freeSliced, err := foces.DetectSliced(sys.Slices(), y, foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if engineSliced.Anomalous != freeSliced.Anomalous ||
		engineSliced.MaxIndex() != freeSliced.MaxIndex() ||
		len(engineSliced.Suspects) != len(freeSliced.Suspects) {
		t.Fatalf("engine sliced %+v != free sliced %+v", engineSliced, freeSliced)
	}
	// Standalone engine constructors agree with the embedded ones.
	det, err := foces.NewDetector(sys.FCM(), foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := det.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	if standalone.Index != engine.Index {
		t.Fatalf("standalone index %v != system index %v", standalone.Index, engine.Index)
	}
	sdet, err := foces.NewSlicedDetector(sys.FCM(), sys.Slices(), foces.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	standaloneSliced, err := sdet.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	if standaloneSliced.MaxIndex() != engineSliced.MaxIndex() {
		t.Fatal("standalone sliced engine diverged from system engine")
	}
}

func TestSystemRebuildBaselineOnRuleChange(t *testing.T) {
	top, err := foces.TopologyByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := foces.NewSystem(top, foces.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	fullRules := sys.FCM().NumRules()
	// Shrink the installed intent to a single pair; the old engines are
	// now stale until RebuildBaseline regenerates them.
	hosts := top.Hosts()
	if err := sys.Controller().ComputeRulesForPairs([][2]foces.HostID{{hosts[0].ID, hosts[1].ID}}); err != nil {
		t.Fatal(err)
	}
	if sys.FCM().NumRules() != fullRules {
		t.Fatal("FCM must be untouched before RebuildBaseline")
	}
	if err := sys.RebuildBaseline(); err != nil {
		t.Fatal(err)
	}
	if sys.FCM().NumRules() >= fullRules {
		t.Fatalf("rebuilt FCM still has %d rules (was %d)", sys.FCM().NumRules(), fullRules)
	}
	// The rebuilt engines must accept the new counter-vector length.
	y := make([]float64, sys.FCM().NumRules())
	if _, err := sys.Detect(y, foces.DetectOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DetectSliced(y, foces.DetectOptions{}); err != nil {
		t.Fatal(err)
	}
	// And reject the old one: the stale length no longer fits.
	stale := make([]float64, fullRules)
	if _, err := sys.Detect(stale, foces.DetectOptions{}); err == nil {
		t.Fatal("stale counter vector must be rejected after rebuild")
	}
}
