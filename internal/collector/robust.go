package collector

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"foces/internal/openflow"
	"foces/internal/telemetry"
	"foces/internal/topo"
)

// StatsClient is the slice of openflow.Client the robust collector
// needs: deadline-bounded counter polls and a cheap liveness probe.
// Narrowing to an interface keeps the fault machinery testable against
// scripted switches without a real control channel.
type StatsClient interface {
	FlowStatsContext(ctx context.Context) (*openflow.FlowStatsReply, error)
	EchoContext(ctx context.Context) error
}

// SwitchHealth is the collector's per-switch availability state.
type SwitchHealth int

// Health states. A switch moves Healthy → Degraded on its first failed
// poll, Degraded → Quarantined after QuarantineAfter consecutive
// failures, and Quarantined → Degraded when a reinstatement probe
// succeeds (its first post-outage poll only re-baselines the delta
// tracker, so one clean period passes before its counters count again).
const (
	Healthy SwitchHealth = iota
	Degraded
	Quarantined
)

func (h SwitchHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("health-%d", int(h))
	}
}

// RobustConfig tunes the fault-tolerant collector. The zero value
// selects production-ish defaults scaled for the in-memory channel.
type RobustConfig struct {
	// Deadline bounds each individual request; zero selects 2s.
	Deadline time.Duration
	// Attempts is the maximum number of flow-stats requests per switch
	// per period (1 = no retry); zero selects 3.
	Attempts int
	// BackoffBase is the first retry delay; it doubles per attempt up
	// to BackoffMax. Zero selects 50ms (capped at 1s).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff; zero selects 1s.
	BackoffMax time.Duration
	// JitterFrac spreads each backoff by ±JitterFrac so synchronized
	// retries cannot stampede a recovering switch; zero selects 0.2,
	// negative disables jitter.
	JitterFrac float64
	// QuarantineAfter is the number of consecutive failed polls before
	// a switch is quarantined (skipped entirely, so a flapping switch
	// cannot stall the detection period); zero selects 2.
	QuarantineAfter int
	// ProbeEvery is how many periods a quarantined switch waits between
	// reinstatement probes; zero selects 3.
	ProbeEvery int
	// Seed drives backoff jitter deterministically; zero selects 1.
	Seed int64
}

func (c RobustConfig) withDefaults() RobustConfig {
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RobustMetrics is a snapshot of the collection plane's operational
// counters — the /status surface of the collector.
type RobustMetrics struct {
	// Periods is the number of Poll calls so far.
	Periods uint64 `json:"periods"`
	// Requests counts flow-stats requests sent, including retries.
	Requests uint64 `json:"requests"`
	// Retries counts re-sent requests after a per-request failure.
	Retries uint64 `json:"retries"`
	// Failures counts polls that exhausted every attempt.
	Failures uint64 `json:"failures"`
	// Timeouts counts individual requests that hit their deadline.
	Timeouts uint64 `json:"timeouts"`
	// Probes counts reinstatement probes sent to quarantined switches.
	Probes uint64 `json:"probes"`
	// Quarantines counts transitions into quarantine.
	Quarantines uint64 `json:"quarantines"`
	// Reinstatements counts successful probe recoveries.
	Reinstatements uint64 `json:"reinstatements"`
	// Resets counts detected counter resets (switch restarts).
	Resets uint64 `json:"resets"`
	// DuplicateRules counts rule IDs reported by more than one switch.
	DuplicateRules uint64 `json:"duplicateRules"`
	// LastElapsed is the wall-clock duration of the latest Poll.
	LastElapsed time.Duration `json:"lastElapsedNs"`
}

// PollResult is one period's collection outcome.
type PollResult struct {
	// Deltas holds per-period counter deltas keyed by global rule ID,
	// from switches that answered and had a valid one-period baseline.
	Deltas map[int]uint64
	// Missing lists (sorted) every switch whose counters are unusable
	// this period: quarantined, poll failed, counters reset, or freshly
	// (re)baselined. Feed it to core.DetectWithMissing.
	Missing []topo.SwitchID
	// Resets lists switches whose counters went backwards this period.
	Resets []topo.SwitchID
	// Reinstated lists switches brought back from quarantine by a
	// successful probe this period.
	Reinstated []topo.SwitchID
	// DuplicateRules lists rule IDs reported by more than one switch —
	// a compromised switch shadowing another's counters. The lowest
	// switch ID's report wins deterministically; localization should
	// treat every involved switch as suspect.
	DuplicateRules []int
	// Epoch is the rule-set epoch (SetEpoch) the poll was merged under.
	Epoch uint64
	// Straddled maps each switch whose delta window spans one or more
	// rule updates to the epoch its baseline snapshot was taken under.
	// The union of rules changed in epochs (from, Epoch] must be masked
	// out of this period's detection (core.SlicedDetector.DetectMasked).
	Straddled map[topo.SwitchID]uint64
	// Elapsed is the wall-clock duration of the poll.
	Elapsed time.Duration
}

// switchState is one switch's slot in the health state machine.
type switchState struct {
	health     SwitchHealth
	fails      int // consecutive failed polls
	sinceProbe int // periods spent waiting in quarantine
}

// RobustCollector is a production-grade statistics collection plane:
// every switch is polled concurrently under a per-request deadline with
// bounded exponential-backoff retries, a per-switch health state
// machine quarantines flapping switches (with periodic reinstatement
// probes) so they cannot stall a detection period, and a windowed-delta
// layer converts cumulative counters to per-period deltas while
// detecting counter resets. Quarantined/failed/reset switches surface
// in PollResult.Missing, which plugs straight into
// core.DetectWithMissing / core.DetectSlicedWithMissing.
//
// Safe for concurrent use, though polls are serialized by design: a
// period's state transitions must observe the previous period's.
type RobustCollector struct {
	cfg RobustConfig

	mu      sync.Mutex
	clients map[topo.SwitchID]StatsClient
	order   []topo.SwitchID
	state   map[topo.SwitchID]*switchState
	deltas  *DeltaTracker
	metrics RobustMetrics
	tel     *telemetry.CollectorMetrics // nil unless SetTelemetry wired a metric set

	sleep func(time.Duration) // test hook; nil = time.Sleep
	now   func() time.Time    // test hook; nil = time.Now
}

// SetTelemetry mirrors the collector's operational counters into a
// telemetry metric set (pass nil to detach). The snapshot-style
// RobustMetrics API is unaffected; telemetry sees the same counts as
// monotonic families plus poll-latency and health gauges.
func (rc *RobustCollector) SetTelemetry(m *telemetry.CollectorMetrics) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.tel = m
}

// NewRobust builds a fault-tolerant collector over per-switch control
// clients.
func NewRobust(clients map[topo.SwitchID]*openflow.Client, cfg RobustConfig) *RobustCollector {
	generic := make(map[topo.SwitchID]StatsClient, len(clients))
	for sw, c := range clients {
		generic[sw] = c
	}
	return NewRobustFromStats(generic, cfg)
}

// NewRobustFromStats is NewRobust over any StatsClient implementation.
func NewRobustFromStats(clients map[topo.SwitchID]StatsClient, cfg RobustConfig) *RobustCollector {
	rc := &RobustCollector{
		cfg:     cfg.withDefaults(),
		clients: make(map[topo.SwitchID]StatsClient, len(clients)),
		state:   make(map[topo.SwitchID]*switchState, len(clients)),
		deltas:  NewDeltaTracker(),
	}
	for sw, c := range clients {
		rc.clients[sw] = c
		rc.state[sw] = &switchState{}
		rc.order = append(rc.order, sw)
	}
	sort.Slice(rc.order, func(i, j int) bool { return rc.order[i] < rc.order[j] })
	return rc
}

// SetEpoch tags snapshots consumed from now on with the given rule-set
// epoch. The churn subsystem calls it whenever an update is applied;
// the next Poll then reports, per switch, whether the delta window
// straddled the update.
func (rc *RobustCollector) SetEpoch(e uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.deltas.SetEpoch(e)
}

// Epoch reports the rule-set epoch snapshots are currently tagged with.
func (rc *RobustCollector) Epoch() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.deltas.Epoch()
}

// Metrics returns a snapshot of the collection counters.
func (rc *RobustCollector) Metrics() RobustMetrics {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.metrics
}

// Health returns every switch's current availability state.
func (rc *RobustCollector) Health() map[topo.SwitchID]SwitchHealth {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(map[topo.SwitchID]SwitchHealth, len(rc.state))
	for sw, st := range rc.state {
		out[sw] = st.health
	}
	return out
}

// Quarantined returns the sorted set of quarantined switches.
func (rc *RobustCollector) Quarantined() []topo.SwitchID {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var out []topo.SwitchID
	for _, sw := range rc.order {
		if rc.state[sw].health == Quarantined {
			out = append(out, sw)
		}
	}
	return out
}

// Prime performs one poll solely to establish every switch's delta
// baseline — call it once after rule installation, before the first
// detection period, so period one produces clean one-period deltas.
func (rc *RobustCollector) Prime(ctx context.Context) error {
	_, err := rc.Poll(ctx)
	return err
}

// pollOutcome is one switch's raw result from the concurrent phase.
type pollOutcome struct {
	reply    *openflow.FlowStatsReply
	err      error
	requests uint64
	retries  uint64
	timeouts uint64
	probed   bool
	probeOK  bool
}

// pollPlan is one switch's assignment for the concurrent fetch phase.
type pollPlan struct {
	sw     topo.SwitchID
	client StatsClient
	probe  bool // quarantined: echo first, poll only if it succeeds
}

// planLocked selects the switches to contact this period, advancing
// quarantine probe cadence. due restricts the plan to a subset (nil =
// every switch); switches outside due are untouched — no health
// transition, no probe-cadence tick. Caller holds rc.mu.
func (rc *RobustCollector) planLocked(due map[topo.SwitchID]bool) []pollPlan {
	var plans []pollPlan
	for _, sw := range rc.order {
		if due != nil && !due[sw] {
			continue
		}
		st := rc.state[sw]
		if st.health == Quarantined {
			st.sinceProbe++
			if st.sinceProbe >= rc.cfg.ProbeEvery {
				st.sinceProbe = 0
				plans = append(plans, pollPlan{sw: sw, client: rc.clients[sw], probe: true})
			}
			continue
		}
		plans = append(plans, pollPlan{sw: sw, client: rc.clients[sw]})
	}
	return plans
}

// ctxSleep waits d before a retry, returning early (false) when ctx is
// cancelled — a Serve shutdown must not be delayed by an in-flight
// backoff wait. hook substitutes the wait in tests.
func ctxSleep(ctx context.Context, d time.Duration, hook func(time.Duration)) bool {
	if hook != nil {
		hook(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// fetchOutcomes runs the concurrent phase: every planned switch is
// probed/polled under per-request deadlines with bounded retries.
// Backoff waits between retries abort promptly on ctx cancellation.
func fetchOutcomes(ctx context.Context, cfg RobustConfig, plans []pollPlan, period uint64, sleep func(time.Duration)) map[topo.SwitchID]*pollOutcome {
	outcomes := make(map[topo.SwitchID]*pollOutcome, len(plans))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range plans {
		wg.Add(1)
		go func(p pollPlan) {
			defer wg.Done()
			o := &pollOutcome{probed: p.probe}
			// Per-goroutine jitter source: deterministic under the seed,
			// race-free without locking the collector.
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p.sw)<<16 ^ int64(period)))
			if p.probe {
				probeCtx, cancel := context.WithTimeout(ctx, cfg.Deadline)
				err := p.client.EchoContext(probeCtx)
				cancel()
				if err != nil {
					o.err = err
					if errors.Is(err, context.DeadlineExceeded) {
						o.timeouts++
					}
					outMu.Lock()
					outcomes[p.sw] = o
					outMu.Unlock()
					return
				}
				o.probeOK = true
			}
			for attempt := 0; attempt < cfg.Attempts; attempt++ {
				if attempt > 0 {
					if !ctxSleep(ctx, backoff(cfg, attempt-1, rng), sleep) {
						o.err = ctx.Err()
						break // cancelled mid-backoff; stop retrying
					}
					o.retries++
				}
				reqCtx, cancel := context.WithTimeout(ctx, cfg.Deadline)
				reply, err := p.client.FlowStatsContext(reqCtx)
				cancel()
				o.requests++
				if err == nil {
					o.reply, o.err = reply, nil
					break
				}
				o.err = err
				if errors.Is(err, context.DeadlineExceeded) {
					o.timeouts++
				}
				if ctx.Err() != nil {
					break // the whole poll was cancelled; stop retrying
				}
			}
			outMu.Lock()
			outcomes[p.sw] = o
			outMu.Unlock()
		}(p)
	}
	wg.Wait()
	return outcomes
}

// switchDisposition classifies one switch's round outcome after health
// bookkeeping.
type switchDisposition int

const (
	// dispSkipped: quarantined and not due for a probe — no contact was
	// attempted, so there is no new baseline gap.
	dispSkipped switchDisposition = iota
	// dispFailed: the probe or poll failed; the delta baseline was
	// forgotten (a delta across the gap would span several periods).
	dispFailed
	// dispOK: a usable cumulative counter snapshot arrived.
	dispOK
)

// absorbed is one switch's post-bookkeeping round outcome.
type absorbed struct {
	sw         topo.SwitchID
	disp       switchDisposition
	reinstated bool
	counters   map[int]uint64 // cumulative snapshot, dispOK only
}

// absorbLocked folds fetch outcomes into the health state machine and
// operational metrics, in ascending switch order, and returns each
// considered switch's disposition plus its raw cumulative snapshot.
// due restricts the walk (nil = every switch). Caller holds rc.mu.
func (rc *RobustCollector) absorbLocked(outcomes map[topo.SwitchID]*pollOutcome, due map[topo.SwitchID]bool) []absorbed {
	var out []absorbed
	for _, sw := range rc.order {
		if due != nil && !due[sw] {
			continue
		}
		st := rc.state[sw]
		o, polled := outcomes[sw]
		if !polled {
			// Quarantined and not due for a probe this period.
			out = append(out, absorbed{sw: sw, disp: dispSkipped})
			continue
		}
		rc.metrics.Requests += o.requests
		rc.metrics.Retries += o.retries
		rc.metrics.Timeouts += o.timeouts
		if o.probed {
			rc.metrics.Probes++
			if !o.probeOK {
				// Probe failed; stay quarantined, wait out another window.
				out = append(out, absorbed{sw: sw, disp: dispFailed})
				continue
			}
		}
		if o.err != nil {
			// Poll exhausted its attempts (or the probe succeeded but the
			// full poll did not). The switch's baseline is now stale — a
			// delta across the gap would span several periods of traffic
			// and read as a false anomaly — so the next successful poll
			// must re-prime rather than difference.
			rc.metrics.Failures++
			rc.deltas.Forget(sw)
			st.fails++
			if st.health == Quarantined {
				// Probe passed but the poll failed: not reinstated.
				out = append(out, absorbed{sw: sw, disp: dispFailed})
				continue
			}
			if st.fails >= rc.cfg.QuarantineAfter {
				st.health = Quarantined
				st.sinceProbe = 0
				rc.metrics.Quarantines++
			} else {
				st.health = Degraded
			}
			out = append(out, absorbed{sw: sw, disp: dispFailed})
			continue
		}
		a := absorbed{sw: sw, disp: dispOK}
		if st.health == Quarantined {
			st.health = Degraded
			rc.metrics.Reinstatements++
			a.reinstated = true
		} else {
			st.health = Healthy
		}
		st.fails = 0
		a.counters = make(map[int]uint64, len(o.reply.Stats))
		for _, s := range o.reply.Stats {
			a.counters[s.RuleID] = s.Packets
		}
		out = append(out, a)
	}
	return out
}

// quarantinedLocked counts quarantined switches. Caller holds rc.mu.
func (rc *RobustCollector) quarantinedLocked() int {
	n := 0
	for _, sw := range rc.order {
		if rc.state[sw].health == Quarantined {
			n++
		}
	}
	return n
}

// Poll runs one collection period: probes, polls, retries, state
// transitions and delta computation. It errors only when the context is
// cancelled or the collector has no switches; per-switch failures are
// reported through PollResult.Missing.
func (rc *RobustCollector) Poll(ctx context.Context) (PollResult, error) {
	rc.mu.Lock()
	if len(rc.clients) == 0 {
		rc.mu.Unlock()
		return PollResult{}, errors.New("collector: no switches to poll")
	}
	rc.metrics.Periods++
	period := rc.metrics.Periods
	plans := rc.planLocked(nil)
	cfg := rc.cfg
	sleep := rc.sleep
	now := rc.now
	if now == nil {
		now = time.Now
	}
	rc.mu.Unlock()

	start := now()
	outcomes := fetchOutcomes(ctx, cfg, plans, period, sleep)
	if err := ctx.Err(); err != nil {
		return PollResult{}, fmt.Errorf("collector: poll cancelled: %w", err)
	}

	// Merge phase: deterministic, in ascending switch order.
	rc.mu.Lock()
	defer rc.mu.Unlock()
	prev := rc.metrics // diffed into telemetry after the merge
	res := PollResult{Deltas: make(map[int]uint64), Epoch: rc.deltas.Epoch()}
	owner := make(map[int]topo.SwitchID)
	dupSeen := make(map[int]bool)
	for _, a := range rc.absorbLocked(outcomes, nil) {
		if a.disp != dispOK {
			res.Missing = append(res.Missing, a.sw)
			continue
		}
		if a.reinstated {
			res.Reinstated = append(res.Reinstated, a.sw)
		}
		delta, reset, primed, fromEpoch, straddles := rc.deltas.AdvanceEpoch(a.sw, a.counters)
		if straddles {
			if res.Straddled == nil {
				res.Straddled = make(map[topo.SwitchID]uint64)
			}
			res.Straddled[a.sw] = fromEpoch
		}
		if reset {
			rc.metrics.Resets++
			res.Resets = append(res.Resets, a.sw)
			res.Missing = append(res.Missing, a.sw)
			continue
		}
		if !primed {
			// First observation (startup or post-quarantine): baseline
			// only; usable deltas start next period.
			res.Missing = append(res.Missing, a.sw)
			continue
		}
		for rid, v := range delta {
			if _, dup := owner[rid]; dup {
				// The lowest switch ID's value is already merged; only
				// record the shadowing once per rule.
				if !dupSeen[rid] {
					dupSeen[rid] = true
					res.DuplicateRules = append(res.DuplicateRules, rid)
					rc.metrics.DuplicateRules++
				}
				continue
			}
			owner[rid] = a.sw
			res.Deltas[rid] = v
		}
	}
	sort.Ints(res.DuplicateRules)
	res.Elapsed = now().Sub(start)
	rc.metrics.LastElapsed = res.Elapsed
	if tel := rc.tel; tel != nil {
		cur := rc.metrics
		tel.PollSeconds.Observe(res.Elapsed.Seconds())
		tel.Requests.Add(cur.Requests - prev.Requests)
		tel.Retries.Add(cur.Retries - prev.Retries)
		tel.Timeouts.Add(cur.Timeouts - prev.Timeouts)
		tel.Failures.Add(cur.Failures - prev.Failures)
		tel.Probes.Add(cur.Probes - prev.Probes)
		tel.Quarantines.Add(cur.Quarantines - prev.Quarantines)
		tel.Reinstatements.Add(cur.Reinstatements - prev.Reinstatements)
		tel.Resets.Add(cur.Resets - prev.Resets)
		tel.DuplicateRules.Add(cur.DuplicateRules - prev.DuplicateRules)
		tel.MissingSwitches.Set(float64(len(res.Missing)))
		tel.QuarantinedSwitches.Set(float64(rc.quarantinedLocked()))
	}
	return res, nil
}

// SnapshotResult is one streaming fetch round's raw outcome: cumulative
// counter snapshots for the switches that answered, with the delta /
// epoch layer left to the WindowAssembler that consumes them.
type SnapshotResult struct {
	// Snapshots holds each answering switch's cumulative rule counters.
	Snapshots map[topo.SwitchID]map[int]uint64
	// Failed lists (sorted) switches whose probe or poll failed this
	// round: their delta baseline now has a gap, so the assembler must
	// Forget them before their next push.
	Failed []topo.SwitchID
	// Skipped lists (sorted) quarantined switches that were not due for
	// a probe: no contact was attempted and no new gap opened.
	Skipped []topo.SwitchID
	// Reinstated lists switches brought back from quarantine this round.
	Reinstated []topo.SwitchID
	// Elapsed is the wall-clock duration of the round.
	Elapsed time.Duration
}

// PollSnapshots runs one fault-tolerant fetch round restricted to the
// due switches (nil = all) and returns raw cumulative snapshots instead
// of windowed deltas — the pump half of the streaming ingestion path.
// The full health machinery applies exactly as in Poll (deadlines,
// retries with context-aware backoff, quarantine and reinstatement
// probes); only the delta/epoch layer is skipped, because a streaming
// WindowAssembler owns its own DeltaTracker. Switches outside due are
// left untouched: no health transition and no probe-cadence tick, so an
// adaptive sampler backing off a switch does not distort its health.
func (rc *RobustCollector) PollSnapshots(ctx context.Context, due []topo.SwitchID) (SnapshotResult, error) {
	rc.mu.Lock()
	if len(rc.clients) == 0 {
		rc.mu.Unlock()
		return SnapshotResult{}, errors.New("collector: no switches to poll")
	}
	var dueSet map[topo.SwitchID]bool
	if due != nil {
		dueSet = make(map[topo.SwitchID]bool, len(due))
		for _, sw := range due {
			if _, ok := rc.clients[sw]; ok {
				dueSet[sw] = true
			}
		}
	}
	rc.metrics.Periods++
	period := rc.metrics.Periods
	plans := rc.planLocked(dueSet)
	cfg := rc.cfg
	sleep := rc.sleep
	now := rc.now
	if now == nil {
		now = time.Now
	}
	rc.mu.Unlock()

	start := now()
	outcomes := fetchOutcomes(ctx, cfg, plans, period, sleep)
	if err := ctx.Err(); err != nil {
		return SnapshotResult{}, fmt.Errorf("collector: poll cancelled: %w", err)
	}

	rc.mu.Lock()
	defer rc.mu.Unlock()
	prev := rc.metrics
	res := SnapshotResult{Snapshots: make(map[topo.SwitchID]map[int]uint64)}
	for _, a := range rc.absorbLocked(outcomes, dueSet) {
		switch a.disp {
		case dispSkipped:
			res.Skipped = append(res.Skipped, a.sw)
		case dispFailed:
			res.Failed = append(res.Failed, a.sw)
		case dispOK:
			if a.reinstated {
				res.Reinstated = append(res.Reinstated, a.sw)
			}
			res.Snapshots[a.sw] = a.counters
		}
	}
	res.Elapsed = now().Sub(start)
	rc.metrics.LastElapsed = res.Elapsed
	if tel := rc.tel; tel != nil {
		cur := rc.metrics
		tel.PollSeconds.Observe(res.Elapsed.Seconds())
		tel.Requests.Add(cur.Requests - prev.Requests)
		tel.Retries.Add(cur.Retries - prev.Retries)
		tel.Timeouts.Add(cur.Timeouts - prev.Timeouts)
		tel.Failures.Add(cur.Failures - prev.Failures)
		tel.Probes.Add(cur.Probes - prev.Probes)
		tel.Quarantines.Add(cur.Quarantines - prev.Quarantines)
		tel.Reinstatements.Add(cur.Reinstatements - prev.Reinstatements)
		tel.MissingSwitches.Set(float64(len(res.Failed) + len(res.Skipped)))
		tel.QuarantinedSwitches.Set(float64(rc.quarantinedLocked()))
	}
	return res, nil
}

// backoff computes the delay before retry number attempt (0-based),
// exponential from BackoffBase, capped at BackoffMax, spread by
// ±JitterFrac.
func backoff(cfg RobustConfig, attempt int, rng *rand.Rand) time.Duration {
	d := cfg.BackoffBase
	for i := 0; i < attempt && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	if cfg.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + cfg.JitterFrac*(2*rng.Float64()-1)))
	}
	return d
}
