package collector

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func TestHarnessCollectMatchesDirect(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	_, network, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(1))
	if _, err := network.Run(rng, dataplane.UniformTraffic(top, 100)); err != nil {
		t.Fatal(err)
	}
	viaChannel, err := h.Collector.CollectCounters()
	if err != nil {
		t.Fatal(err)
	}
	direct := network.CollectCounters()
	if len(viaChannel) != len(direct) {
		t.Fatalf("channel %d counters, direct %d", len(viaChannel), len(direct))
	}
	for id, v := range direct {
		if viaChannel[id] != v {
			t.Fatalf("rule %d: channel %d direct %d", id, viaChannel[id], v)
		}
	}
}

func TestHarnessPortStatsMatchDirect(t *testing.T) {
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, network, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(2))
	if _, err := network.Run(rng, dataplane.UniformTraffic(top, 50)); err != nil {
		t.Fatal(err)
	}
	viaChannel, err := h.Collector.CollectPortStats()
	if err != nil {
		t.Fatal(err)
	}
	direct := network.PortStats()
	for sw, want := range direct {
		got, ok := viaChannel[sw]
		if !ok {
			t.Fatalf("switch %d missing", sw)
		}
		if got.RxTotal() != want.RxTotal() || got.TxTotal() != want.TxTotal() {
			t.Fatalf("switch %d: got rx=%d tx=%d want rx=%d tx=%d",
				sw, got.RxTotal(), got.TxTotal(), want.RxTotal(), want.TxTotal())
		}
	}
}

func TestInstallRulesViaChannel(t *testing.T) {
	// Full control-channel bootstrap: compute rules, push them through
	// FlowMods, run traffic, collect counters, detect cleanly.
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := InstallRules(h.Clients, ctrl.Rules()); err != nil {
		t.Fatal(err)
	}
	if network.RuleCount() != ctrl.NumRules() {
		t.Fatalf("installed %d rules, want %d", network.RuleCount(), ctrl.NumRules())
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := network.Run(rng, dataplane.UniformTraffic(top, 200)); err != nil {
		t.Fatal(err)
	}
	counters, err := h.Collector.CollectCounters()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(f.H, f.CounterVector(counters), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("clean channel-driven network flagged: AI=%v", res.Index)
	}
}

func TestInstallRulesUnknownSwitch(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	if err := InstallRules(nil, ctrl.Rules()); err == nil {
		t.Fatal("missing clients must error")
	}
}

func TestApplyNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := []float64{100, 200, 0}
	noisy := ApplyNoise(y, 5, rng)
	if len(noisy) != 3 {
		t.Fatal("length changed")
	}
	same := true
	for i := range y {
		if noisy[i] != y[i] {
			same = false
		}
		if noisy[i] < 0 {
			t.Fatal("noise must clamp at zero")
		}
	}
	if same {
		t.Fatal("noise had no effect")
	}
	// Sigma zero must be the identity.
	clean := ApplyNoise(y, 0, rng)
	for i := range y {
		if clean[i] != y[i] {
			t.Fatal("zero sigma must not change counters")
		}
	}
	// Original must be untouched.
	if y[0] != 100 || y[1] != 200 || y[2] != 0 {
		t.Fatal("input mutated")
	}
}

func TestCollectAfterClose(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := h.Collector.CollectCounters(); err == nil {
		t.Fatal("collect after close must error")
	}
}
