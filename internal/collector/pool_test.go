package collector

import (
	"strings"
	"testing"

	"foces/internal/topo"
)

// poolWindows builds a single-switch assembler and pushes cumulative
// snapshots so each push after the first completes one window.
func poolWindows(t *testing.T, values ...uint64) (*WindowAssembler, []Window) {
	t.Helper()
	asm := NewWindowAssembler([]topo.SwitchID{1}, StreamConfig{WindowBuffer: len(values) + 1})
	var windows []Window
	for _, v := range values {
		if err := asm.Push(Update{Switch: 1, Counters: map[int]uint64{0: v}}); err != nil {
			t.Fatal(err)
		}
		windows = append(windows, <-asm.Windows())
	}
	return asm, windows
}

// TestWindowReleasePoisonsAndRecycles exercises the release contract:
// Release hands the backing storage to the pool and zeroes the Window
// so any later read of the released copy fails loudly (nil maps)
// rather than observing a recycled window's data.
func TestWindowReleasePoisonsAndRecycles(t *testing.T) {
	asm, ws := poolWindows(t, 5, 9)
	defer asm.Close()
	if len(ws[1].Deltas) != 1 || ws[1].Deltas[0] != 4 {
		t.Fatalf("window 2 deltas = %v, want {0:4}", ws[1].Deltas)
	}
	w := ws[1]
	w.Release()
	if w.Deltas != nil || w.Missing != nil || w.Seq != 0 || w.store != nil {
		t.Errorf("released window not poisoned: %+v", w)
	}
	ws[0].Release()
}

// TestWindowDoubleReleasePanics: a second Release of the same window
// must panic — the storage may already back a newer live window, and
// silently re-pooling it would corrupt that window's deltas.
func TestWindowDoubleReleasePanics(t *testing.T) {
	asm, ws := poolWindows(t, 5)
	defer asm.Close()
	w := ws[0]
	w2 := w // a stale copy still holding the store pointer
	w.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "released twice") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	w2.Release()
}

// TestWindowReleaseWithoutStore: hand-built windows (tests, callers
// constructing Window literals) have no pooled storage; Release must
// be a no-op, not a panic, so consumer code can release uniformly.
func TestWindowReleaseWithoutStore(t *testing.T) {
	w := Window{Seq: 3, Deltas: map[int]uint64{1: 2}}
	w.Release()
	w.Release()
	if w.Deltas[1] != 2 {
		t.Error("Release of a storeless window must not clear its data")
	}
}
