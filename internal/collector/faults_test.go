package collector

import (
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/openflow"
	"foces/internal/topo"
)

// serveStats runs a minimal scripted switch on the far end of a pipe:
// every flow-stats request is answered with flows, every port-stats
// request with ports (XIDs echoed). It stops when the pipe closes.
func serveStats(raw net.Conn, sw topo.SwitchID, flows []openflow.FlowStat, ports []openflow.PortStat) {
	go func() {
		conn := openflow.NewConn(raw)
		for {
			msg, err := conn.Read()
			if err != nil {
				return
			}
			var reply openflow.Message
			switch msg.Type {
			case openflow.TypeFlowStatsRequest:
				reply = openflow.Message{Type: openflow.TypeFlowStatsReply, XID: msg.XID,
					Payload: &openflow.FlowStatsReply{Switch: sw, Stats: flows}}
			case openflow.TypePortStatsRequest:
				reply = openflow.Message{Type: openflow.TypePortStatsReply, XID: msg.XID,
					Payload: &openflow.PortStatsReply{Switch: sw, Stats: ports}}
			default:
				continue
			}
			if err := conn.Write(reply); err != nil {
				return
			}
		}
	}()
}

// scriptedClient returns a real openflow.Client wired to a scripted
// switch.
func scriptedClient(t *testing.T, sw topo.SwitchID, flows []openflow.FlowStat, ports []openflow.PortStat) *openflow.Client {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	serveStats(serverEnd, sw, flows, ports)
	client := openflow.NewClient(clientEnd, time.Second)
	t.Cleanup(func() { _ = client.Close() })
	return client
}

func TestCollectCountersDuplicateRule(t *testing.T) {
	// Both switches claim rule 7 — a compromised switch shadowing
	// another's counters. The error must name the rule and both
	// switches; the lowest switch ID's value must be the one kept.
	clients := map[topo.SwitchID]*openflow.Client{
		1: scriptedClient(t, 1, []openflow.FlowStat{{RuleID: 7, Packets: 100}}, nil),
		2: scriptedClient(t, 2, []openflow.FlowStat{{RuleID: 7, Packets: 999}, {RuleID: 8, Packets: 5}}, nil),
	}
	out, err := New(clients).CollectCounters()
	if err == nil {
		t.Fatal("duplicate rule ID must error")
	}
	for _, want := range []string{"rule 7", "switch 1", "switch 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if out[7] != 100 {
		t.Fatalf("rule 7 = %d, want lowest switch's 100", out[7])
	}
	if out[8] != 5 {
		t.Fatalf("rule 8 = %d, want 5", out[8])
	}
}

func TestCollectCountersDeterministicErrorAndPartialResults(t *testing.T) {
	// Switches 3 and 9 are dead. The error must name switch 3 (lowest
	// failing ID) on every run, and the healthy switches' counters must
	// be returned alongside the error, not discarded.
	for run := 0; run < 5; run++ {
		clients := map[topo.SwitchID]*openflow.Client{
			2: scriptedClient(t, 2, []openflow.FlowStat{{RuleID: 1, Packets: 11}}, nil),
			5: scriptedClient(t, 5, []openflow.FlowStat{{RuleID: 2, Packets: 22}}, nil),
		}
		for _, dead := range []topo.SwitchID{3, 9} {
			_, clientEnd := net.Pipe()
			c := openflow.NewClient(clientEnd, time.Second)
			_ = c.Close()
			clients[dead] = c
		}
		out, err := New(clients).CollectCounters()
		if err == nil {
			t.Fatal("dead switches must error")
		}
		if !strings.Contains(err.Error(), "switch 3") {
			t.Fatalf("run %d: error %q must name the lowest failing switch", run, err)
		}
		if out[1] != 11 || out[2] != 22 {
			t.Fatalf("run %d: healthy counters discarded: %v", run, out)
		}
	}
}

func TestCollectPortStatsNonContiguousPorts(t *testing.T) {
	// A switch reporting ports {0, 5} used to have its vectors sized by
	// len(Stats)=2, silently dropping port 5. They must be sized by the
	// highest port.
	clients := map[topo.SwitchID]*openflow.Client{
		4: scriptedClient(t, 4, nil, []openflow.PortStat{
			{Port: 0, Rx: 10, Tx: 20},
			{Port: 5, Rx: 50, Tx: 60},
		}),
	}
	out, err := New(clients).CollectPortStats()
	if err != nil {
		t.Fatal(err)
	}
	pc := out[4]
	if len(pc.Rx) != 6 || len(pc.Tx) != 6 {
		t.Fatalf("vectors sized %d/%d, want 6", len(pc.Rx), len(pc.Tx))
	}
	if pc.Rx[5] != 50 || pc.Tx[5] != 60 || pc.Rx[0] != 10 {
		t.Fatalf("port counters misplaced: rx=%v tx=%v", pc.Rx, pc.Tx)
	}
}

func TestCollectPortStatsNegativePort(t *testing.T) {
	clients := map[topo.SwitchID]*openflow.Client{
		1: scriptedClient(t, 1, nil, []openflow.PortStat{{Port: -2, Rx: 1, Tx: 1}}),
		6: scriptedClient(t, 6, nil, []openflow.PortStat{{Port: 0, Rx: 7, Tx: 8}}),
	}
	out, err := New(clients).CollectPortStats()
	if err == nil || !strings.Contains(err.Error(), "out-of-range port") {
		t.Fatalf("negative port must error, got %v", err)
	}
	if !strings.Contains(err.Error(), "switch 1") {
		t.Fatalf("error %q must name the offending switch", err)
	}
	// The healthy switch's stats survive the error.
	if pc, ok := out[6]; !ok || pc.Rx[0] != 7 {
		t.Fatalf("healthy port stats discarded: %v", out)
	}
	if _, ok := out[1]; ok {
		t.Fatal("corrupt reply must not contribute port stats")
	}
}

func TestWireReactiveChannelCountsInstallErrors(t *testing.T) {
	// Switch 1's control channel dies before the first miss. The
	// reactive handler's network-wide install then partially fails; that
	// failure used to be silently discarded — it must be counted.
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	_, chStats, err := WireReactiveChannel(network, h, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Clients[1].Close()

	rng := rand.New(rand.NewSource(4))
	// The run itself may fail (switch 1 cannot raise its own misses any
	// more); what matters is that the failed installs were counted.
	_, _ = network.Run(rng, dataplane.UniformTraffic(top, 5))
	if chStats.InstallErrors() == 0 {
		t.Fatal("failed FlowMod installs were not counted")
	}
}
