package collector

import (
	"sync"

	"foces/internal/topo"
)

// windowStore is the reusable backing storage behind a pooled Window:
// the delta map and the missing/resets/duplicate slices plus the lazy
// straddled/contributed/probes maps, all cleared and recycled through
// a sync.Pool when the consumer calls Window.Release. A generation
// counter pairs each loan with the Window copy it was attached to so a
// double release (or a release of a stale copy after the store moved
// on to a later window) panics instead of silently corrupting a live
// window.
type windowStore struct {
	deltas      map[int]uint64
	missing     []topo.SwitchID
	resets      []topo.SwitchID
	dups        []int
	straddled   map[topo.SwitchID]uint64
	contributed map[topo.SwitchID]uint64
	probes      map[topo.SwitchID]ProbeSample
	gen         uint32
	pool        *sync.Pool
}

// newWindowPool builds the assembler's window-store recycle pool.
func newWindowPool() *sync.Pool {
	p := &sync.Pool{}
	p.New = func() any {
		return &windowStore{
			deltas:      make(map[int]uint64),
			straddled:   make(map[topo.SwitchID]uint64),
			contributed: make(map[topo.SwitchID]uint64),
			probes:      make(map[topo.SwitchID]ProbeSample),
			pool:        p,
		}
	}
	return p
}

// attach hands the store's storage to a freshly completing window. The
// slices start empty-but-capacitied; the lazy maps (straddled,
// contributed, probes) are attached by the assembler only when their
// first entry arrives, preserving the nil-when-absent field semantics
// consumers rely on.
func (s *windowStore) attach(w *Window) {
	w.Deltas = s.deltas
	w.Missing = s.missing[:0]
	w.Resets = s.resets[:0]
	w.DuplicateRules = s.dups[:0]
	w.store = s
	w.storeGen = s.gen
}

// Release returns a pooled window's backing storage to its assembler
// for reuse. After Release the window value (and every copy of it) is
// dead: its maps and slices alias storage the next completed window
// will overwrite. The receiver copy itself is zeroed so accidental
// reuse fails fast; releasing twice — or releasing a stale copy whose
// storage has already been recycled — panics.
//
// Windows that did not come from an assembler (zero values, hand-built
// test fixtures) have no store; Release on them is a no-op, so generic
// consumer code can release unconditionally.
func (w *Window) Release() {
	s := w.store
	if s == nil {
		return
	}
	if s.gen != w.storeGen {
		panic("collector: Window released twice")
	}
	s.gen++
	// Capture slice capacity grown by this window before poisoning.
	s.missing = w.Missing[:0]
	s.resets = w.Resets[:0]
	s.dups = w.DuplicateRules[:0]
	clear(s.deltas)
	clear(s.straddled)
	clear(s.contributed)
	clear(s.probes)
	*w = Window{}
	s.pool.Put(s)
}
