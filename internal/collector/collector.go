// Package collector implements FOCES' statistics collection plane: it
// periodically queries every switch agent over the control channel for
// rule counters, merges them into the counter vector Y', and models
// the out-of-sync polling noise that §IV-A's threshold derivation
// assumes (Y'(i) ~ N(Y0(i), σ²)).
package collector

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/openflow"
	"foces/internal/topo"
)

// Collector polls switch agents for statistics.
type Collector struct {
	clients map[topo.SwitchID]*openflow.Client
}

// New builds a collector over per-switch control clients.
func New(clients map[topo.SwitchID]*openflow.Client) *Collector {
	cp := make(map[topo.SwitchID]*openflow.Client, len(clients))
	for sw, c := range clients {
		cp[sw] = c
	}
	return &Collector{clients: cp}
}

// sortedSwitches returns the collector's switch IDs in ascending
// order, the deterministic iteration order for result merging and
// error reporting.
func (c *Collector) sortedSwitches() []topo.SwitchID {
	order := make([]topo.SwitchID, 0, len(c.clients))
	for sw := range c.clients {
		order = append(order, sw)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// CollectCounters polls every switch concurrently and merges rule
// counters by global rule ID. Failures are reported deterministically —
// the error names the lowest-ID failing switch regardless of goroutine
// scheduling — and the counters already received from healthy switches
// are returned alongside the error rather than discarded. A rule ID
// reported by more than one switch is an integrity violation (a
// compromised switch could shadow another's counters with a forged
// reply); it is surfaced as an error naming both switches, with the
// lowest switch ID's value kept.
func (c *Collector) CollectCounters() (map[int]uint64, error) {
	type result struct {
		reply *openflow.FlowStatsReply
		err   error
	}
	results := make(map[topo.SwitchID]result, len(c.clients))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for sw, client := range c.clients {
		wg.Add(1)
		go func(sw topo.SwitchID, client *openflow.Client) {
			defer wg.Done()
			reply, err := client.FlowStats()
			mu.Lock()
			results[sw] = result{reply: reply, err: err}
			mu.Unlock()
		}(sw, client)
	}
	wg.Wait()
	out := make(map[int]uint64)
	owner := make(map[int]topo.SwitchID)
	var firstErr, dupErr error
	for _, sw := range c.sortedSwitches() {
		r := results[sw]
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("collector: switch %d: %w", sw, r.err)
			}
			continue
		}
		for _, s := range r.reply.Stats {
			if prev, dup := owner[s.RuleID]; dup {
				if dupErr == nil {
					dupErr = fmt.Errorf("collector: rule %d reported by both switch %d and switch %d (counter shadowing)", s.RuleID, prev, sw)
				}
				continue
			}
			owner[s.RuleID] = sw
			out[s.RuleID] = s.Packets
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, dupErr
}

// CollectCountersTolerant polls every switch like CollectCounters but
// tolerates per-switch failures: counters from unreachable switches
// are simply absent and their IDs are reported, so detection can
// proceed on the reachable sub-system (core.DetectWithMissing). It
// errors only when no switch answered at all.
func (c *Collector) CollectCountersTolerant() (map[int]uint64, []topo.SwitchID, error) {
	type result struct {
		sw    topo.SwitchID
		reply *openflow.FlowStatsReply
		err   error
	}
	results := make(chan result, len(c.clients))
	var wg sync.WaitGroup
	for sw, client := range c.clients {
		wg.Add(1)
		go func(sw topo.SwitchID, client *openflow.Client) {
			defer wg.Done()
			reply, err := client.FlowStats()
			results <- result{sw: sw, reply: reply, err: err}
		}(sw, client)
	}
	wg.Wait()
	close(results)
	out := make(map[int]uint64)
	var missing []topo.SwitchID
	answered := 0
	for r := range results {
		if r.err != nil {
			missing = append(missing, r.sw)
			continue
		}
		answered++
		for _, s := range r.reply.Stats {
			out[s.RuleID] = s.Packets
		}
	}
	if answered == 0 && len(c.clients) > 0 {
		return nil, nil, fmt.Errorf("collector: no switch answered the poll")
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return out, missing, nil
}

// CollectPortStats polls every switch's port counters. Port vectors
// are sized by the highest port number reported — a switch whose ports
// are not contiguous from zero keeps every counter instead of silently
// dropping the high ones — and a negative port number is an error
// rather than a silent skip. Errors are reported deterministically
// (lowest failing switch ID) and the stats already received from
// healthy switches are returned alongside the error.
func (c *Collector) CollectPortStats() (map[topo.SwitchID]dataplane.PortCounters, error) {
	type result struct {
		reply *openflow.PortStatsReply
		err   error
	}
	results := make(map[topo.SwitchID]result, len(c.clients))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for sw, client := range c.clients {
		wg.Add(1)
		go func(sw topo.SwitchID, client *openflow.Client) {
			defer wg.Done()
			reply, err := client.PortStats()
			mu.Lock()
			results[sw] = result{reply: reply, err: err}
			mu.Unlock()
		}(sw, client)
	}
	wg.Wait()
	out := make(map[topo.SwitchID]dataplane.PortCounters, len(c.clients))
	var firstErr error
	for _, sw := range c.sortedSwitches() {
		r := results[sw]
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("collector: switch %d: %w", sw, r.err)
			}
			continue
		}
		maxPort := -1
		badPort := false
		for _, s := range r.reply.Stats {
			if s.Port < 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("collector: switch %d reported out-of-range port %d", sw, s.Port)
				}
				badPort = true
				break
			}
			if s.Port > maxPort {
				maxPort = s.Port
			}
		}
		if badPort {
			continue
		}
		pc := dataplane.PortCounters{
			Rx: make([]uint64, maxPort+1),
			Tx: make([]uint64, maxPort+1),
		}
		for _, s := range r.reply.Stats {
			pc.Rx[s.Port] = s.Rx
			pc.Tx[s.Port] = s.Tx
		}
		out[sw] = pc
	}
	return out, firstErr
}

// ApplyNoise adds zero-mean Gaussian read noise with the given sigma
// to a counter vector, clamped at zero, modelling out-of-sync counter
// polling. It returns a new vector.
func ApplyNoise(y []float64, sigma float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		nv := v
		if sigma > 0 {
			nv += rng.NormFloat64() * sigma
		}
		if nv < 0 {
			nv = 0
		}
		out[i] = nv
	}
	return out
}

// ApplySkew models non-atomic statistics collection: switches are
// polled sequentially within each polling round while traffic keeps
// flowing, so a switch's counters are ahead by rate × polling offset.
// Because the collector visits switches in the same order every round,
// the systematic offset cancels across windowed counter deltas; what
// survives is the round's timing *jitter*. Every switch therefore
// draws one bounded factor (1 + U(−rel, rel)) applied coherently to
// all of its counters (rel = round jitter / collection window; a
// ±25 ms jitter on a 5 s window gives rel ≈ 0.005). Bounded jitter
// keeps the noise-only anomaly index near 2 — the paper's Fig. 7
// quiet-period level — whereas Gaussian noise would pin it at the
// folded-normal max/median ratio ≈ 4.5 regardless of magnitude.
// ruleSwitch maps each counter index to its switch.
func ApplySkew(y []float64, ruleSwitch []topo.SwitchID, rel float64, rng *rand.Rand) ([]float64, error) {
	if len(y) != len(ruleSwitch) {
		return nil, fmt.Errorf("collector: skew needs a switch per counter: %d vs %d", len(y), len(ruleSwitch))
	}
	factors := make(map[topo.SwitchID]float64)
	out := make([]float64, len(y))
	for i, v := range y {
		nv := v
		if rel > 0 {
			f, ok := factors[ruleSwitch[i]]
			if !ok {
				f = 1 + (2*rng.Float64()-1)*rel
				factors[ruleSwitch[i]] = f
			}
			nv *= f
		}
		if nv < 0 {
			nv = 0
		}
		out[i] = nv
	}
	return out, nil
}

// InstallRules pushes controller rules to the switch agents over the
// control channel (the FlowMod path), in rule-ID order.
func InstallRules(clients map[topo.SwitchID]*openflow.Client, rules []flowtable.Rule) error {
	ordered := make([]flowtable.Rule, len(rules))
	copy(ordered, rules)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, r := range ordered {
		client, ok := clients[r.Switch]
		if !ok {
			return fmt.Errorf("collector: no control channel to switch %d", r.Switch)
		}
		if err := client.InstallRule(r); err != nil {
			return fmt.Errorf("collector: install rule %d: %w", r.ID, err)
		}
	}
	return nil
}

// WireReactive connects a controller to the network's packet-in path
// through the control channel: a table miss invokes the controller's
// reactive installer, whose rules travel to the switches as FlowMods
// before the lookup retries — reactive Floodlight forwarding over the
// wire (§II-A). The controller must be in PairExact mode.
func WireReactive(network *dataplane.Network, h *Harness, ctrl *controller.Controller) (*controller.ReactiveInstaller, error) {
	installer, err := controller.NewReactiveInstaller(ctrl, func(r flowtable.Rule) error {
		client, ok := h.Clients[r.Switch]
		if !ok {
			return fmt.Errorf("collector: no control channel to switch %d", r.Switch)
		}
		return client.InstallRule(r)
	})
	if err != nil {
		return nil, err
	}
	network.SetMissHandler(installer.Handler())
	return installer, nil
}

// ReactiveChannelStats counts the failures of the wire-reactive path
// that must not block a packet release but also must not vanish: a
// stalled packet-in is undebuggable if the errors behind it were
// silently discarded.
type ReactiveChannelStats struct {
	installErrs atomic.Uint64
	releaseErrs atomic.Uint64
}

// InstallErrors reports handler failures to compute/install pair rules.
func (s *ReactiveChannelStats) InstallErrors() uint64 { return s.installErrs.Load() }

// ReleaseErrors reports failed TypePacketOut releases.
func (s *ReactiveChannelStats) ReleaseErrors() uint64 { return s.releaseErrs.Load() }

// WireReactiveChannel is WireReactive taken all the way to the wire:
// a table miss raises a TypePacketIn frame from the switch agent to
// its controller client, whose handler computes the pair rules,
// installs them network-wide via FlowMods, and releases the packet
// with a TypePacketOut echoing the packet-in's XID. The data-plane
// lookup then retries. This is the full reactive-Floodlight round trip
// over the control channel. Install and release failures do not stall
// the release path (the switch retries and re-raises on the next
// interval) but are counted in the returned stats.
func WireReactiveChannel(network *dataplane.Network, h *Harness, ctrl *controller.Controller) (*controller.ReactiveInstaller, *ReactiveChannelStats, error) {
	installer, err := controller.NewReactiveInstaller(ctrl, func(r flowtable.Rule) error {
		client, ok := h.Clients[r.Switch]
		if !ok {
			return fmt.Errorf("collector: no control channel to switch %d", r.Switch)
		}
		return client.InstallRule(r)
	})
	if err != nil {
		return nil, nil, err
	}
	stats := &ReactiveChannelStats{}
	handle := installer.Handler()
	for _, client := range h.Clients {
		client := client
		client.SetPacketInHandler(func(pi *openflow.PacketIn, xid uint32) {
			// Install errors leave the pair uninstalled; the release
			// still goes out so the switch retries (and re-raises on the
			// next interval) instead of stalling on the timeout.
			if err := handle(pi.Switch, pi.Packet); err != nil {
				stats.installErrs.Add(1)
			}
			if err := client.SendPacketOut(xid); err != nil {
				stats.releaseErrs.Add(1)
			}
		})
	}
	network.SetMissHandler(func(sw topo.SwitchID, pkt header.Packet) error {
		agent, ok := h.Agents[sw]
		if !ok {
			return fmt.Errorf("collector: no agent for switch %d", sw)
		}
		return agent.RaisePacketIn(-1, pkt, 0)
	})
	return installer, stats, nil
}

// Harness wires a complete in-memory control plane over a simulated
// data plane: one agent per switch served over a net.Pipe, one client
// per switch, and a collector over all clients.
type Harness struct {
	Clients   map[topo.SwitchID]*openflow.Client
	Agents    map[topo.SwitchID]*openflow.Agent
	Collector *Collector

	agents []*openflow.Agent
}

// NewHarness starts agents and clients for every switch in the
// network. Callers must Close the harness to stop the agents.
func NewHarness(network *dataplane.Network) (*Harness, error) {
	h := &Harness{
		Clients: make(map[topo.SwitchID]*openflow.Client),
		Agents:  make(map[topo.SwitchID]*openflow.Agent),
	}
	for _, s := range network.Topology().Switches() {
		agent, err := openflow.NewAgent(network, s.ID)
		if err != nil {
			h.Close()
			return nil, err
		}
		agentEnd, clientEnd := net.Pipe()
		agent.Go(agentEnd)
		h.agents = append(h.agents, agent)
		h.Agents[s.ID] = agent
		client := openflow.NewClient(clientEnd, 0)
		if err := client.Hello(); err != nil {
			h.Close()
			return nil, fmt.Errorf("collector: handshake with switch %d: %w", s.ID, err)
		}
		h.Clients[s.ID] = client
	}
	h.Collector = New(h.Clients)
	return h, nil
}

// Close stops all clients and agents.
func (h *Harness) Close() {
	for _, c := range h.Clients {
		// Closing the pipe ends the agent session; the agent's Close
		// below waits for its goroutines.
		_ = c.Close()
	}
	for _, a := range h.agents {
		a.Close()
	}
}
