package collector

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

func TestCollectCountersTolerant(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, network, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(1))
	if _, err := network.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}

	// Kill one switch's control connection: the poll must survive.
	var dead topo.SwitchID = 3
	if err := h.Clients[dead].Close(); err != nil {
		t.Fatal(err)
	}
	counters, missing, err := h.Collector.CollectCountersTolerant()
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != dead {
		t.Fatalf("missing = %v, want [%d]", missing, dead)
	}
	for _, r := range f.Rules {
		_, ok := counters[r.ID]
		if r.Switch == dead && ok {
			t.Fatalf("dead switch's rule %d present", r.ID)
		}
		if r.Switch != dead && !ok {
			t.Fatalf("live switch's rule %d missing", r.ID)
		}
	}

	// And partial detection over the degraded poll stays clean.
	res, err := core.DetectWithMissing(f, counters, missing, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("degraded clean poll flagged: AI=%v", res.Index)
	}
}

func TestCollectCountersTolerantAllDead(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range h.Clients {
		c.Close()
	}
	defer h.Close()
	if _, _, err := h.Collector.CollectCountersTolerant(); err == nil {
		t.Fatal("all-dead poll must error")
	}
}
