package collector

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/header"
	"foces/internal/topo"
)

func TestWireReactiveChannelEndToEnd(t *testing.T) {
	// The full wire path: table miss -> PacketIn frame -> controller
	// handler -> FlowMods -> PacketOut release -> retried lookup.
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	installer, chStats, err := WireReactiveChannel(network, h, ctrl)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	tm := dataplane.UniformTraffic(top, 20)
	sum, err := network.Run(rng, tm)
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered != tot.Offered {
		t.Fatalf("wire-reactive install must deliver everything: %+v", tot)
	}
	if installer.InstalledPairs() != 240 {
		t.Fatalf("installed pairs = %d, want 240", installer.InstalledPairs())
	}
	if network.RuleCount() != ctrl.NumRules() {
		t.Fatalf("network %d rules, intent %d", network.RuleCount(), ctrl.NumRules())
	}

	// Second interval: no more misses, no more installs.
	before := ctrl.NumRules()
	if _, err := network.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	if ctrl.NumRules() != before {
		t.Fatal("second interval must not install more rules")
	}
	if chStats.InstallErrors() != 0 || chStats.ReleaseErrors() != 0 {
		t.Fatalf("clean run must not count errors: install=%d release=%d",
			chStats.InstallErrors(), chStats.ReleaseErrors())
	}
}

func TestRaisePacketInWithoutController(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the controller connection of switch 0, then raise.
	h.Clients[0].Close()
	pkt := header.NewPacket(layout.Width())
	err = h.Agents[0].RaisePacketIn(-1, pkt, 0)
	if err == nil {
		t.Fatal("packet-in without controller must error")
	}
}
