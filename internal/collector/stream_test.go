package collector

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"foces/internal/openflow"
	"foces/internal/topo"
)

func push(t *testing.T, a *WindowAssembler, sw topo.SwitchID, counters map[int]uint64) {
	t.Helper()
	if err := a.Push(Update{Switch: sw, Counters: counters}); err != nil {
		t.Fatal(err)
	}
}

func nextWindow(t *testing.T, a *WindowAssembler) Window {
	t.Helper()
	select {
	case w, ok := <-a.Windows():
		if !ok {
			t.Fatal("window channel closed")
		}
		return w
	case <-time.After(time.Second):
		t.Fatal("no window completed")
		return Window{}
	}
}

func TestAssemblerWindowMatchesPolledDelta(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})

	// Window 1: primes both baselines — all missing, no deltas.
	push(t, a, 1, map[int]uint64{0: 10, 1: 20})
	push(t, a, 2, map[int]uint64{2: 5})
	w := nextWindow(t, a)
	if w.Seq != 1 || len(w.Deltas) != 0 {
		t.Fatalf("priming window: seq=%d deltas=%v", w.Seq, w.Deltas)
	}
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{1, 2}) {
		t.Fatalf("priming window missing = %v", w.Missing)
	}

	// Window 2: one snapshot each — deltas are cumulative differences.
	push(t, a, 1, map[int]uint64{0: 15, 1: 26})
	push(t, a, 2, map[int]uint64{2: 9})
	w = nextWindow(t, a)
	if w.Seq != 2 {
		t.Fatalf("seq = %d, want 2", w.Seq)
	}
	want := map[int]uint64{0: 5, 1: 6, 2: 4}
	if !reflect.DeepEqual(w.Deltas, want) {
		t.Fatalf("deltas = %v, want %v", w.Deltas, want)
	}
	if len(w.Missing) != 0 {
		t.Fatalf("missing = %v, want none", w.Missing)
	}
	if w.Contributed[1] != 11 || w.Contributed[2] != 4 {
		t.Fatalf("contributed = %v", w.Contributed)
	}
	st := a.Stats()
	if st.Windows != 2 || st.Pushes != 4 || st.Updates != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAssemblerSubDeltasTelescope(t *testing.T) {
	// Several queued snapshots consumed into one window must sum to
	// exactly the delta a single poll at the final snapshot would see.
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 100})
	push(t, a, 2, map[int]uint64{1: 50})
	nextWindow(t, a) // prime

	// Switch 1 pushes three times while switch 2 lags.
	push(t, a, 1, map[int]uint64{0: 110})
	push(t, a, 1, map[int]uint64{0: 125})
	push(t, a, 1, map[int]uint64{0: 140})
	push(t, a, 2, map[int]uint64{1: 58})
	w := nextWindow(t, a)
	if w.Deltas[0] != 40 || w.Deltas[1] != 8 {
		t.Fatalf("deltas = %v, want rule0=40 rule1=8", w.Deltas)
	}
}

func TestAssemblerCoalesceAtCapacity(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{QueueCapacity: 2})
	push(t, a, 1, map[int]uint64{0: 10})
	push(t, a, 2, map[int]uint64{1: 5})
	nextWindow(t, a) // prime

	// Three pushes into a capacity-2 queue: the third replaces the
	// newest queued snapshot. Counters are cumulative, so the final
	// delta still covers all the traffic.
	push(t, a, 1, map[int]uint64{0: 20})
	push(t, a, 1, map[int]uint64{0: 30})
	push(t, a, 1, map[int]uint64{0: 45})
	st := a.Stats()
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
	if st.QueueDepth != 2 {
		t.Fatalf("queue depth = %d, want 2", st.QueueDepth)
	}
	push(t, a, 2, map[int]uint64{1: 6})
	w := nextWindow(t, a)
	if w.Deltas[0] != 35 || w.Deltas[1] != 1 {
		t.Fatalf("deltas = %v, want rule0=35 rule1=1", w.Deltas)
	}
}

func TestAssemblerDropsOldestWindowWhenConsumerLags(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1}, StreamConfig{WindowBuffer: 1})
	for i := uint64(1); i <= 3; i++ {
		push(t, a, 1, map[int]uint64{0: 10 * i})
	}
	st := a.Stats()
	if st.Windows != 3 || st.DroppedWindows != 2 {
		t.Fatalf("stats = %+v, want 3 windows with 2 dropped", st)
	}
	// The survivor is the newest window.
	if w := nextWindow(t, a); w.Seq != 3 {
		t.Fatalf("buffered window seq = %d, want 3", w.Seq)
	}
}

func TestAssemblerForgetDropsQueuedSnapshots(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 10})
	push(t, a, 2, map[int]uint64{1: 5})
	nextWindow(t, a) // prime

	// A queued pre-gap snapshot must not survive a Forget: consuming it
	// would re-prime early and let the next delta span the outage.
	push(t, a, 1, map[int]uint64{0: 20})
	a.Forget(1)
	if st := a.Stats(); st.DroppedUpdates != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats after forget = %+v", st)
	}
	a.MarkMissing(1)
	push(t, a, 2, map[int]uint64{1: 8})
	w := nextWindow(t, a)
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{1}) || w.Deltas[1] != 3 {
		t.Fatalf("gap window = %+v", w)
	}

	// Post-gap snapshot only re-primes; the window after that is usable.
	push(t, a, 1, map[int]uint64{0: 50})
	push(t, a, 2, map[int]uint64{1: 9})
	w = nextWindow(t, a)
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{1}) {
		t.Fatalf("re-prime window missing = %v", w.Missing)
	}
	push(t, a, 1, map[int]uint64{0: 60})
	push(t, a, 2, map[int]uint64{1: 12})
	w = nextWindow(t, a)
	if w.Deltas[0] != 10 || len(w.Missing) != 0 {
		t.Fatalf("recovered window = %+v", w)
	}
}

func TestAssemblerCounterReset(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 100})
	nextWindow(t, a) // prime

	push(t, a, 1, map[int]uint64{0: 3}) // went backwards: reboot
	w := nextWindow(t, a)
	if !reflect.DeepEqual(w.Resets, []topo.SwitchID{1}) || !reflect.DeepEqual(w.Missing, []topo.SwitchID{1}) {
		t.Fatalf("reset window = %+v", w)
	}
	if len(w.Deltas) != 0 {
		t.Fatalf("reset window has deltas: %v", w.Deltas)
	}

	// The reset snapshot re-baselined: next window flows normally.
	push(t, a, 1, map[int]uint64{0: 10})
	w = nextWindow(t, a)
	if w.Deltas[0] != 7 || len(w.Missing) != 0 || len(w.Resets) != 0 {
		t.Fatalf("post-reset window = %+v", w)
	}
}

func TestAssemblerMultiWindowSpanBecomesProbe(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 10})
	push(t, a, 2, map[int]uint64{1: 5})
	nextWindow(t, a) // prime

	// Switch 1 skips window 2 entirely (marked missing, baseline kept).
	a.MarkMissing(1)
	push(t, a, 2, map[int]uint64{1: 8})
	w := nextWindow(t, a)
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{1}) {
		t.Fatalf("skipped window = %+v", w)
	}

	// Its window-3 delta spans two windows: usable only as a rate
	// probe, never as a single-window equation row.
	push(t, a, 1, map[int]uint64{0: 30})
	push(t, a, 2, map[int]uint64{1: 12})
	w = nextWindow(t, a)
	if p, ok := w.Probes[1]; !ok || p.Total != 20 || p.Span != 2 {
		t.Fatalf("probe = %+v", w.Probes)
	}
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{1}) {
		t.Fatalf("probe window missing = %v", w.Missing)
	}
	if _, leaked := w.Deltas[0]; leaked {
		t.Fatalf("multi-window delta leaked into equation rows: %v", w.Deltas)
	}
	if _, contributed := w.Contributed[1]; contributed {
		t.Fatalf("probe counted as contribution: %v", w.Contributed)
	}

	// Baseline continuity: the window after the probe is single-span.
	push(t, a, 1, map[int]uint64{0: 36})
	push(t, a, 2, map[int]uint64{1: 13})
	w = nextWindow(t, a)
	if w.Deltas[0] != 6 || len(w.Missing) != 0 {
		t.Fatalf("post-probe window = %+v", w)
	}
}

func TestAssemblerEpochStraddle(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1}, StreamConfig{})
	a.SetEpoch(3)
	push(t, a, 1, map[int]uint64{0: 10})
	nextWindow(t, a) // prime under epoch 3

	a.SetEpoch(5) // rule update applied mid-window
	push(t, a, 1, map[int]uint64{0: 25})
	w := nextWindow(t, a)
	if w.Epoch != 5 {
		t.Fatalf("window epoch = %d, want 5", w.Epoch)
	}
	if from, ok := w.Straddled[1]; !ok || from != 3 {
		t.Fatalf("straddled = %v, want switch 1 from epoch 3", w.Straddled)
	}
	if w.Deltas[0] != 15 {
		t.Fatalf("deltas = %v", w.Deltas)
	}

	// Next window is entirely inside epoch 5: no straddle.
	push(t, a, 1, map[int]uint64{0: 30})
	w = nextWindow(t, a)
	if len(w.Straddled) != 0 {
		t.Fatalf("unexpected straddle: %v", w.Straddled)
	}
}

func TestAssemblerCloseFlushesPendingWindow(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 10})
	push(t, a, 2, map[int]uint64{1: 5})
	nextWindow(t, a) // prime

	push(t, a, 1, map[int]uint64{0: 22}) // switch 2 still outstanding
	a.Close()
	w := nextWindow(t, a)
	if w.Deltas[0] != 12 || !reflect.DeepEqual(w.Missing, []topo.SwitchID{2}) {
		t.Fatalf("flushed window = %+v", w)
	}
	if _, ok := <-a.Windows(); ok {
		t.Fatal("channel not closed after Close")
	}
	if err := a.Push(Update{Switch: 1, Counters: map[int]uint64{0: 30}}); !errors.Is(err, ErrAssemblerClosed) {
		t.Fatalf("push after close = %v, want ErrAssemblerClosed", err)
	}
}

func TestAssemblerRejectsUnknownSwitch(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1}, StreamConfig{})
	if err := a.Push(Update{Switch: 9, Counters: map[int]uint64{0: 1}}); err == nil {
		t.Fatal("push from unknown switch accepted")
	}
}

func TestAssemblerDuplicateRuleLowestSwitchWins(t *testing.T) {
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{})
	push(t, a, 1, map[int]uint64{0: 10})
	push(t, a, 2, map[int]uint64{0: 100}) // same rule ID: shadowing
	nextWindow(t, a)

	push(t, a, 1, map[int]uint64{0: 13})
	push(t, a, 2, map[int]uint64{0: 107})
	w := nextWindow(t, a)
	if !reflect.DeepEqual(w.DuplicateRules, []int{0}) {
		t.Fatalf("duplicates = %v", w.DuplicateRules)
	}
	if w.Deltas[0] != 3 {
		t.Fatalf("delta = %v, want the lowest switch's value 3", w.Deltas)
	}
}

// TestPollSnapshotsHealthParity drives a switch through the same
// degrade → quarantine → probe → reinstate cycle Poll implements and
// checks PollSnapshots reports it identically — the streaming pump
// inherits the full health machinery, only the delta layer moves.
func TestPollSnapshotsHealthParity(t *testing.T) {
	boom := errors.New("switch unreachable")
	flaky := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		if call <= 6 { // rounds 1-2 exhaust 3 attempts each
			return nil, boom
		}
		return reply(map[int]uint64{1: 40}), nil
	}}
	steady := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		return reply(map[int]uint64{2: uint64(10 * call)}), nil
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{1: flaky, 2: steady},
		RobustConfig{Attempts: 3, QuarantineAfter: 2, ProbeEvery: 1})
	ctx := context.Background()

	// Round 1: flaky fails all attempts → Degraded, reported Failed.
	res, err := rc.PollSnapshots(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Failed, []topo.SwitchID{1}) || len(res.Skipped) != 0 {
		t.Fatalf("round 1 = %+v", res)
	}
	if res.Snapshots[2][2] != 10 {
		t.Fatalf("round 1 snapshots = %v", res.Snapshots)
	}
	if h := rc.Health()[1]; h != Degraded {
		t.Fatalf("round 1 health = %v, want degraded", h)
	}

	// Round 2: second failure → Quarantined.
	res, err = rc.PollSnapshots(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Failed, []topo.SwitchID{1}) {
		t.Fatalf("round 2 = %+v", res)
	}
	if h := rc.Health()[1]; h != Quarantined {
		t.Fatalf("round 2 health = %v, want quarantined", h)
	}

	// Round 3: probe succeeds (echo defaults to nil) and the poll now
	// answers → Reinstated with a snapshot.
	res, err = rc.PollSnapshots(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Reinstated, []topo.SwitchID{1}) {
		t.Fatalf("round 3 reinstated = %v", res.Reinstated)
	}
	if res.Snapshots[1][1] != 40 {
		t.Fatalf("round 3 snapshots = %v", res.Snapshots)
	}
	if h := rc.Health()[1]; h != Degraded {
		t.Fatalf("round 3 health = %v, want degraded (one clean period first)", h)
	}
	m := rc.Metrics()
	if m.Quarantines != 1 || m.Reinstatements != 1 || m.Probes != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPollSnapshotsDueSubsetLeavesOthersUntouched(t *testing.T) {
	called := &scripted{}
	idle := &scripted{}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{1: called, 2: idle}, RobustConfig{})
	res, err := rc.PollSnapshots(context.Background(), []topo.SwitchID{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Snapshots[1]; !ok {
		t.Fatalf("due switch not polled: %+v", res)
	}
	if _, ok := res.Snapshots[2]; ok || len(res.Failed) != 0 || len(res.Skipped) != 0 {
		t.Fatalf("non-due switch leaked into the round: %+v", res)
	}
	if flow, echo := idle.calls(); flow != 0 || echo != 0 {
		t.Fatalf("non-due switch was contacted: flow=%d echo=%d", flow, echo)
	}
}

// TestPollCancelledMidBackoffReturnsPromptly pins the satellite
// requirement: a context cancelled while a retry backoff sleep is in
// flight must abort the wait immediately instead of sleeping it out.
// The backoff here is 30s with real timers; without context plumbing
// the poll could not return within the asserted bound.
func TestPollCancelledMidBackoffReturnsPromptly(t *testing.T) {
	boom := errors.New("down")
	for _, mode := range []string{"poll", "snapshots"} {
		t.Run(mode, func(t *testing.T) {
			sw := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
				return nil, boom
			}}
			rc := NewRobustFromStats(map[topo.SwitchID]StatsClient{1: sw}, RobustConfig{
				Attempts:    3,
				BackoffBase: 30 * time.Second,
				BackoffMax:  30 * time.Second,
				JitterFrac:  -1,
			})
			// No sleep hook: the 30s backoff wait is real, and only ctx
			// cancellation can cut it short.
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(50*time.Millisecond, cancel)
			start := time.Now()
			var err error
			if mode == "poll" {
				_, err = rc.Poll(ctx)
			} else {
				_, err = rc.PollSnapshots(ctx, nil)
			}
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("cancelled poll returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("cancelled poll took %v; backoff sleep ignored cancellation", elapsed)
			}
		})
	}
}
