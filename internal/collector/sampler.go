package collector

import (
	"sort"
	"sync"

	"foces/internal/topo"
)

// SamplerConfig tunes the adaptive per-switch sampler. The zero value
// selects conservative defaults.
type SamplerConfig struct {
	// StableAfter is how many consecutive clean contributing windows a
	// switch needs before its sampling interval doubles; zero selects 4.
	StableAfter int
	// MaxInterval caps a switch's sampling interval in windows (1 =
	// every window); zero selects 8.
	MaxInterval int
	// MaxBackedOffFrac caps the fraction of switches backed off at once.
	// A backed-off switch's rows are masked out of detection between its
	// samples, so without a cap a quiet network would degrade detection
	// to an empty equation system. Zero selects 0.5.
	MaxBackedOffFrac float64
	// DriftFactor tightens a backed-off switch whose probed per-window
	// counter rate deviates from its last clean rate by more than this
	// factor (in either direction); zero selects 2.0.
	DriftFactor float64
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.StableAfter <= 0 {
		c.StableAfter = 4
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 8
	}
	if c.MaxBackedOffFrac <= 0 {
		c.MaxBackedOffFrac = 0.5
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 2.0
	}
	return c
}

// samplerState is one switch's slot in the sampler.
type samplerState struct {
	interval    int     // windows between samples; 1 = every window
	clean       int     // consecutive clean contributing windows
	sinceSample int     // windows since the switch was last due
	rate        float64 // last accepted per-window total counter delta
	hasRate     bool
}

// SamplerStats is a snapshot of the sampler for /status.
type SamplerStats struct {
	// Switches is the number of switches under adaptive sampling.
	Switches int `json:"switches"`
	// BackedOff is how many switches currently sample less often than
	// every window.
	BackedOff int `json:"backedOff"`
	// MaxInterval is the largest per-switch interval in effect.
	MaxInterval int `json:"maxInterval"`
	// Tightened counts suspect-driven interval resets so far.
	Tightened uint64 `json:"tightened"`
	// Drifts counts probe-rate drifts that forced a switch back to
	// every-window sampling.
	Drifts uint64 `json:"drifts"`
}

// AdaptiveSampler tunes per-switch sampling rates from detection
// feedback: switches whose windows stay clean back off exponentially
// (their counters are probed every interval-th window and their rows
// masked in between), while suspects flagged by a Report — or probes
// whose counter rate drifts — tighten back to every-window sampling
// immediately. This closes the feedback edge from detection back into
// collection: collection effort concentrates where the residuals say
// the anomalies are.
//
// Safe for concurrent use.
type AdaptiveSampler struct {
	mu    sync.Mutex
	cfg   SamplerConfig
	order []topo.SwitchID
	state map[topo.SwitchID]*samplerState
	stats SamplerStats
}

// NewAdaptiveSampler builds a sampler over the given switch set; every
// switch starts at every-window sampling.
func NewAdaptiveSampler(switches []topo.SwitchID, cfg SamplerConfig) *AdaptiveSampler {
	s := &AdaptiveSampler{
		cfg:   cfg.withDefaults(),
		state: make(map[topo.SwitchID]*samplerState, len(switches)),
	}
	for _, sw := range switches {
		if _, dup := s.state[sw]; dup {
			continue
		}
		s.state[sw] = &samplerState{interval: 1}
		s.order = append(s.order, sw)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return s
}

// Plan advances every switch's sampling clock by one window and returns
// the (sorted) switches due to contribute to it. A switch at interval 1
// is always due; a backed-off switch is due every interval-th window.
func (s *AdaptiveSampler) Plan() []topo.SwitchID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var due []topo.SwitchID
	for _, sw := range s.order {
		st := s.state[sw]
		st.sinceSample++
		if st.sinceSample >= st.interval {
			st.sinceSample = 0
			due = append(due, sw)
		}
	}
	return due
}

// Observe feeds one completed window's outcome back into the sampler:
// per-switch clean contribution totals, multi-window probe samples, and
// the detection verdict. Suspects tighten to every-window sampling;
// stable switches earn longer intervals (subject to the backed-off
// cap); drifting probes tighten.
func (s *AdaptiveSampler) Observe(contributed map[topo.SwitchID]uint64, probes map[topo.SwitchID]ProbeSample, anomalous bool, suspects []topo.SwitchID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if anomalous {
		// An anomalous window invalidates every stability streak: the
		// residual blame may be misattributed while rows are masked.
		for _, st := range s.state {
			st.clean = 0
		}
		for _, sw := range suspects {
			if st, ok := s.state[sw]; ok && st.interval > 1 {
				s.stats.Tightened++
				s.tightenLocked(st)
			} else if ok {
				st.clean = 0
			}
		}
	}
	for sw, total := range contributed {
		st, ok := s.state[sw]
		if !ok {
			continue
		}
		st.rate, st.hasRate = float64(total), true
		if anomalous || st.interval > 1 {
			continue
		}
		st.clean++
		if st.clean >= s.cfg.StableAfter && s.backoffAllowedLocked(st) {
			st.interval = minInt(st.interval*2, s.cfg.MaxInterval)
			st.clean = 0
		}
	}
	for sw, p := range probes {
		st, ok := s.state[sw]
		if !ok || p.Span == 0 {
			continue
		}
		perWin := float64(p.Total) / float64(p.Span)
		if st.hasRate && s.drifted(st.rate, perWin) {
			s.stats.Drifts++
			s.tightenLocked(st)
			continue
		}
		st.rate, st.hasRate = perWin, true
		if !anomalous {
			st.interval = minInt(st.interval*2, s.cfg.MaxInterval)
		}
	}
}

// Tighten forces the given switches back to every-window sampling, e.g.
// when a consumer has out-of-band evidence against them.
func (s *AdaptiveSampler) Tighten(switches ...topo.SwitchID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sw := range switches {
		if st, ok := s.state[sw]; ok && st.interval > 1 {
			s.stats.Tightened++
			s.tightenLocked(st)
		}
	}
}

// tightenLocked resets one switch to every-window sampling. The delta
// baseline stays continuous across a tighten — the switch's very next
// single-window delta is immediately usable, no re-prime needed.
func (s *AdaptiveSampler) tightenLocked(st *samplerState) {
	st.interval = 1
	st.clean = 0
	st.sinceSample = 0
}

// backoffAllowedLocked checks the masked-fraction cap before promoting
// one more switch out of every-window sampling.
func (s *AdaptiveSampler) backoffAllowedLocked(st *samplerState) bool {
	if st.interval > 1 {
		return true // already backed off; doubling changes no count
	}
	backedOff := 0
	for _, other := range s.state {
		if other.interval > 1 {
			backedOff++
		}
	}
	return float64(backedOff+1) <= s.cfg.MaxBackedOffFrac*float64(len(s.state))
}

// drifted reports whether a probed per-window rate deviates from the
// last accepted rate by more than DriftFactor in either direction.
func (s *AdaptiveSampler) drifted(rate, probed float64) bool {
	if rate == 0 {
		return probed > 0
	}
	ratio := probed / rate
	return ratio > s.cfg.DriftFactor || ratio*s.cfg.DriftFactor < 1
}

// Interval reports a switch's current sampling interval (0 if unknown).
func (s *AdaptiveSampler) Interval(sw topo.SwitchID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.state[sw]; ok {
		return st.interval
	}
	return 0
}

// Stats returns a snapshot of the sampler's state.
func (s *AdaptiveSampler) Stats() SamplerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Switches = len(s.state)
	out.MaxInterval = 1
	for _, st := range s.state {
		if st.interval > 1 {
			out.BackedOff++
		}
		if st.interval > out.MaxInterval {
			out.MaxInterval = st.interval
		}
	}
	if len(s.state) == 0 {
		out.MaxInterval = 0
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
