package collector

import (
	"testing"

	"foces/internal/topo"
)

func TestDeltaTrackerPrimeAndAdvance(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(2)
	if tr.Primed(sw) {
		t.Fatal("fresh tracker must not be primed")
	}
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 100, 2: 5})
	if primed || reset || delta != nil {
		t.Fatalf("first observation: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
	if !tr.Primed(sw) {
		t.Fatal("tracker must be primed after the first snapshot")
	}
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 160, 2: 5})
	if !primed || reset {
		t.Fatalf("second observation: reset=%v primed=%v", reset, primed)
	}
	if delta[1] != 60 || delta[2] != 0 {
		t.Fatalf("delta = %v, want {1:60 2:0}", delta)
	}
}

func TestDeltaTrackerReset(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(0)
	tr.Advance(sw, map[int]uint64{1: 100})
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 40})
	if !reset || delta != nil || !primed {
		t.Fatalf("backwards counter: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
	// The reset snapshot re-baselines: the next advance is a clean delta.
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 70})
	if reset || !primed || delta[1] != 30 {
		t.Fatalf("post-reset: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
}

func TestDeltaTrackerForget(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(7)
	tr.Advance(sw, map[int]uint64{1: 100})
	tr.Forget(sw)
	if tr.Primed(sw) {
		t.Fatal("forget must drop the baseline")
	}
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 500})
	if primed || reset || delta != nil {
		t.Fatalf("after forget: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
}

func TestDeltaTrackerRuleChurn(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(1)
	tr.Advance(sw, map[int]uint64{1: 10})
	// Rule 2 installed mid-window counts from zero; rule 1 deleted drops
	// out without tripping reset detection.
	delta, reset, _ := tr.Advance(sw, map[int]uint64{1: 15, 2: 8})
	if reset || delta[2] != 8 || delta[1] != 5 {
		t.Fatalf("mid-window install: delta=%v reset=%v", delta, reset)
	}
	delta, reset, _ = tr.Advance(sw, map[int]uint64{2: 9})
	if reset {
		t.Fatal("rule deletion must not read as a counter reset")
	}
	if _, ok := delta[1]; ok {
		t.Fatalf("deleted rule leaked into delta: %v", delta)
	}
	if delta[2] != 1 {
		t.Fatalf("delta = %v", delta)
	}
}

func TestDeltaTrackerCopiesSnapshot(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(3)
	snap := map[int]uint64{1: 100}
	tr.Advance(sw, snap)
	snap[1] = 0 // caller mutates its map; the baseline must not move
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 130})
	if reset || !primed || delta[1] != 30 {
		t.Fatalf("tracker aliased the caller's snapshot: delta=%v reset=%v", delta, reset)
	}
}

func TestDeltaTrackerEpochStraddling(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(4)
	tr.SetEpoch(1)
	// Prime under epoch 1.
	if _, _, primed, _, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 10}); primed || straddles {
		t.Fatalf("first observation: primed=%v straddles=%v", primed, straddles)
	}
	// Same-epoch window: no straddle.
	delta, _, primed, from, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 15})
	if !primed || straddles || from != 1 || delta[1] != 5 {
		t.Fatalf("steady window: delta=%v from=%d straddles=%v", delta, from, straddles)
	}
	// A rule update lands mid-window.
	tr.SetEpoch(2)
	delta, _, primed, from, straddles = tr.AdvanceEpoch(sw, map[int]uint64{1: 21})
	if !primed || !straddles || from != 1 || delta[1] != 6 {
		t.Fatalf("straddling window: delta=%v from=%d straddles=%v", delta, from, straddles)
	}
	// The window after the update is clean again.
	_, _, _, from, straddles = tr.AdvanceEpoch(sw, map[int]uint64{1: 30})
	if straddles || from != 2 {
		t.Fatalf("post-update window: from=%d straddles=%v", from, straddles)
	}
	// Forget drops the epoch baseline along with the counters.
	tr.Forget(sw)
	if _, _, primed, _, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 40}); primed || straddles {
		t.Fatalf("after forget: primed=%v straddles=%v", primed, straddles)
	}
}
