package collector

import (
	"testing"

	"foces/internal/topo"
)

func TestDeltaTrackerPrimeAndAdvance(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(2)
	if tr.Primed(sw) {
		t.Fatal("fresh tracker must not be primed")
	}
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 100, 2: 5})
	if primed || reset || delta != nil {
		t.Fatalf("first observation: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
	if !tr.Primed(sw) {
		t.Fatal("tracker must be primed after the first snapshot")
	}
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 160, 2: 5})
	if !primed || reset {
		t.Fatalf("second observation: reset=%v primed=%v", reset, primed)
	}
	if delta[1] != 60 || delta[2] != 0 {
		t.Fatalf("delta = %v, want {1:60 2:0}", delta)
	}
}

func TestDeltaTrackerReset(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(0)
	tr.Advance(sw, map[int]uint64{1: 100})
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 40})
	if !reset || delta != nil || !primed {
		t.Fatalf("backwards counter: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
	// The reset snapshot re-baselines: the next advance is a clean delta.
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 70})
	if reset || !primed || delta[1] != 30 {
		t.Fatalf("post-reset: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
}

func TestDeltaTrackerForget(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(7)
	tr.Advance(sw, map[int]uint64{1: 100})
	tr.Forget(sw)
	if tr.Primed(sw) {
		t.Fatal("forget must drop the baseline")
	}
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 500})
	if primed || reset || delta != nil {
		t.Fatalf("after forget: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
}

func TestDeltaTrackerRuleChurn(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(1)
	tr.Advance(sw, map[int]uint64{1: 10})
	// Rule 2 installed mid-window counts from zero; rule 1 deleted drops
	// out without tripping reset detection.
	delta, reset, _ := tr.Advance(sw, map[int]uint64{1: 15, 2: 8})
	if reset || delta[2] != 8 || delta[1] != 5 {
		t.Fatalf("mid-window install: delta=%v reset=%v", delta, reset)
	}
	delta, reset, _ = tr.Advance(sw, map[int]uint64{2: 9})
	if reset {
		t.Fatal("rule deletion must not read as a counter reset")
	}
	if _, ok := delta[1]; ok {
		t.Fatalf("deleted rule leaked into delta: %v", delta)
	}
	if delta[2] != 1 {
		t.Fatalf("delta = %v", delta)
	}
}

func TestDeltaTrackerCopiesSnapshot(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(3)
	snap := map[int]uint64{1: 100}
	tr.Advance(sw, snap)
	snap[1] = 0 // caller mutates its map; the baseline must not move
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 130})
	if reset || !primed || delta[1] != 30 {
		t.Fatalf("tracker aliased the caller's snapshot: delta=%v reset=%v", delta, reset)
	}
}

func TestDeltaTrackerEpochStraddling(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(4)
	tr.SetEpoch(1)
	// Prime under epoch 1.
	if _, _, primed, _, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 10}); primed || straddles {
		t.Fatalf("first observation: primed=%v straddles=%v", primed, straddles)
	}
	// Same-epoch window: no straddle.
	delta, _, primed, from, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 15})
	if !primed || straddles || from != 1 || delta[1] != 5 {
		t.Fatalf("steady window: delta=%v from=%d straddles=%v", delta, from, straddles)
	}
	// A rule update lands mid-window.
	tr.SetEpoch(2)
	delta, _, primed, from, straddles = tr.AdvanceEpoch(sw, map[int]uint64{1: 21})
	if !primed || !straddles || from != 1 || delta[1] != 6 {
		t.Fatalf("straddling window: delta=%v from=%d straddles=%v", delta, from, straddles)
	}
	// The window after the update is clean again.
	_, _, _, from, straddles = tr.AdvanceEpoch(sw, map[int]uint64{1: 30})
	if straddles || from != 2 {
		t.Fatalf("post-update window: from=%d straddles=%v", from, straddles)
	}
	// Forget drops the epoch baseline along with the counters.
	tr.Forget(sw)
	if _, _, primed, _, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 40}); primed || straddles {
		t.Fatalf("after forget: primed=%v straddles=%v", primed, straddles)
	}
}

func TestDeltaTrackerResetDuringStraddle(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(5)
	tr.SetEpoch(1)
	tr.AdvanceEpoch(sw, map[int]uint64{1: 100}) // prime under epoch 1
	tr.SetEpoch(2)
	// The switch reboots inside a window that also straddles a rule
	// update: reset wins — there is no usable delta to reconcile, so
	// straddles must NOT be reported alongside it.
	delta, reset, primed, from, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 7})
	if !reset || straddles || delta != nil {
		t.Fatalf("reset-during-straddle: delta=%v reset=%v from=%d straddles=%v", delta, reset, from, straddles)
	}
	if !primed {
		t.Fatalf("reset window must still report primed=true (a baseline existed)")
	}
	// The reset snapshot re-baselined under epoch 2: the next window is
	// clean with no residual straddle.
	delta, reset, primed, from, straddles = tr.AdvanceEpoch(sw, map[int]uint64{1: 12})
	if reset || !primed || straddles || from != 2 || delta[1] != 5 {
		t.Fatalf("post-reset window: delta=%v reset=%v from=%d straddles=%v", delta, reset, from, straddles)
	}
}

func TestDeltaTrackerForgetThenSameEpochReprime(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(6)
	tr.SetEpoch(3)
	tr.AdvanceEpoch(sw, map[int]uint64{1: 10})
	if !tr.Primed(sw) {
		t.Fatal("not primed after first observation")
	}
	tr.Forget(sw)
	if tr.Primed(sw) {
		t.Fatal("still primed after Forget")
	}
	// Re-prime within the same epoch: the first advance establishes a
	// baseline only; the second must difference against the re-primed
	// snapshot (not the pre-Forget one) and must not straddle.
	if delta, _, primed, _, _ := tr.AdvanceEpoch(sw, map[int]uint64{1: 50}); primed || delta != nil {
		t.Fatalf("re-prime produced a delta: %v primed=%v", delta, primed)
	}
	delta, reset, primed, from, straddles := tr.AdvanceEpoch(sw, map[int]uint64{1: 60})
	if !primed || reset || straddles || from != 3 || delta[1] != 10 {
		t.Fatalf("post-reprime window: delta=%v reset=%v from=%d straddles=%v", delta, reset, from, straddles)
	}
}

func TestDeltaTrackerDuplicateAndNonMonotonicPushes(t *testing.T) {
	tr := NewDeltaTracker()
	const sw = topo.SwitchID(7)
	tr.Advance(sw, map[int]uint64{1: 100, 2: 5})
	// A duplicate push (identical cumulative snapshot) is NOT a reset —
	// no counter went backwards — and yields an all-zero delta.
	delta, reset, primed := tr.Advance(sw, map[int]uint64{1: 100, 2: 5})
	if reset || !primed || delta[1] != 0 || delta[2] != 0 {
		t.Fatalf("duplicate push: delta=%v reset=%v", delta, reset)
	}
	// One counter advancing while another goes backwards is a reset:
	// mixed-direction movement means the snapshot generations straddle a
	// reboot and nothing in the window is trustworthy.
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 130, 2: 2})
	if !reset || !primed || delta != nil {
		t.Fatalf("non-monotonic push: delta=%v reset=%v primed=%v", delta, reset, primed)
	}
	// The non-monotonic snapshot re-baselined; monotonic growth from it
	// flows normally, and a rule absent from the new snapshot drops out.
	delta, reset, primed = tr.Advance(sw, map[int]uint64{1: 140})
	if reset || !primed || delta[1] != 10 {
		t.Fatalf("post-reset push: delta=%v reset=%v", delta, reset)
	}
	if _, dropped := delta[2]; dropped {
		t.Fatalf("deleted rule kept a delta row: %v", delta)
	}
}
