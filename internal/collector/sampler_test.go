package collector

import (
	"reflect"
	"testing"

	"foces/internal/topo"
)

func observeClean(s *AdaptiveSampler, totals map[topo.SwitchID]uint64) {
	s.Observe(totals, nil, false, nil)
}

func TestSamplerBackoffAndPlanCadence(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1}, SamplerConfig{StableAfter: 2, MaxInterval: 4, MaxBackedOffFrac: 1})
	for i := 0; i < 2; i++ {
		if got := s.Plan(); !reflect.DeepEqual(got, []topo.SwitchID{1}) {
			t.Fatalf("plan %d = %v, want [1]", i, got)
		}
		observeClean(s, map[topo.SwitchID]uint64{1: 100})
	}
	if iv := s.Interval(1); iv != 2 {
		t.Fatalf("interval after %d clean windows = %d, want 2", 2, iv)
	}
	// At interval 2 the switch is due every other plan.
	if got := s.Plan(); got != nil {
		t.Fatalf("backed-off switch due too early: %v", got)
	}
	if got := s.Plan(); !reflect.DeepEqual(got, []topo.SwitchID{1}) {
		t.Fatalf("backed-off switch not due on its interval: %v", got)
	}
	st := s.Stats()
	if st.Switches != 1 || st.BackedOff != 1 || st.MaxInterval != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSamplerCapLimitsBackedOffFraction(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1, 2, 3, 4}, SamplerConfig{StableAfter: 1, MaxBackedOffFrac: 0.5})
	s.Plan()
	// Every switch is simultaneously eligible; the cap lets only half
	// leave every-window sampling.
	observeClean(s, map[topo.SwitchID]uint64{1: 10, 2: 10, 3: 10, 4: 10})
	if st := s.Stats(); st.BackedOff != 2 {
		t.Fatalf("backed off = %d, want the cap 2 of 4", st.BackedOff)
	}
	// Further clean windows cannot push past the cap.
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10, 2: 10, 3: 10, 4: 10})
	if st := s.Stats(); st.BackedOff != 2 {
		t.Fatalf("cap breached: backed off = %d", st.BackedOff)
	}
}

func TestSamplerSuspectTightens(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1, 2}, SamplerConfig{StableAfter: 1, MaxBackedOffFrac: 0.5})
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10, 2: 10})
	var backedOff topo.SwitchID
	for _, sw := range []topo.SwitchID{1, 2} {
		if s.Interval(sw) > 1 {
			backedOff = sw
		}
	}
	if backedOff == 0 {
		t.Fatal("no switch backed off")
	}
	// An anomalous verdict naming the backed-off switch snaps it back to
	// every-window sampling.
	s.Observe(nil, nil, true, []topo.SwitchID{backedOff})
	if iv := s.Interval(backedOff); iv != 1 {
		t.Fatalf("suspect interval = %d, want 1", iv)
	}
	if st := s.Stats(); st.Tightened != 1 || st.BackedOff != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSamplerAnomalyResetsCleanStreaks(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1}, SamplerConfig{StableAfter: 2, MaxBackedOffFrac: 1})
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10})
	// One window short of promotion; an anomalous window (suspect or
	// not) restarts the streak.
	s.Plan()
	s.Observe(map[topo.SwitchID]uint64{1: 10}, nil, true, nil)
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10})
	if iv := s.Interval(1); iv != 1 {
		t.Fatalf("interval = %d, want 1 (streak must restart after anomaly)", iv)
	}
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10})
	if iv := s.Interval(1); iv != 2 {
		t.Fatalf("interval = %d, want 2 after a fresh clean streak", iv)
	}
}

func TestSamplerProbeDriftTightens(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1}, SamplerConfig{StableAfter: 1, MaxBackedOffFrac: 1, DriftFactor: 2})
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 100}) // rate 100, interval 2
	if iv := s.Interval(1); iv != 2 {
		t.Fatalf("interval = %d, want 2", iv)
	}
	// Probe rate 300/window vs accepted 100: past the 2x drift factor.
	s.Observe(nil, map[topo.SwitchID]ProbeSample{1: {Total: 600, Span: 2}}, false, nil)
	if iv := s.Interval(1); iv != 1 {
		t.Fatalf("drifted probe did not tighten: interval = %d", iv)
	}
	if st := s.Stats(); st.Drifts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSamplerSteadyProbeDoublesInterval(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1}, SamplerConfig{StableAfter: 1, MaxInterval: 8, MaxBackedOffFrac: 1, DriftFactor: 2})
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 100}) // interval 2
	// A probe within the drift envelope confirms stability: interval
	// doubles again, up to the cap.
	s.Observe(nil, map[topo.SwitchID]ProbeSample{1: {Total: 220, Span: 2}}, false, nil)
	if iv := s.Interval(1); iv != 4 {
		t.Fatalf("interval = %d, want 4", iv)
	}
	s.Observe(nil, map[topo.SwitchID]ProbeSample{1: {Total: 440, Span: 4}}, false, nil)
	if iv := s.Interval(1); iv != 8 {
		t.Fatalf("interval = %d, want 8", iv)
	}
	s.Observe(nil, map[topo.SwitchID]ProbeSample{1: {Total: 880, Span: 8}}, false, nil)
	if iv := s.Interval(1); iv != 8 {
		t.Fatalf("interval = %d, want the MaxInterval cap 8", iv)
	}
}

func TestSamplerTightenAPI(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1}, SamplerConfig{StableAfter: 1, MaxBackedOffFrac: 1})
	s.Plan()
	observeClean(s, map[topo.SwitchID]uint64{1: 10})
	if iv := s.Interval(1); iv != 2 {
		t.Fatalf("interval = %d, want 2", iv)
	}
	s.Tighten(1)
	if iv := s.Interval(1); iv != 1 {
		t.Fatalf("interval after Tighten = %d, want 1", iv)
	}
	// The very next plan samples it again.
	if got := s.Plan(); !reflect.DeepEqual(got, []topo.SwitchID{1}) {
		t.Fatalf("plan after Tighten = %v", got)
	}
}

// TestSamplerAssemblerIntegration wires a sampler into an assembler and
// checks the full loop: a backed-off switch leaves the due set, its
// rows go missing, and its eventual multi-window delta surfaces as a
// probe that feeds back into the sampler.
func TestSamplerAssemblerIntegration(t *testing.T) {
	s := NewAdaptiveSampler([]topo.SwitchID{1, 2}, SamplerConfig{StableAfter: 1, MaxInterval: 2, MaxBackedOffFrac: 0.5})
	a := NewWindowAssembler([]topo.SwitchID{1, 2}, StreamConfig{Sampler: s})

	cum := map[topo.SwitchID]uint64{1: 0, 2: 0}
	pushDue := func() Window {
		t.Helper()
		// Counters accumulate on every switch each window whether or not
		// it is sampled; only due switches are polled and pushed.
		for sw := range cum {
			cum[sw] += 100
		}
		for _, sw := range a.Due() {
			push(t, a, sw, map[int]uint64{int(sw): cum[sw]})
		}
		w := nextWindow(t, a)
		s.Observe(w.Contributed, w.Probes, false, nil)
		return w
	}

	pushDue() // window 1: prime
	pushDue() // window 2: first clean contribution → one switch backs off
	if st := s.Stats(); st.BackedOff != 1 {
		t.Fatalf("backed off = %d, want 1", st.BackedOff)
	}
	var idle topo.SwitchID
	for _, sw := range []topo.SwitchID{1, 2} {
		if s.Interval(sw) > 1 {
			idle = sw
		}
	}
	// Window 3 was planned when window 2 completed — before the backoff
	// feedback — so both switches are still due. Window 4 excludes the
	// backed-off switch; its rows are masked.
	pushDue()
	due := a.Due()
	if len(due) != 1 || due[0] == idle {
		t.Fatalf("window 4 due = %v, want just the active switch", due)
	}
	w := pushDue()
	if !reflect.DeepEqual(w.Missing, []topo.SwitchID{idle}) {
		t.Fatalf("window 4 missing = %v, want [%d]", w.Missing, idle)
	}
	// Window 5: the backed-off switch is due again; its two-window
	// delta arrives as a probe, still masked from the equation system.
	w = pushDue()
	p, ok := w.Probes[idle]
	if !ok || p.Span != 2 || p.Total != 200 {
		t.Fatalf("window 5 probes = %+v", w.Probes)
	}
	if _, leaked := w.Deltas[int(idle)]; leaked {
		t.Fatalf("probe delta leaked into window 5 rows: %v", w.Deltas)
	}
}
