package collector

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/openflow"
	"foces/internal/topo"
)

// scripted is a StatsClient whose behaviour is a per-call function —
// the scripted switch behind the fault-machinery tests. Call counters
// start at 1.
type scripted struct {
	mu        sync.Mutex
	flowCalls int
	echoCalls int
	flow      func(call int, ctx context.Context) (*openflow.FlowStatsReply, error)
	echo      func(call int, ctx context.Context) error
}

func (s *scripted) FlowStatsContext(ctx context.Context) (*openflow.FlowStatsReply, error) {
	s.mu.Lock()
	s.flowCalls++
	n := s.flowCalls
	s.mu.Unlock()
	if s.flow == nil {
		return &openflow.FlowStatsReply{}, nil
	}
	return s.flow(n, ctx)
}

func (s *scripted) EchoContext(ctx context.Context) error {
	s.mu.Lock()
	s.echoCalls++
	n := s.echoCalls
	s.mu.Unlock()
	if s.echo == nil {
		return nil
	}
	return s.echo(n, ctx)
}

func (s *scripted) calls() (flow, echo int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flowCalls, s.echoCalls
}

func reply(stats map[int]uint64) *openflow.FlowStatsReply {
	r := &openflow.FlowStatsReply{}
	for rid, v := range stats {
		r.Stats = append(r.Stats, openflow.FlowStat{RuleID: rid, Packets: v})
	}
	return r
}

// newTestCollector builds a collector whose backoff sleeps are no-ops,
// so retry-heavy scripts run instantly.
func newTestCollector(clients map[topo.SwitchID]StatsClient, cfg RobustConfig) *RobustCollector {
	rc := NewRobustFromStats(clients, cfg)
	rc.sleep = func(time.Duration) {}
	return rc
}

func mustPoll(t *testing.T, rc *RobustCollector) PollResult {
	t.Helper()
	res, err := rc.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRobustRetryThenSuccess(t *testing.T) {
	transient := errors.New("transient transport error")
	sw := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		switch call {
		case 1: // prime
			return reply(map[int]uint64{1: 0}), nil
		case 2, 3: // period 1, attempts 1-2: fail
			return nil, transient
		default: // attempt 3 succeeds
			return reply(map[int]uint64{1: 100}), nil
		}
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{0: sw}, RobustConfig{Attempts: 3})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := mustPoll(t, rc)
	if len(res.Missing) != 0 {
		t.Fatalf("retried poll must recover, missing=%v", res.Missing)
	}
	if res.Deltas[1] != 100 {
		t.Fatalf("delta = %v, want rule1=100", res.Deltas)
	}
	m := rc.Metrics()
	if m.Retries != 2 || m.Requests != 4 || m.Failures != 0 {
		t.Fatalf("metrics = %+v, want retries=2 requests=4 failures=0", m)
	}
	if h := rc.Health()[0]; h != Healthy {
		t.Fatalf("health = %v, want healthy", h)
	}
}

func TestRobustDeadlineThenRecovery(t *testing.T) {
	// Period 1's replies arrive slower than the deadline (the switch
	// blocks until the request context expires); period 2 recovers but
	// only re-primes the stale baseline; period 3 flows again.
	sw := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		switch call {
		case 1:
			return reply(map[int]uint64{1: 10}), nil
		case 2, 3:
			<-ctx.Done()
			return nil, ctx.Err()
		case 4:
			return reply(map[int]uint64{1: 50}), nil
		default:
			return reply(map[int]uint64{1: 80}), nil
		}
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{3: sw},
		RobustConfig{Deadline: 20 * time.Millisecond, Attempts: 2, QuarantineAfter: 2})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}

	res := mustPoll(t, rc) // both attempts time out
	if len(res.Missing) != 1 || res.Missing[0] != 3 {
		t.Fatalf("slow switch must be missing, got %v", res.Missing)
	}
	if h := rc.Health()[3]; h != Degraded {
		t.Fatalf("health after one failed poll = %v, want degraded", h)
	}
	m := rc.Metrics()
	if m.Timeouts != 2 || m.Failures != 1 {
		t.Fatalf("metrics = %+v, want timeouts=2 failures=1", m)
	}

	res = mustPoll(t, rc) // recovery: answers, but baseline is stale
	if len(res.Missing) != 1 {
		t.Fatalf("recovery period must only re-prime, missing=%v", res.Missing)
	}
	if h := rc.Health()[3]; h != Healthy {
		t.Fatalf("health after recovery = %v, want healthy", h)
	}

	res = mustPoll(t, rc) // clean one-period delta
	if len(res.Missing) != 0 || res.Deltas[1] != 30 {
		t.Fatalf("post-recovery delta = %v missing=%v, want rule1=30", res.Deltas, res.Missing)
	}
}

func TestRobustQuarantineAndReinstatement(t *testing.T) {
	dead := errors.New("switch unreachable")
	// Switch 1 dies after priming; its first reinstatement probe fails,
	// the second succeeds. Switch 2 stays healthy throughout.
	var alive sync.Map
	alive.Store("up", false)
	up := func() bool { v, _ := alive.Load("up"); return v.(bool) }
	a := &scripted{
		flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
			if call == 1 {
				return reply(map[int]uint64{1: 0}), nil
			}
			if !up() {
				return nil, dead
			}
			return reply(map[int]uint64{1: uint64(call) * 10}), nil
		},
		echo: func(call int, ctx context.Context) error {
			if !up() {
				return dead
			}
			return nil
		},
	}
	b := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		return reply(map[int]uint64{2: uint64(call) * 100}), nil
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{1: a, 2: b},
		RobustConfig{Attempts: 1, QuarantineAfter: 2, ProbeEvery: 2})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}

	mustPoll(t, rc) // period 2: fail #1 -> degraded
	if h := rc.Health()[1]; h != Degraded {
		t.Fatalf("after fail 1: %v", h)
	}
	mustPoll(t, rc) // period 3: fail #2 -> quarantined
	if h := rc.Health()[1]; h != Quarantined {
		t.Fatalf("after fail 2: %v", h)
	}
	if q := rc.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("quarantined = %v", q)
	}

	flowBefore, _ := a.calls()
	res := mustPoll(t, rc) // period 4: quarantined, probe not yet due
	flowAfter, echoAfter := a.calls()
	if flowAfter != flowBefore || echoAfter != 0 {
		t.Fatalf("quarantined switch polled while not due: flow %d->%d echo=%d",
			flowBefore, flowAfter, echoAfter)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 1 {
		t.Fatalf("period 4 missing = %v", res.Missing)
	}
	if res.Deltas[2] == 0 {
		t.Fatal("healthy switch must keep producing deltas during the outage")
	}

	res = mustPoll(t, rc) // period 5: probe due, fails -> stays quarantined
	if _, echo := a.calls(); echo != 1 {
		t.Fatalf("probe not sent: echo calls = %d", echo)
	}
	if h := rc.Health()[1]; h != Quarantined {
		t.Fatalf("failed probe must not reinstate: %v", h)
	}

	alive.Store("up", true)
	mustPoll(t, rc)       // period 6: quarantined, probe not due
	res = mustPoll(t, rc) // period 7: probe succeeds -> reinstated, re-primes
	if len(res.Reinstated) != 1 || res.Reinstated[0] != 1 {
		t.Fatalf("reinstated = %v", res.Reinstated)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 1 {
		t.Fatalf("reinstatement period must only re-prime, missing=%v", res.Missing)
	}
	if h := rc.Health()[1]; h != Degraded {
		t.Fatalf("health right after reinstatement = %v, want degraded", h)
	}

	res = mustPoll(t, rc) // period 8: clean delta again
	if len(res.Missing) != 0 {
		t.Fatalf("post-reinstatement missing = %v", res.Missing)
	}
	if res.Deltas[1] == 0 {
		t.Fatalf("reinstated switch produced no delta: %v", res.Deltas)
	}
	if h := rc.Health()[1]; h != Healthy {
		t.Fatalf("final health = %v", h)
	}

	m := rc.Metrics()
	if m.Quarantines != 1 || m.Reinstatements != 1 || m.Probes != 2 {
		t.Fatalf("metrics = %+v, want quarantines=1 reinstatements=1 probes=2", m)
	}
}

func TestRobustCounterReset(t *testing.T) {
	// Cumulative counters 100, 200, 50, 80: the drop to 50 is a restart
	// (treated as missing, re-baselined), so 80 yields a delta of 30.
	vals := []uint64{100, 200, 50, 80}
	sw := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		v := vals[len(vals)-1]
		if call <= len(vals) {
			v = vals[call-1]
		}
		return reply(map[int]uint64{7: v}), nil
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{5: sw}, RobustConfig{})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}

	res := mustPoll(t, rc)
	if res.Deltas[7] != 100 || len(res.Missing) != 0 {
		t.Fatalf("period 2: deltas=%v missing=%v", res.Deltas, res.Missing)
	}

	res = mustPoll(t, rc) // 200 -> 50: reset
	if len(res.Resets) != 1 || res.Resets[0] != 5 {
		t.Fatalf("reset not detected: %v", res.Resets)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 5 {
		t.Fatalf("reset period must be missing, got %v", res.Missing)
	}
	if len(res.Deltas) != 0 {
		t.Fatalf("reset period leaked a garbage delta: %v", res.Deltas)
	}
	if h := rc.Health()[5]; h != Healthy {
		t.Fatalf("a reset is a data fault, not a liveness fault: %v", h)
	}

	res = mustPoll(t, rc) // 50 -> 80
	if res.Deltas[7] != 30 || len(res.Missing) != 0 {
		t.Fatalf("post-reset delta = %v missing=%v, want 30", res.Deltas, res.Missing)
	}
	if m := rc.Metrics(); m.Resets != 1 {
		t.Fatalf("metrics.Resets = %d", m.Resets)
	}
}

func TestRobustDuplicateRules(t *testing.T) {
	// Both switches claim rule 7 — counter shadowing. The lowest switch
	// ID's value must win and the duplicate must be reported.
	a := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		return reply(map[int]uint64{7: uint64(call) * 10}), nil
	}}
	b := &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
		return reply(map[int]uint64{7: uint64(call) * 1000, 8: uint64(call)}), nil
	}}
	rc := newTestCollector(map[topo.SwitchID]StatsClient{1: a, 2: b}, RobustConfig{})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := mustPoll(t, rc)
	if len(res.DuplicateRules) != 1 || res.DuplicateRules[0] != 7 {
		t.Fatalf("duplicates = %v, want [7]", res.DuplicateRules)
	}
	if res.Deltas[7] != 10 {
		t.Fatalf("rule 7 delta = %d, want switch 1's 10", res.Deltas[7])
	}
	if res.Deltas[8] != 1 {
		t.Fatalf("rule 8 delta = %d, want 1", res.Deltas[8])
	}
	if m := rc.Metrics(); m.DuplicateRules == 0 {
		t.Fatal("duplicate not counted in metrics")
	}
}

func TestRobustPollCancelled(t *testing.T) {
	rc := newTestCollector(map[topo.SwitchID]StatsClient{0: &scripted{}}, RobustConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rc.Poll(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled poll: err = %v", err)
	}
}

func TestRobustNoSwitches(t *testing.T) {
	rc := newTestCollector(nil, RobustConfig{})
	if _, err := rc.Poll(context.Background()); err == nil {
		t.Fatal("empty collector must error")
	}
}

func TestRobustMissingSorted(t *testing.T) {
	dead := errors.New("down")
	clients := make(map[topo.SwitchID]StatsClient)
	for _, sw := range []topo.SwitchID{9, 4, 7, 1} {
		clients[sw] = &scripted{flow: func(call int, ctx context.Context) (*openflow.FlowStatsReply, error) {
			return nil, dead
		}}
	}
	rc := newTestCollector(clients, RobustConfig{Attempts: 1})
	res := mustPoll(t, rc)
	want := []topo.SwitchID{1, 4, 7, 9}
	if len(res.Missing) != len(want) {
		t.Fatalf("missing = %v", res.Missing)
	}
	for i, sw := range want {
		if res.Missing[i] != sw {
			t.Fatalf("missing = %v, want ascending %v", res.Missing, want)
		}
	}
}

// TestRobustAgentDeathMidPoll drives the collector against the real
// control channel: agents die (their connections drop) while polls are
// in flight, and the collector must degrade the dead switches without
// stalling or corrupting the live ones. Run under -race.
func TestRobustAgentDeathMidPoll(t *testing.T) {
	top, err := topo.Linear(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, network, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rc := NewRobust(h.Clients, RobustConfig{
		Deadline:        200 * time.Millisecond,
		Attempts:        2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      2 * time.Millisecond,
		QuarantineAfter: 2,
		ProbeEvery:      2,
	})
	if err := rc.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	victim := top.Switches()[1].ID
	killed := make(chan struct{})
	sawMissing := false
	for period := 0; period < 6; period++ {
		if _, err := network.Run(rng, dataplane.UniformTraffic(top, 50)); err != nil {
			t.Fatal(err)
		}
		if period == 1 {
			// Kill the victim's agent mid-run, with the collector's next
			// poll racing the connection teardown.
			go func() { h.Agents[victim].Close(); close(killed) }()
		}
		if period == 2 {
			// From here the victim is certainly dead.
			<-killed
		}
		res, err := rc.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range res.Missing {
			if sw == victim {
				sawMissing = true
			}
		}
		// Live switches' rows must never go missing.
		for _, sw := range res.Missing {
			if sw != victim {
				t.Fatalf("period %d: live switch %d reported missing", period, sw)
			}
		}
	}
	if !sawMissing {
		t.Fatal("dead agent never surfaced as missing")
	}
	if h := rc.Health()[victim]; h != Quarantined {
		t.Fatalf("victim health = %v, want quarantined", h)
	}
	if m := rc.Metrics(); m.Failures == 0 || m.Quarantines != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestBackoffBoundsAndJitter(t *testing.T) {
	cfg := RobustConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond, JitterFrac: 0.5}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 6; attempt++ {
		base := cfg.BackoffBase << attempt
		if base > cfg.BackoffMax {
			base = cfg.BackoffMax
		}
		for i := 0; i < 100; i++ {
			d := backoff(cfg, attempt, rng)
			lo := time.Duration(float64(base) * (1 - cfg.JitterFrac))
			hi := time.Duration(float64(base) * (1 + cfg.JitterFrac))
			if d < lo || d > hi {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	// Jitter disabled: exact exponential.
	noJitter := RobustConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond, JitterFrac: -1}.withDefaults()
	if d := backoff(noJitter, 0, rng); d != 10*time.Millisecond {
		t.Fatalf("attempt 0 = %v", d)
	}
	if d := backoff(noJitter, 2, rng); d != 40*time.Millisecond {
		t.Fatalf("attempt 2 must cap at max, got %v", d)
	}
}
