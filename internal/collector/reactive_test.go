package collector

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

func TestWireReactiveEndToEnd(t *testing.T) {
	// Full reactive pipeline over the control channel: an empty data
	// plane fills itself with rules as traffic arrives (packet-in ->
	// controller -> FlowMods), then FOCES validates the result.
	top, err := topo.ByName("bcube14")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	installer, err := WireReactive(network, h, ctrl)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	tm := dataplane.UniformTraffic(top, 50)
	sum, err := network.Run(rng, tm)
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered != tot.Offered {
		t.Fatalf("reactive channel install must deliver everything: %+v", tot)
	}
	if installer.InstalledPairs() != 240 {
		t.Fatalf("installed pairs = %d", installer.InstalledPairs())
	}

	// Counters collected over the channel must fit the FCM generated
	// from the reactively-accumulated intent.
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	network.ResetCounters()
	if _, err := network.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	counters, err := h.Collector.CollectCounters()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(f.H, f.CounterVector(counters), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("clean reactive network flagged: AI=%v", res.Index)
	}
}

func TestWireReactiveRejectsAggregateMode(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.DestAggregate)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	h, err := NewHarness(network)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := WireReactive(network, h, ctrl); err == nil {
		t.Fatal("aggregate mode must be rejected")
	}
}
