package collector

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"foces/internal/telemetry"
	"foces/internal/topo"
)

// ErrAssemblerClosed is returned by Push after Close.
var ErrAssemblerClosed = errors.New("collector: window assembler closed")

// Update is one pushed cumulative counter snapshot from a switch agent.
// Ownership of Counters passes to the assembler; the pusher must not
// mutate the map afterwards.
type Update struct {
	Switch   topo.SwitchID
	Counters map[int]uint64 // cumulative per-rule packet counts
	At       time.Time      // push timestamp; zero selects time.Now
}

// StreamConfig tunes the streaming ingestion layer.
type StreamConfig struct {
	// QueueCapacity bounds each switch's pending-snapshot queue. When a
	// push arrives at a full queue the newest queued snapshot is
	// replaced (coalesced): counters are cumulative, so a newer snapshot
	// supersedes an unconsumed older one without losing traffic — the
	// eventual delta simply spans both. Zero selects 64.
	QueueCapacity int
	// WindowBuffer bounds the completed-window channel; when the
	// consumer falls behind, the oldest completed window is dropped
	// (and counted). Zero selects 16.
	WindowBuffer int
	// Sampler optionally drives adaptive per-switch sampling: only due
	// switches gate window completion, and backed-off switches' rows
	// are masked (Missing) between their samples. Nil samples every
	// switch every window, which reproduces the pull-poll semantics
	// exactly.
	Sampler *AdaptiveSampler
	// RuleSpace presizes the assembler's dense per-rule scratch (the
	// merge accumulator and duplicate-detection stamps) to the FCM's
	// rule-ID space. It is a hint only: the scratch auto-grows when
	// churn installs rules beyond it. Zero starts empty and grows on
	// first use.
	RuleSpace int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.WindowBuffer <= 0 {
		c.WindowBuffer = 16
	}
	if c.RuleSpace < 0 {
		c.RuleSpace = 0
	}
	return c
}

// StreamStats is a snapshot of the assembler's ingestion counters.
type StreamStats struct {
	// Pushes counts accepted Push calls.
	Pushes uint64 `json:"pushes"`
	// Updates counts individual counter entries ingested across pushes.
	Updates uint64 `json:"updates"`
	// Coalesced counts snapshots merged into a newer one at queue
	// capacity (bounded-queue backpressure).
	Coalesced uint64 `json:"coalesced"`
	// DroppedUpdates counts queued snapshots discarded by Forget after
	// a collection gap invalidated their baseline.
	DroppedUpdates uint64 `json:"droppedUpdates"`
	// DroppedWindows counts completed windows evicted because the
	// consumer fell behind the WindowBuffer.
	DroppedWindows uint64 `json:"droppedWindows"`
	// Windows counts completed windows.
	Windows uint64 `json:"windows"`
	// QueueDepth is the current total number of queued snapshots.
	QueueDepth int `json:"queueDepth"`
	// MaxQueueDepth is the high-water total queue depth — with bounded
	// per-switch queues it can never exceed switches × QueueCapacity.
	MaxQueueDepth int `json:"maxQueueDepth"`
}

// ProbeSample is a backed-off switch's multi-window counter delta. It
// is consumed for baseline continuity and drift checking only — a
// delta spanning Span windows cannot join a single window's equation
// system, so the switch stays in Window.Missing.
type ProbeSample struct {
	// Total is the summed counter delta across the spanned windows.
	Total uint64 `json:"total"`
	// Span is how many windows the delta covers.
	Span uint64 `json:"span"`
}

// Window is one completed streaming detection window — the streaming
// equivalent of PollResult, carrying the same merged delta/missing/
// epoch semantics plus streaming-side accounting.
type Window struct {
	// Seq numbers windows from 1.
	Seq uint64
	// Deltas holds merged per-window counter deltas keyed by global
	// rule ID, lowest-switch-wins on duplicates, exactly as
	// PollResult.Deltas.
	Deltas map[int]uint64
	// Missing lists (sorted) switches whose rows must be masked this
	// window: marked missing by the pump, silent, freshly (re)primed,
	// reset, or backed off by the sampler.
	Missing []topo.SwitchID
	// Resets lists switches whose counters went backwards this window.
	Resets []topo.SwitchID
	// DuplicateRules lists rule IDs reported by more than one switch.
	DuplicateRules []int
	// Epoch is the rule-set epoch the window was assembled under.
	Epoch uint64
	// Straddled maps contributing switches whose delta window spans one
	// or more rule updates to their baseline epoch, as in PollResult.
	Straddled map[topo.SwitchID]uint64
	// Contributed maps each contributing switch to its total merged
	// counter delta (the sampler's stability signal).
	Contributed map[topo.SwitchID]uint64
	// Probes maps backed-off switches to their multi-window samples.
	Probes map[topo.SwitchID]ProbeSample
	// Opened is when the first push of this window arrived (zero if the
	// window completed without any push).
	Opened time.Time
	// Completed is when the window completed.
	Completed time.Time

	// store backs the window's maps and slices when it was assembled
	// from the recycle pool; Release hands them back. Nil for zero
	// values and hand-built windows, on which Release is a no-op.
	store    *windowStore
	storeGen uint32
}

// WindowAssembler turns pushed cumulative counter snapshots into
// completed detection windows. Each switch owns a bounded FIFO queue of
// pending snapshots; a window completes as soon as every due switch has
// contributed a snapshot or been marked missing, at which point all
// queued snapshots are consumed through the assembler's DeltaTracker —
// sequential AdvanceEpoch calls over queued snapshots sum to exactly
// the delta a single pull-poll would have produced, with identical
// reset (window missing, baseline kept) and epoch-straddle (earliest
// baseline epoch wins) outcomes, so streaming windows are byte-exact
// equivalents of PollResult windows.
//
// Safe for concurrent use: any number of pushers, one consumer draining
// Windows().
type WindowAssembler struct {
	mu           sync.Mutex
	cfg          StreamConfig
	deltas       *DeltaTracker
	order        []topo.SwitchID
	queues       map[topo.SwitchID][]Update
	missing      map[topo.SwitchID]bool
	due          map[topo.SwitchID]bool
	lastConsumed map[topo.SwitchID]uint64 // seq of last consumed snapshot
	seq          uint64                   // open window's sequence number
	depth        int                      // total queued snapshots
	openedAt     time.Time
	closed       bool
	stats        StreamStats
	out          chan Window
	tel          *telemetry.StreamMetrics
	now          func() time.Time // test hook; nil = time.Now

	// Dense per-window merge scratch, reused across windows: acc
	// accumulates one switch's telescoped deltas; ownerStamp/dupStamp
	// mark rule IDs already claimed (and already reported duplicate)
	// this window, stamped with wgen so starting a window is O(1).
	acc        *denseDeltas
	ownerStamp []uint32
	dupStamp   []uint32
	wgen       uint32
	pool       *sync.Pool // windowStore recycle pool
}

// NewWindowAssembler builds an assembler over the given switch set.
func NewWindowAssembler(switches []topo.SwitchID, cfg StreamConfig) *WindowAssembler {
	cfg = cfg.withDefaults()
	a := &WindowAssembler{
		cfg:          cfg,
		deltas:       NewDeltaTracker(),
		queues:       make(map[topo.SwitchID][]Update, len(switches)),
		missing:      make(map[topo.SwitchID]bool),
		due:          make(map[topo.SwitchID]bool, len(switches)),
		lastConsumed: make(map[topo.SwitchID]uint64, len(switches)),
		out:          make(chan Window, cfg.WindowBuffer),
		acc:          newDenseDeltas(cfg.RuleSpace),
		ownerStamp:   make([]uint32, cfg.RuleSpace),
		dupStamp:     make([]uint32, cfg.RuleSpace),
		wgen:         1,
		pool:         newWindowPool(),
	}
	for _, sw := range switches {
		if _, dup := a.queues[sw]; dup {
			continue
		}
		a.queues[sw] = nil
		a.order = append(a.order, sw)
	}
	sort.Slice(a.order, func(i, j int) bool { return a.order[i] < a.order[j] })
	a.seq = 1
	a.planWindowLocked()
	return a
}

// SetTelemetry mirrors the assembler's counters into a telemetry
// metric set (pass nil to detach).
func (a *WindowAssembler) SetTelemetry(m *telemetry.StreamMetrics) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tel = m
}

// planWindowLocked fixes the open window's due set. Caller holds a.mu.
func (a *WindowAssembler) planWindowLocked() {
	clear(a.due)
	if a.cfg.Sampler == nil {
		for _, sw := range a.order {
			a.due[sw] = true
		}
		return
	}
	for _, sw := range a.cfg.Sampler.Plan() {
		if _, known := a.queues[sw]; known {
			a.due[sw] = true
		}
	}
	if len(a.due) == 0 {
		// Never let a window wait on nobody: fall back to everyone.
		for _, sw := range a.order {
			a.due[sw] = true
		}
	}
	if a.tel != nil {
		a.tel.BackedOffSwitches.Set(float64(len(a.order) - len(a.due)))
	}
}

// Due returns the (sorted) switches the open window is waiting on — the
// set a streaming pump should fetch this round.
func (a *WindowAssembler) Due() []topo.SwitchID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]topo.SwitchID, 0, len(a.due))
	for _, sw := range a.order {
		if a.due[sw] {
			out = append(out, sw)
		}
	}
	return out
}

// SetEpoch tags snapshots consumed from now on with the given rule-set
// epoch, exactly as RobustCollector.SetEpoch does for polls.
func (a *WindowAssembler) SetEpoch(e uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deltas.SetEpoch(e)
}

// Epoch reports the current rule-set epoch.
func (a *WindowAssembler) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.deltas.Epoch()
}

// Push enqueues one cumulative snapshot, completing the open window if
// this was the last due contribution. Unknown switches are rejected;
// a full queue coalesces by replacing its newest pending snapshot.
func (a *WindowAssembler) Push(u Update) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrAssemblerClosed
	}
	q, known := a.queues[u.Switch]
	if !known {
		return fmt.Errorf("collector: push from unknown switch %d", u.Switch)
	}
	if u.At.IsZero() {
		u.At = a.clock()
	}
	a.stats.Pushes++
	a.stats.Updates += uint64(len(u.Counters))
	if len(q) >= a.cfg.QueueCapacity {
		q[len(q)-1] = u
		a.stats.Coalesced++
		if a.tel != nil {
			a.tel.Coalesced.Add(1)
		}
	} else {
		a.queues[u.Switch] = append(q, u)
		a.depth++
		if a.depth > a.stats.MaxQueueDepth {
			a.stats.MaxQueueDepth = a.depth
		}
	}
	if a.openedAt.IsZero() {
		a.openedAt = u.At
	}
	if a.tel != nil {
		a.tel.Pushes.Add(1)
		a.tel.Updates.Add(uint64(len(u.Counters)))
		a.tel.QueueDepth.Set(float64(a.depth))
	}
	a.tryCompleteLocked()
	return nil
}

// MarkMissing records that a switch cannot contribute to the open
// window (its poll failed or it is quarantined), completing the window
// if it was the last due contribution outstanding. Pair with Forget
// when the failure opened a baseline gap.
func (a *WindowAssembler) MarkMissing(switches ...topo.SwitchID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	for _, sw := range switches {
		if _, known := a.queues[sw]; known {
			a.missing[sw] = true
		}
	}
	a.tryCompleteLocked()
}

// Forget drops a switch's delta baseline and any queued snapshots. Call
// it when a collection gap opened (failed poll): queued snapshots
// predate the gap, so consuming them after it would let the next delta
// silently span the outage.
func (a *WindowAssembler) Forget(sw topo.SwitchID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deltas.Forget(sw)
	if q := a.queues[sw]; len(q) > 0 {
		a.stats.DroppedUpdates += uint64(len(q))
		if a.tel != nil {
			a.tel.DroppedUpdates.Add(uint64(len(q)))
		}
		a.depth -= len(q)
		a.queues[sw] = nil
	}
}

// Windows returns the completed-window channel. It is closed by Close.
func (a *WindowAssembler) Windows() <-chan Window { return a.out }

// Stats returns a snapshot of the ingestion counters.
func (a *WindowAssembler) Stats() StreamStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.stats
	out.QueueDepth = a.depth
	return out
}

// Flush force-completes the open window if anything is pending in it,
// marking non-contributing due switches missing. Returns whether a
// window was emitted.
func (a *WindowAssembler) Flush() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	return a.flushLocked()
}

func (a *WindowAssembler) flushLocked() bool {
	pending := len(a.missing) > 0
	if !pending {
		for _, q := range a.queues {
			if len(q) > 0 {
				pending = true
				break
			}
		}
	}
	if !pending {
		return false
	}
	a.completeLocked()
	return true
}

// Close flushes any pending window and closes the Windows channel.
// Further pushes return ErrAssemblerClosed.
func (a *WindowAssembler) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.flushLocked()
	a.closed = true
	close(a.out)
}

func (a *WindowAssembler) clock() time.Time {
	if a.now != nil {
		return a.now()
	}
	return time.Now()
}

// tryCompleteLocked completes the open window once every due switch has
// contributed a snapshot or been marked missing. Caller holds a.mu.
func (a *WindowAssembler) tryCompleteLocked() {
	for sw := range a.due {
		if !a.missing[sw] && len(a.queues[sw]) == 0 {
			return
		}
	}
	a.completeLocked()
}

// completeLocked assembles the open window from every queued snapshot,
// emits it, and opens the next window. Caller holds a.mu.
//
// The window's storage comes from the recycle pool and all merge
// scratch (the per-switch accumulator and the owner/duplicate stamps)
// is reused across windows, so in the steady state — stable switch and
// rule sets, a consumer that Releases windows — completion performs no
// per-window allocation.
func (a *WindowAssembler) completeLocked() {
	s := a.pool.Get().(*windowStore)
	w := Window{
		Seq:    a.seq,
		Epoch:  a.deltas.Epoch(),
		Opened: a.openedAt,
	}
	s.attach(&w)
	// Start a fresh owner/duplicate generation; the ~4-billionth window
	// wraps the stamp space and pays one memset.
	a.wgen++
	if a.wgen == 0 {
		clear(a.ownerStamp)
		clear(a.dupStamp)
		a.wgen = 1
	}
	for _, sw := range a.order {
		consumed := a.queues[sw]
		a.depth -= len(consumed)
		forcedMissing := a.missing[sw]
		if len(consumed) == 0 {
			// Failed, silent, or backed off: rows masked this window.
			w.Missing = append(w.Missing, sw)
			continue
		}
		// Consume the queue in arrival order. Sub-deltas telescope:
		// their sum equals the single delta one poll at the final
		// snapshot would have produced.
		a.acc.reset()
		var (
			usable      bool
			sawReset    bool
			sawStraddle bool
			firstFrom   uint64
		)
		for _, u := range consumed {
			reset, primed, fromEpoch, straddles := a.deltas.advanceEpochInto(sw, u.Counters, a.acc)
			if straddles && !sawStraddle {
				sawStraddle, firstFrom = true, fromEpoch
			}
			if reset {
				// Mid-window restart: everything accumulated so far spans
				// the reset; the snapshot re-baselined, so later queued
				// snapshots still cannot yield a full-window delta.
				sawReset = true
				a.acc.reset()
				usable = false
				continue
			}
			if !primed {
				continue
			}
			usable = true
		}
		a.queues[sw] = consumed[:0]
		span := a.seq - a.lastConsumed[sw]
		a.lastConsumed[sw] = a.seq
		if sawReset {
			w.Resets = append(w.Resets, sw)
			w.Missing = append(w.Missing, sw)
			continue
		}
		if forcedMissing || !usable {
			w.Missing = append(w.Missing, sw)
			continue
		}
		accTotal := a.acc.total
		if span > 1 {
			// Backed-off switch's sample: the delta spans several windows
			// and cannot join this window's equation system; keep it as a
			// rate probe and mask the rows.
			if w.Probes == nil {
				w.Probes = s.probes
			}
			w.Probes[sw] = ProbeSample{Total: accTotal, Span: span}
			w.Missing = append(w.Missing, sw)
			continue
		}
		if sawStraddle {
			if w.Straddled == nil {
				w.Straddled = s.straddled
			}
			w.Straddled[sw] = firstFrom
		}
		// Merge this switch's accumulated deltas: first switch (a.order
		// ascending) to report a rule ID owns it, later reporters flag
		// it duplicate — exactly the map-based owner/dupSeen semantics.
		for _, rid := range a.acc.touched {
			if rid >= len(a.ownerStamp) {
				a.growStampsLocked(rid + 1)
			}
			if a.ownerStamp[rid] == a.wgen {
				if a.dupStamp[rid] != a.wgen {
					a.dupStamp[rid] = a.wgen
					w.DuplicateRules = append(w.DuplicateRules, rid)
				}
				continue
			}
			a.ownerStamp[rid] = a.wgen
			w.Deltas[rid] = a.acc.vals[rid]
		}
		if w.Contributed == nil {
			w.Contributed = s.contributed
		}
		w.Contributed[sw] = accTotal
	}
	sort.Ints(w.DuplicateRules)
	w.Completed = a.clock()
	a.stats.Windows++
	if a.tel != nil {
		a.tel.Windows.Add(1)
		if !w.Opened.IsZero() {
			a.tel.WindowLagSeconds.Observe(w.Completed.Sub(w.Opened).Seconds())
		}
		a.tel.QueueDepth.Set(float64(a.depth))
	}
	a.emitLocked(w)
	clear(a.missing)
	a.openedAt = time.Time{}
	a.seq++
	a.planWindowLocked()
}

// growStampsLocked widens the owner/duplicate stamp arrays to at least
// n rule slots (churn installed rules beyond the presized space).
// Caller holds a.mu.
func (a *WindowAssembler) growStampsLocked(n int) {
	next := len(a.ownerStamp) * 2
	if next < n {
		next = n
	}
	if next < 64 {
		next = 64
	}
	owner := make([]uint32, next)
	copy(owner, a.ownerStamp)
	a.ownerStamp = owner
	dup := make([]uint32, next)
	copy(dup, a.dupStamp)
	a.dupStamp = dup
}

// emitLocked delivers a completed window, evicting the oldest buffered
// window when the consumer has fallen behind. Caller holds a.mu, which
// serialises producers; the consumer only ever removes, so the retry
// after an eviction cannot fail.
func (a *WindowAssembler) emitLocked(w Window) {
	select {
	case a.out <- w:
		return
	default:
	}
	select {
	case old := <-a.out:
		// The evicted window was never seen by the consumer; reclaim
		// its storage here.
		old.Release()
		a.stats.DroppedWindows++
		if a.tel != nil {
			a.tel.DroppedWindows.Add(1)
		}
	default:
	}
	select {
	case a.out <- w:
	default:
		w.Release()
		a.stats.DroppedWindows++
		if a.tel != nil {
			a.tel.DroppedWindows.Add(1)
		}
	}
}
