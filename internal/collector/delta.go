package collector

import "foces/internal/topo"

// DeltaTracker converts cumulative per-switch rule counters into
// per-period deltas — the windowed layer between a production
// collection plane (where switch counters monotonically accumulate and
// are never reset by the collector) and FOCES detection (which checks
// one period's traffic against HX=Y). It also detects counter resets: a
// counter that went backwards means the switch restarted and zeroed its
// counters, so that switch's window spans an unknown fraction of the
// period and must be treated as missing rather than fed into the
// equation system as garbage (a reboot would otherwise read as a
// massive forwarding anomaly).
//
// DeltaTracker is not safe for concurrent use; RobustCollector guards
// it with its own mutex.
type DeltaTracker struct {
	prev map[topo.SwitchID]map[int]uint64
}

// NewDeltaTracker returns an empty tracker; every switch's first
// observation establishes its baseline.
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{prev: make(map[topo.SwitchID]map[int]uint64)}
}

// Advance consumes one switch's cumulative counter snapshot and returns
// the per-period delta since the previous snapshot.
//
//   - primed=false: the switch had no baseline (first observation, or
//     after Forget) — the snapshot only establishes one; delta is nil
//     and the switch's counters are unusable this period.
//   - reset=true: some counter went backwards (cur < prev), i.e. the
//     switch restarted mid-window. The snapshot re-baselines; delta is
//     nil.
//   - otherwise delta[rid] = cur[rid] − prev[rid]. Rules absent from
//     the previous snapshot (installed mid-window) count from zero;
//     rules absent from the current one (deleted) drop out.
//
// The snapshot is copied; the caller keeps ownership of cur.
func (t *DeltaTracker) Advance(sw topo.SwitchID, cur map[int]uint64) (delta map[int]uint64, reset, primed bool) {
	prev, ok := t.prev[sw]
	if ok {
		for rid, v := range cur {
			if v < prev[rid] {
				reset = true
				break
			}
		}
	}
	cp := make(map[int]uint64, len(cur))
	for rid, v := range cur {
		cp[rid] = v
	}
	t.prev[sw] = cp
	if !ok || reset {
		return nil, reset, ok
	}
	delta = make(map[int]uint64, len(cur))
	for rid, v := range cur {
		delta[rid] = v - prev[rid]
	}
	return delta, false, true
}

// Forget drops a switch's baseline, forcing the next Advance to
// re-prime. Used when a switch leaves quarantine: its last snapshot
// predates the outage, so a delta across it would span several periods.
func (t *DeltaTracker) Forget(sw topo.SwitchID) {
	delete(t.prev, sw)
}

// Primed reports whether the switch currently has a baseline.
func (t *DeltaTracker) Primed(sw topo.SwitchID) bool {
	_, ok := t.prev[sw]
	return ok
}
