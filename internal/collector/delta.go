package collector

import "foces/internal/topo"

// DeltaTracker converts cumulative per-switch rule counters into
// per-period deltas — the windowed layer between a production
// collection plane (where switch counters monotonically accumulate and
// are never reset by the collector) and FOCES detection (which checks
// one period's traffic against HX=Y). It also detects counter resets: a
// counter that went backwards means the switch restarted and zeroed its
// counters, so that switch's window spans an unknown fraction of the
// period and must be treated as missing rather than fed into the
// equation system as garbage (a reboot would otherwise read as a
// massive forwarding anomaly).
//
// Windows are additionally tagged with the rule-set epoch (SetEpoch):
// each switch's baseline snapshot remembers the epoch it was taken
// under, so AdvanceEpoch can report when a delta window straddles a
// rule update — those windows mix traffic matched under two different
// rule generations and must be reconciled (changed rules masked)
// rather than read as forwarding anomalies.
//
// DeltaTracker is not safe for concurrent use; RobustCollector guards
// it with its own mutex.
type DeltaTracker struct {
	prev      map[topo.SwitchID]map[int]uint64
	prevEpoch map[topo.SwitchID]uint64
	epoch     uint64
}

// NewDeltaTracker returns an empty tracker; every switch's first
// observation establishes its baseline.
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{
		prev:      make(map[topo.SwitchID]map[int]uint64),
		prevEpoch: make(map[topo.SwitchID]uint64),
	}
}

// SetEpoch records the rule-set epoch that snapshots consumed from now
// on belong to. Call it whenever the churn subsystem applies an update.
func (t *DeltaTracker) SetEpoch(e uint64) { t.epoch = e }

// Epoch reports the current rule-set epoch.
func (t *DeltaTracker) Epoch() uint64 { return t.epoch }

// Advance consumes one switch's cumulative counter snapshot and returns
// the per-period delta since the previous snapshot.
//
//   - primed=false: the switch had no baseline (first observation, or
//     after Forget) — the snapshot only establishes one; delta is nil
//     and the switch's counters are unusable this period.
//   - reset=true: some counter went backwards (cur < prev), i.e. the
//     switch restarted mid-window. The snapshot re-baselines; delta is
//     nil.
//   - otherwise delta[rid] = cur[rid] − prev[rid]. Rules absent from
//     the previous snapshot (installed mid-window) count from zero;
//     rules absent from the current one (deleted) drop out.
//
// The snapshot is copied; the caller keeps ownership of cur.
func (t *DeltaTracker) Advance(sw topo.SwitchID, cur map[int]uint64) (delta map[int]uint64, reset, primed bool) {
	delta, reset, primed, _, _ = t.AdvanceEpoch(sw, cur)
	return delta, reset, primed
}

// AdvanceEpoch is Advance plus epoch accounting. fromEpoch is the
// rule-set epoch the window's baseline snapshot was taken under, and
// straddles reports whether a usable delta window spans one or more
// rule updates (fromEpoch != the current epoch): its counters mix two
// rule generations and the rules changed in between must be masked out
// of detection for this window.
func (t *DeltaTracker) AdvanceEpoch(sw topo.SwitchID, cur map[int]uint64) (delta map[int]uint64, reset, primed bool, fromEpoch uint64, straddles bool) {
	prev, ok := t.prev[sw]
	if ok {
		for rid, v := range cur {
			if v < prev[rid] {
				reset = true
				break
			}
		}
	}
	cp := make(map[int]uint64, len(cur))
	for rid, v := range cur {
		cp[rid] = v
	}
	fromEpoch = t.prevEpoch[sw]
	t.prev[sw] = cp
	t.prevEpoch[sw] = t.epoch
	if !ok || reset {
		return nil, reset, ok, fromEpoch, false
	}
	delta = make(map[int]uint64, len(cur))
	for rid, v := range cur {
		delta[rid] = v - prev[rid]
	}
	return delta, false, true, fromEpoch, fromEpoch != t.epoch
}

// Forget drops a switch's baseline, forcing the next Advance to
// re-prime. Used when a switch leaves quarantine: its last snapshot
// predates the outage, so a delta across it would span several periods.
func (t *DeltaTracker) Forget(sw topo.SwitchID) {
	delete(t.prev, sw)
	delete(t.prevEpoch, sw)
}

// Primed reports whether the switch currently has a baseline.
func (t *DeltaTracker) Primed(sw topo.SwitchID) bool {
	_, ok := t.prev[sw]
	return ok
}
