package collector

import "foces/internal/topo"

// DeltaTracker converts cumulative per-switch rule counters into
// per-period deltas — the windowed layer between a production
// collection plane (where switch counters monotonically accumulate and
// are never reset by the collector) and FOCES detection (which checks
// one period's traffic against HX=Y). It also detects counter resets: a
// counter that went backwards means the switch restarted and zeroed its
// counters, so that switch's window spans an unknown fraction of the
// period and must be treated as missing rather than fed into the
// equation system as garbage (a reboot would otherwise read as a
// massive forwarding anomaly).
//
// Windows are additionally tagged with the rule-set epoch (SetEpoch):
// each switch's baseline snapshot remembers the epoch it was taken
// under, so AdvanceEpoch can report when a delta window straddles a
// rule update — those windows mix traffic matched under two different
// rule generations and must be reconciled (changed rules masked)
// rather than read as forwarding anomalies.
//
// Each switch's baseline map is updated in place (keys are inserted or
// deleted only when the switch's rule set actually changes), so the
// steady state — every window reporting the same rule IDs — advances
// without allocating. The streaming assembler goes further through
// advanceEpochInto, which accumulates deltas into a dense epoch-sized
// scratch instead of returning a fresh map per snapshot.
//
// DeltaTracker is not safe for concurrent use; RobustCollector guards
// it with its own mutex.
type DeltaTracker struct {
	prev      map[topo.SwitchID]map[int]uint64
	prevEpoch map[topo.SwitchID]uint64
	epoch     uint64
}

// NewDeltaTracker returns an empty tracker; every switch's first
// observation establishes its baseline.
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{
		prev:      make(map[topo.SwitchID]map[int]uint64),
		prevEpoch: make(map[topo.SwitchID]uint64),
	}
}

// SetEpoch records the rule-set epoch that snapshots consumed from now
// on belong to. Call it whenever the churn subsystem applies an update.
func (t *DeltaTracker) SetEpoch(e uint64) { t.epoch = e }

// Epoch reports the current rule-set epoch.
func (t *DeltaTracker) Epoch() uint64 { return t.epoch }

// Advance consumes one switch's cumulative counter snapshot and returns
// the per-period delta since the previous snapshot.
//
//   - primed=false: the switch had no baseline (first observation, or
//     after Forget) — the snapshot only establishes one; delta is nil
//     and the switch's counters are unusable this period.
//   - reset=true: some counter went backwards (cur < prev), i.e. the
//     switch restarted mid-window. The snapshot re-baselines; delta is
//     nil.
//   - otherwise delta[rid] = cur[rid] − prev[rid]. Rules absent from
//     the previous snapshot (installed mid-window) count from zero;
//     rules absent from the current one (deleted) drop out.
//
// The snapshot is never retained; the caller keeps ownership of cur.
func (t *DeltaTracker) Advance(sw topo.SwitchID, cur map[int]uint64) (delta map[int]uint64, reset, primed bool) {
	delta, reset, primed, _, _ = t.AdvanceEpoch(sw, cur)
	return delta, reset, primed
}

// AdvanceEpoch is Advance plus epoch accounting. fromEpoch is the
// rule-set epoch the window's baseline snapshot was taken under, and
// straddles reports whether a usable delta window spans one or more
// rule updates (fromEpoch != the current epoch): its counters mix two
// rule generations and the rules changed in between must be masked out
// of detection for this window.
func (t *DeltaTracker) AdvanceEpoch(sw topo.SwitchID, cur map[int]uint64) (delta map[int]uint64, reset, primed bool, fromEpoch uint64, straddles bool) {
	delta, reset, primed, fromEpoch, straddles = t.advance(sw, cur, nil, true)
	return
}

// advanceEpochInto is AdvanceEpoch for the streaming hot path: instead
// of returning a fresh delta map it accumulates the delta into acc
// (only when the snapshot yields a usable delta — primed and not
// reset). acc entries sum across calls, so consuming a queue of
// snapshots through one accumulator telescopes to the single delta one
// poll at the final snapshot would have produced.
func (t *DeltaTracker) advanceEpochInto(sw topo.SwitchID, cur map[int]uint64, acc *denseDeltas) (reset, primed bool, fromEpoch uint64, straddles bool) {
	_, reset, primed, fromEpoch, straddles = t.advance(sw, cur, acc, false)
	return
}

// advance is the shared body of AdvanceEpoch and advanceEpochInto: it
// reset-checks cur against the baseline, produces the delta (as a
// fresh map when wantMap, into acc otherwise), and folds cur into the
// baseline in place.
func (t *DeltaTracker) advance(sw topo.SwitchID, cur map[int]uint64, acc *denseDeltas, wantMap bool) (delta map[int]uint64, reset, primed bool, fromEpoch uint64, straddles bool) {
	prev, ok := t.prev[sw]
	if ok {
		for rid, v := range cur {
			if v < prev[rid] {
				reset = true
				break
			}
		}
	}
	fromEpoch = t.prevEpoch[sw]
	usable := ok && !reset
	if prev == nil {
		prev = make(map[int]uint64, len(cur))
		t.prev[sw] = prev
	}
	if usable && wantMap {
		delta = make(map[int]uint64, len(cur))
	}
	before := len(prev)
	added := 0
	for rid, v := range cur {
		old, existed := prev[rid]
		if !existed {
			added++
		}
		if usable {
			if wantMap {
				delta[rid] = v - old
			} else {
				acc.add(rid, v-old)
			}
		}
		prev[rid] = v
	}
	// Rules absent from cur were deleted since the previous snapshot;
	// drop them from the baseline. In the steady state (same rule set
	// every window) this branch never runs and advance is allocation
	// free.
	if before+added > len(cur) {
		for rid := range prev {
			if _, live := cur[rid]; !live {
				delete(prev, rid)
			}
		}
	}
	t.prevEpoch[sw] = t.epoch
	if !ok || reset {
		return nil, reset, ok, fromEpoch, false
	}
	return delta, false, true, fromEpoch, fromEpoch != t.epoch
}

// Forget drops a switch's baseline, forcing the next Advance to
// re-prime. Used when a switch leaves quarantine: its last snapshot
// predates the outage, so a delta across it would span several periods.
func (t *DeltaTracker) Forget(sw topo.SwitchID) {
	delete(t.prev, sw)
	delete(t.prevEpoch, sw)
}

// Primed reports whether the switch currently has a baseline.
func (t *DeltaTracker) Primed(sw topo.SwitchID) bool {
	_, ok := t.prev[sw]
	return ok
}

// denseDeltas is an epoch-sized per-rule delta accumulator: rule IDs
// are dense small ints that are never reclaimed, so a []uint64 indexed
// by rule ID replaces the per-snapshot delta map on the streaming hot
// path. A generation stamp marks which entries belong to the current
// accumulation, so reset is O(1) (bump the generation) instead of
// clearing the arrays, and the touched list replays exactly the
// entries added since the last reset — including explicit zeros, which
// must survive into Window.Deltas just as a zero-valued map entry
// would.
type denseDeltas struct {
	vals    []uint64
	stamp   []uint32
	gen     uint32
	touched []int
	total   uint64
}

func newDenseDeltas(space int) *denseDeltas {
	if space < 0 {
		space = 0
	}
	return &denseDeltas{
		vals:  make([]uint64, space),
		stamp: make([]uint32, space),
		gen:   1,
	}
}

// reset discards every accumulated entry in O(1) by advancing the
// generation stamp (clearing the stamp array only on the ~4-billionth
// wraparound).
func (d *denseDeltas) reset() {
	d.touched = d.touched[:0]
	d.total = 0
	d.gen++
	if d.gen == 0 {
		clear(d.stamp)
		d.gen = 1
	}
}

// add accumulates one rule's delta, growing the arrays when a rule ID
// beyond the current space appears (rule churn added rules).
func (d *denseDeltas) add(rid int, v uint64) {
	if rid >= len(d.vals) {
		d.grow(rid + 1)
	}
	if d.stamp[rid] != d.gen {
		d.stamp[rid] = d.gen
		d.vals[rid] = v
		d.touched = append(d.touched, rid)
	} else {
		d.vals[rid] += v
	}
	d.total += v
}

// grow widens the accumulator to at least n rule slots (next power of
// two, so churn-driven growth amortizes).
func (d *denseDeltas) grow(n int) {
	cap := len(d.vals) * 2
	if cap < n {
		cap = n
	}
	if cap < 64 {
		cap = 64
	}
	vals := make([]uint64, cap)
	copy(vals, d.vals)
	d.vals = vals
	stamp := make([]uint32, cap)
	copy(stamp, d.stamp)
	d.stamp = stamp
}
