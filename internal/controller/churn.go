package controller

import (
	"fmt"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// Dynamic rule churn. The controller is the single writer of the
// intended rule set; every mutation goes through AddRule / RemoveRule /
// ModifyRule so that (a) rule IDs are allocated by a monotonic counter
// and NEVER reclaimed — flowtable.Table.Remove leaves an ID technically
// reusable, but the controller guarantees a removed ID stays dead
// forever, so epoch logs, FCM rows and counter vectors can key on rule
// ID across the rule set's whole lifetime without ABA confusion — and
// (b) every change is reported to the registered observer (the churn
// subsystem) as a RuleChange event.

// RuleOp classifies one rule-set mutation.
type RuleOp int

// Rule-set mutations.
const (
	RuleAdded RuleOp = iota + 1
	RuleRemoved
	RuleModified
)

func (o RuleOp) String() string {
	switch o {
	case RuleAdded:
		return "add"
	case RuleRemoved:
		return "remove"
	case RuleModified:
		return "modify"
	default:
		return "unknown"
	}
}

// RuleChange is one observed rule-set mutation. For RuleModified, Prev
// holds the rule as it was before the change; Rule always holds the
// rule the operation concerned (for RuleRemoved, the removed rule).
type RuleChange struct {
	Op   RuleOp
	Rule flowtable.Rule
	Prev flowtable.Rule
}

// SetChangeObserver registers fn to be called with each batch of
// rule-set mutations, after the controller's own state has been
// updated. Recompute (ComputeRules*) resets the rule set wholesale and
// does not emit events; observers must treat it as a new baseline.
func (c *Controller) SetChangeObserver(fn func([]RuleChange)) { c.observer = fn }

// RuleSpace reports the exclusive upper bound of ever-allocated rule
// IDs: all live rule IDs are in [0, RuleSpace), and removed IDs in that
// range are never reused.
func (c *Controller) RuleSpace() int { return c.nextID }

// allocID hands out the next rule ID. IDs are dense while rules are
// only added; removals leave permanent holes.
func (c *Controller) allocID() int {
	id := c.nextID
	c.nextID++
	return id
}

func (c *Controller) notify(changes ...RuleChange) {
	if c.observer != nil && len(changes) > 0 {
		c.observer(changes)
	}
}

// AddRule installs a new rule with a freshly allocated ID on the given
// switch and reports it to the observer. It returns the installed rule.
func (c *Controller) AddRule(sw topo.SwitchID, priority int, match header.Space, act flowtable.Action) (flowtable.Rule, error) {
	if _, err := c.topology.Switch(sw); err != nil {
		return flowtable.Rule{}, fmt.Errorf("controller: add rule: %w", err)
	}
	r := flowtable.Rule{
		ID:       c.allocID(),
		Switch:   sw,
		Priority: priority,
		Match:    match,
		Action:   act,
	}
	c.rules = append(c.rules, r)
	c.notify(RuleChange{Op: RuleAdded, Rule: r})
	return r, nil
}

// RemoveRule removes the rule with the given ID from the intended set
// and reports it. The ID is retired permanently.
func (c *Controller) RemoveRule(id int) (flowtable.Rule, error) {
	for i, r := range c.rules {
		if r.ID == id {
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			c.notify(RuleChange{Op: RuleRemoved, Rule: r})
			return r, nil
		}
	}
	return flowtable.Rule{}, fmt.Errorf("controller: remove rule %d: not installed", id)
}

// ModifyRule replaces the priority, match and action of an installed
// rule in place (the rule stays on its switch and keeps its ID — a
// switch move is a remove plus an add) and reports the change.
func (c *Controller) ModifyRule(id int, priority int, match header.Space, act flowtable.Action) (flowtable.Rule, error) {
	for i, r := range c.rules {
		if r.ID == id {
			prev := r
			r.Priority = priority
			r.Match = match
			r.Action = act
			c.rules[i] = r
			c.notify(RuleChange{Op: RuleModified, Rule: r, Prev: prev})
			return r, nil
		}
	}
	return flowtable.Rule{}, fmt.Errorf("controller: modify rule %d: not installed", id)
}

// Rule returns the installed rule with the given ID.
func (c *Controller) Rule(id int) (flowtable.Rule, bool) {
	for _, r := range c.rules {
		if r.ID == id {
			return r, true
		}
	}
	return flowtable.Rule{}, false
}
