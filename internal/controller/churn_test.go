package controller

import (
	"testing"

	"foces/internal/flowtable"
	"foces/internal/topo"
)

func churnTestTopology(t *testing.T) *topo.Topology {
	t.Helper()
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// TestRuleIDsNeverReclaimed pins the allocator invariant the churn
// subsystem depends on: once a rule ID has been handed out, no later
// Add may ever reuse it — even after the rule is removed — so epoch
// logs and FCM rows can key on rule ID for the rule set's lifetime.
func TestRuleIDsNeverReclaimed(t *testing.T) {
	topol := churnTestTopology(t)
	c, err := New(topol, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	base := c.NumRules()
	if base == 0 {
		t.Fatal("no rules computed")
	}
	if c.RuleSpace() != base {
		t.Fatalf("RuleSpace %d after computing %d dense rules", c.RuleSpace(), base)
	}
	everIssued := make(map[int]bool, base)
	for _, r := range c.Rules() {
		everIssued[r.ID] = true
	}
	sw := topol.Switches()[0].ID
	match := layout.Wildcard()
	act := flowtable.Action{Type: flowtable.ActionDrop}
	// Interleave adds and removes; every add must produce a brand-new ID
	// strictly above all earlier ones.
	var added []int
	for i := 0; i < 20; i++ {
		r, err := c.AddRule(sw, 10+i, match, act)
		if err != nil {
			t.Fatal(err)
		}
		if everIssued[r.ID] {
			t.Fatalf("rule ID %d reissued", r.ID)
		}
		if r.ID != c.RuleSpace()-1 {
			t.Fatalf("rule ID %d not monotonic (space %d)", r.ID, c.RuleSpace())
		}
		everIssued[r.ID] = true
		added = append(added, r.ID)
		if i%2 == 1 {
			// Remove the rule added two iterations ago; its ID must stay
			// retired.
			victim := added[len(added)-2]
			if _, err := c.RemoveRule(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	// After churn, RuleSpace covers every ID ever issued and exceeds the
	// live count (holes are permanent).
	if c.RuleSpace() != base+20 {
		t.Fatalf("RuleSpace %d, want %d", c.RuleSpace(), base+20)
	}
	if c.NumRules() >= c.RuleSpace() {
		t.Fatalf("no holes after removals: %d live rules in space %d", c.NumRules(), c.RuleSpace())
	}
	// Removing an already-removed ID fails rather than resurrecting it.
	if _, err := c.RemoveRule(added[0]); err == nil {
		t.Fatal("double remove succeeded")
	}
	// A full recompute is a new baseline: dense IDs from zero again.
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	for i, r := range c.Rules() {
		if r.ID != i {
			t.Fatalf("recompute not dense: rules[%d].ID = %d", i, r.ID)
		}
	}
	if c.RuleSpace() != c.NumRules() {
		t.Fatalf("recompute RuleSpace %d vs %d rules", c.RuleSpace(), c.NumRules())
	}
}

// TestChangeObserverSeesMutations checks that every mutator emits one
// event batch with the post-state (and prior state for modifies).
func TestChangeObserverSeesMutations(t *testing.T) {
	topol := churnTestTopology(t)
	c, err := New(topol, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	var got []RuleChange
	c.SetChangeObserver(func(ch []RuleChange) { got = append(got, ch...) })
	sw := topol.Switches()[0].ID
	r, err := c.AddRule(sw, 50, layout.Wildcard(), flowtable.Action{Type: flowtable.ActionDrop})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ModifyRule(r.ID, 60, layout.Wildcard(), flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveRule(r.ID); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("observed %d events, want 3: %+v", len(got), got)
	}
	if got[0].Op != RuleAdded || got[0].Rule.ID != r.ID {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1].Op != RuleModified || got[1].Rule.Priority != 60 || got[1].Prev.Priority != 50 {
		t.Fatalf("event 1 = %+v", got[1])
	}
	if got[2].Op != RuleRemoved || got[2].Rule.ID != r.ID {
		t.Fatalf("event 2 = %+v", got[2])
	}
}
