// Package controller implements the trusted SDN control plane of the
// FOCES system model (§II-A): it computes shortest-path forwarding
// rules from the topology, installs them into switch flow tables, and
// retains the *intended* rule set that the FCM generator consumes (the
// controller never trusts flow-table dumps from potentially
// compromised switches).
//
// Two policy modes are provided. PairExact mirrors reactive
// Floodlight-style forwarding — one exact (src, dst) rule per flow per
// hop — and reproduces Table I's flow counts (e.g. 650 flows for the
// Stanford topology). DestAggregate installs one per-destination rule
// per switch, so a rule aggregates many flows exactly as in the
// paper's Fig. 2 discussion.
package controller

import (
	"fmt"

	"foces/internal/dataplane"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// PolicyMode selects how the controller translates routing intent into
// rules.
type PolicyMode int

// Policy modes.
const (
	// PairExact installs one rule per (src, dst) host pair per hop,
	// matching src_ip and dst_ip exactly.
	PairExact PolicyMode = iota + 1
	// DestAggregate installs one rule per (switch, dst) matching dst_ip
	// only; rules aggregate flows from every source.
	DestAggregate
)

func (m PolicyMode) String() string {
	switch m {
	case PairExact:
		return "pair-exact"
	case DestAggregate:
		return "dest-aggregate"
	default:
		return "unknown"
	}
}

// Controller computes and installs forwarding rules.
type Controller struct {
	topology *topo.Topology
	layout   *header.Layout
	mode     PolicyMode
	rules    []flowtable.Rule
	// nextID is the monotonic rule-ID allocator. IDs are never reused
	// once handed out (see churn.go); a full recompute resets the
	// allocator along with the rule set.
	nextID   int
	observer func([]RuleChange)
}

// New returns a controller for the given topology.
func New(t *topo.Topology, layout *header.Layout, mode PolicyMode) (*Controller, error) {
	if mode != PairExact && mode != DestAggregate {
		return nil, fmt.Errorf("controller: invalid policy mode %d", mode)
	}
	return &Controller{topology: t, layout: layout, mode: mode}, nil
}

// Mode reports the configured policy mode.
func (c *Controller) Mode() PolicyMode { return c.mode }

// ComputeRules derives the full rule set for the current topology,
// replacing any previously computed rules. Rule IDs are dense 0..m-1 in
// deterministic order, so they map directly to FCM rows.
func (c *Controller) ComputeRules() error {
	c.rules = nil
	c.nextID = 0
	switch c.mode {
	case PairExact:
		return c.computePairExact()
	case DestAggregate:
		return c.computeDestAggregate()
	default:
		return fmt.Errorf("controller: invalid policy mode %d", c.mode)
	}
}

func (c *Controller) computePairExact() error {
	hosts := c.topology.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src.ID == dst.ID {
				continue
			}
			if err := c.addPairRules(src.ID, dst.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// ComputeRulesForPairs derives PairExact rules for an explicit subset
// of host pairs, replacing any previously computed rules. It is the
// knob behind the Fig. 12 scaling experiment, which varies the number
// of flows on a fixed topology.
func (c *Controller) ComputeRulesForPairs(pairs [][2]topo.HostID) error {
	if c.mode != PairExact {
		return fmt.Errorf("controller: pair subsets require %v mode, have %v", PairExact, c.mode)
	}
	c.rules = nil
	c.nextID = 0
	for _, p := range pairs {
		if p[0] == p[1] {
			return fmt.Errorf("controller: degenerate pair %d->%d", p[0], p[1])
		}
		if err := c.addPairRules(p[0], p[1]); err != nil {
			return err
		}
	}
	return nil
}

func (c *Controller) addPairRules(srcID, dstID topo.HostID) error {
	src, err := c.topology.Host(srcID)
	if err != nil {
		return err
	}
	dst, err := c.topology.Host(dstID)
	if err != nil {
		return err
	}
	path, err := c.topology.ECMPHostPath(src.ID, dst.ID)
	if err != nil {
		return fmt.Errorf("controller: path %s->%s: %w", src.Name, dst.Name, err)
	}
	match, err := c.pairMatch(src.IP, dst.IP)
	if err != nil {
		return err
	}
	for i, sw := range path {
		var act flowtable.Action
		if i == len(path)-1 {
			act = flowtable.Action{Type: flowtable.ActionDeliver, Port: dst.Port}
		} else {
			port, err := c.topology.PortToward(sw, path[i+1])
			if err != nil {
				return fmt.Errorf("controller: %s->%s hop %d: %w", src.Name, dst.Name, i, err)
			}
			act = flowtable.Action{Type: flowtable.ActionOutput, Port: port}
		}
		c.rules = append(c.rules, flowtable.Rule{
			ID:       c.allocID(),
			Switch:   sw,
			Priority: 200,
			Match:    match,
			Action:   act,
		})
	}
	return nil
}

func (c *Controller) computeDestAggregate() error {
	for _, dst := range c.topology.Hosts() {
		tree, err := c.topology.TreeTo(dst.Attach)
		if err != nil {
			return fmt.Errorf("controller: tree to %s: %w", dst.Name, err)
		}
		match, err := c.layout.MatchExact(c.layout.Wildcard(), header.FieldDstIP, dst.IP)
		if err != nil {
			return err
		}
		for _, sw := range c.topology.Switches() {
			next := tree.Next[sw.ID]
			if next == -2 {
				continue // unreachable
			}
			var act flowtable.Action
			if sw.ID == dst.Attach {
				act = flowtable.Action{Type: flowtable.ActionDeliver, Port: dst.Port}
			} else {
				port, err := c.topology.PortToward(sw.ID, next)
				if err != nil {
					return fmt.Errorf("controller: switch %s toward %s: %w", sw.Name, dst.Name, err)
				}
				act = flowtable.Action{Type: flowtable.ActionOutput, Port: port}
			}
			c.rules = append(c.rules, flowtable.Rule{
				ID:       c.allocID(),
				Switch:   sw.ID,
				Priority: 100,
				Match:    match,
				Action:   act,
			})
		}
	}
	return nil
}

func (c *Controller) pairMatch(srcIP, dstIP uint64) (header.Space, error) {
	m, err := c.layout.MatchExact(c.layout.Wildcard(), header.FieldSrcIP, srcIP)
	if err != nil {
		return header.Space{}, err
	}
	return c.layout.MatchExact(m, header.FieldDstIP, dstIP)
}

// Rules returns a copy of the intended rule set, indexed by rule ID.
func (c *Controller) Rules() []flowtable.Rule {
	out := make([]flowtable.Rule, len(c.rules))
	copy(out, c.rules)
	return out
}

// NumRules reports the number of computed rules.
func (c *Controller) NumRules() int { return len(c.rules) }

// Install populates the data plane's flow tables with the computed
// rules (the proactive installation mode of §II-A).
func (c *Controller) Install(net *dataplane.Network) error {
	if len(c.rules) == 0 {
		return fmt.Errorf("controller: no rules computed")
	}
	for _, r := range c.rules {
		tbl, err := net.Table(r.Switch)
		if err != nil {
			return fmt.Errorf("controller: install rule %d: %w", r.ID, err)
		}
		if err := tbl.Install(r); err != nil {
			return fmt.Errorf("controller: install rule %d: %w", r.ID, err)
		}
	}
	return nil
}

// Bootstrap is the common setup path: compute rules and install them
// into a fresh data plane over the topology.
func Bootstrap(t *topo.Topology, layout *header.Layout, mode PolicyMode) (*Controller, *dataplane.Network, error) {
	c, err := New(t, layout, mode)
	if err != nil {
		return nil, nil, err
	}
	if err := c.ComputeRules(); err != nil {
		return nil, nil, err
	}
	net := dataplane.NewNetwork(t, layout)
	if err := c.Install(net); err != nil {
		return nil, nil, err
	}
	return c, net, nil
}
