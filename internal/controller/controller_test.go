package controller

import (
	"math/rand"
	"testing"

	"foces/internal/dataplane"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func TestPairExactRuleCountLinear(t *testing.T) {
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	// Ordered pairs and path switch counts on a 3-chain:
	// (0,1):2 (0,2):3 (1,0):2 (1,2):2 (2,0):3 (2,1):2 = 14 rules.
	if c.NumRules() != 14 {
		t.Fatalf("rules = %d, want 14", c.NumRules())
	}
	for i, r := range c.Rules() {
		if r.ID != i {
			t.Fatalf("rule IDs not dense: rules[%d].ID = %d", i, r.ID)
		}
	}
}

func TestDestAggregateRuleCountLinear(t *testing.T) {
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(top, layout, DestAggregate)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	// One rule per (switch, dst): 3 switches x 3 hosts = 9.
	if c.NumRules() != 9 {
		t.Fatalf("rules = %d, want 9", c.NumRules())
	}
}

func TestInvalidMode(t *testing.T) {
	top, _ := topo.Linear(2, 1)
	if _, err := New(top, layout, PolicyMode(0)); err == nil {
		t.Fatal("invalid mode must error")
	}
	if got := PairExact.String(); got != "pair-exact" {
		t.Fatalf("String = %q", got)
	}
	if got := DestAggregate.String(); got != "dest-aggregate" {
		t.Fatalf("String = %q", got)
	}
	if got := PolicyMode(0).String(); got != "unknown" {
		t.Fatalf("String = %q", got)
	}
}

func TestInstallRequiresCompute(t *testing.T) {
	top, _ := topo.Linear(2, 1)
	c, err := New(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	net := dataplane.NewNetwork(top, layout)
	if err := c.Install(net); err == nil {
		t.Fatal("install before compute must error")
	}
}

func TestBootstrapDeliversAllTraffic(t *testing.T) {
	for _, mode := range []PolicyMode{PairExact, DestAggregate} {
		for _, name := range topo.EvaluationTopologies() {
			top, err := topo.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			_, net, err := Bootstrap(top, layout, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			rng := rand.New(rand.NewSource(1))
			sum, err := net.Run(rng, dataplane.UniformTraffic(top, 100))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			tot := sum.Totals()
			if tot.Delivered != tot.Offered || tot.Blackhole != 0 || tot.Lost != 0 {
				t.Fatalf("%s/%v: offered=%d delivered=%d lost=%d blackhole=%d",
					name, mode, tot.Offered, tot.Delivered, tot.Lost, tot.Blackhole)
			}
		}
	}
}

func TestPairExactCountersEqualFlowVolumePerHop(t *testing.T) {
	top, err := topo.Linear(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, net, err := Bootstrap(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const vol = 57
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, vol)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	if len(counters) != c.NumRules() {
		t.Fatalf("counters for %d rules, want %d", len(counters), c.NumRules())
	}
	for id, v := range counters {
		if v != vol {
			t.Fatalf("rule %d counter = %d, want %d (flow conservation)", id, v, vol)
		}
	}
}

func TestDestAggregateCountersSumSources(t *testing.T) {
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, net, err := Bootstrap(top, layout, DestAggregate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const vol = 10
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, vol)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	// The delivery rule for host 1 (middle) aggregates both sources.
	hosts := top.Hosts()
	var deliverMid uint64
	for _, r := range c.Rules() {
		if r.Switch != hosts[1].Attach {
			continue
		}
		v, ok, err := layout.SpaceField(r.Match, header.FieldDstIP)
		if err != nil || !ok {
			t.Fatal("aggregate rule must have exact dst")
		}
		if v == hosts[1].IP {
			deliverMid = counters[r.ID]
		}
	}
	if deliverMid != 2*vol {
		t.Fatalf("middle delivery rule counter = %d, want %d", deliverMid, 2*vol)
	}
}

func TestRulesAreCopies(t *testing.T) {
	top, _ := topo.Linear(2, 1)
	c, err := New(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	r1 := c.Rules()
	r1[0].ID = 999
	if c.Rules()[0].ID == 999 {
		t.Fatal("Rules() must return a copy")
	}
}

func TestDoubleInstallFails(t *testing.T) {
	top, _ := topo.Linear(2, 1)
	c, net, err := Bootstrap(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Install(net); err == nil {
		t.Fatal("duplicate install must error on duplicate rule IDs")
	}
}
