package controller

import (
	"fmt"
	"sync"

	"foces/internal/dataplane"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// ReactiveInstaller handles packet-in events by computing and
// installing PairExact rules for the missing (src, dst) host pair along
// its ECMP path — the reactive installation mode of §II-A, mirroring
// Floodlight's reactive forwarding. Rules accumulate in the
// controller's intent, so the FCM can be (re)generated at any point
// from Controller.Rules().
//
// It is safe for concurrent packet-ins.
type ReactiveInstaller struct {
	ctrl    *Controller
	install func(flowtable.Rule) error

	mu        sync.Mutex
	installed map[[2]topo.HostID]bool
}

// NewReactiveInstaller wires a controller (PairExact mode, typically
// with an empty rule set) to an install function that pushes one rule
// to the data plane (e.g. a FlowMod via the control channel, or a
// direct table install).
func NewReactiveInstaller(ctrl *Controller, install func(flowtable.Rule) error) (*ReactiveInstaller, error) {
	if ctrl.Mode() != PairExact {
		return nil, fmt.Errorf("controller: reactive installation requires %v mode, have %v", PairExact, ctrl.Mode())
	}
	return &ReactiveInstaller{
		ctrl:      ctrl,
		install:   install,
		installed: make(map[[2]topo.HostID]bool),
	}, nil
}

// Handler returns the dataplane.MissHandler to register on the
// network.
func (ri *ReactiveInstaller) Handler() dataplane.MissHandler {
	return func(sw topo.SwitchID, pkt header.Packet) error {
		return ri.handleMiss(pkt)
	}
}

// InstalledPairs reports how many host pairs have rules so far.
func (ri *ReactiveInstaller) InstalledPairs() int {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return len(ri.installed)
}

func (ri *ReactiveInstaller) handleMiss(pkt header.Packet) error {
	srcIP, err := ri.ctrl.layout.PacketField(pkt, header.FieldSrcIP)
	if err != nil {
		return err
	}
	dstIP, err := ri.ctrl.layout.PacketField(pkt, header.FieldDstIP)
	if err != nil {
		return err
	}
	src, ok := ri.ctrl.topology.HostByIP(srcIP)
	if !ok {
		return fmt.Errorf("controller: packet-in from unknown source %s", header.FormatIPv4(srcIP))
	}
	dst, ok := ri.ctrl.topology.HostByIP(dstIP)
	if !ok {
		return fmt.Errorf("controller: packet-in for unknown destination %s", header.FormatIPv4(dstIP))
	}
	key := [2]topo.HostID{src.ID, dst.ID}

	ri.mu.Lock()
	defer ri.mu.Unlock()
	if ri.installed[key] {
		// Another packet of the pair raced ahead; nothing to do.
		return nil
	}
	before := len(ri.ctrl.rules)
	if err := ri.ctrl.addPairRules(src.ID, dst.ID); err != nil {
		return err
	}
	for _, r := range ri.ctrl.rules[before:] {
		if err := ri.install(r); err != nil {
			return fmt.Errorf("controller: reactive install rule %d: %w", r.ID, err)
		}
	}
	ri.installed[key] = true
	return nil
}
