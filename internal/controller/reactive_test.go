package controller

import (
	"math/rand"
	"testing"

	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

func TestReactiveInstallation(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	// No proactive rules at all: everything comes from packet-ins.
	net := dataplane.NewNetwork(top, layout)
	installer, err := NewReactiveInstaller(ctrl, func(r flowtable.Rule) error {
		tbl, err := net.Table(r.Switch)
		if err != nil {
			return err
		}
		return tbl.Install(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	net.SetMissHandler(installer.Handler())

	rng := rand.New(rand.NewSource(1))
	tm := dataplane.UniformTraffic(top, 100)
	sum, err := net.Run(rng, tm)
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered != tot.Offered {
		t.Fatalf("reactive first interval must deliver everything: %+v", tot)
	}
	if installer.InstalledPairs() != 240 {
		t.Fatalf("installed pairs = %d, want 240", installer.InstalledPairs())
	}
	if ctrl.NumRules() != net.RuleCount() {
		t.Fatalf("intent %d rules vs network %d", ctrl.NumRules(), net.RuleCount())
	}

	// The FCM generated from the reactively-built intent must be
	// consistent with a fresh traffic interval.
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	net.ResetCounters()
	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(f.H, f.CounterVector(net.CollectCounters()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("reactive network flagged clean traffic: AI=%v", res.Index)
	}
}

func TestReactiveRequiresPairExact(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(top, layout, DestAggregate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReactiveInstaller(ctrl, nil); err == nil {
		t.Fatal("reactive with aggregate mode must error")
	}
}

func TestReactiveUnknownHosts(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(top, layout, PairExact)
	if err != nil {
		t.Fatal(err)
	}
	installer, err := NewReactiveInstaller(ctrl, func(flowtable.Rule) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	handler := installer.Handler()
	// Packet with unknown addresses: handler must error, not panic.
	blank := header.NewPacket(layout.Width())
	p, err := layout.PacketWithField(blank, header.FieldSrcIP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := handler(0, p); err == nil {
		t.Fatal("unknown source must error")
	}
	// Known source, unknown destination.
	src := top.Hosts()[0]
	p, err = layout.PacketWithField(blank, header.FieldSrcIP, src.IP)
	if err != nil {
		t.Fatal(err)
	}
	if err := handler(0, p); err == nil {
		t.Fatal("unknown destination must error")
	}
}
