package dataplane

import (
	"math"
	"math/rand"
)

// binomialExactLimit is the trial count below which Binomial samples
// exactly; above it a clamped normal approximation is used (the error
// is negligible once n·p·(1−p) is large).
const binomialExactLimit = 256

// Binomial draws from Binomial(n, p) deterministically under rng. It is
// used for per-link packet-loss thinning: given n packets and survival
// probability p, it returns how many survive.
func Binomial(rng *rand.Rand, n uint64, p float64) uint64 {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= binomialExactLimit {
		var k uint64
		for i := uint64(0); i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	std := math.Sqrt(float64(n) * p * (1 - p))
	v := math.Round(mean + rng.NormFloat64()*std)
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return uint64(v)
}
