// Package dataplane simulates the SDN data plane that the paper drives
// with Mininet, Open vSwitch and iperf: packets flow along installed
// rules, per-link packet loss thins flows binomially, rule counters
// accumulate match counts, and compromised switches mis-forward traffic
// through flow-table overrides. Everything is deterministic under a
// caller-supplied *rand.Rand, so experiments are reproducible.
package dataplane

import (
	"fmt"
	"math"
	"math/rand"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// DefaultTTL bounds forwarding walks, mirroring an IP TTL; adversarial
// loops terminate instead of hanging the simulator.
const DefaultTTL = 64

// Network is the simulated data plane: one flow table per switch over a
// fixed topology.
type Network struct {
	topology *topo.Topology
	layout   *header.Layout
	tables   map[topo.SwitchID]*flowtable.Table
	linkLoss float64
	// lossSpread makes per-link loss heterogeneous: at the start of
	// every Run each link draws a multiplier exp(N(0, spread²)) applied
	// to the base loss (clamped to maxLinkLoss), modelling transient
	// congestion hotspots. Zero keeps loss uniform.
	lossSpread float64
	// intervalLoss holds the current Run's per-link effective loss,
	// keyed by the lower-ID side of the link.
	intervalLoss map[linkKey]float64
	ttl          int
	// Per-port packet counters, indexed by local port number. Tx counts
	// packets handed to a port before wire loss; Rx counts packets that
	// survived the wire. These model the OpenFlow port statistics that
	// FlowMon-style baselines consume.
	portRx map[topo.SwitchID][]uint64
	portTx map[topo.SwitchID][]uint64
	// missHandler, when set, is invoked on a table miss before the
	// packets are declared lost — the packet-in path of reactive rule
	// installation (§II-A). The lookup is retried once afterwards.
	missHandler MissHandler
}

// MissHandler reacts to a table miss at a switch, typically by
// installing rules (the controller's packet-in handler).
type MissHandler func(sw topo.SwitchID, pkt header.Packet) error

// SetMissHandler installs the reactive packet-in handler (nil disables
// reactive mode).
func (n *Network) SetMissHandler(h MissHandler) { n.missHandler = h }

// PortCounters is a snapshot of one switch's per-port packet counters.
type PortCounters struct {
	Rx, Tx []uint64
}

// RxTotal sums received packets over all ports.
func (p PortCounters) RxTotal() uint64 {
	var t uint64
	for _, v := range p.Rx {
		t += v
	}
	return t
}

// TxTotal sums transmitted packets over all ports.
func (p PortCounters) TxTotal() uint64 {
	var t uint64
	for _, v := range p.Tx {
		t += v
	}
	return t
}

// NewNetwork creates a data plane with empty flow tables for every
// switch in the topology.
func NewNetwork(t *topo.Topology, layout *header.Layout) *Network {
	n := &Network{
		topology: t,
		layout:   layout,
		tables:   make(map[topo.SwitchID]*flowtable.Table, t.NumSwitches()),
		ttl:      DefaultTTL,
	}
	n.portRx = make(map[topo.SwitchID][]uint64, t.NumSwitches())
	n.portTx = make(map[topo.SwitchID][]uint64, t.NumSwitches())
	for _, s := range t.Switches() {
		n.tables[s.ID] = flowtable.NewTable(s.ID)
		n.portRx[s.ID] = make([]uint64, s.NumPorts())
		n.portTx[s.ID] = make([]uint64, s.NumPorts())
	}
	return n
}

// PortStats returns a snapshot of every switch's per-port counters.
func (n *Network) PortStats() map[topo.SwitchID]PortCounters {
	out := make(map[topo.SwitchID]PortCounters, len(n.portRx))
	for sw, rx := range n.portRx {
		pc := PortCounters{Rx: make([]uint64, len(rx)), Tx: make([]uint64, len(rx))}
		copy(pc.Rx, rx)
		copy(pc.Tx, n.portTx[sw])
		out[sw] = pc
	}
	return out
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topo.Topology { return n.topology }

// Layout returns the header layout used by the network.
func (n *Network) Layout() *header.Layout { return n.layout }

// Table returns the flow table of the given switch.
func (n *Network) Table(sw topo.SwitchID) (*flowtable.Table, error) {
	t, ok := n.tables[sw]
	if !ok {
		return nil, fmt.Errorf("dataplane: no table for switch %d", sw)
	}
	return t, nil
}

// SetLinkLoss sets the base per-link packet loss probability in
// [0, 1).
func (n *Network) SetLinkLoss(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("dataplane: loss probability %v outside [0,1)", p)
	}
	n.linkLoss = p
	return nil
}

// LinkLoss reports the configured base per-link loss probability.
func (n *Network) LinkLoss() float64 { return n.linkLoss }

// maxLinkLoss caps a hotspot link's effective loss.
const maxLinkLoss = 0.9

// linkKey identifies a link by its switch-side attachment; links are
// keyed from both endpoints so either direction resolves the same
// draw.
type linkKey struct {
	sw   topo.SwitchID
	port int
}

// SetLossSpread sets the log-normal sigma of per-link loss
// heterogeneity (0 = uniform loss on every link).
func (n *Network) SetLossSpread(spread float64) error {
	if spread < 0 {
		return fmt.Errorf("dataplane: loss spread %v negative", spread)
	}
	n.lossSpread = spread
	return nil
}

// drawIntervalLoss samples this interval's per-link effective loss.
func (n *Network) drawIntervalLoss(rng *rand.Rand) {
	if n.lossSpread == 0 || n.linkLoss == 0 {
		n.intervalLoss = nil
		return
	}
	n.intervalLoss = make(map[linkKey]float64)
	for _, s := range n.topology.Switches() {
		for port := 0; port < s.NumPorts(); port++ {
			key := linkKey{sw: s.ID, port: port}
			if _, done := n.intervalLoss[key]; done {
				continue
			}
			loss := n.linkLoss * math.Exp(rng.NormFloat64()*n.lossSpread)
			if loss > maxLinkLoss {
				loss = maxLinkLoss
			}
			n.intervalLoss[key] = loss
			// Register the same draw under the peer's key so both
			// directions agree.
			peer, err := n.topology.PeerAt(s.ID, port)
			if err == nil && peer.Kind == topo.PeerSwitch {
				n.intervalLoss[linkKey{sw: peer.Switch, port: peer.Port}] = loss
			}
		}
	}
}

// lossAt reports the effective loss of the link at (sw, port) for the
// current interval.
func (n *Network) lossAt(sw topo.SwitchID, port int) float64 {
	if n.intervalLoss == nil {
		return n.linkLoss
	}
	if loss, ok := n.intervalLoss[linkKey{sw: sw, port: port}]; ok {
		return loss
	}
	return n.linkLoss
}

// SetTTL overrides the forwarding hop limit.
func (n *Network) SetTTL(ttl int) error {
	if ttl < 1 {
		return fmt.Errorf("dataplane: ttl %d < 1", ttl)
	}
	n.ttl = ttl
	return nil
}

// FlowKey identifies a traffic flow by source and destination host.
type FlowKey struct {
	Src, Dst topo.HostID
}

// TrafficMatrix maps flows to offered volume (packets per interval).
type TrafficMatrix map[FlowKey]uint64

// UniformTraffic offers the same volume on every ordered host pair,
// mirroring the paper's iperf setup (one flow of equal rate per pair).
func UniformTraffic(t *topo.Topology, packetsPerFlow uint64) TrafficMatrix {
	tm := make(TrafficMatrix, t.NumHosts()*(t.NumHosts()-1))
	for _, src := range t.Hosts() {
		for _, dst := range t.Hosts() {
			if src.ID == dst.ID {
				continue
			}
			tm[FlowKey{Src: src.ID, Dst: dst.ID}] = packetsPerFlow
		}
	}
	return tm
}

// FlowOutcome summarizes one flow's fate during an interval.
type FlowOutcome struct {
	Offered   uint64 // packets sent by the source host
	Delivered uint64 // packets that reached the destination host
	Lost      uint64 // packets dropped by link loss
	Blackhole uint64 // packets dropped by rules, misses or TTL expiry
}

// IntervalSummary aggregates one simulated collection interval.
type IntervalSummary struct {
	Flows map[FlowKey]FlowOutcome
}

// Totals sums the outcome over all flows.
func (s IntervalSummary) Totals() FlowOutcome {
	var t FlowOutcome
	for _, o := range s.Flows {
		t.Offered += o.Offered
		t.Delivered += o.Delivered
		t.Lost += o.Lost
		t.Blackhole += o.Blackhole
	}
	return t
}

// Run simulates one collection interval: every flow's volume is pushed
// along the data plane, incrementing rule counters and thinning across
// lossy links. Counters accumulate; call ResetCounters between
// intervals for windowed collection.
func (n *Network) Run(rng *rand.Rand, tm TrafficMatrix) (IntervalSummary, error) {
	n.drawIntervalLoss(rng)
	sum := IntervalSummary{Flows: make(map[FlowKey]FlowOutcome, len(tm))}
	// Iterate deterministically: sort keys.
	keys := make([]FlowKey, 0, len(tm))
	for k := range tm {
		keys = append(keys, k)
	}
	sortFlowKeys(keys)
	for _, k := range keys {
		out, err := n.injectFlow(rng, k, tm[k])
		if err != nil {
			return IntervalSummary{}, err
		}
		sum.Flows[k] = out
	}
	return sum, nil
}

func sortFlowKeys(keys []FlowKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func less(a, b FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// injectFlow walks volume packets of flow k through the data plane.
func (n *Network) injectFlow(rng *rand.Rand, k FlowKey, volume uint64) (FlowOutcome, error) {
	out := FlowOutcome{Offered: volume}
	if volume == 0 {
		return out, nil
	}
	src, err := n.topology.Host(k.Src)
	if err != nil {
		return out, err
	}
	dst, err := n.topology.Host(k.Dst)
	if err != nil {
		return out, err
	}
	pkt, err := n.packetFor(src, dst)
	if err != nil {
		return out, err
	}
	return n.walkPacket(rng, src, k.Dst, pkt, volume)
}

// InjectPacket walks volume copies of an arbitrary packet from the
// given source host through the data plane — the active-probe
// injection primitive. The walk is identical to normal traffic
// injection: rule counters increment before the (possibly tampered)
// action runs, per-link loss thins the copies, and delivery is judged
// against want (the host the packet is expected to reach; -1 expects
// no delivery, e.g. probing an intent drop rule). Counters accumulate
// exactly as under Run, so callers that need the probe's own per-rule
// deltas should snapshot CollectCounters around the call.
func (n *Network) InjectPacket(rng *rand.Rand, src topo.HostID, want topo.HostID, pkt header.Packet, volume uint64) (FlowOutcome, error) {
	out := FlowOutcome{Offered: volume}
	if volume == 0 {
		return out, nil
	}
	h, err := n.topology.Host(src)
	if err != nil {
		return out, err
	}
	return n.walkPacket(rng, h, want, pkt, volume)
}

// walkPacket pushes volume copies of pkt from host src toward dst,
// following flow-table actions hop by hop. Shared by injectFlow
// (synthesized pair packets) and InjectPacket (caller-built probes).
func (n *Network) walkPacket(rng *rand.Rand, src *topo.Host, dst topo.HostID, pkt header.Packet, volume uint64) (FlowOutcome, error) {
	out := FlowOutcome{Offered: volume}
	// Access link host -> first switch.
	alive := Binomial(rng, volume, 1-n.lossAt(src.Attach, src.Port))
	out.Lost += volume - alive
	cur := src.Attach
	n.portRx[cur][src.Port] += alive
	for hop := 0; hop < n.ttl && alive > 0; hop++ {
		tbl := n.tables[cur]
		rule, act, ok := tbl.Lookup(pkt)
		if !ok && n.missHandler != nil {
			// Packet-in: give the controller a chance to install rules,
			// then retry once.
			if err := n.missHandler(cur, pkt); err != nil {
				return out, fmt.Errorf("dataplane: miss handler at switch %d: %w", cur, err)
			}
			rule, act, ok = tbl.Lookup(pkt)
		}
		if !ok {
			out.Blackhole += alive
			return out, nil
		}
		// OpenFlow counters count matches, before the (possibly
		// tampered) action runs.
		tbl.Count(rule.ID, alive)
		switch act.Type {
		case flowtable.ActionDrop:
			out.Blackhole += alive
			return out, nil
		case flowtable.ActionDeliver:
			peer, err := n.topology.PeerAt(cur, act.Port)
			if err != nil || peer.Kind != topo.PeerHost {
				out.Blackhole += alive
				return out, nil
			}
			n.portTx[cur][act.Port] += alive
			survived := Binomial(rng, alive, 1-n.lossAt(cur, act.Port))
			out.Lost += alive - survived
			if peer.Host == dst {
				out.Delivered += survived
			} else {
				// Delivered to the wrong host: anomalous blackhole from
				// the intended flow's perspective.
				out.Blackhole += survived
			}
			return out, nil
		case flowtable.ActionOutput:
			peer, err := n.topology.PeerAt(cur, act.Port)
			if err != nil {
				out.Blackhole += alive
				return out, nil
			}
			switch peer.Kind {
			case topo.PeerSwitch:
				n.portTx[cur][act.Port] += alive
				survived := Binomial(rng, alive, 1-n.lossAt(cur, act.Port))
				out.Lost += alive - survived
				alive = survived
				cur = peer.Switch
				n.portRx[cur][peer.Port] += alive
			case topo.PeerHost:
				n.portTx[cur][act.Port] += alive
				survived := Binomial(rng, alive, 1-n.lossAt(cur, act.Port))
				out.Lost += alive - survived
				if peer.Host == dst {
					out.Delivered += survived
				} else {
					out.Blackhole += survived
				}
				return out, nil
			default:
				out.Blackhole += alive
				return out, nil
			}
		default:
			out.Blackhole += alive
			return out, nil
		}
	}
	// TTL expiry (forwarding loop).
	out.Blackhole += alive
	return out, nil
}

func (n *Network) packetFor(src, dst *topo.Host) (header.Packet, error) {
	p := header.NewPacket(n.layout.Width())
	p, err := n.layout.PacketWithField(p, header.FieldSrcIP, src.IP)
	if err != nil {
		return header.Packet{}, err
	}
	return n.layout.PacketWithField(p, header.FieldDstIP, dst.IP)
}

// CollectCounters merges all switches' rule counters into one map keyed
// by global rule ID. It models an ideal (lossless, synchronized)
// collection; the collector package layers polling noise on top.
func (n *Network) CollectCounters() map[int]uint64 {
	out := make(map[int]uint64)
	for _, tbl := range n.tables {
		for id, v := range tbl.Counters() {
			out[id] = v
		}
	}
	return out
}

// ResetCounters zeroes every switch's rule and port counters (start of
// a window).
func (n *Network) ResetCounters() {
	for _, tbl := range n.tables {
		tbl.ResetCounters()
	}
	for sw := range n.portRx {
		clearCounts(n.portRx[sw])
		clearCounts(n.portTx[sw])
	}
}

func clearCounts(c []uint64) {
	for i := range c {
		c[i] = 0
	}
}

// RuleCount reports the number of rules installed across the network.
func (n *Network) RuleCount() int {
	total := 0
	for _, tbl := range n.tables {
		total += tbl.Len()
	}
	return total
}
