package dataplane

import (
	"fmt"
	"math/rand"
	"sort"

	"foces/internal/flowtable"
	"foces/internal/topo"
)

// AttackKind enumerates the forwarding-anomaly injections of the threat
// model (§II-B).
type AttackKind int

// Attack kinds.
const (
	// AttackPortSwap rewrites a rule's output port to a different
	// switch-facing port (path deviation / switch bypass / detour,
	// depending on where the new port leads).
	AttackPortSwap AttackKind = iota + 1
	// AttackDrop silently discards matched packets (early drop).
	AttackDrop
)

func (k AttackKind) String() string {
	switch k {
	case AttackPortSwap:
		return "port-swap"
	case AttackDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// Attack is one rule-level compromise that can be applied to and
// reverted from a network.
type Attack struct {
	Switch    topo.SwitchID
	RuleID    int
	Kind      AttackKind
	NewAction flowtable.Action // the tampered action installed on apply
}

// Apply installs the attack as a flow-table override on the compromised
// switch.
func (a Attack) Apply(n *Network) error {
	tbl, err := n.Table(a.Switch)
	if err != nil {
		return fmt.Errorf("dataplane: apply attack: %w", err)
	}
	return tbl.SetOverride(a.RuleID, flowtable.Override{Action: a.NewAction})
}

// Revert repairs the compromised rule.
func (a Attack) Revert(n *Network) error {
	tbl, err := n.Table(a.Switch)
	if err != nil {
		return fmt.Errorf("dataplane: revert attack: %w", err)
	}
	tbl.ClearOverride(a.RuleID)
	return nil
}

// candidate is an attackable rule.
type candidate struct {
	sw   topo.SwitchID
	rule flowtable.Rule
}

// attackCandidates lists rules eligible for the given attack kind, in
// deterministic (switch, rule) order. Only rules whose installed action
// is Output qualify: the paper assumes last-hop delivery rules are on
// uncompromised switches.
func attackCandidates(n *Network, kind AttackKind) []candidate {
	var out []candidate
	for _, s := range n.Topology().Switches() {
		tbl := n.tables[s.ID]
		rules := tbl.Dump()
		sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
		for _, r := range rules {
			if r.Action.Type != flowtable.ActionOutput {
				continue
			}
			if tbl.Overridden(r.ID) {
				continue
			}
			if kind == AttackPortSwap && len(alternativePorts(n, s.ID, r.Action.Port)) == 0 {
				continue
			}
			out = append(out, candidate{sw: s.ID, rule: r})
		}
	}
	return out
}

// alternativePorts lists switch-facing ports of sw other than exclude.
func alternativePorts(n *Network, sw topo.SwitchID, exclude int) []int {
	s, err := n.Topology().Switch(sw)
	if err != nil {
		return nil
	}
	var out []int
	for port := 0; port < s.NumPorts(); port++ {
		if port == exclude {
			continue
		}
		peer, err := n.Topology().PeerAt(sw, port)
		if err == nil && peer.Kind == topo.PeerSwitch {
			out = append(out, port)
		}
	}
	return out
}

// RandomAttack selects a uniformly random eligible rule and constructs
// the attack without applying it. It mirrors the paper's evaluation
// methodology: "we randomly choose switches from the network, and
// randomly modify flow rules in the switches' flow tables".
func RandomAttack(rng *rand.Rand, n *Network, kind AttackKind) (Attack, error) {
	if kind != AttackPortSwap && kind != AttackDrop {
		return Attack{}, fmt.Errorf("dataplane: invalid attack kind %d", kind)
	}
	cands := attackCandidates(n, kind)
	if len(cands) == 0 {
		return Attack{}, fmt.Errorf("dataplane: no eligible rules for %v attack", kind)
	}
	pick := cands[rng.Intn(len(cands))]
	a := Attack{Switch: pick.sw, RuleID: pick.rule.ID, Kind: kind}
	switch kind {
	case AttackDrop:
		a.NewAction = flowtable.Action{Type: flowtable.ActionDrop}
	case AttackPortSwap:
		alts := alternativePorts(n, pick.sw, pick.rule.Action.Port)
		a.NewAction = flowtable.Action{Type: flowtable.ActionOutput, Port: alts[rng.Intn(len(alts))]}
	}
	return a, nil
}

// RandomAttacks draws count distinct attacks (distinct rules) of the
// given kind.
func RandomAttacks(rng *rand.Rand, n *Network, kind AttackKind, count int) ([]Attack, error) {
	if count < 1 {
		return nil, fmt.Errorf("dataplane: attack count %d < 1", count)
	}
	cands := attackCandidates(n, kind)
	if len(cands) < count {
		return nil, fmt.Errorf("dataplane: only %d eligible rules for %d attacks", len(cands), count)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	out := make([]Attack, 0, count)
	for _, pick := range cands[:count] {
		a := Attack{Switch: pick.sw, RuleID: pick.rule.ID, Kind: kind}
		switch kind {
		case AttackDrop:
			a.NewAction = flowtable.Action{Type: flowtable.ActionDrop}
		case AttackPortSwap:
			alts := alternativePorts(n, pick.sw, pick.rule.Action.Port)
			a.NewAction = flowtable.Action{Type: flowtable.ActionOutput, Port: alts[rng.Intn(len(alts))]}
		}
		out = append(out, a)
	}
	return out, nil
}
