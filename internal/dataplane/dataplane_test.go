package dataplane

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

// buildLinear installs pair-exact rules by hand on a 3-switch chain with
// one host per switch (avoiding an import cycle with the controller).
func buildLinear(t *testing.T) (*topo.Topology, *Network) {
	t.Helper()
	top, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(top, layout)
	id := 0
	hosts := top.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src.ID == dst.ID {
				continue
			}
			path, err := top.HostPath(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			m, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, src.IP)
			if err != nil {
				t.Fatal(err)
			}
			m, err = layout.MatchExact(m, header.FieldDstIP, dst.IP)
			if err != nil {
				t.Fatal(err)
			}
			for i, sw := range path {
				var act flowtable.Action
				if i == len(path)-1 {
					act = flowtable.Action{Type: flowtable.ActionDeliver, Port: dst.Port}
				} else {
					port, err := top.PortToward(sw, path[i+1])
					if err != nil {
						t.Fatal(err)
					}
					act = flowtable.Action{Type: flowtable.ActionOutput, Port: port}
				}
				tbl, err := net.Table(sw)
				if err != nil {
					t.Fatal(err)
				}
				if err := tbl.Install(flowtable.Rule{ID: id, Priority: 1, Match: m, Action: act}); err != nil {
					t.Fatal(err)
				}
				id++
			}
		}
	}
	return top, net
}

func TestBinomialDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Binomial(rng, 100, 0) != 0 || Binomial(rng, 0, 0.5) != 0 {
		t.Fatal("p=0 or n=0 must give 0")
	}
	if Binomial(rng, 100, 1) != 100 {
		t.Fatal("p=1 must give n")
	}
	if Binomial(rng, 100, 1.5) != 100 || Binomial(rng, 100, -0.5) != 0 {
		t.Fatal("out-of-range p must clamp")
	}
}

func TestBinomialStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []uint64{50, 10000} { // exact and approx paths
		const p = 0.7
		var sum float64
		const trials = 2000
		for i := 0; i < trials; i++ {
			v := Binomial(rng, n, p)
			if v > n {
				t.Fatalf("sample %d exceeds n=%d", v, n)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(n) * p
		std := math.Sqrt(float64(n) * p * (1 - p))
		if math.Abs(mean-want) > 5*std/math.Sqrt(trials) {
			t.Fatalf("n=%d: mean %v too far from %v", n, mean, want)
		}
	}
}

func TestBinomialDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if Binomial(a, 1000, 0.5) != Binomial(b, 1000, 0.5) {
			t.Fatal("same seed must give same samples")
		}
	}
}

func TestLosslessDelivery(t *testing.T) {
	top, net := buildLinear(t)
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, UniformTraffic(top, 100))
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Offered != 600 || tot.Delivered != 600 || tot.Lost != 0 || tot.Blackhole != 0 {
		t.Fatalf("totals = %+v", tot)
	}
	// Flow conservation: every rule counter equals its flow volume.
	for id, v := range net.CollectCounters() {
		if v != 100 {
			t.Fatalf("rule %d counter = %d", id, v)
		}
	}
}

func TestLossyDeliveryThins(t *testing.T) {
	top, net := buildLinear(t)
	if err := net.SetLinkLoss(0.2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sum, err := net.Run(rng, UniformTraffic(top, 2000))
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered >= tot.Offered || tot.Lost == 0 {
		t.Fatalf("loss had no effect: %+v", tot)
	}
	if tot.Delivered+tot.Lost+tot.Blackhole != tot.Offered {
		t.Fatalf("packet accounting broken: %+v", tot)
	}
	// h0 -> h2 crosses 4 links (access, 2 transit, access):
	// expect ≈ 2000·0.8⁴ = 819 delivered.
	out := sum.Flows[FlowKey{Src: 0, Dst: 2}]
	want := 2000 * math.Pow(0.8, 4)
	if math.Abs(float64(out.Delivered)-want) > 150 {
		t.Fatalf("h0->h2 delivered %d, want ≈%v", out.Delivered, want)
	}
}

func TestSetLinkLossValidation(t *testing.T) {
	_, net := buildLinear(t)
	if err := net.SetLinkLoss(1); err == nil {
		t.Fatal("loss 1 must error")
	}
	if err := net.SetLinkLoss(-0.1); err == nil {
		t.Fatal("negative loss must error")
	}
	if err := net.SetLinkLoss(0.5); err != nil || net.LinkLoss() != 0.5 {
		t.Fatal("valid loss must stick")
	}
	if err := net.SetTTL(0); err == nil {
		t.Fatal("ttl 0 must error")
	}
}

func TestTableMissBlackholes(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(top, layout) // no rules at all
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, UniformTraffic(top, 50))
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Blackhole != tot.Offered || tot.Delivered != 0 {
		t.Fatalf("misses must blackhole: %+v", tot)
	}
}

func TestDropAttack(t *testing.T) {
	top, net := buildLinear(t)
	rng := rand.New(rand.NewSource(1))
	// Drop the first Output rule on switch 1 (the middle switch).
	tbl, err := net.Table(1)
	if err != nil {
		t.Fatal(err)
	}
	var victim flowtable.Rule
	found := false
	for _, r := range tbl.Dump() {
		if r.Action.Type == flowtable.ActionOutput {
			victim, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no output rule on middle switch")
	}
	atk := Attack{Switch: 1, RuleID: victim.ID, Kind: AttackDrop, NewAction: flowtable.Action{Type: flowtable.ActionDrop}}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	sum, err := net.Run(rng, UniformTraffic(top, 100))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Totals().Blackhole != 100 {
		t.Fatalf("exactly one flow must blackhole, got %+v", sum.Totals())
	}
	// The compromised rule's own counter still counts (OpenFlow match
	// semantics): the victim flow matched it before being dropped.
	if got := net.CollectCounters()[victim.ID]; got != 100 {
		t.Fatalf("compromised rule counter = %d, want 100", got)
	}
	if err := atk.Revert(net); err != nil {
		t.Fatal(err)
	}
	net.ResetCounters()
	sum, err = net.Run(rng, UniformTraffic(top, 100))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Totals().Blackhole != 0 {
		t.Fatal("revert must restore forwarding")
	}
}

func TestPortSwapAttackDivertsPackets(t *testing.T) {
	top, net := buildLinear(t)
	rng := rand.New(rand.NewSource(5))
	atk, err := RandomAttack(rng, net, AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	sum, err := net.Run(rng, UniformTraffic(top, 100))
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered == tot.Offered {
		t.Fatalf("port swap must disturb at least one flow: %+v", tot)
	}
	if tot.Delivered+tot.Lost+tot.Blackhole != tot.Offered {
		t.Fatalf("packet accounting broken: %+v", tot)
	}
}

func TestRandomAttackDeterministic(t *testing.T) {
	_, net := buildLinear(t)
	a1, err := RandomAttack(rand.New(rand.NewSource(9)), net, AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RandomAttack(rand.New(rand.NewSource(9)), net, AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("same seed must give same attack: %+v vs %+v", a1, a2)
	}
	if _, err := RandomAttack(rand.New(rand.NewSource(1)), net, AttackKind(0)); err == nil {
		t.Fatal("invalid kind must error")
	}
}

func TestRandomAttacksDistinct(t *testing.T) {
	_, net := buildLinear(t)
	rng := rand.New(rand.NewSource(3))
	attacks, err := RandomAttacks(rng, net, AttackDrop, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range attacks {
		if seen[a.RuleID] {
			t.Fatalf("duplicate rule attacked: %d", a.RuleID)
		}
		seen[a.RuleID] = true
	}
	if _, err := RandomAttacks(rng, net, AttackDrop, 10000); err == nil {
		t.Fatal("too many attacks must error")
	}
	if _, err := RandomAttacks(rng, net, AttackDrop, 0); err == nil {
		t.Fatal("zero attacks must error")
	}
}

func TestTTLTerminatesLoops(t *testing.T) {
	// Two switches forwarding the same match at each other forever.
	b := topo.NewBuilder("loop")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	b.Connect(s0, s1)
	h0 := b.AddHost("h0", header.IPv4(10, 0, 0, 1), s0)
	b.AddHost("h1", header.IPv4(10, 0, 0, 2), s1)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = h0
	net := NewNetwork(top, layout)
	m := layout.Wildcard()
	p01, err := top.PortToward(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := top.PortToward(s1, s0)
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := net.Table(s0)
	t1, _ := net.Table(s1)
	if err := t0.Install(flowtable.Rule{ID: 0, Priority: 1, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p01}}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Install(flowtable.Rule{ID: 1, Priority: 1, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p10}}); err != nil {
		t.Fatal(err)
	}
	if err := net.SetTTL(8); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, TrafficMatrix{{Src: 0, Dst: 1}: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := sum.Flows[FlowKey{Src: 0, Dst: 1}]
	if out.Blackhole != 10 || out.Delivered != 0 {
		t.Fatalf("loop must blackhole via TTL: %+v", out)
	}
	// Counters still accumulated along the loop (TTL=8 hops).
	c := net.CollectCounters()
	if c[0] != 40 || c[1] != 40 {
		t.Fatalf("loop counters = %v, want 40/40", c)
	}
}

func TestZeroVolumeFlow(t *testing.T) {
	top, net := buildLinear(t)
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, TrafficMatrix{{Src: 0, Dst: 1}: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Totals().Offered != 0 {
		t.Fatal("zero volume must be a no-op")
	}
	_ = top
}

func TestRunUnknownHost(t *testing.T) {
	_, net := buildLinear(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, TrafficMatrix{{Src: 99, Dst: 1}: 5}); err == nil {
		t.Fatal("unknown host must error")
	}
}

func TestTableUnknownSwitch(t *testing.T) {
	_, net := buildLinear(t)
	if _, err := net.Table(topo.SwitchID(99)); err == nil {
		t.Fatal("unknown switch must error")
	}
}

func TestAttackKindString(t *testing.T) {
	if AttackPortSwap.String() != "port-swap" || AttackDrop.String() != "drop" || AttackKind(0).String() != "unknown" {
		t.Fatal("AttackKind strings wrong")
	}
}

func TestRuleCountAndReset(t *testing.T) {
	_, net := buildLinear(t)
	if net.RuleCount() != 14 {
		t.Fatalf("RuleCount = %d, want 14", net.RuleCount())
	}
	rng := rand.New(rand.NewSource(1))
	top := net.Topology()
	if _, err := net.Run(rng, UniformTraffic(top, 5)); err != nil {
		t.Fatal(err)
	}
	net.ResetCounters()
	for id, v := range net.CollectCounters() {
		if v != 0 {
			t.Fatalf("rule %d counter %d after reset", id, v)
		}
	}
}

func TestLossSpreadHeterogeneous(t *testing.T) {
	top, net := buildLinear(t)
	if err := net.SetLinkLoss(0.2); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLossSpread(-1); err == nil {
		t.Fatal("negative spread must error")
	}
	if err := net.SetLossSpread(0.8); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// With strong spread, different intervals draw different effective
	// loss on the same link: delivered counts vary far more than
	// binomial noise alone would allow.
	var delivered []float64
	for i := 0; i < 30; i++ {
		net.ResetCounters()
		sum, err := net.Run(rng, TrafficMatrix{{Src: 0, Dst: 2}: 5000})
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, float64(sum.Flows[FlowKey{Src: 0, Dst: 2}].Delivered))
	}
	mean, sd := meanStd(delivered)
	// Uniform 20% loss over 4 links: binomial sd ≈ sqrt(5000·p(1-p)·4) ≈ 90.
	// Hotspot multipliers push the spread far beyond that.
	if sd < 3*90 {
		t.Fatalf("loss spread had no visible effect: mean=%v sd=%v", mean, sd)
	}
	_ = top
}

func meanStd(xs []float64) (float64, float64) {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

func TestMissHandlerRetries(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(top, layout)
	installs := 0
	net.SetMissHandler(func(sw topo.SwitchID, pkt header.Packet) error {
		installs++
		tbl, err := net.Table(sw)
		if err != nil {
			return err
		}
		// Install a wildcard deliver/forward rule on the missing switch.
		hosts := top.Hosts()
		var act flowtable.Action
		if sw == hosts[1].Attach {
			act = flowtable.Action{Type: flowtable.ActionDeliver, Port: hosts[1].Port}
		} else {
			port, err := top.PortToward(sw, hosts[1].Attach)
			if err != nil {
				return err
			}
			act = flowtable.Action{Type: flowtable.ActionOutput, Port: port}
		}
		return tbl.Install(flowtable.Rule{ID: installs - 1, Priority: 1, Match: layout.Wildcard(), Action: act})
	})
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, TrafficMatrix{{Src: 0, Dst: 1}: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := sum.Flows[FlowKey{Src: 0, Dst: 1}]
	if out.Delivered != 10 || installs != 2 {
		t.Fatalf("reactive delivery failed: %+v installs=%d", out, installs)
	}
}

func TestMissHandlerErrorPropagates(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(top, layout)
	net.SetMissHandler(func(topo.SwitchID, header.Packet) error {
		return errOops
	})
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, TrafficMatrix{{Src: 0, Dst: 1}: 10}); err == nil {
		t.Fatal("miss handler error must propagate")
	}
}

var errOops = errors.New("oops")
