package analysis

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func buildFCM(t *testing.T, name string, mode controller.PolicyMode) *fcm.FCM {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCoverageFatTreePairExact(t *testing.T) {
	f := buildFCM(t, "fattree4", controller.PairExact)
	rep, err := Coverage(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 {
		t.Fatal("no deviations enumerated")
	}
	if rep.Detectable+len(rep.Undetectable) != rep.Total {
		t.Fatalf("accounting broken: %d + %d != %d", rep.Detectable, len(rep.Undetectable), rep.Total)
	}
	frac := rep.DetectableFraction()
	if frac <= 0.5 {
		t.Fatalf("detectable fraction = %v; pair-exact deviations should mostly be detectable", frac)
	}
	t.Logf("fattree4 pair-exact coverage: %d deviations, %.1f%% detectable, %d loop-inconclusive",
		rep.Total, frac*100, rep.LoopInconclusive)
}

func TestCoverageUndetectableDeviationsReallyEvade(t *testing.T) {
	// Ground-truth check. Coverage classifies deviations per flow
	// (Definition 1: FA(h, h') concerns one flow). A real port swap on
	// an aggregate rule deviates EVERY flow matching it; the combined
	// attack is masked exactly when every member flow's deviation is
	// masked (a sum of in-span columns stays in span). So install only
	// (rule, port) swaps where ALL member flows are undetectable, and
	// verify the detector stays quiet on lossless traffic.
	f := buildFCM(t, "fattree4", controller.DestAggregate)
	rep, err := Coverage(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Undetectable) == 0 {
		t.Skip("no undetectable deviations in this configuration")
	}
	type key struct{ rule, port int }
	undet := map[key]int{}
	for _, dev := range rep.Undetectable {
		undet[key{dev.RuleID, dev.NewPort}]++
	}
	top := f.Topology()
	checked := 0
	for k, n := range undet {
		if checked == 3 {
			break
		}
		if n != len(flowsThrough(f, k.rule)) {
			continue // some member flow's deviation is detectable
		}
		_, net, err := controller.Bootstrap(top, layout, controller.DestAggregate)
		if err != nil {
			t.Fatal(err)
		}
		atk := dataplane.Attack{
			Switch: f.Rules[k.rule].Switch,
			RuleID: k.rule,
			Kind:   dataplane.AttackPortSwap,
		}
		atk.NewAction = f.Rules[k.rule].Action
		atk.NewAction.Port = k.port
		if err := atk.Apply(net); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k.rule)))
		if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
			t.Fatal(err)
		}
		y := f.CounterVector(net.CollectCounters())
		res, err := core.Detect(f.H, y, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Anomalous {
			t.Fatalf("rule %d -> port %d predicted fully undetectable but AI=%v", k.rule, k.port, res.Index)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no fully-undetectable (rule, port) swaps to verify")
	}
}

func TestCoverageDetectableDeviationsAreCaught(t *testing.T) {
	// Converse ground truth: sample detectable deviations, install
	// them, and verify the detector fires (lossless, so the signal is
	// pure).
	f := buildFCM(t, "fattree4", controller.PairExact)
	top := f.Topology()
	checked := 0
	// Pick the first few output rules with an alternate port; in
	// pair-exact mode these deviations are detectable (verified by
	// TestCoverageFatTreePairExact's high detectable fraction).
	for _, r := range f.Rules {
		if checked == 3 {
			break
		}
		if r.Action.Type != 1 { // ActionOutput
			continue
		}
		alts, err := alternateSwitchPorts(top, r.Switch, r.Action.Port)
		if err != nil || len(alts) == 0 {
			continue
		}
		_, net, err := controller.Bootstrap(top, layout, controller.PairExact)
		if err != nil {
			t.Fatal(err)
		}
		atk := dataplane.Attack{
			Switch: r.Switch,
			RuleID: r.ID,
			Kind:   dataplane.AttackPortSwap,
		}
		atk.NewAction = r.Action
		atk.NewAction.Port = alts[0]
		if err := atk.Apply(net); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(r.ID)))
		if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
			t.Fatal(err)
		}
		res, err := core.Detect(f.H, f.CounterVector(net.CollectCounters()), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Anomalous {
			t.Fatalf("rule %d -> port %d predicted detectable but AI=%v", r.ID, alts[0], res.Index)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no detectable deviations verified")
	}
}

func TestTracerOutcomes(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	tracer, err := fcm.NewTracer(top, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	pkt := header.NewPacket(layout.Width())
	pkt, err = layout.PacketWithField(pkt, header.FieldSrcIP, hosts[0].IP)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err = layout.PacketWithField(pkt, header.FieldDstIP, hosts[5].IP)
	if err != nil {
		t.Fatal(err)
	}
	hist, outcome, err := tracer.Trace(pkt, hosts[0].Attach)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != fcm.TraceDelivered || len(hist) == 0 {
		t.Fatalf("trace: %v %v", hist, outcome)
	}
	// A packet with an unknown destination misses everywhere.
	miss, err := layout.PacketWithField(pkt, header.FieldDstIP, header.IPv4(99, 9, 9, 9))
	if err != nil {
		t.Fatal(err)
	}
	_, outcome, err = tracer.Trace(miss, hosts[0].Attach)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != fcm.TraceMissed {
		t.Fatalf("unknown dst outcome = %v", outcome)
	}
	if _, _, err := tracer.Trace(pkt, topo.SwitchID(999)); err == nil {
		t.Fatal("unknown switch must error")
	}
	for _, o := range []fcm.TraceOutcome{fcm.TraceDelivered, fcm.TraceDropped, fcm.TraceMissed, fcm.TraceLooped, fcm.TraceOutcome(0)} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}
