package analysis

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/verify"
)

func TestHardenReducesBlindSpot(t *testing.T) {
	// FatTree(4) with destination-aggregate rules has masked deviations
	// (the Fig 3 pattern). Hardening with canary rules must shrink the
	// blind spot substantially without breaking forwarding.
	f := buildFCM(t, "fattree4", controller.DestAggregate)
	hardened, before, after, err := Harden(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Undetectable) == 0 {
		t.Skip("no blind spot to harden in this configuration")
	}
	if len(after.Undetectable) >= len(before.Undetectable) {
		t.Fatalf("hardening did not help: %d -> %d undetectable",
			len(before.Undetectable), len(after.Undetectable))
	}
	t.Logf("blind spot: %d -> %d undetectable deviations (%d -> %d rules)",
		len(before.Undetectable), len(after.Undetectable), f.NumRules(), hardened.NumRules())

	// The hardened intent must still verify: canaries may not change
	// reachability or delivery.
	rep, err := verify.Intent(hardened.Topology(), layout, hardened.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("hardened intent broken: %s", rep)
	}
}

func TestHardenedNetworkDetectsPreviouslyMaskedAttack(t *testing.T) {
	f := buildFCM(t, "fattree4", controller.DestAggregate)
	before, err := Coverage(f)
	if err != nil {
		t.Fatal(err)
	}
	// Find a (rule, port) swap where EVERY member flow is masked — the
	// attack the un-hardened detector provably misses.
	type key struct{ rule, port int }
	undet := map[key]int{}
	for _, dev := range before.Undetectable {
		undet[key{dev.RuleID, dev.NewPort}]++
	}
	var victim key
	found := false
	for k, n := range undet {
		if n == len(flowsThrough(f, k.rule)) {
			victim, found = k, true
			break
		}
	}
	if !found {
		t.Skip("no fully-masked swap to demonstrate")
	}

	hardened, _, _, err := Harden(f)
	if err != nil {
		t.Fatal(err)
	}
	top := f.Topology()

	// Fresh data plane with the HARDENED rules installed.
	net := dataplane.NewNetwork(top, layout)
	for _, r := range hardened.Rules {
		tbl, err := net.Table(r.Switch)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	atk := dataplane.Attack{
		Switch: hardened.Rules[victim.rule].Switch,
		RuleID: victim.rule,
		Kind:   dataplane.AttackPortSwap,
	}
	atk.NewAction = hardened.Rules[victim.rule].Action
	atk.NewAction.Port = victim.port
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(hardened.H, hardened.CounterVector(net.CollectCounters()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("hardened network still misses the swap rule %d -> port %d (AI=%v)",
			victim.rule, victim.port, res.Index)
	}
}

func TestProposeMitigationsDeterministic(t *testing.T) {
	f := buildFCM(t, "fattree4", controller.DestAggregate)
	rep, err := Coverage(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ProposeMitigations(f, rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProposeMitigations(f, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic mitigation count")
	}
	for i := range a {
		if a[i].Canary.ID != b[i].Canary.ID || a[i].Canary.Switch != b[i].Canary.Switch {
			t.Fatal("nondeterministic mitigation order")
		}
	}
	rules, err := ApplyMitigations(f, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != f.NumRules()+len(a) {
		t.Fatal("apply count wrong")
	}
	// IDs must be dense for regeneration.
	for i, r := range rules {
		if r.ID != i {
			t.Fatalf("rule %d has ID %d", i, r.ID)
		}
	}
}

func TestRegenerateRequiresGeneratedFCM(t *testing.T) {
	f := buildFCM(t, "fattree4", controller.PairExact)
	hist, err := fcm.FromHistories(f.Topology(), f.Rules, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.Regenerate(f.Rules); err == nil {
		t.Fatal("history-built FCM must refuse to regenerate")
	}
}
