package analysis

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/topo"
)

// canaryPriorityBoost lifts canary rules above the rules they shadow so
// the deviated packets hit the canary's counter first.
const canaryPriorityBoost = 1000

// Mitigation is one proposed canary rule: a higher-priority clone of an
// existing rule, restricted to a single flow's header space, placed on
// a switch the flow only visits when deviated. Its counter is expected
// to stay at zero; any volume on it is unexplainable by the benign
// equation system, turning a previously masked deviation into a Fig
// 2-style guaranteed detection.
type Mitigation struct {
	// Canary is the rule to install (ID assigned past the current dense
	// range).
	Canary flowtable.Rule
	// Breaks lists the undetectable deviations this canary addresses.
	Breaks []Deviation
}

// ProposeMitigations designs canary rules for the undetectable
// deviations of a coverage report. For each masked deviation it finds
// the first switch on the deviated suffix that the flow does not visit
// benignly, and emits one canary there matching the flow's header
// space with the same forwarding action as the rule the deviated
// packets would match — forwarding behaviour is unchanged; only a
// dedicated counter appears. Canaries are deduplicated by (flow,
// switch).
func ProposeMitigations(f *fcm.FCM, report Report) ([]Mitigation, error) {
	type key struct {
		flow int
		sw   topo.SwitchID
	}
	byKey := make(map[key]*Mitigation)
	nextID := f.NumRules()
	var order []key
	for _, dev := range report.Undetectable {
		fl := f.Flows[dev.FlowID]
		benign := make(map[int]bool, len(fl.RuleIDs))
		for _, rid := range fl.RuleIDs {
			benign[rid] = true
		}
		// Walk the deviated history and pick the first hop the flow
		// does not take benignly.
		var host *flowtable.Rule
		for _, rid := range dev.HPrime {
			if !benign[rid] {
				r := f.Rules[rid]
				host = &r
				break
			}
		}
		if host == nil {
			// The deviation re-uses only the flow's own rules (e.g. a
			// pure truncation); a canary cannot distinguish it.
			continue
		}
		k := key{flow: dev.FlowID, sw: host.Switch}
		if m, ok := byKey[k]; ok {
			m.Breaks = append(m.Breaks, dev)
			continue
		}
		canary := flowtable.Rule{
			ID:       nextID,
			Switch:   host.Switch,
			Priority: host.Priority + canaryPriorityBoost,
			Match:    fl.Space,
			Action:   host.Action,
		}
		nextID++
		byKey[k] = &Mitigation{Canary: canary, Breaks: []Deviation{dev}}
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].flow != order[j].flow {
			return order[i].flow < order[j].flow
		}
		return order[i].sw < order[j].sw
	})
	out := make([]Mitigation, 0, len(order))
	// Re-assign dense IDs in deterministic order.
	id := f.NumRules()
	for _, k := range order {
		m := byKey[k]
		m.Canary.ID = id
		id++
		out = append(out, *m)
	}
	return out, nil
}

// ApplyMitigations returns the rule set augmented with the canaries,
// ready for fcm.Generate.
func ApplyMitigations(f *fcm.FCM, mitigations []Mitigation) ([]flowtable.Rule, error) {
	rules := make([]flowtable.Rule, len(f.Rules), len(f.Rules)+len(mitigations))
	copy(rules, f.Rules)
	for i, m := range mitigations {
		if m.Canary.ID != len(rules) {
			return nil, fmt.Errorf("analysis: mitigation %d has non-dense ID %d (want %d)", i, m.Canary.ID, len(rules))
		}
		rules = append(rules, m.Canary)
	}
	return rules, nil
}

// Harden runs the full future-work loop: measure coverage, propose and
// apply canaries, regenerate the FCM, and re-measure. It returns the
// hardened FCM and the before/after reports.
func Harden(f *fcm.FCM) (*fcm.FCM, Report, Report, error) {
	before, err := Coverage(f)
	if err != nil {
		return nil, Report{}, Report{}, err
	}
	if len(before.Undetectable) == 0 {
		return f, before, before, nil
	}
	mitigations, err := ProposeMitigations(f, before)
	if err != nil {
		return nil, Report{}, Report{}, err
	}
	rules, err := ApplyMitigations(f, mitigations)
	if err != nil {
		return nil, Report{}, Report{}, err
	}
	hardened, err := f.Regenerate(rules)
	if err != nil {
		return nil, Report{}, Report{}, err
	}
	after, err := Coverage(hardened)
	if err != nil {
		return nil, Report{}, Report{}, err
	}
	return hardened, before, after, nil
}
