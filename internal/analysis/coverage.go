// Package analysis implements the paper's second future-work
// direction: given a network's installed rules, decide which forwarding
// anomalies FOCES could miss. It enumerates every single-rule
// port-swap deviation an adversary could install, computes the
// deviated flow's rule history h', and classifies it with the
// Theorem 1 (algebraic) and Theorem 2 (RBG loop) detectability checks.
// Operators can use the report to adjust rule placement so that all
// deviations become detectable.
package analysis

import (
	"fmt"
	"sort"

	"foces/internal/core"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/topo"
)

// Deviation is one hypothetical single-rule compromise: rule RuleID's
// output rewired to NewPort, deviating flow FlowID onto history HPrime.
type Deviation struct {
	RuleID  int
	NewPort int
	FlowID  int
	HPrime  []int
	Outcome fcm.TraceOutcome
	// Detectable is the algebraic (Theorem 1) verdict.
	Detectable bool
	// RBGLoopFree is the combinatorial (Theorem 2) verdict.
	RBGLoopFree bool
}

// Report aggregates detectability over all enumerated deviations.
type Report struct {
	// Total is the number of (rule, alternate port, flow) deviations
	// enumerated.
	Total int
	// Detectable counts deviations FOCES provably detects (Theorem 1).
	Detectable int
	// Undetectable lists the deviations FOCES would miss, ordered by
	// (rule, port, flow).
	Undetectable []Deviation
	// LoopInconclusive counts detectable deviations where the RBG check
	// alone was inconclusive (a loop exists but the algebra still
	// separates h' — the pivot-rule caveat).
	LoopInconclusive int
	// ForwardingLoops counts deviations that put packets into a
	// forwarding loop. These are classified detectable: every pass
	// around the loop re-increments the loop rules' counters, an
	// inflation no static flow-volume assignment can explain.
	ForwardingLoops int
}

// DetectableFraction reports the fraction of deviations FOCES detects.
func (r Report) DetectableFraction() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Detectable) / float64(r.Total)
}

// Coverage enumerates every single-rule port-swap deviation over the
// FCM's rule set and classifies its detectability. The rules must be
// the same set the FCM was generated from.
func Coverage(f *fcm.FCM) (Report, error) {
	t := f.Topology()
	tracer, err := fcm.NewTracer(t, f.Rules)
	if err != nil {
		return Report{}, err
	}
	var report Report
	for _, r := range f.Rules {
		if r.Action.Type != flowtable.ActionOutput {
			continue
		}
		alts, err := alternateSwitchPorts(t, r.Switch, r.Action.Port)
		if err != nil {
			return Report{}, err
		}
		flows := flowsThrough(f, r.ID)
		for _, port := range alts {
			for _, fl := range flows {
				hPrime, outcome, err := deviatedHistory(f, tracer, fl, r.ID, port)
				if err != nil {
					return Report{}, err
				}
				report.Total++
				dev := Deviation{
					RuleID:  r.ID,
					NewPort: port,
					FlowID:  fl.ID,
					HPrime:  hPrime,
					Outcome: outcome,
				}
				switch {
				case outcome == fcm.TraceLooped:
					// Looping packets re-increment counters every pass;
					// no static volume assignment explains that.
					dev.Detectable = true
					dev.RBGLoopFree = true
					report.ForwardingLoops++
				case len(hPrime) == 0:
					// The deviated flow matches no rules at all: its
					// column is zero and all its expected counters
					// vanish — always detectable when the flow carries
					// traffic.
					dev.Detectable = true
					dev.RBGLoopFree = true
				default:
					d, err := core.AnalyzeDetectability(f, hPrime)
					if err != nil {
						return Report{}, err
					}
					dev.Detectable = d.Algebraic
					dev.RBGLoopFree = d.RBGLoopFree
				}
				if dev.Detectable {
					report.Detectable++
					if !dev.RBGLoopFree {
						report.LoopInconclusive++
					}
				} else {
					report.Undetectable = append(report.Undetectable, dev)
				}
			}
		}
	}
	sort.Slice(report.Undetectable, func(i, j int) bool {
		a, b := report.Undetectable[i], report.Undetectable[j]
		if a.RuleID != b.RuleID {
			return a.RuleID < b.RuleID
		}
		if a.NewPort != b.NewPort {
			return a.NewPort < b.NewPort
		}
		return a.FlowID < b.FlowID
	})
	return report, nil
}

// deviatedHistory computes the rule history of flow fl when rule
// victimRule forwards out of newPort instead of its intended port: the
// prefix strictly before the victim, then a concrete-packet trace from
// the victim switch with the adversarial override applied, so detours
// that revisit the compromised rule follow the tampered action again
// (exactly as the data plane would).
func deviatedHistory(f *fcm.FCM, tracer *fcm.Tracer, fl *fcm.Flow, victimRule, newPort int) ([]int, fcm.TraceOutcome, error) {
	var prefix []int
	found := false
	for _, rid := range fl.RuleIDs {
		if rid == victimRule {
			found = true
			break
		}
		prefix = append(prefix, rid)
	}
	if !found {
		return nil, 0, fmt.Errorf("analysis: flow %d does not traverse rule %d", fl.ID, victimRule)
	}
	pkt := fl.Space.AnyPacket()
	overrides := map[int]flowtable.Action{
		victimRule: {Type: flowtable.ActionOutput, Port: newPort},
	}
	suffix, outcome, err := tracer.TraceOverride(pkt, f.Rules[victimRule].Switch, overrides)
	if err != nil {
		return nil, 0, err
	}
	history := append(prefix, suffix...)
	// A detour can revisit rules already on the prefix; dedupe while
	// keeping first occurrence order (columns are 0/1 sets).
	seen := make(map[int]bool, len(history))
	out := history[:0]
	for _, rid := range history {
		if !seen[rid] {
			seen[rid] = true
			out = append(out, rid)
		}
	}
	return out, outcome, nil
}

// flowsThrough lists the flows matching the given rule.
func flowsThrough(f *fcm.FCM, ruleID int) []*fcm.Flow {
	var out []*fcm.Flow
	for _, fl := range f.Flows {
		for _, rid := range fl.RuleIDs {
			if rid == ruleID {
				out = append(out, fl)
				break
			}
		}
	}
	return out
}

// alternateSwitchPorts lists switch-facing ports of sw other than
// exclude.
func alternateSwitchPorts(t *topo.Topology, sw topo.SwitchID, exclude int) ([]int, error) {
	s, err := t.Switch(sw)
	if err != nil {
		return nil, err
	}
	var out []int
	for port := 0; port < s.NumPorts(); port++ {
		if port == exclude {
			continue
		}
		peer, err := t.PeerAt(sw, port)
		if err != nil {
			return nil, err
		}
		if peer.Kind == topo.PeerSwitch {
			out = append(out, port)
		}
	}
	return out, nil
}
