package churn

import (
	"math"
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func seedController(t *testing.T, topol *topo.Topology) *controller.Controller {
	t.Helper()
	c, err := controller.New(topol, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	return c
}

func seedManager(t *testing.T, topol *topo.Topology, ctrl *controller.Controller, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(topol, layout, ctrl.Rules(), ctrl.RuleSpace(), core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// allPairVolumes offers distinct per-pair volumes so the expected
// counter vector is non-degenerate.
func allPairVolumes(topol *topo.Topology) map[fcm.Pair]uint64 {
	vol := make(map[fcm.Pair]uint64)
	for _, a := range topol.Hosts() {
		for _, b := range topol.Hosts() {
			if a.ID == b.ID {
				continue
			}
			vol[fcm.Pair{Src: a.ID, Dst: b.ID}] = 100 + 13*uint64(a.ID) + 7*uint64(b.ID)
		}
	}
	return vol
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	return d <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// compareManagers asserts that the incrementally maintained manager and
// a cold-built one produce identical detection verdicts (sliced and
// full) on the same counter vector.
func compareManagers(t *testing.T, inc, cold *Manager, y []float64, label string) {
	t.Helper()
	si, err := inc.DetectSliced(y)
	if err != nil {
		t.Fatalf("%s: incremental sliced: %v", label, err)
	}
	sc, err := cold.DetectSliced(y)
	if err != nil {
		t.Fatalf("%s: cold sliced: %v", label, err)
	}
	if si.Anomalous != sc.Anomalous {
		t.Fatalf("%s: sliced verdict diverged: incremental=%v cold=%v", label, si.Anomalous, sc.Anomalous)
	}
	if len(si.Suspects) != len(sc.Suspects) {
		t.Fatalf("%s: suspects diverged: %v vs %v", label, si.Suspects, sc.Suspects)
	}
	for i := range si.Suspects {
		if si.Suspects[i] != sc.Suspects[i] {
			t.Fatalf("%s: suspects diverged: %v vs %v", label, si.Suspects, sc.Suspects)
		}
	}
	idx := make(map[topo.SwitchID]core.Result, len(sc.PerSwitch))
	for _, pr := range sc.PerSwitch {
		idx[pr.Switch] = pr.Result
	}
	for _, pr := range si.PerSwitch {
		cr, ok := idx[pr.Switch]
		if !ok {
			t.Fatalf("%s: cold run has no slice for switch %d", label, pr.Switch)
		}
		if pr.Result.Anomalous != cr.Anomalous {
			t.Fatalf("%s: switch %d verdict diverged: incremental=%v cold=%v (index %g vs %g)",
				label, pr.Switch, pr.Result.Anomalous, cr.Anomalous, pr.Result.Index, cr.Index)
		}
		if !relClose(pr.Result.Index, cr.Index, 1e-6) {
			t.Fatalf("%s: switch %d index drifted: incremental=%g cold=%g", label, pr.Switch, pr.Result.Index, cr.Index)
		}
	}
	fi, err := inc.DetectFull(y)
	if err != nil {
		t.Fatalf("%s: incremental full: %v", label, err)
	}
	fc, err := cold.DetectFull(y)
	if err != nil {
		t.Fatalf("%s: cold full: %v", label, err)
	}
	if fi.Anomalous != fc.Anomalous {
		t.Fatalf("%s: full verdict diverged: incremental=%v cold=%v", label, fi.Anomalous, fc.Anomalous)
	}
	if !relClose(fi.Index, fc.Index, 1e-6) {
		t.Fatalf("%s: full index drifted: incremental=%g cold=%g", label, fi.Index, fc.Index)
	}
}

func TestColdManagerMatchesGenerate(t *testing.T) {
	topol, err := topo.Linear(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	m := seedManager(t, topol, ctrl, Config{})
	want, err := fcm.Generate(topol, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	got := m.FCM()
	if got.H.Rows() != want.H.Rows() || got.H.Cols() != want.H.Cols() {
		t.Fatalf("FCM shape %dx%d, want %dx%d", got.H.Rows(), got.H.Cols(), want.H.Rows(), want.H.Cols())
	}
	if len(got.Flows) != len(want.Flows) {
		t.Fatalf("%d flows, want %d", len(got.Flows), len(want.Flows))
	}
	// Cold seed must reproduce GenerateSparse column-for-column (same
	// discovery order), so the matrices are identical, not just
	// permutation-equivalent.
	for j, fl := range got.Flows {
		wk := fcm.HistoryKey(want.Flows[j].RuleIDs)
		gk := fcm.HistoryKey(fl.RuleIDs)
		if gk != wk {
			t.Fatalf("flow %d history %v, want %v", j, fl.RuleIDs, want.Flows[j].RuleIDs)
		}
	}
	if m.Epoch() != 0 {
		t.Fatalf("cold manager epoch = %d", m.Epoch())
	}
}

// TestApplyIncrementalMatchesCold is the property test from the issue:
// after N randomized controller mutations applied incrementally, the
// manager's detection verdicts are identical to a manager cold-built
// from the final rule set — on clean and on anomalous counter vectors.
func TestApplyIncrementalMatchesCold(t *testing.T) {
	topol, err := topo.Linear(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})

	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	rng := rand.New(rand.NewSource(42))
	switches := topol.Switches()
	hosts := topol.Hosts()
	vol := allPairVolumes(topol)

	const rounds = 12
	for round := 0; round < rounds; round++ {
		batch = batch[:0]
		nev := 1 + rng.Intn(3)
		for e := 0; e < nev; e++ {
			live := ctrl.Rules()
			switch op := rng.Intn(3); {
			case op == 0 || len(live) < 4:
				// Add a high-priority src-pinned drop rule: diverts that
				// source's traffic on one switch.
				sw := switches[rng.Intn(len(switches))].ID
				h := hosts[rng.Intn(len(hosts))]
				match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ctrl.AddRule(sw, 100+round, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
					t.Fatal(err)
				}
			case op == 1:
				victim := live[rng.Intn(len(live))]
				if _, err := ctrl.RemoveRule(victim.ID); err != nil {
					t.Fatal(err)
				}
			default:
				victim := live[rng.Intn(len(live))]
				if _, err := ctrl.ModifyRule(victim.ID, victim.Priority+1, victim.Match, victim.Action); err != nil {
					t.Fatal(err)
				}
			}
		}
		u, err := mgr.Apply(append([]controller.RuleChange(nil), batch...))
		if err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		if u.Epoch != uint64(round+1) || mgr.Epoch() != u.Epoch {
			t.Fatalf("round %d: epoch %d (manager %d)", round, u.Epoch, mgr.Epoch())
		}
		if u.Retraced == 0 {
			t.Fatalf("round %d: no sources retraced for %d events", round, len(u.Events))
		}

		cold := seedManager(t, topol, ctrl, Config{})
		if mgr.RuleSpace() != cold.RuleSpace() || mgr.RuleSpace() != ctrl.RuleSpace() {
			t.Fatalf("round %d: rule space diverged: inc=%d cold=%d ctrl=%d",
				round, mgr.RuleSpace(), cold.RuleSpace(), ctrl.RuleSpace())
		}
		y, err := mgr.FCM().ExpectedCounters(vol)
		if err != nil {
			t.Fatal(err)
		}
		yc, err := cold.FCM().ExpectedCounters(vol)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if !relClose(y[i], yc[i], 1e-9) {
				t.Fatalf("round %d: expected counters diverged at row %d: %g vs %g", round, i, y[i], yc[i])
			}
		}
		compareManagers(t, mgr, cold, y, "clean")

		// Corrupt one traffic-carrying live rule's counter: both
		// engines must agree on the anomaly too.
		bad := append([]float64(nil), y...)
		for i := range bad {
			if bad[i] > 0 && !mgr.FCM().IsPlaceholder(i) {
				bad[i] *= 3
				break
			}
		}
		compareManagers(t, mgr, cold, bad, "anomalous")
	}

	st := mgr.Stats()
	if st.Updates != rounds || st.Epoch != rounds {
		t.Fatalf("stats = %+v", st)
	}
	if st.SlicesReused == 0 {
		t.Fatalf("no slice engine ever reused across %d localized updates: %+v", rounds, st)
	}
	if len(mgr.Updates()) != rounds {
		t.Fatalf("log has %d updates", len(mgr.Updates()))
	}
}

func TestApplyValidation(t *testing.T) {
	topol, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	sw := topol.Switches()[0].ID
	live := ctrl.Rules()[0]
	cases := []struct {
		name   string
		events []controller.RuleChange
	}{
		{"empty batch", nil},
		{"add below rule space", []controller.RuleChange{{
			Op:   controller.RuleAdded,
			Rule: flowtable.Rule{ID: live.ID, Switch: sw, Match: layout.Wildcard(), Action: flowtable.Action{Type: flowtable.ActionDrop}},
		}}},
		{"add on unknown switch", []controller.RuleChange{{
			Op:   controller.RuleAdded,
			Rule: flowtable.Rule{ID: ctrl.RuleSpace(), Switch: topo.SwitchID(9999), Match: layout.Wildcard(), Action: flowtable.Action{Type: flowtable.ActionDrop}},
		}}},
		{"remove unknown rule", []controller.RuleChange{{
			Op:   controller.RuleRemoved,
			Rule: flowtable.Rule{ID: ctrl.RuleSpace() + 5, Switch: sw},
		}}},
		{"modify across switches", []controller.RuleChange{{
			Op:   controller.RuleModified,
			Rule: flowtable.Rule{ID: live.ID, Switch: live.Switch + 1, Match: live.Match, Action: live.Action},
		}}},
		{"invalid op", []controller.RuleChange{{Rule: live}}},
	}
	for _, tc := range cases {
		if _, err := mgr.Apply(tc.events); err == nil {
			t.Errorf("%s: Apply succeeded", tc.name)
		}
	}
	if mgr.Epoch() != 0 {
		t.Fatalf("rejected batches advanced the epoch to %d", mgr.Epoch())
	}
}

// TestAffectedSinceUnion checks the epoch log's window-reconciliation
// query: the union over (from, current] and the reuse of Update data.
func TestAffectedSinceUnion(t *testing.T) {
	topol, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	perEpoch := make([][]int, 0, 3)
	for i := 0; i < 3; i++ {
		batch = batch[:0]
		victim := ctrl.Rules()[0]
		if _, err := ctrl.RemoveRule(victim.ID); err != nil {
			t.Fatal(err)
		}
		u, err := mgr.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.Affected) == 0 {
			t.Fatalf("epoch %d: empty affected set", u.Epoch)
		}
		found := false
		for _, rid := range u.Affected {
			if rid == victim.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("epoch %d: affected %v misses removed rule %d", u.Epoch, u.Affected, victim.ID)
		}
		perEpoch = append(perEpoch, u.Affected)
	}
	union := make(map[int]bool)
	for _, rows := range perEpoch[1:] {
		for _, rid := range rows {
			union[rid] = true
		}
	}
	got := mgr.AffectedSince(1)
	if len(got) != len(union) {
		t.Fatalf("AffectedSince(1) = %v, want union of epochs 2..3 (%d rows)", got, len(union))
	}
	for _, rid := range got {
		if !union[rid] {
			t.Fatalf("AffectedSince(1) contains %d, not in union", rid)
		}
	}
	if rows := mgr.AffectedSince(mgr.Epoch()); len(rows) != 0 {
		t.Fatalf("AffectedSince(current) = %v, want empty", rows)
	}
}

// TestDetectReconciledMasksStraddle simulates a counter window that
// straddles a rule update: counters on rows the update touched are
// garbage relative to the new baseline. Plain sliced detection misreads
// that as a forwarding anomaly; the reconciled path masks exactly the
// affected rows and stays clean.
func TestDetectReconciledMasksStraddle(t *testing.T) {
	topol, err := topo.Linear(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	// Remove a traffic-carrying rule (first rule of some multi-hop
	// flow) so the update drops/creates flow classes.
	var victim flowtable.Rule
	for _, fl := range mgr.FCM().Flows {
		if len(fl.RuleIDs) >= 3 {
			victim = mgr.FCM().Rules[fl.RuleIDs[0]]
			break
		}
	}
	if victim.Switch < 0 {
		t.Fatal("no multi-hop flow found")
	}
	from := mgr.Epoch()
	if _, err := ctrl.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Apply(batch); err != nil {
		t.Fatal(err)
	}

	vol := allPairVolumes(topol)
	y, err := mgr.FCM().ExpectedCounters(vol)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := mgr.DetectSliced(y)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Anomalous {
		t.Fatalf("clean post-update vector flagged: %+v", clean.Suspects)
	}

	// Corrupt every live affected row — the straddling window's mix of
	// two rule generations.
	masked := mgr.AffectedSince(from)
	if len(masked) == 0 {
		t.Fatal("update produced no affected rows")
	}
	bad := append([]float64(nil), y...)
	corrupted := 0
	for _, rid := range masked {
		if !mgr.FCM().IsPlaceholder(rid) {
			bad[rid] = bad[rid]*2 + 5000
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no live affected rows to corrupt")
	}
	naive, err := mgr.DetectSliced(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Anomalous {
		t.Fatal("unmasked detection did not flag the straddling window (corruption too weak for the test)")
	}
	rec, err := mgr.DetectReconciled(bad, from)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Anomalous {
		t.Fatalf("reconciled detection still anomalous: suspects %v", rec.Suspects)
	}
	// With from == current epoch nothing is masked: identical to
	// DetectSliced.
	cur, err := mgr.DetectReconciled(bad, mgr.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if cur.Anomalous != naive.Anomalous {
		t.Fatal("DetectReconciled(current epoch) diverged from DetectSliced")
	}
}

// TestSliceDispositionCounts checks that a localized update leaves
// untouched slices' engines fully reused and accounts for every slice.
func TestSliceDispositionCounts(t *testing.T) {
	topol, err := topo.Linear(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	// A priority bump with identical match/action changes no
	// forwarding: every class survives, every slice row set survives —
	// all engines must be reused.
	r0 := ctrl.Rules()[0]
	if _, err := ctrl.ModifyRule(r0.ID, r0.Priority+1, r0.Match, r0.Action); err != nil {
		t.Fatal(err)
	}
	u, err := mgr.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	total := len(mgr.Slices())
	if u.SlicesReused+u.SlicesUpdated+u.SlicesRefactored != total {
		t.Fatalf("dispositions %d+%d+%d don't cover %d slices",
			u.SlicesReused, u.SlicesUpdated, u.SlicesRefactored, total)
	}
	if u.SlicesReused != total {
		t.Fatalf("no-op forwarding change rebuilt engines: %+v", u)
	}
	if u.Retraced == 0 {
		t.Fatal("modify on a visited switch should re-trace its sources")
	}
}

// TestFullEngineLazy pins the lazy Algorithm 1 policy: updates do not
// rebuild it; the first Detect after an update does, exactly once.
func TestFullEngineLazy(t *testing.T) {
	topol, err := topo.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })
	if mgr.Stats().FullRebuilds != 0 {
		t.Fatal("cold seed built the full engine eagerly")
	}
	if _, err := mgr.Full(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Full(); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().FullRebuilds; got != 1 {
		t.Fatalf("FullRebuilds = %d after two Full() calls, want 1", got)
	}
	victim := ctrl.Rules()[0]
	if _, err := ctrl.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().FullRebuilds; got != 1 {
		t.Fatalf("Apply rebuilt the full engine eagerly: FullRebuilds = %d", got)
	}
	if _, err := mgr.Full(); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().FullRebuilds; got != 2 {
		t.Fatalf("FullRebuilds = %d after post-update Full(), want 2", got)
	}
}

// TestRankOneRepairFailureFallsBackToRefactor pins the hardened repair
// contract: when downdating the removed rows drives the slice Gram
// singular, rankOneRepair reports "refactor me" (nil engine, no error)
// instead of failing the rebuild, and the serving engine's factor is
// untouched — the failed pass poisoned only the throwaway clone.
func TestRankOneRepairFailureFallsBackToRefactor(t *testing.T) {
	hOld, err := matrix.NewCSR(3, 2, []matrix.Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewDetector(hOld, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := &sliceMeta{rows: []int{10, 11, 12}, engine: eng}
	// Removing rows 10 and 11 leaves only the [1,1] row: the Gram of the
	// remaining slice is exactly singular, so the second downdate must
	// fail not-positive-definite.
	hNew, err := matrix.NewCSR(1, 2, []matrix.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sl := core.Slice{RuleRows: []int{12}, H: hNew}
	m := &Manager{opts: core.Options{}, cfg: Config{UpdateThreshold: 8}}
	got, ch, err := m.rankOneRepair(sl, old, []int{10, 11}, nil)
	if err != nil {
		t.Fatalf("repair failure must fall back, not error: %v", err)
	}
	if got != nil || ch != nil {
		t.Fatal("singular repair reported success")
	}
	// The serving engine still solves: the failed pass never touched it.
	prep := old.engine.Prepared()
	if prep == nil {
		t.Fatal("old engine lost its prepared state")
	}
	f := prep.CloneFactor()
	if f == nil || !f.Valid() {
		t.Fatal("serving factor poisoned by a clone's failed repair")
	}
	if _, err := prep.Solve([]float64{1, 1, 2}); err != nil {
		t.Fatalf("serving engine no longer solves: %v", err)
	}
}
