package churn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/telemetry"
	"foces/internal/topo"
)

// class is one logical-flow equivalence class, keyed by the set of
// rules its packets traverse. The uid is stable for the class's
// lifetime (and never reused), so two generations' columns can be
// compared for identity without comparing histories.
type class struct {
	uid     uint64
	key     string
	history []int        // representative rule history, path order
	space   header.Space // representative header space
	// bySource maps each contributing source host to its delivered
	// destinations (−1 for drops), in discovery order.
	bySource map[topo.HostID][]topo.HostID
	dead     bool
}

// sliceMeta remembers what a per-switch engine was built from, so the
// next update can decide reuse / rank-one repair / refactor.
type sliceMeta struct {
	rows    []int    // global rule IDs, ascending (Slice.RuleRows)
	colUIDs []uint64 // class uid per sub-FCM column
	engine  *core.Detector
}

// Manager owns the epoch-versioned detection baseline for one network:
// live rules, per-source symbolic traces, logical-flow classes, the
// sparse FCM, and the per-switch prepared engines — all maintained
// incrementally under Apply. It is safe for concurrent use; detection
// may run concurrently with itself, and Apply serializes against
// everything.
type Manager struct {
	mu     sync.Mutex
	topol  *topo.Topology
	layout *header.Layout
	opts   core.Options
	cfg    Config

	epoch uint64
	log   Log
	stats Stats

	rules   map[int]flowtable.Rule
	retired map[int]bool
	space   int // exclusive upper bound of ever-allocated rule IDs
	tables  map[topo.SwitchID]*flowtable.Table

	hostOrder  []topo.HostID
	pins       map[topo.HostID]header.Space // fcm.SourcePin per source
	traces     map[topo.HostID]*fcm.SourceTrace
	classes    map[string]*class
	order      []*class // column order: survivors first, in prior order
	srcClasses map[topo.HostID]map[*class]bool
	nextUID    uint64

	fcmCur    *fcm.FCM
	slices    []core.Slice
	sliced    *core.SlicedDetector
	sliceMeta map[topo.SwitchID]*sliceMeta
	replica   map[topo.SwitchID]*ReplicaState

	full      *core.Detector
	fullEpoch uint64
	fullOK    bool

	// Telemetry wiring (nil unless SetTelemetry was called): det is
	// re-applied to every engine generation rebuild creates; tel records
	// the incremental-maintenance activity itself.
	det *telemetry.DetectionMetrics
	tel *telemetry.ChurnMetrics
}

// NewManager seeds a manager from a rule set (the cold baseline). space
// is the exclusive upper bound of ever-allocated rule IDs
// (controller.RuleSpace()); IDs in [0, space) absent from rules are
// treated as retired and become permanent placeholder rows.
func NewManager(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule, space int, opts core.Options, cfg Config) (*Manager, error) {
	m := &Manager{
		topol:      t,
		layout:     layout,
		opts:       opts,
		cfg:        cfg.withDefaults(),
		rules:      make(map[int]flowtable.Rule, len(rules)),
		retired:    make(map[int]bool),
		space:      space,
		pins:       make(map[topo.HostID]header.Space),
		traces:     make(map[topo.HostID]*fcm.SourceTrace),
		classes:    make(map[string]*class),
		srcClasses: make(map[topo.HostID]map[*class]bool),
		sliceMeta:  make(map[topo.SwitchID]*sliceMeta),
		replica:    make(map[topo.SwitchID]*ReplicaState),
	}
	for _, r := range rules {
		if r.ID < 0 || r.ID >= space {
			return nil, fmt.Errorf("churn: rule ID %d outside rule space [0,%d)", r.ID, space)
		}
		if _, dup := m.rules[r.ID]; dup {
			return nil, fmt.Errorf("churn: duplicate rule ID %d", r.ID)
		}
		m.rules[r.ID] = r
	}
	for id := 0; id < space; id++ {
		if _, live := m.rules[id]; !live {
			m.retired[id] = true
		}
	}
	tables, err := fcm.BuildTables(t, rules)
	if err != nil {
		return nil, err
	}
	m.tables = tables
	for _, h := range t.Hosts() {
		m.hostOrder = append(m.hostOrder, h.ID)
		pin, err := fcm.SourcePin(layout, h)
		if err != nil {
			return nil, err
		}
		m.pins[h.ID] = pin
		tr, err := fcm.TraceSource(t, layout, tables, h)
		if err != nil {
			return nil, err
		}
		m.mergeTrace(tr)
	}
	m.stats.Sources = len(m.hostOrder)
	if err := m.rebuild(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// mergeTrace folds one source's records into the class structures
// (first-discovery order, matching fcm.GenerateSparse exactly on a cold
// build) and stores the trace.
func (m *Manager) mergeTrace(tr *fcm.SourceTrace) {
	set := m.srcClasses[tr.Src]
	if set == nil {
		set = make(map[*class]bool)
		m.srcClasses[tr.Src] = set
	}
	for _, rec := range tr.Records {
		key := fcm.HistoryKey(rec.History)
		c, ok := m.classes[key]
		if !ok {
			c = &class{
				uid:      m.nextUID,
				key:      key,
				history:  rec.History,
				space:    rec.Space,
				bySource: make(map[topo.HostID][]topo.HostID),
			}
			m.nextUID++
			m.classes[key] = c
			m.order = append(m.order, c)
		}
		c.dead = false
		c.bySource[tr.Src] = append(c.bySource[tr.Src], rec.Dst)
		set[c] = true
	}
	m.traces[tr.Src] = tr
}

// liveRules returns the live rule set sorted by ID.
func (m *Manager) liveRules() []flowtable.Rule {
	out := make([]flowtable.Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// rebuild reassembles the FCM from the class structures and rebuilds
// the sliced engine, carrying over or rank-one-repairing per-switch
// engines where the update permits. u (nil on the cold seed) receives
// the engine-disposition counts.
func (m *Manager) rebuild(u *Update) error {
	flows := make([]*fcm.Flow, 0, len(m.order))
	for _, c := range m.order {
		fl := &fcm.Flow{RuleIDs: c.history, Space: c.space}
		for _, src := range m.hostOrder {
			for _, dst := range c.bySource[src] {
				fl.Pairs = append(fl.Pairs, fcm.Pair{Src: src, Dst: dst})
			}
		}
		flows = append(flows, fl)
	}
	f, err := fcm.Assemble(m.topol, m.layout, m.liveRules(), m.space, flows)
	if err != nil {
		return err
	}
	slices, err := core.BuildSlices(f)
	if err != nil {
		return err
	}
	colUID := make([]uint64, len(m.order))
	for j, c := range m.order {
		colUID[j] = c.uid
	}
	// Per-slice engine builds are independent (each reads only the old
	// generation's meta and clones any factor it repairs), so fan them
	// across the kernel workers; dispositions and errors are aggregated
	// in slice order afterwards so reporting stays deterministic.
	sliceUIDs := make([][]uint64, len(slices))
	olds := make([]*sliceMeta, len(slices))
	for i, sl := range slices {
		uids := make([]uint64, len(sl.FlowCols))
		for k, col := range sl.FlowCols {
			uids[k] = colUID[col]
		}
		sliceUIDs[i] = uids
		olds[i] = m.sliceMeta[sl.Switch]
	}
	var buildStart time.Time
	if m.tel != nil {
		buildStart = time.Now()
	}
	engines := make([]*core.Detector, len(slices))
	dispositions := make([]sliceDisposition, len(slices))
	changes := make([]*SliceChange, len(slices))
	buildErrs := make([]error, len(slices))
	matrix.FanOut(len(slices), matrix.KernelWorkers(), func(i int) {
		engines[i], dispositions[i], changes[i], buildErrs[i] = m.buildSliceEngine(slices[i], sliceUIDs[i], olds[i])
	})
	if m.tel != nil {
		m.tel.PrepareSeconds.With("slice_build").ObserveDuration(time.Since(buildStart).Nanoseconds())
	}
	epoch := uint64(0)
	if u != nil {
		epoch = u.Epoch
	}
	meta := make(map[topo.SwitchID]*sliceMeta, len(slices))
	replica := make(map[topo.SwitchID]*ReplicaState, len(slices))
	for i, sl := range slices {
		if buildErrs[i] != nil {
			return buildErrs[i]
		}
		meta[sl.Switch] = &sliceMeta{rows: sl.RuleRows, colUIDs: sliceUIDs[i], engine: engines[i]}
		// Replica-log maintenance mirrors the engine disposition exactly:
		// a refactor resets the slice's replication base (the snapshot a
		// joining or fill-rejected replica is served), a rank-one repair
		// appends the rows it applied, and a reused engine carries its
		// state forward untouched. Dropped switches fall out of the map.
		switch dispositions[i] {
		case sliceReused:
			replica[sl.Switch] = m.replica[sl.Switch]
			if u != nil {
				u.SlicesReused++
			}
		case sliceUpdated:
			prev := m.replica[sl.Switch]
			ch := *changes[i]
			ch.Epoch = epoch
			replica[sl.Switch] = &ReplicaState{
				Switch:    sl.Switch,
				BaseEpoch: prev.BaseEpoch,
				BaseRows:  prev.BaseRows,
				BaseH:     prev.BaseH,
				Changes:   append(append([]SliceChange(nil), prev.Changes...), ch),
			}
			if u != nil {
				u.SlicesUpdated++
			}
		default:
			replica[sl.Switch] = &ReplicaState{
				Switch:    sl.Switch,
				BaseEpoch: epoch,
				BaseRows:  sl.RuleRows,
				BaseH:     sl.H,
			}
			if u != nil {
				u.SlicesRefactored++
			}
		}
	}
	sliced, err := core.NewSlicedDetectorWithEngines(slices, engines, m.space, m.opts)
	if err != nil {
		return err
	}
	// Wire telemetry before the new generation is published so no
	// detection ever observes a half-wired engine.
	sliced.SetTelemetry(m.det)
	m.fcmCur = f
	m.slices = slices
	m.sliced = sliced
	m.sliceMeta = meta
	m.replica = replica
	m.fullOK = false // Algorithm 1 engine is rebuilt lazily on demand
	return nil
}

type sliceDisposition int

const (
	sliceRefactored sliceDisposition = iota
	sliceReused
	sliceUpdated
)

// buildSliceEngine decides, for one slice of the new generation,
// whether the previous engine can be reused (identical rows and column
// classes), repaired by rank-one update/downdate (identical column
// classes, row delta within threshold), or must be refactored.
func (m *Manager) buildSliceEngine(sl core.Slice, uids []uint64, old *sliceMeta) (*core.Detector, sliceDisposition, *SliceChange, error) {
	if old != nil && equalUIDs(old.colUIDs, uids) {
		removed, added := rowDelta(old.rows, sl.RuleRows)
		if len(removed) == 0 && len(added) == 0 {
			return old.engine, sliceReused, nil, nil
		}
		if m.cfg.UpdateThreshold > 0 && len(removed)+len(added) <= m.cfg.UpdateThreshold {
			if eng, ch, err := m.rankOneRepair(sl, old, removed, added); err != nil {
				return nil, sliceRefactored, nil, err
			} else if eng != nil {
				return eng, sliceUpdated, ch, nil
			}
		}
	}
	// Refactor path. Reusing the previous engine's prepared state lets a
	// sparse-backed slice whose Gram pattern is unchanged skip ordering
	// and symbolic analysis.
	var prev *matrix.PreparedLS
	if old != nil {
		prev = old.engine.Prepared()
	}
	eng, err := core.NewDetectorReusing(sl.H, m.opts, prev)
	if err != nil {
		return nil, sliceRefactored, nil, fmt.Errorf("churn: slice switch %d: %w", sl.Switch, err)
	}
	return eng, sliceRefactored, nil, nil
}

// rankOneRepair advances old's Gram factor (dense or sparse) to the
// new slice's by downdating removed rows and updating added ones —
// O(k·n²) dense, O(k·affected-columns) sparse — against the full
// refactor. Returns a nil engine (caller refactors) when the old
// engine has no usable factor, an update/downdate leaves the Gram
// insufficiently positive definite, or a sparse update would need fill
// outside the cached factor pattern. The repair works on a clone, so a
// failed pass poisons only the throwaway copy — the serving engine is
// untouched, and NewPreparedLSFromUpdatable additionally refuses to
// promote any poisoned factor. On success the applied rows come back
// as a SliceChange so a replica can replay the identical operations.
func (m *Manager) rankOneRepair(sl core.Slice, old *sliceMeta, removed, added []int) (*core.Detector, *SliceChange, error) {
	prep := old.engine.Prepared()
	if prep == nil || sl.H.Cols() == 0 {
		return nil, nil, nil
	}
	chol := prep.CloneFactor()
	if chol == nil {
		return nil, nil, nil
	}
	oldH := old.engine.H()
	oldPos := make(map[int]int, len(old.rows))
	for i, rid := range old.rows {
		oldPos[rid] = i
	}
	newPos := make(map[int]int, len(sl.RuleRows))
	for i, rid := range sl.RuleRows {
		newPos[rid] = i
	}
	ch := &SliceChange{}
	for _, rid := range removed {
		ch.Removed = append(ch.Removed, extractRowVec(oldH, oldPos[rid], rid))
	}
	for _, rid := range added {
		ch.Added = append(ch.Added, extractRowVec(sl.H, newPos[rid], rid))
	}
	if err := applyRowVecs(chol, sl.H.Cols(), ch.Removed, ch.Added); err != nil {
		// Degenerate or fill-inducing deltas are expected churn outcomes
		// that the refactor path absorbs; only unexpected errors propagate.
		if errors.Is(err, matrix.ErrNotPositiveDefinite) || errors.Is(err, matrix.ErrSparseUpdateFill) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	ls, err := matrix.NewPreparedLSFromUpdatable(sl.H, chol, prep.Ridge())
	if err != nil {
		return nil, nil, err
	}
	return core.NewDetectorFromPrepared(ls, m.opts), ch, nil
}

func equalUIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowDelta diffs two ascending row-ID lists.
func rowDelta(old, new []int) (removed, added []int) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] == new[j]:
			i++
			j++
		case old[i] < new[j]:
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, new[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return removed, added
}

// Apply validates and applies one controller mutation batch, advancing
// the epoch: intent tables are patched, only sources whose symbolic
// trace visited a changed switch are re-traced, the FCM is reassembled
// with surviving columns in place, and per-switch engines are reused,
// rank-one-repaired or refactored as the slice structure dictates. The
// returned Update is also appended to the epoch log.
func (m *Manager) Apply(events []controller.RuleChange) (Update, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	if len(events) == 0 {
		return Update{}, fmt.Errorf("churn: empty update")
	}
	if err := m.validate(events); err != nil {
		return Update{}, err
	}
	// Decide which sources to re-trace against the pre-update state
	// (the filter reasons about old traces and old class histories).
	need := m.retraceSet(events)
	// Patch live rules and intent tables; collect changed switches.
	changed := make(map[topo.SwitchID]bool)
	for _, e := range events {
		switch e.Op {
		case controller.RuleAdded:
			m.rules[e.Rule.ID] = e.Rule
			m.space = e.Rule.ID + 1
			if err := m.tables[e.Rule.Switch].Install(e.Rule); err != nil {
				return Update{}, fmt.Errorf("churn: install rule %d: %w", e.Rule.ID, err)
			}
			changed[e.Rule.Switch] = true
		case controller.RuleRemoved:
			delete(m.rules, e.Rule.ID)
			m.retired[e.Rule.ID] = true
			if err := m.tables[e.Rule.Switch].Remove(e.Rule.ID); err != nil {
				return Update{}, fmt.Errorf("churn: remove rule %d: %w", e.Rule.ID, err)
			}
			changed[e.Rule.Switch] = true
		case controller.RuleModified:
			m.rules[e.Rule.ID] = e.Rule
			tbl := m.tables[e.Rule.Switch]
			if err := tbl.Remove(e.Rule.ID); err != nil {
				return Update{}, fmt.Errorf("churn: modify rule %d: %w", e.Rule.ID, err)
			}
			if err := tbl.Install(e.Rule); err != nil {
				return Update{}, fmt.Errorf("churn: modify rule %d: %w", e.Rule.ID, err)
			}
			changed[e.Rule.Switch] = true
		}
	}
	// Re-trace exactly the sources whose forwarding could have changed.
	firstNewUID := m.nextUID
	retraced := 0
	for _, hid := range m.hostOrder {
		if !need[hid] {
			continue
		}
		host, err := m.topol.Host(hid)
		if err != nil {
			return Update{}, err
		}
		// Withdraw this source's contributions; classes left without
		// any source are dropped unless a later re-trace revives them.
		for c := range m.srcClasses[hid] {
			delete(c.bySource, hid)
			if len(c.bySource) == 0 {
				c.dead = true
			}
		}
		delete(m.srcClasses, hid)
		nt, err := fcm.TraceSource(m.topol, m.layout, m.tables, host)
		if err != nil {
			return Update{}, err
		}
		m.mergeTrace(nt)
		retraced++
	}
	// Compact the column order: survivors keep their relative order,
	// classes born this epoch stay appended at the tail.
	affected := make(map[int]bool)
	for _, e := range events {
		affected[e.Rule.ID] = true
	}
	kept := m.order[:0]
	for _, c := range m.order {
		if c.dead {
			delete(m.classes, c.key)
			for _, rid := range c.history {
				affected[rid] = true
			}
			continue
		}
		if c.uid >= firstNewUID {
			for _, rid := range c.history {
				affected[rid] = true
			}
		}
		kept = append(kept, c)
	}
	m.order = kept
	u := Update{
		Epoch:    m.epoch + 1,
		Events:   append([]controller.RuleChange(nil), events...),
		Retraced: retraced,
	}
	for sw := range changed {
		u.ChangedSwitches = append(u.ChangedSwitches, sw)
	}
	sort.Slice(u.ChangedSwitches, func(i, j int) bool { return u.ChangedSwitches[i] < u.ChangedSwitches[j] })
	for rid := range affected {
		u.Affected = append(u.Affected, rid)
	}
	sort.Ints(u.Affected)
	if err := m.rebuild(&u); err != nil {
		return Update{}, err
	}
	m.epoch++
	u.Elapsed = time.Since(start)
	m.log.append(u)
	m.stats.Epoch = m.epoch
	m.stats.Updates++
	m.stats.Events += len(events)
	m.stats.Retraced += retraced
	m.stats.SlicesReused += u.SlicesReused
	m.stats.SlicesUpdated += u.SlicesUpdated
	m.stats.SlicesRefactored += u.SlicesRefactored
	m.stats.LastElapsed = u.Elapsed
	m.stats.TotalElapsed += u.Elapsed
	if tel := m.tel; tel != nil {
		tel.ApplySeconds.Observe(u.Elapsed.Seconds())
		tel.AffectedRows.Observe(float64(len(u.Affected)))
		tel.RetracedSources.Observe(float64(u.Retraced))
		tel.Updates.Inc()
		tel.Events.Add(uint64(len(events)))
		tel.Slices.With("reused").Add(uint64(u.SlicesReused))
		tel.Slices.With("updated").Add(uint64(u.SlicesUpdated))
		tel.Slices.With("refactored").Add(uint64(u.SlicesRefactored))
		tel.Epoch.Set(float64(m.epoch))
	}
	return u, nil
}

// validate simulates the batch against the current state so a bad
// batch is rejected atomically, before anything mutates.
func (m *Manager) validate(events []controller.RuleChange) error {
	live := make(map[int]topo.SwitchID, len(m.rules))
	for id, r := range m.rules {
		live[id] = r.Switch
	}
	space := m.space
	for i, e := range events {
		switch e.Op {
		case controller.RuleAdded:
			// The controller's allocator is monotonic and never
			// reclaims: a fresh rule must sit at or above the current
			// rule space (in particular, never on a retired ID).
			if e.Rule.ID < space {
				return fmt.Errorf("churn: event %d adds rule %d below rule space %d (IDs are never reused)", i, e.Rule.ID, space)
			}
			if _, ok := m.tables[e.Rule.Switch]; !ok {
				return fmt.Errorf("churn: event %d adds rule on unknown switch %d", i, e.Rule.Switch)
			}
			live[e.Rule.ID] = e.Rule.Switch
			space = e.Rule.ID + 1
		case controller.RuleRemoved:
			sw, ok := live[e.Rule.ID]
			if !ok {
				return fmt.Errorf("churn: event %d removes unknown rule %d", i, e.Rule.ID)
			}
			if sw != e.Rule.Switch {
				return fmt.Errorf("churn: event %d removes rule %d from switch %d, installed on %d", i, e.Rule.ID, e.Rule.Switch, sw)
			}
			delete(live, e.Rule.ID)
		case controller.RuleModified:
			sw, ok := live[e.Rule.ID]
			if !ok {
				return fmt.Errorf("churn: event %d modifies unknown rule %d", i, e.Rule.ID)
			}
			if sw != e.Rule.Switch {
				return fmt.Errorf("churn: event %d moves rule %d across switches (%d→%d); use remove+add", i, e.Rule.ID, sw, e.Rule.Switch)
			}
		default:
			return fmt.Errorf("churn: event %d has invalid op %v", i, e.Op)
		}
	}
	return nil
}

// retraceSet computes the sources whose forwarding a batch could
// possibly alter, evaluated against the pre-update traces and classes.
// The filter is sound per event:
//
//   - Removing (or modifying away from) rule r can only change traffic
//     that previously *matched* r — exactly the sources contributing to
//     a class with r in its history. Traffic of other sources at r's
//     switch either matched a higher-priority rule (unaffected) or
//     missed every rule including r (still misses them all).
//   - Adding rule r (or modifying toward a new match/priority/action)
//     can only change traffic that can reach r's switch (the old walk
//     consulted it — a source cannot newly arrive there unless some
//     other event in the batch rerouted it, and that event selects the
//     source itself) and that r's match can capture at all. Every
//     packet a source emits lies in its fcm.SourcePin space, so a match
//     disjoint from the pin provably never touches the source — this is
//     what keeps a host-pinned policy tweak from re-tracing every
//     source that merely traverses the same core switch.
//
// Re-traces then run against the fully patched tables, so multi-event
// batches converge in one pass.
func (m *Manager) retraceSet(events []controller.RuleChange) map[topo.HostID]bool {
	oldIDs := make(map[int]bool)
	var arrivals []flowtable.Rule // rules whose (new) match may capture traffic
	for _, e := range events {
		switch e.Op {
		case controller.RuleRemoved:
			oldIDs[e.Rule.ID] = true
		case controller.RuleModified:
			oldIDs[e.Rule.ID] = true
			arrivals = append(arrivals, e.Rule)
		case controller.RuleAdded:
			arrivals = append(arrivals, e.Rule)
		}
	}
	need := make(map[topo.HostID]bool)
	for _, c := range m.order {
		for _, rid := range c.history {
			if !oldIDs[rid] {
				continue
			}
			for src := range c.bySource {
				need[src] = true
			}
			break
		}
	}
	if len(arrivals) == 0 {
		return need
	}
	for _, hid := range m.hostOrder {
		if need[hid] {
			continue
		}
		tr, pin := m.traces[hid], m.pins[hid]
		for _, r := range arrivals {
			if !tr.Visited[r.Switch] {
				continue
			}
			if _, ok := pin.Intersect(r.Match); ok {
				need[hid] = true
				break
			}
		}
	}
	return need
}

// Epoch reports the current epoch (0 until the first update).
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// FCM returns the current flow-counter matrix (placeholder rows for
// retired rule IDs included).
func (m *Manager) FCM() *fcm.FCM {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fcmCur
}

// Slices returns the current per-switch slices.
func (m *Manager) Slices() []core.Slice {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slices
}

// Sliced returns the current prepared Algorithm 2 engine.
func (m *Manager) Sliced() *core.SlicedDetector {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sliced
}

// Rules returns the live rule set, sorted by ID.
func (m *Manager) Rules() []flowtable.Rule {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveRules()
}

// RuleSpace reports the exclusive upper bound of ever-allocated rule
// IDs (the counter-vector length).
func (m *Manager) RuleSpace() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space
}

// Full returns the prepared Algorithm 1 engine for the current epoch,
// rebuilding it lazily: the global Gram changes with nearly every flow
// update, so keeping it eagerly fresh would put an O(n³) term on every
// Apply. Detection paths that only need per-switch localization should
// prefer Sliced.
func (m *Manager) Full() (*core.Detector, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fullLocked()
}

func (m *Manager) fullLocked() (*core.Detector, error) {
	if m.fullOK && m.fullEpoch == m.epoch {
		return m.full, nil
	}
	var t0 time.Time
	if m.tel != nil {
		t0 = time.Now()
	}
	var prev *matrix.PreparedLS
	if m.full != nil {
		prev = m.full.Prepared() // reuse a matching sparse symbolic analysis
	}
	d, err := core.NewDetectorReusing(m.fcmCur.H, m.opts, prev)
	if err != nil {
		return nil, fmt.Errorf("churn: full engine: %w", err)
	}
	if m.tel != nil {
		m.tel.FullRebuildSeconds.ObserveDuration(time.Since(t0).Nanoseconds())
		stats := d.PrepareStats()
		m.tel.PrepareSeconds.With("gram").Observe(stats.Gram.Seconds())
		m.tel.PrepareSeconds.With("factor").Observe(stats.Factor.Seconds())
		if stats.Sparse {
			m.tel.PrepareSeconds.With("ordering").Observe(stats.Ordering.Seconds())
			m.tel.PrepareSeconds.With("symbolic").Observe(stats.Symbolic.Seconds())
			m.tel.PrepareSeconds.With("numeric").Observe(stats.Numeric.Seconds())
		}
	}
	if m.det != nil {
		d.SetTelemetry(m.det, core.EngineFull)
	}
	m.full = d
	m.fullEpoch = m.epoch
	m.fullOK = true
	m.stats.FullRebuilds++
	return d, nil
}

// AffectedSince returns the ascending union of rule rows changed in
// epochs (since, current]: the rows a counter window whose baseline was
// snapshotted at epoch `since` must mask.
func (m *Manager) AffectedSince(since uint64) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.AffectedRules(since, m.epoch)
}

// Updates returns a copy of the epoch log, oldest first.
func (m *Manager) Updates() []Update {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.Updates()
}

// Stats returns a snapshot of cumulative churn statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// DetectSliced runs the prepared Algorithm 2 engine on one period's
// counter vector (length RuleSpace, indexed by rule ID).
func (m *Manager) DetectSliced(y []float64) (core.SlicedOutcome, error) {
	return m.Sliced().Detect(y)
}

// DetectReconciled runs Algorithm 2 on a counter window whose baseline
// snapshot was taken at epoch `from`: the rows changed by any update
// the window spans are masked out of the equation system (via rank-one
// downdates of the prepared factors), so a mid-window rule change is
// reconciled instead of read as a forwarding anomaly. With from equal
// to the current epoch this is exactly DetectSliced.
//
// y may be shorter than the current RuleSpace when updates since `from`
// added rules: a window captured at the old epoch has no counters for
// the new rows. Those rule IDs are necessarily in AffectedRules(from,
// epoch) and hence masked, so the vector is zero-padded to the current
// space rather than rejected.
func (m *Manager) DetectReconciled(y []float64, from uint64) (core.SlicedOutcome, error) {
	m.mu.Lock()
	sliced := m.sliced
	space := m.space
	masked := m.log.AffectedRules(from, m.epoch)
	m.mu.Unlock()
	if len(y) < space {
		padded := make([]float64, space)
		copy(padded, y)
		y = padded
	}
	return sliced.DetectMasked(y, masked)
}

// DetectFull runs the (lazily rebuilt) Algorithm 1 engine.
func (m *Manager) DetectFull(y []float64) (core.Result, error) {
	d, err := m.Full()
	if err != nil {
		return core.Result{}, err
	}
	return d.Detect(y)
}
