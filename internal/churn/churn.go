// Package churn is the dynamic-network subsystem: it keeps FOCES
// detection correct and cheap while the controller's rule set changes.
//
// FOCES (§VII) assumes a static rule set between measurement windows;
// naively, any FlowMod forces a full baseline rebuild — symbolic
// re-trace of every source, FCM regeneration, and a fresh Cholesky
// factorization of every per-switch slice — and a counter window that
// straddles the update silently mixes two rule generations. This
// package closes both gaps:
//
//   - Every controller mutation batch becomes an epoch: a monotonically
//     numbered entry in an append-only log recording the events, the
//     switches they touched, and the rule rows whose counters cannot be
//     trusted across the boundary.
//   - The FCM is maintained incrementally. Each source host's symbolic
//     trace records the set of switches it visited; only sources whose
//     visited set intersects the changed switches are re-traced, and
//     logical-flow classes are updated in place (surviving columns keep
//     their relative order). Rule rows are keyed by controller rule ID,
//     which is never reclaimed, so removed rules leave permanent
//     placeholder rows and row indexing is stable for the rule set's
//     lifetime.
//   - Per-switch slice engines are invalidated selectively using the
//     slice (Rule Bipartite Graph) structure: a slice whose rows and
//     column classes are untouched keeps its prepared factorization; a
//     slice whose columns are intact but whose row set changed by at
//     most Config.UpdateThreshold rows gets a rank-one Cholesky
//     update/downdate of its Gram factor (O(k·n²)); anything larger is
//     refactored from scratch (O(n³)), but only for that slice.
//   - The full-matrix (Algorithm 1) engine is epoch-tagged and rebuilt
//     lazily on first use, since almost every flow change perturbs the
//     global Gram; sliced detection (Algorithm 2) is the eagerly
//     maintained production path.
//   - Counter windows that straddle one or more epochs are reconciled
//     rather than discarded or misread: AffectedSince reports the union
//     of rule rows changed over the spanned epochs, and detection masks
//     those rows out of the equation system (removed-rule counters have
//     already dropped out of the per-period delta).
package churn

import (
	"sort"
	"time"

	"foces/internal/controller"
	"foces/internal/topo"
)

// Config tunes the incremental-maintenance policy.
type Config struct {
	// UpdateThreshold is the largest per-slice row delta (adds plus
	// removes) repaired by rank-one Cholesky update/downdate; a bigger
	// delta triggers a full refactorization of that slice. Zero selects
	// DefaultUpdateThreshold; negative disables the rank-one path.
	UpdateThreshold int
}

// DefaultUpdateThreshold is the rank-one repair cutoff: k rank-one
// passes cost O(k·n²), so beyond a handful of rows the O(n³) refactor
// with its better constant wins.
const DefaultUpdateThreshold = 4

func (c Config) withDefaults() Config {
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = DefaultUpdateThreshold
	}
	return c
}

// Update is one applied epoch: the mutation batch plus what its
// incremental application actually did.
type Update struct {
	// Epoch is the monotonic epoch number this update created; the
	// manager's state incorporates all updates with epoch ≤ Epoch.
	Epoch uint64
	// Events is the controller mutation batch, in application order.
	Events []controller.RuleChange
	// ChangedSwitches lists (ascending) the switches whose tables the
	// batch touched.
	ChangedSwitches []topo.SwitchID
	// Affected lists (ascending) the rule rows whose counters cannot be
	// compared across this epoch boundary: the mutated rules plus every
	// rule on a logical flow that appeared or disappeared. A counter
	// window spanning this update must mask these rows.
	Affected []int
	// Retraced is how many source hosts were symbolically re-traced.
	Retraced int
	// SlicesReused / SlicesUpdated / SlicesRefactored count per-switch
	// engines carried over unchanged, repaired by rank-one
	// update/downdate, and refactored from scratch.
	SlicesReused, SlicesUpdated, SlicesRefactored int
	// Elapsed is the wall-clock cost of applying the update.
	Elapsed time.Duration
}

// Log is the append-only epoch log.
type Log struct {
	updates []Update
}

// Len reports the number of applied updates.
func (l *Log) Len() int { return len(l.updates) }

// Updates returns a copy of the applied updates, oldest first.
func (l *Log) Updates() []Update {
	out := make([]Update, len(l.updates))
	copy(out, l.updates)
	return out
}

// append records an applied update. Epochs must arrive in order.
func (l *Log) append(u Update) { l.updates = append(l.updates, u) }

// AffectedRules returns the ascending union of affected rule rows over
// epochs in (from, to]. A counter window whose baseline snapshot was
// taken at epoch `from` and whose closing snapshot at epoch `to` must
// mask exactly these rows.
func (l *Log) AffectedRules(from, to uint64) []int {
	set := make(map[int]bool)
	for _, u := range l.updates {
		if u.Epoch > from && u.Epoch <= to {
			for _, rid := range u.Affected {
				set[rid] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for rid := range set {
		out = append(out, rid)
	}
	sort.Ints(out)
	return out
}

// Stats is a cumulative view of the manager's work, for /status
// scraping and benchmarks.
type Stats struct {
	// Epoch is the current epoch (0 until the first update).
	Epoch uint64
	// Updates and Events count applied batches and individual
	// mutations.
	Updates, Events int
	// Retraced counts source re-traces across all updates; Sources is
	// the total source count (so Retraced/Updates·Sources is the
	// re-trace fraction).
	Retraced, Sources int
	// SlicesReused / SlicesUpdated / SlicesRefactored accumulate the
	// per-update engine dispositions.
	SlicesReused, SlicesUpdated, SlicesRefactored int
	// FullRebuilds counts lazy full-engine (Algorithm 1) rebuilds.
	FullRebuilds int
	// LastElapsed and TotalElapsed track update wall-clock cost.
	LastElapsed, TotalElapsed time.Duration
}
