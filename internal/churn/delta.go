package churn

import (
	"fmt"
	"sort"

	"foces/internal/core"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// This file is the exportable delta encoding of the manager's
// incremental baseline maintenance: everything a replica (a cluster
// detector node holding a copy of some slices' engines) needs to track
// the manager's per-slice factor lifecycle bit-for-bit. The invariant
// that makes replication byte-exact is that a replica never invents its
// own numerics — it refactors the same base H the manager refactored
// and replays the same rank-one row vectors in the same order through
// the same applyRowVecs helper the manager itself uses, so the
// replica's factor is the manager's factor, not an approximation of it.

// RowVec is one sparse FCM row restricted to a slice's columns: the
// payload of a single rank-one Gram update or downdate. Cols are
// slice-local column indices (ascending); an empty RowVec (no entries)
// is still recorded because the row exists in H, but it never touches
// the factor — a zero row leaves the Gram unchanged.
type RowVec struct {
	RuleID int
	Cols   []int
	Vals   []float64
}

// SliceChange is one epoch's rank-one repair of one slice: the rows
// downdated out of and updated into the Gram factor, each in ascending
// rule-ID order (the order the manager applied them).
type SliceChange struct {
	Epoch   uint64
	Removed []RowVec
	Added   []RowVec
}

// ReplicaState is the shippable replication state of one slice: the
// base generation (the slice as it stood at the manager's last full
// refactor of it) plus every rank-one change applied since. A node that
// refactors BaseH and replays Changes in order holds an engine bitwise
// identical to the manager's serving engine for the slice. BaseEpoch
// resets — and Changes empties — whenever the manager refactors the
// slice, which is exactly the full-snapshot fallback: joins and
// fill-rejected deltas are served the current base, not a replay of
// history from epoch zero.
type ReplicaState struct {
	Switch    topo.SwitchID
	BaseEpoch uint64
	BaseRows  []int // global rule IDs, ascending
	BaseH     *matrix.CSR
	Changes   []SliceChange
}

// extractRowVec reads row i of h as a RowVec tagged with global rule
// ID rid.
func extractRowVec(h *matrix.CSR, i, rid int) RowVec {
	rv := RowVec{RuleID: rid}
	h.RowEntries(i, func(col int, v float64) {
		rv.Cols = append(rv.Cols, col)
		rv.Vals = append(rv.Vals, v)
	})
	return rv
}

// applyRowVecs advances a cloned Gram factor by one change: downdate
// every removed row, then update every added one, skipping empty rows.
// The manager's rank-one repair and a replica's replay both funnel
// through this function, so the two sides' factors agree bitwise by
// construction. Errors (including ErrNotPositiveDefinite and
// ErrSparseUpdateFill) propagate; the caller decides whether they mean
// "refactor instead" or "resync the replica".
func applyRowVecs(chol matrix.UpdatableFactor, cols int, removed, added []RowVec) error {
	row := make([]float64, cols)
	scatter := func(rv RowVec) {
		for j := range row {
			row[j] = 0
		}
		for k, c := range rv.Cols {
			row[c] = rv.Vals[k]
		}
	}
	for _, rv := range removed {
		if len(rv.Cols) == 0 {
			continue
		}
		scatter(rv)
		if err := chol.Downdate(row); err != nil {
			return err
		}
	}
	for _, rv := range added {
		if len(rv.Cols) == 0 {
			continue
		}
		scatter(rv)
		if err := chol.Update(row); err != nil {
			return err
		}
	}
	return nil
}

// applyChangeH performs the row surgery a SliceChange describes on a
// slice's H: removed rule IDs drop out, added RowVecs splice in, and
// the surviving rows keep their values — all in ascending rule-ID
// order, which is the order Slice.RuleRows (and hence slice H rows)
// always carries. Valid only on the rank-one path, where the slice's
// columns are unchanged by construction.
func applyChangeH(oldH *matrix.CSR, oldRows []int, ch SliceChange) (*matrix.CSR, []int, error) {
	removed := make(map[int]bool, len(ch.Removed))
	for _, rv := range ch.Removed {
		removed[rv.RuleID] = true
	}
	addedByID := make(map[int]RowVec, len(ch.Added))
	newRows := make([]int, 0, len(oldRows)+len(ch.Added))
	for _, rv := range ch.Added {
		addedByID[rv.RuleID] = rv
		newRows = append(newRows, rv.RuleID)
	}
	oldPos := make(map[int]int, len(oldRows))
	for i, rid := range oldRows {
		oldPos[rid] = i
		if !removed[rid] {
			newRows = append(newRows, rid)
		}
	}
	sort.Ints(newRows)
	var entries []matrix.Triplet
	for i, rid := range newRows {
		if rv, ok := addedByID[rid]; ok {
			for k, c := range rv.Cols {
				entries = append(entries, matrix.Triplet{Row: i, Col: c, Val: rv.Vals[k]})
			}
			continue
		}
		oi, ok := oldPos[rid]
		if !ok {
			return nil, nil, fmt.Errorf("churn: replica change references unknown rule %d", rid)
		}
		oldH.RowEntries(oi, func(col int, v float64) {
			entries = append(entries, matrix.Triplet{Row: i, Col: col, Val: v})
		})
	}
	h, err := matrix.NewCSR(len(newRows), oldH.Cols(), entries)
	if err != nil {
		return nil, nil, fmt.Errorf("churn: replica row surgery: %w", err)
	}
	return h, newRows, nil
}

// ReplayChange advances a replicated slice engine by one recorded
// change: row surgery on H, then the same clone-and-apply factor pass
// the manager ran. It returns the new engine and its (ascending) rule
// rows. An error means the replica cannot track incrementally — e.g. a
// sparse update needs fill the cached pattern lacks — and the caller
// should fall back to a fresh base snapshot.
func ReplayChange(eng *core.Detector, rows []int, ch SliceChange, opts core.Options) (*core.Detector, []int, error) {
	newH, newRows, err := applyChangeH(eng.H(), rows, ch)
	if err != nil {
		return nil, nil, err
	}
	prep := eng.Prepared()
	if prep == nil {
		return nil, nil, fmt.Errorf("churn: replica engine has no prepared factor")
	}
	chol := prep.CloneFactor()
	if chol == nil {
		return nil, nil, fmt.Errorf("churn: replica engine factor is not clonable")
	}
	if err := applyRowVecs(chol, newH.Cols(), ch.Removed, ch.Added); err != nil {
		return nil, nil, fmt.Errorf("churn: replica rank-one replay: %w", err)
	}
	ls, err := matrix.NewPreparedLSFromUpdatable(newH, chol, prep.Ridge())
	if err != nil {
		return nil, nil, err
	}
	return core.NewDetectorFromPrepared(ls, opts), newRows, nil
}

// ReplayReplica rebuilds a slice engine from a replica state:
// refactor the base H, then replay every recorded change in order —
// the manager's exact factor lifecycle, so the result is bitwise
// identical to the manager's serving engine for the slice.
func ReplayReplica(rs *ReplicaState, opts core.Options) (*core.Detector, []int, error) {
	eng, err := core.NewDetectorReusing(rs.BaseH, opts, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("churn: replica base refactor: %w", err)
	}
	rows := rs.BaseRows
	for _, ch := range rs.Changes {
		eng, rows, err = ReplayChange(eng, rows, ch, opts)
		if err != nil {
			return nil, nil, err
		}
	}
	return eng, rows, nil
}

// ReplicaStates snapshots the manager's per-slice replication state,
// one entry per current slice. The returned states share the immutable
// base matrices and row vectors with the manager but own their slice
// headers, so callers may hold them across future updates.
func (m *Manager) ReplicaStates() map[topo.SwitchID]*ReplicaState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[topo.SwitchID]*ReplicaState, len(m.replica))
	for sw, rs := range m.replica {
		out[sw] = &ReplicaState{
			Switch:    rs.Switch,
			BaseEpoch: rs.BaseEpoch,
			BaseRows:  rs.BaseRows,
			BaseH:     rs.BaseH,
			Changes:   append([]SliceChange(nil), rs.Changes...),
		}
	}
	return out
}
