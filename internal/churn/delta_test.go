package churn

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// replicaNode mimics a cluster detector node's per-slice tracking: a
// full rebuild when the base generation changed, incremental
// ReplayChange application when only new deltas were appended.
type replicaNode struct {
	baseEpoch uint64
	nChanges  int
	rows      []int
	engine    *core.Detector
}

func (n *replicaNode) sync(t *testing.T, rs *ReplicaState, opts core.Options) (snapshots, deltas int) {
	t.Helper()
	if n.engine == nil || n.baseEpoch != rs.BaseEpoch || n.nChanges > len(rs.Changes) {
		eng, rows, err := ReplayReplica(rs, opts)
		if err != nil {
			t.Fatalf("switch %d: full replay: %v", rs.Switch, err)
		}
		n.engine, n.rows = eng, rows
		n.baseEpoch, n.nChanges = rs.BaseEpoch, len(rs.Changes)
		return 1, 0
	}
	for _, ch := range rs.Changes[n.nChanges:] {
		eng, rows, err := ReplayChange(n.engine, n.rows, ch, opts)
		if err != nil {
			t.Fatalf("switch %d: incremental replay at epoch %d: %v", rs.Switch, ch.Epoch, err)
		}
		n.engine, n.rows = eng, rows
		n.nChanges++
		deltas++
	}
	return 0, deltas
}

func bitwiseEqualResults(t *testing.T, label string, sw topo.SwitchID, got, want core.Result) {
	t.Helper()
	if got.Anomalous != want.Anomalous || got.Index != want.Index ||
		got.ErrMax != want.ErrMax || got.ErrMed != want.ErrMed {
		t.Fatalf("%s: switch %d scalar drift: got {anom=%v idx=%v max=%v med=%v} want {anom=%v idx=%v max=%v med=%v}",
			label, sw, got.Anomalous, got.Index, got.ErrMax, got.ErrMed,
			want.Anomalous, want.Index, want.ErrMax, want.ErrMed)
	}
	vecs := [][2][]float64{{got.Delta, want.Delta}, {got.XHat, want.XHat}, {got.YHat, want.YHat}}
	for vi, pair := range vecs {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: switch %d vector %d length %d vs %d", label, sw, vi, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s: switch %d vector %d entry %d: %v != %v (not bitwise identical)",
					label, sw, vi, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestReplicaReplayBitwiseIdentical drives randomized churn through a
// manager while a simulated replica tracks every slice through the
// exported delta encoding — full ReplayReplica after a base reset,
// incremental ReplayChange otherwise — and asserts the replica's
// detection results are bitwise identical (every float, not merely
// close) to the manager's serving engines after every epoch. This is
// the exact invariant the cluster's baseline replication rests on.
func TestReplicaReplayBitwiseIdentical(t *testing.T) {
	topol, err := topo.Linear(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	rng := rand.New(rand.NewSource(7))
	switches := topol.Switches()
	hosts := topol.Hosts()
	vol := allPairVolumes(topol)

	// An exact-match source IP no host owns: rules matching it capture
	// no traffic, so adding one changes a slice's row set but no flow
	// class — forcing the rank-one (delta) disposition deterministically.
	phantomIP := uint64(0)
	for _, h := range hosts {
		if h.IP >= phantomIP {
			phantomIP = h.IP + 1
		}
	}

	nodes := make(map[topo.SwitchID]*replicaNode)
	syncAll := func(label string) (snapshots, deltas int) {
		rep := mgr.ReplicaStates()
		slices := mgr.Slices()
		if len(rep) != len(slices) {
			t.Fatalf("%s: %d replica states for %d slices", label, len(rep), len(slices))
		}
		live := make(map[topo.SwitchID]bool, len(slices))
		for _, sl := range slices {
			live[sl.Switch] = true
			rs := rep[sl.Switch]
			if rs == nil {
				t.Fatalf("%s: no replica state for switch %d", label, sl.Switch)
			}
			n := nodes[sl.Switch]
			if n == nil {
				n = &replicaNode{}
				nodes[sl.Switch] = n
			}
			s, d := n.sync(t, rs, core.Options{})
			snapshots += s
			deltas += d
			if len(n.rows) != len(sl.RuleRows) {
				t.Fatalf("%s: switch %d replayed %d rows, slice has %d", label, sl.Switch, len(n.rows), len(sl.RuleRows))
			}
			for i, rid := range sl.RuleRows {
				if n.rows[i] != rid {
					t.Fatalf("%s: switch %d row %d: replayed rule %d, slice has %d", label, sl.Switch, i, n.rows[i], rid)
				}
			}
		}
		for sw := range nodes {
			if !live[sw] {
				delete(nodes, sw)
			}
		}
		return snapshots, deltas
	}

	check := func(label string, y []float64) {
		out, err := mgr.DetectSliced(y)
		if err != nil {
			t.Fatalf("%s: manager detect: %v", label, err)
		}
		slices := mgr.Slices()
		for i, sl := range slices {
			sub := make([]float64, len(sl.RuleRows))
			for j, rid := range sl.RuleRows {
				sub[j] = y[rid]
			}
			res, err := nodes[sl.Switch].engine.Detect(sub)
			if err != nil {
				t.Fatalf("%s: switch %d replica detect: %v", label, sl.Switch, err)
			}
			bitwiseEqualResults(t, label, sl.Switch, res, out.PerSwitch[i].Result)
		}
	}

	syncAll("cold")
	y, err := mgr.FCM().ExpectedCounters(vol)
	if err != nil {
		t.Fatal(err)
	}
	check("cold", y)

	totalDeltas := 0
	const rounds = 10
	for round := 0; round < rounds; round++ {
		batch = batch[:0]
		switch round % 3 {
		case 0:
			// Phantom rule: row-only slice change → rank-one delta.
			sw := switches[rng.Intn(len(switches))].ID
			match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, phantomIP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ctrl.AddRule(sw, 1, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
				t.Fatal(err)
			}
		case 1:
			// Source-pinned drop: reroutes a host's traffic → refactors.
			sw := switches[rng.Intn(len(switches))].ID
			h := hosts[rng.Intn(len(hosts))]
			match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ctrl.AddRule(sw, 500+round, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
				t.Fatal(err)
			}
		default:
			live := ctrl.Rules()
			victim := live[rng.Intn(len(live))]
			if _, err := ctrl.RemoveRule(victim.ID); err != nil {
				t.Fatal(err)
			}
		}
		u, err := mgr.Apply(append([]controller.RuleChange(nil), batch...))
		if err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		snaps, deltas := syncAll("round")
		totalDeltas += deltas
		if u.SlicesRefactored == 0 && snaps != 0 {
			t.Fatalf("round %d: %d snapshot resyncs without any refactored slice", round, snaps)
		}

		y, err := mgr.FCM().ExpectedCounters(vol)
		if err != nil {
			t.Fatal(err)
		}
		check("clean", y)
		bad := append([]float64(nil), y...)
		for i := range bad {
			if bad[i] > 0 && !mgr.FCM().IsPlaceholder(i) {
				bad[i] *= 3
				break
			}
		}
		check("anomalous", bad)
	}

	st := mgr.Stats()
	if st.SlicesUpdated == 0 || st.SlicesRefactored == 0 || st.SlicesReused == 0 {
		t.Fatalf("churn workload missed a disposition: %+v", st)
	}
	if totalDeltas == 0 {
		t.Fatal("replica never applied an incremental delta — every sync fell back to a snapshot")
	}
}

// TestReplicaStateResetOnRefactor pins the full-snapshot fallback
// contract: a rank-one-repaired slice accumulates Changes on a stable
// base, and a refactored slice resets BaseEpoch to the refactoring
// epoch with an empty change list.
func TestReplicaStateResetOnRefactor(t *testing.T) {
	topol, err := topo.Linear(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := seedController(t, topol)
	mgr := seedManager(t, topol, ctrl, Config{})
	var batch []controller.RuleChange
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { batch = append(batch, ch...) })

	for _, rs := range mgr.ReplicaStates() {
		if rs.BaseEpoch != 0 || len(rs.Changes) != 0 {
			t.Fatalf("cold replica state not at base: %+v", rs)
		}
	}

	hosts := topol.Hosts()
	phantomIP := uint64(0)
	for _, h := range hosts {
		if h.IP >= phantomIP {
			phantomIP = h.IP + 1
		}
	}
	sw := topol.Switches()[0].ID
	match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, phantomIP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.AddRule(sw, 1, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	u, err := mgr.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if u.SlicesUpdated == 0 {
		t.Fatalf("phantom rule did not exercise the rank-one path: %+v", u)
	}
	var updated *ReplicaState
	for _, rs := range mgr.ReplicaStates() {
		if len(rs.Changes) > 0 {
			updated = rs
		}
	}
	if updated == nil {
		t.Fatal("no replica state accumulated a change")
	}
	if updated.BaseEpoch != 0 {
		t.Fatalf("rank-one repair moved the base epoch: %+v", updated)
	}
	ch := updated.Changes[len(updated.Changes)-1]
	if ch.Epoch != u.Epoch || len(ch.Added) == 0 {
		t.Fatalf("recorded change %+v does not describe epoch %d's added row", ch, u.Epoch)
	}

	// A source-pinned drop reroutes traffic and refactors its slices:
	// their replica bases must reset to the new epoch.
	batch = batch[:0]
	h := hosts[0]
	match, err = layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.AddRule(sw, 900, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	u2, err := mgr.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if u2.SlicesRefactored == 0 {
		t.Fatalf("rerouting drop did not refactor any slice: %+v", u2)
	}
	reset := 0
	for _, rs := range mgr.ReplicaStates() {
		if rs.BaseEpoch == u2.Epoch {
			if len(rs.Changes) != 0 {
				t.Fatalf("refactored slice kept stale changes: %+v", rs)
			}
			reset++
		}
	}
	if reset == 0 {
		t.Fatal("no replica base reset to the refactoring epoch")
	}
}
