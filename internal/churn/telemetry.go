package churn

import (
	"foces/internal/core"
	"foces/internal/telemetry"
)

// SetTelemetry wires the manager to a churn metric set and, via det, to
// the detection metric set its engines record into. Both may be nil to
// detach. The wiring survives epochs: every engine generation built by
// a later Apply (and every lazily rebuilt full engine) inherits det
// automatically.
//
// Call before detection traffic starts: the current engine generation
// is re-wired in place, which must not race a Detect in flight.
func (m *Manager) SetTelemetry(det *telemetry.DetectionMetrics, ch *telemetry.ChurnMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.det = det
	m.tel = ch
	if m.sliced != nil {
		m.sliced.SetTelemetry(det)
	}
	if m.fullOK && m.full != nil {
		if det == nil {
			m.full.SetTelemetry(nil, "")
		} else {
			m.full.SetTelemetry(det, core.EngineFull)
		}
	}
	if ch != nil {
		ch.Epoch.Set(float64(m.epoch))
	}
}
