// Package persist serializes a FOCES deployment's detection baseline —
// topology, header layout and controller rules — as a self-contained
// JSON document. Loading re-runs FCM generation, so a cached baseline
// is always internally consistent with the code that reads it (no risk
// of a stale matrix disagreeing with its own metadata).
//
// The topology is stored as a replayable construction log (AddSwitch /
// Connect / AddHost in an order that reproduces the exact port
// numbering), derived from the built graph.
package persist

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// formatVersion guards against reading documents written by an
// incompatible build.
const formatVersion = 1

// document is the on-disk shape.
type document struct {
	Version int        `json:"version"`
	Name    string     `json:"name"`
	Layout  []fieldDTO `json:"layout"`
	Ops     []opDTO    `json:"topology_ops"`
	Rules   []ruleDTO  `json:"rules"`
}

type fieldDTO struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// opDTO is one topology construction step. Kind is "switch", "link" or
// "host".
type opDTO struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
	Tier string `json:"tier,omitempty"`
	A    int    `json:"a,omitempty"`
	B    int    `json:"b,omitempty"`
	IP   uint64 `json:"ip,omitempty"`
}

type ruleDTO struct {
	ID       int    `json:"id"`
	Switch   int    `json:"switch"`
	Priority int    `json:"priority"`
	Match    string `json:"match"` // hex of header.Space.MarshalBinary
	Action   int    `json:"action"`
	Port     int    `json:"port"`
}

// Save writes the deployment baseline (topology + layout + rules) of
// the FCM to w.
func Save(w io.Writer, t *topo.Topology, layout *header.Layout, rules []flowtable.Rule) error {
	ops, err := constructionLog(t)
	if err != nil {
		return err
	}
	doc := document{Version: formatVersion, Name: t.Name()}
	for _, f := range layout.Fields() {
		doc.Layout = append(doc.Layout, fieldDTO{Name: f.Name, Width: f.Width})
	}
	doc.Ops = ops
	for _, r := range rules {
		raw, err := r.Match.MarshalBinary()
		if err != nil {
			return fmt.Errorf("persist: rule %d match: %w", r.ID, err)
		}
		doc.Rules = append(doc.Rules, ruleDTO{
			ID:       r.ID,
			Switch:   int(r.Switch),
			Priority: r.Priority,
			Match:    hex.EncodeToString(raw),
			Action:   int(r.Action.Type),
			Port:     r.Action.Port,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Load reads a baseline document, rebuilds the topology and rules, and
// regenerates the FCM.
func Load(r io.Reader) (*fcm.FCM, *topo.Topology, *header.Layout, []flowtable.Rule, error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("persist: decode: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, nil, nil, nil, fmt.Errorf("persist: unsupported format version %d", doc.Version)
	}
	fields := make([]header.Field, 0, len(doc.Layout))
	for _, f := range doc.Layout {
		fields = append(fields, header.Field{Name: f.Name, Width: f.Width})
	}
	layout, err := header.NewLayout(fields...)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("persist: layout: %w", err)
	}
	b := topo.NewBuilder(doc.Name)
	var switches []topo.SwitchID
	for _, op := range doc.Ops {
		switch op.Kind {
		case "switch":
			switches = append(switches, b.AddSwitch(op.Name, op.Tier))
		case "link":
			if op.A < 0 || op.A >= len(switches) || op.B < 0 || op.B >= len(switches) {
				return nil, nil, nil, nil, fmt.Errorf("persist: link references unknown switch (%d, %d)", op.A, op.B)
			}
			b.Connect(switches[op.A], switches[op.B])
		case "host":
			if op.A < 0 || op.A >= len(switches) {
				return nil, nil, nil, nil, fmt.Errorf("persist: host references unknown switch %d", op.A)
			}
			b.AddHost(op.Name, op.IP, switches[op.A])
		default:
			return nil, nil, nil, nil, fmt.Errorf("persist: unknown op kind %q", op.Kind)
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("persist: rebuild topology: %w", err)
	}
	rules := make([]flowtable.Rule, 0, len(doc.Rules))
	for _, rd := range doc.Rules {
		raw, err := hex.DecodeString(rd.Match)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("persist: rule %d match hex: %w", rd.ID, err)
		}
		sp, _, err := header.UnmarshalSpace(raw)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("persist: rule %d match: %w", rd.ID, err)
		}
		rules = append(rules, flowtable.Rule{
			ID:       rd.ID,
			Switch:   topo.SwitchID(rd.Switch),
			Priority: rd.Priority,
			Match:    sp,
			Action:   flowtable.Action{Type: flowtable.ActionType(rd.Action), Port: rd.Port},
		})
	}
	// Baselines saved after rule churn have holes in the ID sequence
	// (controller IDs are never reclaimed), so regenerate over the full
	// rule-ID space rather than requiring dense IDs.
	space := 0
	for _, r := range rules {
		if r.ID+1 > space {
			space = r.ID + 1
		}
	}
	f, err := fcm.GenerateSparse(t, layout, rules, space)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("persist: regenerate fcm: %w", err)
	}
	return f, t, layout, rules, nil
}

// constructionLog derives a replayable op sequence from a built
// topology that reproduces the exact per-switch port numbering: every
// switch's ports must be created in their original order, so link and
// host ops are scheduled so that each op consumes the next pending
// port on every switch it touches.
func constructionLog(t *topo.Topology) ([]opDTO, error) {
	ops := make([]opDTO, 0, t.NumSwitches()+t.NumHosts())
	for _, s := range t.Switches() {
		ops = append(ops, opDTO{Kind: "switch", Name: s.Name, Tier: s.Tier})
	}
	// next[s] is the next port index of switch s awaiting replay;
	// nextHost is the next host ID awaiting replay (host IDs are dense
	// creation order, so replaying them out of order would renumber
	// hosts).
	next := make([]int, t.NumSwitches())
	nextHost := topo.HostID(0)
	remaining := 0
	for _, s := range t.Switches() {
		remaining += s.NumPorts()
	}
	for remaining > 0 {
		progressed := false
		for _, s := range t.Switches() {
			blocked := false
			for !blocked && next[s.ID] < s.NumPorts() {
				port := next[s.ID]
				peer, err := t.PeerAt(s.ID, port)
				if err != nil {
					return nil, err
				}
				switch peer.Kind {
				case topo.PeerHost:
					if peer.Host != nextHost {
						// An earlier host must be replayed first.
						blocked = true
						continue
					}
					h, err := t.Host(peer.Host)
					if err != nil {
						return nil, err
					}
					ops = append(ops, opDTO{Kind: "host", Name: h.Name, A: int(s.ID), IP: h.IP})
					nextHost++
					next[s.ID]++
					remaining--
					progressed = true
				case topo.PeerSwitch:
					// Replayable only when the peer's next pending port
					// is exactly the far end of this link.
					if peer.Switch == s.ID {
						return nil, fmt.Errorf("persist: self link at switch %d", s.ID)
					}
					if next[peer.Switch] == peer.Port {
						ops = append(ops, opDTO{Kind: "link", A: int(s.ID), B: int(peer.Switch)})
						next[s.ID]++
						next[peer.Switch]++
						remaining -= 2
						progressed = true
					} else {
						// Blocked on the peer; move to the next switch.
						blocked = true
					}
				default:
					return nil, fmt.Errorf("persist: unconnected port %d on switch %d", port, s.ID)
				}
			}
		}
		if !progressed {
			return nil, fmt.Errorf("persist: could not derive construction order (port dependency cycle)")
		}
	}
	return ops, nil
}
