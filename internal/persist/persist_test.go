package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func roundTrip(t *testing.T, name string, mode controller.PolicyMode) (*fcm.FCM, *fcm.FCM, *topo.Topology) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	original, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, top, layout, ctrl.Rules()); err != nil {
		t.Fatal(err)
	}
	loaded, _, _, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return original, loaded, top
}

func TestRoundTripAllTopologies(t *testing.T) {
	for _, name := range topo.EvaluationTopologies() {
		original, loaded, _ := roundTrip(t, name, controller.PairExact)
		if loaded.NumFlows() != original.NumFlows() || loaded.NumRules() != original.NumRules() {
			t.Fatalf("%s: dims changed: %dx%d vs %dx%d", name,
				loaded.NumRules(), loaded.NumFlows(), original.NumRules(), original.NumFlows())
		}
		// The matrices must be identical entry-for-entry.
		if loaded.H.NNZ() != original.H.NNZ() {
			t.Fatalf("%s: nnz %d vs %d", name, loaded.H.NNZ(), original.H.NNZ())
		}
		for j, fl := range original.Flows {
			lf := loaded.Flows[j]
			if len(fl.RuleIDs) != len(lf.RuleIDs) {
				t.Fatalf("%s: flow %d history changed", name, j)
			}
			for i := range fl.RuleIDs {
				if fl.RuleIDs[i] != lf.RuleIDs[i] {
					t.Fatalf("%s: flow %d history changed", name, j)
				}
			}
		}
	}
}

func TestLoadedBaselineDetects(t *testing.T) {
	// A loaded baseline must drive detection against a live network
	// exactly like the original.
	_, loaded, top := roundTrip(t, "fattree4", controller.PairExact)
	net := dataplane.NewNetwork(top, layout)
	for _, r := range loaded.Rules {
		tbl, err := net.Table(r.Switch)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(loaded.H, loaded.CounterVector(net.CollectCounters()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("loaded baseline flagged clean traffic: AI=%v", res.Index)
	}
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	net.ResetCounters()
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	res, err = core.Detect(loaded.H, loaded.CounterVector(net.CollectCounters()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("loaded baseline missed attack: AI=%v", res.Index)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, _, _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, _, _, _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, _, _, _, err := Load(strings.NewReader(
		`{"version":1,"layout":[{"name":"dst_ip","width":32}],"topology_ops":[{"kind":"bogus"}]}`)); err == nil {
		t.Fatal("unknown op must error")
	}
	if _, _, _, _, err := Load(strings.NewReader(
		`{"version":1,"layout":[{"name":"dst_ip","width":32}],"topology_ops":[{"kind":"link","a":0,"b":1}]}`)); err == nil {
		t.Fatal("link before switches must error")
	}
	if _, _, _, _, err := Load(strings.NewReader(
		`{"version":1,"layout":[{"name":"dst_ip","width":32}],"topology_ops":[{"kind":"host","a":5}]}`)); err == nil {
		t.Fatal("host on unknown switch must error")
	}
}

func TestConstructionLogInterleavedPorts(t *testing.T) {
	// Hosts and links deliberately interleaved so port numbering is not
	// trivially sorted.
	b := topo.NewBuilder("interleaved")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	s2 := b.AddSwitch("s2", "")
	b.AddHost("h0", 100, s1)
	b.Connect(s1, s0)
	b.AddHost("h1", 101, s0)
	b.Connect(s2, s1)
	b.AddHost("h2", 102, s2)
	b.Connect(s0, s2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, top, layout, nil); err != nil {
		t.Fatal(err)
	}
	_, rebuilt, _, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every port must map to the same peer as the original.
	for _, s := range top.Switches() {
		rs, err := rebuilt.Switch(s.ID)
		if err != nil || rs.NumPorts() != s.NumPorts() {
			t.Fatalf("switch %d ports changed", s.ID)
		}
		for p := 0; p < s.NumPorts(); p++ {
			want, err := top.PeerAt(s.ID, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rebuilt.PeerAt(s.ID, p)
			if err != nil {
				t.Fatal(err)
			}
			if want.Kind != got.Kind || want.Switch != got.Switch || want.Port != got.Port || want.Host != got.Host {
				t.Fatalf("switch %d port %d: %+v vs %+v", s.ID, p, got, want)
			}
		}
	}
}
