package topo

import (
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	b.Connect(s0, s1)
	h := b.AddHost("h0", hostIP(0), s0)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSwitches() != 2 || top.NumHosts() != 1 || top.NumLinks() != 1 {
		t.Fatalf("got %d switches %d hosts %d links", top.NumSwitches(), top.NumHosts(), top.NumLinks())
	}
	hh, err := top.Host(h)
	if err != nil || hh.Attach != s0 {
		t.Fatalf("host attach = %v err=%v", hh, err)
	}
	p, err := top.PortToward(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := top.PeerAt(s0, p)
	if err != nil || peer.Kind != PeerSwitch || peer.Switch != s1 {
		t.Fatalf("peer = %+v err=%v", peer, err)
	}
	back, err := top.PeerAt(s1, peer.Port)
	if err != nil || back.Switch != s0 {
		t.Fatalf("back peer = %+v err=%v", back, err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("t")
	s0 := b.AddSwitch("s0", "")
	b.Connect(s0, s0)
	if _, err := b.Build(); err == nil {
		t.Fatal("self link must fail build")
	}

	b2 := NewBuilder("t2")
	s := b2.AddSwitch("s0", "")
	b2.Connect(s, SwitchID(99))
	if _, err := b2.Build(); err == nil {
		t.Fatal("unknown switch must fail build")
	}

	b3 := NewBuilder("t3")
	s3 := b3.AddSwitch("s0", "")
	b3.AddHost("h0", 42, s3)
	b3.AddHost("h1", 42, s3)
	if _, err := b3.Build(); err == nil {
		t.Fatal("duplicate IP must fail build")
	}
}

func TestDisconnectedValidate(t *testing.T) {
	b := NewBuilder("t")
	b.AddSwitch("s0", "")
	b.AddSwitch("s1", "")
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected graph must fail validation")
	}
}

func TestShortestPathLinear(t *testing.T) {
	top, err := Linear(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := top.ShortestPath(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Fatalf("path len = %d, want 5", len(p))
	}
	for i, sw := range p {
		if sw != SwitchID(i) {
			t.Fatalf("path[%d] = %d", i, sw)
		}
	}
	same, err := top.ShortestPath(2, 2)
	if err != nil || len(same) != 1 || same[0] != 2 {
		t.Fatalf("self path = %v err=%v", same, err)
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	top, err := Ring(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Opposite side of an even ring has two equal-cost paths; the
	// deterministic tie-break must always pick the same one.
	first, err := top.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := top.ShortestPath(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != len(first) {
			t.Fatalf("nondeterministic path length")
		}
		for j := range p {
			if p[j] != first[j] {
				t.Fatalf("nondeterministic path: %v vs %v", p, first)
			}
		}
	}
}

func TestTreeToConsistentWithShortestPath(t *testing.T) {
	top, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	root := top.Hosts()[0].Attach
	tree, err := top.TreeTo(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range top.Switches() {
		want, err := top.ShortestPath(s.ID, root)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tree.PathVia(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("tree path length %d != bfs %d for switch %d", len(got), len(want), s.ID)
		}
		if tree.Dist[s.ID] != len(want)-1 {
			t.Fatalf("tree dist %d != %d", tree.Dist[s.ID], len(want)-1)
		}
	}
}

func TestTableITopologySizes(t *testing.T) {
	cases := []struct {
		name            string
		switches, hosts int
		flows           int // ordered host pairs
	}{
		{"stanford", 26, 26, 650},
		{"fattree4", 20, 16, 240},
		{"bcube14", 24, 16, 240},
		{"dcell14", 25, 20, 380},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if got := top.NumSwitches(); got != tc.switches {
				t.Errorf("switches = %d, want %d", got, tc.switches)
			}
			if got := top.NumHosts(); got != tc.hosts {
				t.Errorf("hosts = %d, want %d", got, tc.hosts)
			}
			if got := top.NumHosts() * (top.NumHosts() - 1); got != tc.flows {
				t.Errorf("host pairs = %d, want %d", got, tc.flows)
			}
			if err := top.Validate(); err != nil {
				t.Errorf("validate: %v", err)
			}
		})
	}
}

func TestFatTreeStructure(t *testing.T) {
	top, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[string]int{}
	for _, s := range top.Switches() {
		tiers[s.Tier]++
	}
	if tiers["core"] != 4 || tiers["agg"] != 8 || tiers["edge"] != 8 {
		t.Fatalf("tiers = %v", tiers)
	}
	// Every edge switch has 2 hosts + 2 agg links in FatTree(4).
	for _, s := range top.Switches() {
		if s.Tier == "edge" && s.NumPorts() != 4 {
			t.Fatalf("edge switch %s has %d ports, want 4", s.Name, s.NumPorts())
		}
	}
	if d := top.Diameter(); d != 4 {
		t.Fatalf("fat-tree diameter = %d, want 4", d)
	}
}

func TestFatTreeRejectsOdd(t *testing.T) {
	if _, err := FatTree(3); err == nil {
		t.Fatal("odd arity must error")
	}
	if _, err := FatTree(0); err == nil {
		t.Fatal("zero arity must error")
	}
}

func TestBCubeStructure(t *testing.T) {
	top, err := BCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	proxies, levels := 0, 0
	for _, s := range top.Switches() {
		switch s.Tier {
		case "hostproxy":
			proxies++
			// proxy: 1 host port + (k+1)=2 level links.
			if s.NumPorts() != 3 {
				t.Fatalf("proxy %s has %d ports, want 3", s.Name, s.NumPorts())
			}
		case "level":
			levels++
			if s.NumPorts() != 4 {
				t.Fatalf("level switch %s has %d ports, want 4", s.Name, s.NumPorts())
			}
		}
	}
	if proxies != 16 || levels != 8 {
		t.Fatalf("proxies=%d levels=%d", proxies, levels)
	}
}

func TestInsertDigit(t *testing.T) {
	// s encodes remaining digits after removing position l.
	cases := []struct{ s, d, l, n, want int }{
		{0, 3, 0, 4, 3},  // digits: (0) with 3 at pos0 -> 03 base4 = 3
		{1, 2, 0, 4, 6},  // high=1 -> 1*4 + 2 = 6
		{1, 2, 1, 4, 9},  // low=1, d=2 at pos1 -> 2*4+1 = 9
		{5, 1, 1, 4, 21}, // s=5 -> high=1,low=1 -> 1*16+1*4+1 = 21
	}
	for _, c := range cases {
		if got := insertDigit(c.s, c.d, c.l, c.n); got != c.want {
			t.Errorf("insertDigit(%d,%d,%d,%d) = %d, want %d", c.s, c.d, c.l, c.n, got, c.want)
		}
	}
}

func TestDCellStructure(t *testing.T) {
	top, err := DCell(4)
	if err != nil {
		t.Fatal(err)
	}
	// Each server proxy: 1 mini link + 1 cross link + 1 host = 3 ports.
	for _, s := range top.Switches() {
		if s.Tier == "hostproxy" && s.NumPorts() != 3 {
			t.Fatalf("server %s has %d ports, want 3", s.Name, s.NumPorts())
		}
		if s.Tier == "mini" && s.NumPorts() != 4 {
			t.Fatalf("mini %s has %d ports, want 4", s.Name, s.NumPorts())
		}
	}
}

func TestStanfordShape(t *testing.T) {
	top, err := Stanford()
	if err != nil {
		t.Fatal(err)
	}
	if d := top.Diameter(); d < 2 || d > 6 {
		t.Fatalf("stanford diameter = %d, want backbone-like 2..6", d)
	}
	if avg := top.AvgPathLength(); avg <= 0 || avg > 6 {
		t.Fatalf("avg path length = %v", avg)
	}
}

func TestGridAndRingGenerators(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSwitches() != 12 || g.NumLinks() != 17 {
		t.Fatalf("grid: %d switches %d links", g.NumSwitches(), g.NumLinks())
	}
	r, err := Ring(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSwitches() != 5 || r.NumHosts() != 10 || r.NumLinks() != 5 {
		t.Fatalf("ring: %d/%d/%d", r.NumSwitches(), r.NumHosts(), r.NumLinks())
	}
	if _, err := Ring(2, 1); err == nil {
		t.Fatal("ring(2) must error")
	}
	if _, err := Grid(0, 1); err == nil {
		t.Fatal("grid(0,1) must error")
	}
	if _, err := Linear(0, 1); err == nil {
		t.Fatal("linear(0) must error")
	}
	if _, err := DCell(1); err == nil {
		t.Fatal("dcell(1) must error")
	}
	if _, err := BCube(1, 1); err == nil {
		t.Fatal("bcube(1,1) must error")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown topology must error")
	}
	for _, name := range EvaluationTopologies() {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestHostByIP(t *testing.T) {
	top, err := Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := top.Hosts()[1]
	got, ok := top.HostByIP(h.IP)
	if !ok || got.ID != h.ID {
		t.Fatalf("HostByIP = %v ok=%v", got, ok)
	}
	if _, ok := top.HostByIP(1); ok {
		t.Fatal("absent IP must not resolve")
	}
}

func TestHostPathEndpoints(t *testing.T) {
	top, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	hs := top.Hosts()
	p, err := top.HostPath(hs[0].ID, hs[len(hs)-1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != hs[0].Attach || p[len(p)-1] != hs[len(hs)-1].Attach {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if _, err := top.HostPath(HostID(99), hs[0].ID); err == nil {
		t.Fatal("unknown host must error")
	}
}
