package topo

import "fmt"

// ShortestPath returns a deterministic shortest switch path from src to
// dst inclusive, using BFS with ties broken toward the lowest-ID
// predecessor. It returns an error when no path exists.
func (t *Topology) ShortestPath(src, dst SwitchID) ([]SwitchID, error) {
	if _, err := t.Switch(src); err != nil {
		return nil, err
	}
	if _, err := t.Switch(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return []SwitchID{src}, nil
	}
	prev := t.bfsFrom(src)
	if prev[dst] == -2 {
		return nil, fmt.Errorf("topo: no path from switch %d to %d", src, dst)
	}
	return assemble(prev, src, dst), nil
}

// bfsFrom runs BFS from src and returns the predecessor array (-2 means
// unreached, -1 marks the source). Neighbour lists are sorted, so the
// resulting shortest-path tree is deterministic.
func (t *Topology) bfsFrom(src SwitchID) []SwitchID {
	prev := make([]SwitchID, len(t.switches))
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := make([]SwitchID, 0, len(t.switches))
	queue = append(queue, src)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.adj[cur] {
			if prev[n] == -2 {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return prev
}

func assemble(prev []SwitchID, src, dst SwitchID) []SwitchID {
	var rev []SwitchID
	for cur := dst; cur != -1; cur = prev[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathTree holds the deterministic shortest-path tree rooted at one
// destination switch: for every other switch, the next hop toward the
// root. Controllers use destination-rooted trees so that rules computed
// per destination agree across sources (per-destination aggregation).
type PathTree struct {
	Root SwitchID
	// Next[sw] is the next hop from sw toward Root; Next[Root] = Root.
	// Unreachable switches map to -2.
	Next []SwitchID
	// Dist[sw] is the hop distance from sw to Root (-1 if unreachable).
	Dist []int
}

// TreeTo builds a shortest-path tree toward root. Among equal-cost
// next hops, each switch picks one deterministically by hashing
// (switch, root), which spreads per-destination trees across parallel
// fabric paths the way ECMP hashing does in real fat-tree deployments.
func (t *Topology) TreeTo(root SwitchID) (*PathTree, error) {
	if _, err := t.Switch(root); err != nil {
		return nil, err
	}
	dist := t.bfsDist(root)
	tree := &PathTree{Root: root, Next: make([]SwitchID, len(t.switches)), Dist: dist}
	for i := range tree.Next {
		sw := SwitchID(i)
		switch {
		case sw == root:
			tree.Next[sw] = root
		case dist[sw] < 0:
			tree.Next[sw] = -2
		default:
			cands := t.downhillNeighbors(sw, dist)
			tree.Next[sw] = cands[int(mix64(uint64(sw)<<32|uint64(root))%uint64(len(cands)))]
		}
	}
	return tree, nil
}

// bfsDist returns hop distances from root (-1 when unreachable).
func (t *Topology) bfsDist(root SwitchID) []int {
	dist := make([]int, len(t.switches))
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := make([]SwitchID, 0, len(t.switches))
	queue = append(queue, root)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.adj[cur] {
			if dist[n] < 0 {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// downhillNeighbors lists sw's neighbors one hop closer to the BFS
// root, in ascending ID order.
func (t *Topology) downhillNeighbors(sw SwitchID, dist []int) []SwitchID {
	var out []SwitchID
	for _, n := range t.adj[sw] {
		if dist[n] >= 0 && dist[n] == dist[sw]-1 {
			out = append(out, n)
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer, used for deterministic ECMP
// hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ECMPPath returns a deterministic shortest path from src to dst whose
// equal-cost choices are selected by hashing key at every hop, so
// different keys (flows) spread across parallel paths while the same
// key always takes the same path.
func (t *Topology) ECMPPath(src, dst SwitchID, key uint64) ([]SwitchID, error) {
	if _, err := t.Switch(src); err != nil {
		return nil, err
	}
	if _, err := t.Switch(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return []SwitchID{src}, nil
	}
	dist := t.bfsDist(dst)
	if dist[src] < 0 {
		return nil, fmt.Errorf("topo: no path from switch %d to %d", src, dst)
	}
	path := make([]SwitchID, 0, dist[src]+1)
	cur := src
	for hop := uint64(0); ; hop++ {
		path = append(path, cur)
		if cur == dst {
			return path, nil
		}
		cands := t.downhillNeighbors(cur, dist)
		cur = cands[int(mix64(key^mix64(uint64(cur))^hop)%uint64(len(cands)))]
	}
}

// ECMPHostPath returns the ECMP switch path for traffic from host a to
// host b, keyed by the host pair.
func (t *Topology) ECMPHostPath(a, b HostID) ([]SwitchID, error) {
	ha, err := t.Host(a)
	if err != nil {
		return nil, err
	}
	hb, err := t.Host(b)
	if err != nil {
		return nil, err
	}
	return t.ECMPPath(ha.Attach, hb.Attach, uint64(a)<<32|uint64(b))
}

// PathVia returns the switch path from src to the tree's root.
func (pt *PathTree) PathVia(src SwitchID) ([]SwitchID, error) {
	if int(src) >= len(pt.Next) || src < 0 || pt.Next[src] == -2 {
		return nil, fmt.Errorf("topo: switch %d unreachable from root %d", src, pt.Root)
	}
	path := []SwitchID{src}
	for cur := src; cur != pt.Root; {
		cur = pt.Next[cur]
		path = append(path, cur)
	}
	return path, nil
}

// HostPath returns the switch path carrying traffic from host a to host
// b, from a's attachment switch to b's attachment switch inclusive.
func (t *Topology) HostPath(a, b HostID) ([]SwitchID, error) {
	ha, err := t.Host(a)
	if err != nil {
		return nil, err
	}
	hb, err := t.Host(b)
	if err != nil {
		return nil, err
	}
	return t.ShortestPath(ha.Attach, hb.Attach)
}

// Diameter returns the longest shortest-path hop count over all switch
// pairs (0 for single-switch networks).
func (t *Topology) Diameter() int {
	max := 0
	for _, s := range t.switches {
		tree, err := t.TreeTo(s.ID)
		if err != nil {
			continue
		}
		for _, d := range tree.Dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AvgPathLength returns the mean shortest-path hop count over all
// ordered host pairs (a measure used to sanity-check generators).
func (t *Topology) AvgPathLength() float64 {
	total, count := 0, 0
	for _, src := range t.hosts {
		for _, dst := range t.hosts {
			if src.ID == dst.ID {
				continue
			}
			p, err := t.HostPath(src.ID, dst.ID)
			if err != nil {
				continue
			}
			total += len(p) - 1
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}
