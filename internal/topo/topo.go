// Package topo models SDN network topologies: switches, hosts, ports and
// links, with deterministic shortest-path routing queries. It provides
// generators for the four topologies used in the FOCES evaluation
// (a Stanford-like backbone, FatTree(k), BCube(n,k), DCell(n,1)) plus
// small synthetic shapes for tests.
//
// BCube and DCell are server-centric designs in which hosts forward
// traffic. As in the paper's Mininet setup, each forwarding host is
// modelled as a proxy switch with a single attached host, which is why
// BCube(1,4) has 24 switches for 16 hosts and DCell(1,4) has 25 switches
// for 20 hosts (Table I).
package topo

import (
	"errors"
	"fmt"
	"sort"
)

// SwitchID identifies a switch within a topology. IDs are dense and
// start at 0 in creation order.
type SwitchID int

// HostID identifies a host within a topology. IDs are dense and start
// at 0 in creation order.
type HostID int

// PeerKind distinguishes what sits on the far side of a port.
type PeerKind int

// Peer kinds.
const (
	PeerNone PeerKind = iota // unconnected port
	PeerSwitch
	PeerHost
)

// Peer describes the entity attached to a switch port.
type Peer struct {
	Kind   PeerKind
	Switch SwitchID // valid when Kind == PeerSwitch
	Port   int      // peer's local port number when Kind == PeerSwitch
	Host   HostID   // valid when Kind == PeerHost
}

// Switch is a forwarding element.
type Switch struct {
	ID    SwitchID
	Name  string
	Tier  string // optional role label: "core", "agg", "edge", "hostproxy", ...
	ports []Peer // index = local port number
}

// NumPorts reports how many ports have been allocated on the switch.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Host is an end host attached to exactly one switch port.
type Host struct {
	ID     HostID
	Name   string
	IP     uint64 // packed IPv4
	Attach SwitchID
	Port   int // local port number on Attach
}

// Topology is an immutable network graph built via Builder.
type Topology struct {
	name     string
	switches []*Switch
	hosts    []*Host
	// adj[sw] lists neighbouring switches in ascending ID order for
	// deterministic BFS.
	adj map[SwitchID][]SwitchID
	// portTo[sw][nbr] is the local port on sw that leads to nbr. With
	// parallel links the lowest-numbered port wins.
	portTo map[SwitchID]map[SwitchID]int
}

// Name reports the topology's name.
func (t *Topology) Name() string { return t.name }

// NumSwitches reports the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumHosts reports the number of hosts.
func (t *Topology) NumHosts() int { return len(t.hosts) }

// Switches returns the switches in ID order. The returned slice is
// shared; callers must not mutate it.
func (t *Topology) Switches() []*Switch { return t.switches }

// Hosts returns hosts in ID order. The returned slice is shared; callers
// must not mutate it.
func (t *Topology) Hosts() []*Host { return t.hosts }

// Switch returns the switch with the given ID.
func (t *Topology) Switch(id SwitchID) (*Switch, error) {
	if id < 0 || int(id) >= len(t.switches) {
		return nil, fmt.Errorf("topo: no switch %d", id)
	}
	return t.switches[id], nil
}

// Host returns the host with the given ID.
func (t *Topology) Host(id HostID) (*Host, error) {
	if id < 0 || int(id) >= len(t.hosts) {
		return nil, fmt.Errorf("topo: no host %d", id)
	}
	return t.hosts[id], nil
}

// HostByIP returns the host with the given packed IPv4 address.
func (t *Topology) HostByIP(ip uint64) (*Host, bool) {
	for _, h := range t.hosts {
		if h.IP == ip {
			return h, true
		}
	}
	return nil, false
}

// PeerAt reports what is connected at the given switch port.
func (t *Topology) PeerAt(sw SwitchID, port int) (Peer, error) {
	s, err := t.Switch(sw)
	if err != nil {
		return Peer{}, err
	}
	if port < 0 || port >= len(s.ports) {
		return Peer{}, fmt.Errorf("topo: switch %d has no port %d", sw, port)
	}
	return s.ports[port], nil
}

// PortToward returns the local port on from that leads directly to the
// neighbouring switch to.
func (t *Topology) PortToward(from, to SwitchID) (int, error) {
	p, ok := t.portTo[from][to]
	if !ok {
		return 0, fmt.Errorf("topo: switch %d has no link to switch %d", from, to)
	}
	return p, nil
}

// Neighbors returns the neighbouring switch IDs of sw in ascending
// order. The returned slice is shared; callers must not mutate it.
func (t *Topology) Neighbors(sw SwitchID) []SwitchID { return t.adj[sw] }

// Validate checks structural invariants: every host attached to a valid
// switch/port, links symmetric, and the switch graph connected (when
// there is at least one switch).
func (t *Topology) Validate() error {
	for _, h := range t.hosts {
		p, err := t.PeerAt(h.Attach, h.Port)
		if err != nil {
			return fmt.Errorf("topo: host %q: %w", h.Name, err)
		}
		if p.Kind != PeerHost || p.Host != h.ID {
			return fmt.Errorf("topo: host %q attach port does not point back", h.Name)
		}
	}
	for _, s := range t.switches {
		for port, p := range s.ports {
			if p.Kind != PeerSwitch {
				continue
			}
			back, err := t.PeerAt(p.Switch, p.Port)
			if err != nil {
				return fmt.Errorf("topo: switch %q port %d: %w", s.Name, port, err)
			}
			if back.Kind != PeerSwitch || back.Switch != s.ID || back.Port != port {
				return fmt.Errorf("topo: asymmetric link at switch %q port %d", s.Name, port)
			}
		}
	}
	if len(t.switches) == 0 {
		return nil
	}
	seen := make(map[SwitchID]bool, len(t.switches))
	queue := []SwitchID{t.switches[0].ID}
	seen[t.switches[0].ID] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.adj[cur] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	if len(seen) != len(t.switches) {
		return fmt.Errorf("topo: switch graph disconnected: reached %d of %d", len(seen), len(t.switches))
	}
	return nil
}

// NumLinks counts distinct switch-to-switch links.
func (t *Topology) NumLinks() int {
	n := 0
	for _, s := range t.switches {
		for _, p := range s.ports {
			if p.Kind == PeerSwitch {
				n++
			}
		}
	}
	return n / 2
}

// Builder incrementally constructs a Topology.
type Builder struct {
	t   *Topology
	err error
}

// NewBuilder returns a Builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: &Topology{
		name:   name,
		adj:    make(map[SwitchID][]SwitchID),
		portTo: make(map[SwitchID]map[SwitchID]int),
	}}
}

// AddSwitch creates a switch and returns its ID.
func (b *Builder) AddSwitch(name, tier string) SwitchID {
	id := SwitchID(len(b.t.switches))
	b.t.switches = append(b.t.switches, &Switch{ID: id, Name: name, Tier: tier})
	return id
}

// Connect links two switches with a fresh port on each side.
func (b *Builder) Connect(a, c SwitchID) {
	if b.err != nil {
		return
	}
	if err := b.check(a); err != nil {
		b.err = err
		return
	}
	if err := b.check(c); err != nil {
		b.err = err
		return
	}
	if a == c {
		b.err = fmt.Errorf("topo: self-link on switch %d", a)
		return
	}
	sa, sc := b.t.switches[a], b.t.switches[c]
	pa, pc := len(sa.ports), len(sc.ports)
	sa.ports = append(sa.ports, Peer{Kind: PeerSwitch, Switch: c, Port: pc})
	sc.ports = append(sc.ports, Peer{Kind: PeerSwitch, Switch: a, Port: pa})
	b.t.adj[a] = insertSorted(b.t.adj[a], c)
	b.t.adj[c] = insertSorted(b.t.adj[c], a)
	if b.t.portTo[a] == nil {
		b.t.portTo[a] = make(map[SwitchID]int)
	}
	if b.t.portTo[c] == nil {
		b.t.portTo[c] = make(map[SwitchID]int)
	}
	if _, ok := b.t.portTo[a][c]; !ok {
		b.t.portTo[a][c] = pa
	}
	if _, ok := b.t.portTo[c][a]; !ok {
		b.t.portTo[c][a] = pc
	}
}

// AddHost creates a host with the given packed IPv4 address and attaches
// it to a fresh port on sw.
func (b *Builder) AddHost(name string, ip uint64, sw SwitchID) HostID {
	if b.err != nil {
		return -1
	}
	if err := b.check(sw); err != nil {
		b.err = err
		return -1
	}
	for _, h := range b.t.hosts {
		if h.IP == ip {
			b.err = fmt.Errorf("topo: duplicate host IP %d (%q and %q)", ip, h.Name, name)
			return -1
		}
	}
	id := HostID(len(b.t.hosts))
	s := b.t.switches[sw]
	port := len(s.ports)
	s.ports = append(s.ports, Peer{Kind: PeerHost, Host: id})
	b.t.hosts = append(b.t.hosts, &Host{ID: id, Name: name, IP: ip, Attach: sw, Port: port})
	return id
}

func (b *Builder) check(id SwitchID) error {
	if id < 0 || int(id) >= len(b.t.switches) {
		return fmt.Errorf("topo: unknown switch %d", id)
	}
	return nil
}

// Build finalizes and validates the topology. The Builder must not be
// used afterwards.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.t == nil {
		return nil, errors.New("topo: builder already consumed")
	}
	t := b.t
	b.t = nil
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func insertSorted(s []SwitchID, v SwitchID) []SwitchID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
