package topo

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"foces/internal/header"
)

// hostIP allocates sequential addresses in 10.0.0.0/8.
func hostIP(i int) uint64 {
	i++ // skip .0.0.0
	return header.IPv4(10, byte(i>>16), byte(i>>8), byte(i))
}

// FatTree builds the standard k-ary fat-tree: (k/2)^2 core switches, k
// pods of k/2 aggregation and k/2 edge switches, and k/2 hosts per edge
// switch. k must be even and >= 2. FatTree(4) matches Table I: 20
// switches, 16 hosts.
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and >= 2, got %d", k)
	}
	b := NewBuilder(fmt.Sprintf("FatTree(%d)", k))
	half := k / 2
	core := make([]SwitchID, half*half)
	for i := range core {
		core[i] = b.AddSwitch(fmt.Sprintf("core%d", i), "core")
	}
	hostN := 0
	for pod := 0; pod < k; pod++ {
		aggs := make([]SwitchID, half)
		for j := 0; j < half; j++ {
			aggs[j] = b.AddSwitch(fmt.Sprintf("agg%d_%d", pod, j), "agg")
			// Aggregation switch j serves core group j.
			for c := 0; c < half; c++ {
				b.Connect(aggs[j], core[j*half+c])
			}
		}
		for j := 0; j < half; j++ {
			edge := b.AddSwitch(fmt.Sprintf("edge%d_%d", pod, j), "edge")
			for _, a := range aggs {
				b.Connect(edge, a)
			}
			for h := 0; h < half; h++ {
				b.AddHost(fmt.Sprintf("h%d_%d_%d", pod, j, h), hostIP(hostN), edge)
				hostN++
			}
		}
	}
	return b.Build()
}

// BCube builds BCube(n, k): n^(k+1) hosts and (k+1)*n^k level switches.
// Hosts forward in BCube, so each host is modelled as a proxy switch
// (tier "hostproxy") with the real host attached, matching the paper's
// OVS-based setup. BCube(4, 1) therefore has 8 + 16 = 24 switches and 16
// hosts (Table I's BCube(1,4)).
func BCube(n, k int) (*Topology, error) {
	if n < 2 || k < 0 {
		return nil, fmt.Errorf("topo: bcube needs n >= 2, k >= 0; got n=%d k=%d", n, k)
	}
	b := NewBuilder(fmt.Sprintf("BCube(%d,%d)", k, n))
	numHosts := pow(n, k+1)
	proxies := make([]SwitchID, numHosts)
	for h := 0; h < numHosts; h++ {
		proxies[h] = b.AddSwitch(fmt.Sprintf("srv%d", h), "hostproxy")
	}
	// Level-l switch group has n^k switches. Switch (l, s) connects the n
	// hosts whose digit string with digit l removed equals s.
	for l := 0; l <= k; l++ {
		for s := 0; s < pow(n, k); s++ {
			sw := b.AddSwitch(fmt.Sprintf("sw%d_%d", l, s), "level")
			for d := 0; d < n; d++ {
				b.Connect(sw, proxies[insertDigit(s, d, l, n)])
			}
		}
	}
	for h := 0; h < numHosts; h++ {
		b.AddHost(fmt.Sprintf("h%d", h), hostIP(h), proxies[h])
	}
	return b.Build()
}

// insertDigit inserts digit d at position l (base n) into the digit
// string encoded by s.
func insertDigit(s, d, l, n int) int {
	lowMod := pow(n, l)
	high, low := s/lowMod, s%lowMod
	return high*lowMod*n + d*lowMod + low
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// DCell builds DCell(n, 1): n+1 DCell_0 units, each with one
// mini-switch and n forwarding servers, with one cross link per server
// pair of units. Servers are modelled as proxy switches with attached
// hosts, so DCell(4, 1) has 5 + 20 = 25 switches and 20 hosts
// (Table I's DCell(1,4)).
func DCell(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: dcell needs n >= 2, got %d", n)
	}
	b := NewBuilder(fmt.Sprintf("DCell(1,%d)", n))
	units := n + 1
	servers := make([][]SwitchID, units)
	hostN := 0
	for u := 0; u < units; u++ {
		mini := b.AddSwitch(fmt.Sprintf("mini%d", u), "mini")
		servers[u] = make([]SwitchID, n)
		for s := 0; s < n; s++ {
			srv := b.AddSwitch(fmt.Sprintf("srv%d_%d", u, s), "hostproxy")
			servers[u][s] = srv
			b.Connect(srv, mini)
		}
	}
	// Standard DCell_1 wiring: for i < j, connect server j-1 of unit i to
	// server i of unit j.
	for i := 0; i < units; i++ {
		for j := i + 1; j < units; j++ {
			b.Connect(servers[i][j-1], servers[j][i])
		}
	}
	for u := 0; u < units; u++ {
		for s := 0; s < n; s++ {
			b.AddHost(fmt.Sprintf("h%d_%d", u, s), hostIP(hostN), servers[u][s])
			hostN++
		}
	}
	return b.Build()
}

// Stanford builds a synthesized 26-switch backbone sized like the
// Stanford campus network used in the paper (Table I row 1): 2 core
// routers, 10 backbone routers each dual-homed to the cores, and 14
// zone routers each dual-homed to two backbone routers, with one host
// per switch. The real Stanford configs are not redistributable; this
// deterministic stand-in matches the published switch/host/flow counts
// and a comparable diameter.
func Stanford() (*Topology, error) {
	b := NewBuilder("Stanford")
	core := [2]SwitchID{
		b.AddSwitch("core0", "core"),
		b.AddSwitch("core1", "core"),
	}
	b.Connect(core[0], core[1])
	backbone := make([]SwitchID, 10)
	for i := range backbone {
		backbone[i] = b.AddSwitch(fmt.Sprintf("bb%d", i), "backbone")
		b.Connect(backbone[i], core[i%2])
		b.Connect(backbone[i], core[(i+1)%2])
	}
	zones := make([]SwitchID, 14)
	for i := range zones {
		zones[i] = b.AddSwitch(fmt.Sprintf("zone%d", i), "zone")
		b.Connect(zones[i], backbone[i%10])
		b.Connect(zones[i], backbone[(i+3)%10])
	}
	all := append(append(core[:], backbone...), zones...)
	for i, sw := range all {
		b.AddHost(fmt.Sprintf("h%d", i), hostIP(i), sw)
	}
	return b.Build()
}

// Linear builds a chain of n switches with hostsPer hosts attached to
// each switch. Useful for tests and worked examples.
func Linear(n, hostsPer int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: linear needs n >= 1, got %d", n)
	}
	b := NewBuilder(fmt.Sprintf("Linear(%d)", n))
	prev := SwitchID(-1)
	hostN := 0
	for i := 0; i < n; i++ {
		sw := b.AddSwitch(fmt.Sprintf("s%d", i), "")
		if prev >= 0 {
			b.Connect(prev, sw)
		}
		for h := 0; h < hostsPer; h++ {
			b.AddHost(fmt.Sprintf("h%d_%d", i, h), hostIP(hostN), sw)
			hostN++
		}
		prev = sw
	}
	return b.Build()
}

// Ring builds a cycle of n switches (n >= 3) with hostsPer hosts each.
func Ring(n, hostsPer int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs n >= 3, got %d", n)
	}
	b := NewBuilder(fmt.Sprintf("Ring(%d)", n))
	ids := make([]SwitchID, n)
	hostN := 0
	for i := 0; i < n; i++ {
		ids[i] = b.AddSwitch(fmt.Sprintf("s%d", i), "")
	}
	for i := 0; i < n; i++ {
		b.Connect(ids[i], ids[(i+1)%n])
	}
	for i := 0; i < n; i++ {
		for h := 0; h < hostsPer; h++ {
			b.AddHost(fmt.Sprintf("h%d_%d", i, h), hostIP(hostN), ids[i])
			hostN++
		}
	}
	return b.Build()
}

// Grid builds a rows x cols mesh with one host per switch.
func Grid(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: grid needs positive dims, got %dx%d", rows, cols)
	}
	b := NewBuilder(fmt.Sprintf("Grid(%dx%d)", rows, cols))
	ids := make([]SwitchID, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ids[r*cols+c] = b.AddSwitch(fmt.Sprintf("s%d_%d", r, c), "")
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Connect(ids[r*cols+c], ids[r*cols+c+1])
			}
			if r+1 < rows {
				b.Connect(ids[r*cols+c], ids[(r+1)*cols+c])
			}
		}
	}
	for i, id := range ids {
		b.AddHost(fmt.Sprintf("h%d", i), hostIP(i), id)
	}
	return b.Build()
}

// Jellyfish builds a seeded random degree-regular topology of n
// switches with hostsPer hosts each (Singla et al., "Jellyfish:
// Networking Data Centers Randomly"). It exercises FOCES on
// unstructured fabrics where no tier symmetry helps the detector. The
// construction retries stub matching until the graph is simple and
// connected, so the same seed always yields the same network.
func Jellyfish(n, degree, hostsPer int, seed int64) (*Topology, error) {
	if n < 3 || degree < 2 || degree >= n {
		return nil, fmt.Errorf("topo: jellyfish needs 3 <= n, 2 <= degree < n; got n=%d degree=%d", n, degree)
	}
	if n*degree%2 != 0 {
		return nil, fmt.Errorf("topo: jellyfish needs n*degree even; got %d*%d", n, degree)
	}
	rng := rand.New(rand.NewSource(seed))
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges, ok := randomRegularEdges(rng, n, degree)
		if !ok {
			continue
		}
		b := NewBuilder(fmt.Sprintf("Jellyfish(%d,%d)", n, degree))
		ids := make([]SwitchID, n)
		for i := range ids {
			ids[i] = b.AddSwitch(fmt.Sprintf("s%d", i), "")
		}
		for _, e := range edges {
			b.Connect(ids[e[0]], ids[e[1]])
		}
		hostN := 0
		for i := 0; i < n; i++ {
			for h := 0; h < hostsPer; h++ {
				b.AddHost(fmt.Sprintf("h%d_%d", i, h), hostIP(hostN), ids[i])
				hostN++
			}
		}
		top, err := b.Build()
		if err != nil {
			continue // disconnected draw; retry
		}
		return top, nil
	}
	return nil, fmt.Errorf("topo: jellyfish(%d,%d) failed to converge after %d attempts", n, degree, maxAttempts)
}

// randomRegularEdges pairs stubs uniformly at random, rejecting self
// loops and parallel edges.
func randomRegularEdges(rng *rand.Rand, n, degree int) ([][2]int, bool) {
	stubs := make([]int, 0, n*degree)
	for v := 0; v < n; v++ {
		for d := 0; d < degree; d++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	seen := make(map[[2]int]bool, len(stubs)/2)
	edges := make([][2]int, 0, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			return nil, false
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			return nil, false
		}
		seen[key] = true
		edges = append(edges, key)
	}
	return edges, true
}

// ByName builds one of the four evaluation topologies by its paper name:
// "stanford", "fattree4", "bcube14", "dcell14", or parameterized
// "fattree<k>".
func ByName(name string) (*Topology, error) {
	switch name {
	case "stanford":
		return Stanford()
	case "fattree4":
		return FatTree(4)
	case "fattree8":
		return FatTree(8)
	case "bcube14":
		return BCube(4, 1)
	case "dcell14":
		return DCell(4)
	default:
		if rest, ok := strings.CutPrefix(name, "fattree"); ok {
			k, err := strconv.Atoi(rest)
			if err == nil && k >= 2 && k%2 == 0 {
				return FatTree(k)
			}
			return nil, fmt.Errorf("topo: fattree parameter %q must be an even integer >= 2", rest)
		}
		return nil, fmt.Errorf("topo: unknown topology %q", name)
	}
}

// EvaluationTopologies lists the four Table I topology names in paper
// order.
func EvaluationTopologies() []string {
	return []string{"stanford", "fattree4", "bcube14", "dcell14"}
}
