package topo

import "testing"

func TestJellyfishStructure(t *testing.T) {
	top, err := Jellyfish(20, 4, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSwitches() != 20 || top.NumHosts() != 20 {
		t.Fatalf("dims %d/%d", top.NumSwitches(), top.NumHosts())
	}
	// Degree-regular: every switch has degree links + hostsPer host port.
	for _, s := range top.Switches() {
		if s.NumPorts() != 5 {
			t.Fatalf("switch %s has %d ports, want 5", s.Name, s.NumPorts())
		}
	}
	if top.NumLinks() != 20*4/2 {
		t.Fatalf("links = %d", top.NumLinks())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	a, err := Jellyfish(12, 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Jellyfish(12, 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Switches() {
		an := a.Neighbors(s.ID)
		bn := b.Neighbors(s.ID)
		if len(an) != len(bn) {
			t.Fatal("same seed produced different graphs")
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
	c, err := Jellyfish(12, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, s := range a.Switches() {
		an, cn := a.Neighbors(s.ID), c.Neighbors(s.ID)
		if len(an) != len(cn) {
			same = false
			break
		}
		for i := range an {
			if an[i] != cn[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestJellyfishValidation(t *testing.T) {
	if _, err := Jellyfish(2, 2, 1, 1); err == nil {
		t.Fatal("n < 3 must error")
	}
	if _, err := Jellyfish(10, 1, 1, 1); err == nil {
		t.Fatal("degree < 2 must error")
	}
	if _, err := Jellyfish(10, 10, 1, 1); err == nil {
		t.Fatal("degree >= n must error")
	}
	if _, err := Jellyfish(5, 3, 1, 1); err == nil {
		t.Fatal("odd stub count must error")
	}
}
