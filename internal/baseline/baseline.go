// Package baseline implements the statistics-verification baselines
// FOCES is compared against in §I and §VII:
//
//   - CheckPerFlow is a FADE-style per-flow conservation checker. It
//     verifies, flow by flow, that the counters along a monitored
//     flow's rule path agree. It only works when every rule on the
//     path is dedicated to that flow — which is exactly the flow-table
//     overhead the paper criticizes; DedicatedRuleOverhead quantifies
//     it.
//
//   - CheckPortConservation is a FlowMon-style per-port checker. It
//     verifies that each switch transmits what it receives, using
//     OpenFlow port statistics. It needs no dedicated rules but has a
//     smaller detection scope: anomalies that preserve per-port totals
//     (e.g. a port swapper that keeps forwarding packets, just the
//     wrong way) pass unnoticed.
package baseline

import (
	"fmt"
	"sort"

	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

// PerFlowOptions tunes the FADE-style checker.
type PerFlowOptions struct {
	// RelTol is the allowed relative spread (max-min)/max between
	// counters of the same flow before flagging; zero selects 0.05.
	RelTol float64
	// AbsTol is the volume below which a flow is too small to judge;
	// zero selects 1.
	AbsTol float64
}

func (o PerFlowOptions) withDefaults() PerFlowOptions {
	if o.RelTol == 0 {
		o.RelTol = 0.05
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1
	}
	return o
}

// PerFlowReport is the outcome of a per-flow conservation check.
type PerFlowReport struct {
	Anomalous bool
	// SuspectFlows lists monitored flow IDs violating conservation, in
	// ascending order.
	SuspectFlows []int
	// CheckedFlows counts the monitored flows (the method's detection
	// scope).
	CheckedFlows int
	// DedicatedRules counts the counter rules the method needs in
	// switch flow tables (one per monitored flow per hop).
	DedicatedRules int
}

// CheckPerFlow runs FADE-style conservation over the monitored flow
// IDs using the counter vector y. It fails when a monitored flow's
// rules aggregate other flows, since per-flow conservation is then
// ill-defined without installing dedicated rules.
func CheckPerFlow(f *fcm.FCM, monitored []int, y []float64, opts PerFlowOptions) (PerFlowReport, error) {
	opts = opts.withDefaults()
	if len(y) != f.NumRules() {
		return PerFlowReport{}, fmt.Errorf("baseline: counter vector has %d entries, want %d", len(y), f.NumRules())
	}
	rep := PerFlowReport{CheckedFlows: len(monitored)}
	for _, id := range monitored {
		if id < 0 || id >= f.NumFlows() {
			return PerFlowReport{}, fmt.Errorf("baseline: unknown flow %d", id)
		}
		fl := f.Flows[id]
		rep.DedicatedRules += len(fl.RuleIDs)
		min, max := -1.0, -1.0
		for _, rid := range fl.RuleIDs {
			if f.H.RowNNZ(rid) != 1 {
				return PerFlowReport{}, fmt.Errorf(
					"baseline: rule %d aggregates %d flows; per-flow checking needs dedicated counter rules",
					rid, f.H.RowNNZ(rid))
			}
			v := y[rid]
			if min < 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max < opts.AbsTol {
			continue // nothing flowing; cannot judge
		}
		if (max-min)/max > opts.RelTol {
			rep.SuspectFlows = append(rep.SuspectFlows, id)
		}
	}
	sort.Ints(rep.SuspectFlows)
	rep.Anomalous = len(rep.SuspectFlows) > 0
	return rep, nil
}

// DedicatedRuleOverhead counts the dedicated counter rules a FADE-style
// deployment would install to monitor the given flows (one rule per
// flow per hop). FOCES needs zero.
func DedicatedRuleOverhead(f *fcm.FCM, monitored []int) (int, error) {
	total := 0
	for _, id := range monitored {
		if id < 0 || id >= f.NumFlows() {
			return 0, fmt.Errorf("baseline: unknown flow %d", id)
		}
		total += len(f.Flows[id].RuleIDs)
	}
	return total, nil
}

// PortReport is the outcome of a FlowMon-style port-conservation
// check.
type PortReport struct {
	Anomalous bool
	// SuspectSwitches lists switches whose receive and transmit totals
	// diverge, in ascending ID order.
	SuspectSwitches []topo.SwitchID
}

// CheckPortConservation verifies per-switch packet conservation from
// port statistics: every packet received must be transmitted (loss
// happens on the wire, between tx and rx, so switch-internal
// conservation is exact in the absence of drops). relTol is the
// allowed relative divergence; pass 0 for a strict 1-packet tolerance.
func CheckPortConservation(statsByID map[topo.SwitchID]dataplane.PortCounters, relTol float64) PortReport {
	var rep PortReport
	ids := make([]topo.SwitchID, 0, len(statsByID))
	for sw := range statsByID {
		ids = append(ids, sw)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, sw := range ids {
		pc := statsByID[sw]
		rx, tx := float64(pc.RxTotal()), float64(pc.TxTotal())
		diff := rx - tx
		if diff < 0 {
			diff = -diff
		}
		limit := relTol * rx
		if limit < 1 {
			limit = 1
		}
		if diff > limit {
			rep.SuspectSwitches = append(rep.SuspectSwitches, sw)
		}
	}
	rep.Anomalous = len(rep.SuspectSwitches) > 0
	return rep
}
