package baseline

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func setup(t *testing.T, name string, mode controller.PolicyMode) (*topo.Topology, *dataplane.Network, *fcm.FCM) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, net, err := controller.Bootstrap(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return top, net, f
}

func allFlows(f *fcm.FCM) []int {
	ids := make([]int, f.NumFlows())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestPerFlowCleanNetwork(t *testing.T) {
	top, net, f := setup(t, "fattree4", controller.PairExact)
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	y := f.CounterVector(net.CollectCounters())
	rep, err := CheckPerFlow(f, allFlows(f), y, PerFlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Anomalous {
		t.Fatalf("clean network flagged: %+v", rep.SuspectFlows)
	}
	if rep.CheckedFlows != f.NumFlows() {
		t.Fatalf("checked %d flows", rep.CheckedFlows)
	}
	if rep.DedicatedRules != f.NumRules() {
		t.Fatalf("dedicated rules = %d, want %d (every pair rule)", rep.DedicatedRules, f.NumRules())
	}
}

func TestPerFlowCatchesDrop(t *testing.T) {
	top, net, f := setup(t, "fattree4", controller.PairExact)
	rng := rand.New(rand.NewSource(2))
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	y := f.CounterVector(net.CollectCounters())
	rep, err := CheckPerFlow(f, allFlows(f), y, PerFlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Anomalous {
		t.Fatal("drop attack must violate per-flow conservation")
	}
}

func TestPerFlowLimitedScopeMissesUnmonitoredFlow(t *testing.T) {
	// The paper's core criticism: a per-flow checker watching only a
	// subset of flows misses anomalies on the rest.
	top, net, f := setup(t, "fattree4", controller.PairExact)
	rng := rand.New(rand.NewSource(3))
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	y := f.CounterVector(net.CollectCounters())
	full, err := CheckPerFlow(f, allFlows(f), y, PerFlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Anomalous {
		t.Fatal("full monitoring must catch the drop")
	}
	// Monitor everything except the victim flows: the checker goes
	// blind while FOCES (network-wide) still detects.
	victims := make(map[int]bool, len(full.SuspectFlows))
	for _, id := range full.SuspectFlows {
		victims[id] = true
	}
	var subset []int
	for _, id := range allFlows(f) {
		if !victims[id] {
			subset = append(subset, id)
		}
	}
	partial, err := CheckPerFlow(f, subset, y, PerFlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Anomalous {
		t.Fatal("checker without the victim flow should be blind")
	}
	res, err := core.Detect(f.H, y, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatal("FOCES must detect network-wide regardless of monitoring scope")
	}
}

func TestPerFlowRejectsAggregatedRules(t *testing.T) {
	_, _, f := setup(t, "fattree4", controller.DestAggregate)
	y := make([]float64, f.NumRules())
	// Find a flow whose rules aggregate (merged classes guarantee one).
	for id := 0; id < f.NumFlows(); id++ {
		if _, err := CheckPerFlow(f, []int{id}, y, PerFlowOptions{}); err != nil {
			return // expected: aggregation rejected
		}
	}
	t.Fatal("aggregate-mode FCM must reject per-flow checking somewhere")
}

func TestPerFlowValidation(t *testing.T) {
	_, _, f := setup(t, "fattree4", controller.PairExact)
	if _, err := CheckPerFlow(f, []int{0}, []float64{1}, PerFlowOptions{}); err == nil {
		t.Fatal("bad counter length must error")
	}
	y := make([]float64, f.NumRules())
	if _, err := CheckPerFlow(f, []int{-1}, y, PerFlowOptions{}); err == nil {
		t.Fatal("unknown flow must error")
	}
	if _, err := DedicatedRuleOverhead(f, []int{99999}); err == nil {
		t.Fatal("unknown flow must error")
	}
	n, err := DedicatedRuleOverhead(f, allFlows(f))
	if err != nil || n != f.NumRules() {
		t.Fatalf("overhead = %d err=%v, want %d", n, err, f.NumRules())
	}
}

func TestPortConservationCleanAndLossy(t *testing.T) {
	top, net, _ := setup(t, "fattree4", controller.PairExact)
	if err := net.SetLinkLoss(0.1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	// Loss happens on the wire, so switch-internal conservation holds
	// exactly even at 10% loss.
	rep := CheckPortConservation(net.PortStats(), 0)
	if rep.Anomalous {
		t.Fatalf("lossy but honest network flagged: %v", rep.SuspectSwitches)
	}
}

func TestPortConservationCatchesDrop(t *testing.T) {
	top, net, _ := setup(t, "fattree4", controller.PairExact)
	rng := rand.New(rand.NewSource(5))
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	rep := CheckPortConservation(net.PortStats(), 0)
	if !rep.Anomalous {
		t.Fatal("dropping switch must break port conservation")
	}
	found := false
	for _, sw := range rep.SuspectSwitches {
		if sw == atk.Switch {
			found = true
		}
	}
	if !found {
		t.Fatalf("suspects %v must include the dropping switch %d", rep.SuspectSwitches, atk.Switch)
	}
}

func TestFlowMonMissesSwapButFOCESCatches(t *testing.T) {
	// The paper's §VII claim: FlowMon misses carefully-crafted
	// anomalies that preserve per-port conservation. Build one: with
	// destination-aggregate rules, divert an edge switch's inter-pod
	// uplink to the other aggregation switch. Packets still reach the
	// destination (dst-based forwarding recovers), every switch
	// transmits what it receives — but the counter distribution shifts
	// and FOCES flags it.
	top, net, f := setup(t, "fattree4", controller.DestAggregate)
	rng := rand.New(rand.NewSource(6))

	atk, ok := craftConservingSwap(t, top, net, f)
	if !ok {
		t.Fatal("could not craft a conserving swap on FatTree(4)")
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	sum, err := net.Run(rng, dataplane.UniformTraffic(top, 500))
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Delivered != tot.Offered {
		t.Fatalf("swap must keep packets flowing: %+v", tot)
	}
	rep := CheckPortConservation(net.PortStats(), 0)
	if rep.Anomalous {
		t.Fatalf("FlowMon-style check should be blind to the swap, flagged %v", rep.SuspectSwitches)
	}
	y := f.CounterVector(net.CollectCounters())
	res, err := core.Detect(f.H, y, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("FOCES must catch the swap (AI=%v)", res.Index)
	}
}

// craftConservingSwap finds an edge-switch rule for a remote
// destination and swaps its uplink to the other aggregation switch,
// guaranteeing the deviated packets still reach the destination
// without revisiting the compromised switch.
func craftConservingSwap(t *testing.T, top *topo.Topology, net *dataplane.Network, f *fcm.FCM) (dataplane.Attack, bool) {
	t.Helper()
	for _, r := range f.Rules {
		sw, err := top.Switch(r.Switch)
		if err != nil || sw.Tier != "edge" || r.Action.Type != flowtable.ActionOutput {
			continue
		}
		// Destination must be in a different pod: its attach switch must
		// not be this edge switch and the path must cross an agg.
		dstIP, exact, err := layout.SpaceField(r.Match, header.FieldDstIP)
		if err != nil || !exact {
			continue
		}
		dst, ok := top.HostByIP(dstIP)
		if !ok || dst.Attach == r.Switch {
			continue
		}
		// Current uplink peer.
		peer, err := top.PeerAt(r.Switch, r.Action.Port)
		if err != nil || peer.Kind != topo.PeerSwitch {
			continue
		}
		cur, err := top.Switch(peer.Switch)
		if err != nil || cur.Tier != "agg" {
			continue
		}
		// Find the other agg uplink.
		for port := 0; port < sw.NumPorts(); port++ {
			if port == r.Action.Port {
				continue
			}
			p, err := top.PeerAt(r.Switch, port)
			if err != nil || p.Kind != topo.PeerSwitch {
				continue
			}
			alt, err := top.Switch(p.Switch)
			if err != nil || alt.Tier != "agg" {
				continue
			}
			// The alternate agg must reach dst without revisiting.
			path, err := top.ShortestPath(p.Switch, dst.Attach)
			if err != nil {
				continue
			}
			revisits := false
			for _, hop := range path {
				if hop == r.Switch {
					revisits = true
				}
			}
			if revisits {
				continue
			}
			return dataplane.Attack{
				Switch:    r.Switch,
				RuleID:    r.ID,
				Kind:      dataplane.AttackPortSwap,
				NewAction: flowtable.Action{Type: flowtable.ActionOutput, Port: port},
			}, true
		}
	}
	return dataplane.Attack{}, false
}

func TestCheckPortConservationToleranceFloor(t *testing.T) {
	statsByID := map[topo.SwitchID]dataplane.PortCounters{
		0: {Rx: []uint64{10}, Tx: []uint64{10}},
		1: {Rx: []uint64{10}, Tx: []uint64{5}},
	}
	rep := CheckPortConservation(statsByID, 0)
	if !rep.Anomalous || len(rep.SuspectSwitches) != 1 || rep.SuspectSwitches[0] != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Large tolerance forgives the divergence.
	rep = CheckPortConservation(statsByID, 0.9)
	if rep.Anomalous {
		t.Fatalf("tolerant check flagged: %+v", rep)
	}
}
