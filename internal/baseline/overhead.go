package baseline

import "foces/internal/fcm"

// Per-packet and wire-format constants for the §VII overhead
// comparison.
const (
	// macBytesPerHop is the per-switch MAC a path-verification scheme
	// (SDNsec/ICING-style) embeds into every packet.
	macBytesPerHop = 8
	// pathVerifyFixedBytes is the fixed path-header overhead (path ID,
	// expiration) of SDNsec-style schemes.
	pathVerifyFixedBytes = 16
	// typicalPacketBytes is the reference packet size for bandwidth
	// overhead percentages.
	typicalPacketBytes = 1000
	// ofHeaderBytes is our control-channel frame header size.
	ofHeaderBytes = 10
	// flowStatBytes is one rule's entry in a FlowStatsReply.
	flowStatBytes = 12
	// flowStatsReplyFixedBytes is the fixed part of a FlowStatsReply
	// body.
	flowStatsReplyFixedBytes = 8
)

// OverheadReport quantifies the deployment costs §VII contrasts across
// the three families of detection tools, for one concrete network.
type OverheadReport struct {
	Flows, Rules int
	// AvgPathLen is the mean rule-path length over logical flows.
	AvgPathLen float64

	// FOCES: no extra rules, no packet headers; cost is the periodic
	// statistics collection on the control channel.
	FOCESExtraRules         int
	FOCESHeaderBytesPerPkt  int
	FOCESControlBytesPeriod int

	// Per-flow statistics verification (FADE / Chao et al.): dedicated
	// counter rules occupy flow-table space (TCAM).
	PerFlowDedicatedRules int

	// Path verification (SDNsec / REV): per-packet header space for
	// MACs plus switch crypto support.
	PathVerifyHeaderBytesPerPkt int
	// PathVerifyBandwidthPct is the header overhead relative to a
	// typical 1000-byte packet.
	PathVerifyBandwidthPct float64
}

// CompareOverheads computes the §VII overhead comparison for the
// network described by an FCM: what it would cost to monitor every
// flow with each approach.
func CompareOverheads(f *fcm.FCM) OverheadReport {
	rep := OverheadReport{Flows: f.NumFlows(), Rules: f.NumRules()}
	totalHops := 0
	for _, fl := range f.Flows {
		totalHops += len(fl.RuleIDs)
	}
	if f.NumFlows() > 0 {
		rep.AvgPathLen = float64(totalHops) / float64(f.NumFlows())
	}

	// FOCES reads the counters the forwarding rules already have: one
	// FlowStatsRequest/Reply per switch per period.
	perSwitchRules := make(map[int]int)
	for _, r := range f.Rules {
		perSwitchRules[int(r.Switch)]++
	}
	for _, n := range perSwitchRules {
		rep.FOCESControlBytesPeriod += ofHeaderBytes + // request
			ofHeaderBytes + flowStatsReplyFixedBytes + flowStatBytes*n // reply
	}

	// FADE-style per-flow checking needs a dedicated counter rule per
	// monitored flow per hop.
	rep.PerFlowDedicatedRules = totalHops

	// SDNsec-style path verification embeds a MAC per hop into every
	// packet.
	avgHeader := pathVerifyFixedBytes + int(rep.AvgPathLen*macBytesPerHop+0.5)
	rep.PathVerifyHeaderBytesPerPkt = avgHeader
	rep.PathVerifyBandwidthPct = 100 * float64(avgHeader) / typicalPacketBytes
	return rep
}
