package baseline

import (
	"testing"

	"foces/internal/controller"
)

func TestCompareOverheads(t *testing.T) {
	_, _, f := setup(t, "fattree4", controller.PairExact)
	rep := CompareOverheads(f)
	if rep.Flows != 240 || rep.Rules != f.NumRules() {
		t.Fatalf("dims: %+v", rep)
	}
	// FOCES piggybacks on forwarding rules: zero data-plane overhead.
	if rep.FOCESExtraRules != 0 || rep.FOCESHeaderBytesPerPkt != 0 {
		t.Fatalf("FOCES data-plane overhead must be zero: %+v", rep)
	}
	if rep.FOCESControlBytesPeriod <= 0 {
		t.Fatal("collection cost must be positive")
	}
	// FADE needs one dedicated rule per flow per hop = Σ path lengths,
	// which equals the pair-exact rule count.
	if rep.PerFlowDedicatedRules != f.NumRules() {
		t.Fatalf("dedicated rules = %d, want %d", rep.PerFlowDedicatedRules, f.NumRules())
	}
	// Path verification taxes every packet.
	if rep.PathVerifyHeaderBytesPerPkt < pathVerifyFixedBytes {
		t.Fatalf("path-verify header = %d", rep.PathVerifyHeaderBytesPerPkt)
	}
	if rep.PathVerifyBandwidthPct <= 0 || rep.PathVerifyBandwidthPct > 100 {
		t.Fatalf("bandwidth overhead = %v%%", rep.PathVerifyBandwidthPct)
	}
	if rep.AvgPathLen < 1 || rep.AvgPathLen > 10 {
		t.Fatalf("avg path length = %v", rep.AvgPathLen)
	}
}

func TestCompareOverheadsAggregate(t *testing.T) {
	// With aggregate rules FOCES's advantage grows: the per-flow
	// baseline still needs one rule per flow-hop, far more than the
	// installed aggregate rules.
	_, _, f := setup(t, "fattree4", controller.DestAggregate)
	rep := CompareOverheads(f)
	if rep.PerFlowDedicatedRules <= rep.Rules {
		t.Fatalf("aggregate mode: dedicated %d must exceed installed %d",
			rep.PerFlowDedicatedRules, rep.Rules)
	}
}
