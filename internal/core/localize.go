package core

import (
	"sort"

	"foces/internal/fcm"
	"foces/internal/topo"
)

// SwitchScore is one switch's share of detection error.
type SwitchScore struct {
	Switch topo.SwitchID
	// Score is the sum of error-vector entries over the switch's rules.
	Score float64
}

// AttributeDelta ranks switches by the error mass their rules carry —
// a lightweight localization alternative to per-slice indices: the
// compromised switch's neighbourhood accumulates the unexplained
// volume, so the top of the ranking points at the incident. It
// requires only the full-network Δ (no slicing).
func AttributeDelta(f *fcm.FCM, delta []float64) []SwitchScore {
	perSwitch := make(map[topo.SwitchID]float64)
	for rid, d := range delta {
		if rid < len(f.Rules) {
			perSwitch[f.Rules[rid].Switch] += d
		}
	}
	out := make([]SwitchScore, 0, len(perSwitch))
	for sw, score := range perSwitch {
		out = append(out, SwitchScore{Switch: sw, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// TopSuspects returns the switch IDs of the k highest-scoring entries.
func TopSuspects(scores []SwitchScore, k int) []topo.SwitchID {
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]topo.SwitchID, 0, k)
	for _, s := range scores[:k] {
		out = append(out, s.Switch)
	}
	return out
}
