package core

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// Slice is one per-switch sub-FCM (§IV-B): the rules of the switch plus
// their predecessor rules, and every flow matching at least one of
// them.
type Slice struct {
	Switch topo.SwitchID
	// RuleRows are the global rule IDs forming the slice's rows, in
	// ascending order.
	RuleRows []int
	// FlowCols are the flow IDs forming the slice's columns, in
	// ascending order.
	FlowCols []int
	// H is the sub-FCM restricted to RuleRows x FlowCols.
	H *matrix.CSR
}

// BuildSlices derives one slice per switch that has at least one rule,
// following the FCM-slicing construction: R(S) = (V_in ∪ V_out) \ r_s
// from the switch's Rule Bipartite Graph, F(S) = flows matching at
// least one rule of R(S).
func BuildSlices(f *fcm.FCM) ([]Slice, error) {
	// Predecessor sets per switch: for each flow history, rule r
	// preceding a rule on switch S joins V_in(S).
	vin := make(map[topo.SwitchID]map[int]bool)
	for _, fl := range f.Flows {
		for i, rid := range fl.RuleIDs {
			if i == 0 {
				continue
			}
			sw := f.Rules[rid].Switch
			if vin[sw] == nil {
				vin[sw] = make(map[int]bool)
			}
			vin[sw][fl.RuleIDs[i-1]] = true
		}
	}
	var slices []Slice
	for _, s := range f.Topology().Switches() {
		vout := f.RulesAt(s.ID)
		if len(vout) == 0 {
			continue
		}
		ruleSet := make(map[int]bool, len(vout))
		for _, rid := range vout {
			ruleSet[rid] = true
		}
		for rid := range vin[s.ID] {
			ruleSet[rid] = true
		}
		rows := make([]int, 0, len(ruleSet))
		for rid := range ruleSet {
			rows = append(rows, rid)
		}
		sort.Ints(rows)
		// F(S): flows with at least one rule in R(S).
		var cols []int
		for _, fl := range f.Flows {
			for _, rid := range fl.RuleIDs {
				if ruleSet[rid] {
					cols = append(cols, fl.ID)
					break
				}
			}
		}
		sub, err := f.H.SubMatrix(rows, cols)
		if err != nil {
			return nil, fmt.Errorf("core: slice for switch %d: %w", s.ID, err)
		}
		slices = append(slices, Slice{Switch: s.ID, RuleRows: rows, FlowCols: cols, H: sub})
	}
	return slices, nil
}

// SliceResult is one switch's detection outcome within a sliced run.
type SliceResult struct {
	Switch topo.SwitchID
	Result Result
}

// SlicedOutcome aggregates a sliced detection run (Algorithm 2) and the
// per-switch localization ranking (§IV-B's future-work extension).
type SlicedOutcome struct {
	// Anomalous is true when any slice's index exceeds the threshold
	// (Algorithm 2 returns at the first such switch; all are evaluated
	// here to support localization).
	Anomalous bool
	// PerSwitch holds each slice's result, in slice order.
	PerSwitch []SliceResult
	// Suspects ranks switches whose slice exceeded the threshold by
	// descending anomaly index: the most likely compromised last-hop
	// switches.
	Suspects []topo.SwitchID
}

// MaxIndex returns the largest finite-or-infinite anomaly index across
// slices (0 when there are none).
func (o SlicedOutcome) MaxIndex() float64 {
	max := 0.0
	for _, r := range o.PerSwitch {
		if r.Result.Index > max {
			max = r.Result.Index
		}
	}
	return max
}

// DetectSliced runs Algorithm 2 (Detect_Anomaly_Slicing): Algorithm 1
// independently on each per-switch sub-FCM against the corresponding
// sub-vector of y. It builds a throwaway SlicedDetector and runs it
// sequentially, re-factoring every slice on every call — loops that
// detect repeatedly against fixed rules should construct one
// SlicedDetector and reuse it.
func DetectSliced(slices []Slice, y []float64, opts Options) (SlicedOutcome, error) {
	sd, err := NewSlicedDetector(slices, len(y), opts)
	if err != nil {
		return SlicedOutcome{}, err
	}
	return sd.detect(y, opts, 1)
}
