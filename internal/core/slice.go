package core

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// Slice is one per-switch sub-FCM (§IV-B): the rules of the switch plus
// their predecessor rules, and every flow matching at least one of
// them.
type Slice struct {
	Switch topo.SwitchID
	// RuleRows are the global rule IDs forming the slice's rows, in
	// ascending order.
	RuleRows []int
	// FlowCols are the flow IDs forming the slice's columns, in
	// ascending order.
	FlowCols []int
	// H is the sub-FCM restricted to RuleRows x FlowCols.
	H *matrix.CSR
}

// BuildSlices derives one slice per switch that has at least one rule,
// following the FCM-slicing construction: R(S) = (V_in ∪ V_out) \ r_s
// from the switch's Rule Bipartite Graph, F(S) = flows matching at
// least one rule of R(S). Column assignment goes through a rule→slice
// inverse index so the whole construction is one pass over the flow
// histories, not one scan per switch — the churn subsystem rebuilds
// slices on every applied update, so this is on the per-update path.
func BuildSlices(f *fcm.FCM) ([]Slice, error) {
	// Predecessor sets per switch: for each flow history, rule r
	// preceding a rule on switch S joins V_in(S).
	vin := make(map[topo.SwitchID]map[int]bool)
	for _, fl := range f.Flows {
		for i, rid := range fl.RuleIDs {
			if i == 0 {
				continue
			}
			sw := f.Rules[rid].Switch
			if vin[sw] == nil {
				vin[sw] = make(map[int]bool)
			}
			vin[sw][fl.RuleIDs[i-1]] = true
		}
	}
	// V_out per switch: every installed rule (traffic-carrying or not),
	// skipping placeholder rows of retired rule IDs.
	vout := make(map[topo.SwitchID][]int)
	for _, r := range f.Rules {
		if r.Switch >= 0 {
			vout[r.Switch] = append(vout[r.Switch], r.ID)
		}
	}
	type protoSlice struct {
		sw   topo.SwitchID
		rows []int
	}
	var protos []protoSlice
	ruleSlices := make(map[int][]int) // rule ID -> indices into protos
	for _, s := range f.Topology().Switches() {
		out := vout[s.ID]
		if len(out) == 0 {
			continue
		}
		ruleSet := make(map[int]bool, len(out)+len(vin[s.ID]))
		for _, rid := range out {
			ruleSet[rid] = true
		}
		for rid := range vin[s.ID] {
			ruleSet[rid] = true
		}
		rows := make([]int, 0, len(ruleSet))
		for rid := range ruleSet {
			rows = append(rows, rid)
		}
		sort.Ints(rows)
		idx := len(protos)
		protos = append(protos, protoSlice{sw: s.ID, rows: rows})
		for _, rid := range rows {
			ruleSlices[rid] = append(ruleSlices[rid], idx)
		}
	}
	// F(S): flows with at least one rule in R(S), ascending by flow ID
	// (f.Flows is in column order).
	cols := make([][]int, len(protos))
	seen := make([]int, len(protos))
	for i := range seen {
		seen[i] = -1
	}
	for j, fl := range f.Flows {
		for _, rid := range fl.RuleIDs {
			for _, idx := range ruleSlices[rid] {
				if seen[idx] != j {
					seen[idx] = j
					cols[idx] = append(cols[idx], fl.ID)
				}
			}
		}
	}
	slices := make([]Slice, 0, len(protos))
	for i, p := range protos {
		sub, err := f.H.SubMatrix(p.rows, cols[i])
		if err != nil {
			return nil, fmt.Errorf("core: slice for switch %d: %w", p.sw, err)
		}
		slices = append(slices, Slice{Switch: p.sw, RuleRows: p.rows, FlowCols: cols[i], H: sub})
	}
	return slices, nil
}

// SliceResult is one switch's detection outcome within a sliced run.
type SliceResult struct {
	Switch topo.SwitchID
	Result Result
}

// SlicedOutcome aggregates a sliced detection run (Algorithm 2) and the
// per-switch localization ranking (§IV-B's future-work extension).
type SlicedOutcome struct {
	// Anomalous is true when any slice's index exceeds the threshold
	// (Algorithm 2 returns at the first such switch; all are evaluated
	// here to support localization).
	Anomalous bool
	// PerSwitch holds each slice's result, in slice order.
	PerSwitch []SliceResult
	// Suspects ranks switches whose slice exceeded the threshold by
	// descending anomaly index: the most likely compromised last-hop
	// switches.
	Suspects []topo.SwitchID
}

// MergeSliceResults aggregates per-slice results — one per slice, in
// slice order (ascending switch, the order BuildSlices emits) — into a
// SlicedOutcome. This is THE merge: SlicedDetector's parallel and
// sequential paths, its masked path, and the cluster coordinator's
// partial-verdict assembly all funnel through it, so a distributed run
// reproduces a local run's outcome (including Suspects order under
// index ties, which the stable sort preserves in slice order) exactly.
func MergeSliceResults(slices []Slice, results []Result) SlicedOutcome {
	var out SlicedOutcome
	type suspect struct {
		sw    topo.SwitchID
		index float64
	}
	var suspects []suspect
	for i, sl := range slices {
		out.PerSwitch = append(out.PerSwitch, SliceResult{Switch: sl.Switch, Result: results[i]})
		if results[i].Anomalous {
			out.Anomalous = true
			suspects = append(suspects, suspect{sw: sl.Switch, index: results[i].Index})
		}
	}
	sort.SliceStable(suspects, func(i, j int) bool { return suspects[i].index > suspects[j].index })
	for _, s := range suspects {
		out.Suspects = append(out.Suspects, s.sw)
	}
	return out
}

// MaxIndex returns the largest finite-or-infinite anomaly index across
// slices (0 when there are none).
func (o SlicedOutcome) MaxIndex() float64 {
	max := 0.0
	for _, r := range o.PerSwitch {
		if r.Result.Index > max {
			max = r.Result.Index
		}
	}
	return max
}

// DetectSliced runs Algorithm 2 (Detect_Anomaly_Slicing): Algorithm 1
// independently on each per-switch sub-FCM against the corresponding
// sub-vector of y. It builds a throwaway SlicedDetector and runs it
// sequentially, re-factoring every slice on every call — loops that
// detect repeatedly against fixed rules should construct one
// SlicedDetector and reuse it.
func DetectSliced(slices []Slice, y []float64, opts Options) (SlicedOutcome, error) {
	sd, err := NewSlicedDetector(slices, len(y), opts)
	if err != nil {
		return SlicedOutcome{}, err
	}
	return sd.detect(y, opts, 1)
}
