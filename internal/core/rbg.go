package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"foces/internal/fcm"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// virtualRule is the ID of r_s, the virtual rule prepended to every
// flow (Definition 3).
const virtualRule = -1

// RBGEdge is one edge of a Rule Bipartite Graph: flow(s) matching rule
// From immediately before rule To on switch S. From is virtualRule for
// flows whose first matched rule is on S. Edges are multigraph edges:
// two flows with different histories before the hop contribute two
// distinct parallel edges, while flows sharing the same prefix collapse
// into one (they are indistinguishable packet streams up to that
// point).
type RBGEdge struct {
	From, To int
	// AnomFlow marks edges contributed by the hypothetical anomalous
	// flow h' in a detectability analysis.
	AnomFlow bool
}

// RBG is the Rule Bipartite Graph of one switch with respect to a flow
// set (Definition 3).
type RBG struct {
	Switch topo.SwitchID
	Edges  []RBGEdge
}

// BuildRBG constructs the RBG of switch sw with respect to the FCM's
// flows plus an optional extra flow history hPrime (pass nil for the
// plain RBG, or the anomalous history for H̃ = H ∪ {h'}).
func BuildRBG(f *fcm.FCM, sw topo.SwitchID, hPrime []int) (*RBG, error) {
	g := &RBG{Switch: sw}
	seen := make(map[string]int) // edge identity -> index into Edges
	add := func(history []int, anom bool) error {
		for i, rid := range history {
			if rid < 0 || rid >= len(f.Rules) {
				return fmt.Errorf("core: rbg: rule %d out of range", rid)
			}
			if f.Rules[rid].Switch != sw {
				continue
			}
			from := virtualRule
			if i > 0 {
				from = history[i-1]
			}
			key := edgeKey(from, rid, history[:i])
			if j, ok := seen[key]; ok {
				if anom {
					g.Edges[j].AnomFlow = true
				}
				continue
			}
			seen[key] = len(g.Edges)
			g.Edges = append(g.Edges, RBGEdge{From: from, To: rid, AnomFlow: anom})
		}
		return nil
	}
	for _, fl := range f.Flows {
		if err := add(fl.RuleIDs, false); err != nil {
			return nil, err
		}
	}
	if hPrime != nil {
		if err := add(hPrime, true); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// edgeKey identifies a multigraph edge by endpoint pair and the
// pre-edge history (flows sharing the same prefix are one packet
// stream and collapse into a single edge).
func edgeKey(from, to int, prefix []int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(from))
	b.WriteByte('>')
	b.WriteString(strconv.Itoa(to))
	b.WriteByte('|')
	for i, r := range prefix {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r))
	}
	return b.String()
}

// HasLoopThroughAnomaly reports whether the RBG contains a cycle that
// includes at least one edge contributed by the anomalous flow h'
// (the loop condition of Theorem 2 / Lemma 5). In a multigraph, an
// edge e lies on a cycle iff its endpoints remain connected after
// removing e.
func (g *RBG) HasLoopThroughAnomaly() bool {
	for i, e := range g.Edges {
		if !e.AnomFlow {
			continue
		}
		if g.connectedWithout(i, e.From, e.To) {
			return true
		}
	}
	return false
}

// HasLoop reports whether the RBG contains any cycle (counting
// parallel multigraph edges).
func (g *RBG) HasLoop() bool {
	uf := newUnionFind()
	for _, e := range g.Edges {
		if !uf.union(e.From, e.To) {
			return true
		}
	}
	return false
}

// connectedWithout reports whether a and b are connected ignoring edge
// index skip.
func (g *RBG) connectedWithout(skip, a, b int) bool {
	uf := newUnionFind()
	for i, e := range g.Edges {
		if i == skip {
			continue
		}
		uf.union(e.From, e.To)
	}
	return uf.find(a) == uf.find(b)
}

// historySet canonicalizes a rule history as a set key.
func historySet(history []int) string {
	ids := append([]int(nil), history...)
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

type unionFind struct {
	parent map[int]int
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[int]int)} }

func (u *unionFind) find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the sets of a and b, returning false when they were
// already connected (i.e. the new edge closes a cycle).
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}

// Detectability is the verdict of the detectability analysis for one
// hypothetical forwarding anomaly FA(h, h').
type Detectability struct {
	// Algebraic is the exact Theorem 1 verdict: detectable iff h' lies
	// outside the column space of H.
	Algebraic bool
	// RBGLoopFree is the combinatorial Theorem 2 verdict: true when no
	// switch's RBG w.r.t. H̃ = H ∪ {h'} contains a cycle through an
	// h'-edge. Loop-free guarantees detectability for complete-path
	// deviations; a loop indicates the anomaly *may* be masked (exactly
	// undetectable when the network has no pivot rules, per the paper's
	// Lemma 5). Truncated histories (early drops absorbed by rule
	// aggregation) fall outside Theorem 2's scope — Algebraic remains
	// the ground truth there.
	RBGLoopFree bool
	// LoopSwitch is the first switch whose RBG closed a loop through
	// h' (-1 when RBGLoopFree).
	LoopSwitch topo.SwitchID
}

// AnalyzeDetectability evaluates whether a forwarding anomaly that
// changes some flow's rule history to hPrime is detectable, using both
// the algebraic ground truth (Theorem 1) and the RBG loop condition
// (Theorem 2).
func AnalyzeDetectability(f *fcm.FCM, hPrime []int) (Detectability, error) {
	if len(hPrime) == 0 {
		return Detectability{}, fmt.Errorf("core: empty anomalous history")
	}
	// Theorem 1 ground truth: h' ∈ span(columns of H)?
	col := make([]float64, f.NumRules())
	for _, rid := range hPrime {
		if rid < 0 || rid >= f.NumRules() {
			return Detectability{}, fmt.Errorf("core: anomalous history rule %d out of range", rid)
		}
		col[rid] = 1
	}
	inSpace, _, err := matrix.ResidualInColumnSpace(f.H, col, 1e-7)
	if err != nil {
		return Detectability{}, fmt.Errorf("core: algebraic detectability: %w", err)
	}
	d := Detectability{Algebraic: !inSpace, RBGLoopFree: true, LoopSwitch: -1}
	// A deviation onto exactly the rule set of an existing flow is
	// trivially masked: the observed counters read as extra volume on
	// that flow. Report it as a (degenerate) loop rather than relying on
	// prefix-collapsed edges.
	key := historySet(hPrime)
	for _, fl := range f.Flows {
		if historySet(fl.RuleIDs) == key {
			d.RBGLoopFree = false
			d.LoopSwitch = f.Rules[hPrime[0]].Switch
			return d, nil
		}
	}
	for _, s := range f.Topology().Switches() {
		g, err := BuildRBG(f, s.ID, hPrime)
		if err != nil {
			return Detectability{}, err
		}
		if g.HasLoopThroughAnomaly() {
			d.RBGLoopFree = false
			d.LoopSwitch = s.ID
			break
		}
	}
	return d, nil
}
