package core

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

func TestBuildSlicesFig2Structure(t *testing.T) {
	f := fig2FCM(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	// Every switch hosts exactly one rule, so 6 slices.
	if len(slices) != 6 {
		t.Fatalf("slices = %d, want 6", len(slices))
	}
	byID := make(map[topo.SwitchID]Slice, len(slices))
	for _, s := range slices {
		byID[s.Switch] = s
	}
	// S2's slice: V_out = {r2}; predecessor via flow a is r1;
	// flows matching {1,2} are a and b.
	s2 := byID[2]
	if len(s2.RuleRows) != 2 || s2.RuleRows[0] != 1 || s2.RuleRows[1] != 2 {
		t.Fatalf("S2 rows = %v, want [1 2]", s2.RuleRows)
	}
	if len(s2.FlowCols) != 2 || s2.FlowCols[0] != 0 || s2.FlowCols[1] != 1 {
		t.Fatalf("S2 cols = %v, want [0 1]", s2.FlowCols)
	}
	if s2.H.Rows() != 2 || s2.H.Cols() != 2 {
		t.Fatalf("S2 sub-FCM %dx%d", s2.H.Rows(), s2.H.Cols())
	}
	// S5's slice: V_out = {r5}; predecessors are r2 (flows a, b) and r4
	// (flow c); all flows match.
	s5 := byID[5]
	if len(s5.RuleRows) != 3 {
		t.Fatalf("S5 rows = %v", s5.RuleRows)
	}
	if len(s5.FlowCols) != 3 {
		t.Fatalf("S5 cols = %v", s5.FlowCols)
	}
}

func TestDetectSlicedFig2(t *testing.T) {
	f := fig2FCM(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig 2 anomalous counters: the deviated volume appears at r4
	// (row 3) which belongs to S3's slice.
	out, err := DetectSliced(slices, []float64{3, 3, 4, 3, 8, 12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Anomalous {
		t.Fatal("sliced detection must flag the Fig 2 anomaly")
	}
	if len(out.Suspects) == 0 {
		t.Fatal("suspects must be reported")
	}
	if out.MaxIndex() <= 0 {
		t.Fatal("max index must be positive")
	}
	// Clean counters must pass every slice.
	clean, err := f.H.MulVec([]float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err = DetectSliced(slices, clean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Anomalous || len(out.Suspects) != 0 {
		t.Fatalf("clean counters flagged: %+v", out)
	}
	if out.MaxIndex() != 0 {
		t.Fatalf("clean max index = %v", out.MaxIndex())
	}
}

func TestDetectSlicedValidation(t *testing.T) {
	f := fig2FCM(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectSliced(slices, []float64{1}, Options{}); err == nil {
		t.Fatal("short counter vector must error")
	}
}

// runAttackScenario bootstraps a topology, runs clean traffic, then
// applies an attack and returns (fcm, cleanY, attackedY).
func runAttackScenario(t *testing.T, name string, seed int64) (*fcm.FCM, []float64, []float64) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, net, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tm := dataplane.UniformTraffic(top, 1000)
	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	clean := f.CounterVector(net.CollectCounters())
	net.ResetCounters()
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackPortSwap)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	attacked := f.CounterVector(net.CollectCounters())
	return f, clean, attacked
}

func TestSlicingEquivalenceTheorem3(t *testing.T) {
	// Theorem 3: anomalies detectable without slicing stay detectable
	// with slicing. Validated empirically across seeds and topologies.
	for _, name := range []string{"fattree4", "bcube14"} {
		for seed := int64(1); seed <= 5; seed++ {
			f, clean, attacked := runAttackScenario(t, name, seed)
			slices, err := BuildSlices(f)
			if err != nil {
				t.Fatal(err)
			}
			base, err := Detect(f.H, attacked, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sliced, err := DetectSliced(slices, attacked, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if base.Anomalous && !sliced.Anomalous {
				t.Fatalf("%s seed %d: baseline detected but slicing missed", name, seed)
			}
			// Clean counters must stay clean for both.
			baseClean, err := Detect(f.H, clean, Options{})
			if err != nil {
				t.Fatal(err)
			}
			slicedClean, err := DetectSliced(slices, clean, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if baseClean.Anomalous || slicedClean.Anomalous {
				t.Fatalf("%s seed %d: clean counters flagged (base=%v sliced=%v)",
					name, seed, baseClean.Anomalous, slicedClean.Anomalous)
			}
		}
	}
}

func TestSliceSubFCMSmallerThanFull(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("no slices")
	}
	for _, s := range slices {
		if s.H.Rows() >= f.H.Rows() {
			t.Fatalf("switch %d slice has %d rows, full FCM %d — slicing must shrink",
				s.Switch, s.H.Rows(), f.H.Rows())
		}
		if s.H.Cols() > f.H.Cols() {
			t.Fatalf("slice has more columns than full FCM")
		}
	}
}
