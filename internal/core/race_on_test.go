//go:build race

package core

// raceEnabled reports whether the race detector instruments this test
// binary.
const raceEnabled = true
