package core

import (
	"time"

	"foces/internal/telemetry"
)

// Engine label values for telemetry families partitioned by "engine".
// EngineFull is the Algorithm 1 detector over the whole FCM;
// EngineSliced is the Algorithm 2 aggregate; EngineSlice tags the
// per-switch sub-results recorded inside a sliced run.
const (
	EngineFull   = "full"
	EngineSliced = "sliced"
	EngineSlice  = "slice"
)

// Verdict label values.
const (
	VerdictAnomalous = "anomalous"
	VerdictClean     = "clean"
)

// detTelemetry holds an engine's label-resolved telemetry children so
// the hot path touches only atomics — no map lookups, no label joins.
type detTelemetry struct {
	solve     *telemetry.Histogram
	residual  *telemetry.Histogram
	total     *telemetry.Histogram
	index     *telemetry.Histogram
	anomalous *telemetry.Counter
	clean     *telemetry.Counter
}

// SetTelemetry wires the detector to a metric set under the given
// engine label ("full" for the Algorithm 1 baseline engine). Pass nil
// to detach. Call before the detector is shared between goroutines:
// the field is read without synchronization on the detection path.
func (d *Detector) SetTelemetry(m *telemetry.DetectionMetrics, engine string) {
	if m == nil {
		d.tel = nil
		return
	}
	d.tel = &detTelemetry{
		solve:     m.SolveSeconds.With(engine),
		residual:  m.ResidualSeconds.With(engine),
		total:     m.DetectSeconds.With(engine),
		index:     m.AnomalyIndex.With(engine),
		anomalous: m.Verdicts.With(engine, VerdictAnomalous),
		clean:     m.Verdicts.With(engine, VerdictClean),
	}
}

// maxIndexSample caps anomaly-index observations: the AI can be +Inf
// (zero median error with non-zero max), which would make the
// histogram's running sum non-finite and break JSON snapshots. Every
// histogram bound is far below the cap, so bucketing is unaffected.
const maxIndexSample = 1e9

func indexSample(v float64) float64 {
	if v > maxIndexSample {
		return maxIndexSample
	}
	return v
}

// outcome records the end-to-end time, anomaly-index sample and
// verdict for one detection. Nil-safe so call sites need no guard.
func (t *detTelemetry) outcome(start time.Time, res Result) {
	if t == nil {
		return
	}
	t.total.ObserveDuration(time.Since(start).Nanoseconds())
	t.index.Observe(indexSample(res.Index))
	if res.Anomalous {
		t.anomalous.Inc()
	} else {
		t.clean.Inc()
	}
}

// slicedTelemetry is the SlicedDetector counterpart: stage timings and
// the aggregate verdict under engine="sliced", plus per-slice
// anomaly-index / verdict samples under engine="slice" recorded during
// the (serial) aggregation pass — the fan-out workers themselves stay
// uninstrumented so a wide fan-out pays no per-slice timer calls
// beyond the gather measurement.
type slicedTelemetry struct {
	gather         *telemetry.Histogram
	fanout         *telemetry.Histogram
	total          *telemetry.Histogram
	sliceIndex     *telemetry.Histogram
	anomalous      *telemetry.Counter
	clean          *telemetry.Counter
	sliceAnomalous *telemetry.Counter
	sliceClean     *telemetry.Counter
}

// SetTelemetry wires the sliced detector to a metric set. Pass nil to
// detach. Call before the detector is shared between goroutines. The
// per-slice sub-engines are left untouched: slice-grained samples are
// recorded by the aggregation pass under engine="slice".
func (sd *SlicedDetector) SetTelemetry(m *telemetry.DetectionMetrics) {
	if m == nil {
		sd.tel = nil
		return
	}
	sd.tel = &slicedTelemetry{
		gather:         m.GatherSeconds,
		fanout:         m.FanoutWidth,
		total:          m.DetectSeconds.With(EngineSliced),
		sliceIndex:     m.AnomalyIndex.With(EngineSlice),
		anomalous:      m.Verdicts.With(EngineSliced, VerdictAnomalous),
		clean:          m.Verdicts.With(EngineSliced, VerdictClean),
		sliceAnomalous: m.Verdicts.With(EngineSlice, VerdictAnomalous),
		sliceClean:     m.Verdicts.With(EngineSlice, VerdictClean),
	}
}

// slice records one per-switch sub-result during aggregation.
func (t *slicedTelemetry) slice(res Result) {
	if t == nil {
		return
	}
	t.sliceIndex.Observe(indexSample(res.Index))
	if res.Anomalous {
		t.sliceAnomalous.Inc()
	} else {
		t.sliceClean.Inc()
	}
}

// outcome records the end-to-end time and aggregate verdict of one
// sliced detection.
func (t *slicedTelemetry) outcome(start time.Time, anomalous bool) {
	if t == nil {
		return
	}
	t.total.ObserveDuration(time.Since(start).Nanoseconds())
	if anomalous {
		t.anomalous.Inc()
	} else {
		t.clean.Inc()
	}
}
