package core

import (
	"math/rand"
	"testing"

	"foces/internal/stats"
)

// TestAblationIndexDenominator quantifies the DESIGN.md ablation: the
// paper's median denominator separates attack from noise better than a
// mean denominator, because an anomaly's own large errors inflate the
// mean and depress the index.
func TestAblationIndexDenominator(t *testing.T) {
	f := fig2FCM(t)
	rng := rand.New(rand.NewSource(31))
	x := []float64{1000, 1200, 900}
	y0, err := f.H.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	attack := func(y []float64) {
		// Divert flow a onto the lower path.
		y[2] -= x[0]
		y[3] += x[0]
		y[4] += x[0]
	}
	var sepMedian, sepMean float64
	const trials = 50
	for i := 0; i < trials; i++ {
		noise := make([]float64, len(y0))
		for j := range noise {
			noise[j] = y0[j] + rng.NormFloat64()*15
		}
		attacked := append([]float64(nil), noise...)
		attack(attacked)

		medNoise, err := Detect(f.H, noise, Options{Denominator: DenomMedian})
		if err != nil {
			t.Fatal(err)
		}
		medAttack, err := Detect(f.H, attacked, Options{Denominator: DenomMedian})
		if err != nil {
			t.Fatal(err)
		}
		meanNoise, err := Detect(f.H, noise, Options{Denominator: DenomMean})
		if err != nil {
			t.Fatal(err)
		}
		meanAttack, err := Detect(f.H, attacked, Options{Denominator: DenomMean})
		if err != nil {
			t.Fatal(err)
		}
		sepMedian += medAttack.Index / (medNoise.Index + 1e-9)
		sepMean += meanAttack.Index / (meanNoise.Index + 1e-9)
	}
	if sepMedian <= sepMean {
		t.Fatalf("median separation %.1f must beat mean separation %.1f", sepMedian/trials, sepMean/trials)
	}
	t.Logf("attack/noise index ratio: median=%.1f mean=%.1f", sepMedian/trials, sepMean/trials)
}

func TestDenominatorString(t *testing.T) {
	if DenomMedian.String() != "median" || DenomMean.String() != "mean" || Denominator(0).String() != "unknown" {
		t.Fatal("Denominator strings wrong")
	}
}

func TestDenominatorSameVerdictOnPaperExample(t *testing.T) {
	// On the paper's clean-vs-anomalous Fig 2 example both denominators
	// agree (Δ has a single nonzero entry; median 0, mean small).
	f := fig2FCM(t)
	y := []float64{3, 3, 4, 3, 8, 12}
	for _, d := range []Denominator{DenomMedian, DenomMean} {
		res, err := Detect(f.H, y, Options{Denominator: d})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Anomalous {
			t.Fatalf("denominator %v missed the Fig 2 anomaly", d)
		}
	}
	_ = stats.DefaultThreshold
}
