package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"foces/internal/matrix"
	"foces/internal/stats"
	"foces/internal/topo"
)

// Detector is the prepared form of Algorithm 1 over a fixed flow-counter
// matrix: the O(n³) normal-equations factorization runs once at
// construction, after which every Detect call costs one sparse Hᵀy
// product, two triangular substitutions, one SpMV and order statistics.
// H only changes when the controller installs rules, so continuous
// monitors build one Detector per rule generation and reuse it every
// detection period (rebuild on any rule change — a stale factorization
// silently checks the wrong intent).
//
// A Detector is safe for concurrent Detect calls.
type Detector struct {
	h    *matrix.CSR
	opts Options
	ls   *matrix.PreparedLS // nil when H is degenerate or the solver is not Cholesky
	pool sync.Pool          // *detectScratch
	tel  *detTelemetry      // nil unless SetTelemetry wired a metric set
}

// detectScratch is the per-call reusable workspace; pooled so
// concurrent Detect calls never share buffers.
type detectScratch struct {
	ws  []float64 // triangular-solve workspace, len = Cols
	med []float64 // quickselect median scratch, len = Rows
}

// NewDetector prepares a detection engine for h. opts fixes the
// defaults used by Detect; DetectWithOptions can override them per
// call without re-factoring (only the Cholesky factorization is baked
// in — thresholds and denominators are applied at query time).
func NewDetector(h *matrix.CSR, opts Options) (*Detector, error) {
	d := &Detector{h: h, opts: opts}
	solver := opts.Solver
	if solver == 0 {
		solver = SolverCholesky
	}
	if solver == SolverCholesky && h.Rows() > 0 && h.Cols() > 0 {
		ls, err := matrix.PrepareLS(h, matrix.LeastSquaresOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: prepare detector: %w", err)
		}
		d.ls = ls
	}
	rows, cols := h.Rows(), h.Cols()
	d.pool.New = func() any {
		return &detectScratch{ws: make([]float64, cols), med: make([]float64, rows)}
	}
	return d, nil
}

// H returns the flow-counter matrix the engine was prepared for.
func (d *Detector) H() *matrix.CSR { return d.h }

// Detect runs Algorithm 1 on one period's counter vector using the
// options fixed at construction.
func (d *Detector) Detect(y []float64) (Result, error) {
	return d.DetectWithOptions(y, d.opts)
}

// DetectWithOptions runs Algorithm 1 with per-call options. The
// prepared factorization is used whenever the (resolved) solver is
// Cholesky; selecting SolverCG falls back to a per-call iterative
// solve.
func (d *Detector) DetectWithOptions(y []float64, opts Options) (Result, error) {
	h := d.h
	if h.Rows() != len(y) {
		return Result{}, fmt.Errorf("core: H is %dx%d but y has %d entries", h.Rows(), h.Cols(), len(y))
	}
	opts = opts.withDefaults(y)
	tel := d.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	if h.Rows() == 0 {
		// Nothing to check: an empty system is trivially consistent.
		res := Result{Delta: make([]float64, len(y))}
		tel.outcome(t0, res)
		return res, nil
	}
	if h.Cols() == 0 {
		// No flow is expected to touch these rules, so every counter's
		// expected value is exactly zero: any observed volume is an
		// inconsistency no flow-volume estimate can explain (this keeps
		// Theorem 3 intact for slices of rules outside all flow paths,
		// like rule r4 in the paper's Fig. 2).
		delta := make([]float64, len(y))
		for i, v := range y {
			delta[i] = math.Abs(v)
		}
		res := Result{Delta: delta, YHat: make([]float64, len(y))}
		res.ErrMax, _ = stats.Max(delta)
		res.Index = anomalyIndex(res.ErrMax, 0, opts.ZeroTol)
		res.Anomalous = res.Index > opts.Threshold
		tel.outcome(t0, res)
		return res, nil
	}
	sc := d.pool.Get().(*detectScratch)
	defer d.pool.Put(sc)
	var xHat []float64
	var err error
	if opts.Solver == SolverCholesky && d.ls != nil {
		xHat = make([]float64, h.Cols())
		err = d.ls.SolveInto(xHat, y, sc.ws)
	} else {
		xHat, err = solve(h, y, opts.Solver)
	}
	if err != nil {
		return Result{}, fmt.Errorf("core: volume estimate: %w", err)
	}
	var tResid time.Time
	if tel != nil {
		tResid = time.Now()
		tel.solve.ObserveDuration(tResid.Sub(t0).Nanoseconds())
	}
	yHat := make([]float64, h.Rows())
	if err := h.MulVecInto(yHat, xHat); err != nil {
		return Result{}, err
	}
	delta := make([]float64, h.Rows())
	for i := range delta {
		delta[i] = math.Abs(y[i] - yHat[i])
	}
	res := Result{Delta: delta, XHat: xHat, YHat: yHat}
	res.ErrMax, _ = stats.Max(delta)
	res.ErrMed = opts.denominatorInto(sc.med, delta)
	res.Index = anomalyIndex(res.ErrMax, res.ErrMed, opts.ZeroTol)
	res.Anomalous = res.Index > opts.Threshold
	if tel != nil {
		tel.residual.ObserveDuration(time.Since(tResid).Nanoseconds())
	}
	tel.outcome(t0, res)
	return res, nil
}

// SlicedDetector is the prepared form of Algorithm 2: one Detector per
// per-switch slice (each slice's sub-FCM factored once), the row-gather
// indices validated at build time, and the per-slice counter gathers
// drawn from a pooled workspace so steady-state periods allocate only
// their results. Detect fans the slices out over a bounded worker pool
// sized by GOMAXPROCS; the outcome (including Suspects order) is
// identical to a sequential run.
//
// A SlicedDetector is safe for concurrent Detect calls.
type SlicedDetector struct {
	slices   []Slice
	engines  []*Detector
	numRules int
	opts     Options
	workers  int
	pool     sync.Pool        // *slicedScratch
	tel      *slicedTelemetry // nil unless SetTelemetry wired a metric set
}

// slicedScratch holds one run's per-slice gather buffers. A run owns
// the whole set; each slice index is touched by exactly one worker.
type slicedScratch struct {
	subs [][]float64
}

// NewSlicedDetector prepares one engine per slice. numRules is the
// length of the full counter vector (FCM.NumRules()); every slice's
// RuleRows are bounds-checked against it here, once, instead of every
// detection period.
func NewSlicedDetector(slices []Slice, numRules int, opts Options) (*SlicedDetector, error) {
	engines := make([]*Detector, len(slices))
	for i, sl := range slices {
		for _, rid := range sl.RuleRows {
			if rid < 0 || rid >= numRules {
				return nil, fmt.Errorf("core: slice rule %d outside counter vector (%d)", rid, numRules)
			}
		}
		d, err := NewDetector(sl.H, opts)
		if err != nil {
			return nil, fmt.Errorf("core: slice switch %d: %w", sl.Switch, err)
		}
		engines[i] = d
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(slices) {
		workers = len(slices)
	}
	if workers < 1 {
		workers = 1
	}
	sd := &SlicedDetector{
		slices:   slices,
		engines:  engines,
		numRules: numRules,
		opts:     opts,
		workers:  workers,
	}
	sd.pool.New = func() any {
		sc := &slicedScratch{subs: make([][]float64, len(slices))}
		for i, sl := range slices {
			sc.subs[i] = make([]float64, len(sl.RuleRows))
		}
		return sc
	}
	return sd, nil
}

// NumSlices reports the number of prepared slices.
func (sd *SlicedDetector) NumSlices() int { return len(sd.slices) }

// Workers reports the worker-pool bound used by Detect.
func (sd *SlicedDetector) Workers() int { return sd.workers }

// Detect runs Algorithm 2 on one period's counter vector, slices in
// parallel, using the options fixed at construction.
func (sd *SlicedDetector) Detect(y []float64) (SlicedOutcome, error) {
	return sd.detect(y, sd.opts, sd.workers)
}

// DetectWithOptions runs Algorithm 2 with per-call options (the
// prepared per-slice factorizations are reused).
func (sd *SlicedDetector) DetectWithOptions(y []float64, opts Options) (SlicedOutcome, error) {
	return sd.detect(y, opts, sd.workers)
}

// DetectSequential runs the slices one by one on the calling
// goroutine — the reference execution the parallel path must match
// exactly, and a debugging aid when a slice misbehaves.
func (sd *SlicedDetector) DetectSequential(y []float64) (SlicedOutcome, error) {
	return sd.detect(y, sd.opts, 1)
}

func (sd *SlicedDetector) detect(y []float64, opts Options, workers int) (SlicedOutcome, error) {
	if len(y) != sd.numRules {
		return SlicedOutcome{}, fmt.Errorf("core: counter vector has %d entries, sliced detector expects %d", len(y), sd.numRules)
	}
	tel := sd.tel
	var t0 time.Time
	var gatherNS atomic.Int64
	if tel != nil {
		t0 = time.Now()
	}
	sc := sd.pool.Get().(*slicedScratch)
	defer sd.pool.Put(sc)
	results := make([]Result, len(sd.slices))
	errs := make([]error, len(sd.slices))
	run := func(i int) {
		sl := sd.slices[i]
		sub := sc.subs[i]
		if tel != nil {
			g0 := time.Now()
			for j, rid := range sl.RuleRows {
				sub[j] = y[rid]
			}
			gatherNS.Add(time.Since(g0).Nanoseconds())
		} else {
			for j, rid := range sl.RuleRows {
				sub[j] = y[rid]
			}
		}
		results[i], errs[i] = sd.engines[i].DetectWithOptions(sub, opts)
	}
	if workers <= 1 || len(sd.slices) <= 1 {
		for i := range sd.slices {
			run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range sd.slices {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if tel != nil {
		tel.gather.ObserveDuration(gatherNS.Load())
		tel.fanout.Observe(float64(len(sd.slices)))
	}
	// Aggregate in slice order so parallel and sequential runs produce
	// identical outcomes, including Suspects order under index ties.
	var out SlicedOutcome
	type suspect struct {
		sw    topo.SwitchID
		index float64
	}
	var suspects []suspect
	for i, sl := range sd.slices {
		if errs[i] != nil {
			return SlicedOutcome{}, fmt.Errorf("core: slice switch %d: %w", sl.Switch, errs[i])
		}
		tel.slice(results[i])
		out.PerSwitch = append(out.PerSwitch, SliceResult{Switch: sl.Switch, Result: results[i]})
		if results[i].Anomalous {
			out.Anomalous = true
			suspects = append(suspects, suspect{sw: sl.Switch, index: results[i].Index})
		}
	}
	sort.SliceStable(suspects, func(i, j int) bool { return suspects[i].index > suspects[j].index })
	for _, s := range suspects {
		out.Suspects = append(out.Suspects, s.sw)
	}
	tel.outcome(t0, out.Anomalous)
	return out, nil
}
