package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"foces/internal/matrix"
	"foces/internal/stats"
)

// Detector is the prepared form of Algorithm 1 over a fixed flow-counter
// matrix: the O(n³) normal-equations factorization runs once at
// construction, after which every Detect call costs one sparse Hᵀy
// product, two triangular substitutions, one SpMV and order statistics.
// H only changes when the controller installs rules, so continuous
// monitors build one Detector per rule generation and reuse it every
// detection period (rebuild on any rule change — a stale factorization
// silently checks the wrong intent).
//
// A Detector is safe for concurrent Detect calls.
type Detector struct {
	h    *matrix.CSR
	opts Options
	ls   *matrix.PreparedLS // nil when H is degenerate or the solver is not Cholesky
	pool sync.Pool          // *detectScratch
	tel  *detTelemetry      // nil unless SetTelemetry wired a metric set
}

// detectScratch is the per-call reusable workspace; pooled so
// concurrent Detect calls never share buffers.
type detectScratch struct {
	ws  []float64 // triangular-solve workspace, len = Cols
	med []float64 // quickselect median scratch, len = Rows
}

// NewDetector prepares a detection engine for h. opts fixes the
// defaults used by Detect; DetectWithOptions can override them per
// call without re-factoring (only the Cholesky factorization is baked
// in — thresholds and denominators are applied at query time).
func NewDetector(h *matrix.CSR, opts Options) (*Detector, error) {
	return NewDetectorReusing(h, opts, nil)
}

// NewDetectorReusing prepares like NewDetector but hands PrepareLS the
// previous generation's prepared engine, so a sparse-backed baseline
// whose Gram pattern is unchanged (value-only churn) skips the
// fill-reducing ordering and symbolic analysis and reruns only the
// numeric factorization.
func NewDetectorReusing(h *matrix.CSR, opts Options, prev *matrix.PreparedLS) (*Detector, error) {
	d := &Detector{h: h, opts: opts}
	solver := opts.Solver
	if solver == 0 {
		solver = SolverCholesky
	}
	if solver == SolverCholesky && h.Rows() > 0 && h.Cols() > 0 {
		ls, err := matrix.PrepareLSReusing(h, matrix.LeastSquaresOptions{}, matrix.KernelOptions{}, prev)
		if err != nil {
			return nil, fmt.Errorf("core: prepare detector: %w", err)
		}
		d.ls = ls
	}
	rows, cols := h.Rows(), h.Cols()
	d.pool.New = func() any {
		return &detectScratch{ws: make([]float64, cols), med: make([]float64, rows)}
	}
	return d, nil
}

// H returns the flow-counter matrix the engine was prepared for.
func (d *Detector) H() *matrix.CSR { return d.h }

// Detect runs Algorithm 1 on one period's counter vector using the
// options fixed at construction.
func (d *Detector) Detect(y []float64) (Result, error) {
	return d.DetectWithOptions(y, d.opts)
}

// DetectWithOptions runs Algorithm 1 with per-call options. The
// prepared factorization is used whenever the (resolved) solver is
// Cholesky; selecting SolverCG falls back to a per-call iterative
// solve.
func (d *Detector) DetectWithOptions(y []float64, opts Options) (Result, error) {
	h := d.h
	if h.Rows() != len(y) {
		return Result{}, fmt.Errorf("core: H is %dx%d but y has %d entries", h.Rows(), h.Cols(), len(y))
	}
	opts = opts.withDefaults(y)
	tel := d.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	if h.Rows() == 0 {
		// Nothing to check: an empty system is trivially consistent.
		res := Result{Delta: make([]float64, len(y))}
		tel.outcome(t0, res)
		return res, nil
	}
	if h.Cols() == 0 {
		// No flow is expected to touch these rules, so every counter's
		// expected value is exactly zero: any observed volume is an
		// inconsistency no flow-volume estimate can explain (this keeps
		// Theorem 3 intact for slices of rules outside all flow paths,
		// like rule r4 in the paper's Fig. 2).
		delta := make([]float64, len(y))
		for i, v := range y {
			delta[i] = math.Abs(v)
		}
		res := Result{Delta: delta, YHat: make([]float64, len(y))}
		res.ErrMax, _ = stats.Max(delta)
		res.Index = anomalyIndex(res.ErrMax, 0, opts.ZeroTol)
		res.Anomalous = res.Index > opts.Threshold
		tel.outcome(t0, res)
		return res, nil
	}
	sc := d.pool.Get().(*detectScratch)
	defer d.pool.Put(sc)
	var xHat []float64
	var err error
	if opts.Solver == SolverCholesky && d.ls != nil {
		xHat = make([]float64, h.Cols())
		err = d.ls.SolveInto(xHat, y, sc.ws)
	} else {
		xHat, err = solve(h, y, opts.Solver)
	}
	if err != nil {
		return Result{}, fmt.Errorf("core: volume estimate: %w", err)
	}
	var tResid time.Time
	if tel != nil {
		tResid = time.Now()
		tel.solve.ObserveDuration(tResid.Sub(t0).Nanoseconds())
	}
	yHat := make([]float64, h.Rows())
	if err := h.MulVecInto(yHat, xHat); err != nil {
		return Result{}, err
	}
	delta := make([]float64, h.Rows())
	for i := range delta {
		delta[i] = math.Abs(y[i] - yHat[i])
	}
	res := Result{Delta: delta, XHat: xHat, YHat: yHat}
	res.ErrMax, _ = stats.Max(delta)
	res.ErrMed = opts.denominatorInto(sc.med, delta)
	res.Index = anomalyIndex(res.ErrMax, res.ErrMed, opts.ZeroTol)
	res.Anomalous = res.Index > opts.Threshold
	if tel != nil {
		tel.residual.ObserveDuration(time.Since(tResid).Nanoseconds())
	}
	tel.outcome(t0, res)
	return res, nil
}

// SlicedDetector is the prepared form of Algorithm 2: one Detector per
// per-switch slice (each slice's sub-FCM factored once), the row-gather
// indices validated at build time, and the per-slice counter gathers,
// result and error buffers drawn from a pooled workspace so
// steady-state periods are allocation-flat apart from the returned
// outcome. Detect fans the slices out over a persistent worker pool
// sized by GOMAXPROCS (goroutines start on the first parallel run and
// idle on a buffered job channel between periods); the outcome
// (including Suspects order) is identical to a sequential run.
//
// A SlicedDetector is safe for concurrent Detect calls.
type SlicedDetector struct {
	slices   []Slice
	engines  []*Detector
	numRules int
	opts     Options
	workers  int
	pool     sync.Pool        // *slicedScratch
	tel      *slicedTelemetry // nil unless SetTelemetry wired a metric set

	poolOnce sync.Once       // starts the persistent workers
	jobs     chan *slicedJob // buffered dispatch to the persistent workers
	stop     chan struct{}   // closed by the finalizer when sd is collected
}

// slicedScratch holds one run's per-slice gather buffers plus the
// result/error slots and the dispatch job itself. A run owns the whole
// set; each slice index is touched by exactly one worker, and every
// slot is overwritten each run so nothing needs clearing on reuse.
type slicedScratch struct {
	subs    [][]float64
	results []Result
	errs    []error
	job     slicedJob
}

// slicedJob is one Detect call's unit of dispatch: workers pull it from
// the job channel and claim chunks of the slice range with an atomic
// cursor until the range is exhausted. Gather time is accumulated per
// chunk (two timer reads per chunk, not per slice).
type slicedJob struct {
	sd       *SlicedDetector
	y        []float64
	opts     Options
	sc       *slicedScratch
	chunk    int
	timed    bool
	next     atomic.Int64
	gatherNS atomic.Int64
	wg       sync.WaitGroup
}

func (j *slicedJob) work() {
	n := len(j.sd.slices)
	for {
		lo := int(j.next.Add(int64(j.chunk))) - j.chunk
		if lo >= n {
			return
		}
		hi := lo + j.chunk
		if hi > n {
			hi = n
		}
		j.runChunk(lo, hi)
	}
}

func (j *slicedJob) runChunk(lo, hi int) {
	sd, y, sc := j.sd, j.y, j.sc
	if j.timed {
		g0 := time.Now()
		for i := lo; i < hi; i++ {
			sub := sc.subs[i]
			for k, rid := range sd.slices[i].RuleRows {
				sub[k] = y[rid]
			}
		}
		j.gatherNS.Add(time.Since(g0).Nanoseconds())
	} else {
		for i := lo; i < hi; i++ {
			sub := sc.subs[i]
			for k, rid := range sd.slices[i].RuleRows {
				sub[k] = y[rid]
			}
		}
	}
	for i := lo; i < hi; i++ {
		sc.results[i], sc.errs[i] = sd.engines[i].DetectWithOptions(sc.subs[i], j.opts)
	}
}

// slicedPoolWorker is a persistent pool goroutine. It captures only the
// two channels — never the detector — so an abandoned SlicedDetector
// remains collectible; its finalizer closes stop to end the pool.
func slicedPoolWorker(jobs <-chan *slicedJob, stop <-chan struct{}) {
	for {
		select {
		case j := <-jobs:
			j.work()
			j.wg.Done()
		case <-stop:
			return
		}
	}
}

// startWorkers lazily launches the persistent pool on the first
// parallel Detect, so detectors built only to be probed sequentially
// (e.g. thousands of churn-epoch rebuilds) never spawn goroutines.
func (sd *SlicedDetector) startWorkers() {
	sd.poolOnce.Do(func() {
		sd.jobs = make(chan *slicedJob, sd.workers)
		sd.stop = make(chan struct{})
		for w := 1; w < sd.workers; w++ {
			go slicedPoolWorker(sd.jobs, sd.stop)
		}
		runtime.SetFinalizer(sd, func(s *SlicedDetector) { close(s.stop) })
	})
}

// NewSlicedDetector prepares one engine per slice, fanning the
// per-slice factorizations across matrix.KernelWorkers() goroutines
// (each slice's PrepareLS is independent; errors are reported for the
// lowest failing slice regardless of completion order). numRules is the
// length of the full counter vector (FCM.NumRules()); every slice's
// RuleRows are bounds-checked against it here, once, instead of every
// detection period.
func NewSlicedDetector(slices []Slice, numRules int, opts Options) (*SlicedDetector, error) {
	for _, sl := range slices {
		for _, rid := range sl.RuleRows {
			if rid < 0 || rid >= numRules {
				return nil, fmt.Errorf("core: slice rule %d outside counter vector (%d)", rid, numRules)
			}
		}
	}
	engines := make([]*Detector, len(slices))
	buildErrs := make([]error, len(slices))
	matrix.FanOut(len(slices), matrix.KernelWorkers(), func(i int) {
		engines[i], buildErrs[i] = NewDetector(slices[i].H, opts)
	})
	for i, err := range buildErrs {
		if err != nil {
			return nil, fmt.Errorf("core: slice switch %d: %w", slices[i].Switch, err)
		}
	}
	return newSlicedDetector(slices, engines, numRules, opts), nil
}

// newSlicedDetector wires the shared detector state (worker bound,
// pooled scratch) around validated slices and engines.
func newSlicedDetector(slices []Slice, engines []*Detector, numRules int, opts Options) *SlicedDetector {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(slices) {
		workers = len(slices)
	}
	if workers < 1 {
		workers = 1
	}
	sd := &SlicedDetector{
		slices:   slices,
		engines:  engines,
		numRules: numRules,
		opts:     opts,
		workers:  workers,
	}
	sd.pool.New = func() any {
		sc := &slicedScratch{
			subs:    make([][]float64, len(slices)),
			results: make([]Result, len(slices)),
			errs:    make([]error, len(slices)),
		}
		for i, sl := range slices {
			sc.subs[i] = make([]float64, len(sl.RuleRows))
		}
		sc.job.sd = sd
		return sc
	}
	return sd
}

// NumSlices reports the number of prepared slices.
func (sd *SlicedDetector) NumSlices() int { return len(sd.slices) }

// Workers reports the worker-pool bound used by Detect.
func (sd *SlicedDetector) Workers() int { return sd.workers }

// Detect runs Algorithm 2 on one period's counter vector, slices in
// parallel, using the options fixed at construction.
func (sd *SlicedDetector) Detect(y []float64) (SlicedOutcome, error) {
	return sd.detect(y, sd.opts, sd.workers)
}

// DetectWithOptions runs Algorithm 2 with per-call options (the
// prepared per-slice factorizations are reused).
func (sd *SlicedDetector) DetectWithOptions(y []float64, opts Options) (SlicedOutcome, error) {
	return sd.detect(y, opts, sd.workers)
}

// DetectSequential runs the slices one by one on the calling
// goroutine — the reference execution the parallel path must match
// exactly, and a debugging aid when a slice misbehaves.
func (sd *SlicedDetector) DetectSequential(y []float64) (SlicedOutcome, error) {
	return sd.detect(y, sd.opts, 1)
}

func (sd *SlicedDetector) detect(y []float64, opts Options, workers int) (SlicedOutcome, error) {
	if len(y) != sd.numRules {
		return SlicedOutcome{}, fmt.Errorf("core: counter vector has %d entries, sliced detector expects %d", len(y), sd.numRules)
	}
	tel := sd.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	sc := sd.pool.Get().(*slicedScratch)
	defer sd.pool.Put(sc)
	results := sc.results
	errs := sc.errs
	j := &sc.job
	j.y, j.opts, j.sc = y, opts, sc
	j.timed = tel != nil
	j.gatherNS.Store(0)
	j.next.Store(0)
	j.chunk = len(sd.slices) / (sd.workers * 4)
	if j.chunk < 1 {
		j.chunk = 1
	}
	if workers > 1 && len(sd.slices) > 1 {
		// Hand the job to idle pool workers; the caller participates
		// below. A full job buffer means the pool is saturated by
		// concurrent runs — the caller then just claims more chunks
		// itself instead of blocking.
		sd.startWorkers()
		for w := 1; w < workers; w++ {
			j.wg.Add(1)
			select {
			case sd.jobs <- j:
			default:
				j.wg.Done()
				w = workers
			}
		}
	}
	j.work()
	j.wg.Wait()
	j.y = nil
	if tel != nil {
		tel.gather.ObserveDuration(j.gatherNS.Load())
		tel.fanout.Observe(float64(len(sd.slices)))
	}
	// Aggregate in slice order so parallel and sequential runs produce
	// identical outcomes, including Suspects order under index ties.
	for i, sl := range sd.slices {
		if errs[i] != nil {
			return SlicedOutcome{}, fmt.Errorf("core: slice switch %d: %w", sl.Switch, errs[i])
		}
		tel.slice(results[i])
	}
	out := MergeSliceResults(sd.slices, results)
	tel.outcome(t0, out.Anomalous)
	return out, nil
}
