package core

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

func partialSetup(t *testing.T) (*topo.Topology, *dataplane.Network, *fcm.FCM) {
	t.Helper()
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, net, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return top, net, f
}

func TestDetectWithMissingCleanNetwork(t *testing.T) {
	top, net, f := partialSetup(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	// Pretend two switches are unreachable.
	missing := []topo.SwitchID{0, 5}
	for _, r := range f.Rules {
		if r.Switch == 0 || r.Switch == 5 {
			delete(counters, r.ID)
		}
	}
	res, err := DetectWithMissing(f, counters, missing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("clean partial view flagged: AI=%v", res.Index)
	}
	if res.MissingRules == 0 || len(res.PresentRows) != f.NumRules()-res.MissingRules {
		t.Fatalf("row accounting wrong: %d present, %d missing", len(res.PresentRows), res.MissingRules)
	}
}

func TestDetectWithMissingStillCatchesAttack(t *testing.T) {
	top, net, f := partialSetup(t)
	rng := rand.New(rand.NewSource(2))
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	// A switch far from the attack goes dark; the anomaly's footprint
	// remains visible on the reachable rows.
	var missing []topo.SwitchID
	for _, s := range top.Switches() {
		if s.ID != atk.Switch {
			isNbr := false
			for _, n := range top.Neighbors(atk.Switch) {
				if n == s.ID {
					isNbr = true
				}
			}
			if !isNbr {
				missing = append(missing, s.ID)
				break
			}
		}
	}
	for _, r := range f.Rules {
		if r.Switch == missing[0] {
			delete(counters, r.ID)
		}
	}
	res, err := DetectWithMissing(f, counters, missing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("partial view missed the attack: AI=%v", res.Index)
	}
}

func TestDetectWithMissingAllSwitches(t *testing.T) {
	top, _, f := partialSetup(t)
	var all []topo.SwitchID
	for _, s := range top.Switches() {
		all = append(all, s.ID)
	}
	if _, err := DetectWithMissing(f, nil, all, Options{}); err == nil {
		t.Fatal("all-missing must error")
	}
}

func TestDetectWithMissingNoneMatchesFull(t *testing.T) {
	top, net, f := partialSetup(t)
	rng := rand.New(rand.NewSource(3))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	full, err := Detect(f.H, f.CounterVector(counters), Options{})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := DetectWithMissing(f, counters, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Anomalous != full.Anomalous || partial.MissingRules != 0 {
		t.Fatalf("no-missing partial must equal full: %+v vs %+v", partial.Result.Anomalous, full.Anomalous)
	}
}
