package core

import (
	"fmt"
	"math"
	"time"

	"foces/internal/matrix"
	"foces/internal/stats"
)

// PrepareStats reports where this engine's prepare time went (Gram
// assembly vs Cholesky factorization). Zero for engines without a
// prepared factorization (degenerate H, non-Cholesky solver) and for
// engines assembled from an externally maintained factor.
func (d *Detector) PrepareStats() matrix.PrepareStats {
	if d.ls == nil {
		return matrix.PrepareStats{}
	}
	return d.ls.Stats()
}

// DetectBatch runs Algorithm 1 on k observation windows against the
// same prepared baseline, amortizing the triangular-factor memory
// traffic across the windows with one multi-RHS solve
// (Cholesky.SolveManyInto). Results are returned in input order and
// each is bitwise identical to the corresponding Detect(ys[r]) call —
// batching is purely a throughput optimization, so callers migrate by
// collecting windows and switching the call, with no behavioral or
// tuning changes. Windows that cannot take the batched solve (empty H,
// CG solver) fall back to per-window Detect internally.
func (d *Detector) DetectBatch(ys [][]float64) ([]Result, error) {
	return d.DetectBatchWithOptions(ys, d.opts)
}

// DetectBatchWithOptions is DetectBatch with per-call options applied
// to every window (the prepared factorization is reused).
func (d *Detector) DetectBatchWithOptions(ys [][]float64, opts Options) ([]Result, error) {
	if len(ys) == 0 {
		return nil, nil
	}
	h := d.h
	for r, y := range ys {
		if h.Rows() != len(y) {
			return nil, fmt.Errorf("core: batch window %d: H is %dx%d but y has %d entries", r, h.Rows(), h.Cols(), len(y))
		}
	}
	resolvedSolver := opts.Solver
	if resolvedSolver == 0 {
		resolvedSolver = SolverCholesky
	}
	if len(ys) == 1 || h.Rows() == 0 || h.Cols() == 0 || d.ls == nil || resolvedSolver != SolverCholesky {
		results := make([]Result, len(ys))
		for r, y := range ys {
			res, err := d.DetectWithOptions(y, opts)
			if err != nil {
				return nil, fmt.Errorf("core: batch window %d: %w", r, err)
			}
			results[r] = res
		}
		return results, nil
	}
	tel := d.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	x, err := d.ls.SolveBatch(ys)
	if err != nil {
		return nil, fmt.Errorf("core: batch volume estimate: %w", err)
	}
	var tResid time.Time
	if tel != nil {
		tResid = time.Now()
		tel.solve.ObserveDuration(tResid.Sub(t0).Nanoseconds())
	}
	sc := d.pool.Get().(*detectScratch)
	defer d.pool.Put(sc)
	results := make([]Result, len(ys))
	for r, y := range ys {
		wopts := opts.withDefaults(y)
		xHat := make([]float64, h.Cols())
		for i := range xHat {
			xHat[i] = x.At(i, r)
		}
		yHat := make([]float64, h.Rows())
		if err := h.MulVecInto(yHat, xHat); err != nil {
			return nil, err
		}
		delta := make([]float64, h.Rows())
		for i := range delta {
			delta[i] = math.Abs(y[i] - yHat[i])
		}
		res := Result{Delta: delta, XHat: xHat, YHat: yHat}
		res.ErrMax, _ = stats.Max(delta)
		res.ErrMed = wopts.denominatorInto(sc.med, delta)
		res.Index = anomalyIndex(res.ErrMax, res.ErrMed, wopts.ZeroTol)
		res.Anomalous = res.Index > wopts.Threshold
		results[r] = res
		// Batched windows report batch-inclusive latency: the shared
		// multi-RHS solve is part of every window's wall time.
		tel.outcome(t0, res)
	}
	if tel != nil {
		tel.residual.ObserveDuration(time.Since(tResid).Nanoseconds())
	}
	return results, nil
}
