package core

import (
	"math/rand"
	"testing"

	"foces/internal/dataplane"
	"foces/internal/topo"
)

func TestDetectSlicedWithMissingCleanNetwork(t *testing.T) {
	top, net, f := partialSetup(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	missing := []topo.SwitchID{0, 5}
	out, err := DetectSlicedWithMissing(f, slices, counters, missing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Anomalous {
		t.Fatalf("clean partial sliced view flagged: suspects=%v", out.Suspects)
	}
	// Missing switches' own slices must be skipped.
	for _, r := range out.PerSwitch {
		if r.Switch == 0 || r.Switch == 5 {
			t.Fatalf("slice of missing switch %d was checked", r.Switch)
		}
	}
	if len(out.PerSwitch) != len(slices)-2 {
		t.Fatalf("checked %d slices, want %d", len(out.PerSwitch), len(slices)-2)
	}
}

func TestDetectSlicedWithMissingStillLocalizes(t *testing.T) {
	top, net, f := partialSetup(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 1000)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	// A switch that is neither the attacker nor its neighbour goes dark.
	var missing []topo.SwitchID
	for _, s := range top.Switches() {
		if s.ID == atk.Switch {
			continue
		}
		isNbr := false
		for _, n := range top.Neighbors(atk.Switch) {
			if n == s.ID {
				isNbr = true
			}
		}
		if !isNbr {
			missing = append(missing, s.ID)
			break
		}
	}
	for _, r := range f.Rules {
		if r.Switch == missing[0] {
			delete(counters, r.ID)
		}
	}
	out, err := DetectSlicedWithMissing(f, slices, counters, missing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Anomalous || len(out.Suspects) == 0 {
		t.Fatalf("degraded sliced view missed the attack: %+v", out)
	}
	for _, s := range out.Suspects {
		if s == missing[0] {
			t.Fatalf("missing switch %d cannot be a suspect — its slice was skipped", s)
		}
	}
}

func TestDetectSlicedWithMissingNoneMatchesFull(t *testing.T) {
	top, net, f := partialSetup(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	counters := net.CollectCounters()
	out, err := DetectSlicedWithMissing(f, slices, counters, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DetectSliced(slices, f.CounterVector(counters), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Anomalous != full.Anomalous || len(out.PerSwitch) != len(full.PerSwitch) {
		t.Fatalf("no-missing sliced run diverged: partial %d slices anomalous=%v, full %d slices anomalous=%v",
			len(out.PerSwitch), out.Anomalous, len(full.PerSwitch), full.Anomalous)
	}
}

func TestDetectSlicedWithMissingAllSwitches(t *testing.T) {
	top, _, f := partialSetup(t)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	var all []topo.SwitchID
	for _, s := range top.Switches() {
		all = append(all, s.ID)
	}
	if _, err := DetectSlicedWithMissing(f, slices, nil, all, Options{}); err == nil {
		t.Fatal("all-missing sliced detection must error")
	}
}

func TestMonitorClampsNegativeConfig(t *testing.T) {
	// Negative values used to slip past the zero-only default checks:
	// a negative threshold always fires, a negative consecutive alerts
	// without debouncing, a negative alpha diverges the EWMA.
	m := NewMonitor(MonitorConfig{Threshold: -3, Consecutive: -1, EWMAAlpha: -0.5})
	if m.cfg.Threshold != 4.5 || m.cfg.Consecutive != 2 || m.cfg.EWMAAlpha != 0.3 {
		t.Fatalf("negative config not clamped: %+v", m.cfg)
	}
	if v := m.Feed(1); v.Exceeded || v.Alert {
		t.Fatalf("quiet index must not fire: %+v", v)
	}
	// Alpha above 1 clamps to plain averaging instead of oscillating.
	m = NewMonitor(MonitorConfig{EWMAAlpha: 2.5})
	if m.cfg.EWMAAlpha != 1 {
		t.Fatalf("alpha > 1 not clamped: %v", m.cfg.EWMAAlpha)
	}
	m.Feed(10)
	if v := m.Feed(4); v.EWMA != 4 {
		t.Fatalf("alpha=1 must track the latest index, EWMA=%v", v.EWMA)
	}
}
