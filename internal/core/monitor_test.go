package core

import (
	"math"
	"testing"
)

func TestMonitorDebouncesSpikes(t *testing.T) {
	m := NewMonitor(MonitorConfig{Consecutive: 2})
	// A single noise spike must not alert.
	v := m.Feed(50)
	if v.Alert || !v.Exceeded || v.Streak != 1 {
		t.Fatalf("first spike: %+v", v)
	}
	v = m.Feed(1)
	if v.Alert || v.Exceeded || v.Streak != 0 {
		t.Fatalf("recovery: %+v", v)
	}
	// Two consecutive exceedances alert.
	m.Feed(50)
	v = m.Feed(60)
	if !v.Alert || v.Streak != 2 {
		t.Fatalf("sustained: %+v", v)
	}
	// The alarm clears when the index drops.
	v = m.Feed(1)
	if v.Alert {
		t.Fatalf("clear: %+v", v)
	}
}

func TestMonitorInfinity(t *testing.T) {
	m := NewMonitor(MonitorConfig{Consecutive: 1})
	v := m.Feed(math.Inf(1))
	if !v.Alert || math.IsInf(v.EWMA, 1) || math.IsNaN(v.EWMA) {
		t.Fatalf("inf handling: %+v", v)
	}
	if v.EWMA != 1e6 {
		t.Fatalf("EWMA cap = %v", v.EWMA)
	}
}

func TestMonitorEWMA(t *testing.T) {
	m := NewMonitor(MonitorConfig{EWMAAlpha: 0.5})
	v := m.Feed(10)
	if v.EWMA != 10 {
		t.Fatalf("priming EWMA = %v", v.EWMA)
	}
	v = m.Feed(0)
	if v.EWMA != 5 {
		t.Fatalf("EWMA = %v, want 5", v.EWMA)
	}
	m.Reset()
	v = m.Feed(2)
	if v.EWMA != 2 || v.Streak != 0 {
		t.Fatalf("after reset: %+v", v)
	}
}

func TestMonitorDefaults(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	// Default threshold 4.5: 4.4 does not exceed.
	if v := m.Feed(4.4); v.Exceeded {
		t.Fatal("4.4 must not exceed default threshold")
	}
	if v := m.Feed(4.6); !v.Exceeded || v.Alert {
		t.Fatal("default consecutive=2 must not alert on one period")
	}
	if v := m.Feed(4.6); !v.Alert {
		t.Fatal("two consecutive exceedances must alert")
	}
}

func TestMonitorSuppressesLossFalsePositives(t *testing.T) {
	// Under heavy loss the per-period index occasionally spikes; the
	// debounced monitor only alerts on sustained anomalies. Simulate
	// index streams directly.
	m := NewMonitor(MonitorConfig{Consecutive: 3})
	noisy := []float64{2, 7, 3, 8, 2, 9, 3, 7, 2} // isolated spikes
	for i, idx := range noisy {
		if v := m.Feed(idx); v.Alert {
			t.Fatalf("alerted on isolated spike at %d", i)
		}
	}
	attack := []float64{30, 40, 35}
	var alerted bool
	for _, idx := range attack {
		if v := m.Feed(idx); v.Alert {
			alerted = true
		}
	}
	if !alerted {
		t.Fatal("sustained attack must alert")
	}
}

func TestAttributeDeltaRanksCompromisedNeighbourhood(t *testing.T) {
	f, y, fl := securityBaseline(t)
	// Early-drop flow fl after hop 1: downstream rules lose its volume.
	for _, rid := range fl.RuleIDs[2:] {
		y[rid] -= 1000
	}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scores := AttributeDelta(f, res.Delta)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	top := TopSuspects(scores, 3)
	// The flow's own switches must dominate the ranking.
	onPath := map[int]bool{}
	for _, rid := range fl.RuleIDs {
		onPath[int(f.Rules[rid].Switch)] = true
	}
	hit := false
	for _, sw := range top {
		if onPath[int(sw)] {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("top suspects %v miss the victim path", top)
	}
	if got := TopSuspects(scores, 10_000); len(got) != len(scores) {
		t.Fatal("TopSuspects must clamp k")
	}
}
