package core

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// engineFixture returns slices plus one clean and one anomalous counter
// vector over the fattree4 scenario.
func engineFixture(t *testing.T) ([]Slice, int, []float64, []float64) {
	t.Helper()
	f, clean, attacked := runAttackScenario(t, "fattree4", 3)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	return slices, f.NumRules(), clean, attacked
}

func TestDetectorMatchesFreeDetect(t *testing.T) {
	f, clean, attacked := runAttackScenario(t, "fattree4", 1)
	d, err := NewDetector(f.H, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range [][]float64{clean, attacked} {
		want, err := Detect(f.H, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("prepared result diverged:\n got %+v\nwant %+v", got, want)
		}
		// Repeated detection against the same factorization stays stable.
		again, err := d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Fatal("second prepared detection diverged")
		}
	}
}

func TestDetectorPerCallOptions(t *testing.T) {
	f := fig2FCM(t)
	d, err := NewDetector(f.H, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{3, 3, 4, 3, 8, 12} // the Fig. 2 anomaly
	res, err := d.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatal("Fig. 2 anomaly must be flagged at the default threshold")
	}
	// A per-call threshold above the index suppresses the verdict
	// without re-preparing.
	high, err := d.DetectWithOptions(y, Options{Threshold: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if high.Anomalous {
		t.Fatal("infinite threshold must suppress the verdict")
	}
	if high.Index != res.Index {
		t.Fatalf("index must not depend on threshold: %v vs %v", high.Index, res.Index)
	}
	// A per-call CG override bypasses the factorization but agrees on
	// the verdict.
	cg, err := d.DetectWithOptions(y, Options{Solver: SolverCG})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Anomalous != res.Anomalous {
		t.Fatalf("CG verdict %v != Cholesky verdict %v", cg.Anomalous, res.Anomalous)
	}
}

func TestDetectorDegenerateShapes(t *testing.T) {
	// Zero-column slice H (rules outside all flow paths): observed
	// volume is unexplainable.
	f := fig2FCM(t)
	sub, err := f.H.SubMatrix([]int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Detect([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Detect(sub, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("zero-column engine %+v != free %+v", res, want)
	}
	if !res.Anomalous {
		t.Fatal("unexplainable volume on a zero-column slice must be anomalous")
	}
	// Dimension mismatch must error like the free function.
	if _, err := d.Detect([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestSlicedDetectorParallelMatchesSequential(t *testing.T) {
	slices, numRules, clean, attacked := engineFixture(t)
	sd, err := NewSlicedDetector(slices, numRules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Workers() < 1 || sd.NumSlices() != len(slices) {
		t.Fatalf("workers=%d slices=%d", sd.Workers(), sd.NumSlices())
	}
	for _, y := range [][]float64{clean, attacked} {
		seq, err := sd.DetectSequential(y)
		if err != nil {
			t.Fatal(err)
		}
		par, err := sd.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallel outcome diverged from sequential:\n par %+v\n seq %+v", par, seq)
		}
		// And both must match the historical free function exactly.
		free, err := DetectSliced(slices, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, free) {
			t.Fatal("engine outcome diverged from free DetectSliced")
		}
	}
}

func TestSlicedDetectorConcurrentUse(t *testing.T) {
	slices, numRules, clean, attacked := engineFixture(t)
	sd, err := NewSlicedDetector(slices, numRules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantClean, err := sd.DetectSequential(clean)
	if err != nil {
		t.Fatal(err)
	}
	wantAttacked, err := sd.DetectSequential(attacked)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				y, want := clean, wantClean
				if (g+r)%2 == 1 {
					y, want = attacked, wantAttacked
				}
				out, err := sd.Detect(y)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(out, want) {
					errCh <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// errMismatch keeps the concurrent test allocation-simple.
var errMismatch = errString("concurrent outcome diverged from sequential reference")

type errString string

func (e errString) Error() string { return string(e) }

func TestSlicedDetectorBuildTimeValidation(t *testing.T) {
	slices, numRules, clean, _ := engineFixture(t)
	// RuleRows outside the counter vector are rejected at build time.
	if _, err := NewSlicedDetector(slices, 1, Options{}); err == nil {
		t.Fatal("out-of-range RuleRows must fail the build")
	}
	sd, err := NewSlicedDetector(slices, numRules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-length counter vectors are rejected per call.
	if _, err := sd.Detect(clean[:numRules-1]); err == nil {
		t.Fatal("short counter vector must error")
	}
}
