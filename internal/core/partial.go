package core

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/topo"
)

// PartialResult is the outcome of detection restricted to reachable
// switches.
type PartialResult struct {
	Result
	// PresentRows maps each entry of Result.Delta back to its global
	// rule ID.
	PresentRows []int
	// MissingRules counts the rule rows excluded because their switch
	// was unreachable.
	MissingRules int
}

// DetectWithMissing runs Algorithm 1 on the sub-system restricted to
// the rules of reachable switches. When some switches cannot be polled
// (agent down, partition), their counter rows are unknown; rather than
// aborting the detection period, the equation system drops those rows
// and checks consistency of everything still observable. Flows that
// only traverse missing switches contribute empty columns, handled by
// the solver's ridge fallback.
//
// A deviation whose entire counter footprint hides inside the missing
// switches is invisible to this partial check — callers should treat a
// long-unreachable switch as an incident of its own.
func DetectWithMissing(f *fcm.FCM, counters map[int]uint64, missing []topo.SwitchID, opts Options) (PartialResult, error) {
	down := make(map[topo.SwitchID]bool, len(missing))
	for _, sw := range missing {
		down[sw] = true
	}
	present := make([]int, 0, f.NumRules())
	for _, r := range f.Rules {
		if r.Switch < 0 {
			continue // placeholder row for a removed rule ID
		}
		if !down[r.Switch] {
			present = append(present, r.ID)
		}
	}
	sort.Ints(present)
	if len(present) == 0 {
		return PartialResult{}, fmt.Errorf("core: every switch is missing; nothing to check")
	}
	cols := make([]int, f.NumFlows())
	for j := range cols {
		cols[j] = j
	}
	sub, err := f.H.SubMatrix(present, cols)
	if err != nil {
		return PartialResult{}, err
	}
	y := make([]float64, len(present))
	for i, rid := range present {
		y[i] = float64(counters[rid])
	}
	res, err := Detect(sub, y, opts)
	if err != nil {
		return PartialResult{}, err
	}
	return PartialResult{
		Result:       res,
		PresentRows:  present,
		MissingRules: f.NumRules() - len(present),
	}, nil
}

// DetectSlicedWithMissing runs Algorithm 2 restricted to reachable
// switches: slices belonging to missing (unreachable or quarantined)
// switches are skipped outright — their own rules are unobservable, so
// there is nothing to check — and the remaining slices drop any
// predecessor rows hosted on missing switches before solving, re-deriving
// each affected sub-FCM from f.H. Like DetectWithMissing this re-factors
// per call; it is the degraded path, not the steady state.
//
// An anomaly confined entirely to the missing switches is invisible
// here — treat a long-missing switch as an incident of its own.
func DetectSlicedWithMissing(f *fcm.FCM, slices []Slice, counters map[int]uint64, missing []topo.SwitchID, opts Options) (SlicedOutcome, error) {
	down := make(map[topo.SwitchID]bool, len(missing))
	for _, sw := range missing {
		down[sw] = true
	}
	var out SlicedOutcome
	type suspect struct {
		sw    topo.SwitchID
		index float64
	}
	var suspects []suspect
	checked := 0
	for _, sl := range slices {
		if down[sl.Switch] {
			continue
		}
		rows := make([]int, 0, len(sl.RuleRows))
		for _, rid := range sl.RuleRows {
			if !down[f.Rules[rid].Switch] {
				rows = append(rows, rid)
			}
		}
		if len(rows) == 0 {
			continue
		}
		sub, err := f.H.SubMatrix(rows, sl.FlowCols)
		if err != nil {
			return SlicedOutcome{}, fmt.Errorf("core: partial slice for switch %d: %w", sl.Switch, err)
		}
		y := make([]float64, len(rows))
		for i, rid := range rows {
			y[i] = float64(counters[rid])
		}
		res, err := Detect(sub, y, opts)
		if err != nil {
			return SlicedOutcome{}, fmt.Errorf("core: partial slice for switch %d: %w", sl.Switch, err)
		}
		checked++
		out.PerSwitch = append(out.PerSwitch, SliceResult{Switch: sl.Switch, Result: res})
		if res.Anomalous {
			out.Anomalous = true
			suspects = append(suspects, suspect{sw: sl.Switch, index: res.Index})
		}
	}
	if checked == 0 {
		return SlicedOutcome{}, fmt.Errorf("core: every slice is hosted on a missing switch; nothing to check")
	}
	sort.SliceStable(suspects, func(i, j int) bool { return suspects[i].index > suspects[j].index })
	for _, s := range suspects {
		out.Suspects = append(out.Suspects, s.sw)
	}
	return out, nil
}
