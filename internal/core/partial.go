package core

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/topo"
)

// PartialResult is the outcome of detection restricted to reachable
// switches.
type PartialResult struct {
	Result
	// PresentRows maps each entry of Result.Delta back to its global
	// rule ID.
	PresentRows []int
	// MissingRules counts the rule rows excluded because their switch
	// was unreachable.
	MissingRules int
}

// DetectWithMissing runs Algorithm 1 on the sub-system restricted to
// the rules of reachable switches. When some switches cannot be polled
// (agent down, partition), their counter rows are unknown; rather than
// aborting the detection period, the equation system drops those rows
// and checks consistency of everything still observable. Flows that
// only traverse missing switches contribute empty columns, handled by
// the solver's ridge fallback.
//
// A deviation whose entire counter footprint hides inside the missing
// switches is invisible to this partial check — callers should treat a
// long-unreachable switch as an incident of its own.
func DetectWithMissing(f *fcm.FCM, counters map[int]uint64, missing []topo.SwitchID, opts Options) (PartialResult, error) {
	down := make(map[topo.SwitchID]bool, len(missing))
	for _, sw := range missing {
		down[sw] = true
	}
	present := make([]int, 0, f.NumRules())
	for _, r := range f.Rules {
		if !down[r.Switch] {
			present = append(present, r.ID)
		}
	}
	sort.Ints(present)
	if len(present) == 0 {
		return PartialResult{}, fmt.Errorf("core: every switch is missing; nothing to check")
	}
	cols := make([]int, f.NumFlows())
	for j := range cols {
		cols[j] = j
	}
	sub, err := f.H.SubMatrix(present, cols)
	if err != nil {
		return PartialResult{}, err
	}
	y := make([]float64, len(present))
	for i, rid := range present {
		y[i] = float64(counters[rid])
	}
	res, err := Detect(sub, y, opts)
	if err != nil {
		return PartialResult{}, err
	}
	return PartialResult{
		Result:       res,
		PresentRows:  present,
		MissingRules: f.NumRules() - len(present),
	}, nil
}
