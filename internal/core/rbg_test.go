package core

import (
	"foces/internal/fcm"
	"testing"

	"foces/internal/topo"
)

func TestBuildRBGFig2(t *testing.T) {
	f := fig2FCM(t)
	// S5 hosts rule 5, matched last by all three flows: predecessors r2
	// (flow a with prefix [0,1,2], flow b with prefix [2] — distinct
	// parallel edges) and r4 (flow c).
	g, err := BuildRBG(f, topo.SwitchID(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("S5 edges = %d (%+v), want 3", len(g.Edges), g.Edges)
	}
	if !g.HasLoop() {
		t.Fatal("parallel (r2,r5) edges from flows a and b must form a multigraph loop")
	}
	// S0 hosts rule 0 matched first by flow a only: a single virtual
	// edge, no loop.
	g0, err := BuildRBG(f, topo.SwitchID(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g0.Edges) != 1 || g0.Edges[0].From != virtualRule || g0.HasLoop() {
		t.Fatalf("S0 RBG wrong: %+v", g0.Edges)
	}
}

func TestRBGSharedPrefixCollapses(t *testing.T) {
	// h' shares its first two hops with flow a; those edges must
	// collapse onto the existing ones (marked anomalous), not create
	// parallel edges.
	f := fig2FCM(t)
	g, err := BuildRBG(f, topo.SwitchID(1), paperHPrime())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("S1 edges = %d, want 1 (shared prefix)", len(g.Edges))
	}
	if !g.Edges[0].AnomFlow {
		t.Fatal("shared edge must be marked anomalous")
	}
	if g.HasLoopThroughAnomaly() {
		t.Fatal("single shared edge is no loop")
	}
}

func TestBuildRBGValidation(t *testing.T) {
	f := fig2FCM(t)
	if _, err := BuildRBG(f, topo.SwitchID(0), []int{99}); err == nil {
		t.Fatal("out-of-range rule in h' must error")
	}
}

func TestAnalyzeDetectabilityFig2(t *testing.T) {
	// Fig 2's deviation is detectable: h' uses rule r4 that no benign
	// flow touches, so h' is outside span(H) (Theorem 1). The RBG check
	// is conservative here: flow c and h' share the (r5, r6) hop with
	// different prefixes, closing a loop, so the combinatorial test is
	// inconclusive — exactly the pivot-rule caveat of Lemma 5.
	f := fig2FCM(t)
	d, err := AnalyzeDetectability(f, paperHPrime())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Algebraic {
		t.Fatal("Fig 2 anomaly must be algebraically detectable")
	}
}

func TestAnalyzeDetectabilityFig3(t *testing.T) {
	// Fig 3's counterexample: h' = col_a' lies in span(H)
	// (h' = h_a − h_b + h_c), so the anomaly is undetectable, and the
	// RBG of S4/S5 must close a loop through h' (Theorem 2).
	f := fig3FCM(t)
	d, err := AnalyzeDetectability(f, paperHPrime())
	if err != nil {
		t.Fatal(err)
	}
	if d.Algebraic {
		t.Fatal("Fig 3 anomaly must be algebraically undetectable")
	}
	if d.RBGLoopFree {
		t.Fatal("Theorem 2: undetectable anomaly must close an RBG loop")
	}
	if d.LoopSwitch < 0 {
		t.Fatal("loop switch must be reported")
	}
}

func TestRBGLoopFreeImpliesDetectable(t *testing.T) {
	// Soundness direction across many synthetic anomalies: whenever the
	// algebraic check says undetectable, the RBG check must have found
	// a loop (contrapositive: loop-free ⇒ detectable). Enumerate every
	// length-2 history as h' over both paper fixtures.
	for _, f := range []*fcm.FCM{fig2FCM(t), fig3FCM(t)} {
		n := f.NumRules()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				// Histories contained in an existing flow's rule set are
				// truncations, outside Theorem 2's complete-path scope.
				if containedInFlow(f, []int{a, b}) {
					continue
				}
				d, err := AnalyzeDetectability(f, []int{a, b})
				if err != nil {
					t.Fatal(err)
				}
				if !d.Algebraic && d.RBGLoopFree {
					t.Fatalf("h'=[%d %d]: algebraically undetectable but RBG loop-free", a, b)
				}
			}
		}
	}
}

// containedInFlow reports whether every rule of hist belongs to a
// single existing flow.
func containedInFlow(f *fcm.FCM, hist []int) bool {
	for _, fl := range f.Flows {
		set := make(map[int]bool, len(fl.RuleIDs))
		for _, r := range fl.RuleIDs {
			set[r] = true
		}
		all := true
		for _, r := range hist {
			if !set[r] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func TestAnalyzeDetectabilityDuplicateFlow(t *testing.T) {
	// Deviating onto exactly another flow's rule path is trivially
	// masked: the counters read as extra volume on that flow.
	f := fig2FCM(t)
	d, err := AnalyzeDetectability(f, []int{2, 5}) // flow b's path
	if err != nil {
		t.Fatal(err)
	}
	if d.Algebraic {
		t.Fatal("duplicate-path deviation must be algebraically undetectable")
	}
	if d.RBGLoopFree {
		t.Fatal("duplicate-path deviation must be reported as a loop")
	}
}

func TestAnalyzeDetectabilityValidation(t *testing.T) {
	f := fig2FCM(t)
	if _, err := AnalyzeDetectability(f, nil); err == nil {
		t.Fatal("empty history must error")
	}
	if _, err := AnalyzeDetectability(f, []int{-1}); err == nil {
		t.Fatal("negative rule must error")
	}
}
