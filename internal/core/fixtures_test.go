package core

import (
	"testing"

	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

// paperTopology builds the six-switch topology of the paper's Fig. 2 /
// Fig. 3 examples: S0→S1→S2→S5 (upper path) and S3→S4→S5 (lower path),
// with the S1–S3 link the adversary uses for deviation.
func paperTopology(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder("paper-fig")
	ids := make([]topo.SwitchID, 6)
	for i := range ids {
		ids[i] = b.AddSwitch("S"+string(rune('0'+i)), "")
	}
	b.Connect(ids[0], ids[1])
	b.Connect(ids[1], ids[2])
	b.Connect(ids[2], ids[5])
	b.Connect(ids[1], ids[3])
	b.Connect(ids[3], ids[4])
	b.Connect(ids[4], ids[5])
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// paperRules creates one wildcard rule per switch with dense IDs: rule
// i lives on switch Si (the paper's r_{i+1}).
func paperRules(t *testing.T, top *topo.Topology) []flowtable.Rule {
	t.Helper()
	rules := make([]flowtable.Rule, 6)
	for i := range rules {
		rules[i] = flowtable.Rule{
			ID:     i,
			Switch: topo.SwitchID(i),
			Match:  layout.Wildcard(),
			Action: flowtable.Action{Type: flowtable.ActionOutput, Port: 0},
		}
	}
	return rules
}

// fig2FCM builds the FCM of Eq. 6: flows a=[r1,r2,r3,r6], b=[r3,r6],
// c=[r5,r6] (0-indexed rule IDs).
func fig2FCM(t *testing.T) *fcm.FCM {
	t.Helper()
	top := paperTopology(t)
	f, err := fcm.FromHistories(top, paperRules(t, top), [][]int{
		{0, 1, 2, 5},
		{2, 5},
		{4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fig3FCM builds the FCM of Eq. 8: flow c additionally matches r4, i.e.
// c=[r4,r5,r6].
func fig3FCM(t *testing.T) *fcm.FCM {
	t.Helper()
	top := paperTopology(t)
	f, err := fcm.FromHistories(top, paperRules(t, top), [][]int{
		{0, 1, 2, 5},
		{2, 5},
		{3, 4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// paperHPrime is the deviated history of flow a in both figures:
// S0→S1→S3→S4→S5, i.e. [r1,r2,r4,r5,r6] 1-indexed.
func paperHPrime() []int { return []int{0, 1, 3, 4, 5} }
