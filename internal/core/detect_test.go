package core

import (
	"math"
	"math/rand"
	"testing"

	"foces/internal/matrix"
)

func TestPaperFig2DetectsAnomaly(t *testing.T) {
	// Eq. 7: Y' = (3,3,4,3,8,12) yields Δ = (0,0,0,3,0,0), so
	// Err_max = 3 and Err_med = 0 give AI = +∞ > T (the paper's own
	// worked example).
	f := fig2FCM(t)
	y := []float64{3, 3, 4, 3, 8, 12}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatal("Fig 2 anomaly must be detected")
	}
	if !math.IsInf(res.Index, 1) {
		t.Fatalf("AI = %v, want +Inf", res.Index)
	}
	if !matrix.VecEqualApprox(res.Delta, []float64{0, 0, 0, 3, 0, 0}, 1e-6) {
		t.Fatalf("Δ = %v", res.Delta)
	}
	if !matrix.VecEqualApprox(res.XHat, []float64{3, 1, 8}, 1e-6) {
		t.Fatalf("X̂ = %v, want (3,1,8)", res.XHat)
	}
	if res.ErrMax != 3 || res.ErrMed > 1e-6 {
		t.Fatalf("ErrMax=%v ErrMed=%v", res.ErrMax, res.ErrMed)
	}
}

func TestPaperFig3AnomalyIsMissed(t *testing.T) {
	// Eq. 8's counterexample: Y' = (3,3,4,8,8,12) admits the exact
	// solution X̂ = (3,1,8), so FOCES sees a consistent system and must
	// NOT flag an anomaly (the paper's undetectable case).
	f := fig3FCM(t)
	y := []float64{3, 3, 4, 8, 8, 12}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("Fig 3 counterexample must be missed, got AI=%v", res.Index)
	}
	if res.Index != 0 {
		t.Fatalf("AI = %v, want 0 for consistent system", res.Index)
	}
	if !matrix.VecEqualApprox(res.XHat, []float64{3, 1, 8}, 1e-6) {
		t.Fatalf("X̂ = %v, want (3,1,8)", res.XHat)
	}
}

func TestDetectCleanCountersScoreZero(t *testing.T) {
	f := fig2FCM(t)
	x := []float64{3, 4, 5}
	y, err := f.H.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous || res.Index != 0 {
		t.Fatalf("clean counters flagged: %+v", res)
	}
	if !matrix.VecEqualApprox(res.XHat, x, 1e-6) {
		t.Fatalf("X̂ = %v, want %v", res.XHat, x)
	}
}

func TestDetectSolversAgree(t *testing.T) {
	f := fig2FCM(t)
	y := []float64{3, 3, 4, 3, 8, 12}
	chol, err := Detect(f.H, y, Options{Solver: SolverCholesky})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := Detect(f.H, y, Options{Solver: SolverCG})
	if err != nil {
		t.Fatal(err)
	}
	if chol.Anomalous != cg.Anomalous {
		t.Fatal("solvers disagree on verdict")
	}
	if !matrix.VecEqualApprox(chol.Delta, cg.Delta, 1e-6) {
		t.Fatalf("Δ disagree: %v vs %v", chol.Delta, cg.Delta)
	}
}

func TestDetectValidation(t *testing.T) {
	f := fig2FCM(t)
	if _, err := Detect(f.H, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	empty, err := matrix.NewCSR(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(empty, nil, Options{})
	if err != nil || res.Anomalous {
		t.Fatalf("empty system: %+v err=%v", res, err)
	}
	if _, err := Detect(f.H, make([]float64, 6), Options{Solver: Solver(99)}); err == nil {
		t.Fatal("unknown solver must error")
	}
}

func TestSolverString(t *testing.T) {
	if SolverCholesky.String() != "cholesky" || SolverCG.String() != "cg" || Solver(0).String() != "unknown" {
		t.Fatal("Solver strings wrong")
	}
}

func TestThresholdControlsVerdict(t *testing.T) {
	f := fig2FCM(t)
	// Craft counters with moderate inconsistency: AI finite.
	y := []float64{3, 3, 4.5, 0.5, 8, 12}
	strict, err := Detect(f.H, y, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lax, err := Detect(f.H, y, Options{Threshold: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Anomalous {
		t.Fatalf("strict threshold must flag (AI=%v)", strict.Index)
	}
	if lax.Anomalous {
		t.Fatal("huge threshold must not flag")
	}
	if strict.Index != lax.Index {
		t.Fatal("threshold must not change the index")
	}
}

func TestAnomalyIndexZeroTolerance(t *testing.T) {
	if anomalyIndex(1e-9, 0, 1e-6) != 0 {
		t.Fatal("sub-tolerance max must score 0")
	}
	if !math.IsInf(anomalyIndex(5, 1e-9, 1e-6), 1) {
		t.Fatal("zero median with real max must score +Inf")
	}
	if got := anomalyIndex(6, 2, 1e-6); got != 3 {
		t.Fatalf("AI = %v, want 3", got)
	}
}

func TestDetectNoiseRobustness(t *testing.T) {
	// Gaussian read noise alone must mostly stay under the default
	// threshold: the error vector is folded-normal, so AI rarely blows
	// up (the premise of §IV-A's threshold derivation). With least
	// squares absorbing part of the noise the flag rate stays low, but
	// the key assertion is that injecting a real anomaly flags *more*
	// often than noise alone.
	f := fig2FCM(t)
	rng := rand.New(rand.NewSource(12))
	x := []float64{1000, 1200, 900}
	y0, err := f.H.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	noiseFlags, anomalyFlags := 0, 0
	const trials = 100
	for i := 0; i < trials; i++ {
		y := make([]float64, len(y0))
		for j := range y {
			y[j] = y0[j] + rng.NormFloat64()*10
		}
		res, err := Detect(f.H, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Anomalous {
			noiseFlags++
		}
		// Divert flow a (volume x[0]) onto the lower path: r3's counter
		// loses it, r4/r5 gain it.
		y[2] -= x[0]
		y[3] += x[0]
		y[4] += x[0]
		res, err = Detect(f.H, y, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Anomalous {
			anomalyFlags++
		}
	}
	if anomalyFlags <= noiseFlags {
		t.Fatalf("anomaly flagged %d <= noise flagged %d", anomalyFlags, noiseFlags)
	}
	if anomalyFlags < trials*9/10 {
		t.Fatalf("anomaly flagged only %d/%d", anomalyFlags, trials)
	}
}
