package core

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/topo"
)

// TestAdaptiveAdversaryCounterSpoofing exercises the strongest §II-B
// adversary: the compromised switch drops a flow AND reports the
// counters the controller expects for its own rules. Detection must
// still succeed because the deficit shows up at benign downstream
// switches (the "majority good" assumption).
func TestAdaptiveAdversaryCounterSpoofing(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, net, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	tm := dataplane.UniformTraffic(top, 1000)

	// Baseline interval to learn the expected per-rule counters.
	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	expected := net.CollectCounters()
	net.ResetCounters()

	// Compromise: drop one flow mid-path and spoof every counter on the
	// compromised switch to its expected value.
	atk, err := dataplane.RandomAttack(rng, net, dataplane.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	tbl, err := net.Table(atk.Switch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Dump() {
		if err := tbl.SpoofCounter(r.ID, expected[r.ID]); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	reported := net.CollectCounters()
	// The compromised switch's own rules look perfectly normal.
	for _, r := range tbl.Dump() {
		if reported[r.ID] != expected[r.ID] {
			t.Fatalf("spoof failed: rule %d reports %d, expected lie %d",
				r.ID, reported[r.ID], expected[r.ID])
		}
	}

	res, err := Detect(f.H, f.CounterVector(reported), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("spoofed drop attack missed: AI=%v", res.Index)
	}

	// Repair and stop lying: the network must go quiet.
	if err := atk.Revert(net); err != nil {
		t.Fatal(err)
	}
	tbl.ClearSpoofedCounters()
	net.ResetCounters()
	if _, err := net.Run(rng, tm); err != nil {
		t.Fatal(err)
	}
	res, err = Detect(f.H, f.CounterVector(net.CollectCounters()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("repaired network flagged: AI=%v", res.Index)
	}
}
