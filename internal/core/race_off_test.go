//go:build !race

package core

// raceEnabled reports whether the race detector instruments this test
// binary (allocation-count assertions are skipped under it: the
// detector's shadow-memory bookkeeping allocates).
const raceEnabled = false
