package core

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// The three anomaly classes of the Security Analysis (§V), each
// expressed as the counter pattern it leaves on a full-size network
// (FatTree(4), pair-exact rules, uniform 1000-packet flows) and checked
// against the detector. The anomaly index needs a realistic rule count
// for its majority-good median; tiny fixtures compress the statistic.

func securityBaseline(t *testing.T) (*fcm.FCM, []float64, *fcm.Flow) {
	t.Helper()
	f := fattreeFCM(t)
	x := make([]float64, f.NumFlows())
	for i := range x {
		x[i] = 1000
	}
	y, err := f.H.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a victim flow with at least 4 hops so a mid-path switch can
	// be bypassed.
	for _, fl := range f.Flows {
		if len(fl.RuleIDs) >= 4 {
			return f, y, fl
		}
	}
	t.Fatal("no long flow")
	return nil, nil, nil
}

func TestSecuritySwitchBypass(t *testing.T) {
	// §V switch bypass: S_i forwards directly to S_{i+2}; the counters
	// of r_i and r_{i+2} stay consistent but r_{i+1} falls short.
	f, y, fl := securityBaseline(t)
	y[fl.RuleIDs[1]] -= 1000 // the skipped middle hop
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("switch bypass missed: AI=%v", res.Index)
	}
}

func TestSecurityPathDetour(t *testing.T) {
	// §V path detour: S_i loops packets through D_1..D_m and back, so
	// the detour switches' counters run HIGHER than any volume
	// assignment explains. Inflate two off-path rules by the detoured
	// volume while the original path stays intact.
	f, y, fl := securityBaseline(t)
	onPath := make(map[int]bool, len(fl.RuleIDs))
	for _, rid := range fl.RuleIDs {
		onPath[rid] = true
	}
	inflated := 0
	for rid := 0; rid < f.NumRules() && inflated < 2; rid++ {
		if !onPath[rid] {
			y[rid] += 1000
			inflated++
		}
	}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("path detour missed: AI=%v", res.Index)
	}
}

func TestSecurityEarlyDrop(t *testing.T) {
	// §V early drop: S_i discards the flow, so every downstream counter
	// falls short.
	f, y, fl := securityBaseline(t)
	for _, rid := range fl.RuleIDs[2:] {
		y[rid] -= 1000
	}
	res, err := Detect(f.H, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous {
		t.Fatalf("early drop missed: AI=%v", res.Index)
	}
}

// fattreeFCM builds the FatTree(4) pair-exact FCM.
func fattreeFCM(t *testing.T) *fcm.FCM {
	t.Helper()
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSecurityBypassDataPlane exercises switch bypass end-to-end: a
// chain with a physical shortcut link, intent routed through the
// middle switch, and the compromised first hop skipping it. The
// deviated packets still reach the destination (the last hop's rule
// matches), yet the bypassed switch's dark counter betrays the attack.
func TestSecurityBypassDataPlane(t *testing.T) {
	b := topo.NewBuilder("bypass")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	s2 := b.AddSwitch("s2", "")
	b.Connect(s0, s1)
	b.Connect(s1, s2)
	b.Connect(s0, s2) // the shortcut the adversary abuses
	h0 := b.AddHost("h0", header.IPv4(10, 0, 0, 1), s0)
	h1 := b.AddHost("h1", header.IPv4(10, 0, 0, 2), s2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	host0, _ := top.Host(h0)
	host1, _ := top.Host(h1)
	match, err := layout.MatchExact(layout.Wildcard(), header.FieldDstIP, host1.IP)
	if err != nil {
		t.Fatal(err)
	}
	p01, _ := top.PortToward(s0, s1)
	p12, _ := top.PortToward(s1, s2)
	// Intent: h0 -> s0 -> s1 -> s2 -> h1 (through the waypoint s1).
	rules := []flowtable.Rule{
		{ID: 0, Switch: s0, Priority: 1, Match: match, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p01}},
		{ID: 1, Switch: s1, Priority: 1, Match: match, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p12}},
		{ID: 2, Switch: s2, Priority: 1, Match: match, Action: flowtable.Action{Type: flowtable.ActionDeliver, Port: host1.Port}},
	}
	f, err := fcm.Generate(top, layout, rules)
	if err != nil {
		t.Fatal(err)
	}
	net := dataplane.NewNetwork(top, layout)
	for _, r := range rules {
		tbl, err := net.Table(r.Switch)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	// Compromise s0: bypass s1 via the shortcut.
	pShortcut, _ := top.PortToward(s0, s2)
	atk := dataplane.Attack{
		Switch: s0, RuleID: 0, Kind: dataplane.AttackPortSwap,
		NewAction: flowtable.Action{Type: flowtable.ActionOutput, Port: pShortcut},
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sum, err := net.Run(rng, dataplane.TrafficMatrix{{Src: host0.ID, Dst: host1.ID}: 1000})
	if err != nil {
		t.Fatal(err)
	}
	out := sum.Flows[dataplane.FlowKey{Src: host0.ID, Dst: host1.ID}]
	if out.Delivered != 1000 {
		t.Fatalf("bypass must still deliver (that is its point): %+v", out)
	}
	res, err := Detect(f.H, f.CounterVector(net.CollectCounters()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With only three rules the max/median index saturates at 2 (the
	// network-scale statistic is exercised by TestSecuritySwitchBypass
	// above); the *inconsistency* itself — Definition 2's detectability
	// — must still be plain: a residual on the order of the diverted
	// volume.
	if res.ErrMax < 300 {
		t.Fatalf("bypass left no residual: Δ=%v", res.Delta)
	}
	// The bypassed waypoint's counter is the giveaway.
	if net.CollectCounters()[1] != 0 {
		t.Fatalf("waypoint rule unexpectedly counted %d packets", net.CollectCounters()[1])
	}
}
