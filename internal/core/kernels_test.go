package core

import (
	"reflect"
	"testing"

	"foces/internal/matrix"
)

// TestKernelPrepareDeterminism is the tentpole equivalence gate:
// preparing the baseline with 1 kernel worker and with many must yield
// byte-identical Detector outcomes, because parallel Gram is bitwise
// equal to serial and blocked-Cholesky dispatch never consults the
// worker count. Run under -race -count=2 by make test-kernels.
func TestKernelPrepareDeterminism(t *testing.T) {
	f, clean, attacked := runAttackScenario(t, "fattree4", 3)
	slices, err := BuildSlices(f)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		d  *Detector
		sd *SlicedDetector
	}
	build := func(o matrix.KernelOptions) pair {
		prev := matrix.SetKernelDefaults(o)
		defer matrix.SetKernelDefaults(prev)
		d, err := NewDetector(f.H, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sd, err := NewSlicedDetector(slices, f.NumRules(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return pair{d: d, sd: sd}
	}
	serial := build(matrix.KernelOptions{Workers: 1})
	parallel := build(matrix.KernelOptions{Workers: 8})
	forced := build(matrix.KernelOptions{Serial: true, BlockSize: 32})
	_ = forced // exercised below only for verdict agreement
	for name, y := range map[string][]float64{"clean": clean, "attacked": attacked} {
		wantFull, err := serial.d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		gotFull, err := parallel.d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantFull, gotFull) {
			t.Fatalf("%s: full outcome differs between 1 and 8 prepare workers", name)
		}
		wantSliced, err := serial.sd.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		gotSliced, err := parallel.sd.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantSliced, gotSliced) {
			t.Fatalf("%s: sliced outcome differs between 1 and 8 prepare workers", name)
		}
		// The forced-serial reference kernels may differ in float dust
		// (unblocked vs blocked factor) but never in verdict.
		refFull, err := forced.d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if refFull.Anomalous != wantFull.Anomalous {
			t.Fatalf("%s: serial reference verdict %v vs kernel verdict %v", name, refFull.Anomalous, wantFull.Anomalous)
		}
	}
}

// TestKernelDetectBatchMatchesLoop checks the batched multi-RHS path
// returns results byte-identical to per-window Detect calls.
func TestKernelDetectBatchMatchesLoop(t *testing.T) {
	f, clean, attacked := runAttackScenario(t, "fattree4", 5)
	d, err := NewDetector(f.H, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(clean))
	for i, v := range clean {
		scaled[i] = v * 1.5
	}
	ys := [][]float64{clean, attacked, scaled, clean}
	batch, err := d.DetectBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ys) {
		t.Fatalf("batch returned %d results for %d windows", len(batch), len(ys))
	}
	for r, y := range ys {
		want, err := d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, batch[r]) {
			t.Fatalf("window %d: batch result diverged from loop:\n got %+v\nwant %+v", r, batch[r], want)
		}
	}
	// The batch must not have perturbed the engine for later singles.
	again, err := d.Detect(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Anomalous {
		t.Fatal("attacked window no longer anomalous after batch")
	}
}

// TestKernelDetectBatchFallbacks covers the windows that cannot take
// the multi-RHS solve: empty batches, CG solver, and dimension errors.
func TestKernelDetectBatchFallbacks(t *testing.T) {
	f, clean, attacked := runAttackScenario(t, "fattree4", 7)
	d, err := NewDetector(f.H, Options{Solver: SolverCG})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := d.DetectBatch(nil); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	ys := [][]float64{clean, attacked}
	batch, err := d.DetectBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	for r, y := range ys {
		want, err := d.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, batch[r]) {
			t.Fatalf("CG window %d: batch diverged from loop", r)
		}
	}
	if _, err := d.DetectBatch([][]float64{clean[:3]}); err == nil {
		t.Fatal("short window accepted")
	}
}

// TestKernelSlicedPersistentPool drives many detections through the
// persistent worker pool, interleaved with sequential runs, and checks
// every parallel outcome against the sequential reference (also a
// regression net for job-state reuse across runs).
func TestKernelSlicedPersistentPool(t *testing.T) {
	slices, numRules, clean, attacked := engineFixture(t)
	sd, err := NewSlicedDetector(slices, numRules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		y := clean
		if round%2 == 1 {
			y = attacked
		}
		want, err := sd.DetectSequential(y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sd.Detect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: pooled outcome diverged from sequential", round)
		}
	}
}

// TestKernelSlicedDetectAllocationFlat asserts steady-state sliced
// detection allocates only its returned outcome: the pooled scratch
// (gathers, results, errors, dispatch job) plus the persistent workers
// leave nothing per-run beyond the per-slice result vectors.
func TestKernelSlicedDetectAllocationFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	slices, numRules, clean, _ := engineFixture(t)
	sd, err := NewSlicedDetector(slices, numRules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm the scratch pool and worker pool
		if _, err := sd.Detect(clean); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sd.Detect(clean); err != nil {
			t.Fatal(err)
		}
	})
	// Each slice's Result carries 3 fresh vectors (XHat, YHat, Delta)
	// plus outcome assembly; everything else must come from the pools.
	bound := float64(4*len(slices) + 32)
	if allocs > bound {
		t.Fatalf("sliced detect allocates %.0f per run, want <= %.0f (slices=%d)", allocs, bound, len(slices))
	}
}
