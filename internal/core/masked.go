package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"foces/internal/matrix"
	"foces/internal/stats"
)

// This file supports the churn subsystem: engines rebuilt from
// incrementally maintained factors, and detection with a subset of rows
// masked out — the reconciliation path for counter windows that
// straddle a rule update (rows whose rules changed mid-window carry
// mixed-epoch counts and must not be read as forwarding anomalies).

// NewDetectorFromPrepared wraps an externally prepared least-squares
// engine (for example one whose factor was advanced by rank-one
// update/downdate from the previous rule generation) as a Detector.
func NewDetectorFromPrepared(ls *matrix.PreparedLS, opts Options) *Detector {
	d := &Detector{h: ls.H(), opts: opts, ls: ls}
	rows, cols := d.h.Rows(), d.h.Cols()
	d.pool.New = func() any {
		return &detectScratch{ws: make([]float64, cols), med: make([]float64, rows)}
	}
	return d
}

// Prepared exposes the engine's prepared least-squares solver (nil when
// H is degenerate or the solver is not Cholesky). Callers deriving a
// modified factor must Clone it.
func (d *Detector) Prepared() *matrix.PreparedLS { return d.ls }

// NewSlicedDetectorWithEngines assembles a sliced detector from
// pre-built per-slice engines, skipping the per-slice factorization
// that NewSlicedDetector performs. The churn manager uses it to carry
// unaffected slices' engines across a rule update unchanged. Each
// engine's row count must match its slice's RuleRows.
func NewSlicedDetectorWithEngines(slices []Slice, engines []*Detector, numRules int, opts Options) (*SlicedDetector, error) {
	if len(engines) != len(slices) {
		return nil, fmt.Errorf("core: %d engines for %d slices", len(engines), len(slices))
	}
	for i, sl := range slices {
		for _, rid := range sl.RuleRows {
			if rid < 0 || rid >= numRules {
				return nil, fmt.Errorf("core: slice rule %d outside counter vector (%d)", rid, numRules)
			}
		}
		if engines[i] == nil {
			return nil, fmt.Errorf("core: slice switch %d: nil engine", sl.Switch)
		}
		if engines[i].h.Rows() != len(sl.RuleRows) {
			return nil, fmt.Errorf("core: slice switch %d: engine has %d rows, slice %d",
				sl.Switch, engines[i].h.Rows(), len(sl.RuleRows))
		}
	}
	return newSlicedDetector(slices, engines, numRules, opts), nil
}

// DetectMasked runs Algorithm 1 with the given rows (indices into y /
// the engine's H) excluded from the equation system and from the
// error statistics. The prepared Gram factor is downdated by each
// masked row in O(k·n²) instead of refactored; if the downdated system
// loses positive definiteness the engine falls back to a one-shot
// solve over the surviving rows. Delta and YHat stay aligned with the
// full row space (masked entries read 0 in Delta).
func (d *Detector) DetectMasked(y []float64, masked []int) (Result, error) {
	h := d.h
	if h.Rows() != len(y) {
		return Result{}, fmt.Errorf("core: H is %dx%d but y has %d entries", h.Rows(), h.Cols(), len(y))
	}
	mask := make([]bool, h.Rows())
	nMasked := 0
	for _, i := range masked {
		if i < 0 || i >= h.Rows() {
			return Result{}, fmt.Errorf("core: masked row %d outside %d rows", i, h.Rows())
		}
		if !mask[i] {
			mask[i] = true
			nMasked++
		}
	}
	if nMasked == 0 {
		return d.Detect(y)
	}
	tel := d.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	kept := make([]int, 0, h.Rows()-nMasked)
	for i := 0; i < h.Rows(); i++ {
		if !mask[i] {
			kept = append(kept, i)
		}
	}
	yKept := make([]float64, len(kept))
	for j, i := range kept {
		yKept[j] = y[i]
	}
	opts := d.opts.withDefaults(yKept)
	if len(kept) == 0 || h.Rows() == 0 {
		// Every observable row is masked: nothing to check this window.
		res := Result{Delta: make([]float64, len(y))}
		tel.outcome(t0, res)
		return res, nil
	}
	if h.Cols() == 0 {
		delta := make([]float64, len(y))
		compact := make([]float64, 0, len(kept))
		for _, i := range kept {
			delta[i] = math.Abs(y[i])
			compact = append(compact, delta[i])
		}
		res := Result{Delta: delta, YHat: make([]float64, len(y))}
		res.ErrMax, _ = stats.Max(compact)
		res.Index = anomalyIndex(res.ErrMax, 0, opts.ZeroTol)
		res.Anomalous = res.Index > opts.Threshold
		tel.outcome(t0, res)
		return res, nil
	}
	var xHat []float64
	solved := false
	// CloneFactor works for dense- and sparse-backed engines alike; a
	// nil clone (degenerate engine) falls through to the one-shot solve.
	if chol := d.cloneFactorForMask(opts); chol != nil {
		row := make([]float64, h.Cols())
		ok := true
		for i := range mask {
			if !mask[i] {
				continue
			}
			for j := range row {
				row[j] = 0
			}
			nnz := 0
			h.RowEntries(i, func(col int, v float64) {
				row[col] = v
				nnz++
			})
			if nnz == 0 {
				continue // placeholder / all-zero row: Gram unaffected
			}
			if err := chol.Downdate(row); err != nil {
				if errors.Is(err, matrix.ErrNotPositiveDefinite) {
					ok = false
					break
				}
				return Result{}, fmt.Errorf("core: masked downdate: %w", err)
			}
		}
		if ok {
			// Hᵀy with masked rows zeroed is exactly the masked system's
			// right-hand side.
			ym := make([]float64, len(y))
			copy(ym, y)
			for i := range mask {
				if mask[i] {
					ym[i] = 0
				}
			}
			xHat = make([]float64, h.Cols())
			if err := h.TMulVecInto(xHat, ym); err != nil {
				return Result{}, err
			}
			if err := chol.SolveInto(xHat, xHat, make([]float64, h.Cols())); err != nil {
				return Result{}, fmt.Errorf("core: masked solve: %w", err)
			}
			solved = true
		}
	}
	if !solved {
		cols := make([]int, h.Cols())
		for j := range cols {
			cols[j] = j
		}
		sub, err := h.SubMatrix(kept, cols)
		if err != nil {
			return Result{}, err
		}
		xHat, err = solve(sub, yKept, opts.Solver)
		if err != nil {
			return Result{}, fmt.Errorf("core: masked volume estimate: %w", err)
		}
	}
	yHat := make([]float64, h.Rows())
	if err := h.MulVecInto(yHat, xHat); err != nil {
		return Result{}, err
	}
	delta := make([]float64, h.Rows())
	compact := make([]float64, 0, len(kept))
	for _, i := range kept {
		delta[i] = math.Abs(y[i] - yHat[i])
		compact = append(compact, delta[i])
	}
	res := Result{Delta: delta, XHat: xHat, YHat: yHat}
	res.ErrMax, _ = stats.Max(compact)
	res.ErrMed = opts.denominatorInto(make([]float64, len(compact)), compact)
	res.Index = anomalyIndex(res.ErrMax, res.ErrMed, opts.ZeroTol)
	res.Anomalous = res.Index > opts.Threshold
	tel.outcome(t0, res)
	return res, nil
}

// cloneFactorForMask returns an independently downdatable copy of the
// engine's Gram factor for the masked path, or nil when the engine has
// no factor to downdate (non-Cholesky solver, degenerate H).
func (d *Detector) cloneFactorForMask(opts Options) matrix.UpdatableFactor {
	if opts.Solver != SolverCholesky || d.ls == nil {
		return nil
	}
	return d.ls.CloneFactor()
}

// DetectMasked runs Algorithm 2 with the given global rule rows masked
// out of every slice they appear in — the sliced form of the
// epoch-straddling-window reconciliation. It runs sequentially; the
// reconciliation path fires only on the single window that spans an
// update, not in steady state.
func (sd *SlicedDetector) DetectMasked(y []float64, masked []int) (SlicedOutcome, error) {
	if len(masked) == 0 {
		return sd.Detect(y)
	}
	if len(y) != sd.numRules {
		return SlicedOutcome{}, fmt.Errorf("core: counter vector has %d entries, sliced detector expects %d", len(y), sd.numRules)
	}
	tel := sd.tel
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
		tel.fanout.Observe(float64(len(sd.slices)))
	}
	maskSet := make(map[int]bool, len(masked))
	for _, rid := range masked {
		maskSet[rid] = true
	}
	results := make([]Result, len(sd.slices))
	for i, sl := range sd.slices {
		sub := make([]float64, len(sl.RuleRows))
		var local []int
		for j, rid := range sl.RuleRows {
			sub[j] = y[rid]
			if maskSet[rid] {
				local = append(local, j)
			}
		}
		res, err := sd.engines[i].DetectMasked(sub, local)
		if err != nil {
			return SlicedOutcome{}, fmt.Errorf("core: slice switch %d: %w", sl.Switch, err)
		}
		tel.slice(res)
		results[i] = res
	}
	out := MergeSliceResults(sd.slices, results)
	tel.outcome(t0, out.Anomalous)
	return out, nil
}
