package core

import "math"

// ewmaCap bounds infinite anomaly indices when folded into the moving
// average so the EWMA stays finite and recoverable.
const ewmaCap = 1e6

// MonitorConfig tunes the time-series monitor.
type MonitorConfig struct {
	// Threshold is the per-period anomaly-index threshold; zero selects
	// the paper's 4.5.
	Threshold float64
	// Consecutive is the number of consecutive threshold exceedances
	// required before alerting; zero selects 2. Raising it trades
	// detection delay for false-positive suppression under heavy loss.
	Consecutive int
	// EWMAAlpha is the smoothing factor of the reported moving average;
	// zero selects 0.3.
	EWMAAlpha float64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	// Non-positive values select the defaults. Negatives would bypass a
	// zero-only check and yield monitors that always fire (negative
	// threshold), alert on the first exceedance regardless of debouncing
	// (negative consecutive) or diverge (negative alpha); an alpha above
	// 1 would likewise oscillate, so clamp it to plain averaging.
	if c.Threshold <= 0 {
		c.Threshold = 4.5
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 2
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.3
	}
	if c.EWMAAlpha > 1 {
		c.EWMAAlpha = 1
	}
	return c
}

// Monitor turns per-period anomaly indices into a debounced alarm: an
// alert fires only after Consecutive periods above the threshold. This
// is an engineering extension over the paper's per-period decision
// that suppresses the loss-induced false positives Fig. 8 shows at
// 20-25% loss, at the cost of one extra detection period of latency.
type Monitor struct {
	cfg    MonitorConfig
	streak int
	ewma   float64
	primed bool
}

// MonitorVerdict is the outcome of feeding one period's index.
type MonitorVerdict struct {
	// Alert is true when the debounced alarm is firing.
	Alert bool
	// Exceeded is true when this period's index crossed the threshold.
	Exceeded bool
	// Streak counts consecutive exceedances so far.
	Streak int
	// EWMA is the smoothed index.
	EWMA float64
}

// NewMonitor returns a monitor with the given configuration.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Feed records one period's anomaly index and returns the debounced
// verdict.
func (m *Monitor) Feed(index float64) MonitorVerdict {
	capped := index
	if math.IsInf(capped, 1) || capped > ewmaCap {
		capped = ewmaCap
	}
	if !m.primed {
		m.ewma = capped
		m.primed = true
	} else {
		a := m.cfg.EWMAAlpha
		m.ewma = a*capped + (1-a)*m.ewma
	}
	exceeded := index > m.cfg.Threshold
	if exceeded {
		m.streak++
	} else {
		m.streak = 0
	}
	return MonitorVerdict{
		Alert:    m.streak >= m.cfg.Consecutive,
		Exceeded: exceeded,
		Streak:   m.streak,
		EWMA:     m.ewma,
	}
}

// Reset clears all state (e.g. after an operator acknowledges an
// incident).
func (m *Monitor) Reset() {
	m.streak = 0
	m.ewma = 0
	m.primed = false
}
