// Package core implements the FOCES detection algorithms: the
// threshold-based network-wide detector (Algorithm 1), the
// slicing-based scalable detector (Algorithm 2) built on Rule Bipartite
// Graphs, the Theorem 1/Theorem 2 detectability analysis, and the
// per-switch anomaly localization sketched as future work in §IV-B.
package core

import (
	"fmt"
	"math"

	"foces/internal/matrix"
	"foces/internal/stats"
)

// Solver selects the least-squares backend for Eq. 4.
type Solver int

// Solver backends.
const (
	// SolverCholesky solves the normal equations (HᵀH)x = Hᵀy by
	// Cholesky factorization — the paper's (NumPy) approach.
	SolverCholesky Solver = iota + 1
	// SolverCG uses conjugate gradient on the normal equations without
	// materializing HᵀH (memory-lean ablation alternative).
	SolverCG
)

func (s Solver) String() string {
	switch s {
	case SolverCholesky:
		return "cholesky"
	case SolverCG:
		return "cg"
	default:
		return "unknown"
	}
}

// Denominator selects the anomaly-index denominator statistic.
type Denominator int

// Denominator choices.
const (
	// DenomMedian is the paper's choice: AI = Err_max / Err_med. The
	// median is robust to the handful of large errors an anomaly
	// causes, keeping the denominator at the noise level.
	DenomMedian Denominator = iota + 1
	// DenomMean uses the mean instead (ablation): large anomaly errors
	// inflate the denominator and depress the index, weakening
	// detection — quantified in the AblationIndexDenominator test and
	// benchmark.
	DenomMean
)

func (d Denominator) String() string {
	switch d {
	case DenomMedian:
		return "median"
	case DenomMean:
		return "mean"
	default:
		return "unknown"
	}
}

// Options tunes detection.
type Options struct {
	// Threshold is the anomaly-index threshold T; zero selects the
	// paper's default 4.5.
	Threshold float64
	// Solver selects the least-squares backend; zero selects Cholesky.
	Solver Solver
	// ZeroTol is the absolute tolerance below which an error-vector
	// entry counts as zero; zero selects 1e-6·(1 + max|y|).
	ZeroTol float64
	// Denominator selects the index denominator; zero selects the
	// paper's median.
	Denominator Denominator
}

func (o Options) withDefaults(y []float64) Options {
	if o.Threshold == 0 {
		o.Threshold = stats.DefaultThreshold
	}
	if o.Solver == 0 {
		o.Solver = SolverCholesky
	}
	if o.ZeroTol == 0 {
		maxAbs := 0.0
		for _, v := range y {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		o.ZeroTol = 1e-6 * (1 + maxAbs)
	}
	if o.Denominator == 0 {
		o.Denominator = DenomMedian
	}
	return o
}

// denominatorInto computes the configured denominator statistic of
// delta, using scratch as quickselect working storage for the median.
func (o Options) denominatorInto(scratch, delta []float64) float64 {
	switch o.Denominator {
	case DenomMean:
		m, _ := stats.Mean(delta)
		return m
	default:
		m, _ := stats.MedianInto(scratch, delta)
		return m
	}
}

// Result reports one detection run.
type Result struct {
	// Anomalous is true when Index > threshold (Algorithm 1 line 7).
	Anomalous bool
	// Index is the anomaly index AI = Err_max / Err_med; +Inf when the
	// median error is (numerically) zero but the max is not, 0 when the
	// whole error vector is zero.
	Index float64
	// ErrMax and ErrMed are the max and median of Δ.
	ErrMax, ErrMed float64
	// Delta is the error vector Δ = |Y' − Ŷ| (Eq. 5).
	Delta []float64
	// XHat is the least-squares volume estimate (Eq. 4).
	XHat []float64
	// YHat is the fitted counter vector H·X̂.
	YHat []float64
}

// Detect runs Algorithm 1 (Detect_Anomaly_Baseline) on the flow-counter
// matrix h and observed counter vector y. It builds a throwaway
// Detector, so factorization cost is paid on every call — loops that
// detect repeatedly against fixed rules should construct one Detector
// and reuse it.
func Detect(h *matrix.CSR, y []float64, opts Options) (Result, error) {
	if h.Rows() != len(y) {
		return Result{}, fmt.Errorf("core: H is %dx%d but y has %d entries", h.Rows(), h.Cols(), len(y))
	}
	d, err := NewDetector(h, opts)
	if err != nil {
		return Result{}, err
	}
	return d.Detect(y)
}

// anomalyIndex computes AI = Err_max/Err_med with numeric-zero
// handling: a perfectly consistent system scores 0 and a system whose
// median error vanishes while the max does not scores +Inf (the paper's
// Fig. 2 example).
func anomalyIndex(errMax, errMed, zeroTol float64) float64 {
	if errMax <= zeroTol {
		return 0
	}
	if errMed <= zeroTol {
		return math.Inf(1)
	}
	return errMax / errMed
}

func solve(h *matrix.CSR, y []float64, s Solver) ([]float64, error) {
	switch s {
	case SolverCholesky:
		return matrix.SolveNormalEquations(h, y, matrix.LeastSquaresOptions{})
	case SolverCG:
		return matrix.SolveNormalEquationsCG(h, y, matrix.CGOptions{})
	default:
		return nil, fmt.Errorf("core: unknown solver %d", s)
	}
}
