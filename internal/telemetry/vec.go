package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// vec is the shared child table behind the labeled metric families.
// Children are created on first use under a write lock and then served
// read-locked; hot paths are expected to resolve their children once
// at wiring time (With returns a stable pointer), so the lock never
// sits on a detection path.
type vec struct {
	labels []string
	mu     sync.RWMutex
	// key is the label values joined with 0xff, a byte the validator
	// rejects in label names and that never appears in our values.
	children map[string]*child
}

type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

const keySep = "\xff"

func (v *vec) get(lvs []string, mk func() *child) *child {
	if len(lvs) != len(v.labels) {
		panic("telemetry: label cardinality mismatch: want " +
			strings.Join(v.labels, ","))
	}
	key := strings.Join(lvs, keySep)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return c
	}
	c = mk()
	c.values = append([]string(nil), lvs...)
	if v.children == nil {
		v.children = make(map[string]*child)
	}
	v.children[key] = c
	return c
}

// sorted returns the children ordered by their label values for
// deterministic exposition.
func (v *vec) sorted() []*child {
	v.mu.RLock()
	out := make([]*child, 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	nop bool
	v   *vec
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{nop: r.Nop(), v: &vec{labels: labels}}
	r.register(&family{name: name, help: help, typ: typeCounter, labels: labels, vec: cv.v})
	return cv
}

// With returns the child counter for the given label values, creating
// it on first use. The returned pointer is stable: resolve it once at
// wiring time and keep it.
func (cv *CounterVec) With(lvs ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.get(lvs, func() *child {
		return &child{counter: &Counter{nop: cv.nop}}
	}).counter
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct {
	nop bool
	v   *vec
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{nop: r.Nop(), v: &vec{labels: labels}}
	r.register(&family{name: name, help: help, typ: typeGauge, labels: labels, vec: gv.v})
	return gv
}

// With returns the child gauge for the given label values.
func (gv *GaugeVec) With(lvs ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.get(lvs, func() *child {
		return &child{gauge: &Gauge{nop: gv.nop}}
	}).gauge
}

// HistogramVec is a family of histograms sharing one set of bucket
// bounds, partitioned by label values.
type HistogramVec struct {
	nop    bool
	bounds []float64
	v      *vec
}

// NewHistogramVec registers and returns a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	hv := &HistogramVec{nop: r.Nop(), bounds: bounds, v: &vec{labels: labels}}
	r.register(&family{name: name, help: help, typ: typeHistogram, labels: labels, vec: hv.v})
	return hv
}

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(lvs ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.get(lvs, func() *child {
		return &child{hist: newHistogram(hv.nop, hv.bounds)}
	}).hist
}
