package telemetry

import (
	"sync"
	"testing"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); got == nil || len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v, want non-nil empty", got)
	}
	r.Push(1)
	r.Push(2)
	if got := r.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("snapshot = %v, want [1 2]", got)
	}
	r.Push(3)
	r.Push(4) // evicts 1
	r.Push(5) // evicts 2
	got := r.Snapshot()
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v (oldest first)", got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring[string]
	r.Push("x")
	if got := r.Snapshot(); got == nil || len(got) != 0 {
		t.Fatalf("nil ring snapshot = %v, want non-nil empty", got)
	}
	if r.Len() != 0 {
		t.Fatal("nil ring len != 0")
	}
}

func TestRingCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewRing[int](0)
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Push(base + i)
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(w * 1000)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("len = %d, want 16", r.Len())
	}
}
