// Package telemetry is a stdlib-only, allocation-conscious metrics core
// for the FOCES monitoring plane.
//
// The package provides atomic counters, gauges and fixed-bucket
// histograms with exponential bounds, labeled families behind a sharded
// registry, and a Prometheus text-exposition (format 0.0.4) HTTP
// handler. It is deliberately dependency-free so the detection hot path
// (solve, residual, slice fan-out) can be instrumented without pulling
// a metrics client into the module.
//
// Design constraints, in order:
//
//   - O(1) per observation, no allocation on the hot path. Counters and
//     histogram buckets are atomic.Uint64; gauges and histogram sums are
//     float64 bit patterns updated by CAS loops.
//   - Safe for concurrent use. Registration takes a per-shard lock;
//     observations never lock.
//   - A registry constructed with NewNop() hands out metrics whose
//     mutating methods return after a single branch, so the cost of
//     "telemetry disabled" is measurable and tiny. All metric methods
//     are additionally nil-receiver safe.
//
// Metric names follow Prometheus conventions and must match
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registering the same name twice panics:
// every family in this module is created once at wiring time, so a
// duplicate is a programming error, not a runtime condition.
package telemetry

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType enumerates the exposition families the registry can hold.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

const numShards = 8

// Registry holds metric families sharded by name so concurrent
// registration (and Gather) from independent subsystems does not
// serialise on a single lock. The zero value is not usable; construct
// with New or NewNop.
type Registry struct {
	nop    bool
	shards [numShards]shard
}

type shard struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is one named metric family: either a single unlabeled sample
// or a set of labeled children managed by a *Vec.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	// Exactly one of the following is set.
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vec     *vec
}

// New returns an empty live registry.
func New() *Registry { return &Registry{} }

// NewNop returns a registry whose metrics accept observations but drop
// them after a single branch. Use it to measure instrumentation
// overhead or to disable telemetry without nil-guarding every call
// site.
func NewNop() *Registry { return &Registry{nop: true} }

// Nop reports whether the registry drops all observations.
func (r *Registry) Nop() bool { return r != nil && r.nop }

func shardIndex(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % numShards)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs a family, panicking on invalid or duplicate names.
func (r *Registry) register(f *family) {
	if r == nil {
		return
	}
	if !validName(f.name) {
		panic("telemetry: invalid metric name " + f.name)
	}
	for _, l := range f.labels {
		if !validLabel(l) {
			panic("telemetry: invalid label name " + l + " on metric " + f.name)
		}
	}
	s := &r.shards[shardIndex(f.name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fams == nil {
		s.fams = make(map[string]*family)
	}
	if _, dup := s.fams[f.name]; dup {
		panic("telemetry: duplicate metric registration for " + f.name)
	}
	s.fams[f.name] = f
}

// families returns every registered family sorted by name.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	var out []*family
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, f := range s.fams {
			out = append(out, f)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter is a monotonically increasing value. The zero value is ready
// to use (but invisible to any registry); nil receivers are no-ops.
type Counter struct {
	nop bool
	v   atomic.Uint64
}

// NewCounter registers and returns a new counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nop: r.Nop()}
	r.register(&family{name: name, help: help, typ: typeCounter, counter: c})
	return c
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil || c.nop {
		return
	}
	c.v.Add(1)
}

// Add adds n. Negative deltas are a programming error for counters and
// are dropped.
func (c *Counter) Add(n uint64) {
	if c == nil || c.nop {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.
// Nil receivers are no-ops.
type Gauge struct {
	nop  bool
	bits atomic.Uint64
}

// NewGauge registers and returns a new gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nop: r.Nop()}
	r.register(&family{name: name, help: help, typ: typeGauge, gauge: g})
	return g
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.nop {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (which may be negative) via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil || g.nop {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
