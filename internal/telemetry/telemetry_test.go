package telemetry

import (
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := New()
	c := r.NewCounter("t_counter_total", "c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.NewGauge("t_gauge", "g")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var gv *GaugeVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(10)
	cv.With("a").Inc()
	hv.With("a").Observe(1)
	gv.With("a").Set(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestNopRegistryDropsObservations(t *testing.T) {
	r := NewNop()
	if !r.Nop() {
		t.Fatal("NewNop().Nop() = false")
	}
	c := r.NewCounter("t_counter_total", "c")
	g := r.NewGauge("t_gauge", "g")
	h := r.NewHistogram("t_hist", "h", []float64{1})
	cv := r.NewCounterVec("t_vec_total", "v", "k")
	c.Inc()
	g.Set(9)
	h.Observe(0.5)
	cv.With("x").Add(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || cv.With("x").Value() != 0 {
		t.Fatal("nop registry must drop observations")
	}
	// The families still expose (at zero) so scrapes stay schema-stable.
	if got := len(r.Gather()); got != 4 {
		t.Fatalf("nop registry gathered %d families, want 4", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := New()
	r.NewCounter("t_dup_total", "")
	mustPanic("duplicate", func() { r.NewGauge("t_dup_total", "") })
	mustPanic("empty name", func() { r.NewCounter("", "") })
	mustPanic("bad name", func() { r.NewCounter("has space", "") })
	mustPanic("digit first", func() { r.NewCounter("1abc", "") })
	mustPanic("bad label", func() { r.NewCounterVec("t_l_total", "", "bad-label") })
	mustPanic("unsorted bounds", func() { r.NewHistogram("t_b", "", []float64{2, 1}) })
	mustPanic("dup bounds", func() { r.NewHistogram("t_b2", "", []float64{1, 1}) })
	cv := r.NewCounterVec("t_card_total", "", "a", "b")
	mustPanic("cardinality", func() { cv.With("only-one") })
}

func TestVecChildrenAreStable(t *testing.T) {
	r := New()
	cv := r.NewCounterVec("t_req_total", "", "code")
	a := cv.With("200")
	b := cv.With("200")
	if a != b {
		t.Fatal("With must return a stable child pointer")
	}
	a.Inc()
	if cv.With("200").Value() != 1 {
		t.Fatal("child state not shared")
	}
	if cv.With("500").Value() != 0 {
		t.Fatal("distinct label values must not share state")
	}
}

// TestConcurrentObservation hammers every metric kind from many
// goroutines; run under -race this is the concurrency-safety check,
// and the final counts double as a lost-update check for the CAS
// paths.
func TestConcurrentObservation(t *testing.T) {
	r := New()
	c := r.NewCounter("t_conc_total", "")
	g := r.NewGauge("t_conc_gauge", "")
	h := r.NewHistogram("t_conc_hist", "", ExponentialBuckets(1, 2, 8))
	cv := r.NewCounterVec("t_conc_vec_total", "", "who")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			who := "even"
			if id%2 == 1 {
				who = "odd"
			}
			child := cv.With(who)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				child.Inc()
				if i%100 == 0 {
					r.Gather() // scrape while observing
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != float64(total) {
		t.Fatalf("gauge = %v, want %v", g.Value(), float64(total))
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if got := cv.With("even").Value() + cv.With("odd").Value(); got != total {
		t.Fatalf("vec total = %d, want %d", got, total)
	}
}
