package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the Prometheus `le` semantics: an
// observation equal to a bound lands in that bound's bucket
// (inclusive upper bound), one epsilon above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.NewHistogram("t_bounds", "", []float64{1, 2.5, 10})

	cases := []struct {
		v    float64
		want int // raw (non-cumulative) bucket index; 3 = +Inf
	}{
		{-5, 0},
		{0, 0},
		{1, 0},    // exactly on the bound: inclusive
		{1.01, 1}, // just above: next bucket
		{2.5, 1},
		{2.500001, 2},
		{10, 2},
		{10.5, 3},
		{math.Inf(1), 3},
	}
	for _, tc := range cases {
		before := rawCounts(h)
		h.Observe(tc.v)
		after := rawCounts(h)
		got := -1
		for i := range after {
			if after[i] != before[i] {
				got = i
				break
			}
		}
		if got != tc.want {
			t.Errorf("Observe(%v): landed in bucket %d, want %d", tc.v, got, tc.want)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
}

func rawCounts(h *Histogram) []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func TestHistogramSnapshotIsCumulative(t *testing.T) {
	r := New()
	h := r.NewHistogram("t_cum", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 3, 4} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	wantCum := []uint64{2, 3, 5}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], wantCum[i], cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 10 {
		t.Fatalf("sum = %v, want 10", sum)
	}
	// The +Inf cumulative bucket must equal the total count.
	if cum[len(cum)-1] != count {
		t.Fatal("+Inf bucket != count")
	}
}

func TestHistogramStripsExplicitInf(t *testing.T) {
	r := New()
	h := r.NewHistogram("t_inf", "", []float64{1, math.Inf(1)})
	if len(h.bounds) != 1 {
		t.Fatalf("explicit +Inf bound not stripped: %v", h.bounds)
	}
}

func TestObserveDuration(t *testing.T) {
	r := New()
	h := r.NewHistogram("t_dur", "", []float64{0.001, 1})
	h.ObserveDuration(2_500_000) // 2.5ms -> bucket le=1
	cum, sum, _ := h.snapshot()
	if cum[0] != 0 || cum[1] != 1 {
		t.Fatalf("2.5ms landed wrong: %v", cum)
	}
	if math.Abs(sum-0.0025) > 1e-12 {
		t.Fatalf("sum = %v, want 0.0025", sum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	mustPanic(t, func() { ExponentialBuckets(0, 2, 3) })
	mustPanic(t, func() { ExponentialBuckets(1, 1, 3) })
	mustPanic(t, func() { ExponentialBuckets(1, 2, 0) })
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(1, 2, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	mustPanic(t, func() { LinearBuckets(0, 0, 3) })
	mustPanic(t, func() { LinearBuckets(0, 1, 0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
