package telemetry

// FOCES metric sets. Each subsystem gets one constructor that
// registers its families on a registry; the instrumented packages
// (collector, core, churn, the root System) accept the resulting
// structs through SetTelemetry-style wiring so they never depend on a
// global. Every metric name created here must appear in the README
// "Observability" catalogue — `make vet-metrics` enforces that.

// Shared bucket layouts. Stage timings span microseconds (a slice
// solve on a small topology) to seconds (a cold full-FCM factor on a
// large one); widths and row counts span 1 to a few thousand rules.
var (
	// SecondsBuckets: 1µs .. ~4.2s, ×4 per bucket.
	SecondsBuckets = ExponentialBuckets(1e-6, 4, 12)
	// IndexBuckets: anomaly-index values, 0.25 .. 2048, ×2. The FOCES
	// threshold 4.5 falls inside, so the verdict boundary is visible in
	// the distribution.
	IndexBuckets = ExponentialBuckets(0.25, 2, 14)
	// WidthBuckets: fan-out widths and row counts, 1 .. 8192, ×2.
	WidthBuckets = ExponentialBuckets(1, 2, 14)
	// LagBuckets: epoch lag of reconciled windows, 1 .. 16.
	LagBuckets = LinearBuckets(1, 1, 16)
)

// CollectorMetrics instruments collector.RobustCollector.
type CollectorMetrics struct {
	PollSeconds         *Histogram
	Requests            *Counter
	Retries             *Counter
	Timeouts            *Counter
	Failures            *Counter
	Probes              *Counter
	Quarantines         *Counter
	Reinstatements      *Counter
	Resets              *Counter
	DuplicateRules      *Counter
	MissingSwitches     *Gauge
	QuarantinedSwitches *Gauge
}

// NewCollectorMetrics registers the collector family set.
func NewCollectorMetrics(r *Registry) *CollectorMetrics {
	return &CollectorMetrics{
		PollSeconds:         r.NewHistogram("foces_collector_poll_seconds", "Wall time of one RobustCollector.Poll round over all switches.", SecondsBuckets),
		Requests:            r.NewCounter("foces_collector_requests_total", "Flow-stats requests issued, including retries."),
		Retries:             r.NewCounter("foces_collector_retries_total", "Flow-stats requests that were retries of a failed attempt."),
		Timeouts:            r.NewCounter("foces_collector_timeouts_total", "Flow-stats attempts that exceeded their per-request deadline."),
		Failures:            r.NewCounter("foces_collector_failures_total", "Switch polls that exhausted every attempt in a round."),
		Probes:              r.NewCounter("foces_collector_probes_total", "Echo probes sent to quarantined switches."),
		Quarantines:         r.NewCounter("foces_collector_quarantines_total", "Healthy/degraded to quarantined transitions."),
		Reinstatements:      r.NewCounter("foces_collector_reinstatements_total", "Quarantined switches reinstated after a successful probe."),
		Resets:              r.NewCounter("foces_collector_resets_total", "Counter resets detected by the delta tracker."),
		DuplicateRules:      r.NewCounter("foces_collector_duplicate_rules_total", "Duplicate rule IDs observed in one poll (counter shadowing)."),
		MissingSwitches:     r.NewGauge("foces_collector_missing_switches", "Switches excluded from the most recent poll window."),
		QuarantinedSwitches: r.NewGauge("foces_collector_quarantined_switches", "Switches currently quarantined."),
	}
}

// DetectionMetrics instruments core.Detector and core.SlicedDetector.
// Engine-labeled families are partitioned by "full" (Algorithm 1 over
// the whole FCM), "sliced" (Algorithm 2 aggregate) and "slice" (one
// per-switch sub-engine inside the fan-out); detectors resolve their
// labeled children once at SetTelemetry time so the hot path touches
// only atomics.
type DetectionMetrics struct {
	SolveSeconds    *HistogramVec // engine
	ResidualSeconds *HistogramVec // engine
	DetectSeconds   *HistogramVec // engine
	GatherSeconds   *Histogram
	FanoutWidth     *Histogram
	AnomalyIndex    *HistogramVec // engine
	Verdicts        *CounterVec   // engine, verdict
}

// NewDetectionMetrics registers the detector family set.
func NewDetectionMetrics(r *Registry) *DetectionMetrics {
	return &DetectionMetrics{
		SolveSeconds:    r.NewHistogramVec("foces_detector_solve_seconds", "Least-squares solve stage per detection.", SecondsBuckets, "engine"),
		ResidualSeconds: r.NewHistogramVec("foces_detector_residual_seconds", "Residual and anomaly-index stage per detection.", SecondsBuckets, "engine"),
		DetectSeconds:   r.NewHistogramVec("foces_detector_detect_seconds", "End-to-end detection wall time.", SecondsBuckets, "engine"),
		GatherSeconds:   r.NewHistogram("foces_detector_gather_seconds", "Per-slice counter-vector gather stage of sliced detection.", SecondsBuckets),
		FanoutWidth:     r.NewHistogram("foces_detector_fanout_width", "Number of slice engines dispatched per sliced detection.", WidthBuckets),
		AnomalyIndex:    r.NewHistogramVec("foces_detector_anomaly_index", "Distribution of computed anomaly-index values.", IndexBuckets, "engine"),
		Verdicts:        r.NewCounterVec("foces_detector_verdicts_total", "Detection verdicts by engine and outcome.", "engine", "verdict"),
	}
}

// ChurnMetrics instruments churn.Manager.
type ChurnMetrics struct {
	ApplySeconds       *Histogram
	FullRebuildSeconds *Histogram
	AffectedRows       *Histogram
	RetracedSources    *Histogram
	Updates            *Counter
	Events             *Counter
	Slices             *CounterVec // disposition: reused | updated | refactored
	Epoch              *Gauge
	PrepareSeconds     *HistogramVec // stage: gram | factor | slice_build
}

// NewChurnMetrics registers the churn family set.
func NewChurnMetrics(r *Registry) *ChurnMetrics {
	return &ChurnMetrics{
		ApplySeconds:       r.NewHistogram("foces_churn_apply_seconds", "Incremental baseline update per Apply batch.", SecondsBuckets),
		FullRebuildSeconds: r.NewHistogram("foces_churn_full_rebuild_seconds", "Cold rebuild of the lazy full-FCM engine.", SecondsBuckets),
		AffectedRows:       r.NewHistogram("foces_churn_affected_rows", "Rule rows invalidated by one Apply batch.", WidthBuckets),
		RetracedSources:    r.NewHistogram("foces_churn_retraced_sources", "Traffic sources re-traced by one Apply batch.", WidthBuckets),
		Updates:            r.NewCounter("foces_churn_updates_total", "Apply batches folded into the baseline."),
		Events:             r.NewCounter("foces_churn_events_total", "Individual rule add/remove/modify events applied."),
		Slices:             r.NewCounterVec("foces_churn_slices_total", "Per-switch slice engines by rebuild disposition.", "disposition"),
		Epoch:              r.NewGauge("foces_churn_epoch", "Current baseline epoch."),
		PrepareSeconds:     r.NewHistogramVec("foces_prepare_stage_seconds", "Baseline preparation wall time by kernel stage (gram, factor, slice_build; sparse-backed factors also report ordering, symbolic, numeric).", SecondsBuckets, "stage"),
	}
}

// StreamMetrics instruments the streaming ingestion path: the
// collector.WindowAssembler's bounded queues and window assembly, the
// adaptive sampler's masking, and the Serve loop's end-to-end
// ingest-to-verdict latency.
type StreamMetrics struct {
	Pushes               *Counter
	Updates              *Counter
	Coalesced            *Counter
	DroppedUpdates       *Counter
	DroppedWindows       *Counter
	Windows              *Counter
	QueueDepth           *Gauge
	BackedOffSwitches    *Gauge
	WindowLagSeconds     *Histogram
	DetectLatencySeconds *Histogram
}

// NewStreamMetrics registers the streaming family set.
func NewStreamMetrics(r *Registry) *StreamMetrics {
	return &StreamMetrics{
		Pushes:               r.NewCounter("foces_stream_pushes_total", "Counter snapshots pushed into the window assembler."),
		Updates:              r.NewCounter("foces_stream_updates_total", "Individual counter entries ingested across pushes."),
		Coalesced:            r.NewCounter("foces_stream_coalesced_total", "Snapshots coalesced into a newer one at queue capacity."),
		DroppedUpdates:       r.NewCounter("foces_stream_dropped_updates_total", "Queued snapshots discarded after a collection gap (Forget)."),
		DroppedWindows:       r.NewCounter("foces_stream_dropped_windows_total", "Completed windows evicted because the consumer fell behind."),
		Windows:              r.NewCounter("foces_stream_windows_total", "Detection windows completed by the assembler."),
		QueueDepth:           r.NewGauge("foces_stream_queue_depth", "Counter snapshots currently queued across all switches."),
		BackedOffSwitches:    r.NewGauge("foces_stream_backed_off_switches", "Switches the adaptive sampler currently samples less than every window."),
		WindowLagSeconds:     r.NewHistogram("foces_stream_window_lag_seconds", "First-push-to-completion lag per assembled window.", SecondsBuckets),
		DetectLatencySeconds: r.NewHistogram("foces_stream_detect_latency_seconds", "End-to-end ingest-to-verdict latency per streamed window.", SecondsBuckets),
	}
}

// SystemMetrics instruments System.Run.
type SystemMetrics struct {
	RunSeconds *HistogramVec // path: clean | missing | reconciled
	Runs       *CounterVec   // path, verdict
	EpochLag   *Histogram
	MaskedRows *Histogram
}

// NewSystemMetrics registers the system family set.
func NewSystemMetrics(r *Registry) *SystemMetrics {
	return &SystemMetrics{
		RunSeconds: r.NewHistogramVec("foces_system_run_seconds", "End-to-end System.Run wall time by dispatch path.", SecondsBuckets, "path"),
		Runs:       r.NewCounterVec("foces_system_runs_total", "System.Run outcomes by dispatch path and verdict.", "path", "verdict"),
		EpochLag:   r.NewHistogram("foces_system_epoch_lag", "Epochs between a reconciled observation window and the current baseline.", LagBuckets),
		MaskedRows: r.NewHistogram("foces_system_masked_rows", "Rule rows masked per reconciled detection.", WidthBuckets),
	}
}

// ProbeMetrics instruments active-probe localization
// (internal/probe).
type ProbeMetrics struct {
	Probes                *CounterVec // outcome: clean | failed | error
	Localizations         *CounterVec // outcome: localized | unresolved
	ProbesPerLocalization *Histogram
	LocalizeSeconds       *Histogram
	SuspectRules          *Histogram
	Confidence            *Histogram
}

// NewProbeMetrics registers the active-probe family set.
func NewProbeMetrics(r *Registry) *ProbeMetrics {
	return &ProbeMetrics{
		Probes:                r.NewCounterVec("foces_probe_probes_total", "Active probes injected, by per-probe outcome.", "outcome"),
		Localizations:         r.NewCounterVec("foces_probe_localizations_total", "Localization runs, by whether a culprit reached the confidence bar.", "outcome"),
		ProbesPerLocalization: r.NewHistogram("foces_probe_probes_per_localization", "Probes spent per localization run.", LagBuckets),
		LocalizeSeconds:       r.NewHistogram("foces_probe_localize_seconds", "End-to-end localization wall time per anomalous window.", SecondsBuckets),
		SuspectRules:          r.NewHistogram("foces_probe_suspect_rules", "Suspect rule-set size a localization started from.", WidthBuckets),
		Confidence:            r.NewHistogram("foces_probe_confidence", "Top-culprit confidence per localization that accused anyone.", LinearBuckets(0.1, 0.1, 10)),
	}
}

// RuntimeMetrics exports the Go runtime's GC and heap pressure — the
// denominator of every latency tail the other families measure. The
// gauges are refreshed by a RuntimeSampler (typically on scrape), not
// continuously, so they cost nothing between scrapes.
type RuntimeMetrics struct {
	HeapLiveBytes       *Gauge
	GCPauseSecondsTotal *Gauge
	GCCyclesTotal       *Gauge
	AllocsPerSecond     *Gauge
}

// NewRuntimeMetrics registers the runtime family set.
func NewRuntimeMetrics(r *Registry) *RuntimeMetrics {
	return &RuntimeMetrics{
		HeapLiveBytes:       r.NewGauge("foces_runtime_heap_live_bytes", "Bytes of live heap objects at the last runtime sample."),
		GCPauseSecondsTotal: r.NewGauge("foces_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time since process start."),
		GCCyclesTotal:       r.NewGauge("foces_runtime_gc_cycles_total", "Completed GC cycles since process start."),
		AllocsPerSecond:     r.NewGauge("foces_runtime_allocs_per_second", "Heap allocations per second between the last two runtime samples."),
	}
}

// ClusterMetrics instruments the coordinator of a sharded multi-node
// detection cluster (internal/cluster).
type ClusterMetrics struct {
	Nodes          *Gauge
	Shards         *Gauge
	Degraded       *Gauge
	WindowSeconds  *Histogram
	BaselineSyncs  *CounterVec // kind: snapshot | delta
	RequeuedShards *Counter
	Evictions      *Counter
}

// NewClusterMetrics registers the cluster family set.
func NewClusterMetrics(r *Registry) *ClusterMetrics {
	return &ClusterMetrics{
		Nodes:          r.NewGauge("foces_cluster_nodes", "Live detector nodes connected to the coordinator."),
		Shards:         r.NewGauge("foces_cluster_shards", "Per-switch slice shards assigned across live nodes."),
		Degraded:       r.NewGauge("foces_cluster_degraded", "1 while live detector capacity is below the configured peer set."),
		WindowSeconds:  r.NewHistogram("foces_cluster_window_seconds", "Distributed sliced-detection wall time per window.", SecondsBuckets),
		BaselineSyncs:  r.NewCounterVec("foces_cluster_baseline_syncs_total", "Baseline shipments to detector nodes: full snapshots vs incremental rank-one deltas.", "kind"),
		RequeuedShards: r.NewCounter("foces_cluster_requeued_shards_total", "In-flight shards re-dispatched to surviving nodes after an eviction."),
		Evictions:      r.NewCounter("foces_cluster_evictions_total", "Detector nodes evicted on heartbeat timeout or transport failure."),
	}
}
