package telemetry

import (
	"bufio"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Snapshot types: a point-in-time, immutable view of the registry used
// by the exposition writer and by focesbench to embed metrics in its
// JSON results.

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"-"` // +Inf for the final bucket
	Count uint64  `json:"count"`
}

// MarshalJSON encodes the bound as a string — exactly the exposition's
// le label — because encoding/json rejects the +Inf float of the final
// bucket.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, +1) {
		le = formatFloat(b.LE)
	}
	return []byte(`{"le":"` + le + `","count":` + strconv.FormatUint(b.Count, 10) + `}`), nil
}

// SampleSnapshot is one sample (one label combination) of a family.
type SampleSnapshot struct {
	Labels []string `json:"labels,omitempty"` // values aligned with FamilySnapshot.LabelNames
	Value  float64  `json:"value"`            // counter/gauge value; histogram sum for histograms
	Count  uint64   `json:"count,omitempty"`  // histogram observation count
	// Buckets holds cumulative counts; the final entry is the +Inf
	// bucket and equals Count.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family with all of its samples.
type FamilySnapshot struct {
	Name       string           `json:"name"`
	Type       string           `json:"type"`
	Help       string           `json:"help,omitempty"`
	LabelNames []string         `json:"labelNames,omitempty"`
	Samples    []SampleSnapshot `json:"samples"`
}

// Gather returns a deterministic snapshot of every registered family:
// families sorted by name, samples sorted by label values.
func (r *Registry) Gather() []FamilySnapshot {
	fams := r.families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:       f.name,
			Type:       f.typ.String(),
			Help:       f.help,
			LabelNames: f.labels,
		}
		if f.vec != nil {
			for _, c := range f.vec.sorted() {
				fs.Samples = append(fs.Samples, sampleOf(c.counter, c.gauge, c.hist, c.values))
			}
		} else {
			fs.Samples = append(fs.Samples, sampleOf(f.counter, f.gauge, f.hist, nil))
		}
		out = append(out, fs)
	}
	return out
}

func sampleOf(c *Counter, g *Gauge, h *Histogram, values []string) SampleSnapshot {
	s := SampleSnapshot{Labels: values}
	switch {
	case c != nil:
		s.Value = float64(c.Value())
	case g != nil:
		s.Value = g.Value()
	case h != nil:
		cum, sum, count := h.snapshot()
		s.Value = sum
		s.Count = count
		s.Buckets = make([]BucketSnapshot, len(cum))
		for i, n := range cum {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			s.Buckets[i] = BucketSnapshot{LE: le, Count: n}
		}
	}
	return s
}

// WriteText renders the registry in Prometheus text exposition format
// 0.0.4. Output is deterministic for a given registry state.
func (r *Registry) WriteText(w *bufio.Writer) error {
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			w.WriteString("# HELP ")
			w.WriteString(fam.Name)
			w.WriteByte(' ')
			w.WriteString(escapeHelp(fam.Help))
			w.WriteByte('\n')
		}
		w.WriteString("# TYPE ")
		w.WriteString(fam.Name)
		w.WriteByte(' ')
		w.WriteString(fam.Type)
		w.WriteByte('\n')
		for _, s := range fam.Samples {
			if fam.Type == "histogram" {
				writeHistogramSample(w, fam, s)
				continue
			}
			w.WriteString(fam.Name)
			writeLabels(w, fam.LabelNames, s.Labels, "")
			w.WriteByte(' ')
			w.WriteString(formatFloat(s.Value))
			w.WriteByte('\n')
		}
	}
	return w.Flush()
}

func writeHistogramSample(w *bufio.Writer, fam FamilySnapshot, s SampleSnapshot) {
	for _, b := range s.Buckets {
		w.WriteString(fam.Name)
		w.WriteString("_bucket")
		le := "+Inf"
		if !math.IsInf(b.LE, +1) {
			le = formatFloat(b.LE)
		}
		writeLabels(w, fam.LabelNames, s.Labels, le)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(b.Count, 10))
		w.WriteByte('\n')
	}
	w.WriteString(fam.Name)
	w.WriteString("_sum")
	writeLabels(w, fam.LabelNames, s.Labels, "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(s.Value))
	w.WriteByte('\n')
	w.WriteString(fam.Name)
	w.WriteString("_count")
	writeLabels(w, fam.LabelNames, s.Labels, "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(s.Count, 10))
	w.WriteByte('\n')
}

// writeLabels emits {k="v",...}; le, when non-empty, is appended as
// the trailing bucket-bound label.
func writeLabels(w *bufio.Writer, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString("=\"")
		w.WriteString(escapeLabelValue(values[i]))
		w.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString("le=\"")
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format at any path it is mounted on.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		if err := r.WriteText(bw); err != nil {
			// Headers are already out; nothing useful to do.
			return
		}
	})
}
