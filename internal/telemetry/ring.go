package telemetry

import "sync"

// Ring is a fixed-capacity, concurrency-safe ring buffer that keeps
// the most recent N pushed values. focesd uses Ring[RunEvent] to back
// the "recent verdicts" view on /status; the type is generic so other
// event streams can reuse it.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int
	full bool
}

// NewRing returns a ring keeping the last n values; n < 1 panics.
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		panic("telemetry: ring capacity must be >= 1")
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Push appends v, evicting the oldest value once the ring is full.
// Push on a nil ring is a no-op.
func (r *Ring[T]) Push(v T) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained values oldest-first. A nil or empty
// ring returns a non-nil empty slice so JSON encodes it as [].
func (r *Ring[T]) Snapshot() []T {
	out := []T{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of retained values.
func (r *Ring[T]) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
