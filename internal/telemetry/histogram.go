package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets with inclusive
// upper bounds (Prometheus `le` semantics): bucket i counts values
// v <= bounds[i], and an implicit +Inf bucket catches the rest.
//
// Observe is O(log nbuckets), lock-free and allocation-free: bucket
// counts and the running count are atomic.Uint64, the running sum is a
// float64 bit pattern updated by CAS. Snapshots taken during
// concurrent observation are internally consistent per field but may
// observe a sum/count pair mid-update; for monitoring that skew is
// acceptable and matches common client behaviour.
//
// Nil receivers are no-ops.
type Histogram struct {
	nop    bool
	bounds []float64 // ascending, excludes +Inf
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(nop bool, bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsInf(b, +1) {
			continue // +Inf bucket is implicit
		}
		bs = append(bs, b)
	}
	if !sort.Float64sAreSorted(bs) {
		panic("telemetry: histogram bounds must be in ascending order")
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic("telemetry: duplicate histogram bound")
		}
	}
	return &Histogram{
		nop:    nop,
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
}

// NewHistogram registers and returns a histogram with the given
// ascending bucket upper bounds. A trailing +Inf is implicit and may
// be omitted (it is stripped if present).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(r.Nop(), bounds)
	r.register(&family{name: name, help: help, typ: typeHistogram, hist: h})
	return h
}

// Observe records a single value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.nop {
		return
	}
	// First index with bounds[i] >= v, i.e. the smallest bucket whose
	// inclusive upper bound admits v; len(bounds) selects +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds given nanoseconds, the
// unit produced by time.Since. It exists so call sites avoid importing
// time for a conversion.
func (h *Histogram) ObserveDuration(ns int64) {
	if h == nil || h.nop {
		return
	}
	h.Observe(float64(ns) / 1e9)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf bucket as the final element.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.Sum(), h.Count()
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor: start, start*factor, ... Panics on
// non-positive start, factor <= 1 or count < 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LinearBuckets returns count upper bounds starting at start and
// stepping by width. Panics on width <= 0 or count < 1.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("telemetry: LinearBuckets needs width > 0, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
