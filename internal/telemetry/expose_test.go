package telemetry

import (
	"bufio"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGoldenExposition pins the exact Prometheus text exposition
// (format 0.0.4) byte-for-byte: family ordering, HELP/TYPE lines,
// cumulative histogram buckets with the implicit +Inf, label escaping
// and float formatting.
func TestGoldenExposition(t *testing.T) {
	r := New()
	c := r.NewCounter("t_counter_total", "total things")
	g := r.NewGauge("t_gauge", `backslash \ and
newline`)
	h := r.NewHistogram("t_hist", "a histogram", []float64{1, 2})
	cv := r.NewCounterVec("t_requests_total", "labeled", "code")

	c.Add(3)
	g.Set(-2.5)
	h.Observe(1)   // le="1"
	h.Observe(1.5) // le="2"
	h.Observe(3)   // +Inf
	cv.With("500").Inc()
	cv.With("2\"00\n").Add(2)

	var sb strings.Builder
	if err := r.WriteText(bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}

	want := `# HELP t_counter_total total things
# TYPE t_counter_total counter
t_counter_total 3
# HELP t_gauge backslash \\ and\nnewline
# TYPE t_gauge gauge
t_gauge -2.5
# HELP t_hist a histogram
# TYPE t_hist histogram
t_hist_bucket{le="1"} 1
t_hist_bucket{le="2"} 2
t_hist_bucket{le="+Inf"} 3
t_hist_sum 5.5
t_hist_count 3
# HELP t_requests_total labeled
# TYPE t_requests_total counter
t_requests_total{code="2\"00\n"} 2
t_requests_total{code="500"} 1
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := New()
	r.NewCounter("t_served_total", "x").Add(7)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want text exposition 0.0.4", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := res.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "t_served_total 7") {
		t.Fatalf("body missing sample:\n%s", body)
	}
}

func TestGatherSnapshotShape(t *testing.T) {
	r := New()
	h := r.NewHistogram("t_snap", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1", len(fams))
	}
	s := fams[0].Samples[0]
	if s.Count != 2 || s.Value != 2.5 {
		t.Fatalf("count=%d sum=%v, want 2 / 2.5", s.Count, s.Value)
	}
	if len(s.Buckets) != 2 || !math.IsInf(s.Buckets[1].LE, +1) {
		t.Fatalf("buckets = %+v, want trailing +Inf", s.Buckets)
	}
	if s.Buckets[1].Count != s.Count {
		t.Fatal("+Inf bucket must equal count")
	}
}

// TestMetricSetsRegisterCleanly wires every FOCES metric set onto one
// registry — this is exactly what focesd does — and checks the
// exposition covers all four subsystem prefixes without panicking on
// duplicates.
func TestMetricSetsRegisterCleanly(t *testing.T) {
	r := New()
	NewCollectorMetrics(r)
	dm := NewDetectionMetrics(r)
	NewChurnMetrics(r)
	sm := NewSystemMetrics(r)

	// Touch labeled children the way the instrumented code does.
	dm.Verdicts.With("full", "anomalous").Inc()
	dm.SolveSeconds.With("full").Observe(1e-4)
	sm.Runs.With("clean", "clean").Inc()

	var sb strings.Builder
	if err := r.WriteText(bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, prefix := range []string{"foces_collector_", "foces_detector_", "foces_churn_", "foces_system_"} {
		if !strings.Contains(body, prefix) {
			t.Errorf("exposition missing %s family", prefix)
		}
	}
}
