package telemetry

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSampler refreshes a RuntimeMetrics set from the Go runtime.
// Heap live bytes and cumulative allocation counts come from
// runtime/metrics (cheap, no stop-the-world); the exact cumulative GC
// pause total comes from runtime.ReadMemStats, which is why Sample is
// meant to run on scrape cadence — wiring it into a request hot path
// would add its own pauses to the numbers it reports.
//
// Safe for concurrent use.
type RuntimeSampler struct {
	m *RuntimeMetrics

	mu         sync.Mutex
	samples    []metrics.Sample
	lastAllocs uint64
	lastAt     time.Time
	now        func() time.Time // test hook; nil = time.Now
}

// NewRuntimeSampler builds a sampler over an already-registered
// runtime metric set.
func NewRuntimeSampler(m *RuntimeMetrics) *RuntimeSampler {
	return &RuntimeSampler{
		m: m,
		samples: []metrics.Sample{
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/heap/allocs:objects"},
		},
	}
}

// Sample reads the runtime and refreshes every gauge. The allocation
// rate is the delta between consecutive samples, so the first call
// only establishes the baseline and leaves the rate at zero.
func (s *RuntimeSampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	heap := s.samples[0].Value.Uint64()
	allocs := s.samples[1].Value.Uint64()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	clock := s.now
	if clock == nil {
		clock = time.Now
	}
	at := clock()
	if !s.lastAt.IsZero() && allocs >= s.lastAllocs {
		if dt := at.Sub(s.lastAt).Seconds(); dt > 0 {
			s.m.AllocsPerSecond.Set(float64(allocs-s.lastAllocs) / dt)
		}
	}
	s.lastAllocs, s.lastAt = allocs, at
	s.m.HeapLiveBytes.Set(float64(heap))
	s.m.GCPauseSecondsTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	s.m.GCCyclesTotal.Set(float64(ms.NumGC))
}
