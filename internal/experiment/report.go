package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// FormatTable renders an ASCII table with aligned columns.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", w, cell)
		}
		b.WriteString("|\n")
	}
	rule := func() {
		for _, w := range widths {
			b.WriteString("+")
			b.WriteString(strings.Repeat("-", w+2))
		}
		b.WriteString("+\n")
	}
	rule()
	writeRow(headers)
	rule()
	for _, row := range rows {
		writeRow(row)
	}
	rule()
	return b.String()
}

// WriteCSV emits headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatIndex renders an anomaly index compactly, mapping +Inf to
// "inf".
func FormatIndex(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// FormatPct renders a fraction as a percentage.
func FormatPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
