package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// SparseConfig drives the sparse-solver experiment. It has two arms:
//
//   - Scale: a destination-aggregate rule set on a fat-tree large
//     enough that the dense Gram alone would blow the memory budget,
//     prepared through the sparse Cholesky path only, with peak heap
//     sampled throughout.
//   - Equivalence: every evaluation topology prepared twice — forced
//     dense and forced sparse — and driven with identical clean and
//     attacked windows, gating on verdict equality and on the relative
//     residual-norm delta.
type SparseConfig struct {
	// Topology is the scale-arm topology (topo.ByName); zero selects
	// "fattree16", whose dense Gram at the default group size does not
	// fit the default budget.
	Topology string
	// GroupSize is the service-group width of the scale-arm traffic:
	// hosts are partitioned into consecutive groups of this size and
	// every host exchanges traffic with every other member of its
	// group, under destination-aggregate rules. Bounding the group
	// bounds how many flows share any one rule, which is what keeps
	// the Gram (and its factor) sparse while the column count grows as
	// hosts x (GroupSize-1). Zero selects 32.
	GroupSize int
	// Windows is the number of clean observation windows timed through
	// the sparse engine; zero selects 8.
	Windows int
	// BudgetBytes is the memory wall the scale arm is judged against;
	// zero selects 512 MiB.
	BudgetBytes int64
	// EquivTopologies lists the equivalence-arm topologies; nil selects
	// topo.EvaluationTopologies().
	EquivTopologies []string
	// Seed drives traffic randomness.
	Seed int64
}

func (c SparseConfig) withDefaults() SparseConfig {
	if c.Topology == "" {
		c.Topology = "fattree16"
	}
	if c.GroupSize == 0 {
		c.GroupSize = 32
	}
	if c.Windows == 0 {
		c.Windows = 8
	}
	if c.BudgetBytes == 0 {
		c.BudgetBytes = 512 << 20
	}
	if c.EquivTopologies == nil {
		c.EquivTopologies = topo.EvaluationTopologies()
	}
	return c
}

// SparseEquiv is one equivalence-arm row: the same H and the same
// windows solved through the forced-dense and forced-sparse paths.
type SparseEquiv struct {
	Topology string `json:"topology"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	// GramDensity is (2·nnz(G)−n)/n² of the sparse Gram.
	GramDensity float64 `json:"gramDensity"`
	// SparseBacked confirms the forced-sparse arm really took the
	// sparse path (and the forced-dense arm the dense one).
	SparseBacked bool `json:"sparseBacked"`
	// MaxResidualDelta is max over windows of
	// |‖y−Hx̂_sparse‖ − ‖y−Hx̂_dense‖| / max(1, ‖y‖).
	MaxResidualDelta float64 `json:"maxResidualDelta"`
	// VerdictsMatch reports whether both arms agreed on every window's
	// anomaly verdict (clean and attacked).
	VerdictsMatch bool `json:"verdictsMatch"`
}

// SparseResult is the archived output of the sparse experiment
// (results/sparse.json).
type SparseResult struct {
	Topology   string `json:"topology"`
	Switches   int    `json:"switches"`
	Hosts      int    `json:"hosts"`
	GroupSize  int    `json:"groupSize"`
	Rows       int    `json:"rows"`
	Cols       int    `json:"cols"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// GramNNZ and FactorNNZ count stored lower-triangle entries;
	// FillRatio = FactorNNZ/GramNNZ measures ordering quality.
	GramNNZ     int     `json:"gramNNZ"`
	FactorNNZ   int     `json:"factorNNZ"`
	FillRatio   float64 `json:"fillRatio"`
	GramDensity float64 `json:"gramDensity"`

	// DenseGramBytes is what the dense path would allocate for the Gram
	// alone (8n² bytes); the wall the sparse path exists to avoid.
	DenseGramBytes     int64  `json:"denseGramBytes"`
	BudgetBytes        int64  `json:"budgetBytes"`
	DenseExceedsBudget bool   `json:"denseExceedsBudget"`
	PeakHeapBytes      uint64 `json:"peakHeapBytes"`
	SparseWithinBudget bool   `json:"sparseWithinBudget"`

	// Prepare-stage decomposition of the sparse path (seconds).
	GramSecs     float64 `json:"gramSecs"`
	OrderingSecs float64 `json:"orderingSecs"`
	SymbolicSecs float64 `json:"symbolicSecs"`
	NumericSecs  float64 `json:"numericSecs"`
	PrepareSecs  float64 `json:"prepareSecs"`

	Windows          int     `json:"windows"`
	SolveNsPerWindow float64 `json:"solveNsPerWindow"`
	// CleanAnomalous / TamperedAnomalous sanity-check the scale-arm
	// engine: exact counters must read clean, a skimmed counter must
	// trip the index.
	CleanAnomalous    bool `json:"cleanAnomalous"`
	TamperedAnomalous bool `json:"tamperedAnomalous"`

	Equiv            []SparseEquiv `json:"equiv"`
	MaxResidualDelta float64       `json:"maxResidualDelta"`
	VerdictsMatch    bool          `json:"verdictsMatch"`
}

// groupTrafficH builds a destination-aggregate flow-counter matrix for
// service-group traffic on t: hosts are partitioned into consecutive
// groups of size group, and every host sends to every other member of
// its group. Rules are one row per (switch on some src→dst shortest
// path, dst host) plus one ingress row per source host. Columns are
// the intra-group ordered pairs, so cols grows as hosts×(group−1)
// (past any dense-Gram budget on a big fat-tree) while any single
// rule is shared by at most group−1 flows — which is exactly what
// keeps the Gram block-diagonal by group and cheap to factor.
func groupTrafficH(t *topo.Topology, group int) (*matrix.CSR, error) {
	hosts := t.Hosts()
	if group > len(hosts) {
		group = len(hosts)
	}
	type ruleKey struct {
		sw  topo.SwitchID
		dst int // destination host index, or -1-srcIdx for ingress rules
	}
	rowOf := make(map[ruleKey]int)
	row := func(k ruleKey) int {
		if r, ok := rowOf[k]; ok {
			return r
		}
		r := len(rowOf)
		rowOf[k] = r
		return r
	}
	paths := make(map[[2]topo.SwitchID][]topo.SwitchID)
	var trips []matrix.Triplet
	col := 0
	for base := 0; base < len(hosts); base += group {
		end := base + group
		if end > len(hosts) {
			end = len(hosts)
		}
		for si := base; si < end; si++ {
			src := hosts[si]
			ingress := row(ruleKey{sw: src.Attach, dst: -1 - si})
			for di := base; di < end; di++ {
				if di == si {
					continue
				}
				dst := hosts[di]
				pk := [2]topo.SwitchID{src.Attach, dst.Attach}
				path, ok := paths[pk]
				if !ok {
					var err error
					path, err = t.ShortestPath(src.Attach, dst.Attach)
					if err != nil {
						return nil, err
					}
					paths[pk] = path
				}
				trips = append(trips, matrix.Triplet{Row: ingress, Col: col, Val: 1})
				for _, sw := range path {
					trips = append(trips, matrix.Triplet{Row: row(ruleKey{sw: sw, dst: di}), Col: col, Val: 1})
				}
				col++
			}
		}
	}
	return matrix.NewCSR(len(rowOf), col, trips)
}

// peakHeapDuring runs fn while a background sampler tracks the maximum
// live heap (runtime.MemStats.HeapAlloc). ReadMemStats stops the
// world, so the cadence is a coarse 2ms — enough to catch the
// factorization's steady allocations, deliberately not every spike.
func peakHeapDuring(fn func() error) (uint64, error) {
	runtime.GC()
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	sample()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	err := fn()
	close(done)
	wg.Wait()
	sample()
	return peak.Load(), err
}

// residualNorm computes ‖y − H·x̂‖₂.
func residualNorm(h *matrix.CSR, x, y []float64) (float64, error) {
	yhat, err := h.MulVec(x)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for i, v := range yhat {
		d := y[i] - v
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Sparse runs both arms of the sparse-solver experiment.
func Sparse(cfg SparseConfig) (SparseResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return SparseResult{}, err
	}
	res := SparseResult{
		Topology:    cfg.Topology,
		Switches:    t.NumSwitches(),
		Hosts:       t.NumHosts(),
		GroupSize:   cfg.GroupSize,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BudgetBytes: cfg.BudgetBytes,
	}

	// ---- Scale arm ----
	h, err := groupTrafficH(t, cfg.GroupSize)
	if err != nil {
		return SparseResult{}, err
	}
	res.Rows, res.Cols = h.Rows(), h.Cols()
	n := int64(h.Cols())
	res.DenseGramBytes = 8 * n * n
	res.DenseExceedsBudget = res.DenseGramBytes > cfg.BudgetBytes

	var ls *matrix.PreparedLS
	peak, err := peakHeapDuring(func() error {
		var err error
		ls, err = matrix.PrepareLSOpts(h, matrix.LeastSquaresOptions{}, matrix.KernelOptions{Sparse: matrix.SparseAlways})
		return err
	})
	if err != nil {
		return SparseResult{}, fmt.Errorf("sparse prepare on %s: %w", cfg.Topology, err)
	}
	res.PeakHeapBytes = peak
	res.SparseWithinBudget = int64(peak) <= cfg.BudgetBytes
	st := ls.Stats()
	if !st.Sparse {
		return SparseResult{}, fmt.Errorf("scale arm did not take the sparse path")
	}
	res.GramNNZ = st.GramNNZ
	res.FactorNNZ = st.FactorNNZ
	if st.GramNNZ > 0 {
		res.FillRatio = float64(st.FactorNNZ) / float64(st.GramNNZ)
	}
	res.GramDensity = float64(2*int64(st.GramNNZ)-n) / float64(n*n)
	res.GramSecs = st.Gram.Seconds()
	res.OrderingSecs = st.Ordering.Seconds()
	res.SymbolicSecs = st.Symbolic.Seconds()
	res.NumericSecs = st.Numeric.Seconds()
	res.PrepareSecs = (st.Gram + st.Factor).Seconds()

	d := core.NewDetectorFromPrepared(ls, core.Options{})
	rng := rand.New(rand.NewSource(cfg.Seed))
	res.Windows = cfg.Windows
	best := math.Inf(1)
	res.CleanAnomalous = false
	var lastY []float64
	for w := 0; w < cfg.Windows; w++ {
		x := make([]float64, h.Cols())
		for i := range x {
			x[i] = float64(500 + rng.Intn(1000))
		}
		y, err := h.MulVec(x)
		if err != nil {
			return SparseResult{}, err
		}
		s0 := time.Now()
		r, err := d.Detect(y)
		if err != nil {
			return SparseResult{}, err
		}
		if ns := float64(time.Since(s0).Nanoseconds()); ns < best {
			best = ns
		}
		if r.Anomalous {
			res.CleanAnomalous = true
		}
		lastY = y
	}
	res.SolveNsPerWindow = best
	// Skim half the traffic off one heavily shared counter: the engine
	// must flag it.
	hot := 0
	for i := 1; i < h.Rows(); i++ {
		if h.RowNNZ(i) > h.RowNNZ(hot) {
			hot = i
		}
	}
	lastY[hot] *= 0.5
	r, err := d.Detect(lastY)
	if err != nil {
		return SparseResult{}, err
	}
	res.TamperedAnomalous = r.Anomalous

	// ---- Equivalence arm ----
	res.VerdictsMatch = true
	for _, name := range cfg.EquivTopologies {
		eq, err := sparseEquivOn(name, cfg.Seed)
		if err != nil {
			return SparseResult{}, fmt.Errorf("equivalence on %s: %w", name, err)
		}
		res.Equiv = append(res.Equiv, eq)
		if eq.MaxResidualDelta > res.MaxResidualDelta {
			res.MaxResidualDelta = eq.MaxResidualDelta
		}
		if !eq.VerdictsMatch {
			res.VerdictsMatch = false
		}
	}
	return res, nil
}

// sparseEquivOn prepares one evaluation topology through both solver
// paths and compares them on identical clean and attacked windows.
func sparseEquivOn(name string, seed int64) (SparseEquiv, error) {
	// DestAggregate (not PairExact) so the Gram is genuinely coupled:
	// exact per-pair rules each match a single flow, which makes HᵀH
	// diagonal and both solver paths trivially identical.
	env, err := NewEnv(Config{Topology: name, Seed: seed, Mode: controller.DestAggregate})
	if err != nil {
		return SparseEquiv{}, err
	}
	h := env.FCM.H
	eq := SparseEquiv{Topology: name, Rows: h.Rows(), Cols: h.Cols(), VerdictsMatch: true}
	eq.GramDensity = h.SymGram().Density()
	dense, err := matrix.PrepareLSOpts(h, matrix.LeastSquaresOptions{}, matrix.KernelOptions{Sparse: matrix.SparseNever})
	if err != nil {
		return SparseEquiv{}, err
	}
	sparse, err := matrix.PrepareLSOpts(h, matrix.LeastSquaresOptions{}, matrix.KernelOptions{Sparse: matrix.SparseAlways})
	if err != nil {
		return SparseEquiv{}, err
	}
	eq.SparseBacked = sparse.SparseBacked() && !dense.SparseBacked()
	dd := core.NewDetectorFromPrepared(dense, core.Options{})
	ds := core.NewDetectorFromPrepared(sparse, core.Options{})
	probe := func(y []float64) error {
		rd, err := dd.Detect(y)
		if err != nil {
			return err
		}
		rs, err := ds.Detect(y)
		if err != nil {
			return err
		}
		if rd.Anomalous != rs.Anomalous {
			eq.VerdictsMatch = false
		}
		nd, err := residualNorm(h, rd.XHat, y)
		if err != nil {
			return err
		}
		ns, err := residualNorm(h, rs.XHat, y)
		if err != nil {
			return err
		}
		scale := 1.0
		for _, v := range y {
			scale += v * v
		}
		delta := math.Abs(ns-nd) / math.Max(1, math.Sqrt(scale-1))
		if delta > eq.MaxResidualDelta {
			eq.MaxResidualDelta = delta
		}
		return nil
	}
	for w := 0; w < 4; w++ {
		y, err := env.Observe(0)
		if err != nil {
			return SparseEquiv{}, err
		}
		if err := probe(y); err != nil {
			return SparseEquiv{}, err
		}
	}
	attacks, err := env.ApplyRandomAttacks(1)
	if err != nil {
		return SparseEquiv{}, err
	}
	y, err := env.Observe(0)
	if err != nil {
		return SparseEquiv{}, err
	}
	if err := probe(y); err != nil {
		return SparseEquiv{}, err
	}
	if err := env.RevertAttacks(attacks); err != nil {
		return SparseEquiv{}, err
	}
	return eq, nil
}
