package experiment

import (
	"testing"

	"foces/internal/matrix"
	"foces/internal/topo"
)

func TestGroupTrafficHShape(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	h, err := groupTrafficH(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := top.NumHosts() * 3; h.Cols() != want {
		t.Fatalf("cols = %d, want %d", h.Cols(), want)
	}
	// Every column must carry at least the ingress rule and one path
	// switch, and the matrix must be full column rank (sparse prepare
	// without ridge must succeed on exact integer data).
	if _, err := matrix.PrepareLSOpts(h, matrix.LeastSquaresOptions{}, matrix.KernelOptions{Sparse: matrix.SparseAlways}); err != nil {
		t.Fatalf("sparse prepare: %v", err)
	}
}

// TestSparseExperimentSmall runs both arms at toy scale: the scale arm
// on fattree4 (dense Gram far below any real budget — only the
// verdict sanity and stage plumbing are checked) and the equivalence
// arm on one topology.
func TestSparseExperimentSmall(t *testing.T) {
	res, err := Sparse(SparseConfig{
		Topology:        "fattree4",
		GroupSize:       4,
		Windows:         2,
		Seed:            7,
		EquivTopologies: []string{"fattree4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanAnomalous {
		t.Error("clean windows flagged anomalous")
	}
	if !res.TamperedAnomalous {
		t.Error("tampered counter not flagged")
	}
	if res.FactorNNZ < res.GramNNZ || res.GramNNZ == 0 {
		t.Errorf("nnz bookkeeping: gram %d factor %d", res.GramNNZ, res.FactorNNZ)
	}
	if res.PrepareSecs <= 0 || res.NumericSecs <= 0 {
		t.Errorf("stage timings missing: prepare %g numeric %g", res.PrepareSecs, res.NumericSecs)
	}
	if res.PeakHeapBytes == 0 {
		t.Error("peak heap not sampled")
	}
	if len(res.Equiv) != 1 {
		t.Fatalf("equiv rows = %d", len(res.Equiv))
	}
	eq := res.Equiv[0]
	if !eq.SparseBacked {
		t.Error("forced-sparse arm not sparse-backed (or dense arm sparse-backed)")
	}
	if !eq.VerdictsMatch || !res.VerdictsMatch {
		t.Error("sparse and dense verdicts diverged")
	}
	if eq.MaxResidualDelta > 1e-12 {
		t.Errorf("residual delta %g exceeds 1e-12", eq.MaxResidualDelta)
	}
}
