package experiment

import "testing"

func TestLocalizationQuality(t *testing.T) {
	points, err := Localization(LocalizationConfig{
		Config:     Config{Seed: 17, PacketsPerFlow: 2000},
		Topologies: []string{"fattree4", "bcube14"},
		Runs:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Detected < 0.8 {
			t.Errorf("%s: detected only %.0f%% of attacks", p.Topology, p.Detected*100)
		}
		if p.HitTopK < 0.5 {
			t.Errorf("%s: top-K localization hit rate %.0f%% too low", p.Topology, p.HitTopK*100)
		}
		if p.HitTop1 > p.HitTopK {
			t.Errorf("%s: top-1 rate %v exceeds top-K rate %v", p.Topology, p.HitTop1, p.HitTopK)
		}
		if p.MeanSuspects <= 0 {
			t.Errorf("%s: mean suspects %v", p.Topology, p.MeanSuspects)
		}
	}
}

func TestLocalizationDefaults(t *testing.T) {
	cfg := LocalizationConfig{}.withDefaults()
	if len(cfg.Topologies) != 4 || cfg.Runs != 30 || cfg.TopK != 3 || cfg.Loss != 0.02 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestMonitorStudySuppressesFalsePositives(t *testing.T) {
	res, err := MonitorStudy(MonitorConfig{
		Config:        Config{Seed: 23, PacketsPerFlow: 1000},
		Loss:          0.22,
		Periods:       60,
		AttackPeriods: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DebouncedFPRate > res.RawFPRate {
		t.Fatalf("debouncing must not raise FP rate: raw=%v deb=%v", res.RawFPRate, res.DebouncedFPRate)
	}
	if res.DebouncedTPRate == 0 && res.RawTPRate > 0.5 {
		t.Fatalf("debouncing killed detection: rawTP=%v", res.RawTPRate)
	}
	t.Logf("loss=%.0f%%: FP %v->%v, TP %v->%v, delay=%d periods",
		res.Loss*100, res.RawFPRate, res.DebouncedFPRate, res.RawTPRate, res.DebouncedTPRate, res.DetectionDelayPeriods)
}
