package experiment

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"foces"
	"foces/internal/collector"
	"foces/internal/topo"
)

// StreamBenchConfig drives the streaming-ingestion experiment: an
// equivalence check (streaming windows vs the pull-based Run path on
// identical delta sequences), a lock-step ingest-to-verdict latency
// measurement, and a saturating load phase that pushes synthetic
// counter updates through the bounded-queue assembler as fast as the
// machine allows.
type StreamBenchConfig struct {
	// Topology is a topo.ByName name; zero selects "fattree8".
	Topology string
	// Flows restricts PairExact rules to the first k ordered host pairs;
	// zero selects min(960, all pairs).
	Flows int
	// LoadMillis is the saturating load phase's duration; zero selects
	// 1000 ms.
	LoadMillis int
	// Pushers is the number of concurrent pusher goroutines in the load
	// phase; zero selects GOMAXPROCS.
	Pushers int
	// QueueCapacity bounds each switch's pending-snapshot queue in the
	// load phase; zero selects the assembler default (64).
	QueueCapacity int
	// LatencyWindows is how many windows the lock-step latency phase
	// measures; zero selects 48.
	LatencyWindows int
	// CheckWindows is how many windows the equivalence check replays
	// through both paths; zero selects 12.
	CheckWindows int
	// Seed drives traffic randomness.
	Seed int64
}

func (c StreamBenchConfig) withDefaults() StreamBenchConfig {
	if c.Topology == "" {
		c.Topology = "fattree8"
	}
	if c.LoadMillis <= 0 {
		c.LoadMillis = 1000
	}
	if c.Pushers <= 0 {
		c.Pushers = runtime.GOMAXPROCS(0)
	}
	if c.LatencyWindows <= 0 {
		c.LatencyWindows = 48
	}
	if c.CheckWindows <= 0 {
		c.CheckWindows = 12
	}
	return c
}

// StreamBenchResult reports the streaming experiment
// (results/stream.json).
type StreamBenchResult struct {
	Topology   string `json:"topology"`
	Switches   int    `json:"switches"`
	Flows      int    `json:"flows"`
	Rules      int    `json:"rules"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Equivalence: streaming windows vs pull-based Run on identical
	// delta sequences (clean, attacked, silent switch, counter reset).
	CheckWindows   int    `json:"checkWindows"`
	CheckedReports int    `json:"checkedReports"`
	VerdictsMatch  bool   `json:"verdictsMatch"`
	Mismatch       string `json:"mismatch,omitempty"`

	// Lock-step ingest-to-verdict latency over real traffic windows.
	DetectWindows int     `json:"detectWindows"`
	P50LatencyMs  float64 `json:"p50LatencyMs"`
	P99LatencyMs  float64 `json:"p99LatencyMs"`
	MaxLatencyMs  float64 `json:"maxLatencyMs"`

	// Saturating synthetic load through the bounded-queue assembler.
	LoadSecs           float64 `json:"loadSecs"`
	LoadPushes         uint64  `json:"loadPushes"`
	LoadUpdates        uint64  `json:"loadUpdates"`
	UpdatesPerSec      float64 `json:"updatesPerSec"`
	LoadWindows        uint64  `json:"loadWindows"`
	CoalescedSnapshots uint64  `json:"coalescedSnapshots"`
	DroppedWindows     uint64  `json:"droppedWindows"`
	MaxQueueDepth      int     `json:"maxQueueDepth"`
	QueueBound         int     `json:"queueBound"`
	QueueBounded       bool    `json:"queueBounded"`
}

// StreamBench measures the streaming ingestion layer on one
// environment: verdict equivalence against the polled path, the
// ingest-to-verdict latency tail, and sustained synthetic update
// throughput under bounded queues.
func StreamBench(cfg StreamBenchConfig) (StreamBenchResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return StreamBenchResult{}, err
	}
	flows := cfg.Flows
	maxPairs := t.NumHosts() * (t.NumHosts() - 1)
	if flows == 0 {
		flows = 960
		if flows > maxPairs {
			flows = maxPairs
		}
	}
	pairs, err := PairSubset(t, flows)
	if err != nil {
		return StreamBenchResult{}, err
	}
	// Skew/noise act on the dense Y vector inside Observe; both streaming
	// arms here feed raw cumulative snapshots, so disable them to keep
	// the replayed sequences identical bit for bit.
	env, err := NewEnvOn(Config{Topology: cfg.Topology, Seed: cfg.Seed, SkewSigma: -1}, t, pairs)
	if err != nil {
		return StreamBenchResult{}, err
	}
	switches := make([]topo.SwitchID, 0, len(t.Switches()))
	for _, sw := range t.Switches() {
		switches = append(switches, sw.ID)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	res := StreamBenchResult{
		Topology:   cfg.Topology,
		Switches:   len(switches),
		Flows:      flows,
		Rules:      env.FCM.NumRules(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if err := streamCheck(cfg, env, switches, &res); err != nil {
		return res, err
	}
	if err := streamLatency(cfg, env, switches, &res); err != nil {
		return res, err
	}
	if err := streamLoad(cfg, env, switches, &res); err != nil {
		return res, err
	}
	return res, nil
}

// collectPerSwitch runs one cumulative traffic interval and returns the
// per-switch counter snapshots (fresh maps; counters are NOT reset, as
// on a real switch).
func collectPerSwitch(env *Env, switches []topo.SwitchID) (map[topo.SwitchID]map[int]uint64, error) {
	if _, err := env.Net.Run(env.Rng, env.traffic); err != nil {
		return nil, err
	}
	cumulative := env.Net.CollectCounters()
	per := make(map[topo.SwitchID]map[int]uint64, len(switches))
	for _, sw := range switches {
		per[sw] = make(map[int]uint64)
	}
	for rid, v := range cumulative {
		per[env.ruleSwitch[rid]][rid] = v
	}
	return per, nil
}

func copyCounters(m map[int]uint64) map[int]uint64 {
	out := make(map[int]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// normalizeReport strips wall-time fields and encodes the Report so
// two Reports produced by different code paths can be compared byte
// for byte. Gob rather than JSON: anomaly indices can be +Inf (zero
// median), which JSON cannot represent, and the Report's nested
// results hold only slices and scalars, so gob encoding is
// deterministic.
func normalizeReport(rep foces.Report) ([]byte, error) {
	rep.Timings = foces.RunTimings{}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// streamCheck replays one cumulative snapshot sequence — clean windows,
// an attacked stretch, a silent switch, a counter reset — through the
// pull-based delta+Run path and through WindowAssembler+Serve, and
// verifies the emitted Reports are byte-identical.
func streamCheck(cfg StreamBenchConfig, env *Env, switches []topo.SwitchID, res *StreamBenchResult) error {
	sys, err := env.System()
	if err != nil {
		return err
	}
	res.CheckWindows = cfg.CheckWindows
	attackAt := cfg.CheckWindows / 2
	silentAt := cfg.CheckWindows / 3
	resetAt := 3 * cfg.CheckWindows / 4
	silent := switches[len(switches)/2]
	resetSw := switches[len(switches)/3]

	// Generate the shared snapshot sequence once; both arms replay it.
	if err := env.Net.SetLinkLoss(0.02); err != nil {
		return err
	}
	seq := make([]map[topo.SwitchID]map[int]uint64, cfg.CheckWindows)
	var applied bool
	for w := 0; w < cfg.CheckWindows; w++ {
		if w == attackAt && !applied {
			if _, err := env.ApplyRandomAttacks(1); err != nil {
				return err
			}
			applied = true
		}
		if w == resetAt {
			if err := env.ResetSwitch(resetSw); err != nil {
				return err
			}
		}
		per, err := collectPerSwitch(env, switches)
		if err != nil {
			return err
		}
		seq[w] = per
	}

	// Polled arm: one DeltaTracker advanced per switch in ascending
	// order, merged exactly as RobustCollector.Poll merges, one Run per
	// non-empty window.
	tracker := collector.NewDeltaTracker()
	tracker.SetEpoch(sys.Epoch())
	var polled [][]byte
	for w := 0; w < cfg.CheckWindows; w++ {
		deltas := make(map[int]uint64)
		var missing []topo.SwitchID
		for _, sw := range switches {
			if w == silentAt && sw == silent {
				tracker.Forget(sw)
				missing = append(missing, sw)
				continue
			}
			delta, reset, primed, _, _ := tracker.AdvanceEpoch(sw, seq[w][sw])
			if reset || !primed {
				missing = append(missing, sw)
				continue
			}
			for rid, v := range delta {
				deltas[rid] = v
			}
		}
		if len(deltas) == 0 {
			continue
		}
		if len(missing) == 0 {
			missing = nil
		}
		rep, err := sys.Run(foces.Observation{Counters: deltas, RunOptions: foces.RunOptions{Missing: missing, Epoch: sys.Epoch()}})
		if err != nil {
			return err
		}
		blob, err := normalizeReport(rep)
		if err != nil {
			return err
		}
		polled = append(polled, blob)
	}

	// Streaming arm: the same snapshots pushed through the assembler,
	// verdicts emitted by Serve (exercising the RunBatch grouping).
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{WindowBuffer: cfg.CheckWindows + 2})
	asm.SetEpoch(sys.Epoch())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports, err := sys.Serve(ctx, foces.StreamConfig{Windows: asm.Windows(), BatchMax: 4, Buffer: cfg.CheckWindows + 2})
	if err != nil {
		return err
	}
	pushErr := make(chan error, 1)
	go func() {
		for w := 0; w < cfg.CheckWindows; w++ {
			for _, sw := range switches {
				if w == silentAt && sw == silent {
					asm.Forget(sw)
					asm.MarkMissing(sw)
					continue
				}
				if err := asm.Push(collector.Update{Switch: sw, Counters: copyCounters(seq[w][sw])}); err != nil {
					pushErr <- err
					return
				}
			}
		}
		asm.Close()
		pushErr <- nil
	}()
	var streamed [][]byte
	for sr := range reports {
		if sr.Err != nil {
			return fmt.Errorf("stream window %d: %w", sr.Window, sr.Err)
		}
		blob, err := normalizeReport(sr.Report)
		if err != nil {
			return err
		}
		streamed = append(streamed, blob)
	}
	if err := <-pushErr; err != nil {
		return err
	}

	res.CheckedReports = len(streamed)
	res.VerdictsMatch = true
	if len(polled) != len(streamed) {
		res.VerdictsMatch = false
		res.Mismatch = fmt.Sprintf("report count: polled %d vs streamed %d", len(polled), len(streamed))
		return nil
	}
	for i := range polled {
		if !bytes.Equal(polled[i], streamed[i]) {
			res.VerdictsMatch = false
			res.Mismatch = fmt.Sprintf("report %d diverged between the polled and streamed paths", i)
			return nil
		}
	}
	return nil
}

// streamLatency measures ingest-to-verdict latency in lock step: push
// one real traffic window's snapshots, wait for its verdict, record the
// wall time from first push to report.
func streamLatency(cfg StreamBenchConfig, env *Env, switches []topo.SwitchID, res *StreamBenchResult) error {
	sys, err := env.System()
	if err != nil {
		return err
	}
	if err := env.Net.SetLinkLoss(0.02); err != nil {
		return err
	}
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{})
	asm.SetEpoch(sys.Epoch())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports, err := sys.Serve(ctx, foces.StreamConfig{Windows: asm.Windows()})
	if err != nil {
		return err
	}
	var latencies []time.Duration
	// Window 0 primes baselines (no verdict); each subsequent window
	// yields exactly one report.
	for w := 0; w <= cfg.LatencyWindows; w++ {
		per, err := collectPerSwitch(env, switches)
		if err != nil {
			return err
		}
		for _, sw := range switches {
			if err := asm.Push(collector.Update{Switch: sw, Counters: per[sw]}); err != nil {
				return err
			}
		}
		if w == 0 {
			continue
		}
		sr, ok := <-reports
		if !ok {
			return fmt.Errorf("report channel closed at window %d", w)
		}
		if sr.Err != nil {
			return fmt.Errorf("latency window %d: %w", sr.Window, sr.Err)
		}
		latencies = append(latencies, sr.Latency)
	}
	asm.Close()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.DetectWindows = len(latencies)
	if n := len(latencies); n > 0 {
		res.P50LatencyMs = float64(latencies[n/2].Microseconds()) / 1000
		res.P99LatencyMs = float64(latencies[int(0.99*float64(n-1))].Microseconds()) / 1000
		res.MaxLatencyMs = float64(latencies[n-1].Microseconds()) / 1000
	}
	return nil
}

// streamLoad saturates the assembler with synthetic cumulative counter
// updates from concurrent pushers and measures sustained ingestion
// throughput with bounded queues; a consumer drains completed windows
// (the bench discards them — detection throughput is the latency
// phase's concern, ingestion throughput is this one's).
func streamLoad(cfg StreamBenchConfig, env *Env, switches []topo.SwitchID, res *StreamBenchResult) error {
	rulesBySwitch := make(map[topo.SwitchID][]int, len(switches))
	for rid, sw := range env.ruleSwitch {
		rulesBySwitch[sw] = append(rulesBySwitch[sw], rid)
	}
	qcap := cfg.QueueCapacity
	if qcap <= 0 {
		qcap = 64
	}
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{QueueCapacity: qcap, WindowBuffer: 64})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range asm.Windows() {
		}
	}()

	shards := make([][]topo.SwitchID, cfg.Pushers)
	for i, sw := range switches {
		shards[i%cfg.Pushers] = append(shards[i%cfg.Pushers], sw)
	}
	duration := time.Duration(cfg.LoadMillis) * time.Millisecond
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Pushers)
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard []topo.SwitchID) {
			defer wg.Done()
			for round := uint64(1); time.Now().Before(deadline); round++ {
				for _, sw := range shard {
					rules := rulesBySwitch[sw]
					counters := make(map[int]uint64, len(rules))
					for _, rid := range rules {
						counters[rid] = round * (uint64(rid)%17 + 1)
					}
					if err := asm.Push(collector.Update{Switch: sw, Counters: counters}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(shard)
	}
	wg.Wait()
	elapsed := time.Since(start)
	asm.Close()
	<-drained
	select {
	case err := <-errs:
		return err
	default:
	}

	st := asm.Stats()
	res.LoadSecs = elapsed.Seconds()
	res.LoadPushes = st.Pushes
	res.LoadUpdates = st.Updates
	if elapsed > 0 {
		res.UpdatesPerSec = float64(st.Updates) / elapsed.Seconds()
	}
	res.LoadWindows = st.Windows
	res.CoalescedSnapshots = st.Coalesced
	res.DroppedWindows = st.DroppedWindows
	res.MaxQueueDepth = st.MaxQueueDepth
	res.QueueBound = len(switches) * qcap
	res.QueueBounded = st.MaxQueueDepth <= res.QueueBound
	return nil
}
