package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"foces"
	"foces/internal/cluster"
	"foces/internal/core"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// ClusterConfig drives the sharded multi-node detection experiment.
type ClusterConfig struct {
	// Topology names the fabric; empty selects "fattree16" (the ISSUE's
	// acceptance scale: 320 switches, 1024 hosts).
	Topology string
	// Flows is the number of monitored host pairs; zero selects 2048.
	Flows int
	// Seed drives traffic randomness.
	Seed int64
	// EquivWindows is the byte-equivalence phase length; zero selects 6.
	EquivWindows int
	// ThroughputWindows is the per-arm window count of the throughput
	// phase; zero selects 24.
	ThroughputWindows int
	// Nodes is the detector-node count of the multi-node arm; zero
	// selects 3.
	Nodes int
	// IntervalSecs is the collection interval every distributed window
	// must fit inside; zero selects the paper's 5 s.
	IntervalSecs float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Topology == "" {
		c.Topology = "fattree16"
	}
	if c.Flows == 0 {
		c.Flows = 2048
	}
	if c.EquivWindows == 0 {
		c.EquivWindows = 6
	}
	if c.ThroughputWindows == 0 {
		c.ThroughputWindows = 24
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.IntervalSecs == 0 {
		c.IntervalSecs = 5
	}
	return c
}

// ClusterWindow records one equivalence-phase window.
type ClusterWindow struct {
	Window    int    `json:"window"`
	Path      string `json:"path"`
	Anomalous bool   `json:"anomalous"`
	Match     bool   `json:"match"`
}

// ClusterResult is the archived outcome of the cluster experiment.
type ClusterResult struct {
	Topology   string `json:"topology"`
	Switches   int    `json:"switches"`
	Hosts      int    `json:"hosts"`
	Flows      int    `json:"flows"`
	Rules      int    `json:"rules"`
	Shards     int    `json:"shards"`
	Nodes      int    `json:"nodes"`
	GoMaxProcs int    `json:"goMaxProcs"`

	// Equivalence phase: every System.RunWith report across the cluster
	// must be byte-identical to the single-process System.Run report on
	// the same observation — clean, attacked and churn-reconciled
	// windows alike.
	EquivWindows  int             `json:"equivWindows"`
	Windows       []ClusterWindow `json:"windows"`
	VerdictsMatch bool            `json:"verdictsMatch"`
	Mismatch      string          `json:"mismatch,omitempty"`
	SnapshotSyncs int64           `json:"snapshotSyncs"`
	DeltaSyncs    int64           `json:"deltaSyncs"`

	// Node-kill phase: a node dies while its window shards are in
	// flight; the requeued window must still match the local report.
	KillMatch         bool   `json:"killMatch"`
	Evictions         uint64 `json:"evictions"`
	RequeuedShards    uint64 `json:"requeuedShards"`
	DegradedAfterKill bool   `json:"degradedAfterKill"`

	// Throughput phase: the same window set through a 1-node and an
	// N-node cluster, 4 concurrent RunWith workers each.
	ThroughputWindows int     `json:"throughputWindows"`
	OneNodeSecs       float64 `json:"oneNodeSecs"`
	MultiNodeSecs     float64 `json:"multiNodeSecs"`
	ThroughputRatio   float64 `json:"throughputRatio"`
	ThroughputGated   bool    `json:"throughputGated"`
	FirstWindowSecs   float64 `json:"firstWindowSecs"`
	MaxWindowSecs     float64 `json:"maxWindowSecs"`
	IntervalSecs      float64 `json:"intervalSecs"`
	WithinInterval    bool    `json:"withinInterval"`
}

// clusterPairs enumerates k monitored pairs with cross-pod strides
// (every host sends to hosts roughly half the fabric away), so paths
// traverse edge, aggregation and core layers and every switch carries
// detection work. spreadPairs' small strides would keep most pairs on
// one edge switch — a one-hop "cluster" with nothing to distribute.
func clusterPairs(t *topo.Topology, k int) ([][2]topo.HostID, error) {
	hosts := t.Hosts()
	n := len(hosts)
	if k < 1 || k > n*(n-1) {
		return nil, fmt.Errorf("experiment: %d flows outside [1, %d] for %s", k, n*(n-1), t.Name())
	}
	pairs := make([][2]topo.HostID, 0, k)
	for d := n / 2; len(pairs) < k; d = (d % (n - 1)) + 1 {
		for i := 0; i < n && len(pairs) < k; i++ {
			pairs = append(pairs, [2]topo.HostID{hosts[i].ID, hosts[(i+d)%n].ID})
		}
	}
	return pairs, nil
}

// clusterFleet is one coordinator plus its in-process detector nodes.
type clusterFleet struct {
	nodes []*cluster.Node
	coord *cluster.Coordinator
}

func startFleet(sys *foces.System, n int) (*clusterFleet, error) {
	f := &clusterFleet{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		nd, err := cluster.NewNode("127.0.0.1:0", cluster.NodeConfig{})
		if err != nil {
			f.close()
			return nil, err
		}
		f.nodes = append(f.nodes, nd)
		addrs = append(addrs, nd.Addr())
	}
	coord, err := cluster.New(sys.ChurnManager(), core.Options{}, cluster.Config{Peers: addrs}, nil)
	if err != nil {
		f.close()
		return nil, err
	}
	f.coord = coord
	return f, nil
}

func (f *clusterFleet) close() {
	if f.coord != nil {
		f.coord.Close()
	}
	for _, nd := range f.nodes {
		nd.Close()
	}
}

func (f *clusterFleet) syncCounts() (snapshots, deltas int64) {
	for _, nd := range f.nodes {
		s, d := nd.SyncCounts()
		snapshots += s
		deltas += d
	}
	return
}

// observeCounters runs one cumulative-free traffic interval and
// returns the per-rule counter snapshot, keyed by global rule ID so
// System.CounterVector can place it against the CURRENT rule space —
// valid across churn epochs, unlike env's dense vectors, which freeze
// the rule space the Env was built with.
func observeCounters(env *Env) (map[int]uint64, error) {
	env.Net.ResetCounters()
	if _, err := env.Net.Run(env.Rng, env.traffic); err != nil {
		return nil, err
	}
	return env.Net.CollectCounters(), nil
}

// Cluster runs the sharded multi-node detection experiment: byte
// equivalence of distributed vs single-process reports across clean,
// attacked and churn-reconciled windows; verdict survival of a node
// killed mid-window; and detect throughput of an N-node cluster
// against a single node under concurrent windows.
func Cluster(cfg ClusterConfig) (ClusterResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return ClusterResult{}, err
	}
	pairs, err := clusterPairs(t, cfg.Flows)
	if err != nil {
		return ClusterResult{}, err
	}
	env, err := NewEnvOn(Config{Seed: cfg.Seed, Topology: cfg.Topology}, t, pairs)
	if err != nil {
		return ClusterResult{}, err
	}
	sys, err := env.System()
	if err != nil {
		return ClusterResult{}, err
	}
	if err := env.Net.SetLinkLoss(0.02); err != nil {
		return ClusterResult{}, err
	}
	res := ClusterResult{
		Topology:          cfg.Topology,
		Switches:          t.NumSwitches(),
		Hosts:             t.NumHosts(),
		Flows:             cfg.Flows,
		Rules:             sys.FCM().NumRules(),
		Shards:            len(sys.Slices()),
		Nodes:             cfg.Nodes,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		EquivWindows:      cfg.EquivWindows,
		ThroughputWindows: cfg.ThroughputWindows,
		IntervalSecs:      cfg.IntervalSecs,
	}

	fleet, err := startFleet(sys, cfg.Nodes)
	if err != nil {
		return res, err
	}
	defer fleet.close()

	if err := clusterEquivalence(cfg, env, sys, fleet, &res); err != nil {
		return res, err
	}
	if err := clusterKill(env, sys, fleet, &res); err != nil {
		return res, err
	}
	if err := clusterThroughput(cfg, env, sys, &res); err != nil {
		return res, err
	}
	return res, nil
}

// clusterEquivalence drives the shared coordinator through clean
// windows, an attacked stretch, and churn-reconciled windows (one
// rank-one rule add, one refactoring rule add), comparing every
// RunWith report byte for byte against Run.
func clusterEquivalence(cfg ClusterConfig, env *Env, sys *foces.System, fleet *clusterFleet, res *ClusterResult) error {
	epoch0 := sys.Epoch()
	attackAt := 1
	phantomAt := cfg.EquivWindows / 2
	refactorAt := phantomAt + 1

	// An exact-match source IP no host owns: a rule matching it changes
	// a slice's row set but reroutes no traffic, forcing the rank-one
	// (incremental delta) replication path.
	phantomIP := uint64(0)
	for _, h := range envHosts(env) {
		if h.IP >= phantomIP {
			phantomIP = h.IP + 1
		}
	}

	res.VerdictsMatch = true
	for w := 0; w < cfg.EquivWindows; w++ {
		switch w {
		case attackAt:
			if _, err := env.ApplyRandomAttacks(1); err != nil {
				return err
			}
		case phantomAt:
			match, err := env.Layout.MatchExact(env.Layout.Wildcard(), header.FieldSrcIP, phantomIP)
			if err != nil {
				return err
			}
			sw := env.Topo.Switches()[0].ID
			if _, _, err := sys.AddRule(sw, 600, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
				return err
			}
		case refactorAt:
			// A source-pinned drop on the host's own edge switch captures
			// all its flows: affected slices refactor, so replication
			// falls back to snapshot re-shipment.
			h := envHosts(env)[0]
			match, err := env.Layout.MatchExact(env.Layout.Wildcard(), header.FieldSrcIP, h.IP)
			if err != nil {
				return err
			}
			if _, _, err := sys.AddRule(h.Attach, 700, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
				return err
			}
		}
		counters, err := observeCounters(env)
		if err != nil {
			return err
		}
		obs := foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Epoch: sys.Epoch()}}
		if w >= phantomAt {
			// Tag post-churn windows with the pre-churn epoch: the
			// reconciled path masks the changed rows — distributed via
			// the coordinator's DetectMasked.
			obs.Epoch = epoch0
		}
		local, err := sys.Run(obs)
		if err != nil {
			return fmt.Errorf("window %d: local run: %w", w, err)
		}
		dist, err := sys.RunWith(obs, fleet.coord)
		if err != nil {
			return fmt.Errorf("window %d: cluster run: %w", w, err)
		}
		lb, err := normalizeReport(local)
		if err != nil {
			return err
		}
		db, err := normalizeReport(dist)
		if err != nil {
			return err
		}
		match := string(lb) == string(db)
		res.Windows = append(res.Windows, ClusterWindow{Window: w, Path: local.Path, Anomalous: local.Anomalous, Match: match})
		if !match {
			res.VerdictsMatch = false
			if res.Mismatch == "" {
				res.Mismatch = fmt.Sprintf("window %d (%s): cluster report diverged from local (%d vs %d bytes)",
					w, local.Path, len(db), len(lb))
			}
		}
	}
	res.SnapshotSyncs, res.DeltaSyncs = fleet.syncCounts()
	return nil
}

// envHosts avoids repeating the topology walk at each use site.
func envHosts(env *Env) []*topo.Host { return env.Topo.Hosts() }

// clusterKill delays a shard-owning node's window processing, kills it
// while a window is in flight, and requires the requeued verdict to
// match the local report byte for byte.
func clusterKill(env *Env, sys *foces.System, fleet *clusterFleet, res *ClusterResult) error {
	byAddr := make(map[string]*cluster.Node)
	for _, nd := range fleet.nodes {
		byAddr[nd.Addr()] = nd
	}
	var victim *cluster.Node
	for _, ps := range fleet.coord.Status().Peers {
		if ps.Alive && ps.Shards > 0 {
			victim = byAddr[ps.Addr]
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("cluster kill: no live peer owns a shard")
	}
	counters, err := observeCounters(env)
	if err != nil {
		return err
	}
	obs := foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Epoch: sys.Epoch(), Mode: foces.ModeSliced}}
	local, err := sys.Run(obs)
	if err != nil {
		return err
	}
	victim.SetWindowDelay(400 * time.Millisecond)
	type outcome struct {
		rep foces.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := sys.RunWith(obs, fleet.coord)
		done <- outcome{rep, err}
	}()
	time.Sleep(100 * time.Millisecond)
	victim.Close()
	out := <-done
	if out.err != nil {
		return fmt.Errorf("cluster kill: window across node death: %w", out.err)
	}
	lb, err := normalizeReport(local)
	if err != nil {
		return err
	}
	db, err := normalizeReport(out.rep)
	if err != nil {
		return err
	}
	res.KillMatch = string(lb) == string(db)
	st := fleet.coord.Status()
	res.Evictions = st.Evictions
	res.RequeuedShards = st.RequeuedShards
	res.DegradedAfterKill = st.Degraded
	return nil
}

// clusterThroughput replays one pre-generated window set through a
// 1-node and an N-node cluster — fresh fleets, 4 concurrent RunWith
// workers, sliced stage only — and records the wall-clock ratio plus
// the per-window ceiling of the multi-node arm.
func clusterThroughput(cfg ClusterConfig, env *Env, sys *foces.System, res *ClusterResult) error {
	windows := make([]foces.Observation, cfg.ThroughputWindows)
	for i := range windows {
		counters, err := observeCounters(env)
		if err != nil {
			return err
		}
		windows[i] = foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Epoch: sys.Epoch(), Mode: foces.ModeSliced}}
	}
	arm := func(nodes int) (wall, first, maxWarm float64, err error) {
		fleet, err := startFleet(sys, nodes)
		if err != nil {
			return 0, 0, 0, err
		}
		defer fleet.close()
		// First window pays the full baseline shipment (every shard's
		// snapshot) — timed separately so the steady-state ratio is not
		// polluted by one-time sync cost.
		t0 := time.Now()
		if _, err := sys.RunWith(windows[0], fleet.coord); err != nil {
			return 0, 0, 0, err
		}
		first = time.Since(t0).Seconds()
		const workers = 4
		var mu sync.Mutex
		var firstErr error
		idx := make(chan int)
		var wg sync.WaitGroup
		start := time.Now()
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					w0 := time.Now()
					_, err := sys.RunWith(windows[i], fleet.coord)
					d := time.Since(w0).Seconds()
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("throughput window %d: %w", i, err)
					}
					if d > maxWarm {
						maxWarm = d
					}
					mu.Unlock()
				}
			}()
		}
		for i := range windows {
			idx <- i
		}
		close(idx)
		wg.Wait()
		return time.Since(start).Seconds(), first, maxWarm, firstErr
	}
	one, _, _, err := arm(1)
	if err != nil {
		return err
	}
	multi, first, maxWarm, err := arm(cfg.Nodes)
	if err != nil {
		return err
	}
	res.OneNodeSecs = one
	res.MultiNodeSecs = multi
	if multi > 0 {
		res.ThroughputRatio = one / multi
	}
	res.FirstWindowSecs = first
	res.MaxWindowSecs = maxWarm
	// The throughput gate is only meaningful when the host can actually
	// run the in-process nodes in parallel.
	res.ThroughputGated = res.GoMaxProcs >= 4
	res.WithinInterval = first < res.IntervalSecs && maxWarm < res.IntervalSecs
	return nil
}
