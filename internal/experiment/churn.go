package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"foces/internal/churn"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/stats"
	"foces/internal/topo"
)

// ChurnConfig drives the dynamic-network benchmark: the per-update
// latency of absorbing a single rule change through the epoch-versioned
// churn manager (incremental re-trace plus selective slice maintenance)
// versus rebuilding the whole baseline cold from the controller's rule
// set, as a static-FOCES deployment would have to.
type ChurnConfig struct {
	Config
	// Flows is the PairExact flow-subset size; default 480.
	Flows int
	// Updates is the number of single-rule updates measured; default 12.
	// Updates cycle through remove / add / modify so each disposition of
	// the incremental path (re-trace, rank-one repair, reuse) is hit.
	Updates int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	c.Config = c.Config.withDefaults()
	if c.Topology == "" {
		c.Topology = "fattree8"
	}
	if c.Flows == 0 {
		c.Flows = 480
	}
	if c.Updates == 0 {
		c.Updates = 12
	}
	return c
}

// ChurnPoint is one single-rule update's measurement.
type ChurnPoint struct {
	Update           int     `json:"update"`
	Op               string  `json:"op"`
	Rules            int     `json:"liveRules"`
	Flows            int     `json:"flows"`
	IncrementalSecs  float64 `json:"incrementalSecs"`
	FullSecs         float64 `json:"fullRebuildSecs"`
	Speedup          float64 `json:"speedup"`
	Retraced         int     `json:"retracedSources"`
	SlicesReused     int     `json:"slicesReused"`
	SlicesUpdated    int     `json:"slicesUpdated"`
	SlicesRefactored int     `json:"slicesRefactored"`
	// VerdictMatch reports whether sliced detection over the expected
	// (clean) counters agreed between the incrementally maintained
	// engines and the cold rebuild — both must read the window as clean.
	VerdictMatch bool `json:"verdictMatch"`
}

// ChurnResult is the full benchmark trajectory plus its summary.
type ChurnResult struct {
	Topology             string       `json:"topology"`
	Points               []ChurnPoint `json:"points"`
	MedianSpeedup        float64      `json:"medianSpeedup"`
	TotalIncrementalSecs float64      `json:"totalIncrementalSecs"`
	TotalFullSecs        float64      `json:"totalFullSecs"`
}

// Churn measures incremental ApplyUpdate latency against a cold full
// rebuild for a sequence of randomized single-rule updates.
func Churn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return nil, err
	}
	pairs, err := spreadPairs(t, cfg.Flows)
	if err != nil {
		return nil, err
	}
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, cfg.Mode)
	if err != nil {
		return nil, err
	}
	if err := ctrl.ComputeRulesForPairs(pairs); err != nil {
		return nil, err
	}
	mgr, err := churn.NewManager(t, layout, ctrl.Rules(), ctrl.RuleSpace(), core.Options{}, churn.Config{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &ChurnResult{Topology: t.Name()}
	speedups := make([]float64, 0, cfg.Updates)
	for i := 0; i < cfg.Updates; i++ {
		ev, err := randomUpdate(rng, ctrl, layout, t, i)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		u, err := mgr.Apply([]controller.RuleChange{ev})
		if err != nil {
			return nil, fmt.Errorf("experiment: churn update %d (%s): %w", i, ev.Op, err)
		}
		inc := time.Since(start).Seconds()

		start = time.Now()
		cold, err := churn.NewManager(t, layout, ctrl.Rules(), ctrl.RuleSpace(), core.Options{}, churn.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiment: churn cold rebuild %d: %w", i, err)
		}
		full := time.Since(start).Seconds()

		match, err := churnVerdictsAgree(mgr, cold, cfg.PacketsPerFlow)
		if err != nil {
			return nil, err
		}
		p := ChurnPoint{
			Update:           i,
			Op:               ev.Op.String(),
			Rules:            len(ctrl.Rules()),
			Flows:            mgr.FCM().NumFlows(),
			IncrementalSecs:  inc,
			FullSecs:         full,
			Speedup:          full / inc,
			Retraced:         u.Retraced,
			SlicesReused:     u.SlicesReused,
			SlicesUpdated:    u.SlicesUpdated,
			SlicesRefactored: u.SlicesRefactored,
			VerdictMatch:     match,
		}
		res.Points = append(res.Points, p)
		res.TotalIncrementalSecs += inc
		res.TotalFullSecs += full
		speedups = append(speedups, p.Speedup)
	}
	res.MedianSpeedup, err = stats.Median(speedups)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// spreadPairs enumerates k ordered pairs round-robin across all
// sources (every host sends to its d-th successor for growing d), so
// per-source flow counts stay small and uniform. This is the regime
// dynamic updates care about — a rule change touches few sources —
// whereas PairSubset's source-major order concentrates every flow on
// the first hosts and a single change would re-trace the whole set.
func spreadPairs(t *topo.Topology, k int) ([][2]topo.HostID, error) {
	hosts := t.Hosts()
	n := len(hosts)
	maxPairs := n * (n - 1)
	if k < 1 || k > maxPairs {
		return nil, fmt.Errorf("experiment: %d flows outside [1, %d] for %s", k, maxPairs, t.Name())
	}
	pairs := make([][2]topo.HostID, 0, k)
	for d := 1; d < n; d++ {
		for i := 0; i < n; i++ {
			pairs = append(pairs, [2]topo.HostID{hosts[i].ID, hosts[(i+d)%n].ID})
			if len(pairs) == k {
				return pairs, nil
			}
		}
	}
	return pairs, nil
}

// randomUpdate mutates the controller's rule set by one rule — cycling
// remove / add / modify — and returns the change event to feed the
// churn manager.
func randomUpdate(rng *rand.Rand, ctrl *controller.Controller, layout *header.Layout, t *topo.Topology, i int) (controller.RuleChange, error) {
	live := ctrl.Rules()
	switch op := i % 3; {
	case op == 1 || len(live) < 2:
		// Add a drop rule pinned to one host's source address on a
		// random switch: the canonical "policy tweak" update.
		h := t.Hosts()[rng.Intn(t.NumHosts())]
		sw := t.Switches()[rng.Intn(t.NumSwitches())].ID
		match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
		if err != nil {
			return controller.RuleChange{}, err
		}
		r, err := ctrl.AddRule(sw, 500, match, flowtable.Action{Type: flowtable.ActionDrop})
		if err != nil {
			return controller.RuleChange{}, err
		}
		return controller.RuleChange{Op: controller.RuleAdded, Rule: r}, nil
	case op == 0:
		victim := live[rng.Intn(len(live))]
		r, err := ctrl.RemoveRule(victim.ID)
		if err != nil {
			return controller.RuleChange{}, err
		}
		return controller.RuleChange{Op: controller.RuleRemoved, Rule: r}, nil
	default:
		victim := live[rng.Intn(len(live))]
		r, err := ctrl.ModifyRule(victim.ID, victim.Priority+1, victim.Match, victim.Action)
		if err != nil {
			return controller.RuleChange{}, err
		}
		return controller.RuleChange{Op: controller.RuleModified, Rule: r, Prev: victim}, nil
	}
}

// churnVerdictsAgree runs sliced detection over the expected clean
// counters of the incremental FCM on both engine sets; the incremental
// baseline is only trustworthy if both read the window as clean.
func churnVerdictsAgree(inc, cold *churn.Manager, volume uint64) (bool, error) {
	volumes := make(map[fcm.Pair]uint64)
	for _, f := range inc.FCM().Flows {
		for _, p := range f.Pairs {
			volumes[p] = volume
		}
	}
	y, err := inc.FCM().ExpectedCounters(volumes)
	if err != nil {
		return false, err
	}
	a, err := inc.DetectSliced(y)
	if err != nil {
		return false, err
	}
	b, err := cold.DetectSliced(y)
	if err != nil {
		return false, err
	}
	return !a.Anomalous && !b.Anomalous, nil
}
