package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

// A tiny run of the overhead experiment: both arms must execute, the
// live arm must populate metric families, and the result must be
// JSON-encodable (the +Inf bucket bound and a possibly-infinite anomaly
// index are the two historical failure modes).
func TestTelemetryOverheadSmoke(t *testing.T) {
	res, err := TelemetryOverhead(TelemetryOverheadConfig{
		Topology: "bcube14",
		Runs:     3,
		Repeats:  2,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("TelemetryOverhead: %v", err)
	}
	if res.Topology != "bcube14" || res.Runs != 3 {
		t.Fatalf("config not echoed: %+v", res)
	}
	if res.NopNs <= 0 || res.EnabledNs <= 0 {
		t.Fatalf("non-positive per-detect cost: nop=%v enabled=%v", res.NopNs, res.EnabledNs)
	}
	if len(res.Families) == 0 {
		t.Fatal("live arm populated no metric families")
	}
	names := make([]string, 0, len(res.Families))
	for _, f := range res.Families {
		names = append(names, f.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"foces_system_run_seconds", "foces_detector_detect_seconds"} {
		if !strings.Contains(joined, want) {
			t.Errorf("family %s missing from snapshot (have: %s)", want, joined)
		}
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("result not JSON-encodable: %v", err)
	}
	if !strings.Contains(string(out), `"le":"+Inf"`) {
		t.Error("encoded result lacks the +Inf bucket bound")
	}
}
