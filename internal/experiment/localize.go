package experiment

import (
	"fmt"
	"math/rand"

	"foces"
	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/topo"
)

// This file is the active-probe localization experiment: end-to-end
// Run-with-LocalizeConfig quality across the paper's four anomaly
// classes (path deviation, switch bypass, path detour, early drop)
// plus churn-straddling reconciled windows. It complements the passive
// study in localization.go (which ranks *switches* from per-slice
// indices); here the probe subsystem must name the compromised *rule*
// within the ceil(log2(|suspect rules|))+2 budget.

// AnomalyClass names one paper forwarding-anomaly class (§II-B), as
// realized by a rule-level attack and classified by the override-aware
// tracer on an affected flow.
type AnomalyClass string

// Anomaly classes.
const (
	// ClassDeviation is a port swap whose deviated traffic never reaches
	// the intended host (hijacked to a blackhole, rule miss or loop).
	ClassDeviation AnomalyClass = "deviation"
	// ClassBypass is a port swap whose traffic still reaches the
	// intended host over a path no longer than intended — the intended
	// next hop is bypassed. Requires aggregate rules on the alternate
	// switches, so it only exists under DestAggregate policies.
	ClassBypass AnomalyClass = "bypass"
	// ClassDetour is a port swap whose traffic reaches the intended host
	// over a strictly longer path (leaves and rejoins). DestAggregate
	// only, like bypass.
	ClassDetour AnomalyClass = "detour"
	// ClassDrop is an early-drop rule tamper.
	ClassDrop AnomalyClass = "drop"
	// ClassChurn is an early drop whose observation window straddles a
	// rule removal: the vector is captured, then the baseline churns,
	// and Run must reconcile the pre-churn window (PathReconciled)
	// before localizing. Mutates the arm's system — classes listed
	// after it see the churned baseline.
	ClassChurn AnomalyClass = "churn"
)

// LocalizeArm is one experiment arm: a topology + rule policy and the
// anomaly classes exercised on it. Deviation/drop/churn work under any
// policy; bypass/detour need DestAggregate (PairExact installs rules
// only along intended paths, so deviated traffic cannot re-match).
type LocalizeArm struct {
	Topology string
	Mode     controller.PolicyMode
	// Pairs restricts PairExact rule installation to a random flow
	// subset of this size (0 = all ordered pairs). Keeps the FatTree(8)
	// and FatTree(16) arms tractable.
	Pairs   int
	Classes []AnomalyClass
}

// DefaultLocalizeArms is the standard arm set: FatTree(8) and
// FatTree(16) pair-exact subsets for deviation/drop/churn, FatTree(4)
// dest-aggregate for the rejoining classes.
func DefaultLocalizeArms() []LocalizeArm {
	return []LocalizeArm{
		{Topology: "fattree8", Mode: controller.PairExact, Pairs: 96,
			Classes: []AnomalyClass{ClassDeviation, ClassDrop, ClassChurn}},
		{Topology: "fattree16", Mode: controller.PairExact, Pairs: 48,
			Classes: []AnomalyClass{ClassDeviation, ClassDrop}},
		{Topology: "fattree4", Mode: controller.DestAggregate,
			Classes: []AnomalyClass{ClassBypass, ClassDetour}},
	}
}

// LocalizeConfig drives the active-probe localization experiment.
type LocalizeConfig struct {
	Config
	// Arms default to DefaultLocalizeArms.
	Arms []LocalizeArm
	// Runs per (arm, class); default 4.
	Runs int
	// Loss is the per-link loss rate during the observation window;
	// default 1% (probe analysis must tolerate it). Negative disables.
	Loss float64
}

func (c LocalizeConfig) withDefaults() LocalizeConfig {
	if len(c.Arms) == 0 {
		c.Arms = DefaultLocalizeArms()
	}
	if c.Runs == 0 {
		c.Runs = 4
	}
	if c.Loss == 0 {
		c.Loss = 0.01
	}
	return c
}

// LocalizePoint is one (arm, class) row.
type LocalizePoint struct {
	Topology string `json:"topology"`
	Mode     string `json:"mode"`
	Class    string `json:"class"`
	Runs     int    `json:"runs"`
	// Detected counts runs whose window tripped the anomaly index at
	// all (an undetectable deviation cannot be localized; FatTree(4)
	// dest-aggregate has a known blind spot, see the coverage study).
	Detected int `json:"detected"`
	// Localized counts detected runs whose probe outcome reached the
	// confidence bar.
	Localized int `json:"localized"`
	// HitTop1 / HitTop3 count detected runs whose ranked culprit list
	// names the attacked rule first / in the top three.
	HitTop1 int `json:"hitTop1"`
	HitTop3 int `json:"hitTop3"`
	// MeanProbes / MaxProbes / MeanBudget summarize probe spend on
	// detected runs; BudgetBreaches counts runs that exceeded their
	// ceil(log2(|suspect rules|))+2 budget (must be zero).
	MeanProbes     float64 `json:"meanProbes"`
	MaxProbes      int     `json:"maxProbes"`
	MeanBudget     float64 `json:"meanBudget"`
	BudgetBreaches int     `json:"budgetBreaches"`
	// MeanSuspectRules is the suspect-set size probing started from,
	// the denominator of the probes-vs-suspects tradeoff.
	MeanSuspectRules float64 `json:"meanSuspectRules"`
}

// LocalizeResult aggregates the experiment.
type LocalizeResult struct {
	Points []LocalizePoint `json:"points"`
	// Totals across every point.
	Runs           int `json:"runs"`
	Detected       int `json:"detected"`
	Localized      int `json:"localized"`
	HitTop1        int `json:"hitTop1"`
	HitTop3        int `json:"hitTop3"`
	BudgetBreaches int `json:"budgetBreaches"`
	// HitTop3Rate is HitTop3 over detected runs — the CI gate.
	HitTop3Rate float64 `json:"hitTop3Rate"`
	// MeanProbes / MeanSuspectRules over all detected runs.
	MeanProbes       float64 `json:"meanProbes"`
	MeanSuspectRules float64 `json:"meanSuspectRules"`
}

// Localize measures active-probe localization end to end: per (arm,
// class) it injects a single anomaly of that class, observes a window,
// runs System.Run with localization enabled, and scores the ranked
// culprit report against the injected ground truth.
func Localize(cfg LocalizeConfig) (LocalizeResult, error) {
	cfg = cfg.withDefaults()
	res := LocalizeResult{}
	probeSum, suspectSum := 0.0, 0.0
	for ai, arm := range cfg.Arms {
		c := cfg.Config
		c.Topology = arm.Topology
		c.Mode = arm.Mode
		c.Seed = cfg.Seed + int64(ai)*7919
		env, err := newArmEnv(c, arm)
		if err != nil {
			return res, fmt.Errorf("arm %s/%v: %w", arm.Topology, arm.Mode, err)
		}
		sys, err := env.System()
		if err != nil {
			return res, err
		}
		tr, err := fcm.NewTracer(env.Topo, env.FCM.Rules)
		if err != nil {
			return res, err
		}
		cls := newClassifier(env.FCM, tr)
		for _, class := range arm.Classes {
			point, probes, suspects, err := runLocalizeClass(cfg, env, sys, cls, arm, class)
			if err != nil {
				return res, fmt.Errorf("arm %s/%v class %s: %w", arm.Topology, arm.Mode, class, err)
			}
			res.Points = append(res.Points, point)
			res.Runs += point.Runs
			res.Detected += point.Detected
			res.Localized += point.Localized
			res.HitTop1 += point.HitTop1
			res.HitTop3 += point.HitTop3
			res.BudgetBreaches += point.BudgetBreaches
			probeSum += probes
			suspectSum += suspects
		}
	}
	if res.Detected > 0 {
		res.HitTop3Rate = float64(res.HitTop3) / float64(res.Detected)
		res.MeanProbes = probeSum / float64(res.Detected)
		res.MeanSuspectRules = suspectSum / float64(res.Detected)
	}
	return res, nil
}

// newArmEnv builds the arm's environment, sampling a PairExact flow
// subset when the arm bounds it.
func newArmEnv(c Config, arm LocalizeArm) (*Env, error) {
	c = c.withDefaults()
	t, err := topo.ByName(c.Topology)
	if err != nil {
		return nil, err
	}
	var pairs [][2]topo.HostID
	if arm.Pairs > 0 && c.Mode == controller.PairExact {
		pairs = samplePairs(t, arm.Pairs, c.Seed)
	}
	return NewEnvOn(c, t, pairs)
}

// samplePairs draws n distinct ordered host pairs with deterministic
// seed-driven shuffling.
func samplePairs(t *topo.Topology, n int, seed int64) [][2]topo.HostID {
	hosts := t.Hosts()
	rng := rand.New(rand.NewSource(seed))
	var all [][2]topo.HostID
	for _, s := range hosts {
		for _, d := range hosts {
			if s.ID != d.ID {
				all = append(all, [2]topo.HostID{s.ID, d.ID})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// runLocalizeClass runs one (arm, class) cell and returns its point
// plus the probe/suspect sums for the global means.
func runLocalizeClass(cfg LocalizeConfig, env *Env, sys *foces.System, cls *attackClassifier, arm LocalizeArm, class AnomalyClass) (LocalizePoint, float64, float64, error) {
	point := LocalizePoint{
		Topology: arm.Topology,
		Mode:     policyName(arm.Mode),
		Class:    string(class),
		Runs:     cfg.Runs,
	}
	budgetSum, probeSum, suspectSum := 0.0, 0.0, 0.0
	for run := 0; run < cfg.Runs; run++ {
		atk, err := drawAttack(env, cls, class)
		if err != nil {
			return point, 0, 0, err
		}
		if err := atk.Apply(env.Net); err != nil {
			return point, 0, 0, err
		}
		rep, err := observeAndRun(cfg, env, sys, class, run)
		revertErr := atk.Revert(env.Net)
		if err != nil {
			return point, 0, 0, err
		}
		if revertErr != nil {
			return point, 0, 0, revertErr
		}
		if !rep.Anomalous {
			continue
		}
		point.Detected++
		loc := rep.Localization
		if loc == nil {
			return point, 0, 0, fmt.Errorf("anomalous run returned no localization block")
		}
		if loc.Error != "" {
			return point, 0, 0, fmt.Errorf("localization failed: %s", loc.Error)
		}
		if loc.Localized {
			point.Localized++
		}
		for rank, culprit := range loc.Culprits {
			if rank >= 3 {
				break
			}
			if culprit.RuleID == atk.RuleID {
				point.HitTop3++
				if rank == 0 {
					point.HitTop1++
				}
				break
			}
		}
		if loc.ProbesUsed > loc.ProbeBudget {
			point.BudgetBreaches++
		}
		if loc.ProbesUsed > point.MaxProbes {
			point.MaxProbes = loc.ProbesUsed
		}
		probeSum += float64(loc.ProbesUsed)
		budgetSum += float64(loc.ProbeBudget)
		suspectSum += float64(loc.SuspectRules)
	}
	if point.Detected > 0 {
		point.MeanProbes = probeSum / float64(point.Detected)
		point.MeanBudget = budgetSum / float64(point.Detected)
		point.MeanSuspectRules = suspectSum / float64(point.Detected)
	}
	return point, probeSum, suspectSum, nil
}

// observeAndRun captures one window under the active attack and runs
// detection + localization through the unified Run surface. For the
// churn class the baseline is mutated *after* the window is captured,
// so Run must take the reconciled path before probing.
func observeAndRun(cfg LocalizeConfig, env *Env, sys *foces.System, class AnomalyClass, run int) (foces.Report, error) {
	loss := cfg.Loss
	if loss < 0 {
		loss = 0
	}
	y, err := env.Observe(loss)
	if err != nil {
		return foces.Report{}, err
	}
	// A wider-than-default suspect set costs almost nothing in probe
	// budget (it grows with log2 of the suspect-rule count) but is what
	// keeps the compromised switch in play under DestAggregate, where
	// the least-squares fit spreads a rejoining anomaly's error mass
	// thin across many switches.
	locCfg := &foces.LocalizeConfig{Seed: cfg.Seed + int64(run), MaxSuspects: 8}
	opts := foces.RunOptions{Localize: locCfg}
	if class == ClassChurn {
		opts.Epoch = sys.Epoch()
		opts.Mode = foces.ModeSliced
		victim, ok := churnVictim(sys)
		if !ok {
			return foces.Report{}, fmt.Errorf("no removable rule left for churn run")
		}
		if _, err := sys.RemoveRule(victim); err != nil {
			return foces.Report{}, err
		}
		if space := sys.FCM().NumRules(); len(y) < space {
			padded := make([]float64, space)
			copy(padded, y)
			y = padded
		}
	}
	return sys.Run(foces.Observation{Vector: y, RunOptions: opts})
}

// churnVictim picks a live rule to remove mid-window: the first hop of
// the lowest-ID flow that still has a multi-hop path. Attacks override
// table actions rather than removing rules, so any live rule is safe.
func churnVictim(sys *foces.System) (int, bool) {
	for _, fl := range sys.FCM().Flows {
		if len(fl.RuleIDs) >= 3 {
			return fl.RuleIDs[0], true
		}
	}
	return 0, false
}

// drawAttack produces a single attack realizing the class: drops are
// drawn directly; port swaps are rejection-sampled until the tracer
// classifies one as the requested deviation/bypass/detour.
func drawAttack(env *Env, cls *attackClassifier, class AnomalyClass) (dataplane.Attack, error) {
	switch class {
	case ClassDrop, ClassChurn:
		return dataplane.RandomAttack(env.Rng, env.Net, dataplane.AttackDrop)
	}
	const maxTries = 400
	for try := 0; try < maxTries; try++ {
		atk, err := dataplane.RandomAttack(env.Rng, env.Net, dataplane.AttackPortSwap)
		if err != nil {
			return dataplane.Attack{}, err
		}
		if cls.classify(atk) == class {
			return atk, nil
		}
	}
	return dataplane.Attack{}, fmt.Errorf("no %s port swap found in %d draws", class, maxTries)
}

// attackClassifier assigns a port-swap attack its anomaly class by
// tracing an affected flow's packet under the tampered action.
type attackClassifier struct {
	f           *fcm.FCM
	tr          *fcm.Tracer
	flowsByRule map[int][]*fcm.Flow
}

func newClassifier(f *fcm.FCM, tr *fcm.Tracer) *attackClassifier {
	byRule := make(map[int][]*fcm.Flow)
	for _, fl := range f.Flows {
		for _, rid := range fl.RuleIDs {
			byRule[rid] = append(byRule[rid], fl)
		}
	}
	return &attackClassifier{f: f, tr: tr, flowsByRule: byRule}
}

// classify traces the first affected flow whose tampered history
// differs from its intended one. Rules are destination-derived in both
// installation policies, so a delivered trace always delivered to the
// packet's own destination: delivery plus a longer path is a detour,
// delivery over an equal-or-shorter path bypassed the intended next
// hop, and anything undelivered is a deviation.
func (c *attackClassifier) classify(atk dataplane.Attack) AnomalyClass {
	overrides := map[int]flowtable.Action{atk.RuleID: atk.NewAction}
	for _, fl := range c.flowsByRule[atk.RuleID] {
		if len(fl.Pairs) == 0 {
			continue
		}
		src, err := c.f.Topology().Host(fl.Pairs[0].Src)
		if err != nil {
			continue
		}
		pkt := fl.Space.AnyPacket()
		intended, outcome, err := c.tr.Trace(pkt, src.Attach)
		if err != nil || outcome != fcm.TraceDelivered {
			continue
		}
		tampered, tamperedOutcome, err := c.tr.TraceOverride(pkt, src.Attach, overrides)
		if err != nil || sameHistory(intended, tampered) {
			continue
		}
		if tamperedOutcome != fcm.TraceDelivered {
			return ClassDeviation
		}
		if len(tampered) > len(intended) {
			return ClassDetour
		}
		return ClassBypass
	}
	return ""
}

func sameHistory(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func policyName(m controller.PolicyMode) string {
	switch m {
	case controller.DestAggregate:
		return "dest"
	default:
		return "pair"
	}
}
