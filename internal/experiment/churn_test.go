package experiment

import "testing"

// TestChurnIncrementalFasterAndConsistent runs the dynamic-network
// benchmark on a small fabric: every update's verdict must agree with a
// cold rebuild, and absorbing updates incrementally must beat
// rebuilding from scratch in aggregate.
func TestChurnIncrementalFasterAndConsistent(t *testing.T) {
	cfg := ChurnConfig{Flows: 24, Updates: 6}
	cfg.Topology = "fattree4"
	cfg.Seed = 9
	res, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("got %d points, want 6", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.VerdictMatch {
			t.Errorf("update %d (%s): incremental and cold verdicts diverged", p.Update, p.Op)
		}
		if p.IncrementalSecs <= 0 || p.FullSecs <= 0 {
			t.Errorf("update %d: non-positive timing %+v", p.Update, p)
		}
		if p.SlicesReused+p.SlicesUpdated+p.SlicesRefactored == 0 {
			t.Errorf("update %d: no slice dispositions recorded", p.Update)
		}
	}
	if res.TotalIncrementalSecs >= res.TotalFullSecs {
		t.Errorf("incremental maintenance (%.4fs) not faster than cold rebuilds (%.4fs)",
			res.TotalIncrementalSecs, res.TotalFullSecs)
	}
	if res.MedianSpeedup <= 0 {
		t.Errorf("median speedup %.2f", res.MedianSpeedup)
	}
}

// TestChurnSpeedupAtScale is the acceptance benchmark: on FatTree(8),
// absorbing a single-rule update incrementally must stay decisively
// faster than a cold full rebuild. The bound was originally 10x
// against a dense cold rebuild; the sparse direct solver then cut the
// cold rebuild itself by ~a third (the ratio now sits around 9-10x),
// so the gate is 6x — still far above noise, and a denominator
// regression of that size would mean the sparse path broke.
func TestChurnSpeedupAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("FatTree(8) churn benchmark is slow")
	}
	cfg := ChurnConfig{Updates: 6}
	cfg.Seed = 2
	res, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != "FatTree(8)" {
		t.Fatalf("default topology %q", res.Topology)
	}
	for _, p := range res.Points {
		if !p.VerdictMatch {
			t.Errorf("update %d (%s): verdicts diverged", p.Update, p.Op)
		}
	}
	if res.MedianSpeedup < 6 {
		t.Errorf("median incremental speedup %.1fx, want >= 6x", res.MedianSpeedup)
	}
}
