package experiment

import (
	"math"
	"time"

	"foces"
	"foces/internal/telemetry"
)

// TelemetryOverheadConfig drives the telemetry-overhead experiment: the
// same prepared detection engines run the same observation with a no-op
// metric registry and with a live one, isolating what instrumentation
// costs on the hot path (the time.Now reads run in both arms; only the
// atomic metric updates differ).
type TelemetryOverheadConfig struct {
	// Topology is a topo.ByName name; zero selects "fattree4".
	Topology string
	// Runs is the number of detections per timing sample; zero selects 50.
	Runs int
	// Repeats is the number of timing samples; the median is reported.
	// Zero selects 5.
	Repeats int
	// Seed drives traffic randomness.
	Seed int64
}

func (c TelemetryOverheadConfig) withDefaults() TelemetryOverheadConfig {
	if c.Topology == "" {
		c.Topology = "fattree4"
	}
	if c.Runs == 0 {
		c.Runs = 50
	}
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	return c
}

// TelemetryOverheadResult reports per-detection cost with and without
// live metrics, plus a snapshot of every family the instrumented run
// populated (what a /metrics scrape would have seen).
type TelemetryOverheadResult struct {
	Topology    string                     `json:"topology"`
	Rules       int                        `json:"rules"`
	Slices      int                        `json:"slices"`
	Runs        int                        `json:"runsPerSample"`
	NopNs       float64                    `json:"nopNsPerDetect"`
	EnabledNs   float64                    `json:"enabledNsPerDetect"`
	OverheadPct float64                    `json:"overheadPct"`
	Families    []telemetry.FamilySnapshot `json:"families"`
}

// TelemetryOverhead measures the hot-path cost of detection telemetry:
// System.Run (both engines) over one clean observation, first wired to
// a no-op registry, then to a live one.
func TelemetryOverhead(cfg TelemetryOverheadConfig) (TelemetryOverheadResult, error) {
	cfg = cfg.withDefaults()
	env, err := NewEnv(Config{Topology: cfg.Topology, Seed: cfg.Seed})
	if err != nil {
		return TelemetryOverheadResult{}, err
	}
	sys, err := env.System()
	if err != nil {
		return TelemetryOverheadResult{}, err
	}
	y, err := env.Observe(0)
	if err != nil {
		return TelemetryOverheadResult{}, err
	}
	obs := foces.Observation{Vector: y, RunOptions: foces.RunOptions{Epoch: sys.Epoch()}}

	nop := telemetry.NewNop()
	live := telemetry.New()
	sample := func(reg *telemetry.Registry) (float64, error) {
		sys.EnableTelemetry(reg)
		start := time.Now()
		for i := 0; i < cfg.Runs; i++ {
			if _, err := sys.Run(obs); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm up both wirings so lazy engine state and label children are
	// built outside the timing, then interleave the arms so clock-speed
	// drift hits both equally.
	if _, err := sample(nop); err != nil {
		return TelemetryOverheadResult{}, err
	}
	if _, err := sample(live); err != nil {
		return TelemetryOverheadResult{}, err
	}
	// Per arm, keep the fastest sample: scheduler and clock-speed noise
	// only ever adds time, so the minimum is the robust cost estimate.
	nopBest := math.Inf(1)
	liveBest := math.Inf(1)
	for i := 0; i < cfg.Repeats; i++ {
		tn, err := sample(nop)
		if err != nil {
			return TelemetryOverheadResult{}, err
		}
		tl, err := sample(live)
		if err != nil {
			return TelemetryOverheadResult{}, err
		}
		nopBest = math.Min(nopBest, tn)
		liveBest = math.Min(liveBest, tl)
	}
	nopNs := nopBest / float64(cfg.Runs) * float64(time.Second)
	enabledNs := liveBest / float64(cfg.Runs) * float64(time.Second)

	res := TelemetryOverheadResult{
		Topology:  cfg.Topology,
		Rules:     env.FCM.NumRules(),
		Slices:    len(env.Slices),
		Runs:      cfg.Runs,
		NopNs:     nopNs,
		EnabledNs: enabledNs,
		Families:  live.Gather(),
	}
	if nopNs > 0 {
		res.OverheadPct = (enabledNs - nopNs) / nopNs * 100
	}
	return res, nil
}
