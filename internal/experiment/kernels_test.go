package experiment

import "testing"

// TestKernelsExperiment runs the kernels experiment on a small fabric
// and checks the equivalence flags and the shape of the trajectories.
func TestKernelsExperiment(t *testing.T) {
	res, err := Kernels(KernelsConfig{Topology: "fattree4", Windows: 4, Repeats: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.VerdictsMatch {
		t.Error("serial- and parallel-prepared engines disagreed on probe verdicts")
	}
	if !res.BatchMatchesLoop {
		t.Error("DetectBatch diverged from the per-window loop")
	}
	if len(res.Serial.TotalSecs) != 2 || len(res.Parallel.TotalSecs) != 2 {
		t.Fatalf("trajectory lengths %d/%d, want 2", len(res.Serial.TotalSecs), len(res.Parallel.TotalSecs))
	}
	if len(res.LoopNsPerWindow) != 2 || len(res.BatchNsPerWindow) != 2 {
		t.Fatalf("detect trajectory lengths %d/%d, want 2", len(res.LoopNsPerWindow), len(res.BatchNsPerWindow))
	}
	if res.Serial.BestTotalSecs <= 0 || res.Parallel.BestTotalSecs <= 0 {
		t.Fatalf("non-positive best prepare times: %v / %v", res.Serial.BestTotalSecs, res.Parallel.BestTotalSecs)
	}
	if res.PrepareSpeedup <= 0 || res.BatchSpeedup <= 0 {
		t.Fatalf("non-positive speedups: %v / %v", res.PrepareSpeedup, res.BatchSpeedup)
	}
	if res.Rules == 0 || res.Slices == 0 || res.Flows == 0 {
		t.Fatalf("empty environment: %+v", res)
	}
}
