package experiment

import (
	"math"
	"testing"

	"foces/internal/stats"
	"foces/internal/topo"
)

func TestTableIMatchesPaperCounts(t *testing.T) {
	rows, err := TableI(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]int{ // switches, hosts, flows
		"Stanford":   {26, 26, 650},
		"FatTree(4)": {20, 16, 240},
		"BCube(1,4)": {24, 16, 240},
		"DCell(1,4)": {25, 20, 380},
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected topology %q", r.Name)
		}
		if r.Switches != w[0] || r.Hosts != w[1] || r.Flows != w[2] {
			t.Errorf("%s: got %d/%d/%d want %d/%d/%d",
				r.Name, r.Switches, r.Hosts, r.Flows, w[0], w[1], w[2])
		}
		if r.Rules <= r.Flows {
			t.Errorf("%s: rules %d must exceed flows %d (overdetermined system)", r.Name, r.Rules, r.Flows)
		}
	}
}

func TestFunctionalTimelineSeparates(t *testing.T) {
	points, err := Functional(FunctionalConfig{
		Config:         Config{Seed: 42, PacketsPerFlow: 2000},
		Losses:         []float64{0, 0.05},
		DurationSec:    60,
		PeriodSec:      5,
		AttackStartSec: 20,
		AttackEndSec:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*12 {
		t.Fatalf("points = %d", len(points))
	}
	for _, loss := range []float64{0, 0.05} {
		var attackMin, cleanMax = math.Inf(1), 0.0
		for _, p := range points {
			if p.Loss != loss {
				continue
			}
			if p.AttackActive {
				if p.Index < attackMin {
					attackMin = p.Index
				}
			} else if p.Index > cleanMax {
				cleanMax = p.Index
			}
		}
		// The anomaly index during the attack window must dominate the
		// clean windows (the visual content of Fig. 7).
		if attackMin <= cleanMax {
			t.Errorf("loss %v: attack min AI %v <= clean max AI %v", loss, attackMin, cleanMax)
		}
		if attackMin <= stats.DefaultThreshold {
			t.Errorf("loss %v: attack AI %v below default threshold", loss, attackMin)
		}
	}
}

func TestROCHighAUCAtLowLoss(t *testing.T) {
	series, err := ROC(ROCConfig{
		Config: Config{Topology: "fattree4", Seed: 7, PacketsPerFlow: 2000},
		Losses: []float64{0, 0.10},
		Runs:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.AUC < 0.9 {
			t.Errorf("loss %v: AUC = %v, want >= 0.9 (paper: little effect below 10%%)", s.Loss, s.AUC)
		}
		if len(s.Points) != 100 {
			t.Errorf("threshold sweep produced %d points", len(s.Points))
		}
	}
}

func TestPrecisionImprovesWithMoreModifiedRules(t *testing.T) {
	points, err := Precision(PrecisionConfig{
		Config:     Config{Topology: "fattree4", Seed: 11, PacketsPerFlow: 2000},
		Losses:     []float64{0.05},
		RuleCounts: []int{1, 3},
		Runs:       30,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRules := map[int]float64{}
	for _, p := range points {
		byRules[p.ModifiedRules] = p.Precision
	}
	// The paper's trend (more modified rules → higher precision) holds
	// in expectation; allow small-sample wiggle.
	if byRules[3] < byRules[1]-0.1 {
		t.Errorf("precision with 3 rules (%v) well below 1 rule (%v); paper says it improves", byRules[3], byRules[1])
	}
	if byRules[1] < 0.5 {
		t.Errorf("precision at 5%% loss = %v, unreasonably low", byRules[1])
	}
}

func TestSlicingAccuracyComparableToBaseline(t *testing.T) {
	results, err := Slicing(SlicingConfig{
		Config:     Config{Seed: 5, PacketsPerFlow: 2000},
		Topologies: []string{"fattree4"},
		Loss:       0.05,
		Runs:       10,
		Thresholds: stats.LinSpace(0, 50, 26),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if len(r.Curve) != 26 {
		t.Fatalf("curve points = %d", len(r.Curve))
	}
	if r.OptBaselineAccuracy < 0.8 || r.OptSlicedAccuracy < 0.8 {
		t.Errorf("optimal accuracies too low: baseline %v sliced %v", r.OptBaselineAccuracy, r.OptSlicedAccuracy)
	}
	// Paper's Fig 10 observation: slicing is comparable or better.
	if r.OptSlicedAccuracy < r.OptBaselineAccuracy-0.15 {
		t.Errorf("sliced optimal %v far below baseline %v", r.OptSlicedAccuracy, r.OptBaselineAccuracy)
	}
}

func TestScalingSlicedFasterAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	points, err := Scaling(ScalingConfig{
		Config:     Config{Seed: 3, PacketsPerFlow: 100},
		FlowCounts: []int{240, 1920},
		Repeats:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Flows == 0 || p.Rules == 0 || math.IsNaN(p.BaselineSecs) || math.IsNaN(p.SlicedSecs) {
			t.Fatalf("bad point %+v", p)
		}
	}
	// The Fig 12 shape: at small scale baseline and slicing are
	// comparable (slicing may even cost more), but past the crossover
	// the baseline's O(N³) solve dominates and slicing wins clearly.
	last := points[len(points)-1]
	if last.SlicedSecs >= last.BaselineSecs {
		t.Errorf("at %d flows sliced %vs >= baseline %vs", last.Flows, last.SlicedSecs, last.BaselineSecs)
	}
	first := points[0]
	growth := last.BaselineSecs / first.BaselineSecs
	if growth < 8 {
		t.Errorf("baseline grew only %.1fx for 8x flows; expected superlinear growth", growth)
	}
}

func TestPairSubset(t *testing.T) {
	top, err := topo.ByName("fattree4")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := PairSubset(top, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := map[[2]topo.HostID]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair")
		}
		if seen[p] {
			t.Fatal("duplicate pair")
		}
		seen[p] = true
	}
	if _, err := PairSubset(top, 0); err == nil {
		t.Fatal("zero flows must error")
	}
	if _, err := PairSubset(top, 1<<20); err == nil {
		t.Fatal("too many flows must error")
	}
}

func TestEnvString(t *testing.T) {
	env, err := NewEnv(Config{Topology: "fattree4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if env.String() == "" {
		t.Fatal("empty description")
	}
}

func TestNewEnvUnknownTopology(t *testing.T) {
	if _, err := NewEnv(Config{Topology: "nope"}); err == nil {
		t.Fatal("unknown topology must error")
	}
}

func TestObserveRejectsBadLoss(t *testing.T) {
	env, err := NewEnv(Config{Topology: "fattree4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Observe(1.5); err == nil {
		t.Fatal("bad loss must error")
	}
}
