package experiment

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"foces"
	"foces/internal/collector"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// AllocBenchConfig drives the steady-state allocation experiment: a
// verdict-equivalence check of the pooled dense-counter streaming path
// against the map-based polled path under a hostile schedule (attack,
// silent switch, counter reset, rule churn), then a replayed stream
// load that measures allocations per window and the GC's share of
// wall time once the window pools and scratch arrays are warm.
type AllocBenchConfig struct {
	// Topology is a topo.ByName name; zero selects "fattree8".
	Topology string
	// Flows restricts PairExact rules to the first k ordered host pairs;
	// zero selects min(960, all pairs).
	Flows int
	// CheckWindows is how many windows the equivalence check replays
	// through both paths; zero selects 12.
	CheckWindows int
	// WarmupWindows run before measurement starts so pools, stamp
	// arrays and channel buffers reach steady state; zero selects 8.
	WarmupWindows int
	// MeasureWindows is the measured steady-state span; zero selects 48.
	MeasureWindows int
	// AllocBudget is the allocs-per-window gate ceiling; zero selects
	// DefaultAllocBudget.
	AllocBudget float64
	// Seed drives traffic randomness.
	Seed int64
}

// DefaultAllocBudget is the steady-state allocations-per-window
// ceiling. A window through the pooled pipeline costs a bounded
// handful of allocations (the report's result pointers, the sliced
// stage's per-window result set) independent of rule count; the
// map-shaped path it replaced cost O(rules) per window (one delta map
// plus per-entry churn, ~10^4 on fattree8). The ceiling sits well
// above the pooled cost and far below the map cost, so it trips on a
// real regression, not on noise.
const DefaultAllocBudget = 2048

func (c AllocBenchConfig) withDefaults() AllocBenchConfig {
	if c.Topology == "" {
		c.Topology = "fattree8"
	}
	if c.CheckWindows <= 0 {
		c.CheckWindows = 12
	}
	if c.WarmupWindows <= 0 {
		c.WarmupWindows = 8
	}
	if c.MeasureWindows <= 0 {
		c.MeasureWindows = 48
	}
	if c.AllocBudget <= 0 {
		c.AllocBudget = DefaultAllocBudget
	}
	return c
}

// AllocBenchResult reports the allocation experiment
// (results/alloc.json).
type AllocBenchResult struct {
	Topology   string `json:"topology"`
	Switches   int    `json:"switches"`
	Flows      int    `json:"flows"`
	Rules      int    `json:"rules"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Equivalence: the pooled streaming path vs the map-based polled
	// path, lock-step on shared system state, under attack + silent
	// switch + counter reset + rule churn.
	CheckWindows   int    `json:"checkWindows"`
	CheckedReports int    `json:"checkedReports"`
	VerdictsMatch  bool   `json:"verdictsMatch"`
	Mismatch       string `json:"mismatch,omitempty"`

	// Steady-state allocation profile over the measured span.
	WarmupWindows   int     `json:"warmupWindows"`
	MeasuredWindows int     `json:"measuredWindows"`
	AllocsPerWindow float64 `json:"allocsPerWindow"`
	BytesPerWindow  float64 `json:"bytesPerWindow"`
	AllocBudget     float64 `json:"allocBudget"`
	WithinBudget    bool    `json:"withinBudget"`

	// GC pressure and the ingest-to-verdict latency tail over the same
	// measured span.
	ElapsedSecs  float64 `json:"elapsedSecs"`
	GCPauseMs    float64 `json:"gcPauseMs"`
	GCCycles     uint32  `json:"gcCycles"`
	GCPauseShare float64 `json:"gcPauseShare"`
	P50LatencyMs float64 `json:"p50LatencyMs"`
	P99LatencyMs float64 `json:"p99LatencyMs"`
	MaxLatencyMs float64 `json:"maxLatencyMs"`
}

// AllocBench measures the allocation behaviour of the streaming
// detection pipeline: verdict equivalence against the polled path
// under the full fault schedule, then allocations per window and GC
// pause share over a warm replayed stream load.
func AllocBench(cfg AllocBenchConfig) (AllocBenchResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return AllocBenchResult{}, err
	}
	flows := cfg.Flows
	maxPairs := t.NumHosts() * (t.NumHosts() - 1)
	if flows == 0 {
		flows = 960
		if flows > maxPairs {
			flows = maxPairs
		}
	}
	pairs, err := PairSubset(t, flows)
	if err != nil {
		return AllocBenchResult{}, err
	}
	// Both arms consume raw cumulative snapshots; disable skew/noise so
	// the replayed sequences stay identical bit for bit (as streamCheck
	// does).
	env, err := NewEnvOn(Config{Topology: cfg.Topology, Seed: cfg.Seed, SkewSigma: -1}, t, pairs)
	if err != nil {
		return AllocBenchResult{}, err
	}
	switches := make([]topo.SwitchID, 0, len(t.Switches()))
	for _, sw := range t.Switches() {
		switches = append(switches, sw.ID)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	res := AllocBenchResult{
		Topology:    cfg.Topology,
		Switches:    len(switches),
		Flows:       flows,
		Rules:       env.FCM.NumRules(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		AllocBudget: cfg.AllocBudget,
	}
	if err := allocCheck(cfg, env, switches, &res); err != nil {
		return res, err
	}
	if err := allocMeasure(cfg, env, switches, &res); err != nil {
		return res, err
	}
	return res, nil
}

// allocCheck replays one snapshot sequence lock-step through both
// paths — the map-based DeltaTracker+Run polled arm and the pooled
// WindowAssembler+Serve streaming arm — on shared system state, so a
// mid-sequence rule churn lands at the same epoch in both. The
// schedule covers every hot-path branch the pooling touched: clean
// windows, an attacked stretch, a silent switch (Forget/MarkMissing),
// a counter reset (re-baseline), and a rule add whose straddling
// window reconciles under masked rows.
func allocCheck(cfg AllocBenchConfig, env *Env, switches []topo.SwitchID, res *AllocBenchResult) error {
	sys, err := env.System()
	if err != nil {
		return err
	}
	res.CheckWindows = cfg.CheckWindows
	silentAt := cfg.CheckWindows / 3
	attackAt := cfg.CheckWindows / 2
	churnAt := 2 * cfg.CheckWindows / 3
	resetAt := 3 * cfg.CheckWindows / 4
	silent := switches[len(switches)/2]
	resetSw := switches[len(switches)/3]

	// An exact-match source IP no host owns: the rule changes a slice's
	// row set (forcing the reconciled masked-row path on the straddling
	// window) but reroutes no traffic, so the two arms' counter
	// sequences stay identical.
	phantomIP := uint64(0)
	for _, h := range envHosts(env) {
		if h.IP >= phantomIP {
			phantomIP = h.IP + 1
		}
	}

	if err := env.Net.SetLinkLoss(0.02); err != nil {
		return err
	}

	tracker := collector.NewDeltaTracker()
	tracker.SetEpoch(sys.Epoch())
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{
		WindowBuffer: 2,
		RuleSpace:    env.FCM.NumRules(),
	})
	asm.SetEpoch(sys.Epoch())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports, err := sys.Serve(ctx, foces.StreamConfig{Windows: asm.Windows(), Buffer: 2})
	if err != nil {
		return err
	}

	res.VerdictsMatch = true
	var applied bool
	for w := 0; w < cfg.CheckWindows; w++ {
		if w == attackAt && !applied {
			if _, err := env.ApplyRandomAttacks(1); err != nil {
				return err
			}
			applied = true
		}
		if w == churnAt {
			match, err := env.Layout.MatchExact(env.Layout.Wildcard(), header.FieldSrcIP, phantomIP)
			if err != nil {
				return err
			}
			sw := env.Topo.Switches()[0].ID
			r, _, err := sys.AddRule(sw, 600, match, flowtable.Action{Type: flowtable.ActionDrop})
			if err != nil {
				return err
			}
			// The new rule now shows up in dataplane snapshots (counter
			// 0 — phantom traffic); teach env's rule→switch index about
			// it so collectPerSwitch can place it.
			for len(env.ruleSwitch) <= r.ID {
				env.ruleSwitch = append(env.ruleSwitch, r.Switch)
			}
			// Both arms advance to the new epoch at the same window
			// boundary; their primed baselines now straddle it.
			tracker.SetEpoch(sys.Epoch())
			asm.SetEpoch(sys.Epoch())
		}
		if w == resetAt {
			if err := env.ResetSwitch(resetSw); err != nil {
				return err
			}
		}
		per, err := collectPerSwitch(env, switches)
		if err != nil {
			return err
		}

		// Polled arm: merge per-switch deltas exactly as
		// RobustCollector.Poll does, dating a straddling window by its
		// oldest baseline epoch — the same reconciliation
		// windowObservation performs.
		deltas := make(map[int]uint64)
		var missing []topo.SwitchID
		epoch := sys.Epoch()
		for _, sw := range switches {
			if w == silentAt && sw == silent {
				tracker.Forget(sw)
				missing = append(missing, sw)
				continue
			}
			delta, reset, primed, fromEpoch, straddles := tracker.AdvanceEpoch(sw, per[sw])
			if reset || !primed {
				missing = append(missing, sw)
				continue
			}
			if straddles && fromEpoch < epoch {
				epoch = fromEpoch
			}
			for rid, v := range delta {
				deltas[rid] = v
			}
		}
		var polled []byte
		if len(deltas) > 0 {
			if len(missing) == 0 {
				missing = nil
			}
			rep, err := sys.Run(foces.Observation{Counters: deltas, RunOptions: foces.RunOptions{Missing: missing, Epoch: epoch}})
			if err != nil {
				return err
			}
			if polled, err = normalizeReport(rep); err != nil {
				return err
			}
		}

		// Streaming arm: the same snapshots through the pooled
		// assembler; lock-step so system state (attack, churn epoch)
		// is identical when each arm scores window w.
		for _, sw := range switches {
			if w == silentAt && sw == silent {
				asm.Forget(sw)
				asm.MarkMissing(sw)
				continue
			}
			if err := asm.Push(collector.Update{Switch: sw, Counters: copyCounters(per[sw])}); err != nil {
				return err
			}
		}
		if polled == nil {
			continue
		}
		sr, ok := <-reports
		if !ok {
			res.VerdictsMatch = false
			res.Mismatch = fmt.Sprintf("window %d: report channel closed before the streamed verdict", w)
			return nil
		}
		if sr.Err != nil {
			return fmt.Errorf("stream window %d: %w", sr.Window, sr.Err)
		}
		streamed, err := normalizeReport(sr.Report)
		if err != nil {
			return err
		}
		res.CheckedReports++
		if !bytes.Equal(polled, streamed) {
			res.VerdictsMatch = false
			res.Mismatch = fmt.Sprintf("window %d diverged between the polled and pooled streaming paths", w)
			return nil
		}
	}
	asm.Close()
	for sr := range reports {
		if sr.Err != nil {
			return fmt.Errorf("stream window %d: %w", sr.Window, sr.Err)
		}
		res.VerdictsMatch = false
		res.Mismatch = fmt.Sprintf("streamed path emitted an extra report for window %d", sr.Window)
		return nil
	}
	return nil
}

// allocMeasure replays a pre-generated cumulative snapshot sequence
// lock-step through WindowAssembler+Serve and measures the pipeline's
// own steady-state cost: snapshots are generated up front so traffic
// simulation never pollutes the measured span, warmup windows let the
// window pool, stamp arrays, vector free lists and channel buffers
// reach their high-water marks, and the measured span then reads
// allocations, bytes and GC pause time straight from MemStats deltas.
func allocMeasure(cfg AllocBenchConfig, env *Env, switches []topo.SwitchID, res *AllocBenchResult) error {
	sys, err := env.System()
	if err != nil {
		return err
	}
	if err := env.Net.SetLinkLoss(0.02); err != nil {
		return err
	}
	total := 1 + cfg.WarmupWindows + cfg.MeasureWindows
	seq := make([]map[topo.SwitchID]map[int]uint64, total)
	for w := 0; w < total; w++ {
		per, err := collectPerSwitch(env, switches)
		if err != nil {
			return err
		}
		seq[w] = per
	}

	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{
		WindowBuffer: 2,
		RuleSpace:    env.FCM.NumRules(),
	})
	asm.SetEpoch(sys.Epoch())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports, err := sys.Serve(ctx, foces.StreamConfig{Windows: asm.Windows(), Buffer: 2})
	if err != nil {
		return err
	}
	push := func(w int) error {
		for _, sw := range switches {
			if err := asm.Push(collector.Update{Switch: sw, Counters: seq[w][sw]}); err != nil {
				return err
			}
		}
		return nil
	}
	// Window 0 primes baselines (no verdict); warmup windows fill every
	// pool and buffer before the clock starts.
	if err := push(0); err != nil {
		return err
	}
	for w := 1; w <= cfg.WarmupWindows; w++ {
		if err := push(w); err != nil {
			return err
		}
		if sr := <-reports; sr.Err != nil {
			return fmt.Errorf("warmup window %d: %w", sr.Window, sr.Err)
		}
	}

	latencies := make([]time.Duration, 0, cfg.MeasureWindows)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 1 + cfg.WarmupWindows; w < total; w++ {
		if err := push(w); err != nil {
			return err
		}
		sr := <-reports
		if sr.Err != nil {
			return fmt.Errorf("measured window %d: %w", sr.Window, sr.Err)
		}
		latencies = append(latencies, sr.Latency)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	asm.Close()
	for range reports {
	}

	n := float64(cfg.MeasureWindows)
	res.WarmupWindows = cfg.WarmupWindows
	res.MeasuredWindows = cfg.MeasureWindows
	res.AllocsPerWindow = float64(m1.Mallocs-m0.Mallocs) / n
	res.BytesPerWindow = float64(m1.TotalAlloc-m0.TotalAlloc) / n
	res.WithinBudget = res.AllocsPerWindow <= cfg.AllocBudget
	res.ElapsedSecs = elapsed.Seconds()
	res.GCPauseMs = float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6
	res.GCCycles = m1.NumGC - m0.NumGC
	if elapsed > 0 {
		res.GCPauseShare = float64(m1.PauseTotalNs-m0.PauseTotalNs) / float64(elapsed.Nanoseconds())
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.P50LatencyMs = float64(latencies[n/2].Microseconds()) / 1000
		res.P99LatencyMs = float64(latencies[int(0.99*float64(n-1))].Microseconds()) / 1000
		res.MaxLatencyMs = float64(latencies[n-1].Microseconds()) / 1000
	}
	return nil
}
