package experiment

import (
	"foces/internal/core"
)

// MonitorConfig drives the debounced-alarm extension study: how much
// of the per-period false-positive rate at heavy loss the K-of-N
// monitor suppresses, and what it costs in detection delay.
type MonitorConfig struct {
	Config
	// Loss defaults to 20% (where per-period false positives appear).
	Loss float64
	// Periods is the quiet timeline length; default 120.
	Periods int
	// AttackPeriods is the attacked timeline length; default 40.
	AttackPeriods int
	// Consecutive is the debounce depth; default 2.
	Consecutive int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Topology == "" {
		c.Topology = "fattree4"
	}
	if c.Loss == 0 {
		c.Loss = 0.20
	}
	if c.Periods == 0 {
		c.Periods = 120
	}
	if c.AttackPeriods == 0 {
		c.AttackPeriods = 40
	}
	if c.Consecutive == 0 {
		c.Consecutive = 2
	}
	return c
}

// MonitorResult summarizes the study.
type MonitorResult struct {
	Loss float64
	// RawFPRate is the fraction of quiet periods the per-period
	// detector flags.
	RawFPRate float64
	// DebouncedFPRate is the fraction of quiet periods the monitor
	// alarms on.
	DebouncedFPRate float64
	// RawTPRate / DebouncedTPRate are the attacked-period analogues.
	RawTPRate       float64
	DebouncedTPRate float64
	// DetectionDelayPeriods is the periods between attack start and the
	// first debounced alarm (-1 if never).
	DetectionDelayPeriods int
}

// MonitorStudy measures the debounced monitor against the per-period
// detector on one quiet timeline and one attacked timeline.
func MonitorStudy(cfg MonitorConfig) (MonitorResult, error) {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Config)
	if err != nil {
		return MonitorResult{}, err
	}
	res := MonitorResult{Loss: cfg.Loss, DetectionDelayPeriods: -1}

	// Quiet timeline.
	mon := core.NewMonitor(core.MonitorConfig{Consecutive: cfg.Consecutive})
	rawFP, debFP := 0, 0
	for p := 0; p < cfg.Periods; p++ {
		idx, err := env.Score(cfg.Loss)
		if err != nil {
			return MonitorResult{}, err
		}
		if idx > 4.5 {
			rawFP++
		}
		if mon.Feed(idx).Alert {
			debFP++
		}
	}
	res.RawFPRate = float64(rawFP) / float64(cfg.Periods)
	res.DebouncedFPRate = float64(debFP) / float64(cfg.Periods)

	// Attacked timeline.
	attacks, err := env.ApplyRandomAttacks(1)
	if err != nil {
		return MonitorResult{}, err
	}
	defer func() { _ = env.RevertAttacks(attacks) }()
	mon.Reset()
	rawTP, debTP := 0, 0
	for p := 0; p < cfg.AttackPeriods; p++ {
		idx, err := env.Score(cfg.Loss)
		if err != nil {
			return MonitorResult{}, err
		}
		if idx > 4.5 {
			rawTP++
		}
		if mon.Feed(idx).Alert {
			debTP++
			if res.DetectionDelayPeriods < 0 {
				res.DetectionDelayPeriods = p
			}
		}
	}
	res.RawTPRate = float64(rawTP) / float64(cfg.AttackPeriods)
	res.DebouncedTPRate = float64(debTP) / float64(cfg.AttackPeriods)
	return res, nil
}
