package experiment

import (
	"testing"

	"foces/internal/controller"
	"foces/internal/fcm"
)

// The fast arm set: small topologies, few runs, every anomaly class.
func testLocalizeConfig() LocalizeConfig {
	return LocalizeConfig{
		Config: Config{Seed: 7},
		Runs:   2,
		Arms: []LocalizeArm{
			{Topology: "fattree4", Mode: controller.PairExact,
				Classes: []AnomalyClass{ClassDeviation, ClassDrop, ClassChurn}},
			{Topology: "fattree4", Mode: controller.DestAggregate,
				Classes: []AnomalyClass{ClassBypass, ClassDetour}},
		},
	}
}

func TestLocalizeNamesCulpritsWithinBudget(t *testing.T) {
	res, err := Localize(testLocalizeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("expected 5 (arm, class) points, got %d: %+v", len(res.Points), res.Points)
	}
	if res.Detected == 0 {
		t.Fatal("no run detected its injected anomaly")
	}
	if res.BudgetBreaches != 0 {
		t.Fatalf("%d runs exceeded the probe budget", res.BudgetBreaches)
	}
	// Pair-exact arms localize deterministically: deviated traffic
	// cannot re-match (rules exist only on intended paths), so the
	// starved hop pins the culprit top-1 within a probe or two. Demand
	// a perfect hit rate there. Dest-aggregate arms are gated on a
	// rate instead: a detour over shared per-destination rules can be
	// fully absorbed by the least-squares fit (the residual on the
	// attacked path drops to the noise floor), and such an instance is
	// genuinely ambiguous within the log-size probe budget.
	for _, p := range res.Points {
		if p.Mode == "pair" && p.HitTop3 != p.Detected {
			t.Fatalf("%s/%s/%s: pair-exact arm missed the culprit (%d/%d hit top-3)",
				p.Topology, p.Mode, p.Class, p.HitTop3, p.Detected)
		}
		if p.Detected > 0 && p.MeanProbes > p.MeanBudget {
			t.Fatalf("%s/%s/%s: mean probes %.1f above mean budget %.1f",
				p.Topology, p.Mode, p.Class, p.MeanProbes, p.MeanBudget)
		}
	}
	if res.HitTop3Rate < 0.8 {
		t.Fatalf("top-3 hit rate %.2f below 0.8 (%d/%d):\n%+v",
			res.HitTop3Rate, res.HitTop3, res.Detected, res.Points)
	}
}

// The tracer-driven classifier must be able to realize every rejoining
// class under DestAggregate — the arm construction depends on it.
func TestDrawAttackRealizesRequestedClass(t *testing.T) {
	c := Config{Seed: 11, Topology: "fattree4", Mode: controller.DestAggregate}
	env, err := NewEnv(c)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := fcm.NewTracer(env.Topo, env.FCM.Rules)
	if err != nil {
		t.Fatal(err)
	}
	cls := newClassifier(env.FCM, tr)
	for _, class := range []AnomalyClass{ClassBypass, ClassDetour, ClassDeviation} {
		atk, err := drawAttack(env, cls, class)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if got := cls.classify(atk); got != class {
			t.Fatalf("drew a %s attack when asked for %s", got, class)
		}
	}
}
