package experiment

import (
	"testing"

	"foces/internal/core"
)

func TestObserveWindowedResetIsMissingNotAnomalous(t *testing.T) {
	env, err := NewEnv(Config{Topology: "fattree4", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	numSwitches := len(env.Topo.Switches())

	// Period 1 only primes the delta baselines: every switch is missing.
	_, missing, err := env.ObserveWindowed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != numSwitches {
		t.Fatalf("priming period: %d missing, want all %d", len(missing), numSwitches)
	}

	// Period 2: clean one-period deltas, full detection, no alarm.
	y, missing, err := env.ObserveWindowed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("steady state missing = %v", missing)
	}
	res, err := env.Detector.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("clean windowed period flagged: AI=%v", res.Index)
	}

	// A switch reboots mid-run and zeroes its counters. The delta layer
	// must flag exactly that switch as missing — not feed a garbage
	// window into HX=Y and raise a false alarm.
	victim := env.Topo.Switches()[2].ID
	if err := env.ResetSwitch(victim); err != nil {
		t.Fatal(err)
	}
	y, missing, err = env.ObserveWindowed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != victim {
		t.Fatalf("reset period missing = %v, want [%d]", missing, victim)
	}
	counters := make(map[int]uint64, len(y))
	for rid, v := range y {
		counters[rid] = uint64(v + 0.5)
	}
	partial, err := core.DetectWithMissing(env.FCM, counters, missing, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Anomalous {
		t.Fatalf("counter reset raised a false alarm: AI=%v", partial.Index)
	}

	// The reset re-baselined the victim, so the next period is whole
	// again.
	y, missing, err = env.ObserveWindowed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("post-reset missing = %v", missing)
	}
	res, err = env.Detector.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalous {
		t.Fatalf("post-reset period flagged: AI=%v", res.Index)
	}
}
