package experiment

import (
	"math"
	"reflect"
	"runtime"
	"time"

	"foces/internal/core"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// KernelsConfig drives the kernel-layer experiment: the same baseline
// (full Gram + Cholesky + per-slice engines) is prepared with the
// serial reference kernels and with the parallel blocked kernels, and
// the same detector then checks a batch of observation windows one by
// one and through the multi-RHS batch path.
type KernelsConfig struct {
	// Topology is a topo.ByName name; zero selects "fattree8".
	Topology string
	// Flows restricts PairExact rules to the first k ordered host pairs
	// (keeping the dense Gram affordable on FatTree(8)); zero selects
	// min(960, all pairs).
	Flows int
	// Windows is the detect-batch width; zero selects 16.
	Windows int
	// Repeats is the number of timing samples per arm (the fastest is
	// kept); zero selects 3.
	Repeats int
	// Seed drives traffic randomness.
	Seed int64
}

func (c KernelsConfig) withDefaults() KernelsConfig {
	if c.Topology == "" {
		c.Topology = "fattree8"
	}
	if c.Windows == 0 {
		c.Windows = 16
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// KernelsPrepare is one arm's prepare-time trajectory (one entry per
// repeat) with the per-stage decomposition of the best repeat.
type KernelsPrepare struct {
	TotalSecs      []float64 `json:"totalSecs"`
	BestTotalSecs  float64   `json:"bestTotalSecs"`
	GramSecs       float64   `json:"gramSecs"`
	FactorSecs     float64   `json:"factorSecs"`
	SliceBuildSecs float64   `json:"sliceBuildSecs"`
}

// KernelsResult reports the serial-vs-parallel prepare and
// batch-vs-loop detect trajectories (results/kernels.json).
type KernelsResult struct {
	Topology   string `json:"topology"`
	Flows      int    `json:"flows"`
	Rules      int    `json:"rules"`
	Slices     int    `json:"slices"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Serial         KernelsPrepare `json:"serialPrepare"`
	Parallel       KernelsPrepare `json:"parallelPrepare"`
	PrepareSpeedup float64        `json:"prepareSpeedup"`
	// VerdictsMatch reports whether serial- and parallel-prepared
	// engines agreed on every probe window (clean and attacked, full and
	// sliced).
	VerdictsMatch bool `json:"verdictsMatch"`

	BatchWindows     int       `json:"batchWindows"`
	LoopNsPerWindow  []float64 `json:"loopNsPerWindow"`
	BatchNsPerWindow []float64 `json:"batchNsPerWindow"`
	BatchSpeedup     float64   `json:"batchSpeedup"`
	// BatchMatchesLoop reports whether DetectBatch returned results
	// byte-identical to the per-window loop.
	BatchMatchesLoop bool `json:"batchMatchesLoop"`
}

// Kernels measures the parallel kernel layer against the serial
// reference path on one environment.
func Kernels(cfg KernelsConfig) (KernelsResult, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return KernelsResult{}, err
	}
	flows := cfg.Flows
	maxPairs := t.NumHosts() * (t.NumHosts() - 1)
	if flows == 0 {
		flows = 960
		if flows > maxPairs {
			flows = maxPairs
		}
	}
	pairs, err := PairSubset(t, flows)
	if err != nil {
		return KernelsResult{}, err
	}
	env, err := NewEnvOn(Config{Topology: cfg.Topology, Seed: cfg.Seed}, t, pairs)
	if err != nil {
		return KernelsResult{}, err
	}
	h := env.FCM.H
	numRules := env.FCM.NumRules()

	type arm struct {
		prep KernelsPrepare
		d    *core.Detector
		sd   *core.SlicedDetector
	}
	measure := func(o matrix.KernelOptions) (arm, error) {
		prev := matrix.SetKernelDefaults(o)
		defer matrix.SetKernelDefaults(prev)
		a := arm{prep: KernelsPrepare{BestTotalSecs: math.Inf(1)}}
		for rep := 0; rep < cfg.Repeats; rep++ {
			f0 := time.Now()
			d, err := core.NewDetector(h, core.Options{})
			if err != nil {
				return arm{}, err
			}
			tFull := time.Since(f0)
			s0 := time.Now()
			sd, err := core.NewSlicedDetector(env.Slices, numRules, core.Options{})
			if err != nil {
				return arm{}, err
			}
			tSlice := time.Since(s0)
			total := (tFull + tSlice).Seconds()
			a.prep.TotalSecs = append(a.prep.TotalSecs, total)
			if total < a.prep.BestTotalSecs {
				stats := d.PrepareStats()
				a.prep.BestTotalSecs = total
				a.prep.GramSecs = stats.Gram.Seconds()
				a.prep.FactorSecs = stats.Factor.Seconds()
				a.prep.SliceBuildSecs = tSlice.Seconds()
				a.d, a.sd = d, sd
			}
		}
		return a, nil
	}
	serial, err := measure(matrix.KernelOptions{Serial: true})
	if err != nil {
		return KernelsResult{}, err
	}
	parallel, err := measure(matrix.KernelOptions{})
	if err != nil {
		return KernelsResult{}, err
	}

	res := KernelsResult{
		Topology:   cfg.Topology,
		Flows:      flows,
		Rules:      numRules,
		Slices:     len(env.Slices),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Serial:     serial.prep,
		Parallel:   parallel.prep,
	}
	if parallel.prep.BestTotalSecs > 0 {
		res.PrepareSpeedup = serial.prep.BestTotalSecs / parallel.prep.BestTotalSecs
	}

	// Equivalence probes: a clean window and an attacked window must get
	// the same verdict (and the same suspect set) from both arms.
	res.VerdictsMatch = true
	probe := func(y []float64) error {
		rs, err := serial.d.Detect(y)
		if err != nil {
			return err
		}
		rp, err := parallel.d.Detect(y)
		if err != nil {
			return err
		}
		ss, err := serial.sd.Detect(y)
		if err != nil {
			return err
		}
		sp, err := parallel.sd.Detect(y)
		if err != nil {
			return err
		}
		if rs.Anomalous != rp.Anomalous || ss.Anomalous != sp.Anomalous || !reflect.DeepEqual(ss.Suspects, sp.Suspects) {
			res.VerdictsMatch = false
		}
		return nil
	}
	clean, err := env.Observe(0)
	if err != nil {
		return KernelsResult{}, err
	}
	if err := probe(clean); err != nil {
		return KernelsResult{}, err
	}
	attacks, err := env.ApplyRandomAttacks(1)
	if err != nil {
		return KernelsResult{}, err
	}
	attacked, err := env.Observe(0)
	if err != nil {
		return KernelsResult{}, err
	}
	if err := probe(attacked); err != nil {
		return KernelsResult{}, err
	}
	if err := env.RevertAttacks(attacks); err != nil {
		return KernelsResult{}, err
	}

	// Batch-vs-loop detect on the parallel-prepared full engine.
	ys := make([][]float64, cfg.Windows)
	for i := range ys {
		y, err := env.Observe(0)
		if err != nil {
			return KernelsResult{}, err
		}
		ys[i] = y
	}
	res.BatchWindows = cfg.Windows
	d := parallel.d
	var loopResults, batchResults []core.Result
	for rep := 0; rep < cfg.Repeats; rep++ {
		l0 := time.Now()
		loopResults = loopResults[:0]
		for _, y := range ys {
			r, err := d.Detect(y)
			if err != nil {
				return KernelsResult{}, err
			}
			loopResults = append(loopResults, r)
		}
		res.LoopNsPerWindow = append(res.LoopNsPerWindow, float64(time.Since(l0).Nanoseconds())/float64(cfg.Windows))
		b0 := time.Now()
		batchResults, err = d.DetectBatch(ys)
		if err != nil {
			return KernelsResult{}, err
		}
		res.BatchNsPerWindow = append(res.BatchNsPerWindow, float64(time.Since(b0).Nanoseconds())/float64(cfg.Windows))
	}
	res.BatchMatchesLoop = reflect.DeepEqual(loopResults, batchResults)
	bestLoop, bestBatch := math.Inf(1), math.Inf(1)
	for _, v := range res.LoopNsPerWindow {
		bestLoop = math.Min(bestLoop, v)
	}
	for _, v := range res.BatchNsPerWindow {
		bestBatch = math.Min(bestBatch, v)
	}
	if bestBatch > 0 {
		res.BatchSpeedup = bestLoop / bestBatch
	}
	return res, nil
}
