package experiment

import (
	"foces/internal/core"
	"foces/internal/topo"
)

// LocalizationConfig drives the localization study (the paper's first
// future-work direction, §IV-B): how well per-slice anomaly indices
// pinpoint the compromised switch.
type LocalizationConfig struct {
	Config
	// Topologies default to all four evaluation topologies.
	Topologies []string
	// Loss defaults to 2% (mild noise).
	Loss float64
	// Runs per topology; default 30.
	Runs int
	// TopK is the suspect-list depth counted as a hit; default 3.
	TopK int
}

func (c LocalizationConfig) withDefaults() LocalizationConfig {
	if len(c.Topologies) == 0 {
		c.Topologies = topo.EvaluationTopologies()
	}
	if c.Loss == 0 {
		c.Loss = 0.02
	}
	if c.Runs == 0 {
		c.Runs = 30
	}
	if c.TopK == 0 {
		c.TopK = 3
	}
	return c
}

// LocalizationPoint is one topology's localization quality.
type LocalizationPoint struct {
	Topology string
	Runs     int
	// Detected is the fraction of attacked runs flagged at all.
	Detected float64
	// HitTop1 is the fraction of detected runs whose top suspect is the
	// compromised switch or one of its direct neighbours (the deficit
	// materializes on the first benign hop after the compromise).
	HitTop1 float64
	// HitTopK is the same for the top-K suspects.
	HitTopK float64
	// DeltaHitTopK is the top-K hit rate of the slicing-free Δ-mass
	// ranking (core.AttributeDelta) on the same runs — the localization
	// ablation.
	DeltaHitTopK float64
	// MeanSuspects is the average suspect-list length on detected runs.
	MeanSuspects float64
}

// Localization measures how often sliced detection's suspect ranking
// includes the compromised switch (or a direct neighbour, where the
// counter deficit becomes visible) for single port-swap attacks.
func Localization(cfg LocalizationConfig) ([]LocalizationPoint, error) {
	cfg = cfg.withDefaults()
	var out []LocalizationPoint
	for ti, name := range cfg.Topologies {
		c := cfg.Config
		c.Topology = name
		c.Seed = cfg.Seed + int64(ti)*104729
		env, err := NewEnv(c)
		if err != nil {
			return nil, err
		}
		point := LocalizationPoint{Topology: name, Runs: cfg.Runs}
		detected, top1, topK, deltaTopK, suspects := 0, 0, 0, 0, 0
		for run := 0; run < cfg.Runs; run++ {
			attacks, err := env.ApplyRandomAttacks(1)
			if err != nil {
				return nil, err
			}
			y, err := env.Observe(cfg.Loss)
			if err != nil {
				return nil, err
			}
			sliced, err := core.DetectSliced(env.Slices, y, core.Options{})
			if err != nil {
				return nil, err
			}
			full, err := core.Detect(env.FCM.H, y, core.Options{})
			if err != nil {
				return nil, err
			}
			if err := env.RevertAttacks(attacks); err != nil {
				return nil, err
			}
			if !sliced.Anomalous {
				continue
			}
			detected++
			suspects += len(sliced.Suspects)
			target := attacks[0].Switch
			neighbourhood := map[topo.SwitchID]bool{target: true}
			for _, n := range env.Topo.Neighbors(target) {
				neighbourhood[n] = true
			}
			if len(sliced.Suspects) > 0 && neighbourhood[sliced.Suspects[0]] {
				top1++
			}
			limit := cfg.TopK
			if limit > len(sliced.Suspects) {
				limit = len(sliced.Suspects)
			}
			for _, sw := range sliced.Suspects[:limit] {
				if neighbourhood[sw] {
					topK++
					break
				}
			}
			deltaRank := core.TopSuspects(core.AttributeDelta(env.FCM, full.Delta), cfg.TopK)
			for _, sw := range deltaRank {
				if neighbourhood[sw] {
					deltaTopK++
					break
				}
			}
		}
		point.Detected = ratio(detected, cfg.Runs)
		point.HitTop1 = ratio(top1, detected)
		point.HitTopK = ratio(topK, detected)
		point.DeltaHitTopK = ratio(deltaTopK, detected)
		if detected > 0 {
			point.MeanSuspects = float64(suspects) / float64(detected)
		}
		out = append(out, point)
	}
	return out, nil
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
