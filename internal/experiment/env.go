// Package experiment reproduces the paper's evaluation (§VI): Table I's
// topology inventory and the experiments behind Figs 7-12. Every
// experiment is deterministic under its configured seed and returns
// typed rows that cmd/focesbench renders as the paper's tables and
// curve series.
package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"foces"
	"foces/internal/collector"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

// Config describes one experiment environment.
type Config struct {
	// Topology is a topo.ByName name ("stanford", "fattree4", ...).
	Topology string
	// Mode is the rule-installation policy; zero selects PairExact,
	// which reproduces Table I's flow counts.
	Mode controller.PolicyMode
	// PacketsPerFlow is the per-flow offered volume per collection
	// interval; zero selects 1000.
	PacketsPerFlow uint64
	// NoiseSigma is additive Gaussian counter read noise (packets);
	// zero disables it.
	NoiseSigma float64
	// SkewSigma is the relative polling-skew noise: every switch's
	// counters are coherently scaled by (1 + U(−SkewSigma, SkewSigma)),
	// modelling non-atomic statistics collection across switches. Zero
	// selects the default 0.5% (≈±25 ms round jitter on a 5 s window); negative
	// disables skew.
	SkewSigma float64
	// LossSpread is the log-normal sigma of per-link loss heterogeneity
	// (congestion hotspots). Zero selects the default 0.5; negative
	// keeps loss uniform.
	LossSpread float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultSkewSigma is the default relative polling-skew noise.
const DefaultSkewSigma = 0.005

// DefaultLossSpread is the default per-link loss heterogeneity.
const DefaultLossSpread = 0.3

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = controller.PairExact
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 1000
	}
	if c.SkewSigma == 0 {
		c.SkewSigma = DefaultSkewSigma
	}
	if c.LossSpread == 0 {
		c.LossSpread = DefaultLossSpread
	}
	return c
}

// Env is a ready-to-measure environment: topology, installed data
// plane, FCM, slices and prepared detection engines (factored once at
// build so per-period scoring pays only solves).
type Env struct {
	Config   Config
	Topo     *topo.Topology
	Layout   *header.Layout
	Net      *dataplane.Network
	Control  *controller.Controller
	FCM      *fcm.FCM
	Slices   []core.Slice
	Detector *core.Detector
	Sliced   *core.SlicedDetector
	Rng      *rand.Rand

	traffic    dataplane.TrafficMatrix
	ruleSwitch []topo.SwitchID
	deltas     *collector.DeltaTracker
	sys        *foces.System
}

// System wraps the environment's already-installed control and data
// plane as a foces.System, built lazily on first use: experiments
// exercising the unified Run API reuse the env's rules and traffic
// without a second bootstrap.
func (e *Env) System() (*foces.System, error) {
	if e.sys == nil {
		sys, err := foces.NewSystemFromParts(e.Topo, e.Layout, e.Control, e.Net, foces.DetectOptions{})
		if err != nil {
			return nil, err
		}
		e.sys = sys
	}
	return e.sys, nil
}

// NewEnv builds the environment for a configuration.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return nil, err
	}
	return NewEnvOn(cfg, t, nil)
}

// NewEnvOn builds an environment over an explicit topology; pairs
// restricts PairExact rules to a flow subset (nil = all ordered pairs).
func NewEnvOn(cfg Config, t *topo.Topology, pairs [][2]topo.HostID) (*Env, error) {
	cfg = cfg.withDefaults()
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, cfg.Mode)
	if err != nil {
		return nil, err
	}
	if pairs == nil {
		err = ctrl.ComputeRules()
	} else {
		err = ctrl.ComputeRulesForPairs(pairs)
	}
	if err != nil {
		return nil, err
	}
	net := dataplane.NewNetwork(t, layout)
	if err := ctrl.Install(net); err != nil {
		return nil, err
	}
	f, err := fcm.Generate(t, layout, ctrl.Rules())
	if err != nil {
		return nil, err
	}
	slices, err := core.BuildSlices(f)
	if err != nil {
		return nil, err
	}
	detector, err := core.NewDetector(f.H, core.Options{})
	if err != nil {
		return nil, err
	}
	sliced, err := core.NewSlicedDetector(slices, f.NumRules(), core.Options{})
	if err != nil {
		return nil, err
	}
	if cfg.LossSpread > 0 {
		if err := net.SetLossSpread(cfg.LossSpread); err != nil {
			return nil, err
		}
	}
	env := &Env{
		Config:   cfg,
		Topo:     t,
		Layout:   layout,
		Net:      net,
		Control:  ctrl,
		FCM:      f,
		Slices:   slices,
		Detector: detector,
		Sliced:   sliced,
		Rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	env.ruleSwitch = make([]topo.SwitchID, len(f.Rules))
	for i, r := range f.Rules {
		env.ruleSwitch[i] = r.Switch
	}
	env.deltas = collector.NewDeltaTracker()
	if pairs == nil {
		env.traffic = dataplane.UniformTraffic(t, cfg.PacketsPerFlow)
	} else {
		env.traffic = make(dataplane.TrafficMatrix, len(pairs))
		for _, p := range pairs {
			env.traffic[dataplane.FlowKey{Src: p[0], Dst: p[1]}] = cfg.PacketsPerFlow
		}
	}
	return env, nil
}

// Observe simulates one collection interval under the given loss rate
// and currently applied attacks, returning the observed counter vector
// Y' (with configured read noise applied).
func (e *Env) Observe(loss float64) ([]float64, error) {
	if err := e.Net.SetLinkLoss(loss); err != nil {
		return nil, err
	}
	e.Net.ResetCounters()
	if _, err := e.Net.Run(e.Rng, e.traffic); err != nil {
		return nil, err
	}
	y := e.FCM.CounterVector(e.Net.CollectCounters())
	if e.Config.SkewSigma > 0 {
		y, err := collector.ApplySkew(y, e.ruleSwitch, e.Config.SkewSigma, e.Rng)
		if err != nil {
			return nil, err
		}
		if e.Config.NoiseSigma > 0 {
			y = collector.ApplyNoise(y, e.Config.NoiseSigma, e.Rng)
		}
		return y, nil
	}
	if e.Config.NoiseSigma > 0 {
		y = collector.ApplyNoise(y, e.Config.NoiseSigma, e.Rng)
	}
	return y, nil
}

// ObserveWindowed is Observe for a production-style collection plane:
// counters are NOT reset between periods — they accumulate as on a real
// switch — and the collector-side windowed-delta layer differences
// consecutive cumulative snapshots into the period's Y'. A switch whose
// counters went backwards (it rebooted mid-run, e.g. via ResetSwitch)
// is detected by the delta layer and returned in missing instead of
// feeding a garbage window into HX=Y; its snapshot re-baselines so the
// following period is clean again. The first call only primes baselines
// and reports every switch missing. Feed missing to
// core.DetectWithMissing / core.DetectSlicedWithMissing.
func (e *Env) ObserveWindowed(loss float64) (y []float64, missing []topo.SwitchID, err error) {
	if err := e.Net.SetLinkLoss(loss); err != nil {
		return nil, nil, err
	}
	if _, err := e.Net.Run(e.Rng, e.traffic); err != nil {
		return nil, nil, err
	}
	cumulative := e.Net.CollectCounters()
	perSwitch := make(map[topo.SwitchID]map[int]uint64)
	for rid, v := range cumulative {
		sw := e.ruleSwitch[rid]
		if perSwitch[sw] == nil {
			perSwitch[sw] = make(map[int]uint64)
		}
		perSwitch[sw][rid] = v
	}
	deltas := make(map[int]uint64, len(cumulative))
	switches := make([]topo.SwitchID, 0, len(perSwitch))
	for sw := range perSwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, sw := range switches {
		delta, reset, primed := e.deltas.Advance(sw, perSwitch[sw])
		if reset || !primed {
			missing = append(missing, sw)
			continue
		}
		for rid, v := range delta {
			deltas[rid] = v
		}
	}
	y = e.FCM.CounterVector(deltas)
	if e.Config.SkewSigma > 0 {
		y, err = collector.ApplySkew(y, e.ruleSwitch, e.Config.SkewSigma, e.Rng)
		if err != nil {
			return nil, nil, err
		}
	}
	if e.Config.NoiseSigma > 0 {
		y = collector.ApplyNoise(y, e.Config.NoiseSigma, e.Rng)
	}
	return y, missing, nil
}

// ResetSwitch zeroes one switch's rule counters mid-run — the simulated
// fault behind counter-reset detection: a switch that rebooted and came
// back with empty tables' counters.
func (e *Env) ResetSwitch(sw topo.SwitchID) error {
	tbl, err := e.Net.Table(sw)
	if err != nil {
		return err
	}
	tbl.ResetCounters()
	return nil
}

// Score runs one observation and returns the baseline anomaly index,
// using the engine prepared at build time.
func (e *Env) Score(loss float64) (float64, error) {
	y, err := e.Observe(loss)
	if err != nil {
		return 0, err
	}
	res, err := e.Detector.Detect(y)
	if err != nil {
		return 0, err
	}
	return res.Index, nil
}

// ScoreSliced runs one observation and returns the maximum per-slice
// anomaly index, using the engine prepared at build time.
func (e *Env) ScoreSliced(loss float64) (float64, error) {
	y, err := e.Observe(loss)
	if err != nil {
		return 0, err
	}
	out, err := e.Sliced.Detect(y)
	if err != nil {
		return 0, err
	}
	return out.MaxIndex(), nil
}

// ApplyRandomAttacks draws and applies count distinct port-swap
// attacks, returning them for later revert.
func (e *Env) ApplyRandomAttacks(count int) ([]dataplane.Attack, error) {
	attacks, err := dataplane.RandomAttacks(e.Rng, e.Net, dataplane.AttackPortSwap, count)
	if err != nil {
		return nil, err
	}
	for _, a := range attacks {
		if err := a.Apply(e.Net); err != nil {
			return nil, err
		}
	}
	return attacks, nil
}

// RevertAttacks repairs previously applied attacks.
func (e *Env) RevertAttacks(attacks []dataplane.Attack) error {
	for _, a := range attacks {
		if err := a.Revert(e.Net); err != nil {
			return err
		}
	}
	return nil
}

// String summarizes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("%s mode=%v flows=%d rules=%d",
		e.Topo.Name(), e.Config.Mode, e.FCM.NumFlows(), e.FCM.NumRules())
}
