package experiment

import (
	"fmt"
	"math"
	"time"

	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/matrix"
	"foces/internal/stats"
	"foces/internal/topo"
)

// TopologyRow is one row of Table I.
type TopologyRow struct {
	Name     string
	Switches int
	Hosts    int
	Flows    int
	Rules    int
}

// TableI reproduces Table I: the four evaluation topologies with their
// switch, host, flow and rule counts under the configured policy mode.
func TableI(cfg Config) ([]TopologyRow, error) {
	rows := make([]TopologyRow, 0, 4)
	for _, name := range topo.EvaluationTopologies() {
		c := cfg
		c.Topology = name
		env, err := NewEnv(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: table1 %s: %w", name, err)
		}
		rows = append(rows, TopologyRow{
			Name:     env.Topo.Name(),
			Switches: env.Topo.NumSwitches(),
			Hosts:    env.Topo.NumHosts(),
			Flows:    env.FCM.NumFlows(),
			Rules:    env.FCM.NumRules(),
		})
	}
	return rows, nil
}

// FunctionalConfig drives Experiment 1 (Fig. 7): a timeline where one
// rule is modified mid-run and repaired later, detected every period.
type FunctionalConfig struct {
	Config
	// Losses are the packet loss rates to overlay; default {0, 5%, 10%}.
	Losses []float64
	// DurationSec, PeriodSec, AttackStartSec, AttackEndSec describe the
	// timeline; defaults 180/5/60/120 (the paper's setup).
	DurationSec, PeriodSec       int
	AttackStartSec, AttackEndSec int
}

func (c FunctionalConfig) withDefaults() FunctionalConfig {
	if c.Topology == "" {
		c.Topology = "bcube14"
	}
	if len(c.Losses) == 0 {
		c.Losses = []float64{0, 0.05, 0.10}
	}
	if c.DurationSec == 0 {
		c.DurationSec = 180
	}
	if c.PeriodSec == 0 {
		c.PeriodSec = 5
	}
	if c.AttackStartSec == 0 {
		c.AttackStartSec = 60
	}
	if c.AttackEndSec == 0 {
		c.AttackEndSec = 120
	}
	return c
}

// FunctionalPoint is one detection of the Fig. 7 timeline.
type FunctionalPoint struct {
	Loss         float64
	TimeSec      int
	Index        float64
	AttackActive bool
}

// Functional reproduces Experiment 1 (Fig. 7).
func Functional(cfg FunctionalConfig) ([]FunctionalPoint, error) {
	cfg = cfg.withDefaults()
	var out []FunctionalPoint
	for li, loss := range cfg.Losses {
		c := cfg.Config
		c.Seed = cfg.Seed + int64(li)*1000
		env, err := NewEnv(c)
		if err != nil {
			return nil, err
		}
		var active []dataplane.Attack
		for ts := cfg.PeriodSec; ts <= cfg.DurationSec; ts += cfg.PeriodSec {
			if ts > cfg.AttackStartSec && ts <= cfg.AttackEndSec && active == nil {
				active, err = env.ApplyRandomAttacks(1)
				if err != nil {
					return nil, err
				}
			}
			if ts > cfg.AttackEndSec && active != nil {
				if err := env.RevertAttacks(active); err != nil {
					return nil, err
				}
				active = nil
			}
			idx, err := env.Score(loss)
			if err != nil {
				return nil, err
			}
			out = append(out, FunctionalPoint{
				Loss:         loss,
				TimeSec:      ts,
				Index:        idx,
				AttackActive: active != nil,
			})
		}
	}
	return out, nil
}

// ROCConfig drives Experiment 2 (Fig. 8).
type ROCConfig struct {
	Config
	// Losses default to {0, 5, 10, 15, 20, 25}%.
	Losses []float64
	// Runs is the number of positive and negative observations per
	// loss; default 30.
	Runs int
	// Thresholds default to 1..100 (the paper's sweep).
	Thresholds []float64
}

func (c ROCConfig) withDefaults() ROCConfig {
	if len(c.Losses) == 0 {
		c.Losses = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	}
	if c.Runs == 0 {
		c.Runs = 30
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = stats.LinSpace(1, 100, 100)
	}
	return c
}

// ROCSeries is one loss rate's ROC curve.
type ROCSeries struct {
	Loss   float64
	Points []stats.ROCPoint
	AUC    float64
}

// ROC reproduces Experiment 2 (Fig. 8) for one topology: ROC curves of
// the baseline detector under increasing packet loss, one rule
// modified per positive observation.
func ROC(cfg ROCConfig) ([]ROCSeries, error) {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Config)
	if err != nil {
		return nil, err
	}
	out := make([]ROCSeries, 0, len(cfg.Losses))
	for _, loss := range cfg.Losses {
		samples, err := gatherSamples(env, loss, 1, cfg.Runs, false)
		if err != nil {
			return nil, err
		}
		points := stats.ROC(samples, cfg.Thresholds)
		out = append(out, ROCSeries{Loss: loss, Points: points, AUC: stats.AUC(points)})
	}
	return out, nil
}

// gatherSamples collects runs positive (attacked) and runs negative
// (clean) scored observations at the given loss. sliced selects the
// per-slice max index as the score.
func gatherSamples(env *Env, loss float64, attackCount, runs int, sliced bool) ([]stats.Sample, error) {
	score := env.Score
	if sliced {
		score = env.ScoreSliced
	}
	samples := make([]stats.Sample, 0, 2*runs)
	for i := 0; i < runs; i++ {
		idx, err := score(loss)
		if err != nil {
			return nil, err
		}
		samples = append(samples, stats.Sample{Score: idx, Positive: false})
		attacks, err := env.ApplyRandomAttacks(attackCount)
		if err != nil {
			return nil, err
		}
		idx, err = score(loss)
		if err != nil {
			return nil, err
		}
		if rerr := env.RevertAttacks(attacks); rerr != nil {
			return nil, rerr
		}
		samples = append(samples, stats.Sample{Score: idx, Positive: true})
	}
	return samples, nil
}

// gatherPairedSamples scores each observation with BOTH detectors so
// baseline/sliced comparisons see identical traffic.
func gatherPairedSamples(env *Env, loss float64, attackCount, runs int) (baseline, sliced []stats.Sample, err error) {
	observe := func(positive bool) error {
		y, err := env.Observe(loss)
		if err != nil {
			return err
		}
		res, err := core.Detect(env.FCM.H, y, core.Options{})
		if err != nil {
			return err
		}
		sl, err := core.DetectSliced(env.Slices, y, core.Options{})
		if err != nil {
			return err
		}
		baseline = append(baseline, stats.Sample{Score: res.Index, Positive: positive})
		sliced = append(sliced, stats.Sample{Score: sl.MaxIndex(), Positive: positive})
		return nil
	}
	for i := 0; i < runs; i++ {
		if err := observe(false); err != nil {
			return nil, nil, err
		}
		attacks, err := env.ApplyRandomAttacks(attackCount)
		if err != nil {
			return nil, nil, err
		}
		if err := observe(true); err != nil {
			return nil, nil, err
		}
		if err := env.RevertAttacks(attacks); err != nil {
			return nil, nil, err
		}
	}
	return baseline, sliced, nil
}

// PrecisionConfig drives Experiment 3 (Fig. 9).
type PrecisionConfig struct {
	Config
	// Losses default to {0, 5, 10, 15, 20, 25}%.
	Losses []float64
	// RuleCounts default to {1, 2, 3} modified rules.
	RuleCounts []int
	// Runs per point; default 50 (the paper's count).
	Runs int
	// Threshold defaults to 3.5 (the paper's Experiment 3 setting).
	Threshold float64
}

func (c PrecisionConfig) withDefaults() PrecisionConfig {
	if len(c.Losses) == 0 {
		c.Losses = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	}
	if len(c.RuleCounts) == 0 {
		c.RuleCounts = []int{1, 2, 3}
	}
	if c.Runs == 0 {
		c.Runs = 50
	}
	if c.Threshold == 0 {
		c.Threshold = 3.5
	}
	return c
}

// PrecisionPoint is one Fig. 9 data point.
type PrecisionPoint struct {
	Loss          float64
	ModifiedRules int
	Precision     float64
	Confusion     stats.Confusion
}

// Precision reproduces Experiment 3 (Fig. 9): detection precision
// TP/(TP+FP) versus packet loss for 1-3 modified rules at T=3.5.
func Precision(cfg PrecisionConfig) ([]PrecisionPoint, error) {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Config)
	if err != nil {
		return nil, err
	}
	var out []PrecisionPoint
	for _, k := range cfg.RuleCounts {
		for _, loss := range cfg.Losses {
			samples, err := gatherSamples(env, loss, k, cfg.Runs, false)
			if err != nil {
				return nil, err
			}
			c := stats.Evaluate(samples, cfg.Threshold)
			out = append(out, PrecisionPoint{
				Loss:          loss,
				ModifiedRules: k,
				Precision:     c.Precision(),
				Confusion:     c,
			})
		}
	}
	return out, nil
}

// SlicingConfig drives Experiment 4's accuracy side (Figs. 10 and 11).
type SlicingConfig struct {
	Config
	// Topologies default to all four evaluation topologies.
	Topologies []string
	// Loss defaults to 10% (where baseline and slicing separate).
	Loss float64
	// Runs per topology; default 30.
	Runs int
	// Thresholds default to 0..100 in steps of 1 (Fig. 11's sweep).
	Thresholds []float64
}

func (c SlicingConfig) withDefaults() SlicingConfig {
	if len(c.Topologies) == 0 {
		c.Topologies = topo.EvaluationTopologies()
	}
	if c.Loss == 0 {
		c.Loss = 0.10
	}
	if c.Runs == 0 {
		c.Runs = 30
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = stats.LinSpace(0, 100, 101)
	}
	return c
}

// ThresholdAccuracy is one Fig. 11 point: detection accuracy at one
// threshold, baseline vs sliced.
type ThresholdAccuracy struct {
	Threshold float64
	Baseline  float64
	Sliced    float64
}

// SlicingResult is one topology's Fig. 10/11 outcome.
type SlicingResult struct {
	Topology string
	// Curve is the Fig. 11 accuracy-vs-threshold sweep.
	Curve []ThresholdAccuracy
	// Optimal operating points (Fig. 10's bars).
	OptBaselineThreshold, OptBaselineAccuracy float64
	OptSlicedThreshold, OptSlicedAccuracy     float64
}

// Slicing reproduces Experiment 4's accuracy comparison (Figs. 10-11):
// baseline vs sliced detection accuracy across thresholds, per
// topology, with one rule modified per positive observation.
func Slicing(cfg SlicingConfig) ([]SlicingResult, error) {
	cfg = cfg.withDefaults()
	var out []SlicingResult
	for ti, name := range cfg.Topologies {
		c := cfg.Config
		c.Topology = name
		c.Seed = cfg.Seed + int64(ti)*7919
		env, err := NewEnv(c)
		if err != nil {
			return nil, err
		}
		baseSamples, slicedSamples, err := gatherPairedSamples(env, cfg.Loss, 1, cfg.Runs)
		if err != nil {
			return nil, err
		}
		res := SlicingResult{Topology: name}
		for _, th := range cfg.Thresholds {
			b := stats.Evaluate(baseSamples, th).Accuracy()
			s := stats.Evaluate(slicedSamples, th).Accuracy()
			res.Curve = append(res.Curve, ThresholdAccuracy{Threshold: th, Baseline: b, Sliced: s})
			if b > res.OptBaselineAccuracy {
				res.OptBaselineAccuracy, res.OptBaselineThreshold = b, th
			}
			if s > res.OptSlicedAccuracy {
				res.OptSlicedAccuracy, res.OptSlicedThreshold = s, th
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// ScalingConfig drives Experiment 4's performance side (Fig. 12).
type ScalingConfig struct {
	Config
	// FlowCounts are the flow-set sizes to sweep; default
	// {240, 480, 960, 1920}. The paper sweeps to 12K flows on a 3.5 GHz
	// desktop; the sweep here is smaller but preserves the growth
	// shape (see DESIGN.md's substitution notes).
	FlowCounts []int
	// Repeats per timing point; default 3 (median reported).
	Repeats int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Topology == "" {
		c.Topology = "fattree8"
	}
	if len(c.FlowCounts) == 0 {
		c.FlowCounts = []int{240, 480, 960, 1920}
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// ScalingPoint is one Fig. 12 data point.
type ScalingPoint struct {
	Flows, Rules   int
	BaselineSecs   float64
	SlicedSecs     float64
	SliceBuildSecs float64
}

// Scaling reproduces Experiment 4's computation-time comparison
// (Fig. 12): detection time versus number of flows, baseline vs
// slicing, on FatTree(8).
func Scaling(cfg ScalingConfig) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	t, err := topo.ByName(cfg.Topology)
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, k := range cfg.FlowCounts {
		pairs, err := PairSubset(t, k)
		if err != nil {
			return nil, err
		}
		env, err := NewEnvOn(cfg.Config, t, pairs)
		if err != nil {
			return nil, err
		}
		y, err := env.Observe(0)
		if err != nil {
			return nil, err
		}
		point := ScalingPoint{Flows: env.FCM.NumFlows(), Rules: env.FCM.NumRules()}
		point.BaselineSecs = medianSeconds(cfg.Repeats, func() error {
			// Fig. 12's baseline is the paper's dense O(N³) algorithm;
			// pin the dense path so the figure keeps measuring it now
			// that PrepareLS would auto-select the sparse solver at
			// these sizes (see the sparse experiment for that story).
			prev := matrix.SetKernelDefaults(matrix.KernelOptions{Sparse: matrix.SparseNever})
			defer matrix.SetKernelDefaults(prev)
			_, err := core.Detect(env.FCM.H, y, core.Options{})
			return err
		})
		point.SlicedSecs = medianSeconds(cfg.Repeats, func() error {
			_, err := core.DetectSliced(env.Slices, y, core.Options{})
			return err
		})
		point.SliceBuildSecs = medianSeconds(cfg.Repeats, func() error {
			_, err := core.BuildSlices(env.FCM)
			return err
		})
		out = append(out, point)
	}
	return out, nil
}

// PairSubset deterministically enumerates the first k ordered host
// pairs of a topology (source-major order, skipping self pairs).
func PairSubset(t *topo.Topology, k int) ([][2]topo.HostID, error) {
	maxPairs := t.NumHosts() * (t.NumHosts() - 1)
	if k < 1 || k > maxPairs {
		return nil, fmt.Errorf("experiment: %d flows outside [1, %d] for %s", k, maxPairs, t.Name())
	}
	pairs := make([][2]topo.HostID, 0, k)
	for _, src := range t.Hosts() {
		for _, dst := range t.Hosts() {
			if src.ID == dst.ID {
				continue
			}
			pairs = append(pairs, [2]topo.HostID{src.ID, dst.ID})
			if len(pairs) == k {
				return pairs, nil
			}
		}
	}
	return pairs, nil
}

func medianSeconds(repeats int, fn func() error) float64 {
	times := make([]float64, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return math.NaN()
		}
		times = append(times, time.Since(start).Seconds())
	}
	med, err := stats.Median(times)
	if err != nil {
		return math.NaN()
	}
	return med
}
