package header

import "testing"

func TestFiveTupleLayout(t *testing.T) {
	l := FiveTuple()
	if l.Width() != 104 {
		t.Fatalf("width = %d, want 104", l.Width())
	}
	fields := l.Fields()
	if len(fields) != 5 {
		t.Fatalf("fields = %d, want 5", len(fields))
	}
	dst, ok := l.Lookup(FieldDstIP)
	if !ok || dst.Offset != 32 || dst.Width != 32 {
		t.Fatalf("dst_ip = %+v ok=%v", dst, ok)
	}
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(Field{Name: "a", Width: 0}); err == nil {
		t.Fatal("zero-width field must error")
	}
	if _, err := NewLayout(Field{Name: "a", Width: 4}, Field{Name: "a", Width: 4}); err == nil {
		t.Fatal("duplicate field must error")
	}
}

func TestMatchExactAndPacketRoundTrip(t *testing.T) {
	l := FiveTuple()
	ip := IPv4(10, 0, 0, 7)
	s, err := l.MatchExact(l.Wildcard(), FieldDstIP, ip)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(l.Width())
	p, err = l.PacketWithField(p, FieldDstIP, ip)
	if err != nil {
		t.Fatal(err)
	}
	if !s.MatchesPacket(p) {
		t.Fatal("exact dst match must accept matching packet")
	}
	p2, err := l.PacketWithField(p, FieldDstIP, IPv4(10, 0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if s.MatchesPacket(p2) {
		t.Fatal("exact dst match must reject other address")
	}
	got, err := l.PacketField(p, FieldDstIP)
	if err != nil || got != ip {
		t.Fatalf("PacketField = %v, %v; want %v, nil", got, err, ip)
	}
}

func TestMatchPrefix(t *testing.T) {
	l := FiveTuple()
	// 10.1.0.0/16 must match 10.1.x.y but not 10.2.x.y.
	s, err := l.MatchPrefix(l.Wildcard(), FieldDstIP, IPv4(10, 1, 2, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := l.PacketWithField(NewPacket(l.Width()), FieldDstIP, IPv4(10, 1, 200, 9))
	out, _ := l.PacketWithField(NewPacket(l.Width()), FieldDstIP, IPv4(10, 2, 200, 9))
	if !s.MatchesPacket(in) {
		t.Fatal("prefix must match in-prefix packet")
	}
	if s.MatchesPacket(out) {
		t.Fatal("prefix must reject out-of-prefix packet")
	}
}

func TestPrefixNesting(t *testing.T) {
	l := FiveTuple()
	w := l.Wildcard()
	p8, err := l.MatchPrefix(w, FieldDstIP, IPv4(10, 0, 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := l.MatchPrefix(w, FieldDstIP, IPv4(10, 1, 0, 0), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !p8.Covers(p16) {
		t.Fatal("/8 must cover nested /16")
	}
	if p16.Covers(p8) {
		t.Fatal("/16 must not cover enclosing /8")
	}
}

func TestUnknownFieldErrors(t *testing.T) {
	l := FiveTuple()
	if _, err := l.MatchExact(l.Wildcard(), "nope", 0); err == nil {
		t.Fatal("unknown field in MatchExact must error")
	}
	if _, err := l.MatchPrefix(l.Wildcard(), "nope", 0, 0); err == nil {
		t.Fatal("unknown field in MatchPrefix must error")
	}
	if _, err := l.PacketWithField(NewPacket(l.Width()), "nope", 0); err == nil {
		t.Fatal("unknown field in PacketWithField must error")
	}
	if _, err := l.PacketField(NewPacket(l.Width()), "nope"); err == nil {
		t.Fatal("unknown field in PacketField must error")
	}
	if _, _, err := l.SpaceField(l.Wildcard(), "nope"); err == nil {
		t.Fatal("unknown field in SpaceField must error")
	}
}

func TestSpaceField(t *testing.T) {
	l := FiveTuple()
	s, err := l.MatchExact(l.Wildcard(), FieldProto, 6)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := l.SpaceField(s, FieldProto)
	if err != nil || !ok || v != 6 {
		t.Fatalf("SpaceField = %v %v %v; want 6 true nil", v, ok, err)
	}
	_, ok, err = l.SpaceField(s, FieldSrcIP)
	if err != nil || ok {
		t.Fatalf("wildcard field must report ok=false, err=nil; got ok=%v err=%v", ok, err)
	}
}

func TestIPv4Helpers(t *testing.T) {
	v := IPv4(192, 168, 1, 42)
	if got := FormatIPv4(v); got != "192.168.1.42" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
}
