package header

// Subtract computes the set difference a \ b as a list of pairwise
// disjoint spaces. This is the classic header-space difference used to
// carve a symbolic header around higher-priority rules: each exact bit
// of b that is a wildcard in a splits off the sub-space on the opposite
// side of that bit.
//
// The result is empty when b covers a, and {a} when the two spaces are
// disjoint.
func Subtract(a, b Space) []Space {
	if a.width != b.width {
		return []Space{a}
	}
	if !a.Overlaps(b) {
		return []Space{a}
	}
	var out []Space
	cur := a
	for i := 0; i < a.width; i++ {
		bBit := b.Bit(i)
		if bBit == Any {
			continue
		}
		switch cur.Bit(i) {
		case Any:
			// Packets on the other side of bit i are kept.
			opp := One
			if bBit == One {
				opp = Zero
			}
			out = append(out, cur.WithBit(i, opp))
			// Continue carving inside the b side.
			cur = cur.WithBit(i, bBit)
		case bBit:
			// Already constrained to b's side; nothing splits here.
		default:
			// a is exact and differs from b at bit i, so a and b are
			// disjoint; Overlaps above excludes this.
		}
	}
	return out
}

// SubtractAll removes every space in bs from a, returning a disjoint
// cover of a \ ∪bs.
func SubtractAll(a Space, bs []Space) []Space {
	remain := []Space{a}
	for _, b := range bs {
		var next []Space
		for _, r := range remain {
			next = append(next, Subtract(r, b)...)
		}
		remain = next
		if len(remain) == 0 {
			break
		}
	}
	return remain
}
