// Package header implements ternary header spaces: fixed-width packet
// headers whose bits are 0, 1, or wildcard (*). Header spaces are the
// foundation of ATPG-style symbolic reachability used by the FCM
// generator: an all-wildcard header is injected at each terminal port and
// intersected with rule matches as it traverses the network.
//
// A Space is immutable from the caller's point of view: all operations
// return fresh values and never mutate their receivers, so spaces can be
// shared freely across goroutines once constructed.
package header

import (
	"errors"
	"fmt"
	"strings"
)

// wordBits is the number of bits carried per backing word.
const wordBits = 64

// ErrWidthMismatch is returned when two spaces or packets of different
// widths are combined.
var ErrWidthMismatch = errors.New("header: width mismatch")

// Space is a ternary bit vector of fixed width. Each bit position is
// either exact (mask bit 1, value bit meaningful) or wildcard (mask bit
// 0). The zero value is not usable; construct spaces with Wildcard or
// Exact.
type Space struct {
	width int
	// value holds the exact bit values where mask is 1. Bits where the
	// corresponding mask bit is 0 are always stored as 0 so that Equal
	// can compare words directly.
	value []uint64
	mask  []uint64
}

// Wildcard returns the all-wildcard space of the given width. It matches
// every packet of that width.
func Wildcard(width int) Space {
	n := words(width)
	return Space{width: width, value: make([]uint64, n), mask: make([]uint64, n)}
}

// Exact returns a space matching exactly the given packet.
func Exact(p Packet) Space {
	n := words(p.width)
	s := Space{width: p.width, value: make([]uint64, n), mask: make([]uint64, n)}
	copy(s.value, p.bits)
	for i := range s.mask {
		s.mask[i] = ^uint64(0)
	}
	clearTail(&s)
	return s
}

// words returns the number of 64-bit words needed for width bits.
func words(width int) int {
	return (width + wordBits - 1) / wordBits
}

// clearTail zeroes bits beyond the logical width so word-wise comparison
// is exact.
func clearTail(s *Space) {
	if s.width%wordBits == 0 || len(s.mask) == 0 {
		return
	}
	last := len(s.mask) - 1
	keep := uint64(1)<<(uint(s.width%wordBits)) - 1
	s.mask[last] &= keep
	s.value[last] &= keep
}

// Width reports the number of bits in the space.
func (s Space) Width() int { return s.width }

// Valid reports whether the space was properly constructed.
func (s Space) Valid() bool { return s.width > 0 && len(s.mask) == words(s.width) }

// Clone returns a deep copy of the space.
func (s Space) Clone() Space {
	c := Space{width: s.width, value: make([]uint64, len(s.value)), mask: make([]uint64, len(s.mask))}
	copy(c.value, s.value)
	copy(c.mask, s.mask)
	return c
}

// Bit reports the ternary state of bit i: 0, 1, or Any.
func (s Space) Bit(i int) Trit {
	w, b := i/wordBits, uint(i%wordBits)
	if s.mask[w]>>b&1 == 0 {
		return Any
	}
	if s.value[w]>>b&1 == 1 {
		return One
	}
	return Zero
}

// WithBit returns a copy of s with bit i set to the given trit.
func (s Space) WithBit(i int, t Trit) Space {
	c := s.Clone()
	w, b := i/wordBits, uint(i%wordBits)
	switch t {
	case Any:
		c.mask[w] &^= 1 << b
		c.value[w] &^= 1 << b
	case Zero:
		c.mask[w] |= 1 << b
		c.value[w] &^= 1 << b
	case One:
		c.mask[w] |= 1 << b
		c.value[w] |= 1 << b
	}
	return c
}

// Trit is a ternary bit state.
type Trit uint8

// Ternary bit states. Zero and One are exact bits; Any is a wildcard.
const (
	Zero Trit = iota
	One
	Any
)

func (t Trit) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "*"
	}
}

// Intersect returns the intersection of two spaces and whether it is
// non-empty. The intersection is empty when any bit is exact in both
// spaces with conflicting values.
func (s Space) Intersect(o Space) (Space, bool) {
	if s.width != o.width {
		return Space{}, false
	}
	out := Space{width: s.width, value: make([]uint64, len(s.value)), mask: make([]uint64, len(s.mask))}
	for i := range s.mask {
		conflict := s.mask[i] & o.mask[i] & (s.value[i] ^ o.value[i])
		if conflict != 0 {
			return Space{}, false
		}
		out.mask[i] = s.mask[i] | o.mask[i]
		out.value[i] = s.value[i] | o.value[i]
	}
	return out, true
}

// Overlaps reports whether the two spaces share at least one packet.
func (s Space) Overlaps(o Space) bool {
	_, ok := s.Intersect(o)
	return ok
}

// Covers reports whether every packet in o is also in s (s ⊇ o).
func (s Space) Covers(o Space) bool {
	if s.width != o.width {
		return false
	}
	for i := range s.mask {
		// Every exact bit of s must be exact in o with the same value.
		if s.mask[i]&^o.mask[i] != 0 {
			return false
		}
		if s.mask[i]&(s.value[i]^o.value[i]) != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two spaces describe the same set of packets.
func (s Space) Equal(o Space) bool {
	if s.width != o.width {
		return false
	}
	for i := range s.mask {
		if s.mask[i] != o.mask[i] || s.value[i] != o.value[i] {
			return false
		}
	}
	return true
}

// ExactBits returns the number of non-wildcard bits; used for
// most-specific-match diagnostics.
func (s Space) ExactBits() int {
	n := 0
	for _, m := range s.mask {
		n += popcount(m)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MatchesPacket reports whether the concrete packet p lies inside the
// space.
func (s Space) MatchesPacket(p Packet) bool {
	if s.width != p.width {
		return false
	}
	for i := range s.mask {
		if s.mask[i]&(s.value[i]^p.bits[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the space most-significant bit first, e.g. "10**".
func (s Space) String() string {
	var b strings.Builder
	b.Grow(s.width)
	for i := s.width - 1; i >= 0; i-- {
		b.WriteString(s.Bit(i).String())
	}
	return b.String()
}

// SetField returns a copy of s with the field bits [offset,
// offset+fieldWidth) constrained so that the top prefixLen bits of the
// field equal the top bits of value and the remaining field bits are
// wildcards. This is the primitive behind IPv4-prefix matches.
func (s Space) SetField(offset, fieldWidth int, value uint64, prefixLen int) (Space, error) {
	if offset < 0 || fieldWidth <= 0 || offset+fieldWidth > s.width {
		return Space{}, fmt.Errorf("header: field [%d,%d) out of range for width %d", offset, offset+fieldWidth, s.width)
	}
	if prefixLen < 0 || prefixLen > fieldWidth {
		return Space{}, fmt.Errorf("header: prefix length %d out of range for field width %d", prefixLen, fieldWidth)
	}
	c := s.Clone()
	for i := 0; i < fieldWidth; i++ {
		bitPos := offset + i
		// Bit i of the field counts from the least-significant end.
		if fieldWidth-i <= prefixLen {
			t := Zero
			if value>>uint(i)&1 == 1 {
				t = One
			}
			c = c.WithBit(bitPos, t)
		} else {
			c = c.WithBit(bitPos, Any)
		}
	}
	return c, nil
}

// Field extracts the exact value of the field bits [offset,
// offset+fieldWidth). Wildcard bits read as zero; ok is false when any
// bit of the field is a wildcard.
func (s Space) Field(offset, fieldWidth int) (value uint64, ok bool) {
	ok = true
	for i := 0; i < fieldWidth; i++ {
		switch s.Bit(offset + i) {
		case One:
			value |= 1 << uint(i)
		case Any:
			ok = false
		}
	}
	return value, ok
}

// Packet is a concrete (fully specified) header of fixed width.
type Packet struct {
	width int
	bits  []uint64
}

// NewPacket returns an all-zero packet of the given width.
func NewPacket(width int) Packet {
	return Packet{width: width, bits: make([]uint64, words(width))}
}

// Width reports the number of bits in the packet.
func (p Packet) Width() int { return p.width }

// Clone returns a deep copy of the packet.
func (p Packet) Clone() Packet {
	c := Packet{width: p.width, bits: make([]uint64, len(p.bits))}
	copy(c.bits, p.bits)
	return c
}

// Bit reports bit i of the packet.
func (p Packet) Bit(i int) bool {
	return p.bits[i/wordBits]>>(uint(i%wordBits))&1 == 1
}

// WithBit returns a copy of p with bit i set to v.
func (p Packet) WithBit(i int, v bool) Packet {
	c := p.Clone()
	w, b := i/wordBits, uint(i%wordBits)
	if v {
		c.bits[w] |= 1 << b
	} else {
		c.bits[w] &^= 1 << b
	}
	return c
}

// WithField returns a copy of p with field bits [offset,
// offset+fieldWidth) set from the low bits of value.
func (p Packet) WithField(offset, fieldWidth int, value uint64) (Packet, error) {
	if offset < 0 || fieldWidth <= 0 || offset+fieldWidth > p.width {
		return Packet{}, fmt.Errorf("header: field [%d,%d) out of range for width %d", offset, offset+fieldWidth, p.width)
	}
	c := p.Clone()
	for i := 0; i < fieldWidth; i++ {
		c = c.WithBit(offset+i, value>>uint(i)&1 == 1)
	}
	return c, nil
}

// Field extracts field bits [offset, offset+fieldWidth) as an integer.
func (p Packet) Field(offset, fieldWidth int) uint64 {
	var v uint64
	for i := 0; i < fieldWidth; i++ {
		if p.Bit(offset + i) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// AnyPacket returns one concrete packet contained in the space, with all
// wildcard bits resolved to zero.
func (s Space) AnyPacket() Packet {
	p := Packet{width: s.width, bits: make([]uint64, len(s.value))}
	copy(p.bits, s.value)
	return p
}

// String renders the packet most-significant bit first.
func (p Packet) String() string {
	var b strings.Builder
	b.Grow(p.width)
	for i := p.width - 1; i >= 0; i-- {
		if p.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
