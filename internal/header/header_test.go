package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWildcardMatchesEverything(t *testing.T) {
	w := Wildcard(70)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := NewPacket(70)
		for b := 0; b < 70; b++ {
			p = p.WithBit(b, rng.Intn(2) == 1)
		}
		if !w.MatchesPacket(p) {
			t.Fatalf("wildcard must match packet %v", p)
		}
	}
}

func TestExactMatchesOnlyItself(t *testing.T) {
	p := NewPacket(16)
	p, err := p.WithField(0, 16, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	s := Exact(p)
	if !s.MatchesPacket(p) {
		t.Fatal("exact space must match its packet")
	}
	q := p.WithBit(3, !p.Bit(3))
	if s.MatchesPacket(q) {
		t.Fatal("exact space must not match a flipped packet")
	}
	if s.ExactBits() != 16 {
		t.Fatalf("ExactBits = %d, want 16", s.ExactBits())
	}
}

func TestTritRoundTrip(t *testing.T) {
	s := Wildcard(9)
	for i := 0; i < 9; i++ {
		for _, tr := range []Trit{Zero, One, Any} {
			s2 := s.WithBit(i, tr)
			if got := s2.Bit(i); got != tr {
				t.Fatalf("bit %d: got %v want %v", i, got, tr)
			}
		}
	}
}

func TestIntersectConflict(t *testing.T) {
	a := Wildcard(8).WithBit(2, One)
	b := Wildcard(8).WithBit(2, Zero)
	if _, ok := a.Intersect(b); ok {
		t.Fatal("conflicting exact bits must produce empty intersection")
	}
}

func TestIntersectRefines(t *testing.T) {
	a := Wildcard(8).WithBit(0, One)
	b := Wildcard(8).WithBit(7, Zero)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("non-conflicting spaces must intersect")
	}
	if got.Bit(0) != One || got.Bit(7) != Zero || got.Bit(3) != Any {
		t.Fatalf("bad intersection %v", got)
	}
}

func TestCovers(t *testing.T) {
	wide := Wildcard(8).WithBit(1, One)
	narrow := wide.WithBit(5, Zero)
	if !wide.Covers(narrow) {
		t.Fatal("wide must cover narrow")
	}
	if narrow.Covers(wide) {
		t.Fatal("narrow must not cover wide")
	}
	if !wide.Covers(wide) {
		t.Fatal("cover must be reflexive")
	}
	other := Wildcard(8).WithBit(1, Zero)
	if wide.Covers(other) || other.Covers(wide) {
		t.Fatal("disjoint spaces must not cover each other")
	}
}

func TestStringRendering(t *testing.T) {
	s := Wildcard(4).WithBit(0, One).WithBit(3, Zero)
	if got := s.String(); got != "0**1" {
		t.Fatalf("String() = %q, want 0**1", got)
	}
	p := NewPacket(4).WithBit(1, true)
	if got := p.String(); got != "0010" {
		t.Fatalf("Packet.String() = %q, want 0010", got)
	}
}

func TestSetFieldPrefix(t *testing.T) {
	// 8-bit field at offset 4; prefix 10.0.0.0/4-style: top 4 bits exact.
	s, err := Wildcard(16).SetField(4, 8, 0xA0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Field bits 4..11; top 4 bits (offsets 8..11) = 1010, low 4 wildcard.
	want := map[int]Trit{8: Zero, 9: One, 10: Zero, 11: One, 4: Any, 7: Any}
	for pos, tr := range want {
		if got := s.Bit(pos); got != tr {
			t.Fatalf("bit %d = %v, want %v", pos, got, tr)
		}
	}
}

func TestSetFieldErrors(t *testing.T) {
	if _, err := Wildcard(8).SetField(4, 8, 0, 8); err == nil {
		t.Fatal("out-of-range field must error")
	}
	if _, err := Wildcard(8).SetField(0, 8, 0, 9); err == nil {
		t.Fatal("excessive prefix length must error")
	}
	if _, err := Wildcard(8).SetField(0, -1, 0, 0); err == nil {
		t.Fatal("negative width must error")
	}
}

func TestFieldExtraction(t *testing.T) {
	s, err := Wildcard(16).SetField(4, 8, 0x5C, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.Field(4, 8)
	if !ok || v != 0x5C {
		t.Fatalf("Field = %#x ok=%v, want 0x5c true", v, ok)
	}
	if _, ok := s.Field(0, 8); ok {
		t.Fatal("field overlapping wildcards must report !ok")
	}
}

func TestAnyPacketInsideSpace(t *testing.T) {
	s, err := Wildcard(32).SetField(0, 32, 0xDEADBEEF, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := s.AnyPacket()
	if !s.MatchesPacket(p) {
		t.Fatal("AnyPacket must lie inside its space")
	}
}

func TestWidthMismatch(t *testing.T) {
	a, b := Wildcard(8), Wildcard(16)
	if _, ok := a.Intersect(b); ok {
		t.Fatal("mismatched widths must not intersect")
	}
	if a.Covers(b) || a.Equal(b) {
		t.Fatal("mismatched widths must not cover or equal")
	}
	if a.MatchesPacket(NewPacket(16)) {
		t.Fatal("mismatched widths must not match")
	}
}

// genSpace builds a random space of the given width.
func genSpace(rng *rand.Rand, width int) Space {
	s := Wildcard(width)
	for i := 0; i < width; i++ {
		s = s.WithBit(i, Trit(rng.Intn(3)))
	}
	return s
}

func TestPropertyIntersectionIsSubsetOfBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpace(r, 48), genSpace(r, 48)
		c, ok := a.Intersect(b)
		if !ok {
			return true
		}
		return a.Covers(c) && b.Covers(c)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntersectCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpace(r, 48), genSpace(r, 48)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA {
			return false
		}
		if !okAB {
			return true
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCoversConsistentWithPackets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpace(r, 20), genSpace(r, 20)
		if !a.Covers(b) {
			return true
		}
		// Sample packets of b; all must also be in a.
		for i := 0; i < 32; i++ {
			p := b.AnyPacket()
			for bit := 0; bit < 20; bit++ {
				if b.Bit(bit) == Any {
					p = p.WithBit(bit, r.Intn(2) == 1)
				}
			}
			if !b.MatchesPacket(p) || !a.MatchesPacket(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntersectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genSpace(r, 48)
		c, ok := a.Intersect(a)
		return ok && c.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Wildcard(8).WithBit(0, One)
	b := a.Clone()
	b = b.WithBit(0, Zero)
	if a.Bit(0) != One {
		t.Fatal("mutating a clone must not affect the original")
	}
}
