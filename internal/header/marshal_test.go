package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genSpace(r, 1+r.Intn(130))
		data, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		got, n, err := UnmarshalSpace(data)
		if err != nil || n != len(data) {
			return false
		}
		return got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(130)
		p := NewPacket(width)
		for i := 0; i < width; i++ {
			p = p.WithBit(i, r.Intn(2) == 1)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, n, err := UnmarshalPacket(data)
		if err != nil || n != len(data) || got.Width() != width {
			return false
		}
		for i := 0; i < width; i++ {
			if got.Bit(i) != p.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalSpace(nil); err == nil {
		t.Fatal("nil space must error")
	}
	if _, _, err := UnmarshalSpace([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero-width space must error")
	}
	if _, _, err := UnmarshalSpace([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("implausible width must error")
	}
	if _, _, err := UnmarshalSpace([]byte{0, 0, 0, 8, 1}); err == nil {
		t.Fatal("truncated space must error")
	}
	if _, _, err := UnmarshalPacket(nil); err == nil {
		t.Fatal("nil packet must error")
	}
	if _, _, err := UnmarshalPacket([]byte{0, 0, 0, 8, 1}); err == nil {
		t.Fatal("truncated packet must error")
	}
	var invalid Space
	if _, err := invalid.MarshalBinary(); err == nil {
		t.Fatal("invalid space must not marshal")
	}
	var invalidP Packet
	if _, err := invalidP.MarshalBinary(); err == nil {
		t.Fatal("invalid packet must not marshal")
	}
}

func TestUnmarshalSpaceNormalizes(t *testing.T) {
	// Craft an encoding with value bits outside the mask: they must be
	// cleared so Equal stays word-wise.
	s := Wildcard(8).WithBit(0, One)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Set a stray value bit (bit 5) without its mask bit.
	data[4+7] |= 1 << 5
	got, _, err := UnmarshalSpace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("normalization failed: %v vs %v", got, s)
	}
}
