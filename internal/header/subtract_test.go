package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubtractDisjoint(t *testing.T) {
	a := Wildcard(8).WithBit(0, One)
	b := Wildcard(8).WithBit(0, Zero)
	got := Subtract(a, b)
	if len(got) != 1 || !got[0].Equal(a) {
		t.Fatalf("disjoint subtract = %v", got)
	}
}

func TestSubtractCovered(t *testing.T) {
	a := Wildcard(8).WithBit(0, One).WithBit(1, Zero)
	if got := Subtract(a, Wildcard(8)); len(got) != 0 {
		t.Fatalf("subtracting a cover must be empty, got %v", got)
	}
	if got := Subtract(a, a); len(got) != 0 {
		t.Fatalf("a \\ a must be empty, got %v", got)
	}
}

func TestSubtractSplits(t *testing.T) {
	// wildcard(2) \ "11" = {"*0", "01"} (disjoint, covering 00,01,10).
	a := Wildcard(2)
	b := Wildcard(2).WithBit(0, One).WithBit(1, One)
	got := Subtract(a, b)
	if len(got) != 2 {
		t.Fatalf("want 2 pieces, got %v", got)
	}
	// Together the pieces plus b must cover all four packets exactly once.
	for v := 0; v < 4; v++ {
		p := NewPacket(2)
		p = p.WithBit(0, v&1 == 1).WithBit(1, v&2 == 2)
		count := 0
		for _, s := range got {
			if s.MatchesPacket(p) {
				count++
			}
		}
		inB := b.MatchesPacket(p)
		if inB && count != 0 {
			t.Fatalf("packet %v in both b and remainder", p)
		}
		if !inB && count != 1 {
			t.Fatalf("packet %v covered %d times", p, count)
		}
	}
}

func TestSubtractWidthMismatch(t *testing.T) {
	a, b := Wildcard(4), Wildcard(8)
	got := Subtract(a, b)
	if len(got) != 1 || !got[0].Equal(a) {
		t.Fatalf("width mismatch must return a unchanged, got %v", got)
	}
}

func TestSubtractAll(t *testing.T) {
	a := Wildcard(3)
	b0 := Exact(NewPacket(3))                  // 000
	b1 := Exact(NewPacket(3).WithBit(0, true)) // 001
	remain := SubtractAll(a, []Space{b0, b1})
	// Remaining must cover exactly the 6 packets not 000/001.
	total := 0
	for v := 0; v < 8; v++ {
		p := NewPacket(3)
		for bit := 0; bit < 3; bit++ {
			p = p.WithBit(bit, v>>bit&1 == 1)
		}
		count := 0
		for _, s := range remain {
			if s.MatchesPacket(p) {
				count++
			}
		}
		if v <= 1 {
			if count != 0 {
				t.Fatalf("subtracted packet %d still covered", v)
			}
		} else if count != 1 {
			t.Fatalf("packet %d covered %d times", v, count)
		}
		total += count
	}
	if total != 6 {
		t.Fatalf("covered %d packets, want 6", total)
	}
}

func TestPropertySubtractDisjointPieces(t *testing.T) {
	// All pieces of a \ b must be inside a, disjoint from b, and
	// pairwise disjoint.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpace(r, 12), genSpace(r, 12)
		pieces := Subtract(a, b)
		for i, p := range pieces {
			if !a.Covers(p) {
				return false
			}
			if a.Overlaps(b) && p.Overlaps(b) {
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Overlaps(pieces[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtractExactCover(t *testing.T) {
	// Enumerate all packets of small width: each packet of a is either
	// in b or in exactly one piece.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const w = 8
		a, b := genSpace(r, w), genSpace(r, w)
		pieces := Subtract(a, b)
		for v := 0; v < 1<<w; v++ {
			p := NewPacket(w)
			for bit := 0; bit < w; bit++ {
				p = p.WithBit(bit, v>>bit&1 == 1)
			}
			if !a.MatchesPacket(p) {
				continue
			}
			count := 0
			for _, s := range pieces {
				if s.MatchesPacket(p) {
					count++
				}
			}
			want := 1
			if b.MatchesPacket(p) {
				want = 0
			}
			if count != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
