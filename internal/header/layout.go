package header

import "fmt"

// Field describes a named bit range inside a header layout. Offset is the
// position of the field's least-significant bit.
type Field struct {
	Name   string
	Offset int
	Width  int
}

// Layout is a packed sequence of named fields. It provides symbolic
// accessors over Space and Packet so that callers never hand-compute bit
// offsets.
type Layout struct {
	fields []Field
	byName map[string]Field
	width  int
}

// NewLayout builds a layout from an ordered field list. Fields are packed
// contiguously starting at bit 0 in the order given.
func NewLayout(fields ...Field) (*Layout, error) {
	l := &Layout{byName: make(map[string]Field, len(fields))}
	off := 0
	for _, f := range fields {
		if f.Width <= 0 {
			return nil, fmt.Errorf("header: field %q has non-positive width %d", f.Name, f.Width)
		}
		if _, dup := l.byName[f.Name]; dup {
			return nil, fmt.Errorf("header: duplicate field %q", f.Name)
		}
		f.Offset = off
		l.fields = append(l.fields, f)
		l.byName[f.Name] = f
		off += f.Width
	}
	l.width = off
	return l, nil
}

// Standard five-tuple field names used by the default layout.
const (
	FieldSrcIP   = "src_ip"
	FieldDstIP   = "dst_ip"
	FieldProto   = "proto"
	FieldSrcPort = "src_port"
	FieldDstPort = "dst_port"
)

// FiveTuple returns the default TCP/IP five-tuple layout (104 bits):
// src_ip/32, dst_ip/32, proto/8, src_port/16, dst_port/16.
func FiveTuple() *Layout {
	l, err := NewLayout(
		Field{Name: FieldSrcIP, Width: 32},
		Field{Name: FieldDstIP, Width: 32},
		Field{Name: FieldProto, Width: 8},
		Field{Name: FieldSrcPort, Width: 16},
		Field{Name: FieldDstPort, Width: 16},
	)
	if err != nil {
		// The default layout is a compile-time constant shape; failure
		// here is a programming error.
		panic(err)
	}
	return l
}

// Width reports the total layout width in bits.
func (l *Layout) Width() int { return l.width }

// Fields returns a copy of the field list in layout order.
func (l *Layout) Fields() []Field {
	out := make([]Field, len(l.fields))
	copy(out, l.fields)
	return out
}

// Lookup returns the named field.
func (l *Layout) Lookup(name string) (Field, bool) {
	f, ok := l.byName[name]
	return f, ok
}

// Wildcard returns the all-wildcard space for this layout.
func (l *Layout) Wildcard() Space { return Wildcard(l.width) }

// MatchPrefix constrains the named field of s to the top prefixLen bits
// of value (an IPv4-style prefix match when the field is 32 bits wide).
func (l *Layout) MatchPrefix(s Space, name string, value uint64, prefixLen int) (Space, error) {
	f, ok := l.byName[name]
	if !ok {
		return Space{}, fmt.Errorf("header: unknown field %q", name)
	}
	return s.SetField(f.Offset, f.Width, value>>uint(f.Width-prefixLen)<<uint(f.Width-prefixLen), prefixLen)
}

// MatchExact constrains the named field of s to exactly value.
func (l *Layout) MatchExact(s Space, name string, value uint64) (Space, error) {
	f, ok := l.byName[name]
	if !ok {
		return Space{}, fmt.Errorf("header: unknown field %q", name)
	}
	return s.SetField(f.Offset, f.Width, value, f.Width)
}

// PacketWithField returns a copy of p with the named field set to value.
func (l *Layout) PacketWithField(p Packet, name string, value uint64) (Packet, error) {
	f, ok := l.byName[name]
	if !ok {
		return Packet{}, fmt.Errorf("header: unknown field %q", name)
	}
	return p.WithField(f.Offset, f.Width, value)
}

// PacketField extracts the named field of a concrete packet.
func (l *Layout) PacketField(p Packet, name string) (uint64, error) {
	f, ok := l.byName[name]
	if !ok {
		return 0, fmt.Errorf("header: unknown field %q", name)
	}
	return p.Field(f.Offset, f.Width), nil
}

// SpaceField extracts the named field of a space; ok is false if any bit
// of the field is a wildcard.
func (l *Layout) SpaceField(s Space, name string) (value uint64, ok bool, err error) {
	f, found := l.byName[name]
	if !found {
		return 0, false, fmt.Errorf("header: unknown field %q", name)
	}
	value, ok = s.Field(f.Offset, f.Width)
	return value, ok, nil
}

// IPv4 packs four octets into a uint64 for use with the IP fields.
func IPv4(a, b, c, d byte) uint64 {
	return uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
}

// FormatIPv4 renders a packed IPv4 address in dotted-quad form.
func FormatIPv4(v uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
