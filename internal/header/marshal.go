package header

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary encodes the space as: width(uint32) | value words |
// mask words, all big-endian. It implements
// encoding.BinaryMarshaler for use on control channels.
func (s Space) MarshalBinary() ([]byte, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("header: marshal of invalid space")
	}
	n := words(s.width)
	buf := make([]byte, 4+16*n)
	binary.BigEndian.PutUint32(buf, uint32(s.width))
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(buf[4+8*i:], s.value[i])
		binary.BigEndian.PutUint64(buf[4+8*n+8*i:], s.mask[i])
	}
	return buf, nil
}

// MarshalBinary encodes the packet as width(uint32) | words,
// big-endian.
func (p Packet) MarshalBinary() ([]byte, error) {
	if p.width <= 0 {
		return nil, fmt.Errorf("header: marshal of invalid packet")
	}
	n := words(p.width)
	buf := make([]byte, 4+8*n)
	binary.BigEndian.PutUint32(buf, uint32(p.width))
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(buf[4+8*i:], p.bits[i])
	}
	return buf, nil
}

// UnmarshalPacket decodes a packet produced by Packet.MarshalBinary and
// returns the number of bytes consumed.
func UnmarshalPacket(data []byte) (Packet, int, error) {
	if len(data) < 4 {
		return Packet{}, 0, fmt.Errorf("header: short packet encoding (%d bytes)", len(data))
	}
	width := int(binary.BigEndian.Uint32(data))
	if width <= 0 || width > 1<<20 {
		return Packet{}, 0, fmt.Errorf("header: implausible packet width %d", width)
	}
	n := words(width)
	need := 4 + 8*n
	if len(data) < need {
		return Packet{}, 0, fmt.Errorf("header: packet encoding needs %d bytes, have %d", need, len(data))
	}
	p := Packet{width: width, bits: make([]uint64, n)}
	for i := 0; i < n; i++ {
		p.bits[i] = binary.BigEndian.Uint64(data[4+8*i:])
	}
	return p, need, nil
}

// UnmarshalSpace decodes a space produced by MarshalBinary and returns
// the number of bytes consumed.
func UnmarshalSpace(data []byte) (Space, int, error) {
	if len(data) < 4 {
		return Space{}, 0, fmt.Errorf("header: short space encoding (%d bytes)", len(data))
	}
	width := int(binary.BigEndian.Uint32(data))
	if width <= 0 || width > 1<<20 {
		return Space{}, 0, fmt.Errorf("header: implausible space width %d", width)
	}
	n := words(width)
	need := 4 + 16*n
	if len(data) < need {
		return Space{}, 0, fmt.Errorf("header: space encoding needs %d bytes, have %d", need, len(data))
	}
	s := Space{width: width, value: make([]uint64, n), mask: make([]uint64, n)}
	for i := 0; i < n; i++ {
		s.value[i] = binary.BigEndian.Uint64(data[4+8*i:])
		s.mask[i] = binary.BigEndian.Uint64(data[4+8*n+8*i:])
	}
	// Normalize: clear value bits outside the mask and past the width so
	// Equal stays a word-wise comparison.
	for i := range s.value {
		s.value[i] &= s.mask[i]
	}
	clearTail(&s)
	return s, need, nil
}
