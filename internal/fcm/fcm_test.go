package fcm

import (
	"testing"

	"foces/internal/controller"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func generateFor(t *testing.T, name string, mode controller.PolicyMode) (*topo.Topology, *FCM) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return top, generateOn(t, top, mode)
}

func generateOn(t *testing.T, top *topo.Topology, mode controller.PolicyMode) *FCM {
	t.Helper()
	c, err := controller.New(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	f, err := Generate(top, layout, c.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPairExactFlowCountsMatchTableI(t *testing.T) {
	// Table I: flows are ordered host pairs.
	want := map[string]int{"stanford": 650, "fattree4": 240, "bcube14": 240, "dcell14": 380}
	for name, flows := range want {
		top, f := generateFor(t, name, controller.PairExact)
		if f.NumFlows() != flows {
			t.Errorf("%s: flows = %d, want %d", name, f.NumFlows(), flows)
		}
		if f.NumRules() == 0 || f.H.Rows() != f.NumRules() || f.H.Cols() != f.NumFlows() {
			t.Errorf("%s: bad dims H=%dx%d", name, f.H.Rows(), f.H.Cols())
		}
		_ = top
	}
}

func TestPairExactColumnsMatchPaths(t *testing.T) {
	top, f := generateFor(t, "fattree4", controller.PairExact)
	hosts := top.Hosts()
	for _, src := range hosts[:4] {
		for _, dst := range hosts {
			if src.ID == dst.ID {
				continue
			}
			fl, ok := f.FlowByPair(src.ID, dst.ID)
			if !ok {
				t.Fatalf("no flow for pair %d->%d", src.ID, dst.ID)
			}
			path, err := top.ECMPHostPath(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(fl.RuleIDs) != len(path) {
				t.Fatalf("pair %d->%d: %d rules, path %d switches", src.ID, dst.ID, len(fl.RuleIDs), len(path))
			}
			// Each matched rule must live on the corresponding switch.
			for i, rid := range fl.RuleIDs {
				if f.Rules[rid].Switch != path[i] {
					t.Fatalf("pair %d->%d hop %d: rule on switch %d, path has %d",
						src.ID, dst.ID, i, f.Rules[rid].Switch, path[i])
				}
			}
		}
	}
}

func TestDestAggregateMergesEquivalentFlows(t *testing.T) {
	// Two hosts on the same FatTree edge switch reach any remote dst via
	// the identical rule sequence, so their flows merge into one class.
	top, f := generateFor(t, "fattree4", controller.DestAggregate)
	if f.NumFlows() >= 240 {
		t.Fatalf("aggregate mode must merge flows: got %d (pair count 240)", f.NumFlows())
	}
	var multi int
	for _, fl := range f.Flows {
		if len(fl.Pairs) > 1 {
			multi++
			// All member pairs must share the destination.
			dst := fl.Pairs[0].Dst
			for _, p := range fl.Pairs {
				if p.Dst != dst {
					t.Fatalf("merged flow mixes destinations: %+v", fl.Pairs)
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("expected at least one merged equivalence class")
	}
	_ = top
}

func TestExpectedCountersMatchSimulation(t *testing.T) {
	// In a lossless network, H·X₀ must equal the simulated counters for
	// both policy modes (the fundamental FCM correctness property).
	for _, mode := range []controller.PolicyMode{controller.PairExact, controller.DestAggregate} {
		top, err := topo.ByName("bcube14")
		if err != nil {
			t.Fatal(err)
		}
		f := generateOn(t, top, mode)
		sim := simulate(t, top, mode, 25)
		y := f.CounterVector(sim)
		volumes := make(map[Pair]uint64)
		for _, src := range top.Hosts() {
			for _, dst := range top.Hosts() {
				if src.ID != dst.ID {
					volumes[Pair{Src: src.ID, Dst: dst.ID}] = 25
				}
			}
		}
		want, err := f.ExpectedCounters(volumes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("mode %v rule %d: simulated %v expected %v", mode, i, y[i], want[i])
			}
		}
	}
}

func TestRuleIDValidation(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	rules := c.Rules()
	rules[0].ID = 42
	if _, err := Generate(top, layout, rules); err == nil {
		t.Fatal("non-dense rule IDs must error")
	}
}

func TestVolumeVectorAndFlowByPair(t *testing.T) {
	top, f := generateFor(t, "fattree4", controller.PairExact)
	hosts := top.Hosts()
	vol := map[Pair]uint64{{Src: hosts[0].ID, Dst: hosts[1].ID}: 7}
	x := f.VolumeVector(vol)
	fl, ok := f.FlowByPair(hosts[0].ID, hosts[1].ID)
	if !ok {
		t.Fatal("missing flow")
	}
	if x[fl.ID] != 7 {
		t.Fatalf("volume = %v", x[fl.ID])
	}
	nonzero := 0
	for _, v := range x {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("%d nonzero volumes, want 1", nonzero)
	}
	if _, ok := f.FlowByPair(99, 98); ok {
		t.Fatal("bogus pair must not resolve")
	}
}

func TestRulesAt(t *testing.T) {
	top, f := generateFor(t, "fattree4", controller.PairExact)
	total := 0
	for _, s := range top.Switches() {
		ids := f.RulesAt(s.ID)
		total += len(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatal("RulesAt must be ascending")
			}
		}
	}
	if total != f.NumRules() {
		t.Fatalf("RulesAt covers %d rules, want %d", total, f.NumRules())
	}
}

func TestCounterVectorIgnoresUnknownIDs(t *testing.T) {
	_, f := generateFor(t, "fattree4", controller.PairExact)
	y := f.CounterVector(map[int]uint64{0: 5, 10_000_000: 9, -3: 1})
	if y[0] != 5 {
		t.Fatalf("y[0] = %v", y[0])
	}
	for i := 1; i < len(y); i++ {
		if y[i] != 0 {
			t.Fatalf("y[%d] = %v", i, y[i])
		}
	}
}

func TestHistoryKeyCanonical(t *testing.T) {
	if historyKey([]int{3, 1, 2}) != historyKey([]int{1, 2, 3}) {
		t.Fatal("history key must be order independent")
	}
	if historyKey([]int{1, 2}) == historyKey([]int{1, 2, 3}) {
		t.Fatal("distinct sets must differ")
	}
}
