package fcm

import (
	"fmt"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// TraceOutcome classifies how a concrete-packet trace terminated.
type TraceOutcome int

// Trace outcomes.
const (
	// TraceDelivered means the packet reached a host port.
	TraceDelivered TraceOutcome = iota + 1
	// TraceDropped means a rule discarded the packet.
	TraceDropped
	// TraceMissed means a switch had no matching rule.
	TraceMissed
	// TraceLooped means the TTL expired (forwarding loop).
	TraceLooped
)

func (o TraceOutcome) String() string {
	switch o {
	case TraceDelivered:
		return "delivered"
	case TraceDropped:
		return "dropped"
	case TraceMissed:
		return "missed"
	case TraceLooped:
		return "looped"
	default:
		return "unknown"
	}
}

// Tracer walks concrete packets through the controller's intended rule
// tables. It answers "which rules would a packet entering at switch S
// match?" — the primitive behind the detectability-coverage analysis,
// which must know the rule history h' of a hypothetically deviated
// flow.
type Tracer struct {
	topol  *topo.Topology
	tables map[topo.SwitchID]*flowtable.Table
	ttl    int
}

// NewTracer builds a tracer over the intended rule set (dense IDs).
func NewTracer(t *topo.Topology, rules []flowtable.Rule) (*Tracer, error) {
	tables := make(map[topo.SwitchID]*flowtable.Table, t.NumSwitches())
	for _, s := range t.Switches() {
		tables[s.ID] = flowtable.NewTable(s.ID)
	}
	for i, r := range rules {
		if r.ID != i {
			return nil, fmt.Errorf("fcm: tracer rule IDs must be dense, rules[%d].ID = %d", i, r.ID)
		}
		tbl, ok := tables[r.Switch]
		if !ok {
			return nil, fmt.Errorf("fcm: tracer rule %d on unknown switch %d", r.ID, r.Switch)
		}
		if err := tbl.Install(r); err != nil {
			return nil, fmt.Errorf("fcm: tracer: %w", err)
		}
	}
	return &Tracer{topol: t, tables: tables, ttl: maxSymbolicHops}, nil
}

// Trace walks pkt starting at switch from and returns the matched rule
// IDs in order plus the outcome.
func (tr *Tracer) Trace(pkt header.Packet, from topo.SwitchID) ([]int, TraceOutcome, error) {
	return tr.TraceOverride(pkt, from, nil)
}

// TraceDetail augments a trace with its final location.
type TraceDetail struct {
	History []int
	Outcome TraceOutcome
	// LastSwitch is the switch where the walk ended.
	LastSwitch topo.SwitchID
	// DeliveredTo is the host that received the packet; -1 unless
	// Outcome is TraceDelivered.
	DeliveredTo topo.HostID
}

// TraceFull walks pkt like Trace and also reports where it ended up —
// in particular which host (if any) received it, so intent verifiers
// can distinguish correct delivery from delivery to the wrong host.
func (tr *Tracer) TraceFull(pkt header.Packet, from topo.SwitchID) (TraceDetail, error) {
	if _, err := tr.topol.Switch(from); err != nil {
		return TraceDetail{}, err
	}
	d := TraceDetail{LastSwitch: from, DeliveredTo: -1}
	cur := from
	for hop := 0; hop < tr.ttl; hop++ {
		d.LastSwitch = cur
		rule, act, ok := tr.tables[cur].Lookup(pkt)
		if !ok {
			d.Outcome = TraceMissed
			return d, nil
		}
		d.History = append(d.History, rule.ID)
		switch act.Type {
		case flowtable.ActionDrop:
			d.Outcome = TraceDropped
			return d, nil
		case flowtable.ActionDeliver, flowtable.ActionOutput:
			peer, err := tr.topol.PeerAt(cur, act.Port)
			if err != nil {
				d.Outcome = TraceMissed
				return d, nil
			}
			switch peer.Kind {
			case topo.PeerHost:
				d.Outcome = TraceDelivered
				d.DeliveredTo = peer.Host
				return d, nil
			case topo.PeerSwitch:
				if act.Type == flowtable.ActionDeliver {
					// Deliver action pointing at a switch port is a
					// misconfiguration; the packet goes nowhere useful.
					d.Outcome = TraceMissed
					return d, nil
				}
				cur = peer.Switch
			default:
				d.Outcome = TraceMissed
				return d, nil
			}
		default:
			d.Outcome = TraceMissed
			return d, nil
		}
	}
	d.Outcome = TraceLooped
	return d, nil
}

// TraceOverride walks pkt like Trace but follows the given adversarial
// action overrides (keyed by rule ID) instead of the installed actions
// — the primitive for computing a deviated flow's actual rule history,
// including detours that revisit the compromised rule.
func (tr *Tracer) TraceOverride(pkt header.Packet, from topo.SwitchID, overrides map[int]flowtable.Action) ([]int, TraceOutcome, error) {
	if _, err := tr.topol.Switch(from); err != nil {
		return nil, 0, err
	}
	var history []int
	cur := from
	for hop := 0; hop < tr.ttl; hop++ {
		rule, act, ok := tr.tables[cur].Lookup(pkt)
		if !ok {
			return history, TraceMissed, nil
		}
		if ov, tampered := overrides[rule.ID]; tampered {
			act = ov
		}
		history = append(history, rule.ID)
		switch act.Type {
		case flowtable.ActionDrop:
			return history, TraceDropped, nil
		case flowtable.ActionDeliver:
			return history, TraceDelivered, nil
		case flowtable.ActionOutput:
			peer, err := tr.topol.PeerAt(cur, act.Port)
			if err != nil {
				return history, TraceMissed, nil
			}
			switch peer.Kind {
			case topo.PeerHost:
				return history, TraceDelivered, nil
			case topo.PeerSwitch:
				cur = peer.Switch
			default:
				return history, TraceMissed, nil
			}
		default:
			return history, TraceMissed, nil
		}
	}
	return history, TraceLooped, nil
}
