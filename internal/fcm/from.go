package fcm

import (
	"fmt"

	"foces/internal/flowtable"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// FromHistories assembles an FCM directly from explicit flow rule
// histories, bypassing symbolic generation. It exists for worked
// examples (the paper's Fig. 2 and Fig. 3 fixtures), tests, and users
// who compute reachability with their own tooling.
//
// Rules must have dense IDs 0..m-1; every history entry must reference
// a valid rule.
func FromHistories(t *topo.Topology, rules []flowtable.Rule, histories [][]int) (*FCM, error) {
	for i, r := range rules {
		if r.ID != i {
			return nil, fmt.Errorf("fcm: rule IDs must be dense, rules[%d].ID = %d", i, r.ID)
		}
	}
	flows := make([]*Flow, 0, len(histories))
	var entries []matrix.Triplet
	for j, hist := range histories {
		if len(hist) == 0 {
			return nil, fmt.Errorf("fcm: flow %d has empty history", j)
		}
		seen := make(map[int]bool, len(hist))
		for _, rid := range hist {
			if rid < 0 || rid >= len(rules) {
				return nil, fmt.Errorf("fcm: flow %d references unknown rule %d", j, rid)
			}
			if !seen[rid] {
				seen[rid] = true
				entries = append(entries, matrix.Triplet{Row: rid, Col: j, Val: 1})
			}
		}
		flows = append(flows, &Flow{ID: j, RuleIDs: append([]int(nil), hist...)})
	}
	h, err := matrix.NewCSR(len(rules), len(flows), entries)
	if err != nil {
		return nil, fmt.Errorf("fcm: assemble: %w", err)
	}
	rulesCopy := make([]flowtable.Rule, len(rules))
	copy(rulesCopy, rules)
	return &FCM{H: h, Flows: flows, Rules: rulesCopy, topol: t}, nil
}
