// Package fcm generates the Flow-Counter Matrix at the heart of FOCES
// (§III-B). Following ATPG's all-reachability computation, a symbolic
// header is injected at every terminal (host) port, propagated through
// the controller's *intended* flow tables — never through dumps from
// untrusted switches — and the set of rules each surviving header class
// matches becomes one column of the FCM. Packet classes with identical
// rule histories are merged into a single logical flow (the paper's
// equivalence classes).
package fcm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// maxSymbolicHops bounds symbolic traversal so that a misconfigured
// intent with loops terminates.
const maxSymbolicHops = 256

// Pair identifies a (source, destination) host pair carried by a flow.
type Pair struct {
	Src, Dst topo.HostID
}

// Flow is one logical flow: an equivalence class of packets that match
// the same rule sequence.
type Flow struct {
	ID int
	// RuleIDs is the matched rule history in path order.
	RuleIDs []int
	// Pairs lists the (src, dst) host pairs whose traffic rides this
	// flow. Dst is -1 when the flow terminates without host delivery
	// (e.g. an intent drop rule).
	Pairs []Pair
	// Space is a representative header space of the class.
	Space header.Space
}

// FCM is the flow-counter matrix together with its row/column metadata.
type FCM struct {
	// H is the m x n 0/1 matrix: H[i][j] = 1 iff flow j matches rule i.
	H *matrix.CSR
	// Flows holds column metadata; Flows[j].ID == j.
	Flows []*Flow
	// Rules holds row metadata indexed by global rule ID (row i is rule
	// ID i).
	Rules []flowtable.Rule
	topol *topo.Topology
	// layout is retained for Regenerate; nil for FromHistories FCMs.
	layout *header.Layout
}

// Generate computes the FCM for the controller's intended rule set.
// Rules must have dense IDs 0..m-1 (as produced by the controller).
func Generate(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule) (*FCM, error) {
	for i, r := range rules {
		if r.ID != i {
			return nil, fmt.Errorf("fcm: rule IDs must be dense, rules[%d].ID = %d", i, r.ID)
		}
	}
	// Build intent tables.
	tables := make(map[topo.SwitchID]*flowtable.Table, t.NumSwitches())
	for _, s := range t.Switches() {
		tables[s.ID] = flowtable.NewTable(s.ID)
	}
	for _, r := range rules {
		tbl, ok := tables[r.Switch]
		if !ok {
			return nil, fmt.Errorf("fcm: rule %d on unknown switch %d", r.ID, r.Switch)
		}
		if err := tbl.Install(r); err != nil {
			return nil, fmt.Errorf("fcm: intent table: %w", err)
		}
	}
	g := &generator{
		topol:   t,
		layout:  layout,
		tables:  tables,
		classes: make(map[string]*Flow),
	}
	for _, h := range t.Hosts() {
		if err := g.injectFrom(h); err != nil {
			return nil, err
		}
	}
	// Deterministic column order: first discovery order.
	flows := g.order
	var entries []matrix.Triplet
	for j, f := range flows {
		f.ID = j
		seen := make(map[int]bool, len(f.RuleIDs))
		for _, rid := range f.RuleIDs {
			if !seen[rid] {
				seen[rid] = true
				entries = append(entries, matrix.Triplet{Row: rid, Col: j, Val: 1})
			}
		}
	}
	h, err := matrix.NewCSR(len(rules), len(flows), entries)
	if err != nil {
		return nil, fmt.Errorf("fcm: assemble: %w", err)
	}
	rulesCopy := make([]flowtable.Rule, len(rules))
	copy(rulesCopy, rules)
	return &FCM{H: h, Flows: flows, Rules: rulesCopy, topol: t, layout: layout}, nil
}

// Regenerate recomputes the FCM over a modified rule set (e.g. with
// canary rules appended) on the same topology and header layout. The
// FCM must have been built by Generate.
func (f *FCM) Regenerate(rules []flowtable.Rule) (*FCM, error) {
	if f.layout == nil {
		return nil, fmt.Errorf("fcm: regenerate needs a layout; this FCM was built from histories")
	}
	return Generate(f.topol, f.layout, rules)
}

type generator struct {
	topol   *topo.Topology
	layout  *header.Layout
	tables  map[topo.SwitchID]*flowtable.Table
	classes map[string]*Flow
	order   []*Flow
}

// injectFrom walks a symbolic header with src_ip pinned to host h's
// address from h's terminal port through the network.
func (g *generator) injectFrom(h *topo.Host) error {
	space, err := g.layout.MatchExact(g.layout.Wildcard(), header.FieldSrcIP, h.IP)
	if err != nil {
		return err
	}
	return g.walk(h, h.Attach, space, nil, 0)
}

// walk recursively propagates one symbolic class.
func (g *generator) walk(src *topo.Host, sw topo.SwitchID, space header.Space, history []int, hops int) error {
	if hops > maxSymbolicHops {
		return fmt.Errorf("fcm: symbolic loop detected from host %q (history %v)", src.Name, history)
	}
	tbl := g.tables[sw]
	for _, m := range tbl.SymbolicMatches(space) {
		hist := append(append([]int(nil), history...), m.Rule.ID)
		switch m.Rule.Action.Type {
		case flowtable.ActionDrop:
			g.record(src, -1, hist, m.Space)
		case flowtable.ActionDeliver:
			peer, err := g.topol.PeerAt(sw, m.Rule.Action.Port)
			if err != nil {
				return fmt.Errorf("fcm: rule %d delivery port: %w", m.Rule.ID, err)
			}
			if peer.Kind != topo.PeerHost {
				return fmt.Errorf("fcm: rule %d delivers to non-host port", m.Rule.ID)
			}
			if peer.Host == src.ID {
				continue // self flow: no traffic ever rides it
			}
			g.record(src, peer.Host, hist, m.Space)
		case flowtable.ActionOutput:
			peer, err := g.topol.PeerAt(sw, m.Rule.Action.Port)
			if err != nil {
				return fmt.Errorf("fcm: rule %d output port: %w", m.Rule.ID, err)
			}
			switch peer.Kind {
			case topo.PeerSwitch:
				if err := g.walk(src, peer.Switch, m.Space, hist, hops+1); err != nil {
					return err
				}
			case topo.PeerHost:
				if peer.Host != src.ID {
					g.record(src, peer.Host, hist, m.Space)
				}
			default:
				g.record(src, -1, hist, m.Space)
			}
		}
	}
	return nil
}

// record registers a terminated class, merging identical rule
// histories.
func (g *generator) record(src *topo.Host, dst topo.HostID, history []int, space header.Space) {
	key := historyKey(history)
	if f, ok := g.classes[key]; ok {
		f.Pairs = append(f.Pairs, Pair{Src: src.ID, Dst: dst})
		return
	}
	f := &Flow{
		RuleIDs: history,
		Pairs:   []Pair{{Src: src.ID, Dst: dst}},
		Space:   space,
	}
	g.classes[key] = f
	g.order = append(g.order, f)
}

// historyKey canonicalizes a rule history as a set.
func historyKey(history []int) string {
	ids := append([]int(nil), history...)
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// NumFlows reports the number of logical flows (FCM columns).
func (f *FCM) NumFlows() int { return len(f.Flows) }

// NumRules reports the number of rules (FCM rows).
func (f *FCM) NumRules() int { return len(f.Rules) }

// Topology returns the topology the FCM was generated over.
func (f *FCM) Topology() *topo.Topology { return f.topol }

// CounterVector assembles the counter vector Y' from a rule-ID keyed
// counter snapshot, ordered by rule ID. Missing rules read as zero.
func (f *FCM) CounterVector(counters map[int]uint64) []float64 {
	y := make([]float64, len(f.Rules))
	for id, v := range counters {
		if id >= 0 && id < len(y) {
			y[id] = float64(v)
		}
	}
	return y
}

// VolumeVector computes the flow volume vector X₀ from per-pair offered
// volumes: a logical flow's volume is the sum over its member pairs.
func (f *FCM) VolumeVector(volumes map[Pair]uint64) []float64 {
	x := make([]float64, len(f.Flows))
	for j, fl := range f.Flows {
		var sum uint64
		for _, p := range fl.Pairs {
			sum += volumes[p]
		}
		x[j] = float64(sum)
	}
	return x
}

// ExpectedCounters computes Y₀ = H·X₀ for the given per-pair volumes:
// the counters the controller expects in a lossless, anomaly-free
// network.
func (f *FCM) ExpectedCounters(volumes map[Pair]uint64) ([]float64, error) {
	return f.H.MulVec(f.VolumeVector(volumes))
}

// FlowByPair returns the logical flow carrying the given host pair.
func (f *FCM) FlowByPair(src, dst topo.HostID) (*Flow, bool) {
	for _, fl := range f.Flows {
		for _, p := range fl.Pairs {
			if p.Src == src && p.Dst == dst {
				return fl, true
			}
		}
	}
	return nil, false
}

// RulesAt returns the IDs of rules installed on the given switch, in
// ascending order.
func (f *FCM) RulesAt(sw topo.SwitchID) []int {
	var out []int
	for _, r := range f.Rules {
		if r.Switch == sw {
			out = append(out, r.ID)
		}
	}
	return out
}
