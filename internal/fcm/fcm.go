// Package fcm generates the Flow-Counter Matrix at the heart of FOCES
// (§III-B). Following ATPG's all-reachability computation, a symbolic
// header is injected at every terminal (host) port, propagated through
// the controller's *intended* flow tables — never through dumps from
// untrusted switches — and the set of rules each surviving header class
// matches becomes one column of the FCM. Packet classes with identical
// rule histories are merged into a single logical flow (the paper's
// equivalence classes).
package fcm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// maxSymbolicHops bounds symbolic traversal so that a misconfigured
// intent with loops terminates.
const maxSymbolicHops = 256

// Pair identifies a (source, destination) host pair carried by a flow.
type Pair struct {
	Src, Dst topo.HostID
}

// Flow is one logical flow: an equivalence class of packets that match
// the same rule sequence.
type Flow struct {
	ID int
	// RuleIDs is the matched rule history in path order.
	RuleIDs []int
	// Pairs lists the (src, dst) host pairs whose traffic rides this
	// flow. Dst is -1 when the flow terminates without host delivery
	// (e.g. an intent drop rule).
	Pairs []Pair
	// Space is a representative header space of the class.
	Space header.Space
}

// FCM is the flow-counter matrix together with its row/column metadata.
type FCM struct {
	// H is the m x n 0/1 matrix: H[i][j] = 1 iff flow j matches rule i.
	H *matrix.CSR
	// Flows holds column metadata; Flows[j].ID == j.
	Flows []*Flow
	// Rules holds row metadata indexed by global rule ID (row i is rule
	// ID i).
	Rules []flowtable.Rule
	topol *topo.Topology
	// layout is retained for Regenerate; nil for FromHistories FCMs.
	layout *header.Layout
}

// Generate computes the FCM for the controller's intended rule set.
// Rules must have dense IDs 0..m-1 (as produced by the controller).
func Generate(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule) (*FCM, error) {
	for i, r := range rules {
		if r.ID != i {
			return nil, fmt.Errorf("fcm: rule IDs must be dense, rules[%d].ID = %d", i, r.ID)
		}
	}
	return GenerateSparse(t, layout, rules, len(rules))
}

// Regenerate recomputes the FCM over a modified rule set (e.g. with
// canary rules appended) on the same topology and header layout. The
// FCM must have been built by Generate.
func (f *FCM) Regenerate(rules []flowtable.Rule) (*FCM, error) {
	if f.layout == nil {
		return nil, fmt.Errorf("fcm: regenerate needs a layout; this FCM was built from histories")
	}
	return Generate(f.topol, f.layout, rules)
}

// historyKey canonicalizes a rule history as a set.
func historyKey(history []int) string {
	ids := append([]int(nil), history...)
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// NumFlows reports the number of logical flows (FCM columns).
func (f *FCM) NumFlows() int { return len(f.Flows) }

// NumRules reports the number of rules (FCM rows).
func (f *FCM) NumRules() int { return len(f.Rules) }

// Topology returns the topology the FCM was generated over.
func (f *FCM) Topology() *topo.Topology { return f.topol }

// CounterVector assembles the counter vector Y' from a rule-ID keyed
// counter snapshot, ordered by rule ID. Missing rules read as zero.
func (f *FCM) CounterVector(counters map[int]uint64) []float64 {
	return f.CounterVectorInto(nil, counters)
}

// CounterVectorInto is CounterVector into caller-provided storage: dst
// is resized (reallocating only when its capacity is short), zeroed,
// and filled. It returns the filled vector, which the caller should
// keep for the next call — the streaming hot path recycles counter
// vectors through it instead of allocating one per window.
func (f *FCM) CounterVectorInto(dst []float64, counters map[int]uint64) []float64 {
	n := len(f.Rules)
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	for id, v := range counters {
		if id >= 0 && id < n {
			dst[id] = float64(v)
		}
	}
	return dst
}

// VolumeVector computes the flow volume vector X₀ from per-pair offered
// volumes: a logical flow's volume is the sum over its member pairs.
func (f *FCM) VolumeVector(volumes map[Pair]uint64) []float64 {
	x := make([]float64, len(f.Flows))
	for j, fl := range f.Flows {
		var sum uint64
		for _, p := range fl.Pairs {
			sum += volumes[p]
		}
		x[j] = float64(sum)
	}
	return x
}

// ExpectedCounters computes Y₀ = H·X₀ for the given per-pair volumes:
// the counters the controller expects in a lossless, anomaly-free
// network.
func (f *FCM) ExpectedCounters(volumes map[Pair]uint64) ([]float64, error) {
	return f.H.MulVec(f.VolumeVector(volumes))
}

// FlowByPair returns the logical flow carrying the given host pair.
func (f *FCM) FlowByPair(src, dst topo.HostID) (*Flow, bool) {
	for _, fl := range f.Flows {
		for _, p := range fl.Pairs {
			if p.Src == src && p.Dst == dst {
				return fl, true
			}
		}
	}
	return nil, false
}

// RulesAt returns the IDs of rules installed on the given switch, in
// ascending order.
func (f *FCM) RulesAt(sw topo.SwitchID) []int {
	var out []int
	for _, r := range f.Rules {
		if r.Switch == sw {
			out = append(out, r.ID)
		}
	}
	return out
}
