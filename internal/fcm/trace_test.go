package fcm

import (
	"testing"

	"foces/internal/controller"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

func pairPacket(t *testing.T, src, dst uint64) header.Packet {
	t.Helper()
	p := header.NewPacket(layout.Width())
	p, err := layout.PacketWithField(p, header.FieldSrcIP, src)
	if err != nil {
		t.Fatal(err)
	}
	p, err = layout.PacketWithField(p, header.FieldDstIP, dst)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tracerFor(t *testing.T, name string) (*topo.Topology, *Tracer, []flowtable.Rule) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := controller.New(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracer(top, c.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return top, tr, c.Rules()
}

func TestTracerMatchesFCMHistories(t *testing.T) {
	top, tr, rules := tracerFor(t, "fattree4")
	f, err := Generate(top, layout, rules)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	for _, src := range hosts[:3] {
		for _, dst := range hosts {
			if src.ID == dst.ID {
				continue
			}
			pkt := pairPacket(t, src.IP, dst.IP)
			hist, outcome, err := tr.Trace(pkt, src.Attach)
			if err != nil {
				t.Fatal(err)
			}
			if outcome != TraceDelivered {
				t.Fatalf("pair %d->%d outcome %v", src.ID, dst.ID, outcome)
			}
			fl, ok := f.FlowByPair(src.ID, dst.ID)
			if !ok {
				t.Fatal("missing flow")
			}
			if len(hist) != len(fl.RuleIDs) {
				t.Fatalf("trace %v vs symbolic %v", hist, fl.RuleIDs)
			}
			for i := range hist {
				if hist[i] != fl.RuleIDs[i] {
					t.Fatalf("trace %v vs symbolic %v", hist, fl.RuleIDs)
				}
			}
		}
	}
}

func TestTraceFullReportsDestination(t *testing.T) {
	top, tr, _ := tracerFor(t, "fattree4")
	hosts := top.Hosts()
	pkt := pairPacket(t, hosts[0].IP, hosts[9].IP)
	d, err := tr.TraceFull(pkt, hosts[0].Attach)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != TraceDelivered || d.DeliveredTo != hosts[9].ID {
		t.Fatalf("detail = %+v", d)
	}
	if d.LastSwitch != hosts[9].Attach {
		t.Fatalf("last switch = %v, want %v", d.LastSwitch, hosts[9].Attach)
	}
	// Miss case.
	miss := pairPacket(t, hosts[0].IP, header.IPv4(9, 9, 9, 9))
	d, err = tr.TraceFull(miss, hosts[0].Attach)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != TraceMissed || d.DeliveredTo != -1 {
		t.Fatalf("miss detail = %+v", d)
	}
	if _, err := tr.TraceFull(pkt, topo.SwitchID(999)); err == nil {
		t.Fatal("unknown switch must error")
	}
}

func TestTraceOverrideFollowsTamperedAction(t *testing.T) {
	top, tr, rules := tracerFor(t, "fattree4")
	hosts := top.Hosts()
	pkt := pairPacket(t, hosts[0].IP, hosts[9].IP)
	hist, _, err := tr.Trace(pkt, hosts[0].Attach)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) < 2 {
		t.Skip("path too short")
	}
	// Tamper the first hop to drop.
	overrides := map[int]flowtable.Action{
		hist[0]: {Type: flowtable.ActionDrop},
	}
	got, outcome, err := tr.TraceOverride(pkt, hosts[0].Attach, overrides)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != TraceDropped || len(got) != 1 || got[0] != hist[0] {
		t.Fatalf("override trace = %v %v", got, outcome)
	}
	_ = rules
}

func TestNewTracerValidation(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []flowtable.Rule{{ID: 5, Switch: 0, Match: layout.Wildcard(), Action: flowtable.Action{Type: flowtable.ActionOutput}}}
	if _, err := NewTracer(top, bad); err == nil {
		t.Fatal("non-dense IDs must error")
	}
	badSwitch := []flowtable.Rule{{ID: 0, Switch: 99, Match: layout.Wildcard(), Action: flowtable.Action{Type: flowtable.ActionOutput}}}
	if _, err := NewTracer(top, badSwitch); err == nil {
		t.Fatal("unknown switch must error")
	}
}

func TestRegenerateMatchesFreshGenerate(t *testing.T) {
	top, _, rules := tracerFor(t, "fattree4")
	f, err := Generate(top, layout, rules)
	if err != nil {
		t.Fatal(err)
	}
	again, err := f.Regenerate(rules)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumFlows() != f.NumFlows() || again.NumRules() != f.NumRules() {
		t.Fatalf("regenerate changed dims: %dx%d vs %dx%d",
			again.NumRules(), again.NumFlows(), f.NumRules(), f.NumFlows())
	}
}

func TestFromHistoriesValidation(t *testing.T) {
	top, _, rules := tracerFor(t, "fattree4")
	if _, err := FromHistories(top, rules, [][]int{{}}); err == nil {
		t.Fatal("empty history must error")
	}
	if _, err := FromHistories(top, rules, [][]int{{len(rules)}}); err == nil {
		t.Fatal("out-of-range rule must error")
	}
	bad := append([]flowtable.Rule(nil), rules...)
	bad[0].ID = 77
	if _, err := FromHistories(top, bad, [][]int{{0}}); err == nil {
		t.Fatal("non-dense rules must error")
	}
	f, err := FromHistories(top, rules, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFlows() != 2 || f.H.At(0, 0) != 1 || f.H.At(1, 1) != 1 {
		t.Fatalf("bad assembly: %v", f.H.ToDense())
	}
}
