package fcm

import (
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/topo"
)

// simulate bootstraps a lossless network in the given mode, pushes
// uniform traffic, and returns the collected rule counters.
func simulate(t *testing.T, top *topo.Topology, mode controller.PolicyMode, vol uint64) map[int]uint64 {
	t.Helper()
	_, net, err := controller.Bootstrap(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, vol)); err != nil {
		t.Fatal(err)
	}
	return net.CollectCounters()
}
