package fcm

import (
	"fmt"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// This file holds the decomposed FCM pipeline used by the churn
// subsystem: per-source symbolic tracing (TraceSource), assembly from
// externally maintained flow classes (Assemble), and generation over a
// rule set whose IDs have holes (GenerateSparse). The classic Generate
// is the dense-ID composition of these pieces, so the incremental and
// cold paths share one tracer and cannot drift apart.

// TraceRecord is one terminated symbolic class discovered while tracing
// a single source host: the rule history in path order, the delivery
// host (−1 for drops), and a representative header space.
type TraceRecord struct {
	History []int
	Dst     topo.HostID
	Space   header.Space
}

// SourceTrace is the all-reachability result for one source host.
// Visited lists every switch whose flow table the walk consulted —
// including switches where part of the header space died unmatched — so
// a rule change on a switch outside Visited provably cannot alter this
// source's records. The churn subsystem re-traces exactly the sources
// whose Visited set intersects the changed switches.
type SourceTrace struct {
	Src     topo.HostID
	Records []TraceRecord
	Visited map[topo.SwitchID]bool
}

// BuildTables constructs per-switch intent flow tables for a rule set.
func BuildTables(t *topo.Topology, rules []flowtable.Rule) (map[topo.SwitchID]*flowtable.Table, error) {
	tables := make(map[topo.SwitchID]*flowtable.Table, t.NumSwitches())
	for _, s := range t.Switches() {
		tables[s.ID] = flowtable.NewTable(s.ID)
	}
	for _, r := range rules {
		tbl, ok := tables[r.Switch]
		if !ok {
			return nil, fmt.Errorf("fcm: rule %d on unknown switch %d", r.ID, r.Switch)
		}
		if err := tbl.Install(r); err != nil {
			return nil, fmt.Errorf("fcm: intent table: %w", err)
		}
	}
	return tables, nil
}

// SourcePin is the symbolic header space a source trace injects: the
// full wildcard with src_ip pinned to the host's address. Every packet
// host h can ever emit lies inside this space, so a rule whose match is
// disjoint from SourcePin(h) provably never touches h's traffic — the
// churn subsystem uses exactly this to skip re-tracing sources an
// added or modified rule cannot affect.
func SourcePin(layout *header.Layout, h *topo.Host) (header.Space, error) {
	return layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
}

// TraceSource injects a symbolic header with src_ip pinned to host h's
// address at h's terminal port and propagates it through the intent
// tables, returning the terminated classes in discovery order. Records
// are not merged into logical flows here; callers group them by
// HistoryKey (Generate and the churn manager do so identically).
func TraceSource(t *topo.Topology, layout *header.Layout, tables map[topo.SwitchID]*flowtable.Table, h *topo.Host) (*SourceTrace, error) {
	space, err := SourcePin(layout, h)
	if err != nil {
		return nil, err
	}
	w := &symWalker{
		topol:  t,
		tables: tables,
		src:    h,
		trace:  &SourceTrace{Src: h.ID, Visited: make(map[topo.SwitchID]bool)},
	}
	if err := w.walk(h.Attach, space, nil, 0); err != nil {
		return nil, err
	}
	return w.trace, nil
}

type symWalker struct {
	topol  *topo.Topology
	tables map[topo.SwitchID]*flowtable.Table
	src    *topo.Host
	trace  *SourceTrace
}

// walk recursively propagates one symbolic class.
func (w *symWalker) walk(sw topo.SwitchID, space header.Space, history []int, hops int) error {
	if hops > maxSymbolicHops {
		return fmt.Errorf("fcm: symbolic loop detected from host %q (history %v)", w.src.Name, history)
	}
	w.trace.Visited[sw] = true
	tbl := w.tables[sw]
	matches, remainder := tbl.SymbolicMatchesWithRemainder(space)
	// Part of the class no rule matches dies table-miss here — but it
	// already incremented every earlier hop's counters, so it must exist
	// as a truncated-path class or detection reads those counters as an
	// anomaly. (With an empty history no counter ever saw the traffic,
	// and a rule-less class would add a zero FCM column; skip it.)
	if len(remainder) > 0 && len(history) > 0 {
		w.record(-1, append([]int(nil), history...), remainder[0])
	}
	for _, m := range matches {
		hist := append(append([]int(nil), history...), m.Rule.ID)
		switch m.Rule.Action.Type {
		case flowtable.ActionDrop:
			w.record(-1, hist, m.Space)
		case flowtable.ActionDeliver:
			peer, err := w.topol.PeerAt(sw, m.Rule.Action.Port)
			if err != nil {
				return fmt.Errorf("fcm: rule %d delivery port: %w", m.Rule.ID, err)
			}
			if peer.Kind != topo.PeerHost {
				return fmt.Errorf("fcm: rule %d delivers to non-host port", m.Rule.ID)
			}
			if peer.Host == w.src.ID {
				continue // self flow: no traffic ever rides it
			}
			w.record(peer.Host, hist, m.Space)
		case flowtable.ActionOutput:
			peer, err := w.topol.PeerAt(sw, m.Rule.Action.Port)
			if err != nil {
				return fmt.Errorf("fcm: rule %d output port: %w", m.Rule.ID, err)
			}
			switch peer.Kind {
			case topo.PeerSwitch:
				if err := w.walk(peer.Switch, m.Space, hist, hops+1); err != nil {
					return err
				}
			case topo.PeerHost:
				if peer.Host != w.src.ID {
					w.record(peer.Host, hist, m.Space)
				}
			default:
				w.record(-1, hist, m.Space)
			}
		}
	}
	return nil
}

func (w *symWalker) record(dst topo.HostID, history []int, space header.Space) {
	w.trace.Records = append(w.trace.Records, TraceRecord{History: history, Dst: dst, Space: space})
}

// HistoryKey canonicalizes a rule history as an order-insensitive set
// key; records with equal keys belong to the same logical flow.
func HistoryKey(history []int) string { return historyKey(history) }

// Assemble builds an FCM over `space` rule-ID rows from externally
// maintained logical flows. Flow IDs are reassigned to column indices
// in the given order. Rule IDs absent from rules become placeholder
// rows (Switch −1) that no flow may reference; they read as expected
// zero counters in detection, which keeps row indexing stable across
// rule removals (the controller never reclaims IDs).
func Assemble(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule, space int, flows []*Flow) (*FCM, error) {
	full := make([]flowtable.Rule, space)
	for i := range full {
		full[i] = flowtable.Rule{ID: i, Switch: -1}
	}
	for _, r := range rules {
		if r.ID < 0 || r.ID >= space {
			return nil, fmt.Errorf("fcm: rule ID %d outside row space [0,%d)", r.ID, space)
		}
		if full[r.ID].Switch >= 0 {
			return nil, fmt.Errorf("fcm: duplicate rule ID %d", r.ID)
		}
		full[r.ID] = r
	}
	var entries []matrix.Triplet
	for j, f := range flows {
		f.ID = j
		seen := make(map[int]bool, len(f.RuleIDs))
		for _, rid := range f.RuleIDs {
			if rid < 0 || rid >= space {
				return nil, fmt.Errorf("fcm: flow %d references rule %d outside row space [0,%d)", j, rid, space)
			}
			if !seen[rid] {
				seen[rid] = true
				entries = append(entries, matrix.Triplet{Row: rid, Col: j, Val: 1})
			}
		}
	}
	h, err := matrix.NewCSR(space, len(flows), entries)
	if err != nil {
		return nil, fmt.Errorf("fcm: assemble: %w", err)
	}
	return &FCM{H: h, Flows: flows, Rules: full, topol: t, layout: layout}, nil
}

// GenerateSparse computes the FCM for a rule set whose IDs need not be
// dense: rows span [0, space) and absent IDs become placeholder rows.
// With dense IDs and space == len(rules) it is exactly Generate.
func GenerateSparse(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule, space int) (*FCM, error) {
	tables, err := BuildTables(t, rules)
	if err != nil {
		return nil, err
	}
	classes := make(map[string]*Flow)
	var order []*Flow
	for _, h := range t.Hosts() {
		tr, err := TraceSource(t, layout, tables, h)
		if err != nil {
			return nil, err
		}
		// Deterministic column order: first discovery order.
		for _, rec := range tr.Records {
			key := historyKey(rec.History)
			if f, ok := classes[key]; ok {
				f.Pairs = append(f.Pairs, Pair{Src: tr.Src, Dst: rec.Dst})
				continue
			}
			f := &Flow{
				RuleIDs: rec.History,
				Pairs:   []Pair{{Src: tr.Src, Dst: rec.Dst}},
				Space:   rec.Space,
			}
			classes[key] = f
			order = append(order, f)
		}
	}
	return Assemble(t, layout, rules, space, order)
}

// RuleSpace reports the FCM's row-ID space (number of H rows, including
// placeholder rows for removed rules).
func (f *FCM) RuleSpace() int { return len(f.Rules) }

// IsPlaceholder reports whether row id is a placeholder for a removed
// (or never-installed) rule ID.
func (f *FCM) IsPlaceholder(id int) bool {
	return id >= 0 && id < len(f.Rules) && f.Rules[id].Switch < 0
}

// Layout returns the header layout the FCM was generated over (nil for
// FromHistories FCMs).
func (f *FCM) Layout() *header.Layout { return f.layout }
