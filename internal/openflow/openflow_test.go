package openflow

import (
	"errors"
	"net"
	"testing"
	"time"

	"foces/internal/dataplane"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func newNet(t *testing.T) *dataplane.Network {
	t.Helper()
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return dataplane.NewNetwork(top, layout)
}

func startPair(t *testing.T, network *dataplane.Network, sw topo.SwitchID) (*Agent, *Client) {
	t.Helper()
	agent, err := NewAgent(network, sw)
	if err != nil {
		t.Fatal(err)
	}
	a, c := net.Pipe()
	agent.Go(a)
	client := NewClient(c, time.Second)
	t.Cleanup(func() {
		client.Close()
		agent.Close()
	})
	return agent, client
}

func TestHandshakeAndEcho(t *testing.T) {
	network := newNet(t)
	_, client := startPair(t, network, 0)
	if err := client.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := client.Echo(); err != nil {
		t.Fatal(err)
	}
}

func TestFeatures(t *testing.T) {
	network := newNet(t)
	_, client := startPair(t, network, 0)
	fr, err := client.Features()
	if err != nil {
		t.Fatal(err)
	}
	// Switch 0 in Linear(2,1): one link port + one host port.
	if fr.Switch != 0 || fr.NumPorts != 2 || fr.NumRules != 0 {
		t.Fatalf("features = %+v", fr)
	}
}

func TestFlowModInstallStatsDelete(t *testing.T) {
	network := newNet(t)
	_, client := startPair(t, network, 0)
	m, err := layout.MatchExact(layout.Wildcard(), header.FieldDstIP, header.IPv4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	rule := flowtable.Rule{ID: 7, Priority: 10, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: 0}}
	if err := client.InstallRule(rule); err != nil {
		t.Fatal(err)
	}
	// The rule landed in the data plane's table.
	tbl, err := network.Table(0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Rule(7)
	if !ok || got.Priority != 10 || !got.Match.Equal(m) {
		t.Fatalf("installed rule = %+v ok=%v", got, ok)
	}
	tbl.Count(7, 99)
	stats, err := client.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Stats) != 1 || stats.Stats[0].RuleID != 7 || stats.Stats[0].Packets != 99 {
		t.Fatalf("stats = %+v", stats)
	}
	// Duplicate install errors via the channel.
	if err := client.InstallRule(rule); err == nil {
		t.Fatal("duplicate install must surface peer error")
	} else {
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != ErrCodeFlowModFailed {
			t.Fatalf("want flow-mod-failed, got %v", err)
		}
	}
	if err := client.DeleteRule(7); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatal("delete did not reach the table")
	}
	if err := client.DeleteRule(7); err == nil {
		t.Fatal("double delete must error")
	}
}

func TestPortStats(t *testing.T) {
	top, err := topo.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	network := dataplane.NewNetwork(top, layout)
	_, client := startPair(t, network, 1)
	ps, err := client.PortStats()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Switch != 1 || len(ps.Stats) != 2 {
		t.Fatalf("port stats = %+v", ps)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	m, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, header.IPv4(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Type: TypeHello, XID: 1},
		{Type: TypeEchoRequest, XID: 2},
		{Type: TypeFeaturesReply, XID: 3, Payload: &FeaturesReply{Switch: 9, NumPorts: 4, NumRules: 17}},
		{Type: TypeFlowMod, XID: 4, Payload: &FlowMod{Command: FlowAdd, Rule: flowtable.Rule{
			ID: 5, Priority: 100, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: 3},
		}}},
		{Type: TypeFlowMod, XID: 5, Payload: &FlowMod{Command: FlowDelete, Rule: flowtable.Rule{ID: 5}}},
		{Type: TypeFlowStatsReply, XID: 6, Payload: &FlowStatsReply{Switch: 2, Stats: []FlowStat{{RuleID: 1, Packets: 1 << 40}}}},
		{Type: TypePortStatsReply, XID: 7, Payload: &PortStatsReply{Switch: 2, Stats: []PortStat{{Port: 0, Rx: 10, Tx: 20}}}},
		{Type: TypeError, XID: 8, Payload: &ErrorMsg{Code: ErrCodeBadRequest, Text: "nope"}},
	}
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	for _, want := range msgs {
		want := want
		go func() {
			if err := ca.Write(want); err != nil {
				t.Error(err)
			}
		}()
		got, err := cb.Read()
		if err != nil {
			t.Fatalf("%v: %v", want.Type, err)
		}
		if got.Type != want.Type || got.XID != want.XID {
			t.Fatalf("header mismatch: %+v vs %+v", got, want)
		}
		switch wp := want.Payload.(type) {
		case *FlowMod:
			gp, ok := got.Payload.(*FlowMod)
			if !ok || gp.Command != wp.Command || gp.Rule.ID != wp.Rule.ID ||
				gp.Rule.Priority != wp.Rule.Priority || gp.Rule.Action != wp.Rule.Action {
				t.Fatalf("flow-mod mismatch: %+v vs %+v", got.Payload, wp)
			}
			if wp.Command == FlowAdd && !gp.Rule.Match.Equal(wp.Rule.Match) {
				t.Fatal("match space did not round-trip")
			}
		case *FlowStatsReply:
			gp := got.Payload.(*FlowStatsReply)
			if gp.Switch != wp.Switch || len(gp.Stats) != len(wp.Stats) || gp.Stats[0] != wp.Stats[0] {
				t.Fatalf("flow-stats mismatch: %+v", gp)
			}
		case *PortStatsReply:
			gp := got.Payload.(*PortStatsReply)
			if gp.Switch != wp.Switch || gp.Stats[0] != wp.Stats[0] {
				t.Fatalf("port-stats mismatch: %+v", gp)
			}
		case *FeaturesReply:
			gp := got.Payload.(*FeaturesReply)
			if *gp != *wp {
				t.Fatalf("features mismatch: %+v", gp)
			}
		case *ErrorMsg:
			gp := got.Payload.(*ErrorMsg)
			if *gp != *wp {
				t.Fatalf("error mismatch: %+v", gp)
			}
		}
	}
}

func TestClientTimeout(t *testing.T) {
	// A peer that never answers must trigger the request timeout.
	a, b := net.Pipe()
	defer a.Close()
	client := NewClient(b, 50*time.Millisecond)
	defer client.Close()
	go func() {
		// Drain the request so the write does not block, then stay mute.
		buf := make([]byte, 64)
		_, _ = a.Read(buf)
	}()
	if err := client.Echo(); err == nil {
		t.Fatal("mute peer must time out")
	}
}

func TestClientClosedConnection(t *testing.T) {
	network := newNet(t)
	agent, err := NewAgent(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	agent.Go(a)
	client := NewClient(b, time.Second)
	if err := client.Hello(); err != nil {
		t.Fatal(err)
	}
	agent.Close()
	if err := client.Echo(); err == nil {
		t.Fatal("request after agent close must fail")
	}
	client.Close()
	if err := client.Echo(); err == nil {
		t.Fatal("request on closed client must fail")
	}
}

func TestAgentOverTCP(t *testing.T) {
	network := newNet(t)
	agent, err := NewAgent(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		agent.Go(conn)
		close(accepted)
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(raw, time.Second)
	defer client.Close()
	<-accepted
	if err := client.Hello(); err != nil {
		t.Fatal(err)
	}
	fr, err := client.Features()
	if err != nil || fr.Switch != 0 {
		t.Fatalf("features over tcp: %+v err=%v", fr, err)
	}
	agent.Close()
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodePayload(TypeFeaturesReply, []byte{1, 2}); err == nil {
		t.Fatal("short features must error")
	}
	if _, err := decodePayload(TypeHello, []byte{1}); err == nil {
		t.Fatal("hello with body must error")
	}
	if _, err := decodePayload(MsgType(200), nil); err == nil {
		t.Fatal("unknown type must error")
	}
	if _, err := decodePayload(TypeFlowMod, []byte{9, 0, 0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad flow-mod command must error")
	}
	if _, err := decodePayload(TypeFlowStatsReply, []byte{0, 0, 0, 1, 0, 0, 0, 9}); err == nil {
		t.Fatal("inconsistent stats count must error")
	}
}

func TestNewAgentUnknownSwitch(t *testing.T) {
	network := newNet(t)
	if _, err := NewAgent(network, topo.SwitchID(99)); err == nil {
		t.Fatal("unknown switch must error")
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeHello.String() != "hello" || MsgType(99).String() != "type-99" {
		t.Fatal("MsgType strings wrong")
	}
}
