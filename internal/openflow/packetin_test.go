package openflow

import (
	"net"
	"sync"
	"testing"
	"time"

	"foces/internal/header"
)

func TestPacketInRoundTripOverWire(t *testing.T) {
	network := newNet(t)
	agent, err := NewAgent(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, c := net.Pipe()
	agent.Go(a)
	client := NewClient(c, time.Second)
	defer func() {
		client.Close()
		agent.Close()
	}()

	var mu sync.Mutex
	var got *PacketIn
	client.SetPacketInHandler(func(pi *PacketIn, xid uint32) {
		mu.Lock()
		got = pi
		mu.Unlock()
		if err := client.SendPacketOut(xid); err != nil {
			t.Error(err)
		}
	})

	// The handshake guarantees the agent has registered the session
	// before the packet-in is raised.
	if err := client.Hello(); err != nil {
		t.Fatal(err)
	}
	pkt, err := layout.PacketWithField(header.NewPacket(layout.Width()), header.FieldDstIP, header.IPv4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.RaisePacketIn(3, pkt, time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil || got.Switch != 0 || got.InPort != 3 {
		t.Fatalf("packet-in = %+v", got)
	}
	v, err := layout.PacketField(got.Packet, header.FieldDstIP)
	if err != nil || v != header.IPv4(10, 0, 0, 2) {
		t.Fatalf("packet payload lost: %v %v", v, err)
	}
}

func TestRaisePacketInTimesOutWithoutHandler(t *testing.T) {
	network := newNet(t)
	agent, err := NewAgent(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, c := net.Pipe()
	agent.Go(a)
	client := NewClient(c, time.Second)
	defer func() {
		client.Close()
		agent.Close()
	}()
	if err := client.Hello(); err != nil {
		t.Fatal(err)
	}
	// No handler registered: nobody ever sends the PacketOut.
	pkt := header.NewPacket(layout.Width())
	start := time.Now()
	err = agent.RaisePacketIn(-1, pkt, 100*time.Millisecond)
	if err == nil {
		t.Fatal("unanswered packet-in must time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestRaisePacketInOnClosedAgent(t *testing.T) {
	network := newNet(t)
	agent, err := NewAgent(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	agent.Close()
	if err := agent.RaisePacketIn(-1, header.NewPacket(layout.Width()), time.Second); err == nil {
		t.Fatal("closed agent must error")
	}
}

func TestPacketInDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodePacketIn([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet-in must error")
	}
	if _, err := decodePacketIn(make([]byte, 12)); err == nil {
		t.Fatal("truncated packet must error")
	}
	// Trailing bytes after a valid packet.
	pkt, err := header.NewPacket(8).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 8)
	body = append(body, pkt...)
	body = append(body, 0xFF)
	if _, err := decodePacketIn(body); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestPacketOutWithUnknownXIDIsIgnored(t *testing.T) {
	network := newNet(t)
	_, client := startPair(t, network, 0)
	if err := client.SendPacketOut(12345); err != nil {
		t.Fatal(err)
	}
	// The agent must still answer subsequent requests.
	if err := client.Echo(); err != nil {
		t.Fatal(err)
	}
}
