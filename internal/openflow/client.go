package openflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"foces/internal/flowtable"
)

// DefaultTimeout bounds each synchronous client request.
const DefaultTimeout = 5 * time.Second

// Client is the controller/collector-side endpoint: synchronous typed
// requests over one control connection, with XID matching. Safe for
// concurrent use.
type Client struct {
	conn    *Conn
	timeout time.Duration

	mu      sync.Mutex
	nextXID uint32
	pending map[uint32]chan Message

	readErr  error
	readDone chan struct{}
	closed   bool

	packetInHandler func(*PacketIn, uint32)
	handlerWG       sync.WaitGroup
}

// SetPacketInHandler registers a callback for unsolicited packet-in
// messages. The handler runs on its own goroutine (so it may issue
// requests on this client) and receives the message XID to echo in
// SendPacketOut once it has installed rules. Must be set before the
// first packet-in arrives.
func (c *Client) SetPacketInHandler(h func(pi *PacketIn, xid uint32)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.packetInHandler = h
}

// SendPacketOut releases a packet-in by echoing its XID. Fire and
// forget: the agent does not reply.
func (c *Client) SendPacketOut(xid uint32) error {
	return c.conn.Write(Message{Type: TypePacketOut, XID: xid})
}

// NewClient wraps a transport connection and starts the reader.
func NewClient(raw net.Conn, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Client{
		conn:     NewConn(raw),
		timeout:  timeout,
		pending:  make(map[uint32]chan Message),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close terminates the connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	c.handlerWG.Wait()
	return err
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		msg, err := c.conn.Read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for xid, ch := range c.pending {
				close(ch)
				delete(c.pending, xid)
			}
			c.mu.Unlock()
			return
		}
		if msg.Type == TypePacketIn {
			// Agent-initiated; never matches a pending request. Run the
			// handler off the read loop so it can issue requests here.
			pi, ok := msg.Payload.(*PacketIn)
			c.mu.Lock()
			h := c.packetInHandler
			c.mu.Unlock()
			if ok && h != nil {
				c.handlerWG.Add(1)
				xid := msg.XID
				go func() {
					defer c.handlerWG.Done()
					h(pi, xid)
				}()
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.XID]
		if ok {
			delete(c.pending, msg.XID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
		// Other unsolicited messages are dropped.
	}
}

// roundTrip sends a request and waits for its matching reply.
func (c *Client) roundTrip(t MsgType, payload Payload) (Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, errors.New("openflow: client closed")
	}
	c.nextXID++
	xid := c.nextXID
	ch := make(chan Message, 1)
	c.pending[xid] = ch
	c.mu.Unlock()

	if err := c.conn.Write(Message{Type: t, XID: xid, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
		return Message{}, err
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return Message{}, fmt.Errorf("openflow: connection failed: %w", err)
		}
		if em, isErr := reply.Payload.(*ErrorMsg); isErr {
			return Message{}, em
		}
		return reply, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
		return Message{}, fmt.Errorf("openflow: %v timed out after %v", t, c.timeout)
	}
}

// Hello performs the version handshake.
func (c *Client) Hello() error {
	reply, err := c.roundTrip(TypeHello, nil)
	if err != nil {
		return err
	}
	if reply.Type != TypeHello {
		return fmt.Errorf("openflow: hello answered with %v", reply.Type)
	}
	return nil
}

// Echo verifies liveness.
func (c *Client) Echo() error {
	reply, err := c.roundTrip(TypeEchoRequest, nil)
	if err != nil {
		return err
	}
	if reply.Type != TypeEchoReply {
		return fmt.Errorf("openflow: echo answered with %v", reply.Type)
	}
	return nil
}

// Features fetches the switch description.
func (c *Client) Features() (*FeaturesReply, error) {
	reply, err := c.roundTrip(TypeFeaturesRequest, nil)
	if err != nil {
		return nil, err
	}
	fr, ok := reply.Payload.(*FeaturesReply)
	if !ok {
		return nil, fmt.Errorf("openflow: features answered with %v", reply.Type)
	}
	return fr, nil
}

// InstallRule sends a FlowMod(add) and waits for the ack.
func (c *Client) InstallRule(r flowtable.Rule) error {
	_, err := c.roundTrip(TypeFlowMod, &FlowMod{Command: FlowAdd, Rule: r})
	return err
}

// DeleteRule sends a FlowMod(delete) and waits for the ack.
func (c *Client) DeleteRule(id int) error {
	_, err := c.roundTrip(TypeFlowMod, &FlowMod{Command: FlowDelete, Rule: flowtable.Rule{ID: id}})
	return err
}

// FlowStats fetches the switch's rule counters.
func (c *Client) FlowStats() (*FlowStatsReply, error) {
	reply, err := c.roundTrip(TypeFlowStatsRequest, nil)
	if err != nil {
		return nil, err
	}
	fr, ok := reply.Payload.(*FlowStatsReply)
	if !ok {
		return nil, fmt.Errorf("openflow: flow stats answered with %v", reply.Type)
	}
	return fr, nil
}

// PortStats fetches the switch's port counters.
func (c *Client) PortStats() (*PortStatsReply, error) {
	reply, err := c.roundTrip(TypePortStatsRequest, nil)
	if err != nil {
		return nil, err
	}
	pr, ok := reply.Payload.(*PortStatsReply)
	if !ok {
		return nil, fmt.Errorf("openflow: port stats answered with %v", reply.Type)
	}
	return pr, nil
}
