package openflow

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"foces/internal/flowtable"
)

// DefaultTimeout bounds each synchronous client request.
const DefaultTimeout = 5 * time.Second

// Client is the controller/collector-side endpoint: synchronous typed
// requests over one control connection, with XID matching. Safe for
// concurrent use.
type Client struct {
	conn    *Conn
	timeout time.Duration

	mu      sync.Mutex
	nextXID uint32
	pending map[uint32]chan Message

	readErr  error
	readDone chan struct{}
	closed   bool

	packetInHandler func(*PacketIn, uint32)
	handlerWG       sync.WaitGroup
}

// SetPacketInHandler registers a callback for unsolicited packet-in
// messages. The handler runs on its own goroutine (so it may issue
// requests on this client) and receives the message XID to echo in
// SendPacketOut once it has installed rules. Must be set before the
// first packet-in arrives.
func (c *Client) SetPacketInHandler(h func(pi *PacketIn, xid uint32)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.packetInHandler = h
}

// SendPacketOut releases a packet-in by echoing its XID. Fire and
// forget: the agent does not reply.
func (c *Client) SendPacketOut(xid uint32) error {
	return c.conn.Write(Message{Type: TypePacketOut, XID: xid})
}

// NewClient wraps a transport connection and starts the reader.
func NewClient(raw net.Conn, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Client{
		conn:     NewConn(raw),
		timeout:  timeout,
		pending:  make(map[uint32]chan Message),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close terminates the connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	c.handlerWG.Wait()
	return err
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		msg, err := c.conn.Read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for xid, ch := range c.pending {
				close(ch)
				delete(c.pending, xid)
			}
			c.mu.Unlock()
			return
		}
		if msg.Type == TypePacketIn {
			// Agent-initiated; never matches a pending request. Run the
			// handler off the read loop so it can issue requests here.
			pi, ok := msg.Payload.(*PacketIn)
			c.mu.Lock()
			h := c.packetInHandler
			c.mu.Unlock()
			if ok && h != nil {
				c.handlerWG.Add(1)
				xid := msg.XID
				go func() {
					defer c.handlerWG.Done()
					h(pi, xid)
				}()
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.XID]
		if ok {
			delete(c.pending, msg.XID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
		// Other unsolicited messages are dropped.
	}
}

// roundTrip sends a request and waits for its matching reply, bounded
// by the client's default timeout.
func (c *Client) roundTrip(t MsgType, payload Payload) (Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	return c.roundTripCtx(ctx, t, payload)
}

// roundTripCtx sends a request and waits for its matching reply until
// the context expires. The write itself also races the context: a peer
// that stopped reading (dead agent behind a live pipe) cannot stall the
// caller past its deadline — the frame writer is left behind on its own
// goroutine and unblocks when the connection closes.
func (c *Client) roundTripCtx(ctx context.Context, t MsgType, payload Payload) (Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, errors.New("openflow: client closed")
	}
	c.nextXID++
	xid := c.nextXID
	ch := make(chan Message, 1)
	c.pending[xid] = ch
	c.mu.Unlock()

	abandon := func() {
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
	}
	written := make(chan error, 1)
	go func() {
		written <- c.conn.Write(Message{Type: t, XID: xid, Payload: payload})
	}()
	select {
	case err := <-written:
		if err != nil {
			abandon()
			return Message{}, err
		}
	case <-ctx.Done():
		abandon()
		return Message{}, fmt.Errorf("openflow: %v request: %w", t, ctx.Err())
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return Message{}, fmt.Errorf("openflow: connection failed: %w", err)
		}
		if em, isErr := reply.Payload.(*ErrorMsg); isErr {
			return Message{}, em
		}
		return reply, nil
	case <-ctx.Done():
		abandon()
		return Message{}, fmt.Errorf("openflow: %v reply: %w", t, ctx.Err())
	}
}

// Hello performs the version handshake.
func (c *Client) Hello() error {
	reply, err := c.roundTrip(TypeHello, nil)
	if err != nil {
		return err
	}
	if reply.Type != TypeHello {
		return fmt.Errorf("openflow: hello answered with %v", reply.Type)
	}
	return nil
}

// Echo verifies liveness.
func (c *Client) Echo() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	return c.EchoContext(ctx)
}

// EchoContext verifies liveness under a caller-supplied deadline — the
// collector's cheap reinstatement probe for quarantined switches.
func (c *Client) EchoContext(ctx context.Context) error {
	reply, err := c.roundTripCtx(ctx, TypeEchoRequest, nil)
	if err != nil {
		return err
	}
	if reply.Type != TypeEchoReply {
		return fmt.Errorf("openflow: echo answered with %v", reply.Type)
	}
	return nil
}

// Features fetches the switch description.
func (c *Client) Features() (*FeaturesReply, error) {
	reply, err := c.roundTrip(TypeFeaturesRequest, nil)
	if err != nil {
		return nil, err
	}
	fr, ok := reply.Payload.(*FeaturesReply)
	if !ok {
		return nil, fmt.Errorf("openflow: features answered with %v", reply.Type)
	}
	return fr, nil
}

// InstallRule sends a FlowMod(add) and waits for the ack.
func (c *Client) InstallRule(r flowtable.Rule) error {
	_, err := c.roundTrip(TypeFlowMod, &FlowMod{Command: FlowAdd, Rule: r})
	return err
}

// DeleteRule sends a FlowMod(delete) and waits for the ack.
func (c *Client) DeleteRule(id int) error {
	_, err := c.roundTrip(TypeFlowMod, &FlowMod{Command: FlowDelete, Rule: flowtable.Rule{ID: id}})
	return err
}

// FlowStats fetches the switch's rule counters.
func (c *Client) FlowStats() (*FlowStatsReply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	return c.FlowStatsContext(ctx)
}

// FlowStatsContext fetches the switch's rule counters under a
// caller-supplied deadline, so a slow or dead switch costs the
// collector exactly its per-request budget and nothing more.
func (c *Client) FlowStatsContext(ctx context.Context) (*FlowStatsReply, error) {
	reply, err := c.roundTripCtx(ctx, TypeFlowStatsRequest, nil)
	if err != nil {
		return nil, err
	}
	fr, ok := reply.Payload.(*FlowStatsReply)
	if !ok {
		return nil, fmt.Errorf("openflow: flow stats answered with %v", reply.Type)
	}
	return fr, nil
}

// PortStats fetches the switch's port counters.
func (c *Client) PortStats() (*PortStatsReply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	return c.PortStatsContext(ctx)
}

// PortStatsContext fetches the switch's port counters under a
// caller-supplied deadline.
func (c *Client) PortStatsContext(ctx context.Context) (*PortStatsReply, error) {
	reply, err := c.roundTripCtx(ctx, TypePortStatsRequest, nil)
	if err != nil {
		return nil, err
	}
	pr, ok := reply.Payload.(*PortStatsReply)
	if !ok {
		return nil, fmt.Errorf("openflow: port stats answered with %v", reply.Type)
	}
	return pr, nil
}
