package openflow

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"foces/internal/dataplane"
	"foces/internal/header"
	"foces/internal/topo"
)

// Agent is the switch-side endpoint of the control channel: it owns one
// switch's flow table inside a dataplane.Network and answers feature,
// flow-mod and statistics messages. A compromised switch lies exactly
// as the threat model allows: table dumps and counters come from
// flowtable.Table, whose Dump/Counters already report the un-tampered
// view.
type Agent struct {
	network *dataplane.Network
	sw      topo.SwitchID

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Packet-in correlation: waiters keyed by the XID of an outstanding
	// TypePacketIn, released by the controller's TypePacketOut.
	piSeq     uint32
	piWaiters map[uint32]chan struct{}
}

// NewAgent creates an agent for one switch of the network.
func NewAgent(network *dataplane.Network, sw topo.SwitchID) (*Agent, error) {
	if _, err := network.Table(sw); err != nil {
		return nil, err
	}
	return &Agent{
		network:   network,
		sw:        sw,
		conns:     make(map[*Conn]struct{}),
		piWaiters: make(map[uint32]chan struct{}),
	}, nil
}

// RaisePacketIn notifies every connected controller of a table miss
// and blocks until some controller answers with a PacketOut (having
// installed whatever rules it wanted) or the timeout expires. It
// implements the switch side of reactive forwarding.
func (a *Agent) RaisePacketIn(inPort int, pkt header.Packet, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errors.New("openflow: agent closed")
	}
	if len(a.conns) == 0 {
		a.mu.Unlock()
		return fmt.Errorf("openflow: switch %d has no controller connection", a.sw)
	}
	a.piSeq++
	xid := a.piSeq
	done := make(chan struct{})
	a.piWaiters[xid] = done
	conns := make([]*Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.piWaiters, xid)
		a.mu.Unlock()
	}()
	msg := Message{Type: TypePacketIn, XID: xid, Payload: &PacketIn{
		Switch: a.sw,
		InPort: inPort,
		Packet: pkt,
	}}
	sent := false
	for _, c := range conns {
		if err := c.Write(msg); err == nil {
			sent = true
		}
	}
	if !sent {
		return fmt.Errorf("openflow: switch %d could not reach any controller", a.sw)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("openflow: packet-in %d on switch %d timed out after %v", xid, a.sw, timeout)
	}
}

// Switch reports the agent's switch.
func (a *Agent) Switch() topo.SwitchID { return a.sw }

// ServeConn handles one control connection until it closes. It is safe
// to serve multiple connections concurrently.
func (a *Agent) ServeConn(raw net.Conn) error {
	conn := NewConn(raw)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return errors.New("openflow: agent closed")
	}
	a.conns[conn] = struct{}{}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		conn.Close()
	}()
	for {
		msg, err := conn.Read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		if err := a.handle(conn, msg); err != nil {
			return err
		}
	}
}

// Go serves the connection on a managed goroutine.
func (a *Agent) Go(raw net.Conn) {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		// Transport errors end the session; the peer observes the close.
		_ = a.ServeConn(raw)
	}()
}

// Close terminates all sessions and waits for their goroutines.
func (a *Agent) Close() {
	a.mu.Lock()
	a.closed = true
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

func (a *Agent) handle(conn *Conn, msg Message) error {
	switch msg.Type {
	case TypeHello:
		return conn.Write(Message{Type: TypeHello, XID: msg.XID})
	case TypeEchoRequest:
		return conn.Write(Message{Type: TypeEchoReply, XID: msg.XID})
	case TypeFeaturesRequest:
		s, err := a.network.Topology().Switch(a.sw)
		if err != nil {
			return a.sendError(conn, msg.XID, ErrCodeBadRequest, err.Error())
		}
		tbl, err := a.network.Table(a.sw)
		if err != nil {
			return a.sendError(conn, msg.XID, ErrCodeBadRequest, err.Error())
		}
		return conn.Write(Message{Type: TypeFeaturesReply, XID: msg.XID, Payload: &FeaturesReply{
			Switch:   a.sw,
			NumPorts: uint32(s.NumPorts()),
			NumRules: uint32(tbl.Len()),
		}})
	case TypeFlowMod:
		fm, ok := msg.Payload.(*FlowMod)
		if !ok {
			return a.sendError(conn, msg.XID, ErrCodeBadRequest, "flow-mod payload missing")
		}
		tbl, err := a.network.Table(a.sw)
		if err != nil {
			return a.sendError(conn, msg.XID, ErrCodeFlowModFailed, err.Error())
		}
		switch fm.Command {
		case FlowAdd:
			if err := tbl.Install(fm.Rule); err != nil {
				return a.sendError(conn, msg.XID, ErrCodeFlowModFailed, err.Error())
			}
		case FlowDelete:
			if err := tbl.Remove(fm.Rule.ID); err != nil {
				return a.sendError(conn, msg.XID, ErrCodeFlowModFailed, err.Error())
			}
		}
		// FlowMod is acked with an empty Hello-style echo so installs
		// can be awaited synchronously.
		return conn.Write(Message{Type: TypeEchoReply, XID: msg.XID})
	case TypeFlowStatsRequest:
		tbl, err := a.network.Table(a.sw)
		if err != nil {
			return a.sendError(conn, msg.XID, ErrCodeBadRequest, err.Error())
		}
		counters := tbl.Counters()
		reply := &FlowStatsReply{Switch: a.sw, Stats: make([]FlowStat, 0, len(counters))}
		for id, v := range counters {
			reply.Stats = append(reply.Stats, FlowStat{RuleID: id, Packets: v})
		}
		return conn.Write(Message{Type: TypeFlowStatsReply, XID: msg.XID, Payload: reply})
	case TypePacketOut:
		a.mu.Lock()
		done, ok := a.piWaiters[msg.XID]
		if ok {
			delete(a.piWaiters, msg.XID)
		}
		a.mu.Unlock()
		if ok {
			close(done)
		}
		return nil
	case TypePortStatsRequest:
		pc, ok := a.network.PortStats()[a.sw]
		if !ok {
			return a.sendError(conn, msg.XID, ErrCodeBadRequest, fmt.Sprintf("no port stats for switch %d", a.sw))
		}
		reply := &PortStatsReply{Switch: a.sw, Stats: make([]PortStat, len(pc.Rx))}
		for p := range pc.Rx {
			reply.Stats[p] = PortStat{Port: p, Rx: pc.Rx[p], Tx: pc.Tx[p]}
		}
		return conn.Write(Message{Type: TypePortStatsReply, XID: msg.XID, Payload: reply})
	default:
		return a.sendError(conn, msg.XID, ErrCodeBadRequest, "unsupported message "+msg.Type.String())
	}
}

func (a *Agent) sendError(conn *Conn, xid uint32, code uint16, text string) error {
	return conn.Write(Message{Type: TypeError, XID: xid, Payload: &ErrorMsg{Code: code, Text: text}})
}
