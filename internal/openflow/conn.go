package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxMessageSize bounds a frame so a corrupt length prefix cannot make
// the reader allocate unbounded memory.
const maxMessageSize = 16 << 20

// headerSize is version(1) + type(1) + length(4) + xid(4).
const headerSize = 10

// Conn frames Messages over a net.Conn. Writes are serialized; a
// single reader is expected.
type Conn struct {
	raw net.Conn

	writeMu sync.Mutex
}

// NewConn wraps a transport connection.
func NewConn(raw net.Conn) *Conn { return &Conn{raw: raw} }

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }

// Write sends one message.
func (c *Conn) Write(m Message) error {
	var body []byte
	if m.Payload != nil {
		var err error
		body, err = m.Payload.encode()
		if err != nil {
			return err
		}
	}
	if len(body) > maxMessageSize-headerSize {
		return fmt.Errorf("openflow: message body %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, headerSize+len(body))
	frame[0] = Version
	frame[1] = byte(m.Type)
	binary.BigEndian.PutUint32(frame[2:], uint32(headerSize+len(body)))
	binary.BigEndian.PutUint32(frame[6:], m.XID)
	copy(frame[headerSize:], body)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := c.raw.Write(frame)
	return err
}

// Read receives the next message, blocking until one arrives or the
// transport fails.
func (c *Conn) Read() (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(c.raw, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != Version {
		return Message{}, fmt.Errorf("openflow: bad version %d", hdr[0])
	}
	total := binary.BigEndian.Uint32(hdr[2:])
	if total < headerSize || total > maxMessageSize {
		return Message{}, fmt.Errorf("openflow: bad frame length %d", total)
	}
	body := make([]byte, total-headerSize)
	if _, err := io.ReadFull(c.raw, body); err != nil {
		return Message{}, fmt.Errorf("openflow: short body: %w", err)
	}
	m := Message{Type: MsgType(hdr[1]), XID: binary.BigEndian.Uint32(hdr[6:])}
	payload, err := decodePayload(m.Type, body)
	if err != nil {
		return Message{}, err
	}
	m.Payload = payload
	return m, nil
}
