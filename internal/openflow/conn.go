package openflow

import (
	"net"

	"foces/internal/wire"
)

// maxMessageSize bounds a frame so a corrupt length prefix cannot make
// the reader allocate unbounded memory. Violations surface as a typed
// *wire.SizeError from both Read and Write.
const maxMessageSize = 16 << 20

// Conn frames Messages over a net.Conn using the shared length-prefix
// layer (internal/wire). Writes are serialized; a single reader is
// expected.
type Conn struct {
	w *wire.Conn
}

// NewConn wraps a transport connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{w: wire.NewConn(raw, "openflow", Version, maxMessageSize)}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.w.Close() }

// Write sends one message. A body that would exceed the frame cap is
// refused with a *wire.SizeError.
func (c *Conn) Write(m Message) error {
	var body []byte
	if m.Payload != nil {
		var err error
		body, err = m.Payload.encode()
		if err != nil {
			return err
		}
	}
	return c.w.WriteFrame(byte(m.Type), m.XID, body)
}

// Read receives the next message, blocking until one arrives or the
// transport fails.
func (c *Conn) Read() (Message, error) {
	t, xid, body, err := c.w.ReadFrame()
	if err != nil {
		return Message{}, err
	}
	m := Message{Type: MsgType(t), XID: xid}
	payload, err := decodePayload(m.Type, body)
	if err != nil {
		return Message{}, err
	}
	m.Payload = payload
	return m, nil
}
