package openflow

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// muteReader accepts the client's frames but never replies — a live
// pipe in front of a dead agent.
func muteReader(raw net.Conn) {
	go func() {
		conn := NewConn(raw)
		for {
			if _, err := conn.Read(); err != nil {
				return
			}
		}
	}()
}

func TestClientContextDeadlineOnMuteReply(t *testing.T) {
	serverEnd, clientEnd := net.Pipe()
	muteReader(serverEnd)
	c := NewClient(clientEnd, time.Minute) // default timeout must NOT apply
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FlowStatsContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("caller deadline ignored: took %v", elapsed)
	}
}

func TestClientContextCancelOnMuteReply(t *testing.T) {
	serverEnd, clientEnd := net.Pipe()
	muteReader(serverEnd)
	c := NewClient(clientEnd, time.Minute)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		err := c.EchoContext(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock the request")
	}
}

func TestClientContextDeadlineOnBlockedWrite(t *testing.T) {
	// The peer never reads, so the frame write itself blocks
	// (net.Pipe is unbuffered). The deadline must still bound the call.
	serverEnd, clientEnd := net.Pipe()
	defer serverEnd.Close()
	c := NewClient(clientEnd, time.Minute)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.EchoContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("blocked write stalled past the deadline: %v", elapsed)
	}
}

func TestClientContextAbandonsPendingXID(t *testing.T) {
	// A request that times out must deregister its XID so a late reply
	// doesn't leak into a later request, and the client must remain
	// usable afterwards.
	serverEnd, clientEnd := net.Pipe()
	c := NewClient(clientEnd, time.Minute)
	defer c.Close()

	conn := NewConn(serverEnd)
	xids := make(chan uint32, 2)
	go func() {
		for {
			msg, err := conn.Read()
			if err != nil {
				return
			}
			xids <- msg.XID
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, err := c.FlowStatsContext(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first request: %v", err)
	}
	staleXID := <-xids

	// Answer the abandoned request late, then serve the next one
	// properly; the late reply must be dropped, not matched.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = conn.Write(Message{Type: TypeFlowStatsReply, XID: staleXID,
			Payload: &FlowStatsReply{Switch: 1, Stats: []FlowStat{{RuleID: 99, Packets: 1}}}})
		nextXID := <-xids
		_ = conn.Write(Message{Type: TypeFlowStatsReply, XID: nextXID,
			Payload: &FlowStatsReply{Switch: 1, Stats: []FlowStat{{RuleID: 7, Packets: 42}}}})
	}()

	reply, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Stats) != 1 || reply.Stats[0].RuleID != 7 {
		t.Fatalf("late stale reply leaked into a fresh request: %+v", reply.Stats)
	}
	<-done
}

func TestClientContextSuccessPath(t *testing.T) {
	serverEnd, clientEnd := net.Pipe()
	c := NewClient(clientEnd, time.Minute)
	defer c.Close()

	conn := NewConn(serverEnd)
	go func() {
		for {
			msg, err := conn.Read()
			if err != nil {
				return
			}
			switch msg.Type {
			case TypeEchoRequest:
				_ = conn.Write(Message{Type: TypeEchoReply, XID: msg.XID})
			case TypePortStatsRequest:
				_ = conn.Write(Message{Type: TypePortStatsReply, XID: msg.XID,
					Payload: &PortStatsReply{Switch: 2, Stats: []PortStat{{Port: 0, Rx: 1, Tx: 2}}}})
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.EchoContext(ctx); err != nil {
		t.Fatal(err)
	}
	pr, err := c.PortStatsContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Stats) != 1 || pr.Stats[0].Rx != 1 {
		t.Fatalf("port stats = %+v", pr.Stats)
	}
}
