// Package openflow implements a compact OpenFlow-inspired control
// channel between the controller/collector and switch agents: framed
// binary messages over any net.Conn, carrying feature discovery, rule
// installation (FlowMod) and the flow/port statistics requests that
// FOCES' statistics collector issues every detection period. The paper
// uses Floodlight's REST API for this glue; the protocol here plays
// that role with stdlib only.
package openflow

import (
	"encoding/binary"
	"fmt"

	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// Version is the protocol version byte.
const Version = 1

// MsgType enumerates control messages.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeFlowMod
	TypeFlowStatsRequest
	TypeFlowStatsReply
	TypePortStatsRequest
	TypePortStatsReply
	TypeError
	// TypePacketIn is sent by an agent to the controller when a packet
	// misses the flow table (reactive mode). The XID correlates the
	// controller's eventual TypePacketOut release.
	TypePacketIn
	// TypePacketOut releases a buffered packet-in after the controller
	// has installed rules; its XID echoes the packet-in's.
	TypePacketOut
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello:            "hello",
		TypeEchoRequest:      "echo-request",
		TypeEchoReply:        "echo-reply",
		TypeFeaturesRequest:  "features-request",
		TypeFeaturesReply:    "features-reply",
		TypeFlowMod:          "flow-mod",
		TypeFlowStatsRequest: "flow-stats-request",
		TypeFlowStatsReply:   "flow-stats-reply",
		TypePortStatsRequest: "port-stats-request",
		TypePortStatsReply:   "port-stats-reply",
		TypeError:            "error",
		TypePacketIn:         "packet-in",
		TypePacketOut:        "packet-out",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// Message is one framed control message. Payload is one of the typed
// payload structs below (nil for bodyless messages).
type Message struct {
	Type    MsgType
	XID     uint32
	Payload Payload
}

// Payload is a typed message body.
type Payload interface {
	encode() ([]byte, error)
}

// FeaturesReply describes a switch.
type FeaturesReply struct {
	Switch   topo.SwitchID
	NumPorts uint32
	NumRules uint32
}

func (p *FeaturesReply) encode() ([]byte, error) {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf, uint32(p.Switch))
	binary.BigEndian.PutUint32(buf[4:], p.NumPorts)
	binary.BigEndian.PutUint32(buf[8:], p.NumRules)
	return buf, nil
}

func decodeFeaturesReply(b []byte) (*FeaturesReply, error) {
	if len(b) != 12 {
		return nil, fmt.Errorf("openflow: features-reply body %d bytes, want 12", len(b))
	}
	return &FeaturesReply{
		Switch:   topo.SwitchID(int32(binary.BigEndian.Uint32(b))),
		NumPorts: binary.BigEndian.Uint32(b[4:]),
		NumRules: binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// FlowModCommand selects the FlowMod operation.
type FlowModCommand uint8

// FlowMod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowDelete
)

// FlowMod installs or removes a rule on the agent's switch.
type FlowMod struct {
	Command FlowModCommand
	Rule    flowtable.Rule
}

func (p *FlowMod) encode() ([]byte, error) {
	match, err := p.Rule.Match.MarshalBinary()
	if err != nil && p.Command == FlowAdd {
		return nil, fmt.Errorf("openflow: flow-mod match: %w", err)
	}
	if p.Command == FlowDelete {
		match = nil
	}
	buf := make([]byte, 0, 18+len(match))
	buf = append(buf, byte(p.Command))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Rule.ID)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Rule.Priority)))
	buf = append(buf, byte(p.Rule.Action.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Rule.Action.Port)))
	buf = append(buf, match...)
	return buf, nil
}

func decodeFlowMod(b []byte) (*FlowMod, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("openflow: flow-mod body %d bytes, want >= 14", len(b))
	}
	p := &FlowMod{Command: FlowModCommand(b[0])}
	if p.Command != FlowAdd && p.Command != FlowDelete {
		return nil, fmt.Errorf("openflow: bad flow-mod command %d", b[0])
	}
	p.Rule.ID = int(int32(binary.BigEndian.Uint32(b[1:])))
	p.Rule.Priority = int(int32(binary.BigEndian.Uint32(b[5:])))
	p.Rule.Action.Type = flowtable.ActionType(b[9])
	p.Rule.Action.Port = int(int32(binary.BigEndian.Uint32(b[10:])))
	if p.Command == FlowAdd {
		sp, n, err := header.UnmarshalSpace(b[14:])
		if err != nil {
			return nil, fmt.Errorf("openflow: flow-mod match: %w", err)
		}
		if 14+n != len(b) {
			return nil, fmt.Errorf("openflow: flow-mod trailing %d bytes", len(b)-14-n)
		}
		p.Rule.Match = sp
	}
	return p, nil
}

// FlowStat is one rule's counter.
type FlowStat struct {
	RuleID  int
	Packets uint64
}

// FlowStatsReply carries all rule counters of a switch.
type FlowStatsReply struct {
	Switch topo.SwitchID
	Stats  []FlowStat
}

func (p *FlowStatsReply) encode() ([]byte, error) {
	buf := make([]byte, 0, 8+12*len(p.Stats))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Switch)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Stats)))
	for _, s := range p.Stats {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(s.RuleID)))
		buf = binary.BigEndian.AppendUint64(buf, s.Packets)
	}
	return buf, nil
}

func decodeFlowStatsReply(b []byte) (*FlowStatsReply, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("openflow: flow-stats-reply body %d bytes", len(b))
	}
	p := &FlowStatsReply{Switch: topo.SwitchID(int32(binary.BigEndian.Uint32(b)))}
	n := int(binary.BigEndian.Uint32(b[4:]))
	if len(b) != 8+12*n {
		return nil, fmt.Errorf("openflow: flow-stats-reply body %d bytes for %d stats", len(b), n)
	}
	p.Stats = make([]FlowStat, n)
	for i := 0; i < n; i++ {
		off := 8 + 12*i
		p.Stats[i].RuleID = int(int32(binary.BigEndian.Uint32(b[off:])))
		p.Stats[i].Packets = binary.BigEndian.Uint64(b[off+4:])
	}
	return p, nil
}

// PortStat is one port's counters.
type PortStat struct {
	Port   int
	Rx, Tx uint64
}

// PortStatsReply carries all port counters of a switch.
type PortStatsReply struct {
	Switch topo.SwitchID
	Stats  []PortStat
}

func (p *PortStatsReply) encode() ([]byte, error) {
	buf := make([]byte, 0, 8+20*len(p.Stats))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Switch)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Stats)))
	for _, s := range p.Stats {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(s.Port)))
		buf = binary.BigEndian.AppendUint64(buf, s.Rx)
		buf = binary.BigEndian.AppendUint64(buf, s.Tx)
	}
	return buf, nil
}

func decodePortStatsReply(b []byte) (*PortStatsReply, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("openflow: port-stats-reply body %d bytes", len(b))
	}
	p := &PortStatsReply{Switch: topo.SwitchID(int32(binary.BigEndian.Uint32(b)))}
	n := int(binary.BigEndian.Uint32(b[4:]))
	if len(b) != 8+20*n {
		return nil, fmt.Errorf("openflow: port-stats-reply body %d bytes for %d stats", len(b), n)
	}
	p.Stats = make([]PortStat, n)
	for i := 0; i < n; i++ {
		off := 8 + 20*i
		p.Stats[i].Port = int(int32(binary.BigEndian.Uint32(b[off:])))
		p.Stats[i].Rx = binary.BigEndian.Uint64(b[off+4:])
		p.Stats[i].Tx = binary.BigEndian.Uint64(b[off+12:])
	}
	return p, nil
}

// PacketIn notifies the controller of a table miss at a switch.
type PacketIn struct {
	Switch topo.SwitchID
	InPort int // -1 when the ingress port is unknown
	Packet header.Packet
}

func (p *PacketIn) encode() ([]byte, error) {
	pkt, err := p.Packet.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("openflow: packet-in: %w", err)
	}
	buf := make([]byte, 0, 8+len(pkt))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.Switch)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(p.InPort)))
	return append(buf, pkt...), nil
}

func decodePacketIn(b []byte) (*PacketIn, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("openflow: packet-in body %d bytes", len(b))
	}
	p := &PacketIn{
		Switch: topo.SwitchID(int32(binary.BigEndian.Uint32(b))),
		InPort: int(int32(binary.BigEndian.Uint32(b[4:]))),
	}
	pkt, n, err := header.UnmarshalPacket(b[8:])
	if err != nil {
		return nil, fmt.Errorf("openflow: packet-in: %w", err)
	}
	if 8+n != len(b) {
		return nil, fmt.Errorf("openflow: packet-in trailing %d bytes", len(b)-8-n)
	}
	p.Packet = pkt
	return p, nil
}

// ErrorMsg reports a failure to the peer.
type ErrorMsg struct {
	Code uint16
	Text string
}

// Error codes.
const (
	ErrCodeBadRequest uint16 = iota + 1
	ErrCodeFlowModFailed
)

func (p *ErrorMsg) encode() ([]byte, error) {
	buf := make([]byte, 0, 2+len(p.Text))
	buf = binary.BigEndian.AppendUint16(buf, p.Code)
	return append(buf, p.Text...), nil
}

func decodeErrorMsg(b []byte) (*ErrorMsg, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("openflow: error body %d bytes", len(b))
	}
	return &ErrorMsg{Code: binary.BigEndian.Uint16(b), Text: string(b[2:])}, nil
}

// Error makes ErrorMsg usable as a Go error when surfaced by clients.
func (p *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow: peer error %d: %s", p.Code, p.Text)
}

// decodePayload decodes a message body by type. Bodyless types return
// nil.
func decodePayload(t MsgType, b []byte) (Payload, error) {
	switch t {
	case TypeHello, TypeEchoRequest, TypeEchoReply, TypeFeaturesRequest,
		TypeFlowStatsRequest, TypePortStatsRequest, TypePacketOut:
		if len(b) != 0 {
			return nil, fmt.Errorf("openflow: %v must have empty body, got %d bytes", t, len(b))
		}
		return nil, nil
	case TypeFeaturesReply:
		return decodeFeaturesReply(b)
	case TypeFlowMod:
		return decodeFlowMod(b)
	case TypeFlowStatsReply:
		return decodeFlowStatsReply(b)
	case TypePortStatsReply:
		return decodePortStatsReply(b)
	case TypeError:
		return decodeErrorMsg(b)
	case TypePacketIn:
		return decodePacketIn(b)
	default:
		return nil, fmt.Errorf("openflow: unknown message type %d", t)
	}
}
