package verify

import (
	"testing"

	"foces/internal/controller"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func intentFor(t *testing.T, name string, mode controller.PolicyMode) (*topo.Topology, []flowtable.Rule) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := controller.New(top, layout, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	return top, c.Rules()
}

func TestCleanIntentVerifies(t *testing.T) {
	for _, name := range topo.EvaluationTopologies() {
		for _, mode := range []controller.PolicyMode{controller.PairExact, controller.DestAggregate} {
			top, rules := intentFor(t, name, mode)
			rep, err := Intent(top, layout, rules)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if !rep.OK() {
				t.Fatalf("%s/%v: %s (issues: %+v, shadowed: %v)",
					name, mode, rep, rep.PairIssues, rep.ShadowedRules)
			}
			want := top.NumHosts() * (top.NumHosts() - 1)
			if rep.PairsChecked != want {
				t.Fatalf("%s: checked %d pairs, want %d", name, rep.PairsChecked, want)
			}
		}
	}
}

func TestMissingRuleReportsUnreachable(t *testing.T) {
	top, rules := intentFor(t, "fattree4", controller.PairExact)
	// Drop the first rule: its pair's packets miss at the first hop.
	broken := rules[1:]
	for i := range broken {
		broken[i].ID = i
	}
	// Re-densify IDs by rebuilding (Tracer requires dense IDs).
	rep, err := Intent(top, layout, broken)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing first-hop rule must break a pair")
	}
	found := false
	for _, issue := range rep.PairIssues {
		if issue.Kind == PairUnreachable {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unreachable pair, got %+v", rep.PairIssues)
	}
}

func TestMisdeliveryDetected(t *testing.T) {
	// Two hosts on one switch; deliver the pair to the wrong port.
	b := topo.NewBuilder("misdeliver")
	s0 := b.AddSwitch("s0", "")
	h0 := b.AddHost("h0", header.IPv4(10, 0, 0, 1), s0)
	h1 := b.AddHost("h1", header.IPv4(10, 0, 0, 2), s0)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	host0, _ := top.Host(h0)
	host1, _ := top.Host(h1)
	m01, err := pairMatch(host0.IP, host1.IP)
	if err != nil {
		t.Fatal(err)
	}
	m10, err := pairMatch(host1.IP, host0.IP)
	if err != nil {
		t.Fatal(err)
	}
	rules := []flowtable.Rule{
		// h0 -> h1 delivered back to h0's port: misdelivery.
		{ID: 0, Switch: s0, Match: m01, Action: flowtable.Action{Type: flowtable.ActionDeliver, Port: host0.Port}},
		{ID: 1, Switch: s0, Match: m10, Action: flowtable.Action{Type: flowtable.ActionDeliver, Port: host0.Port}},
	}
	rep, err := Intent(top, layout, rules)
	if err != nil {
		t.Fatal(err)
	}
	var mis int
	for _, issue := range rep.PairIssues {
		if issue.Kind == PairMisdelivered && issue.DeliveredTo == h0 {
			mis++
		}
	}
	if mis != 1 {
		t.Fatalf("want exactly one misdelivery (h0->h1), got %+v", rep.PairIssues)
	}
}

func TestLoopDetected(t *testing.T) {
	b := topo.NewBuilder("loop")
	s0 := b.AddSwitch("s0", "")
	s1 := b.AddSwitch("s1", "")
	b.Connect(s0, s1)
	b.AddHost("h0", header.IPv4(10, 0, 0, 1), s0)
	b.AddHost("h1", header.IPv4(10, 0, 0, 2), s1)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p01, _ := top.PortToward(s0, s1)
	p10, _ := top.PortToward(s1, s0)
	w := layout.Wildcard()
	rules := []flowtable.Rule{
		{ID: 0, Switch: s0, Match: w, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p01}},
		{ID: 1, Switch: s1, Match: w, Action: flowtable.Action{Type: flowtable.ActionOutput, Port: p10}},
	}
	rep, err := Intent(top, layout, rules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("loop must be reported")
	}
	for _, issue := range rep.PairIssues {
		if issue.Kind != PairLooped {
			t.Fatalf("want looped issues, got %+v", issue)
		}
	}
}

func TestShadowedRules(t *testing.T) {
	m, err := layout.MatchExact(layout.Wildcard(), header.FieldDstIP, header.IPv4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := layout.MatchPrefix(layout.Wildcard(), header.FieldDstIP, header.IPv4(10, 0, 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	rules := []flowtable.Rule{
		{ID: 0, Switch: 0, Priority: 100, Match: prefix, Action: flowtable.Action{Type: flowtable.ActionOutput}},
		// Exact /32 behind the covering /8: shadowed.
		{ID: 1, Switch: 0, Priority: 50, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput}},
		// Same matches on another switch, reversed priority: NOT shadowed.
		{ID: 2, Switch: 1, Priority: 100, Match: m, Action: flowtable.Action{Type: flowtable.ActionOutput}},
		{ID: 3, Switch: 1, Priority: 50, Match: prefix, Action: flowtable.Action{Type: flowtable.ActionOutput}},
	}
	shadowed, err := ShadowedRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(shadowed) != 1 || shadowed[0] != 1 {
		t.Fatalf("shadowed = %v, want [1]", shadowed)
	}
	if _, err := ShadowedRules([]flowtable.Rule{{ID: 0}}); err == nil {
		t.Fatal("invalid match must error")
	}
}

func TestReportString(t *testing.T) {
	if (Report{PairsChecked: 5}).String() == "" {
		t.Fatal("empty OK string")
	}
	r := Report{PairIssues: []PairIssue{{}}}
	if r.OK() || r.String() == "" {
		t.Fatal("broken report misreported")
	}
	for _, k := range []PairIssueKind{PairUnreachable, PairMisdelivered, PairLooped, PairIssueKind(0)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func pairMatch(srcIP, dstIP uint64) (header.Space, error) {
	m, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, srcIP)
	if err != nil {
		return header.Space{}, err
	}
	return layout.MatchExact(m, header.FieldDstIP, dstIP)
}
