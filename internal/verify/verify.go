// Package verify implements controller-side intent validation in the
// ATPG tradition the FCM generator builds on: before trusting a rule
// set as the detection baseline, confirm that (a) every host pair is
// actually reachable under it and delivered to the right host, (b) no
// rule is shadowed (unreachable behind higher-priority rules — such
// rules never accumulate counters and silently weaken the equation
// system), and (c) no packet loops. A FOCES deployment should verify
// intent whenever rules change; an FCM generated from broken intent
// would flag honest switches.
package verify

import (
	"fmt"
	"sort"

	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

// PairIssueKind classifies a host-pair problem.
type PairIssueKind int

// Pair issue kinds.
const (
	// PairUnreachable: packets miss or are dropped before any host.
	PairUnreachable PairIssueKind = iota + 1
	// PairMisdelivered: packets reach a host other than the intended
	// destination.
	PairMisdelivered
	// PairLooped: packets circulate until TTL exhaustion.
	PairLooped
)

func (k PairIssueKind) String() string {
	switch k {
	case PairUnreachable:
		return "unreachable"
	case PairMisdelivered:
		return "misdelivered"
	case PairLooped:
		return "looped"
	default:
		return "unknown"
	}
}

// PairIssue is one broken host pair.
type PairIssue struct {
	Src, Dst topo.HostID
	Kind     PairIssueKind
	// DeliveredTo is set for PairMisdelivered.
	DeliveredTo topo.HostID
	// LastSwitch is where the walk ended.
	LastSwitch topo.SwitchID
}

// Report is the outcome of intent verification.
type Report struct {
	// PairsChecked counts ordered host pairs examined.
	PairsChecked int
	// PairIssues lists broken pairs in (src, dst) order.
	PairIssues []PairIssue
	// ShadowedRules lists rules that can never match any packet because
	// higher-priority rules on the same switch cover their match, in
	// ascending rule-ID order.
	ShadowedRules []int
}

// OK reports whether the intent passed every check.
func (r Report) OK() bool {
	return len(r.PairIssues) == 0 && len(r.ShadowedRules) == 0
}

// String renders a one-line summary.
func (r Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify: OK (%d pairs, no shadowed rules)", r.PairsChecked)
	}
	return fmt.Sprintf("verify: %d broken pairs, %d shadowed rules", len(r.PairIssues), len(r.ShadowedRules))
}

// Intent verifies a rule set against its topology.
func Intent(t *topo.Topology, layout *header.Layout, rules []flowtable.Rule) (Report, error) {
	tracer, err := fcm.NewTracer(t, rules)
	if err != nil {
		return Report{}, err
	}
	var report Report
	for _, src := range t.Hosts() {
		for _, dst := range t.Hosts() {
			if src.ID == dst.ID {
				continue
			}
			report.PairsChecked++
			pkt, err := pairPacket(layout, src.IP, dst.IP)
			if err != nil {
				return Report{}, err
			}
			d, err := tracer.TraceFull(pkt, src.Attach)
			if err != nil {
				return Report{}, err
			}
			issue := PairIssue{Src: src.ID, Dst: dst.ID, DeliveredTo: -1, LastSwitch: d.LastSwitch}
			switch {
			case d.Outcome == fcm.TraceLooped:
				issue.Kind = PairLooped
			case d.Outcome == fcm.TraceMissed || d.Outcome == fcm.TraceDropped:
				issue.Kind = PairUnreachable
			case d.Outcome == fcm.TraceDelivered && d.DeliveredTo != dst.ID:
				issue.Kind = PairMisdelivered
				issue.DeliveredTo = d.DeliveredTo
			default:
				continue // delivered correctly
			}
			report.PairIssues = append(report.PairIssues, issue)
		}
	}
	shadowed, err := ShadowedRules(rules)
	if err != nil {
		return Report{}, err
	}
	report.ShadowedRules = shadowed
	return report, nil
}

// ShadowedRules finds rules whose match space is entirely covered by
// higher-priority rules on the same switch (they can never match a
// packet). The check is exact, using header-space subtraction.
func ShadowedRules(rules []flowtable.Rule) ([]int, error) {
	bySwitch := make(map[topo.SwitchID][]flowtable.Rule)
	for _, r := range rules {
		if !r.Match.Valid() {
			return nil, fmt.Errorf("verify: rule %d has invalid match", r.ID)
		}
		bySwitch[r.Switch] = append(bySwitch[r.Switch], r)
	}
	var shadowed []int
	for _, tableRules := range bySwitch {
		ordered := append([]flowtable.Rule(nil), tableRules...)
		sort.SliceStable(ordered, func(i, j int) bool {
			if ordered[i].Priority != ordered[j].Priority {
				return ordered[i].Priority > ordered[j].Priority
			}
			return ordered[i].ID < ordered[j].ID
		})
		var covered []header.Space
		for _, r := range ordered {
			if len(header.SubtractAll(r.Match, covered)) == 0 {
				shadowed = append(shadowed, r.ID)
			}
			covered = append(covered, r.Match)
		}
	}
	sort.Ints(shadowed)
	return shadowed, nil
}

func pairPacket(layout *header.Layout, srcIP, dstIP uint64) (header.Packet, error) {
	p := header.NewPacket(layout.Width())
	p, err := layout.PacketWithField(p, header.FieldSrcIP, srcIP)
	if err != nil {
		return header.Packet{}, err
	}
	return layout.PacketWithField(p, header.FieldDstIP, dstIP)
}
