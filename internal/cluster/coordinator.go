// Package cluster shards FOCES sliced detection (Algorithm 2) across
// detector nodes, splitting a coordinator — which owns the
// flow-counter baseline, the churn epoch log and window assembly —
// from N detectors that hold replicated per-switch slice engines and
// answer window shards with partial verdicts.
//
// The design rests on one invariant, pinned by internal/churn's delta
// tests: a replica that refactors the same base H the coordinator's
// churn manager refactored and replays the same rank-one row vectors
// in the same order holds a bitwise-identical factor, so every float
// of every partial verdict equals what the coordinator's own engine
// would have produced. Partial verdicts are merged through the same
// core.MergeSliceResults the local SlicedDetector uses; a distributed
// run's report is therefore byte-for-byte the single-process report —
// under node failure and requeue included — never an approximation.
//
// Shards (one per per-switch slice) map to nodes by consistent
// hashing with virtual nodes, so losing a node moves only its own
// shards. Baseline replication is epoch-versioned and incremental:
// steady-state churn ships the manager's rank-one update/downdate
// deltas; a joining node — or one whose delta chain broke on a
// fill-rejected factor — gets a full base snapshot and replays
// forward. Nodes heartbeat; the coordinator evicts on timeout,
// requeues in-flight shards to survivors, and (when capacity is
// exhausted) falls back to running windows on its own engines, which
// by the invariant above changes nothing but latency.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"foces/internal/churn"
	"foces/internal/core"
	"foces/internal/telemetry"
	"foces/internal/topo"
	"foces/internal/wire"
)

// Config tunes a coordinator.
type Config struct {
	// Peers are the detector node addresses dialed at construction.
	Peers []string
	// HeartbeatTimeout evicts a node not heard from for this long;
	// zero selects 4× DefaultHeartbeat.
	HeartbeatTimeout time.Duration
	// DialTimeout bounds connection establishment and the handshake;
	// zero selects 5s.
	DialTimeout time.Duration
	// WindowTimeout bounds one distributed window before the
	// coordinator gives up and runs it locally; zero selects 60s.
	WindowTimeout time.Duration
	// VNodes is the virtual-node count per member; zero selects
	// defaultVNodes.
	VNodes int
}

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 4 * DefaultHeartbeat
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WindowTimeout <= 0 {
		c.WindowTimeout = 60 * time.Second
	}
	return c
}

// Coordinator owns the detection baseline and fans sliced-detection
// windows across detector nodes. It implements foces.SlicedRunner, so
// System.RunWith(obs, coord) routes the Algorithm 2 stage of any
// clean or reconciled window through the cluster while everything
// else (full engine, missing-switch path, report assembly) stays
// local and unchanged.
type Coordinator struct {
	mgr  *churn.Manager
	opts core.Options // engines' construction options (masked path)
	cfg  Config
	tel  *telemetry.ClusterMetrics

	mu         sync.Mutex
	peers      map[string]*peer
	ring       *ring
	configured int
	seq        uint64
	pending    map[uint64]*windowCall
	evictions  uint64
	requeued   uint64
	closed     bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// peer is one detector node connection.
type peer struct {
	addr string
	raw  net.Conn
	conn *wire.Conn

	// sendMu orders baseline/delta shipments before the windows that
	// depend on them and guards the sync bookkeeping below.
	sendMu      sync.Mutex
	shards      map[topo.SwitchID]shardSync
	syncedEpoch uint64
	everSynced  bool

	lastSeen atomic.Int64 // unix nanos of the last frame received
	alive    bool         // guarded by Coordinator.mu
}

// shardSync is what the node holds for one shard.
type shardSync struct {
	baseEpoch uint64
	nChanges  int
}

// windowCall is one in-flight distributed window. It retains every
// shard's payload so an eviction can requeue the unanswered remainder
// to surviving nodes under the same sequence number.
type windowCall struct {
	seq    uint64
	masked bool
	opts   core.Options

	mu      sync.Mutex
	shards  map[topo.SwitchID]windowShard
	owners  map[topo.SwitchID]string
	results map[topo.SwitchID]core.Result
	err     error
	settled bool
	done    chan struct{}
}

func (call *windowCall) fail(err error) {
	call.mu.Lock()
	defer call.mu.Unlock()
	if call.settled {
		return
	}
	call.err = err
	call.settled = true
	close(call.done)
}

// New connects a coordinator to its detector nodes. Every configured
// peer must come up (the caller started them); nodes joining later go
// through AddPeer. tel may be nil.
func New(mgr *churn.Manager, opts core.Options, cfg Config, tel *telemetry.ClusterMetrics) (*Coordinator, error) {
	c := &Coordinator{
		mgr:     mgr,
		opts:    opts,
		cfg:     cfg.withDefaults(),
		tel:     tel,
		peers:   make(map[string]*peer),
		ring:    newRing(cfg.VNodes),
		pending: make(map[uint64]*windowCall),
		stop:    make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		if err := c.AddPeer(addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.wg.Add(1)
	go c.monitor()
	return c, nil
}

// AddPeer dials a detector node, performs the handshake, and adds it
// to the shard ring — the join-mid-epoch path. The node's first
// window triggers baseline snapshots for each shard it now owns;
// subsequent epochs ship deltas.
func (c *Coordinator) AddPeer(addr string) error {
	raw, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	p := &peer{
		addr:   addr,
		raw:    raw,
		conn:   wire.NewConn(raw, "cluster", Version, maxFrame),
		shards: make(map[topo.SwitchID]shardSync),
	}
	if err := c.handshake(p); err != nil {
		raw.Close()
		return err
	}
	p.lastSeen.Store(time.Now().UnixNano())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		raw.Close()
		return fmt.Errorf("cluster: coordinator is closed")
	}
	if old, ok := c.peers[addr]; ok && old.alive {
		c.mu.Unlock()
		raw.Close()
		return fmt.Errorf("cluster: peer %s already connected", addr)
	}
	p.alive = true
	c.peers[addr] = p
	c.ring.Add(addr)
	c.configured++
	c.mu.Unlock()
	c.wg.Add(1)
	go c.readLoop(p)
	c.sendAssign(p)
	c.updateGauges()
	return nil
}

// handshake sends HELLO and waits for the ack (tolerating heartbeats
// that may already be ticking), bounded by the dial timeout.
func (c *Coordinator) handshake(p *peer) error {
	body, err := encodeGob(&helloMsg{
		Proto: protoName,
		Space: c.mgr.RuleSpace(),
		Epoch: c.mgr.Epoch(),
		Opts:  c.opts,
	})
	if err != nil {
		return err
	}
	if err := p.conn.WriteFrame(msgHello, 1, body); err != nil {
		return fmt.Errorf("cluster: hello %s: %w", p.addr, err)
	}
	deadline := time.Now().Add(c.cfg.DialTimeout)
	p.raw.SetReadDeadline(deadline)
	defer p.raw.SetReadDeadline(time.Time{})
	for {
		t, _, ackBody, err := p.conn.ReadFrame()
		if err != nil {
			return fmt.Errorf("cluster: handshake %s: %w", p.addr, err)
		}
		switch t {
		case msgHelloAck:
			var ack helloAckMsg
			return decodeGob(ackBody, &ack)
		case msgHeartbeat:
			continue
		default:
			return fmt.Errorf("cluster: handshake %s: unexpected message type %d", p.addr, t)
		}
	}
}

// sendAssign ships the (informative) current shard assignment.
func (c *Coordinator) sendAssign(p *peer) {
	slices := c.mgr.Slices()
	var owned []topo.SwitchID
	c.mu.Lock()
	for _, sl := range slices {
		if c.ring.Owner(sl.Switch) == p.addr {
			owned = append(owned, sl.Switch)
		}
	}
	c.mu.Unlock()
	body, err := encodeGob(&assignMsg{Switches: owned})
	if err != nil {
		return
	}
	p.sendMu.Lock()
	p.conn.WriteFrame(msgAssign, 0, body)
	p.sendMu.Unlock()
}

// Close tears the coordinator down. In-flight windows fail over to
// local execution.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := make([]*peer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	calls := make([]*windowCall, 0, len(c.pending))
	for _, call := range c.pending {
		calls = append(calls, call)
	}
	c.mu.Unlock()
	close(c.stop)
	for _, p := range peers {
		p.raw.Close()
	}
	for _, call := range calls {
		call.fail(fmt.Errorf("cluster: coordinator closed"))
	}
	c.wg.Wait()
	return nil
}

func (c *Coordinator) monitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-c.cfg.HeartbeatTimeout).UnixNano()
			c.mu.Lock()
			var stale []*peer
			for _, p := range c.peers {
				if p.alive && p.lastSeen.Load() < cutoff {
					stale = append(stale, p)
				}
			}
			c.mu.Unlock()
			for _, p := range stale {
				c.evict(p, fmt.Errorf("cluster: heartbeat timeout"))
			}
		}
	}
}

func (c *Coordinator) readLoop(p *peer) {
	defer c.wg.Done()
	// One frame buffer per peer session; every case below decodes
	// (copies) before the next iteration overwrites it.
	var buf []byte
	for {
		t, _, body, err := p.conn.ReadFrameInto(buf)
		if err != nil {
			c.evict(p, err)
			return
		}
		buf = body[:cap(body)]
		p.lastSeen.Store(time.Now().UnixNano())
		switch t {
		case msgHeartbeat:
		case msgVerdict:
			v, err := decodeVerdict(body)
			if err != nil {
				c.evict(p, err)
				return
			}
			c.deliver(v)
		case msgError:
			var e errorMsg
			if err := decodeGob(body, &e); err != nil {
				c.evict(p, err)
				return
			}
			if e.Seq != 0 {
				c.mu.Lock()
				call := c.pending[e.Seq]
				c.mu.Unlock()
				if call != nil {
					call.fail(fmt.Errorf("cluster: node %s: %s", p.addr, e.Text))
				}
			} else {
				// A baseline the node cannot ingest means its replica
				// chain is unusable; evict and let a reconnect resync.
				c.evict(p, fmt.Errorf("cluster: node %s: %s", p.addr, e.Text))
				return
			}
		default:
			c.evict(p, fmt.Errorf("cluster: unexpected message type %d from %s", t, p.addr))
			return
		}
	}
}

// deliver records one verdict's partial results; the call completes
// when every shard has answered.
func (c *Coordinator) deliver(v *verdictMsg) {
	c.mu.Lock()
	call := c.pending[v.Seq]
	c.mu.Unlock()
	if call == nil {
		return // late verdict for a window that already settled
	}
	call.mu.Lock()
	defer call.mu.Unlock()
	if call.settled {
		return
	}
	for _, sh := range v.Shards {
		if _, dup := call.results[sh.Switch]; !dup {
			call.results[sh.Switch] = sh.Res
		}
	}
	if len(call.results) == len(call.shards) {
		call.settled = true
		close(call.done)
	}
}

// evict removes a dead node from the ring and requeues its unanswered
// in-flight shards to the surviving owners.
func (c *Coordinator) evict(p *peer, cause error) {
	c.mu.Lock()
	if !p.alive || c.closed {
		c.mu.Unlock()
		return
	}
	p.alive = false
	c.ring.Remove(p.addr)
	c.evictions++
	calls := make([]*windowCall, 0, len(c.pending))
	for _, call := range c.pending {
		calls = append(calls, call)
	}
	c.mu.Unlock()
	p.raw.Close()
	if c.tel != nil {
		c.tel.Evictions.Inc()
	}
	c.updateGauges()
	for _, call := range calls {
		c.requeue(call, p.addr)
	}
}

// requeue re-dispatches a call's unanswered shards that were owned by
// the dead node. With no capacity left the call fails, which sends
// the window to the coordinator's local engines — same verdict,
// degraded latency.
func (c *Coordinator) requeue(call *windowCall, deadAddr string) {
	call.mu.Lock()
	if call.settled {
		call.mu.Unlock()
		return
	}
	groups := make(map[*peer][]windowShard)
	moved := 0
	for sw, owner := range call.owners {
		if owner != deadAddr {
			continue
		}
		if _, answered := call.results[sw]; answered {
			continue
		}
		c.mu.Lock()
		newOwner := c.ring.Owner(sw)
		p := c.peers[newOwner]
		c.mu.Unlock()
		if newOwner == "" || p == nil || !p.alive {
			call.mu.Unlock()
			call.fail(fmt.Errorf("cluster: no live node for shard %d", sw))
			return
		}
		call.owners[sw] = newOwner
		groups[p] = append(groups[p], call.shards[sw])
		moved++
	}
	call.mu.Unlock()
	if moved == 0 {
		return
	}
	c.mu.Lock()
	c.requeued += uint64(moved)
	c.mu.Unlock()
	if c.tel != nil {
		c.tel.RequeuedShards.Add(uint64(moved))
	}
	for p, shards := range groups {
		if err := c.sendTo(p, call, shards); err != nil {
			c.evict(p, err)
		}
	}
}

// sendTo ships one window's shard group to a node, first bringing the
// node's replica chain for those shards current (full snapshot when
// the base generation moved or the node never held the shard, deltas
// otherwise). Baselines and the window ride the same ordered
// connection, so the node always detects against the right epoch.
func (c *Coordinator) sendTo(p *peer, call *windowCall, shards []windowShard) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	if err := c.syncShardsLocked(p, shards); err != nil {
		return err
	}
	w := &windowMsg{Seq: call.seq, Masked: call.masked, Opts: call.opts, Shards: shards}
	return p.conn.WriteFrame(msgWindow, 0, encodeWindow(w))
}

// syncShardsLocked (caller holds p.sendMu) brings the node current for
// the given shards. Steady state — no churn since the last sync and
// every shard already held — is a single epoch comparison.
func (c *Coordinator) syncShardsLocked(p *peer, shards []windowShard) error {
	cur := c.mgr.Epoch()
	if p.everSynced && p.syncedEpoch == cur {
		missing := false
		for _, sh := range shards {
			if _, ok := p.shards[sh.Switch]; !ok {
				missing = true
				break
			}
		}
		if !missing {
			return nil
		}
	}
	rep := c.mgr.ReplicaStates()
	for _, sh := range shards {
		rs := rep[sh.Switch]
		if rs == nil {
			return fmt.Errorf("cluster: no replica state for shard %d", sh.Switch)
		}
		st, held := p.shards[sh.Switch]
		switch {
		case !held || st.baseEpoch != rs.BaseEpoch || st.nChanges > len(rs.Changes):
			b := baselineMsg{
				Switch:    rs.Switch,
				BaseEpoch: rs.BaseEpoch,
				BaseRows:  rs.BaseRows,
				BaseH:     csrToWire(rs.BaseH),
			}
			for _, ch := range rs.Changes {
				b.Changes = append(b.Changes, toChangeMsg(ch))
			}
			body, err := encodeGob(&b)
			if err != nil {
				return err
			}
			if err := p.conn.WriteFrame(msgBaseline, 0, body); err != nil {
				return err
			}
			p.shards[sh.Switch] = shardSync{baseEpoch: rs.BaseEpoch, nChanges: len(rs.Changes)}
			if c.tel != nil {
				c.tel.BaselineSyncs.With("snapshot").Inc()
			}
		case st.nChanges < len(rs.Changes):
			rk := rank1Msg{Switch: rs.Switch}
			for _, ch := range rs.Changes[st.nChanges:] {
				rk.Changes = append(rk.Changes, toChangeMsg(ch))
			}
			body, err := encodeGob(&rk)
			if err != nil {
				return err
			}
			if err := p.conn.WriteFrame(msgRank1, 0, body); err != nil {
				return err
			}
			p.shards[sh.Switch] = shardSync{baseEpoch: rs.BaseEpoch, nChanges: len(rs.Changes)}
			if c.tel != nil {
				c.tel.BaselineSyncs.With("delta").Inc()
			}
		}
	}
	p.syncedEpoch = cur
	p.everSynced = true
	return nil
}

// DetectWithOptions distributes one clean window — the
// foces.SlicedRunner clean path.
func (c *Coordinator) DetectWithOptions(y []float64, opts core.Options) (core.SlicedOutcome, error) {
	return c.detect(y, nil, opts, false)
}

// DetectMasked distributes one reconciled window; like the local
// engine, an empty mask degenerates to a clean run under the
// construction options.
func (c *Coordinator) DetectMasked(y []float64, masked []int) (core.SlicedOutcome, error) {
	if len(masked) == 0 {
		return c.detect(y, nil, c.opts, false)
	}
	return c.detect(y, masked, core.Options{}, true)
}

func (c *Coordinator) detect(y []float64, masked []int, opts core.Options, isMasked bool) (core.SlicedOutcome, error) {
	t0 := time.Now()
	slices := c.mgr.Slices()
	if space := c.mgr.RuleSpace(); len(y) != space {
		return core.SlicedOutcome{}, fmt.Errorf("cluster: counter vector has %d entries, baseline expects %d", len(y), space)
	}
	maskSet := make(map[int]bool, len(masked))
	for _, rid := range masked {
		maskSet[rid] = true
	}
	// The coordinator gathers per-slice sub-vectors itself — exactly
	// the gather the local SlicedDetector performs — so nodes receive
	// only their shards' share of the window.
	shards := make([]windowShard, len(slices))
	for i, sl := range slices {
		sub := make([]float64, len(sl.RuleRows))
		var local []int
		for j, rid := range sl.RuleRows {
			sub[j] = y[rid]
			if maskSet[rid] {
				local = append(local, j)
			}
		}
		shards[i] = windowShard{Switch: sl.Switch, Sub: sub, Mask: local}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return core.SlicedOutcome{}, fmt.Errorf("cluster: coordinator is closed")
	}
	if c.ring.Size() == 0 {
		c.mu.Unlock()
		return c.localFallback(y, masked, opts, isMasked)
	}
	c.seq++
	call := &windowCall{
		seq:     c.seq,
		masked:  isMasked,
		opts:    opts,
		shards:  make(map[topo.SwitchID]windowShard, len(shards)),
		owners:  make(map[topo.SwitchID]string, len(shards)),
		results: make(map[topo.SwitchID]core.Result, len(shards)),
		done:    make(chan struct{}),
	}
	groups := make(map[*peer][]windowShard)
	ok := true
	for _, sh := range shards {
		owner := c.ring.Owner(sh.Switch)
		p := c.peers[owner]
		if p == nil || !p.alive {
			ok = false
			break
		}
		call.shards[sh.Switch] = sh
		call.owners[sh.Switch] = owner
		groups[p] = append(groups[p], sh)
	}
	if !ok {
		c.mu.Unlock()
		return c.localFallback(y, masked, opts, isMasked)
	}
	c.pending[call.seq] = call
	c.mu.Unlock()

	for p, g := range groups {
		if err := c.sendTo(p, call, g); err != nil {
			c.evict(p, err)
		}
	}

	timer := time.NewTimer(c.cfg.WindowTimeout)
	defer timer.Stop()
	select {
	case <-call.done:
	case <-timer.C:
		call.fail(fmt.Errorf("cluster: window %d timed out", call.seq))
	}
	c.mu.Lock()
	delete(c.pending, call.seq)
	c.mu.Unlock()

	if call.err != nil {
		// Capacity exhausted or a node failed the window: run it on the
		// coordinator's own engines. By the replication invariant this
		// yields the identical outcome.
		return c.localFallback(y, masked, opts, isMasked)
	}
	results := make([]core.Result, len(slices))
	call.mu.Lock()
	for i, sl := range slices {
		results[i] = call.results[sl.Switch]
	}
	call.mu.Unlock()
	out := core.MergeSliceResults(slices, results)
	if c.tel != nil {
		c.tel.WindowSeconds.Observe(time.Since(t0).Seconds())
	}
	return out, nil
}

// localFallback runs a window on the coordinator's own engines — the
// degraded path when no detector capacity is live.
func (c *Coordinator) localFallback(y []float64, masked []int, opts core.Options, isMasked bool) (core.SlicedOutcome, error) {
	if isMasked {
		return c.mgr.Sliced().DetectMasked(y, masked)
	}
	return c.mgr.Sliced().DetectWithOptions(y, opts)
}

// PeerStatus is one node's row in Status.
type PeerStatus struct {
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	Shards int    `json:"shards"`
}

// Status is the coordinator's /status block.
type Status struct {
	Configured     int          `json:"configured"`
	Live           int          `json:"live"`
	Degraded       bool         `json:"degraded"`
	Shards         int          `json:"shards"`
	Evictions      uint64       `json:"evictions"`
	RequeuedShards uint64       `json:"requeuedShards"`
	Peers          []PeerStatus `json:"peers"`
}

// Status snapshots cluster health. Degraded means live capacity has
// dropped below the configured node set (including to zero, where
// windows run locally).
func (c *Coordinator) Status() Status {
	slices := c.mgr.Slices()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Configured:     c.configured,
		Evictions:      c.evictions,
		RequeuedShards: c.requeued,
	}
	owned := make(map[string]int)
	if c.ring.Size() > 0 {
		st.Shards = len(slices)
		for _, sl := range slices {
			owned[c.ring.Owner(sl.Switch)]++
		}
	}
	for _, p := range c.peers {
		if p.alive {
			st.Live++
		}
		st.Peers = append(st.Peers, PeerStatus{Addr: p.addr, Alive: p.alive, Shards: owned[p.addr]})
	}
	st.Degraded = st.Live < st.Configured || st.Live == 0
	return st
}

// updateGauges refreshes the membership gauges after a join or
// eviction.
func (c *Coordinator) updateGauges() {
	if c.tel == nil {
		return
	}
	st := c.Status()
	c.tel.Nodes.Set(float64(st.Live))
	c.tel.Shards.Set(float64(st.Shards))
	if st.Degraded {
		c.tel.Degraded.Set(1)
	} else {
		c.tel.Degraded.Set(0)
	}
}
