package cluster

import (
	"fmt"
	"testing"

	"foces/internal/topo"
)

// TestRingDeterministic pins that shard assignment is a pure function
// of the member set: two rings built over the same members (in any
// insertion order) agree on every shard's owner.
func TestRingDeterministic(t *testing.T) {
	members := []string{"node-a:1", "node-b:2", "node-c:3"}
	r1 := newRing(0)
	for _, m := range members {
		r1.Add(m)
	}
	r2 := newRing(0)
	for i := len(members) - 1; i >= 0; i-- {
		r2.Add(members[i])
	}
	for sw := topo.SwitchID(0); sw < 500; sw++ {
		if o1, o2 := r1.Owner(sw), r2.Owner(sw); o1 != o2 {
			t.Fatalf("switch %d: insertion order changed owner %q vs %q", sw, o1, o2)
		}
	}
}

// TestRingRemovalMovesOnlyDeadShards pins the rebalance bound that
// makes eviction cheap: removing one member reassigns exactly the
// shards it owned, never a survivor's.
func TestRingRemovalMovesOnlyDeadShards(t *testing.T) {
	r := newRing(0)
	members := []string{"node-a:1", "node-b:2", "node-c:3", "node-d:4"}
	for _, m := range members {
		r.Add(m)
	}
	before := make(map[topo.SwitchID]string)
	for sw := topo.SwitchID(0); sw < 500; sw++ {
		before[sw] = r.Owner(sw)
	}
	dead := "node-b:2"
	r.Remove(dead)
	moved := 0
	for sw, owner := range before {
		after := r.Owner(sw)
		if owner == dead {
			if after == dead || after == "" {
				t.Fatalf("switch %d still owned by removed member %q", sw, after)
			}
			moved++
			continue
		}
		if after != owner {
			t.Fatalf("switch %d moved %q -> %q though its owner survived", sw, owner, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no shards — test is vacuous, raise the shard count")
	}
}

// TestRingBalance sanity-checks that virtual nodes spread shards
// across members rather than clumping them on one.
func TestRingBalance(t *testing.T) {
	r := newRing(0)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	counts := make(map[string]int)
	const shards = 1000
	for sw := topo.SwitchID(0); sw < shards; sw++ {
		counts[r.Owner(sw)]++
	}
	for m, c := range counts {
		if c == 0 || c > shards/2 {
			t.Fatalf("member %s owns %d of %d shards — vnode spread is broken", m, c, shards)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own shards", len(counts), n)
	}
}

// TestRingEmpty pins the empty-ring sentinel the coordinator's
// local-fallback path keys on.
func TestRingEmpty(t *testing.T) {
	r := newRing(0)
	if got := r.Owner(7); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
	r.Add("a")
	r.Remove("a")
	if got := r.Owner(7); got != "" {
		t.Fatalf("drained ring returned owner %q", got)
	}
}
