package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"foces/internal/topo"
)

// defaultVNodes is the virtual-node count per member. 64 vnodes keeps
// the shard imbalance between nodes within a few percent for the
// hundreds of per-switch shards a FatTree-scale FCM produces, while
// membership changes stay cheap (the ring is rebuilt from scratch on
// change — member sets are tiny).
const defaultVNodes = 64

// ring is a consistent-hash assignment of per-switch shards to member
// names. Deterministic: the same member set always produces the same
// assignment, and removing a member moves only the shards that hashed
// to its virtual nodes — every other shard keeps its owner, which is
// what bounds the baseline re-shipment a node failure triggers.
type ring struct {
	vnodes  int
	hashes  []uint64          // sorted vnode positions
	owners  map[uint64]string // vnode position -> member
	members map[string]bool
}

func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &ring{vnodes: vnodes, owners: make(map[uint64]string), members: make(map[string]bool)}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a of short,
// near-sequential keys ("switch/17", "addr#3") clusters badly enough
// to leave one member owning half the ring; the finalizer's avalanche
// restores an even spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardKey positions a switch's shard on the ring.
func shardKey(sw topo.SwitchID) uint64 {
	return hash64(fmt.Sprintf("switch/%d", sw))
}

func (r *ring) rebuild() {
	r.hashes = r.hashes[:0]
	for h := range r.owners {
		delete(r.owners, h)
	}
	for m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			h := hash64(fmt.Sprintf("%s#%d", m, i))
			// A full 64-bit collision across members would make ownership
			// map-iteration-order dependent; perturb deterministically.
			for {
				if _, taken := r.owners[h]; !taken {
					break
				}
				h++
			}
			r.owners[h] = m
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

func (r *ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	r.rebuild()
}

func (r *ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	r.rebuild()
}

func (r *ring) Size() int { return len(r.members) }

// Owner returns the member owning a shard ("" when the ring is empty):
// the first virtual node at or clockwise after the shard's position.
func (r *ring) Owner(sw topo.SwitchID) string {
	if len(r.hashes) == 0 {
		return ""
	}
	key := shardKey(sw)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[r.hashes[i]]
}
