package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"foces/internal/churn"
	"foces/internal/core"
	"foces/internal/topo"
	"foces/internal/wire"
)

// NodeConfig tunes a detector node.
type NodeConfig struct {
	// Heartbeat is the interval between heartbeats to the coordinator;
	// zero selects DefaultHeartbeat.
	Heartbeat time.Duration
}

// DefaultHeartbeat is the node heartbeat interval. The coordinator's
// eviction timeout must comfortably exceed it.
const DefaultHeartbeat = 250 * time.Millisecond

// Node is one detector of a sharded cluster: it holds replicated
// per-switch slice engines (kept current by baseline snapshots and
// rank-one deltas from the coordinator) and answers window shards with
// partial verdicts. Windows are processed sequentially in the
// connection's read loop — a node is a fixed unit of detection
// capacity, which is what makes multi-node speedup honest.
//
// A node accepts any number of coordinator connections (a restarted
// coordinator simply reconnects and re-ships whatever it believes the
// node is missing); shard state is shared across connections.
type Node struct {
	ln  net.Listener
	cfg NodeConfig

	mu     sync.Mutex
	opts   core.Options
	shards map[topo.SwitchID]*nodeShard
	conns  map[net.Conn]bool
	closed bool

	wg sync.WaitGroup

	// windowDelay (test hook) delays each window's processing, widening
	// the in-flight window for kill-mid-window tests.
	windowDelay atomic.Int64
	// windowsSeen counts windows processed (test observability).
	windowsSeen atomic.Int64
	// snapshotsSeen / deltasSeen count baseline shipments by kind
	// (test observability for the snapshot-then-delta join contract).
	snapshotsSeen atomic.Int64
	deltasSeen    atomic.Int64
}

// nodeShard is one replicated slice engine and its sync position.
type nodeShard struct {
	baseEpoch uint64
	nChanges  int
	rows      []int
	engine    *core.Detector
}

// NewNode starts a detector node listening on addr (host:port; port 0
// picks a free one — see Addr).
func NewNode(addr string, cfg NodeConfig) (*Node, error) {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node listen: %w", err)
	}
	n := &Node{
		ln:     ln,
		cfg:    cfg,
		shards: make(map[topo.SwitchID]*nodeShard),
		conns:  make(map[net.Conn]bool),
	}
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Shards reports how many slice engines the node currently holds.
func (n *Node) Shards() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.shards)
}

// Close stops the node: the listener and every coordinator connection
// are closed and the serve loops drained.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	err := n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		raw, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			raw.Close()
			return
		}
		n.conns[raw] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serve(raw)
	}
}

func (n *Node) serve(raw net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, raw)
		n.mu.Unlock()
		raw.Close()
	}()
	wc := wire.NewConn(raw, "cluster", Version, maxFrame)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(n.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := wc.WriteFrame(msgHeartbeat, 0, nil); err != nil {
					return
				}
			}
		}
	}()
	// One frame buffer lives for the whole session: handle consumes
	// each body synchronously (the codecs copy what they keep), so the
	// next read may overwrite it.
	var buf []byte
	for {
		t, xid, body, err := wc.ReadFrameInto(buf)
		if err != nil {
			return
		}
		if err := n.handle(wc, t, xid, body); err != nil {
			return
		}
		buf = body[:cap(body)]
	}
}

// handle processes one frame; a returned error tears the connection
// down (protocol violations), while per-message failures are reported
// to the coordinator as msgError and keep the session alive.
func (n *Node) handle(wc *wire.Conn, t byte, xid uint32, body []byte) error {
	switch t {
	case msgHello:
		var h helloMsg
		if err := decodeGob(body, &h); err != nil {
			return err
		}
		if h.Proto != protoName {
			return fmt.Errorf("cluster: handshake for protocol %q", h.Proto)
		}
		n.mu.Lock()
		n.opts = h.Opts
		n.mu.Unlock()
		ack, err := encodeGob(&helloAckMsg{Node: n.Addr()})
		if err != nil {
			return err
		}
		return wc.WriteFrame(msgHelloAck, xid, ack)

	case msgAssign:
		return nil // informative; authoritative state arrives as baselines

	case msgBaseline:
		var b baselineMsg
		if err := decodeGob(body, &b); err != nil {
			return err
		}
		if err := n.installBaseline(&b); err != nil {
			return n.sendError(wc, 0, err)
		}
		n.snapshotsSeen.Add(1)
		return nil

	case msgRank1:
		var rk rank1Msg
		if err := decodeGob(body, &rk); err != nil {
			return err
		}
		if err := n.applyRank1(&rk); err != nil {
			return n.sendError(wc, 0, err)
		}
		n.deltasSeen.Add(int64(len(rk.Changes)))
		return nil

	case msgWindow:
		w, err := decodeWindow(body)
		if err != nil {
			return err
		}
		if d := n.windowDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		v, err := n.runWindow(w)
		if err != nil {
			return n.sendError(wc, w.Seq, err)
		}
		n.windowsSeen.Add(1)
		return wc.WriteFrame(msgVerdict, 0, encodeVerdict(v))

	case msgHeartbeat:
		return nil

	default:
		return fmt.Errorf("cluster: node received unexpected message type %d", t)
	}
}

func (n *Node) sendError(wc *wire.Conn, seq uint64, cause error) error {
	body, err := encodeGob(&errorMsg{Seq: seq, Text: cause.Error()})
	if err != nil {
		return err
	}
	return wc.WriteFrame(msgError, 0, body)
}

// installBaseline replaces one shard from a full snapshot: refactor
// the base H and replay the shipped changes in order — the manager's
// exact factor lifecycle, so the engine is bitwise identical to the
// coordinator's serving engine.
func (n *Node) installBaseline(b *baselineMsg) error {
	h, err := wireToCSR(b.BaseH)
	if err != nil {
		return fmt.Errorf("cluster: baseline switch %d: %w", b.Switch, err)
	}
	rs := &churn.ReplicaState{
		Switch:    b.Switch,
		BaseEpoch: b.BaseEpoch,
		BaseRows:  b.BaseRows,
		BaseH:     h,
	}
	for _, ch := range b.Changes {
		rs.Changes = append(rs.Changes, fromChangeMsg(ch))
	}
	n.mu.Lock()
	opts := n.opts
	n.mu.Unlock()
	eng, rows, err := churn.ReplayReplica(rs, opts)
	if err != nil {
		return fmt.Errorf("cluster: baseline switch %d: %w", b.Switch, err)
	}
	n.mu.Lock()
	n.shards[b.Switch] = &nodeShard{
		baseEpoch: b.BaseEpoch,
		nChanges:  len(rs.Changes),
		rows:      rows,
		engine:    eng,
	}
	n.mu.Unlock()
	return nil
}

// applyRank1 advances one shard by incremental deltas.
func (n *Node) applyRank1(rk *rank1Msg) error {
	n.mu.Lock()
	s := n.shards[rk.Switch]
	opts := n.opts
	n.mu.Unlock()
	if s == nil {
		return fmt.Errorf("cluster: rank-one delta for unknown shard %d (need a baseline first)", rk.Switch)
	}
	eng, rows := s.engine, s.rows
	applied := 0
	for _, chm := range rk.Changes {
		var err error
		eng, rows, err = churn.ReplayChange(eng, rows, fromChangeMsg(chm), opts)
		if err != nil {
			return fmt.Errorf("cluster: shard %d delta at epoch %d: %w", rk.Switch, chm.Epoch, err)
		}
		applied++
	}
	n.mu.Lock()
	n.shards[rk.Switch] = &nodeShard{
		baseEpoch: s.baseEpoch,
		nChanges:  s.nChanges + applied,
		rows:      rows,
		engine:    eng,
	}
	n.mu.Unlock()
	return nil
}

// runWindow executes one window's shards against the local engines.
// The coordinator already gathered each shard's counter sub-vector
// and slice-local mask, so this is pure prepared-engine work — the
// same calls the local SlicedDetector would make for these slices.
func (n *Node) runWindow(w *windowMsg) (*verdictMsg, error) {
	v := &verdictMsg{Seq: w.Seq}
	for _, sh := range w.Shards {
		n.mu.Lock()
		s := n.shards[sh.Switch]
		n.mu.Unlock()
		if s == nil {
			return nil, fmt.Errorf("cluster: window names shard %d this node does not hold", sh.Switch)
		}
		var res core.Result
		var err error
		if w.Masked {
			res, err = s.engine.DetectMasked(sh.Sub, sh.Mask)
		} else {
			res, err = s.engine.DetectWithOptions(sh.Sub, w.Opts)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", sh.Switch, err)
		}
		v.Shards = append(v.Shards, verdictShard{Switch: sh.Switch, Res: res})
	}
	return v, nil
}

// SetWindowDelay (test hook) makes every subsequent window take at
// least d, widening the in-flight window for failure-injection tests.
func (n *Node) SetWindowDelay(d time.Duration) { n.windowDelay.Store(int64(d)) }

// WindowsProcessed reports how many window messages this node has
// answered.
func (n *Node) WindowsProcessed() int64 { return n.windowsSeen.Load() }

// SyncCounts reports how many baseline snapshots and individual
// rank-one deltas the node has ingested — the observable half of the
// snapshot-then-delta replication contract.
func (n *Node) SyncCounts() (snapshots, deltas int64) {
	return n.snapshotsSeen.Load(), n.deltasSeen.Load()
}
