package cluster

import (
	"testing"
	"time"

	"foces/internal/churn"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

// harness is one in-process cluster test fixture: a seeded controller
// and churn manager (the coordinator side's baseline) plus helpers to
// drive churn and traffic.
type harness struct {
	t     *testing.T
	topol *topo.Topology
	ctrl  *controller.Controller
	mgr   *churn.Manager
	batch []controller.RuleChange
}

func newHarness(t *testing.T, swn, hostsPer int) *harness {
	t.Helper()
	topol, err := topo.Linear(swn, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(topol, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ComputeRules(); err != nil {
		t.Fatal(err)
	}
	mgr, err := churn.NewManager(topol, layout, ctrl.Rules(), ctrl.RuleSpace(), core.Options{}, churn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, topol: topol, ctrl: ctrl, mgr: mgr}
	ctrl.SetChangeObserver(func(ch []controller.RuleChange) { h.batch = append(h.batch, ch...) })
	return h
}

// phantomIP returns an exact-match source IP no host owns: rules
// matching it capture no traffic, so adding one changes a slice's row
// set but no flow class — the rank-one (delta) churn disposition.
func (h *harness) phantomIP() uint64 {
	ip := uint64(0)
	for _, host := range h.topol.Hosts() {
		if host.IP >= ip {
			ip = host.IP + 1
		}
	}
	return ip
}

// addPhantomRule drives one rank-one churn epoch through the manager.
func (h *harness) addPhantomRule(sw topo.SwitchID, prio int) churn.Update {
	h.t.Helper()
	h.batch = h.batch[:0]
	match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.phantomIP())
	if err != nil {
		h.t.Fatal(err)
	}
	if _, err := h.ctrl.AddRule(sw, prio, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
		h.t.Fatal(err)
	}
	u, err := h.mgr.Apply(append([]controller.RuleChange(nil), h.batch...))
	if err != nil {
		h.t.Fatal(err)
	}
	return u
}

// addReroutingRule drives a refactoring churn epoch: a source-pinned
// drop reroutes a host's traffic, so affected slices rebuild from a
// fresh base (the full-snapshot fallback on the wire).
func (h *harness) addReroutingRule(sw topo.SwitchID, prio int) churn.Update {
	h.t.Helper()
	h.batch = h.batch[:0]
	host := h.topol.Hosts()[0]
	match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, host.IP)
	if err != nil {
		h.t.Fatal(err)
	}
	if _, err := h.ctrl.AddRule(sw, prio, match, flowtable.Action{Type: flowtable.ActionDrop}); err != nil {
		h.t.Fatal(err)
	}
	u, err := h.mgr.Apply(append([]controller.RuleChange(nil), h.batch...))
	if err != nil {
		h.t.Fatal(err)
	}
	return u
}

// cleanVector is the expected counter vector under distinct per-pair
// volumes — a clean window.
func (h *harness) cleanVector() []float64 {
	h.t.Helper()
	vol := make(map[fcm.Pair]uint64)
	for _, a := range h.topol.Hosts() {
		for _, b := range h.topol.Hosts() {
			if a.ID != b.ID {
				vol[fcm.Pair{Src: a.ID, Dst: b.ID}] = 100 + 13*uint64(a.ID) + 7*uint64(b.ID)
			}
		}
	}
	y, err := h.mgr.FCM().ExpectedCounters(vol)
	if err != nil {
		h.t.Fatal(err)
	}
	return y
}

// anomalousVector perturbs the first real counter — a forwarding
// anomaly every slice-level detector must flag identically.
func (h *harness) anomalousVector() []float64 {
	h.t.Helper()
	y := h.cleanVector()
	for i := range y {
		if y[i] > 0 && !h.mgr.FCM().IsPlaceholder(i) {
			y[i] *= 3
			break
		}
	}
	return y
}

// startNodes brings up n detector nodes on loopback.
func startNodes(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := NewNode("127.0.0.1:0", NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		t.Cleanup(func() { nd.Close() })
	}
	return nodes
}

func startCoordinator(t *testing.T, h *harness, nodes []*Node) *Coordinator {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	c, err := New(h.mgr, core.Options{}, Config{Peers: addrs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// assertOutcomeIdentical requires bit-level equality — every scalar
// and every float of every per-switch vector — between a distributed
// outcome and the local SlicedDetector's.
func assertOutcomeIdentical(t *testing.T, label string, got, want core.SlicedOutcome) {
	t.Helper()
	if got.Anomalous != want.Anomalous {
		t.Fatalf("%s: verdict %v, local run says %v", label, got.Anomalous, want.Anomalous)
	}
	if len(got.Suspects) != len(want.Suspects) {
		t.Fatalf("%s: %d suspects vs %d", label, len(got.Suspects), len(want.Suspects))
	}
	for i := range got.Suspects {
		if got.Suspects[i] != want.Suspects[i] {
			t.Fatalf("%s: suspect %d is switch %d, local run ranked %d", label, i, got.Suspects[i], want.Suspects[i])
		}
	}
	if len(got.PerSwitch) != len(want.PerSwitch) {
		t.Fatalf("%s: %d per-switch results vs %d", label, len(got.PerSwitch), len(want.PerSwitch))
	}
	for i := range got.PerSwitch {
		g, w := got.PerSwitch[i], want.PerSwitch[i]
		if g.Switch != w.Switch {
			t.Fatalf("%s: slice %d is switch %d, local run has %d", label, i, g.Switch, w.Switch)
		}
		if g.Result.Anomalous != w.Result.Anomalous || g.Result.Index != w.Result.Index ||
			g.Result.ErrMax != w.Result.ErrMax || g.Result.ErrMed != w.Result.ErrMed {
			t.Fatalf("%s: switch %d scalar drift: got {anom=%v idx=%v max=%v med=%v} want {anom=%v idx=%v max=%v med=%v}",
				label, g.Switch, g.Result.Anomalous, g.Result.Index, g.Result.ErrMax, g.Result.ErrMed,
				w.Result.Anomalous, w.Result.Index, w.Result.ErrMax, w.Result.ErrMed)
		}
		vecs := [][2][]float64{
			{g.Result.Delta, w.Result.Delta},
			{g.Result.XHat, w.Result.XHat},
			{g.Result.YHat, w.Result.YHat},
		}
		for vi, pair := range vecs {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("%s: switch %d vector %d length %d vs %d", label, g.Switch, vi, len(pair[0]), len(pair[1]))
			}
			for k := range pair[0] {
				if pair[0][k] != pair[1][k] {
					t.Fatalf("%s: switch %d vector %d entry %d: %v != %v (not bitwise identical)",
						label, g.Switch, vi, k, pair[0][k], pair[1][k])
				}
			}
		}
	}
}

// checkWindow runs one clean/anomalous/masked window triple through
// the cluster and requires bitwise identity with the local engines.
func checkWindow(t *testing.T, label string, h *harness, c *Coordinator) {
	t.Helper()
	local := h.mgr.Sliced()
	for _, w := range []struct {
		name string
		y    []float64
	}{
		{"clean", h.cleanVector()},
		{"anomalous", h.anomalousVector()},
	} {
		got, err := c.DetectWithOptions(w.y, core.Options{})
		if err != nil {
			t.Fatalf("%s/%s: cluster detect: %v", label, w.name, err)
		}
		want, err := local.DetectWithOptions(w.y, core.Options{})
		if err != nil {
			t.Fatalf("%s/%s: local detect: %v", label, w.name, err)
		}
		assertOutcomeIdentical(t, label+"/"+w.name, got, want)
	}
	// Masked (reconciled) window: mask a couple of global rule rows and
	// compare against the local masked path, which always detects under
	// construction options.
	slices := h.mgr.Slices()
	masked := []int{slices[0].RuleRows[0]}
	if len(slices) > 1 {
		masked = append(masked, slices[len(slices)-1].RuleRows[0])
	}
	y := h.cleanVector()
	got, err := c.DetectMasked(y, masked)
	if err != nil {
		t.Fatalf("%s/masked: cluster detect: %v", label, err)
	}
	want, err := local.DetectMasked(y, masked)
	if err != nil {
		t.Fatalf("%s/masked: local detect: %v", label, err)
	}
	assertOutcomeIdentical(t, label+"/masked", got, want)
}

// TestClusterVerdictIdentical is the tentpole acceptance at package
// scope: a 3-node cluster's merged verdicts are bitwise identical to a
// single-process sliced run — cold, and again after rank-one and
// refactoring churn epochs, on clean, anomalous and masked windows.
func TestClusterVerdictIdentical(t *testing.T) {
	h := newHarness(t, 4, 2)
	nodes := startNodes(t, 3)
	c := startCoordinator(t, h, nodes)

	checkWindow(t, "cold", h, c)

	var snaps int64
	for _, nd := range nodes {
		s, _ := nd.SyncCounts()
		snaps += s
	}
	if want := int64(len(h.mgr.Slices())); snaps != want {
		t.Fatalf("cold sync shipped %d snapshots for %d shards", snaps, want)
	}

	// Rank-one epoch: steady-state replication must ship deltas, not
	// fresh snapshots.
	if u := h.addPhantomRule(h.topol.Switches()[0].ID, 1); u.SlicesUpdated == 0 {
		t.Fatalf("phantom rule did not exercise the rank-one path: %+v", u)
	}
	checkWindow(t, "after-delta", h, c)
	var deltas int64
	snapsAfter := int64(0)
	for _, nd := range nodes {
		s, d := nd.SyncCounts()
		snapsAfter += s
		deltas += d
	}
	if snapsAfter != snaps {
		t.Fatalf("rank-one epoch triggered %d fresh snapshots", snapsAfter-snaps)
	}
	if deltas == 0 {
		t.Fatal("rank-one epoch shipped no incremental deltas")
	}

	// Refactoring epoch: affected shards fall back to full snapshots.
	if u := h.addReroutingRule(h.topol.Switches()[1].ID, 900); u.SlicesRefactored == 0 {
		t.Fatalf("rerouting rule did not refactor any slice: %+v", u)
	}
	checkWindow(t, "after-refactor", h, c)
	var snapsFinal int64
	for _, nd := range nodes {
		s, _ := nd.SyncCounts()
		snapsFinal += s
	}
	if snapsFinal == snapsAfter {
		t.Fatal("refactoring epoch shipped no fresh snapshot")
	}

	st := c.Status()
	if st.Degraded || st.Live != 3 || st.Shards != len(h.mgr.Slices()) {
		t.Fatalf("healthy cluster reports %+v", st)
	}
}

// TestClusterNodeJoinMidEpoch pins the join contract: a node added
// after several churn epochs catches up with one full snapshot per
// owned shard (never a delta replay from nowhere), verdicts stay
// identical, and subsequent epochs reach it incrementally.
func TestClusterNodeJoinMidEpoch(t *testing.T) {
	h := newHarness(t, 4, 2)
	nodes := startNodes(t, 2)
	c := startCoordinator(t, h, nodes)

	checkWindow(t, "pre-join", h, c)
	h.addPhantomRule(h.topol.Switches()[0].ID, 1)
	h.addPhantomRule(h.topol.Switches()[2].ID, 2)
	checkWindow(t, "pre-join-churn", h, c)

	// Shard ownership is a hash of the joiner's (ephemeral) address, so
	// pick a listener whose address will own at least one shard and at
	// least one rank-one churn target — simulated on a scratch ring,
	// which is a pure function of the member set.
	var joiner *Node
	var ownedSwitch topo.SwitchID
	for attempt := 0; attempt < 32 && joiner == nil; attempt++ {
		nd, err := NewNode("127.0.0.1:0", NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sim := newRing(0)
		for _, existing := range nodes {
			sim.Add(existing.Addr())
		}
		sim.Add(nd.Addr())
		for _, sl := range h.mgr.Slices() {
			if sim.Owner(sl.Switch) == nd.Addr() {
				joiner = nd
				ownedSwitch = sl.Switch
				break
			}
		}
		if joiner == nil {
			nd.Close()
		}
	}
	if joiner == nil {
		t.Fatal("no candidate joiner address owned a shard in 32 attempts")
	}
	t.Cleanup(func() { joiner.Close() })
	if err := c.AddPeer(joiner.Addr()); err != nil {
		t.Fatal(err)
	}
	checkWindow(t, "post-join", h, c)

	snaps, deltas := joiner.SyncCounts()
	if snaps == 0 {
		t.Fatal("joining node was never shipped a baseline snapshot")
	}
	if deltas != 0 {
		t.Fatalf("joining node received %d deltas before holding a base", deltas)
	}
	if joiner.Shards() == 0 {
		t.Fatal("joining node owns no shards — ring did not rebalance")
	}

	// The next rank-one epoch — on a switch whose shard the joiner owns
	// — must reach it as a delta on the snapshot it just installed.
	if u := h.addPhantomRule(ownedSwitch, 3); u.SlicesUpdated == 0 {
		t.Fatalf("phantom rule did not exercise the rank-one path: %+v", u)
	}
	checkWindow(t, "post-join-churn", h, c)
	snaps2, deltas2 := joiner.SyncCounts()
	if snaps2 != snaps {
		t.Fatalf("post-join epoch re-shipped %d snapshots to the joiner", snaps2-snaps)
	}
	if deltas2 == 0 {
		t.Fatal("post-join epoch shipped the joiner no delta")
	}

	if st := c.Status(); st.Live != 3 || st.Configured != 3 || st.Degraded {
		t.Fatalf("after join, status %+v", st)
	}
}

// TestClusterNodeDeathMidWindow kills a node while it holds in-flight
// shards of a dispatched window and requires the coordinator to
// requeue them to survivors and still produce the bitwise-identical
// merged verdict.
func TestClusterNodeDeathMidWindow(t *testing.T) {
	h := newHarness(t, 4, 2)
	nodes := startNodes(t, 3)
	c := startCoordinator(t, h, nodes)

	// Warm sync so the kill exercises requeue, not cold shipment.
	checkWindow(t, "warm", h, c)

	// Pick a victim that owns at least one shard.
	byAddr := make(map[string]*Node)
	for _, nd := range nodes {
		byAddr[nd.Addr()] = nd
	}
	var victim *Node
	for _, ps := range c.Status().Peers {
		if ps.Shards > 0 {
			victim = byAddr[ps.Addr]
			break
		}
	}
	if victim == nil {
		t.Fatal("no peer owns a shard")
	}
	victim.SetWindowDelay(400 * time.Millisecond)

	y := h.anomalousVector()
	want, err := h.mgr.Sliced().DetectWithOptions(y, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		out core.SlicedOutcome
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		out, err := c.DetectWithOptions(y, core.Options{})
		res <- outcome{out, err}
	}()
	time.Sleep(100 * time.Millisecond)
	victim.Close()
	got := <-res
	if got.err != nil {
		t.Fatalf("window across node death: %v", got.err)
	}
	assertOutcomeIdentical(t, "node-death", got.out, want)

	st := c.Status()
	if !st.Degraded || st.Live != 2 || st.Evictions == 0 {
		t.Fatalf("after node death, status %+v", st)
	}

	// The shrunken cluster keeps serving identical verdicts.
	checkWindow(t, "post-death", h, c)
}

// TestClusterCoordinatorRestart pins recovery on the coordinator side:
// a fresh coordinator over the same baseline (rebuilt from the churn
// epoch log it owns) reconnects to the surviving nodes with empty sync
// bookkeeping, re-ships what they need, and serves identical verdicts.
func TestClusterCoordinatorRestart(t *testing.T) {
	h := newHarness(t, 4, 2)
	nodes := startNodes(t, 3)

	c1 := startCoordinator(t, h, nodes)
	checkWindow(t, "first-life", h, c1)
	h.addPhantomRule(h.topol.Switches()[0].ID, 1)
	checkWindow(t, "first-life-churn", h, c1)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := startCoordinator(t, h, nodes)
	checkWindow(t, "second-life", h, c2)
	if st := c2.Status(); st.Live != 3 || st.Degraded {
		t.Fatalf("restarted coordinator status %+v", st)
	}
}

// TestClusterLocalFallback pins the zero-capacity degraded mode: with
// every node dead the coordinator still answers windows (locally) with
// the identical outcome and flags itself degraded.
func TestClusterLocalFallback(t *testing.T) {
	h := newHarness(t, 3, 2)
	nodes := startNodes(t, 2)
	c := startCoordinator(t, h, nodes)
	checkWindow(t, "healthy", h, c)

	for _, nd := range nodes {
		nd.Close()
	}
	// Evictions land asynchronously (read-loop error or heartbeat
	// timeout); windows are correct throughout either way.
	checkWindow(t, "all-dead", h, c)

	deadline := time.After(5 * time.Second)
	for {
		if st := c.Status(); st.Live == 0 && st.Degraded {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("coordinator never noticed both nodes died: %+v", c.Status())
		case <-time.After(10 * time.Millisecond):
		}
	}
	checkWindow(t, "degraded", h, c)
}
