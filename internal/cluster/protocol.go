package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"foces/internal/churn"
	"foces/internal/core"
	"foces/internal/matrix"
	"foces/internal/topo"
)

// Wire protocol version and frame cap, layered on the shared
// length-prefix framing (internal/wire). A full baseline snapshot of a
// large slice is the biggest message; 64 MiB comfortably covers
// FatTree(16)-scale slices while still bounding a corrupt length
// prefix.
const (
	Version  = 1
	maxFrame = 64 << 20
)

// Message types. Control messages (hello through rank1, error) are
// infrequent and gob-encoded; the per-window hot path (window,
// verdict) uses hand-rolled big-endian encoding so serialization
// cannot dominate the detection work it ships.
const (
	msgHello byte = iota + 1
	msgHelloAck
	msgAssign
	msgBaseline
	msgRank1
	msgWindow
	msgVerdict
	msgHeartbeat
	msgError
)

// protoName is the handshake guard: a HELLO carrying anything else is
// refused, so a stray OpenFlow client cannot confuse a detector node.
const protoName = "foces-cluster"

// helloMsg opens a coordinator→node session: protocol check plus the
// detection options every replicated engine must be constructed with
// (construction options are baked into masked detection, so the two
// sides must agree on them or verdicts diverge).
type helloMsg struct {
	Proto string
	Space int // rule space (full counter-vector length), informative
	Epoch uint64
	Opts  core.Options
}

// helloAckMsg is the node's reply.
type helloAckMsg struct {
	Node string // listen address, for logs and /status
}

// assignMsg tells a node which switches the coordinator's ring
// currently maps to it. Informative: authoritative state arrives as
// baselines, and windows name their shards explicitly.
type assignMsg struct {
	Switches []topo.SwitchID
}

// wireCSR is a CSR matrix in shippable form (triplets, row-major).
type wireCSR struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Vals       []float64
}

func csrToWire(h *matrix.CSR) wireCSR {
	w := wireCSR{Rows: h.Rows(), Cols: h.Cols()}
	for i := 0; i < h.Rows(); i++ {
		h.RowEntries(i, func(col int, v float64) {
			w.RowIdx = append(w.RowIdx, int32(i))
			w.ColIdx = append(w.ColIdx, int32(col))
			w.Vals = append(w.Vals, v)
		})
	}
	return w
}

func wireToCSR(w wireCSR) (*matrix.CSR, error) {
	entries := make([]matrix.Triplet, len(w.Vals))
	for k := range w.Vals {
		entries[k] = matrix.Triplet{Row: int(w.RowIdx[k]), Col: int(w.ColIdx[k]), Val: w.Vals[k]}
	}
	return matrix.NewCSR(w.Rows, w.Cols, entries)
}

// rowVecMsg / changeMsg mirror churn.RowVec / churn.SliceChange.
type rowVecMsg struct {
	RuleID int
	Cols   []int
	Vals   []float64
}

type changeMsg struct {
	Epoch   uint64
	Removed []rowVecMsg
	Added   []rowVecMsg
}

func toChangeMsg(ch churn.SliceChange) changeMsg {
	conv := func(rvs []churn.RowVec) []rowVecMsg {
		out := make([]rowVecMsg, len(rvs))
		for i, rv := range rvs {
			out[i] = rowVecMsg{RuleID: rv.RuleID, Cols: rv.Cols, Vals: rv.Vals}
		}
		return out
	}
	return changeMsg{Epoch: ch.Epoch, Removed: conv(ch.Removed), Added: conv(ch.Added)}
}

func fromChangeMsg(ch changeMsg) churn.SliceChange {
	conv := func(rvs []rowVecMsg) []churn.RowVec {
		out := make([]churn.RowVec, len(rvs))
		for i, rv := range rvs {
			out[i] = churn.RowVec{RuleID: rv.RuleID, Cols: rv.Cols, Vals: rv.Vals}
		}
		return out
	}
	return churn.SliceChange{Epoch: ch.Epoch, Removed: conv(ch.Removed), Added: conv(ch.Added)}
}

// baselineMsg is a full-snapshot shipment of one slice's replication
// state: the base generation plus the rank-one changes already applied
// on top of it. The node refactors the base and replays the changes in
// order — the manager's exact factor lifecycle.
type baselineMsg struct {
	Switch    topo.SwitchID
	BaseEpoch uint64
	BaseRows  []int
	BaseH     wireCSR
	Changes   []changeMsg
}

// rank1Msg ships incremental rank-one deltas for a slice whose base
// the node already holds.
type rank1Msg struct {
	Switch  topo.SwitchID
	Changes []changeMsg
}

// errorMsg reports a node-side failure for a window (Seq != 0) or for
// baseline ingestion (Seq == 0).
type errorMsg struct {
	Seq  uint64
	Text string
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("cluster: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(body []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode: %w", err)
	}
	return nil
}

// windowShard is one slice's share of a detection window: the
// coordinator-gathered counter sub-vector and (masked windows) the
// slice-local indices to mask. Shipping sub-vectors instead of the
// full y splits gather and serialization cost across nodes and leaves
// the node nothing to do but run its prepared engine.
type windowShard struct {
	Switch topo.SwitchID
	Sub    []float64
	Mask   []int
}

// windowMsg is one dispatched window (or requeued remnant of one).
// Clean windows carry the caller's unresolved detection options —
// each slice engine resolves defaults against its own sub-vector,
// exactly as the local SlicedDetector does; masked windows always use
// construction options, so none are shipped.
type windowMsg struct {
	Seq    uint64
	Masked bool
	Opts   core.Options
	Shards []windowShard
}

// verdictShard is one slice's detection result.
type verdictShard struct {
	Switch topo.SwitchID
	Res    core.Result
}

// verdictMsg answers a windowMsg.
type verdictMsg struct {
	Seq    uint64
	Shards []verdictShard
}

// Binary codec helpers. All integers big-endian; floats as raw IEEE
// 754 bits, so ±Inf and every ulp survive the trip — verdict identity
// with a local run is bit-level, not approximate.

type bwriter struct{ b []byte }

func (w *bwriter) u8(v byte)     { w.b = append(w.b, v) }
func (w *bwriter) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *bwriter) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *bwriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *bwriter) floats(vs []float64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}
func (w *bwriter) ints(vs []int) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(uint32(v))
	}
}

type breader struct {
	b   []byte
	err error
}

func (r *breader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *breader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *breader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *breader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *breader) floats() []float64 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 8*n {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *breader) ints() []int {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 4*n {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.u32())
	}
	return out
}

func (r *breader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: truncated binary payload")
	}
}

func encodeWindow(w *windowMsg) []byte {
	var bw bwriter
	bw.u64(w.Seq)
	if w.Masked {
		bw.u8(1)
	} else {
		bw.u8(0)
	}
	bw.f64(w.Opts.Threshold)
	bw.u32(uint32(w.Opts.Solver))
	bw.f64(w.Opts.ZeroTol)
	bw.u32(uint32(w.Opts.Denominator))
	bw.u32(uint32(len(w.Shards)))
	for _, sh := range w.Shards {
		bw.u64(uint64(sh.Switch))
		bw.floats(sh.Sub)
		bw.ints(sh.Mask)
	}
	return bw.b
}

func decodeWindow(body []byte) (*windowMsg, error) {
	r := breader{b: body}
	w := &windowMsg{Seq: r.u64(), Masked: r.u8() == 1}
	w.Opts.Threshold = r.f64()
	w.Opts.Solver = core.Solver(r.u32())
	w.Opts.ZeroTol = r.f64()
	w.Opts.Denominator = core.Denominator(r.u32())
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		w.Shards = append(w.Shards, windowShard{
			Switch: topo.SwitchID(r.u64()),
			Sub:    r.floats(),
			Mask:   r.ints(),
		})
	}
	if r.err != nil {
		return nil, fmt.Errorf("cluster: window: %w", r.err)
	}
	return w, nil
}

func encodeVerdict(v *verdictMsg) []byte {
	var bw bwriter
	bw.u64(v.Seq)
	bw.u32(uint32(len(v.Shards)))
	for _, sh := range v.Shards {
		bw.u64(uint64(sh.Switch))
		if sh.Res.Anomalous {
			bw.u8(1)
		} else {
			bw.u8(0)
		}
		bw.f64(sh.Res.Index)
		bw.f64(sh.Res.ErrMax)
		bw.f64(sh.Res.ErrMed)
		bw.floats(sh.Res.Delta)
		bw.floats(sh.Res.XHat)
		bw.floats(sh.Res.YHat)
	}
	return bw.b
}

func decodeVerdict(body []byte) (*verdictMsg, error) {
	r := breader{b: body}
	v := &verdictMsg{Seq: r.u64()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		sh := verdictShard{Switch: topo.SwitchID(r.u64())}
		sh.Res.Anomalous = r.u8() == 1
		sh.Res.Index = r.f64()
		sh.Res.ErrMax = r.f64()
		sh.Res.ErrMed = r.f64()
		sh.Res.Delta = r.floats()
		sh.Res.XHat = r.floats()
		sh.Res.YHat = r.floats()
		v.Shards = append(v.Shards, sh)
	}
	if r.err != nil {
		return nil, fmt.Errorf("cluster: verdict: %w", r.err)
	}
	return v, nil
}
