// Package stats provides the statistical machinery behind FOCES'
// threshold-based detector and its evaluation: folded-normal noise
// modelling (used in §IV-A to derive the default threshold 4.5),
// order statistics for the anomaly index, ROC curves, and confusion
// metrics for Experiments 2-4.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by order statistics over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Median computes the median of xs without mutating it. For even
// lengths it returns the mean of the two central elements.
func Median(xs []float64) (float64, error) {
	return MedianInto(make([]float64, len(xs)), xs)
}

// MedianInto computes the median of xs like Median, but partitions a
// copy of xs inside scratch (grown if shorter than xs) by quickselect
// instead of a full sort — O(n) expected instead of O(n log n), with
// zero allocation when the caller reuses scratch across periods. xs is
// never mutated; scratch is.
func MedianInto(scratch, xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(scratch) < len(xs) {
		scratch = make([]float64, len(xs))
	}
	s := scratch[:len(xs)]
	copy(s, xs)
	mid := len(s) / 2
	quickselect(s, mid)
	if len(s)%2 == 1 {
		return s[mid], nil
	}
	// After selection everything left of mid is <= s[mid]; the lower
	// central element is the maximum of that partition.
	lower := s[0]
	for _, v := range s[1:mid] {
		if v > lower {
			lower = v
		}
	}
	return (lower + s[mid]) / 2, nil
}

// quickselect partially sorts s so that s[k] holds the k-th smallest
// element, everything before it is <= s[k] and everything after is
// >= s[k]. Median-of-three pivoting keeps the common sorted/reversed
// inputs at O(n) without randomness.
func quickselect(s []float64, k int) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot moved to hi.
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[mid] < s[hi] {
			s[mid], s[hi] = s[hi], s[mid]
		}
		pivot := s[hi]
		// Lomuto partition.
		p := lo
		for i := lo; i < hi; i++ {
			if s[i] < pivot {
				s[i], s[p] = s[p], s[i]
				p++
			}
		}
		s[p], s[hi] = s[hi], s[p]
		switch {
		case k == p:
			return
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	mu, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range xs {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// FoldedNormalCDF evaluates the CDF of |N(0, σ²)| at x >= 0:
// F(x) = erf(x / sqrt(2σ²)). This models an error-vector entry when the
// observed counter Y'(i) ~ N(Y0(i), σ²) (§IV-A).
func FoldedNormalCDF(x, sigma float64) float64 {
	if sigma <= 0 {
		if x >= 0 {
			return 1
		}
		return 0
	}
	if x < 0 {
		return 0
	}
	return math.Erf(x / (sigma * math.Sqrt2))
}

// FoldedNormalMedian returns the median of |N(0, σ²)|:
// sqrt(2)·erfinv(1/2)·σ ≈ 0.6745σ.
func FoldedNormalMedian(sigma float64) float64 {
	return math.Sqrt2 * math.Erfinv(0.5) * sigma
}

// DeriveThreshold reproduces the paper's threshold derivation: by the
// three-sigma rule Err_max <= 3σ with probability 0.997 while
// Err_med ≈ 0.675σ, so AI = Err_max/Err_med stays below ≈ 4.45 under
// pure noise. The sigma cancels; the function takes none.
func DeriveThreshold() float64 {
	return 3 / FoldedNormalMedian(1)
}

// DefaultThreshold is the paper's default detection threshold T = 4.5,
// chosen just above DeriveThreshold() ≈ 4.45.
const DefaultThreshold = 4.5

// Sample pairs a detector score with the ground-truth label of the
// observation (Positive = a forwarding anomaly was actually present).
type Sample struct {
	Score    float64
	Positive bool
}

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Evaluate classifies each sample as positive when Score > threshold
// and tallies the confusion matrix.
func Evaluate(samples []Sample, threshold float64) Confusion {
	var c Confusion
	for _, s := range samples {
		flagged := s.Score > threshold
		switch {
		case flagged && s.Positive:
			c.TP++
		case flagged && !s.Positive:
			c.FP++
		case !flagged && s.Positive:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// TPR returns the true-positive rate TP/(TP+FN); NaN-free (0 when
// undefined).
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// FPR returns the false-positive rate FP/(FP+TN).
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// Precision returns TP/(TP+FP), the metric of Experiment 3 (Fig 9).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Accuracy returns (TP+TN)/(P+N), the metric of Experiment 4 (Fig 10).
func (c Confusion) Accuracy() float64 {
	return ratio(c.TP+c.TN, c.TP+c.TN+c.FP+c.FN)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC sweeps the given thresholds over the samples and returns one
// operating point per threshold, in the given threshold order.
func ROC(samples []Sample, thresholds []float64) []ROCPoint {
	out := make([]ROCPoint, 0, len(thresholds))
	for _, t := range thresholds {
		c := Evaluate(samples, t)
		out = append(out, ROCPoint{Threshold: t, TPR: c.TPR(), FPR: c.FPR()})
	}
	return out
}

// AUC integrates the ROC curve by trapezoid over FPR, after sorting
// points by FPR and anchoring at (0,0) and (1,1).
func AUC(points []ROCPoint) float64 {
	pts := make([]ROCPoint, 0, len(points)+2)
	pts = append(pts, ROCPoint{FPR: 0, TPR: 0})
	pts = append(pts, points...)
	pts = append(pts, ROCPoint{FPR: 1, TPR: 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR < pts[j].TPR
	})
	var area float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		area += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
